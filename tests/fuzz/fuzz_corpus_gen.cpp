// Seed-corpus generator for the protocol-step fuzzer.
//
// Pumps one clean 3-GDO study entirely at the session step level — the same
// fixture (cohort, seeds, announce) the fuzz harness builds its sessions
// from, so every recorded frame decrypts against the harness's enclaves —
// and writes the frames each role received as harness-format scripts:
// a full-conversation seed per role plus one seed per individual frame.
// Every written file is immediately replayed through the harness as a
// self-check, so a stale fixture fails here instead of silently degrading
// the corpus.
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "fuzz_protocol_step.hpp"

#include "gendpr/session.hpp"
#include "genome/cohort.hpp"
#include "tee/attestation.hpp"

namespace {

using gendpr::core::InFrame;
using gendpr::core::LeaderSession;
using gendpr::core::MemberSession;
using gendpr::core::OutFrame;
using gendpr::core::ProtocolSession;
using gendpr::core::SessionWants;

constexpr std::uint8_t kMemberRole = 0;
constexpr std::uint8_t kLeaderRole = 1;

/// Appends one frame-delivery op in the harness's script encoding.
void append_frame_op(std::vector<std::uint8_t>& script, std::uint32_t from,
                     const gendpr::common::Bytes& payload) {
  script.push_back(0);  // op: deliver frame
  script.push_back(static_cast<std::uint8_t>(from));
  script.push_back(static_cast<std::uint8_t>(payload.size() & 0xFF));
  script.push_back(static_cast<std::uint8_t>((payload.size() >> 8) & 0xFF));
  script.insert(script.end(), payload.begin(), payload.end());
}

bool write_and_check(const std::filesystem::path& path,
                     const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.string().c_str());
    return false;
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.close();
  gendpr::fuzz::run_one_input(bytes.data(), bytes.size());  // self-check
  std::fprintf(stderr, "seed: %s (%zu bytes)\n", path.string().c_str(),
               bytes.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-dir>\n", argv[0]);
    return 1;
  }
  const std::filesystem::path corpus_dir = argv[1];
  std::filesystem::create_directories(corpus_dir);

  // The harness fixture, reproduced: same cohort, same platform seeds, same
  // announce, leader = GDO 0 with slice [0,8), member 1 with [8,16).
  gendpr::genome::CohortSpec cohort_spec;
  cohort_spec.num_case = 24;
  cohort_spec.num_control = 24;
  cohort_spec.num_snps = 8;
  cohort_spec.seed = 1234;
  const gendpr::genome::Cohort cohort =
      gendpr::genome::generate_cohort(cohort_spec);
  gendpr::core::StudyAnnounce announce;
  announce.study_id = 1;
  announce.num_snps = 8;
  announce.combinations = gendpr::core::Coordinator::build_combinations(
      3, gendpr::core::CollusionPolicy::none());

  gendpr::tee::QuotingAuthority authority(
      std::array<std::uint8_t, 32>{0x41});
  std::vector<std::unique_ptr<gendpr::tee::Platform>> platforms;
  for (std::uint32_t g = 0; g < 3; ++g) {
    platforms.push_back(std::make_unique<gendpr::tee::Platform>(
        g + 1, authority,
        gendpr::crypto::Csprng(
            std::array<std::uint8_t, 32>{static_cast<std::uint8_t>(g + 1)})));
  }
  LeaderSession leader(*platforms[0], 0, 3, cohort.cases.slice_rows(0, 8),
                       cohort.controls, announce);
  MemberSession member1(*platforms[1], 1, 0, cohort.cases.slice_rows(8, 16));
  MemberSession member2(*platforms[2], 2, 0, cohort.cases.slice_rows(16, 24));
  std::vector<ProtocolSession*> sessions{&leader, &member1, &member2};

  // Clean-run pump: FIFO frame routing, recording what GDO 0 (leader role)
  // and GDO 1 (member role) receive.
  struct Delivery {
    std::uint32_t from, to;
    gendpr::common::Bytes payload;
  };
  std::deque<Delivery> in_flight;
  const auto collect = [&](std::uint32_t from, std::vector<OutFrame> frames) {
    for (OutFrame& frame : frames) {
      in_flight.push_back(Delivery{
          from, frame.to_gdo, std::move(frame.payload).take_payload()});
    }
  };
  for (std::uint32_t g = 0; g < sessions.size(); ++g) {
    collect(g, sessions[g]->step({}));
  }
  std::vector<Delivery> to_leader;
  std::vector<Delivery> to_member;
  while (!in_flight.empty()) {
    Delivery delivery = std::move(in_flight.front());
    in_flight.pop_front();
    if (delivery.to == 0) to_leader.push_back(delivery);
    if (delivery.to == 1) to_member.push_back(delivery);
    collect(delivery.to, sessions[delivery.to]->step(
                             {InFrame{delivery.from, delivery.payload}}));
  }
  for (ProtocolSession* session : sessions) {
    if (session->wants() != SessionWants::done) {
      std::fprintf(stderr, "clean run did not complete: %s\n",
                   session->status().error().to_string().c_str());
      return 1;
    }
  }

  // Full-conversation seed plus one seed per frame, per role.
  bool ok = true;
  const auto emit_role = [&](const char* name, std::uint8_t role,
                             const std::vector<Delivery>& frames) {
    std::vector<std::uint8_t> full{role};
    for (std::size_t i = 0; i < frames.size(); ++i) {
      append_frame_op(full, frames[i].from, frames[i].payload);
      std::vector<std::uint8_t> single{role};
      append_frame_op(single, frames[i].from, frames[i].payload);
      ok = ok && write_and_check(corpus_dir / (std::string(name) + "_frame_" +
                                               std::to_string(i)),
                                 single);
    }
    ok = ok &&
         write_and_check(corpus_dir / (std::string(name) + "_full"), full);
  };
  emit_role("leader", kLeaderRole, to_leader);
  emit_role("member", kMemberRole, to_member);
  return ok ? 0 : 1;
}
