// libFuzzer harness for the sans-IO protocol sessions.
//
// Each input is a little event script driven straight into the session step
// surface — the same entry points the epoll driver and the blocking pumps
// use. The first byte picks the role (member or leader); the rest is a
// sequence of operations: deliver a frame (mutated wire bytes included),
// tick past the receive deadline, report a peer loss, close the transport,
// or fail a pending send. The seed corpus wraps the frames of a recorded
// clean 3-GDO run in this format, so the fuzzer starts from real handshakes
// and sealed records and mutates from there.
//
// The harness asserts the driver contract rather than protocol success: a
// session fed arbitrary events must always settle into exactly one of
// done/failed/recv, never crash, never leak, and never keep output queued
// after a flush was acknowledged.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "fuzz_protocol_step.hpp"

#include "gendpr/session.hpp"
#include "genome/cohort.hpp"
#include "tee/attestation.hpp"

namespace gendpr::fuzz {
namespace {

using core::LeaderSession;
using core::MemberSession;
using core::OutFrame;
using core::ProtocolSession;
using core::SendFailure;
using core::SessionWants;

/// One fixed tiny study: enough structure for every protocol phase while
/// keeping per-input session construction cheap.
struct Fixture {
  Fixture() {
    genome::CohortSpec spec;
    spec.num_case = 24;
    spec.num_control = 24;
    spec.num_snps = 8;
    spec.seed = 1234;
    cohort = genome::generate_cohort(spec);
    announce.study_id = 1;
    announce.num_snps = 8;
    announce.combinations =
        core::Coordinator::build_combinations(3, core::CollusionPolicy::none());
  }
  genome::Cohort cohort;
  core::StudyAnnounce announce;
};

const Fixture& fixture() {
  static const Fixture instance;
  return instance;
}

/// Consumes the script one field at a time; reads past the end return 0.
/// The send-failure decisions read from the BACK of the script so they
/// cannot shear the frame encoding at the front out of alignment — the
/// fuzzer gets a dedicated control region instead.
struct Script {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;
  std::size_t back;

  Script(const std::uint8_t* bytes, std::size_t count)
      : data(bytes), size(count), back(count) {}

  bool done() const { return pos >= back; }
  std::uint8_t u8() { return pos < back ? data[pos++] : 0; }
  std::uint8_t u8_back() { return back > pos ? data[--back] : 0; }
  std::uint16_t u16() {
    const std::uint16_t lo = u8();
    const std::uint16_t hi = u8();
    return static_cast<std::uint16_t>(lo | (hi << 8));
  }
  common::Bytes payload(std::size_t len) {
    const std::size_t take = std::min(len, back - std::min(pos, back));
    common::Bytes bytes(data + pos, data + pos + take);
    pos += take;
    return bytes;
  }
};

void drive(ProtocolSession& session, Script script) {
  using Clock = ProtocolSession::Clock;
  Clock::time_point now = Clock::now();
  session.start(now);
  // Bound the event count: a script byte can always mint one more op, and
  // the fuzzer should explore breadth, not spin one session forever.
  for (int ops = 0; ops < 512; ++ops) {
    if (session.wants() == SessionWants::done ||
        session.wants() == SessionWants::failed) {
      break;
    }
    if (session.wants() == SessionWants::send) {
      std::vector<OutFrame> frames = session.take_output();
      std::vector<SendFailure> failures;
      if (script.u8_back() % 8 == 1 && !frames.empty()) {
        failures.push_back(SendFailure{
            frames.front().to_gdo,
            common::make_error(common::Errc::unknown_peer,
                               "fuzz: peer connection lost")});
      }
      session.on_sends_complete(std::move(failures), now);
      continue;
    }
    if (script.done()) break;
    switch (script.u8() % 5) {
      case 0: {  // deliver a frame
        const std::uint32_t from = script.u8() % 4;
        session.on_frame(from, script.payload(script.u16()), now);
        break;
      }
      case 1: {  // time passes; fire the armed deadline if any
        now += std::chrono::milliseconds(1 + script.u8());
        const auto deadline = session.next_deadline();
        if (deadline.has_value() && *deadline > now) now = *deadline;
        session.on_tick(now);
        break;
      }
      case 2:  // a peer connection drops
        session.on_peer_lost(script.u8() % 4, now);
        break;
      case 3:  // this node's own transport goes away
        session.on_transport_closed(now);
        break;
      default:  // spurious early tick: must be ignored
        session.on_tick(now);
        break;
    }
  }
  // Contract: after any event sequence the session is in a defined state
  // with a consistent status.
  switch (session.wants()) {
    case SessionWants::done:
      if (!session.status().ok()) std::abort();
      break;
    case SessionWants::failed:
      if (session.status().ok()) std::abort();
      break;
    case SessionWants::recv:
      break;
    case SessionWants::send:
    case SessionWants::idle:
      std::abort();  // drive() always settles sends; start() was called
  }
}

}  // namespace

int run_one_input(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return 0;
  const Fixture& study = fixture();
  Script script{data + 1, size - 1};
  tee::QuotingAuthority authority(std::array<std::uint8_t, 32>{0x41});
  if (data[0] % 2 == 0) {
    tee::Platform platform(2, authority,
                           crypto::Csprng(std::array<std::uint8_t, 32>{2}));
    MemberSession member(platform, 1, 0, study.cohort.cases.slice_rows(8, 16));
    member.set_receive_timeout(std::chrono::milliseconds(100));
    drive(member, script);
  } else {
    tee::Platform platform(1, authority,
                           crypto::Csprng(std::array<std::uint8_t, 32>{1}));
    LeaderSession leader(platform, 0, 3, study.cohort.cases.slice_rows(0, 8),
                         study.cohort.controls, study.announce);
    leader.set_receive_timeout(std::chrono::milliseconds(100));
    drive(leader, script);
  }
  return 0;
}

}  // namespace gendpr::fuzz

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return gendpr::fuzz::run_one_input(data, size);
}
