// Replay main for compilers without libFuzzer (GCC builds): runs every file
// named on the command line through the fuzz harness once. Used locally to
// reproduce CI crash artifacts and to smoke the harness in tier-1 runs.
#include <cstdio>
#include <fstream>
#include <vector>

#include "fuzz_protocol_step.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <input-file>...\n", argv[0]);
    return 0;
  }
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", argv[i]);
      return 1;
    }
    const std::vector<std::uint8_t> data(
        (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    gendpr::fuzz::run_one_input(data.data(), data.size());
    std::fprintf(stderr, "ok: %s (%zu bytes)\n", argv[i], data.size());
  }
  return 0;
}
