// Shared entry point of the protocol-step fuzz harness: libFuzzer's
// LLVMFuzzerTestOneInput forwards here, and so do the standalone replay
// main (non-Clang builds) and the corpus generator's self-check.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gendpr::fuzz {

/// Runs one fuzz input through a member or leader session (first byte picks
/// the role). Returns 0; aborts on a driver-contract violation.
int run_one_input(const std::uint8_t* data, std::size_t size);

}  // namespace gendpr::fuzz
