#include "crypto/csprng.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/bytes.hpp"

namespace gendpr::crypto {
namespace {

using common::Bytes;
using common::to_hex;

// RFC 8439 section 2.3.2 block function test vector.
TEST(ChaCha20Test, Rfc8439BlockVector) {
  std::array<std::uint8_t, 32> key;
  for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  const std::array<std::uint8_t, 12> nonce = {0x00, 0x00, 0x00, 0x09,
                                              0x00, 0x00, 0x00, 0x4a,
                                              0x00, 0x00, 0x00, 0x00};
  std::uint8_t block[64];
  chacha20_block(key, 1, nonce, block);
  EXPECT_EQ(to_hex(common::BytesView(block, 64)),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(CsprngTest, DeterministicForSameSeed) {
  const std::array<std::uint8_t, 32> seed{7, 7, 7};
  Csprng a(seed);
  Csprng b(seed);
  EXPECT_EQ(a.bytes(100), b.bytes(100));
}

TEST(CsprngTest, DifferentSeedsDiffer) {
  Csprng a(std::array<std::uint8_t, 32>{1});
  Csprng b(std::array<std::uint8_t, 32>{2});
  EXPECT_NE(a.bytes(64), b.bytes(64));
}

TEST(CsprngTest, StreamDoesNotRepeat) {
  Csprng rng(std::array<std::uint8_t, 32>{3});
  const Bytes first = rng.bytes(64);
  const Bytes second = rng.bytes(64);
  EXPECT_NE(first, second);
}

TEST(CsprngTest, FillsExactLengths) {
  Csprng rng(std::array<std::uint8_t, 32>{4});
  for (std::size_t n : {0u, 1u, 31u, 32u, 33u, 255u, 256u, 1000u}) {
    EXPECT_EQ(rng.bytes(n).size(), n);
  }
}

TEST(CsprngTest, CrossesPoolBoundary) {
  Csprng rng(std::array<std::uint8_t, 32>{5});
  // The pool is 256 bytes with 32 consumed by re-keying; request more.
  const Bytes big = rng.bytes(1024);
  std::set<std::uint8_t> distinct(big.begin(), big.end());
  EXPECT_GT(distinct.size(), 200u);  // sanity: output looks random
}

TEST(CsprngTest, NextU64Varies) {
  Csprng rng(std::array<std::uint8_t, 32>{6});
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng.next_u64());
  EXPECT_EQ(seen.size(), 100u);
}

TEST(CsprngTest, SystemInstancesDiffer) {
  Csprng a = Csprng::system();
  Csprng b = Csprng::system();
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(CsprngTest, ArrayHelper) {
  Csprng rng(std::array<std::uint8_t, 32>{8});
  const auto arr = rng.array<16>();
  EXPECT_EQ(arr.size(), 16u);
}

}  // namespace
}  // namespace gendpr::crypto
