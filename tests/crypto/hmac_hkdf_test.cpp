#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "crypto/hkdf.hpp"
#include "crypto/hmac.hpp"

namespace gendpr::crypto {
namespace {

using common::Bytes;
using common::from_hex;
using common::to_bytes;
using common::to_hex;

std::string mac_hex(common::BytesView key, common::BytesView data) {
  const Sha256Digest d = HmacSha256::mac(key, data);
  return to_hex(common::BytesView(d.data(), d.size()));
}

// RFC 4231 test vectors.
TEST(HmacTest, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(mac_hex(key, to_bytes("Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  EXPECT_EQ(mac_hex(to_bytes("Jefe"),
                    to_bytes("what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(mac_hex(key, data),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, Rfc4231Case6LargerThanBlockKey) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(
      mac_hex(key, to_bytes(
                       "Test Using Larger Than Block-Size Key - Hash Key First")),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, Rfc4231Case7LargerKeyAndData) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(mac_hex(key, to_bytes("This is a test using a larger than "
                                  "block-size key and a larger than "
                                  "block-size data. The key needs to be "
                                  "hashed before being used by the HMAC "
                                  "algorithm.")),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

TEST(HmacTest, IncrementalMatchesOneShot) {
  const Bytes key = to_bytes("key material");
  const Bytes data = to_bytes("message split into parts");
  HmacSha256 h(key);
  h.update(common::BytesView(data.data(), 7));
  h.update(common::BytesView(data.data() + 7, data.size() - 7));
  EXPECT_EQ(h.finish(), HmacSha256::mac(key, data));
}

TEST(HmacTest, VerifyAcceptsCorrectTag) {
  const Bytes key = to_bytes("k");
  const Bytes data = to_bytes("d");
  const Sha256Digest tag = HmacSha256::mac(key, data);
  EXPECT_TRUE(HmacSha256::verify(key, data,
                                 common::BytesView(tag.data(), tag.size())));
}

TEST(HmacTest, VerifyRejectsTamperedTag) {
  const Bytes key = to_bytes("k");
  const Bytes data = to_bytes("d");
  Sha256Digest tag = HmacSha256::mac(key, data);
  tag[0] ^= 1;
  EXPECT_FALSE(HmacSha256::verify(key, data,
                                  common::BytesView(tag.data(), tag.size())));
}

TEST(HmacTest, VerifyRejectsTruncatedTag) {
  const Bytes key = to_bytes("k");
  const Bytes data = to_bytes("d");
  const Sha256Digest tag = HmacSha256::mac(key, data);
  EXPECT_FALSE(
      HmacSha256::verify(key, data, common::BytesView(tag.data(), 16)));
}

// RFC 5869 test vectors.
TEST(HkdfTest, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = from_hex("000102030405060708090a0b0c");
  const Bytes info = from_hex("f0f1f2f3f4f5f6f7f8f9");
  const Bytes prk = hkdf_extract(salt, ikm);
  EXPECT_EQ(to_hex(prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
  const Bytes okm = hkdf_expand(prk, info, 42);
  EXPECT_EQ(to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(HkdfTest, Rfc5869Case2LongInputs) {
  Bytes ikm, salt, info;
  for (int i = 0x00; i <= 0x4f; ++i) ikm.push_back(static_cast<std::uint8_t>(i));
  for (int i = 0x60; i <= 0xaf; ++i) salt.push_back(static_cast<std::uint8_t>(i));
  for (int i = 0xb0; i <= 0xff; ++i) info.push_back(static_cast<std::uint8_t>(i));
  const Bytes okm = hkdf(salt, ikm, info, 82);
  EXPECT_EQ(to_hex(okm),
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c"
            "59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71"
            "cc30c58179ec3e87c14c01d5c1f3434f1d87");
}

TEST(HkdfTest, Rfc5869Case3EmptySaltInfo) {
  const Bytes ikm(22, 0x0b);
  const Bytes prk = hkdf_extract({}, ikm);
  EXPECT_EQ(to_hex(prk),
            "19ef24a32c717b167f33a91d6f648bdf96596776afdb6377ac434c1c293ccb04");
  const Bytes okm = hkdf_expand(prk, {}, 42);
  EXPECT_EQ(to_hex(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(HkdfTest, ExpandRejectsZeroLength) {
  const Bytes prk(32, 0x01);
  EXPECT_THROW(hkdf_expand(prk, {}, 0), std::invalid_argument);
}

TEST(HkdfTest, ExpandRejectsOversizedLength) {
  const Bytes prk(32, 0x01);
  EXPECT_THROW(hkdf_expand(prk, {}, 255 * 32 + 1), std::invalid_argument);
}

TEST(HkdfTest, DistinctInfoDistinctKeys) {
  const Bytes ikm(32, 0x42);
  const Bytes k1 = hkdf({}, ikm, to_bytes("client->server"), 32);
  const Bytes k2 = hkdf({}, ikm, to_bytes("server->client"), 32);
  EXPECT_NE(k1, k2);
}

}  // namespace
}  // namespace gendpr::crypto
