#include "crypto/x25519.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "crypto/csprng.hpp"

namespace gendpr::crypto {
namespace {

using common::Bytes;
using common::from_hex;
using common::to_hex;

X25519Key key_from_hex(const std::string& hex) {
  const Bytes raw = from_hex(hex);
  X25519Key key{};
  std::copy(raw.begin(), raw.end(), key.begin());
  return key;
}

std::string key_hex(const X25519Key& key) {
  return to_hex(common::BytesView(key.data(), key.size()));
}

// RFC 7748 section 5.2 vector 1.
TEST(X25519Test, Rfc7748Vector1) {
  const X25519Key scalar = key_from_hex(
      "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
  const X25519Key point = key_from_hex(
      "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
  EXPECT_EQ(key_hex(x25519(scalar, point)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
}

// RFC 7748 section 5.2 vector 2.
TEST(X25519Test, Rfc7748Vector2) {
  const X25519Key scalar = key_from_hex(
      "4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
  const X25519Key point = key_from_hex(
      "e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
  EXPECT_EQ(key_hex(x25519(scalar, point)),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957");
}

// RFC 7748 section 6.1 Diffie-Hellman.
TEST(X25519Test, Rfc7748DiffieHellman) {
  const X25519Key alice_sk = key_from_hex(
      "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
  const X25519Key bob_sk = key_from_hex(
      "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");

  const X25519Key alice_pk = x25519_base(alice_sk);
  const X25519Key bob_pk = x25519_base(bob_sk);
  EXPECT_EQ(key_hex(alice_pk),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a");
  EXPECT_EQ(key_hex(bob_pk),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f");

  const X25519Key alice_shared = x25519(alice_sk, bob_pk);
  const X25519Key bob_shared = x25519(bob_sk, alice_pk);
  EXPECT_EQ(key_hex(alice_shared),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
  EXPECT_EQ(alice_shared, bob_shared);
}

TEST(X25519Test, KeypairConsistency) {
  Csprng rng(std::array<std::uint8_t, 32>{1, 2, 3});
  const X25519Key secret = rng.array<32>();
  const X25519KeyPair pair = x25519_keypair(secret);
  EXPECT_EQ(pair.secret, secret);
  EXPECT_EQ(pair.public_key, x25519_base(secret));
}

// Property: DH agreement holds for random keypairs.
class X25519AgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(X25519AgreementTest, SharedSecretsAgree) {
  Csprng rng(std::array<std::uint8_t, 32>{
      static_cast<std::uint8_t>(GetParam()), 0x55, 0xaa});
  const X25519Key a_sk = rng.array<32>();
  const X25519Key b_sk = rng.array<32>();
  const X25519Key a_pk = x25519_base(a_sk);
  const X25519Key b_pk = x25519_base(b_sk);
  EXPECT_EQ(x25519(a_sk, b_pk), x25519(b_sk, a_pk));
}

INSTANTIATE_TEST_SUITE_P(RandomKeys, X25519AgreementTest,
                         ::testing::Range(0, 8));

TEST(X25519Test, ClampingMakesLowBitsIrrelevant) {
  Csprng rng(std::array<std::uint8_t, 32>{9});
  X25519Key scalar = rng.array<32>();
  const X25519Key point = x25519_base(rng.array<32>());
  const X25519Key r1 = x25519(scalar, point);
  scalar[0] ^= 0x07;  // bits cleared by clamping
  const X25519Key r2 = x25519(scalar, point);
  EXPECT_EQ(r1, r2);
}

}  // namespace
}  // namespace gendpr::crypto
