#include <gtest/gtest.h>

#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/aead.hpp"
#include "crypto/aes256.hpp"
#include "crypto/gcm.hpp"

namespace gendpr::crypto {
namespace {

using common::Bytes;
using common::from_hex;
using common::to_hex;

GcmNonce nonce_from_hex(const std::string& hex) {
  const Bytes raw = from_hex(hex);
  GcmNonce nonce{};
  std::copy(raw.begin(), raw.end(), nonce.begin());
  return nonce;
}

// FIPS 197 appendix C.3 known-answer test.
TEST(Aes256Test, Fips197AppendixC3) {
  const Bytes key =
      from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes plaintext = from_hex("00112233445566778899aabbccddeeff");
  Aes256 aes(key);
  std::uint8_t ciphertext[16];
  aes.encrypt_block(plaintext.data(), ciphertext);
  EXPECT_EQ(to_hex(common::BytesView(ciphertext, 16)),
            "8ea2b7ca516745bfeafc49904b496089");
  std::uint8_t decrypted[16];
  aes.decrypt_block(ciphertext, decrypted);
  EXPECT_EQ(to_hex(common::BytesView(decrypted, 16)),
            to_hex(plaintext));
}

TEST(Aes256Test, EncryptDecryptRoundTripRandomBlocks) {
  common::Rng rng(123);
  Bytes key(32);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
  Aes256 aes(key);
  for (int trial = 0; trial < 50; ++trial) {
    std::uint8_t block[16], ct[16], pt[16];
    for (auto& b : block) b = static_cast<std::uint8_t>(rng.next());
    aes.encrypt_block(block, ct);
    aes.decrypt_block(ct, pt);
    EXPECT_TRUE(std::equal(block, block + 16, pt));
  }
}

TEST(Aes256Test, RejectsWrongKeySize) {
  const Bytes short_key(16, 0x00);
  EXPECT_THROW(Aes256 aes(short_key), std::invalid_argument);
}

// McGrew & Viega GCM spec test case 13 (AES-256, empty plaintext and AAD).
TEST(GcmTest, EmptyPlaintextZeroKey) {
  const Bytes key(32, 0x00);
  const GcmNonce nonce{};  // 96-bit zero IV
  const Bytes sealed = gcm_seal(key, nonce, {}, {});
  ASSERT_EQ(sealed.size(), kGcmTagSize);
  EXPECT_EQ(to_hex(sealed), "530f8afbc74536b9a963b4f1c4cb738b");
}

// McGrew & Viega GCM spec test case 14 (AES-256, 16 zero bytes).
TEST(GcmTest, SingleZeroBlockZeroKey) {
  const Bytes key(32, 0x00);
  const GcmNonce nonce{};
  const Bytes plaintext(16, 0x00);
  const Bytes sealed = gcm_seal(key, nonce, {}, plaintext);
  ASSERT_EQ(sealed.size(), 32u);
  EXPECT_EQ(to_hex(common::BytesView(sealed.data(), 16)),
            "cea7403d4d606b6e074ec5d3baf39d18");
  EXPECT_EQ(to_hex(common::BytesView(sealed.data() + 16, 16)),
            "d0d1c8a799996bf0265b98b5d48ab919");
}

// McGrew & Viega GCM spec test case 16 (AES-256 with AAD).
TEST(GcmTest, McGrewViegaCase16) {
  const Bytes key = from_hex(
      "feffe9928665731c6d6a8f9467308308feffe9928665731c6d6a8f9467308308");
  const GcmNonce nonce = nonce_from_hex("cafebabefacedbaddecaf888");
  const Bytes plaintext = from_hex(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39");
  const Bytes aad = from_hex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
  const Bytes sealed = gcm_seal(key, nonce, aad, plaintext);
  ASSERT_EQ(sealed.size(), plaintext.size() + kGcmTagSize);
  EXPECT_EQ(to_hex(common::BytesView(sealed.data(), plaintext.size())),
            "522dc1f099567d07f47f37a32a84427d643a8cdcbfe5c0c97598a2bd2555d1aa"
            "8cb08e48590dbb3da7b08b1056828838c5f61e6393ba7a0abcc9f662");
  EXPECT_EQ(to_hex(common::BytesView(sealed.data() + plaintext.size(),
                                     kGcmTagSize)),
            "76fc6ece0f4e1768cddf8853bb2d551b");
}

TEST(GcmTest, SealOpenRoundTrip) {
  const Bytes key(32, 0x42);
  const GcmNonce nonce = nonce_from_hex("000102030405060708090a0b");
  const Bytes plaintext = common::to_bytes("allele counts vector payload");
  const Bytes aad = common::to_bytes("phase=1;gdo=3");
  const Bytes sealed = gcm_seal(key, nonce, aad, plaintext);
  const auto opened = gcm_open(key, nonce, aad, sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value(), plaintext);
}

TEST(GcmTest, OpenRejectsWrongKey) {
  const Bytes key(32, 0x42);
  Bytes wrong_key = key;
  wrong_key[31] ^= 1;
  const GcmNonce nonce{};
  const Bytes sealed = gcm_seal(key, nonce, {}, common::to_bytes("secret"));
  const auto opened = gcm_open(wrong_key, nonce, {}, sealed);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.error().code, common::Errc::decrypt_failed);
}

TEST(GcmTest, OpenRejectsWrongNonce) {
  const Bytes key(32, 0x42);
  const GcmNonce nonce{};
  GcmNonce other_nonce{};
  other_nonce[11] = 1;
  const Bytes sealed = gcm_seal(key, nonce, {}, common::to_bytes("secret"));
  EXPECT_FALSE(gcm_open(key, other_nonce, {}, sealed).ok());
}

TEST(GcmTest, OpenRejectsWrongAad) {
  const Bytes key(32, 0x42);
  const GcmNonce nonce{};
  const Bytes sealed =
      gcm_seal(key, nonce, common::to_bytes("aad-a"), common::to_bytes("x"));
  EXPECT_FALSE(gcm_open(key, nonce, common::to_bytes("aad-b"), sealed).ok());
}

TEST(GcmTest, OpenRejectsTruncatedInput) {
  const Bytes key(32, 0x42);
  const GcmNonce nonce{};
  const Bytes short_input(kGcmTagSize - 1, 0x00);
  EXPECT_FALSE(gcm_open(key, nonce, {}, short_input).ok());
}

// Property: every single-bit flip anywhere in the sealed blob must be caught.
class GcmTamperTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GcmTamperTest, BitFlipDetected) {
  const Bytes key(32, 0x37);
  const GcmNonce nonce{};
  const Bytes plaintext = common::to_bytes("tamper detection sweep payload");
  Bytes sealed = gcm_seal(key, nonce, {}, plaintext);
  const std::size_t byte_index = GetParam() % sealed.size();
  sealed[byte_index] ^= static_cast<std::uint8_t>(1u << (GetParam() % 8));
  EXPECT_FALSE(gcm_open(key, nonce, {}, sealed).ok())
      << "flip at byte " << byte_index;
}

INSTANTIATE_TEST_SUITE_P(AllOffsets, GcmTamperTest,
                         ::testing::Range<std::size_t>(0, 46));

// Property: round trip across many message sizes (block boundaries).
class GcmSizeSweepTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GcmSizeSweepTest, RoundTrip) {
  common::Rng rng(GetParam() + 1);
  Bytes key(32);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
  GcmNonce nonce{};
  for (auto& b : nonce) b = static_cast<std::uint8_t>(rng.next());
  Bytes plaintext(GetParam());
  for (auto& b : plaintext) b = static_cast<std::uint8_t>(rng.next());
  const Bytes sealed = gcm_seal(key, nonce, {}, plaintext);
  const auto opened = gcm_open(key, nonce, {}, sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value(), plaintext);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GcmSizeSweepTest,
                         ::testing::Values(0, 1, 15, 16, 17, 31, 32, 33, 255,
                                           256, 1000, 4096));

// The known-answer vectors above run through the gcm_seal/gcm_open wrappers,
// which dispatch to whichever backend the environment selects. This suite
// pins every backend available on the executing CPU against the same
// vectors explicitly, so a KAT regression in one backend cannot hide behind
// the dispatcher picking the other.
std::vector<AeadBackend> available_backends() {
  std::vector<AeadBackend> backends{AeadBackend::portable};
  if (aead_backend_available(AeadBackend::native)) {
    backends.push_back(AeadBackend::native);
  }
  return backends;
}

class GcmBackendVectorTest : public ::testing::TestWithParam<AeadBackend> {};

TEST_P(GcmBackendVectorTest, ForcedBackendIsSelected) {
  const Bytes key(32, 0x42);
  EXPECT_EQ(GcmContext(key, GetParam()).backend(), GetParam());
}

TEST_P(GcmBackendVectorTest, EmptyPlaintextZeroKey) {
  const Bytes key(32, 0x00);
  const GcmContext ctx(key, GetParam());
  const Bytes sealed = ctx.seal(GcmNonce{}, {}, {});
  ASSERT_EQ(sealed.size(), kGcmTagSize);
  EXPECT_EQ(to_hex(sealed), "530f8afbc74536b9a963b4f1c4cb738b");
}

TEST_P(GcmBackendVectorTest, SingleZeroBlockZeroKey) {
  const Bytes key(32, 0x00);
  const GcmContext ctx(key, GetParam());
  const Bytes sealed = ctx.seal(GcmNonce{}, {}, Bytes(16, 0x00));
  ASSERT_EQ(sealed.size(), 32u);
  EXPECT_EQ(to_hex(sealed),
            "cea7403d4d606b6e074ec5d3baf39d18"
            "d0d1c8a799996bf0265b98b5d48ab919");
}

TEST_P(GcmBackendVectorTest, McGrewViegaCase16) {
  const Bytes key = from_hex(
      "feffe9928665731c6d6a8f9467308308feffe9928665731c6d6a8f9467308308");
  const GcmNonce nonce = nonce_from_hex("cafebabefacedbaddecaf888");
  const Bytes plaintext = from_hex(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39");
  const Bytes aad = from_hex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
  const GcmContext ctx(key, GetParam());
  const Bytes sealed = ctx.seal(nonce, aad, plaintext);
  ASSERT_EQ(sealed.size(), plaintext.size() + kGcmTagSize);
  EXPECT_EQ(to_hex(common::BytesView(sealed.data(), plaintext.size())),
            "522dc1f099567d07f47f37a32a84427d643a8cdcbfe5c0c97598a2bd2555d1aa"
            "8cb08e48590dbb3da7b08b1056828838c5f61e6393ba7a0abcc9f662");
  EXPECT_EQ(to_hex(common::BytesView(sealed.data() + plaintext.size(),
                                     kGcmTagSize)),
            "76fc6ece0f4e1768cddf8853bb2d551b");
  const auto opened = ctx.open(nonce, aad, sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value(), plaintext);
}

std::string backend_test_name(
    const ::testing::TestParamInfo<AeadBackend>& param_info) {
  return aead_backend_name(param_info.param);
}

INSTANTIATE_TEST_SUITE_P(Backends, GcmBackendVectorTest,
                         ::testing::ValuesIn(available_backends()),
                         backend_test_name);

}  // namespace
}  // namespace gendpr::crypto
