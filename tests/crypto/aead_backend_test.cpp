// Cross-backend AEAD engine tests: the portable and native GCM kernels must
// produce byte-identical ciphertexts and tags for every (key, nonce, AAD,
// plaintext), the copy-lean seal/open entry points must agree with the
// allocating ones, and the GENDPR_CRYPTO_BACKEND override must steer the
// dispatcher. On hosts without AES-NI/PCLMULQDQ the native half of the
// equivalence sweep is skipped (the portable backend is always exercised).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/aead.hpp"
#include "crypto/gcm.hpp"

namespace gendpr::crypto {
namespace {

using common::Bytes;
using common::BytesView;

bool native_available() {
  return aead_backend_available(AeadBackend::native);
}

Bytes random_bytes(common::Rng& rng, std::size_t n) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

GcmNonce random_nonce(common::Rng& rng) {
  GcmNonce nonce{};
  for (auto& b : nonce) b = static_cast<std::uint8_t>(rng.next());
  return nonce;
}

TEST(AeadBackendTest, PortableAlwaysAvailable) {
  EXPECT_TRUE(aead_backend_available(AeadBackend::portable));
}

TEST(AeadBackendTest, BackendNamesAreStable) {
  EXPECT_STREQ(aead_backend_name(AeadBackend::portable), "portable");
  EXPECT_STREQ(aead_backend_name(AeadBackend::native), "native");
}

TEST(AeadBackendTest, UnavailableBackendFallsBackToPortable) {
  const Bytes key(32, 0x11);
  const GcmContext forced(key, AeadBackend::native);
  if (native_available()) {
    EXPECT_EQ(forced.backend(), AeadBackend::native);
  } else {
    EXPECT_EQ(forced.backend(), AeadBackend::portable);
  }
}

TEST(AeadBackendTest, EnvOverrideSteersDispatch) {
  ASSERT_EQ(setenv("GENDPR_CRYPTO_BACKEND", "portable", 1), 0);
  EXPECT_EQ(default_aead_backend(), AeadBackend::portable);
  ASSERT_EQ(setenv("GENDPR_CRYPTO_BACKEND", "native", 1), 0);
  if (native_available()) {
    EXPECT_EQ(default_aead_backend(), AeadBackend::native);
  } else {
    EXPECT_EQ(default_aead_backend(), AeadBackend::portable);
  }
  // An unknown value falls back to auto-detection instead of failing.
  ASSERT_EQ(setenv("GENDPR_CRYPTO_BACKEND", "quantum", 1), 0);
  const AeadBackend auto_backend = default_aead_backend();
  ASSERT_EQ(unsetenv("GENDPR_CRYPTO_BACKEND"), 0);
  EXPECT_EQ(auto_backend, default_aead_backend());
}

TEST(AeadBackendTest, SealCountersAdvance) {
  const Bytes key(32, 0x22);
  const GcmContext ctx(key);
  const Bytes plaintext(100, 0xab);
  const AeadCounters before = aead_counters();
  (void)ctx.seal(GcmNonce{}, {}, plaintext);
  const AeadCounters after = aead_counters();
  EXPECT_EQ(after.records_sealed, before.records_sealed + 1);
  EXPECT_EQ(after.bytes_sealed, before.bytes_sealed + plaintext.size());
}

// The randomized sweep crosses block boundaries (0/1/15/16/17), the 8-block
// native pipeline width (4 KB), and a size large enough to spend most time
// in the bulk loops (1 MB), each with and without AAD.
class AeadEquivalenceTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AeadEquivalenceTest, BackendsProduceIdenticalRecords) {
  if (!native_available()) {
    GTEST_SKIP() << "native AEAD backend not supported on this CPU";
  }
  common::Rng rng(GetParam() * 31 + 7);
  const Bytes key = random_bytes(rng, 32);
  const GcmContext portable(key, AeadBackend::portable);
  const GcmContext native(key, AeadBackend::native);
  for (const bool with_aad : {false, true}) {
    const GcmNonce nonce = random_nonce(rng);
    const Bytes aad =
        with_aad ? random_bytes(rng, 1 + (GetParam() % 40)) : Bytes{};
    const Bytes plaintext = random_bytes(rng, GetParam());

    const Bytes sealed_p = portable.seal(nonce, aad, plaintext);
    const Bytes sealed_n = native.seal(nonce, aad, plaintext);
    ASSERT_EQ(sealed_p, sealed_n) << "size " << GetParam() << " aad "
                                  << with_aad;

    // Cross-open: each backend must accept the other's record.
    const auto opened_pn = portable.open(nonce, aad, sealed_n);
    const auto opened_np = native.open(nonce, aad, sealed_p);
    ASSERT_TRUE(opened_pn.ok());
    ASSERT_TRUE(opened_np.ok());
    EXPECT_EQ(opened_pn.value(), plaintext);
    EXPECT_EQ(opened_np.value(), plaintext);
  }
}

TEST_P(AeadEquivalenceTest, TamperRejectedByBothBackends) {
  common::Rng rng(GetParam() * 13 + 3);
  const Bytes key = random_bytes(rng, 32);
  const GcmNonce nonce = random_nonce(rng);
  const Bytes aad = random_bytes(rng, 9);
  const Bytes plaintext = random_bytes(rng, GetParam());
  for (const AeadBackend backend :
       {AeadBackend::portable, AeadBackend::native}) {
    if (backend == AeadBackend::native && !native_available()) continue;
    const GcmContext ctx(key, backend);
    Bytes sealed = ctx.seal(nonce, aad, plaintext);
    const std::size_t index = rng.uniform_int(sealed.size());
    sealed[index] ^= static_cast<std::uint8_t>(1u << (rng.next() % 8));
    EXPECT_FALSE(ctx.open(nonce, aad, sealed).ok())
        << aead_backend_name(backend) << " accepted a flipped byte at "
        << index;
  }
}

TEST_P(AeadEquivalenceTest, InPlaceOpenMatchesAllocatingOpen) {
  common::Rng rng(GetParam() * 17 + 5);
  const Bytes key = random_bytes(rng, 32);
  const GcmNonce nonce = random_nonce(rng);
  const Bytes aad = random_bytes(rng, 12);
  const Bytes plaintext = random_bytes(rng, GetParam());
  for (const AeadBackend backend :
       {AeadBackend::portable, AeadBackend::native}) {
    if (backend == AeadBackend::native && !native_available()) continue;
    const GcmContext ctx(key, backend);

    // seal_into a preallocated buffer must equal the allocating seal.
    Bytes record(plaintext.size() + kGcmTagSize);
    ctx.seal_into(nonce, aad, plaintext, record.data());
    EXPECT_EQ(record, ctx.seal(nonce, aad, plaintext));

    // open_into decrypting over the ciphertext in place.
    Bytes scratch = record;
    const auto n = ctx.open_into(nonce, aad, scratch, scratch.data());
    ASSERT_TRUE(n.ok());
    ASSERT_EQ(n.value(), plaintext.size());
    EXPECT_TRUE(std::equal(plaintext.begin(), plaintext.end(),
                           scratch.begin()));

    // open_to reuses (and resizes) a caller-owned buffer.
    Bytes reused(3, 0xee);
    ASSERT_TRUE(ctx.open_to(nonce, aad, record, reused).ok());
    EXPECT_EQ(reused, plaintext);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AeadEquivalenceTest,
                         ::testing::Values(0, 1, 15, 16, 17, 4096,
                                           std::size_t{1} << 20));

}  // namespace
}  // namespace gendpr::crypto
