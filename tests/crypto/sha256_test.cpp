#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/bytes.hpp"

namespace gendpr::crypto {
namespace {

using common::Bytes;
using common::to_bytes;
using common::to_hex;

std::string hash_hex(common::BytesView data) {
  const Sha256Digest d = Sha256::hash(data);
  return to_hex(common::BytesView(d.data(), d.size()));
}

// FIPS 180-4 / NIST CAVP known-answer tests.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(hash_hex({}),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(hash_hex(to_bytes("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(hash_hex(to_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionA) {
  const Bytes data(1000000, 'a');
  EXPECT_EQ(hash_hex(data),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const Bytes data = to_bytes("the quick brown fox jumps over the lazy dog");
  Sha256 h;
  // Feed in awkward chunk sizes crossing block boundaries.
  std::size_t offset = 0;
  const std::size_t chunks[] = {1, 3, 7, 13, 19};
  std::size_t chunk_idx = 0;
  while (offset < data.size()) {
    const std::size_t take =
        std::min(chunks[chunk_idx % 5], data.size() - offset);
    h.update(common::BytesView(data.data() + offset, take));
    offset += take;
    ++chunk_idx;
  }
  EXPECT_EQ(h.finish(), Sha256::hash(data));
}

TEST(Sha256Test, BoundaryLengths) {
  // Exercise padding around the 55/56/64-byte boundaries.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const Bytes data(len, 0x5a);
    Sha256 incremental;
    incremental.update(common::BytesView(data.data(), len / 2));
    incremental.update(common::BytesView(data.data() + len / 2,
                                         len - len / 2));
    EXPECT_EQ(incremental.finish(), Sha256::hash(data)) << "len=" << len;
  }
}

TEST(Sha256Test, VectorConvenienceMatches) {
  const Bytes data = to_bytes("abc");
  const Bytes digest = sha256(data);
  EXPECT_EQ(to_hex(digest),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, DistinctInputsDistinctDigests) {
  EXPECT_NE(hash_hex(to_bytes("a")), hash_hex(to_bytes("b")));
}

}  // namespace
}  // namespace gendpr::crypto
