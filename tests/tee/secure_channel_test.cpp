#include "tee/secure_channel.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "common/bytes.hpp"

namespace gendpr::tee {
namespace {

using common::Bytes;

struct ChannelFixture {
  QuotingAuthority authority{std::array<std::uint8_t, 32>{0x42}};
  Measurement module = measure("gendpr.trusted", "1.0");
  crypto::Csprng rng_a{std::array<std::uint8_t, 32>{1}};
  crypto::Csprng rng_b{std::array<std::uint8_t, 32>{2}};

  SecureChannel make_initiator() {
    return SecureChannel(authority, {1, module}, module, true, rng_a);
  }
  SecureChannel make_responder() {
    return SecureChannel(authority, {2, module}, module, false, rng_b);
  }
};

TEST(SecureChannelTest, HandshakeEstablishesBothSides) {
  ChannelFixture f;
  SecureChannel a = f.make_initiator();
  SecureChannel b = f.make_responder();
  ASSERT_TRUE(a.complete(b.handshake_message()).ok());
  ASSERT_TRUE(b.complete(a.handshake_message()).ok());
  EXPECT_TRUE(a.established());
  EXPECT_TRUE(b.established());
  EXPECT_EQ(a.peer_identity().platform_id, 2u);
  EXPECT_EQ(b.peer_identity().platform_id, 1u);
}

TEST(SecureChannelTest, BidirectionalSealOpen) {
  ChannelFixture f;
  SecureChannel a = f.make_initiator();
  SecureChannel b = f.make_responder();
  ASSERT_TRUE(a.complete(b.handshake_message()).ok());
  ASSERT_TRUE(b.complete(a.handshake_message()).ok());

  const Bytes msg1 = common::to_bytes("caseLocalCounts vector");
  const auto rec1 = a.seal(msg1);
  ASSERT_TRUE(rec1.ok());
  const auto opened1 = b.open(rec1.value());
  ASSERT_TRUE(opened1.ok());
  EXPECT_EQ(opened1.value(), msg1);

  const Bytes msg2 = common::to_bytes("retained SNP list");
  const auto rec2 = b.seal(msg2);
  ASSERT_TRUE(rec2.ok());
  const auto opened2 = a.open(rec2.value());
  ASSERT_TRUE(opened2.ok());
  EXPECT_EQ(opened2.value(), msg2);
}

TEST(SecureChannelTest, ManySequentialRecords) {
  ChannelFixture f;
  SecureChannel a = f.make_initiator();
  SecureChannel b = f.make_responder();
  ASSERT_TRUE(a.complete(b.handshake_message()).ok());
  ASSERT_TRUE(b.complete(a.handshake_message()).ok());
  for (int i = 0; i < 100; ++i) {
    const Bytes msg = {static_cast<std::uint8_t>(i)};
    const auto opened = b.open(a.seal(msg).value());
    ASSERT_TRUE(opened.ok()) << "record " << i;
    EXPECT_EQ(opened.value(), msg);
  }
}

TEST(SecureChannelTest, CiphertextHidesPlaintext) {
  ChannelFixture f;
  SecureChannel a = f.make_initiator();
  SecureChannel b = f.make_responder();
  ASSERT_TRUE(a.complete(b.handshake_message()).ok());
  ASSERT_TRUE(b.complete(a.handshake_message()).ok());
  const Bytes msg = common::to_bytes("very secret genome aggregate");
  const Bytes record = a.seal(msg).value();
  EXPECT_EQ(std::search(record.begin(), record.end(), msg.begin(), msg.end()),
            record.end());
  EXPECT_EQ(record.size(), msg.size() + SecureChannel::record_overhead());
}

TEST(SecureChannelTest, ReplayRejected) {
  ChannelFixture f;
  SecureChannel a = f.make_initiator();
  SecureChannel b = f.make_responder();
  ASSERT_TRUE(a.complete(b.handshake_message()).ok());
  ASSERT_TRUE(b.complete(a.handshake_message()).ok());
  const Bytes record = a.seal(common::to_bytes("once")).value();
  ASSERT_TRUE(b.open(record).ok());
  const auto replayed = b.open(record);
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.error().code, common::Errc::bad_message);
}

TEST(SecureChannelTest, ReorderRejected) {
  ChannelFixture f;
  SecureChannel a = f.make_initiator();
  SecureChannel b = f.make_responder();
  ASSERT_TRUE(a.complete(b.handshake_message()).ok());
  ASSERT_TRUE(b.complete(a.handshake_message()).ok());
  const Bytes r0 = a.seal(common::to_bytes("first")).value();
  const Bytes r1 = a.seal(common::to_bytes("second")).value();
  EXPECT_FALSE(b.open(r1).ok());  // out of order
  EXPECT_TRUE(b.open(r0).ok());   // correct order still works
}

TEST(SecureChannelTest, TamperedRecordRejected) {
  ChannelFixture f;
  SecureChannel a = f.make_initiator();
  SecureChannel b = f.make_responder();
  ASSERT_TRUE(a.complete(b.handshake_message()).ok());
  ASSERT_TRUE(b.complete(a.handshake_message()).ok());
  Bytes record = a.seal(common::to_bytes("payload")).value();
  record[10] ^= 0x01;
  EXPECT_FALSE(b.open(record).ok());
}

TEST(SecureChannelTest, WrongMeasurementRejectedAtHandshake) {
  ChannelFixture f;
  SecureChannel a = f.make_initiator();
  // b runs a different (e.g. tampered) trusted module.
  const Measurement evil = measure("gendpr.trusted", "evil");
  SecureChannel b(f.authority, {2, evil}, f.module, false, f.rng_b);
  const auto status = a.complete(b.handshake_message());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, common::Errc::attestation_rejected);
}

TEST(SecureChannelTest, QuoteFromRogueAuthorityRejected) {
  ChannelFixture f;
  QuotingAuthority rogue(std::array<std::uint8_t, 32>{0x66});
  SecureChannel a = f.make_initiator();
  SecureChannel b(rogue, {2, f.module}, f.module, false, f.rng_b);
  EXPECT_FALSE(a.complete(b.handshake_message()).ok());
}

TEST(SecureChannelTest, SplicedEphemeralKeyRejected) {
  // An attacker intercepts b's handshake and replaces the ephemeral key;
  // the quote binding must catch it.
  ChannelFixture f;
  SecureChannel a = f.make_initiator();
  SecureChannel b = f.make_responder();
  Bytes handshake = b.handshake_message();
  handshake[handshake.size() - 1] ^= 0x01;  // flip a bit of eph_pub
  const auto status = a.complete(handshake);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, common::Errc::attestation_rejected);
}

TEST(SecureChannelTest, TruncatedHandshakeRejected) {
  ChannelFixture f;
  SecureChannel a = f.make_initiator();
  SecureChannel b = f.make_responder();
  const Bytes handshake = b.handshake_message();
  for (std::size_t len = 0; len < handshake.size(); len += 17) {
    SecureChannel fresh = f.make_initiator();
    EXPECT_FALSE(
        fresh.complete(common::BytesView(handshake.data(), len)).ok());
  }
}

TEST(SecureChannelTest, SealBeforeHandshakeFails) {
  ChannelFixture f;
  SecureChannel a = f.make_initiator();
  const auto result = a.seal(common::to_bytes("early"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, common::Errc::state_violation);
}

TEST(SecureChannelTest, DoubleCompleteFails) {
  ChannelFixture f;
  SecureChannel a = f.make_initiator();
  SecureChannel b = f.make_responder();
  ASSERT_TRUE(a.complete(b.handshake_message()).ok());
  const auto status = a.complete(b.handshake_message());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, common::Errc::state_violation);
}

// The channel's wire format must not depend on which AEAD backend sealed a
// record: the fixture's deterministic CSPRNGs make two channel pairs derive
// identical keys, so records sealed under each forced backend must be
// byte-identical and each side must open the other backend's records.
TEST(SecureChannelTest, RecordsAreByteIdenticalAcrossBackends) {
  const std::vector<Bytes> messages = {
      common::to_bytes("caseLocalCounts vector"), Bytes{},
      Bytes(1000, 0x5a)};
  std::vector<std::vector<Bytes>> records_by_backend;
  for (const char* backend : {"portable", "native"}) {
    ASSERT_EQ(setenv("GENDPR_CRYPTO_BACKEND", backend, 1), 0);
    ChannelFixture f;
    SecureChannel a = f.make_initiator();
    SecureChannel b = f.make_responder();
    ASSERT_TRUE(a.complete(b.handshake_message()).ok());
    ASSERT_TRUE(b.complete(a.handshake_message()).ok());
    std::vector<Bytes> records;
    for (const Bytes& msg : messages) {
      records.push_back(a.seal(msg).value());
      const auto opened = b.open(records.back());
      ASSERT_TRUE(opened.ok());
      EXPECT_EQ(opened.value(), msg);
    }
    records_by_backend.push_back(std::move(records));
  }
  ASSERT_EQ(unsetenv("GENDPR_CRYPTO_BACKEND"), 0);
  // On CPUs without AES-NI the "native" pair silently ran portable, which
  // still must (trivially) match.
  EXPECT_EQ(records_by_backend[0], records_by_backend[1]);
}

TEST(SecureChannelTest, CrossBackendInterop) {
  if (!crypto::aead_backend_available(crypto::AeadBackend::native)) {
    GTEST_SKIP() << "native AEAD backend not supported on this CPU";
  }
  // Sender dispatches native, receiver is forced portable: the record must
  // open cleanly, proving on-the-wire compatibility between backends. The
  // AEAD contexts are bound when complete() derives the direction keys, so
  // the override is toggled around each side's completion.
  ChannelFixture f;
  SecureChannel a = f.make_initiator();
  SecureChannel b = f.make_responder();
  ASSERT_EQ(setenv("GENDPR_CRYPTO_BACKEND", "native", 1), 0);
  ASSERT_TRUE(a.complete(b.handshake_message()).ok());
  ASSERT_EQ(setenv("GENDPR_CRYPTO_BACKEND", "portable", 1), 0);
  ASSERT_TRUE(b.complete(a.handshake_message()).ok());
  ASSERT_EQ(unsetenv("GENDPR_CRYPTO_BACKEND"), 0);
  EXPECT_EQ(a.crypto_backend(), crypto::AeadBackend::native);
  EXPECT_EQ(b.crypto_backend(), crypto::AeadBackend::portable);
  const Bytes msg = common::to_bytes("allele counts across backends");
  const auto opened = b.open(a.seal(msg).value());
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value(), msg);
}

TEST(SecureChannelTest, OpenToReusesScratchAcrossRecords) {
  ChannelFixture f;
  SecureChannel a = f.make_initiator();
  SecureChannel b = f.make_responder();
  ASSERT_TRUE(a.complete(b.handshake_message()).ok());
  ASSERT_TRUE(b.complete(a.handshake_message()).ok());
  Bytes scratch;
  for (int i = 0; i < 20; ++i) {
    const Bytes msg(static_cast<std::size_t>(i * 7),
                    static_cast<std::uint8_t>(i));
    ASSERT_TRUE(b.open_to(a.seal(msg).value(), scratch).ok()) << i;
    EXPECT_EQ(scratch, msg);
  }
}

TEST(SecureChannelTest, DirectionsUseDistinctKeys) {
  ChannelFixture f;
  SecureChannel a = f.make_initiator();
  SecureChannel b = f.make_responder();
  ASSERT_TRUE(a.complete(b.handshake_message()).ok());
  ASSERT_TRUE(b.complete(a.handshake_message()).ok());
  // A record sealed by a must not decrypt as if it came from b (i.e. a
  // cannot open its own record).
  const Bytes record = a.seal(common::to_bytes("direction test")).value();
  EXPECT_FALSE(a.open(record).ok());
}

}  // namespace
}  // namespace gendpr::tee
