#include "tee/epc_meter.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace gendpr::tee {
namespace {

TEST(EpcMeterTest, AllocateWithinLimit) {
  EpcMeter meter(1000);
  EXPECT_TRUE(meter.allocate(400).ok());
  EXPECT_EQ(meter.in_use(), 400u);
  EXPECT_TRUE(meter.allocate(600).ok());
  EXPECT_EQ(meter.in_use(), 1000u);
}

TEST(EpcMeterTest, RejectsOverLimit) {
  EpcMeter meter(1000);
  ASSERT_TRUE(meter.allocate(800).ok());
  const auto status = meter.allocate(300);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, common::Errc::capacity_exceeded);
  EXPECT_EQ(meter.in_use(), 800u);  // failed allocation left no trace
}

TEST(EpcMeterTest, ReleaseRestoresCapacity) {
  EpcMeter meter(1000);
  ASSERT_TRUE(meter.allocate(900).ok());
  meter.release(500);
  EXPECT_EQ(meter.in_use(), 400u);
  EXPECT_TRUE(meter.allocate(600).ok());
}

TEST(EpcMeterTest, PeakTracksHighWatermark) {
  EpcMeter meter(1000);
  ASSERT_TRUE(meter.allocate(700).ok());
  meter.release(600);
  ASSERT_TRUE(meter.allocate(100).ok());
  EXPECT_EQ(meter.peak(), 700u);
  meter.reset_peak();
  EXPECT_EQ(meter.peak(), 200u);
}

TEST(EpcMeterTest, OverReleaseClampsToZero) {
  EpcMeter meter(1000);
  ASSERT_TRUE(meter.allocate(100).ok());
  meter.release(500);
  EXPECT_EQ(meter.in_use(), 0u);
}

TEST(EpcMeterTest, DefaultLimitIs128Mb) {
  EpcMeter meter;
  EXPECT_EQ(meter.limit(), 128ull * 1024 * 1024);
}

TEST(EpcMeterTest, ConcurrentAllocationsNeverExceedLimit) {
  EpcMeter meter(10000);
  std::vector<std::thread> threads;
  std::atomic<int> successes{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        if (meter.allocate(100).ok()) {
          successes.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(successes.load(), 100);  // exactly limit/100 succeed
  EXPECT_EQ(meter.in_use(), 10000u);
}

TEST(EpcAllocationTest, RaiiReleasesOnScopeExit) {
  EpcMeter meter(1000);
  {
    auto status = meter.allocate(300);
    ASSERT_TRUE(status.ok());
    EpcAllocation alloc(meter, 300);
    EXPECT_EQ(meter.in_use(), 300u);
  }
  EXPECT_EQ(meter.in_use(), 0u);
}

TEST(EpcAllocationTest, MoveTransfersOwnership) {
  EpcMeter meter(1000);
  ASSERT_TRUE(meter.allocate(200).ok());
  EpcAllocation a(meter, 200);
  EpcAllocation b = std::move(a);
  a.release();  // no-op: ownership moved
  EXPECT_EQ(meter.in_use(), 200u);
  b.release();
  EXPECT_EQ(meter.in_use(), 0u);
}

}  // namespace
}  // namespace gendpr::tee
