#include "tee/identity.hpp"

#include <gtest/gtest.h>

namespace gendpr::tee {
namespace {

TEST(IdentityTest, SameModuleSameMeasurement) {
  EXPECT_EQ(measure("gendpr.gdo", "1.0"), measure("gendpr.gdo", "1.0"));
}

TEST(IdentityTest, DifferentModuleDiffers) {
  EXPECT_NE(measure("gendpr.gdo", "1.0"), measure("gendpr.leader", "1.0"));
}

TEST(IdentityTest, DifferentVersionDiffers) {
  EXPECT_NE(measure("gendpr.gdo", "1.0"), measure("gendpr.gdo", "1.1"));
}

TEST(IdentityTest, SeparatorCannotBeGamed) {
  // "ab|c" / "a|bc" must not collide thanks to the field separator; the
  // point is that name/version boundaries are unambiguous.
  EXPECT_NE(measure("ab", "c"), measure("a", "bc"));
}

TEST(IdentityTest, EqualityIncludesPlatform) {
  const Measurement m = measure("mod", "1");
  const EnclaveIdentity a{1, m};
  const EnclaveIdentity b{2, m};
  const EnclaveIdentity c{1, m};
  EXPECT_NE(a, b);
  EXPECT_EQ(a, c);
}

TEST(IdentityTest, PrefixIs16HexChars) {
  const std::string prefix = measurement_prefix(measure("mod", "1"));
  EXPECT_EQ(prefix.size(), 16u);
  EXPECT_EQ(prefix.find_first_not_of("0123456789abcdef"), std::string::npos);
}

}  // namespace
}  // namespace gendpr::tee
