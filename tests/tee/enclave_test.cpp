#include "tee/enclave.hpp"

#include <gtest/gtest.h>

namespace gendpr::tee {
namespace {

struct TestEnclave : Enclave {
  TestEnclave(Platform& platform, const std::string& version = "1.0")
      : Enclave(platform, "gendpr.test", version) {}
};

crypto::Csprng test_rng(std::uint8_t tag) {
  return crypto::Csprng(std::array<std::uint8_t, 32>{tag});
}

TEST(EnclaveTest, IdentityReflectsPlatformAndModule) {
  QuotingAuthority authority(std::array<std::uint8_t, 32>{1});
  Platform platform(7, authority, test_rng(1));
  TestEnclave enclave(platform);
  EXPECT_EQ(enclave.identity().platform_id, 7u);
  EXPECT_EQ(enclave.measurement(), measure("gendpr.test", "1.0"));
}

TEST(EnclaveTest, SealUnsealOnSamePlatform) {
  QuotingAuthority authority(std::array<std::uint8_t, 32>{2});
  Platform platform(1, authority, test_rng(2));
  TestEnclave enclave(platform);
  const common::Bytes secret = common::to_bytes("persist me");
  const auto opened = enclave.unseal(enclave.seal(secret));
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value(), secret);
}

TEST(EnclaveTest, CrossPlatformUnsealFails) {
  QuotingAuthority authority(std::array<std::uint8_t, 32>{3});
  Platform platform_a(1, authority, test_rng(3));
  Platform platform_b(2, authority, test_rng(4));
  TestEnclave enclave_a(platform_a);
  TestEnclave enclave_b(platform_b);
  const common::Bytes sealed = enclave_a.seal(common::to_bytes("local"));
  EXPECT_FALSE(enclave_b.unseal(sealed).ok());
}

TEST(EnclaveTest, CrossVersionUnsealFails) {
  QuotingAuthority authority(std::array<std::uint8_t, 32>{4});
  Platform platform(1, authority, test_rng(5));
  TestEnclave v1(platform, "1.0");
  TestEnclave v2(platform, "2.0");
  const common::Bytes sealed = v1.seal(common::to_bytes("v1 data"));
  EXPECT_FALSE(v2.unseal(sealed).ok());
}

TEST(EnclaveTest, ChannelBetweenEnclavesOnDistinctPlatforms) {
  QuotingAuthority authority(std::array<std::uint8_t, 32>{5});
  Platform platform_a(1, authority, test_rng(6));
  Platform platform_b(2, authority, test_rng(7));
  TestEnclave enclave_a(platform_a);
  TestEnclave enclave_b(platform_b);

  auto channel_a = enclave_a.channel_to(enclave_b.measurement(), true);
  auto channel_b = enclave_b.channel_to(enclave_a.measurement(), false);
  ASSERT_TRUE(channel_a->complete(channel_b->handshake_message()).ok());
  ASSERT_TRUE(channel_b->complete(channel_a->handshake_message()).ok());

  const common::Bytes msg = common::to_bytes("intermediate aggregate");
  const auto opened = channel_b->open(channel_a->seal(msg).value());
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value(), msg);
}

TEST(EnclaveTest, EpcReservationEnforced) {
  QuotingAuthority authority(std::array<std::uint8_t, 32>{6});
  Platform platform(1, authority, test_rng(8), /*epc_limit=*/1024);
  TestEnclave enclave(platform);
  auto alloc = enclave.reserve_epc(1000);
  ASSERT_TRUE(alloc.ok());
  const auto too_much = enclave.reserve_epc(100);
  ASSERT_FALSE(too_much.ok());
  EXPECT_EQ(too_much.error().code, common::Errc::capacity_exceeded);
}

TEST(EnclaveTest, EpcReleasedByRaii) {
  QuotingAuthority authority(std::array<std::uint8_t, 32>{7});
  Platform platform(1, authority, test_rng(9), /*epc_limit=*/1024);
  TestEnclave enclave(platform);
  {
    auto alloc = enclave.reserve_epc(1024);
    ASSERT_TRUE(alloc.ok());
    EXPECT_EQ(platform.epc().in_use(), 1024u);
  }
  EXPECT_EQ(platform.epc().in_use(), 0u);
  EXPECT_EQ(platform.epc().peak(), 1024u);
}

}  // namespace
}  // namespace gendpr::tee
