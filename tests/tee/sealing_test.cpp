#include "tee/sealing.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/bytes.hpp"

namespace gendpr::tee {
namespace {

using common::Bytes;

crypto::Csprng test_rng(std::uint8_t tag) {
  return crypto::Csprng(std::array<std::uint8_t, 32>{tag});
}

TEST(SealingTest, SealUnsealRoundTrip) {
  auto rng = test_rng(1);
  SealingService sealing(std::array<std::uint8_t, 32>{0x11});
  const Measurement m = measure("mod", "1");
  const Bytes secret = common::to_bytes("allele counts must stay private");
  const Bytes sealed = sealing.seal(m, secret, rng);
  const auto opened = sealing.unseal(m, sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value(), secret);
}

TEST(SealingTest, CiphertextDiffersFromPlaintext) {
  auto rng = test_rng(2);
  SealingService sealing(std::array<std::uint8_t, 32>{0x22});
  const Measurement m = measure("mod", "1");
  const Bytes secret = common::to_bytes("sensitive");
  const Bytes sealed = sealing.seal(m, secret, rng);
  EXPECT_EQ(sealed.size(), secret.size() + 12 + 16);
  // Plaintext must not appear inside the sealed blob.
  EXPECT_EQ(std::search(sealed.begin(), sealed.end(), secret.begin(),
                        secret.end()),
            sealed.end());
}

TEST(SealingTest, DifferentMeasurementCannotUnseal) {
  auto rng = test_rng(3);
  SealingService sealing(std::array<std::uint8_t, 32>{0x33});
  const Bytes sealed =
      sealing.seal(measure("mod", "1"), common::to_bytes("x"), rng);
  EXPECT_FALSE(sealing.unseal(measure("mod", "2"), sealed).ok());
  EXPECT_FALSE(sealing.unseal(measure("other", "1"), sealed).ok());
}

TEST(SealingTest, DifferentPlatformCannotUnseal) {
  auto rng = test_rng(4);
  SealingService platform_a(std::array<std::uint8_t, 32>{0xaa});
  SealingService platform_b(std::array<std::uint8_t, 32>{0xbb});
  const Measurement m = measure("mod", "1");
  const Bytes sealed = platform_a.seal(m, common::to_bytes("x"), rng);
  EXPECT_FALSE(platform_b.unseal(m, sealed).ok());
}

TEST(SealingTest, TamperedBlobRejected) {
  auto rng = test_rng(5);
  SealingService sealing(std::array<std::uint8_t, 32>{0x55});
  const Measurement m = measure("mod", "1");
  Bytes sealed = sealing.seal(m, common::to_bytes("payload"), rng);
  for (std::size_t i = 0; i < sealed.size(); i += 7) {
    Bytes corrupted = sealed;
    corrupted[i] ^= 0x01;
    EXPECT_FALSE(sealing.unseal(m, corrupted).ok()) << "byte " << i;
  }
}

TEST(SealingTest, TruncatedBlobRejected) {
  auto rng = test_rng(6);
  SealingService sealing(std::array<std::uint8_t, 32>{0x66});
  const Measurement m = measure("mod", "1");
  const Bytes sealed = sealing.seal(m, common::to_bytes("payload"), rng);
  for (std::size_t len : {0u, 5u, 27u}) {
    const auto result = sealing.unseal(
        m, common::BytesView(sealed.data(), std::min(len, sealed.size())));
    EXPECT_FALSE(result.ok()) << "len " << len;
  }
}

TEST(SealingTest, FreshNoncePerSeal) {
  auto rng = test_rng(7);
  SealingService sealing(std::array<std::uint8_t, 32>{0x77});
  const Measurement m = measure("mod", "1");
  const Bytes a = sealing.seal(m, common::to_bytes("same"), rng);
  const Bytes b = sealing.seal(m, common::to_bytes("same"), rng);
  EXPECT_NE(a, b);  // different nonces -> different ciphertexts
}

TEST(SealingTest, EmptyPlaintextRoundTrip) {
  auto rng = test_rng(8);
  SealingService sealing(std::array<std::uint8_t, 32>{0x88});
  const Measurement m = measure("mod", "1");
  const Bytes sealed = sealing.seal(m, {}, rng);
  const auto opened = sealing.unseal(m, sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_TRUE(opened.value().empty());
}

// Sealed blobs must be portable across AEAD backends: a blob sealed by a
// forced-portable service unseals in a forced-native process and vice versa
// (same root key and measurement -> same HKDF key; GCM is deterministic).
TEST(SealingTest, BlobsAreCompatibleAcrossBackends) {
  const std::array<std::uint8_t, 32> root{0x99};
  const Measurement m = measure("mod", "1");
  const Bytes secret = common::to_bytes("cross-backend sealed genotypes");

  ASSERT_EQ(setenv("GENDPR_CRYPTO_BACKEND", "portable", 1), 0);
  SealingService portable_svc(root);
  auto rng_p = test_rng(21);
  const Bytes sealed_portable = portable_svc.seal(m, secret, rng_p);

  ASSERT_EQ(setenv("GENDPR_CRYPTO_BACKEND", "native", 1), 0);
  SealingService native_svc(root);
  auto rng_n = test_rng(21);  // same seed -> same nonce
  const Bytes sealed_native = native_svc.seal(m, secret, rng_n);
  ASSERT_EQ(unsetenv("GENDPR_CRYPTO_BACKEND"), 0);

  EXPECT_EQ(sealed_portable, sealed_native);
  const auto cross_a = native_svc.unseal(m, sealed_portable);
  const auto cross_b = portable_svc.unseal(m, sealed_native);
  ASSERT_TRUE(cross_a.ok());
  ASSERT_TRUE(cross_b.ok());
  EXPECT_EQ(cross_a.value(), secret);
  EXPECT_EQ(cross_b.value(), secret);
}

TEST(SealingTest, RandomRootServicesAreIndependent) {
  auto rng = test_rng(9);
  SealingService a = SealingService::with_random_root(rng);
  SealingService b = SealingService::with_random_root(rng);
  const Measurement m = measure("mod", "1");
  const Bytes sealed = a.seal(m, common::to_bytes("x"), rng);
  EXPECT_TRUE(a.unseal(m, sealed).ok());
  EXPECT_FALSE(b.unseal(m, sealed).ok());
}

}  // namespace
}  // namespace gendpr::tee
