#include "tee/attestation.hpp"

#include <gtest/gtest.h>

namespace gendpr::tee {
namespace {

crypto::Sha256Digest report(std::uint8_t tag) {
  crypto::Sha256Digest d{};
  d[0] = tag;
  return d;
}

TEST(QuoteTest, SerializeDeserializeRoundTrip) {
  QuotingAuthority authority(std::array<std::uint8_t, 32>{1});
  const EnclaveIdentity identity{42, measure("mod", "1")};
  const Quote quote = authority.issue(identity, report(7));
  const auto restored = Quote::deserialize(quote.serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().identity, identity);
  EXPECT_EQ(restored.value().report_data, quote.report_data);
  EXPECT_EQ(restored.value().signature, quote.signature);
}

TEST(QuoteTest, DeserializeRejectsTruncation) {
  QuotingAuthority authority(std::array<std::uint8_t, 32>{1});
  const Quote quote = authority.issue({1, measure("m", "1")}, report(0));
  const common::Bytes full = quote.serialize();
  for (std::size_t len = 0; len < full.size(); len += 13) {
    EXPECT_FALSE(
        Quote::deserialize(common::BytesView(full.data(), len)).ok());
  }
}

TEST(QuoteTest, DeserializeRejectsTrailingBytes) {
  QuotingAuthority authority(std::array<std::uint8_t, 32>{1});
  common::Bytes data =
      authority.issue({1, measure("m", "1")}, report(0)).serialize();
  data.push_back(0x00);
  EXPECT_FALSE(Quote::deserialize(data).ok());
}

TEST(AttestationTest, IssueVerifyAccepts) {
  QuotingAuthority authority(std::array<std::uint8_t, 32>{2});
  const Quote quote = authority.issue({7, measure("gdo", "1")}, report(1));
  EXPECT_TRUE(authority.verify(quote).ok());
}

TEST(AttestationTest, ForgedSignatureRejected) {
  QuotingAuthority authority(std::array<std::uint8_t, 32>{3});
  Quote quote = authority.issue({7, measure("gdo", "1")}, report(1));
  quote.signature[5] ^= 0x80;
  const auto status = authority.verify(quote);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, common::Errc::attestation_rejected);
}

TEST(AttestationTest, TamperedMeasurementRejected) {
  QuotingAuthority authority(std::array<std::uint8_t, 32>{4});
  Quote quote = authority.issue({7, measure("gdo", "1")}, report(1));
  quote.identity.measurement = measure("malware", "1");
  EXPECT_FALSE(authority.verify(quote).ok());
}

TEST(AttestationTest, TamperedReportDataRejected) {
  QuotingAuthority authority(std::array<std::uint8_t, 32>{5});
  Quote quote = authority.issue({7, measure("gdo", "1")}, report(1));
  quote.report_data[0] ^= 1;
  EXPECT_FALSE(authority.verify(quote).ok());
}

TEST(AttestationTest, TamperedPlatformRejected) {
  QuotingAuthority authority(std::array<std::uint8_t, 32>{6});
  Quote quote = authority.issue({7, measure("gdo", "1")}, report(1));
  quote.identity.platform_id = 8;
  EXPECT_FALSE(authority.verify(quote).ok());
}

TEST(AttestationTest, QuoteFromOtherAuthorityRejected) {
  QuotingAuthority real(std::array<std::uint8_t, 32>{7});
  QuotingAuthority rogue(std::array<std::uint8_t, 32>{8});
  const Quote quote = rogue.issue({7, measure("gdo", "1")}, report(1));
  EXPECT_FALSE(real.verify(quote).ok());
}

TEST(AttestationTest, VerifyMeasurementChecksPolicy) {
  QuotingAuthority authority(std::array<std::uint8_t, 32>{9});
  const Measurement good = measure("gdo", "1");
  const Quote quote = authority.issue({7, good}, report(1));
  EXPECT_TRUE(authority.verify_measurement(quote, good).ok());
  const auto status =
      authority.verify_measurement(quote, measure("gdo", "2"));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, common::Errc::attestation_rejected);
}

}  // namespace
}  // namespace gendpr::tee
