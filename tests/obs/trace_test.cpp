#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace gendpr::obs {
namespace {

TEST(ObsTraceTest, SpansNestViaExplicitParents) {
  TraceRecorder recorder;
  const SpanId study = recorder.begin_span("study");
  const SpanId phase = recorder.begin_span("phase.maf", study);
  const SpanId combo = recorder.begin_span("maf.combination.0", phase);
  recorder.end_span(combo);
  recorder.end_span(phase);
  recorder.end_span(study);

  const auto spans = recorder.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "study");
  EXPECT_EQ(spans[0].parent, kNoSpan);
  EXPECT_EQ(spans[1].parent, study);
  EXPECT_EQ(spans[2].parent, phase);
  for (const auto& span : spans) {
    EXPECT_GE(span.duration_ms, 0.0) << span.name;
    EXPECT_GE(span.start_ms, 0.0) << span.name;
  }
  // Children cannot start before their parents.
  EXPECT_LE(spans[0].start_ms, spans[1].start_ms);
  EXPECT_LE(spans[1].start_ms, spans[2].start_ms);
}

TEST(ObsTraceTest, OpenSpansAndDoubleEnd) {
  TraceRecorder recorder;
  const SpanId open = recorder.begin_span("still.running");
  EXPECT_LT(recorder.spans()[0].duration_ms, 0.0);  // open marker
  recorder.end_span(open);
  const double first = recorder.spans()[0].duration_ms;
  recorder.end_span(open);                   // no-op
  recorder.end_span(static_cast<SpanId>(999));  // unknown id: no-op
  EXPECT_EQ(recorder.spans()[0].duration_ms, first);
}

TEST(ObsTraceTest, BogusParentIsSanitizedToTopLevel) {
  TraceRecorder recorder;
  const SpanId id = recorder.begin_span("orphan", static_cast<SpanId>(123));
  recorder.end_span(id);
  EXPECT_EQ(recorder.spans()[0].parent, kNoSpan);
}

TEST(ObsTraceTest, JsonRoundTrip) {
  TraceRecorder recorder;
  const SpanId study = recorder.begin_span("study");
  const SpanId phase = recorder.begin_span("phase.ld", study);
  recorder.end_span(phase);
  recorder.end_span(study);
  const SpanId open = recorder.begin_span("unfinished");
  (void)open;

  const auto round_tripped = TraceRecorder::spans_from_json(recorder.to_json());
  ASSERT_TRUE(round_tripped.ok()) << round_tripped.error().to_string();
  const auto original = recorder.spans();
  ASSERT_EQ(round_tripped.value().size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(round_tripped.value()[i].id, original[i].id);
    EXPECT_EQ(round_tripped.value()[i].parent, original[i].parent);
    EXPECT_EQ(round_tripped.value()[i].name, original[i].name);
    EXPECT_DOUBLE_EQ(round_tripped.value()[i].start_ms, original[i].start_ms);
    EXPECT_DOUBLE_EQ(round_tripped.value()[i].duration_ms,
                     original[i].duration_ms);
  }
}

TEST(ObsTraceTest, SpansFromJsonRejectsNonTrace) {
  EXPECT_FALSE(TraceRecorder::spans_from_json(JsonValue(3.0)).ok());
  JsonValue bad = JsonValue::array();
  bad.push_back(JsonValue("not a span"));
  EXPECT_FALSE(TraceRecorder::spans_from_json(bad).ok());
}

TEST(ObsTraceTest, ScopedSpanToleratesNullRecorder) {
  ScopedSpan nothing(nullptr, "ignored");
  EXPECT_EQ(nothing.id(), kNoSpan);
  nothing.end();  // harmless

  TraceRecorder recorder;
  {
    ScopedSpan scoped(&recorder, "raii");
    EXPECT_NE(scoped.id(), kNoSpan);
    ScopedSpan moved = std::move(scoped);
    EXPECT_NE(moved.id(), kNoSpan);
  }  // destructor closes the moved-to span exactly once
  ASSERT_EQ(recorder.span_count(), 1u);
  EXPECT_GE(recorder.spans()[0].duration_ms, 0.0);
}

TEST(ObsTraceTest, ConcurrentChildrenUnderOneParent) {
  // The LR phase opens combination spans from pool workers; the recorder
  // must keep ids and parents consistent under concurrency.
  TraceRecorder recorder;
  const SpanId phase = recorder.begin_span("phase.lr");
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, phase, t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        ScopedSpan span(&recorder,
                        "lr.combination." + std::to_string(t * 1000 + i),
                        phase);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  recorder.end_span(phase);

  const auto spans = recorder.spans();
  ASSERT_EQ(spans.size(), 1u + kThreads * kSpansPerThread);
  for (const auto& span : spans) {
    if (span.id == phase) continue;
    EXPECT_EQ(span.parent, phase);
    EXPECT_GE(span.duration_ms, 0.0);
  }
}

}  // namespace
}  // namespace gendpr::obs
