#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace gendpr::obs {
namespace {

TEST(ObsMetricsTest, CountersAccumulate) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.counter("never.touched"), 0u);
  registry.add_counter("requests");
  registry.add_counter("requests", 4);
  EXPECT_EQ(registry.counter("requests"), 5u);
}

TEST(ObsMetricsTest, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kIncrements; ++i) {
        registry.add_counter("shared");
        registry.max_gauge("high_water", static_cast<double>(i));
        registry.observe("samples", 1.0);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.counter("shared"),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(registry.gauge("high_water"), kIncrements - 1.0);
  ASSERT_TRUE(registry.histogram("samples").has_value());
  EXPECT_EQ(registry.histogram("samples")->count,
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(ObsMetricsTest, GaugeSemantics) {
  MetricsRegistry registry;
  EXPECT_FALSE(registry.gauge("absent").has_value());
  registry.set_gauge("threads", 4);
  registry.set_gauge("threads", 2);  // last write wins
  EXPECT_EQ(registry.gauge("threads"), 2.0);
  registry.max_gauge("peak", 10);
  registry.max_gauge("peak", 3);  // high-water mark keeps the max
  EXPECT_EQ(registry.gauge("peak"), 10.0);
}

TEST(ObsMetricsTest, HistogramPercentiles) {
  MetricsRegistry registry;
  EXPECT_FALSE(registry.histogram("absent").has_value());
  // 1..100 in scrambled order: percentiles are order-independent.
  for (int i = 0; i < 100; ++i) {
    registry.observe("latency", static_cast<double>((i * 37) % 100 + 1));
  }
  const auto stats = registry.histogram("latency");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->count, 100u);
  EXPECT_EQ(stats->min, 1.0);
  EXPECT_EQ(stats->max, 100.0);
  EXPECT_EQ(stats->sum, 5050.0);
  // Nearest-rank percentiles over 1..100 hit the rank exactly.
  EXPECT_EQ(stats->p50, 50.0);
  EXPECT_EQ(stats->p90, 90.0);
  EXPECT_EQ(stats->p99, 99.0);
}

TEST(ObsMetricsTest, SingleSampleHistogram) {
  MetricsRegistry registry;
  registry.observe("once", 7.0);
  const auto stats = registry.histogram("once");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->count, 1u);
  EXPECT_EQ(stats->p50, 7.0);
  EXPECT_EQ(stats->p99, 7.0);
}

TEST(ObsMetricsTest, LabelSemantics) {
  MetricsRegistry registry;
  EXPECT_FALSE(registry.label("crypto.backend").has_value());
  registry.set_label("crypto.backend", "portable");
  EXPECT_EQ(registry.label("crypto.backend"), "portable");
  registry.set_label("crypto.backend", "native");  // last write wins
  EXPECT_EQ(registry.label("crypto.backend"), "native");
}

TEST(ObsMetricsTest, ToJsonSnapshotsEveryInstrument) {
  MetricsRegistry registry;
  registry.add_counter("net.total_bytes", 1024);
  registry.set_gauge("pool.threads", 4);
  registry.set_label("crypto.backend", "portable");
  registry.observe("member.compute_ms", 12.5);
  const JsonValue snapshot = registry.to_json();
  const JsonValue* counters = snapshot.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("net.total_bytes"), nullptr);
  EXPECT_EQ(counters->find("net.total_bytes")->as_number(), 1024.0);
  const JsonValue* gauges = snapshot.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_NE(gauges->find("pool.threads"), nullptr);
  const JsonValue* labels = snapshot.find("labels");
  ASSERT_NE(labels, nullptr);
  ASSERT_NE(labels->find("crypto.backend"), nullptr);
  EXPECT_EQ(labels->find("crypto.backend")->as_string(), "portable");
  const JsonValue* histograms = snapshot.find("histograms");
  ASSERT_NE(histograms, nullptr);
  const JsonValue* latency = histograms->find("member.compute_ms");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->find("count")->as_number(), 1.0);
  EXPECT_EQ(latency->find("sum")->as_number(), 12.5);
}

TEST(ObsMetricsTest, ClearResetsEverything) {
  MetricsRegistry registry;
  registry.add_counter("c");
  registry.set_gauge("g", 1);
  registry.set_label("l", "x");
  registry.observe("h", 1);
  registry.clear();
  EXPECT_EQ(registry.counter("c"), 0u);
  EXPECT_FALSE(registry.gauge("g").has_value());
  EXPECT_FALSE(registry.label("l").has_value());
  EXPECT_FALSE(registry.histogram("h").has_value());
}

}  // namespace
}  // namespace gendpr::obs
