#include "obs/json.hpp"

#include <gtest/gtest.h>

namespace gendpr::obs {
namespace {

TEST(ObsJsonTest, ScalarsSerialize) {
  EXPECT_EQ(JsonValue().dump(), "null");
  EXPECT_EQ(JsonValue(true).dump(), "true");
  EXPECT_EQ(JsonValue(false).dump(), "false");
  EXPECT_EQ(JsonValue(42).dump(), "42");
  EXPECT_EQ(JsonValue(std::uint64_t{1234567890123}).dump(), "1234567890123");
  EXPECT_EQ(JsonValue(1.5).dump(), "1.5");
  EXPECT_EQ(JsonValue("hi").dump(), "\"hi\"");
}

TEST(ObsJsonTest, StringsAreEscaped) {
  EXPECT_EQ(JsonValue("a\"b\\c\n").dump(), "\"a\\\"b\\\\c\\n\"");
}

TEST(ObsJsonTest, ObjectsKeepInsertionOrder) {
  JsonValue doc = JsonValue::object();
  doc.set("zulu", 1);
  doc.set("alpha", 2);
  doc.set("mike", 3);
  EXPECT_EQ(doc.dump(), "{\"zulu\":1,\"alpha\":2,\"mike\":3}");
  // set() on an existing key replaces in place, preserving position.
  doc.set("alpha", 9);
  EXPECT_EQ(doc.dump(), "{\"zulu\":1,\"alpha\":9,\"mike\":3}");
}

TEST(ObsJsonTest, FindReturnsNullForMissingKeys) {
  JsonValue doc = JsonValue::object();
  doc.set("present", 1);
  ASSERT_NE(doc.find("present"), nullptr);
  EXPECT_EQ(doc.find("present")->as_number(), 1.0);
  EXPECT_EQ(doc.find("absent"), nullptr);
  EXPECT_EQ(JsonValue(3.0).find("anything"), nullptr);  // not an object
}

TEST(ObsJsonTest, RoundTripThroughParse) {
  JsonValue doc = JsonValue::object();
  doc.set("schema", "gendpr.run_report.v1");
  doc.set("count", 3);
  doc.set("ratio", 0.25);
  doc.set("ok", true);
  doc.set("missing", nullptr);
  JsonValue links = JsonValue::array();
  JsonValue link = JsonValue::object();
  link.set("from", 1);
  link.set("to", 2);
  links.push_back(std::move(link));
  doc.set("links", std::move(links));

  for (int indent : {0, 2}) {
    const auto parsed = JsonValue::parse(doc.dump(indent));
    ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
    EXPECT_EQ(parsed.value().dump(), doc.dump()) << "indent=" << indent;
  }
}

TEST(ObsJsonTest, ParseHandlesEscapesAndNesting) {
  const auto parsed =
      JsonValue::parse("{\"s\": \"a\\u0041\\n\", \"a\": [1, [2, {}]]}");
  ASSERT_TRUE(parsed.ok());
  ASSERT_NE(parsed.value().find("s"), nullptr);
  EXPECT_EQ(parsed.value().find("s")->as_string(), "aA\n");
  EXPECT_EQ(parsed.value().find("a")->as_array().size(), 2u);
}

TEST(ObsJsonTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::parse("").ok());
  EXPECT_FALSE(JsonValue::parse("{").ok());
  EXPECT_FALSE(JsonValue::parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::parse("nul").ok());
  EXPECT_FALSE(JsonValue::parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(JsonValue::parse("\"unterminated").ok());
}

}  // namespace
}  // namespace gendpr::obs
