#include "gendpr/release.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "genome/cohort.hpp"
#include "stats/association.hpp"

namespace gendpr::core {
namespace {

genome::Cohort small_cohort() {
  genome::CohortSpec spec;
  spec.num_case = 400;
  spec.num_control = 400;
  spec.num_snps = 50;
  spec.seed = 3;
  return genome::generate_cohort(spec);
}

TEST(ReleaseTest, ExactRowsMatchDirectComputation) {
  const genome::Cohort cohort = small_cohort();
  const std::vector<std::uint32_t> safe = {2, 7, 11};
  const Release release =
      build_release(cohort.cases, cohort.controls, safe);
  ASSERT_EQ(release.rows.size(), 3u);
  EXPECT_EQ(release.noise_free_count, 3u);
  EXPECT_EQ(release.dp_count, 0u);
  for (std::size_t i = 0; i < safe.size(); ++i) {
    const ReleaseRow& row = release.rows[i];
    EXPECT_EQ(row.snp, safe[i]);
    EXPECT_TRUE(row.noise_free);
    EXPECT_DOUBLE_EQ(row.case_count, cohort.cases.allele_count(safe[i]));
    EXPECT_DOUBLE_EQ(row.control_count,
                     cohort.controls.allele_count(safe[i]));
    const stats::SinglewiseTable table{
        cohort.cases.allele_count(safe[i]),
        cohort.cases.num_individuals(),
        cohort.controls.allele_count(safe[i]),
        cohort.controls.num_individuals()};
    EXPECT_DOUBLE_EQ(row.chi2, stats::chi2_statistic(table));
    EXPECT_DOUBLE_EQ(row.p_value, stats::chi2_p_value(table));
  }
}

TEST(ReleaseTest, EmptySafeSetGivesEmptyRelease) {
  const genome::Cohort cohort = small_cohort();
  const Release release = build_release(cohort.cases, cohort.controls, {});
  EXPECT_TRUE(release.rows.empty());
}

TEST(ReleaseTest, HybridCoversEverySnp) {
  const genome::Cohort cohort = small_cohort();
  const std::vector<std::uint32_t> safe = {0, 10, 20, 30, 40};
  ReleaseOptions options;
  options.dp_epsilon = 1.0;
  const Release release =
      build_release(cohort.cases, cohort.controls, safe, options);
  EXPECT_EQ(release.rows.size(), cohort.cases.num_snps());
  EXPECT_EQ(release.noise_free_count, 5u);
  EXPECT_EQ(release.dp_count, cohort.cases.num_snps() - 5u);
  // Rows sorted, each SNP exactly once, modes as expected.
  for (std::size_t i = 0; i < release.rows.size(); ++i) {
    EXPECT_EQ(release.rows[i].snp, i);
    const bool is_safe =
        std::binary_search(safe.begin(), safe.end(), release.rows[i].snp);
    EXPECT_EQ(release.rows[i].noise_free, is_safe);
  }
}

TEST(ReleaseTest, DpRowsAreActuallyPerturbed) {
  const genome::Cohort cohort = small_cohort();
  ReleaseOptions options;
  options.dp_epsilon = 0.5;
  const Release release =
      build_release(cohort.cases, cohort.controls, {}, options);
  int exact_matches = 0;
  for (const ReleaseRow& row : release.rows) {
    EXPECT_FALSE(row.noise_free);
    if (row.case_count ==
        static_cast<double>(cohort.cases.allele_count(row.snp))) {
      ++exact_matches;
    }
  }
  // Laplace noise is continuous: exact matches should be (essentially) none.
  EXPECT_LT(exact_matches, 3);
}

TEST(ReleaseTest, DpSeedReproducible) {
  const genome::Cohort cohort = small_cohort();
  ReleaseOptions options;
  options.dp_epsilon = 1.0;
  options.dp_seed = 99;
  const Release a = build_release(cohort.cases, cohort.controls, {5}, options);
  const Release b = build_release(cohort.cases, cohort.controls, {5}, options);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.rows[i].case_count, b.rows[i].case_count);
  }
}

TEST(ReleaseTest, TsvRendering) {
  const genome::Cohort cohort = small_cohort();
  const Release release =
      build_release(cohort.cases, cohort.controls, {1, 2});
  const std::string tsv = release_to_tsv(release);
  EXPECT_NE(tsv.find("snp\tmode\tcase_count"), std::string::npos);
  // Header + 2 rows = 3 newline-terminated lines.
  EXPECT_EQ(std::count(tsv.begin(), tsv.end(), '\n'), 3);
  EXPECT_NE(tsv.find("exact"), std::string::npos);
}

TEST(ReleaseTest, NoisyStatisticsStayFinite) {
  const genome::Cohort cohort = small_cohort();
  ReleaseOptions options;
  options.dp_epsilon = 0.05;  // huge noise: exercise clamping
  const Release release =
      build_release(cohort.cases, cohort.controls, {}, options);
  for (const ReleaseRow& row : release.rows) {
    EXPECT_TRUE(std::isfinite(row.maf));
    EXPECT_TRUE(std::isfinite(row.chi2));
    EXPECT_GE(row.p_value, 0.0);
    EXPECT_LE(row.p_value, 1.0);
  }
}

}  // namespace
}  // namespace gendpr::core
