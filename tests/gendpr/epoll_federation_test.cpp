// Federation over the event-loop front-ends: every GDO is a sans-IO session
// on its own hub (loopback TCP), driven by one or more event-loop threads.
// Whatever the transport (epoll, io_uring) and however the sessions are
// sharded across loops, the results must be bit-identical to the
// thread-per-node fabric.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "gendpr/federation.hpp"
#include "gendpr/session.hpp"
#include "gendpr/session_driver.hpp"
#include "net/epoll_hub.hpp"
#include "net/event_loop.hpp"
#include "net/uring_hub.hpp"
#include "tee/attestation.hpp"

namespace gendpr::core {
namespace {

genome::Cohort test_cohort(std::size_t cases, std::size_t controls,
                           std::size_t snps, std::uint64_t seed) {
  genome::CohortSpec spec;
  spec.num_case = cases;
  spec.num_control = controls;
  spec.num_snps = snps;
  spec.seed = seed;
  return genome::generate_cohort(spec);
}

TEST(EpollFederationTest, EightGdoStudyOnOneThreadMatchesThreaded) {
  const genome::Cohort cohort = test_cohort(400, 300, 60, 321);

  FederationSpec spec;
  spec.num_gdos = 8;
  spec.seed = 17;
  // Keep the epoll run strictly single-threaded: no compute pool either.
  spec.parallel_combinations = false;

  spec.transport = FederationSpec::TransportMode::in_process;
  const auto threaded = run_federated_study(cohort, spec);
  ASSERT_TRUE(threaded.ok()) << threaded.error().to_string();

  spec.transport = FederationSpec::TransportMode::epoll;
  const auto epoll = run_federated_study(cohort, spec);
  ASSERT_TRUE(epoll.ok()) << epoll.error().to_string();

  EXPECT_EQ(epoll.value().outcome.l_prime, threaded.value().outcome.l_prime);
  EXPECT_EQ(epoll.value().outcome.l_double_prime,
            threaded.value().outcome.l_double_prime);
  EXPECT_EQ(epoll.value().outcome.l_safe, threaded.value().outcome.l_safe);

  // The leader hub terminates every star link, so real traffic was metered.
  EXPECT_GT(epoll.value().network_bytes_total, 0u);
  EXPECT_GT(epoll.value().leader_bytes_received, 0u);
  EXPECT_FALSE(epoll.value().network_links.empty());
  // 7 members, two directions each.
  EXPECT_EQ(epoll.value().network_links.size(), 14u);
}

TEST(EpollFederationTest, MultiLoopShardingMatchesSingleLoop) {
  // Same G=8 study, sessions sharded across 3 event-loop threads: placement
  // must not leak into the protocol, so every selection is bit-identical.
  const genome::Cohort cohort = test_cohort(400, 300, 60, 321);

  FederationSpec spec;
  spec.num_gdos = 8;
  spec.seed = 17;
  spec.parallel_combinations = false;
  spec.transport = FederationSpec::TransportMode::in_process;
  const auto threaded = run_federated_study(cohort, spec);
  ASSERT_TRUE(threaded.ok()) << threaded.error().to_string();

  obs::Observability observability;
  spec.transport = FederationSpec::TransportMode::epoll;
  spec.event_loops = 3;
  spec.obs = &observability;
  const auto sharded = run_federated_study(cohort, spec);
  ASSERT_TRUE(sharded.ok()) << sharded.error().to_string();

  EXPECT_EQ(sharded.value().outcome.l_prime, threaded.value().outcome.l_prime);
  EXPECT_EQ(sharded.value().outcome.l_double_prime,
            threaded.value().outcome.l_double_prime);
  EXPECT_EQ(sharded.value().outcome.l_safe, threaded.value().outcome.l_safe);
  EXPECT_EQ(sharded.value().network_links.size(), 14u);
  EXPECT_EQ(observability.metrics.gauge("net.event_loops"), 3.0);
}

TEST(EpollFederationTest, UringTransportMatchesThreaded) {
  // The io_uring proactor behind the same Hub seam: identical selections.
  // On kernels without io_uring the spec downgrades to epoll with a logged
  // warning, so this passes either way — the uring-specific assertions are
  // simply exercised only where the kernel allows.
  const genome::Cohort cohort = test_cohort(400, 300, 60, 321);

  FederationSpec spec;
  spec.num_gdos = 8;
  spec.seed = 17;
  spec.parallel_combinations = false;
  spec.transport = FederationSpec::TransportMode::in_process;
  const auto threaded = run_federated_study(cohort, spec);
  ASSERT_TRUE(threaded.ok()) << threaded.error().to_string();

  obs::Observability observability;
  spec.transport = FederationSpec::TransportMode::uring;
  spec.obs = &observability;
  const auto uring = run_federated_study(cohort, spec);
  ASSERT_TRUE(uring.ok()) << uring.error().to_string();

  EXPECT_EQ(uring.value().outcome.l_prime, threaded.value().outcome.l_prime);
  EXPECT_EQ(uring.value().outcome.l_double_prime,
            threaded.value().outcome.l_double_prime);
  EXPECT_EQ(uring.value().outcome.l_safe, threaded.value().outcome.l_safe);
  EXPECT_GT(uring.value().network_bytes_total, 0u);
}

TEST(EpollFederationTest, EventLoopsEnvOverrideShardsTheStudy) {
  const genome::Cohort cohort = test_cohort(150, 150, 40, 654);
  FederationSpec spec;
  spec.num_gdos = 4;
  spec.transport = FederationSpec::TransportMode::in_process;
  const auto threaded = run_federated_study(cohort, spec);
  ASSERT_TRUE(threaded.ok());

  obs::Observability observability;
  spec.transport = FederationSpec::TransportMode::epoll;
  spec.obs = &observability;
  ASSERT_EQ(::setenv("GENDPR_EVENT_LOOPS", "2", 1), 0);
  const auto sharded = run_federated_study(cohort, spec);
  ::unsetenv("GENDPR_EVENT_LOOPS");
  ASSERT_TRUE(sharded.ok()) << sharded.error().to_string();
  EXPECT_EQ(sharded.value().outcome.l_safe, threaded.value().outcome.l_safe);
  EXPECT_EQ(observability.metrics.gauge("net.event_loops"), 2.0);
}

TEST(EpollFederationTest, TransportEnvOverrideSelectsEpoll) {
  const genome::Cohort cohort = test_cohort(150, 150, 40, 654);
  FederationSpec spec;
  spec.num_gdos = 3;

  spec.transport = FederationSpec::TransportMode::in_process;
  const auto threaded = run_federated_study(cohort, spec);
  ASSERT_TRUE(threaded.ok());

  ASSERT_EQ(::setenv("GENDPR_TRANSPORT", "epoll", 1), 0);
  const auto epoll = run_federated_study(cohort, spec);
  ::unsetenv("GENDPR_TRANSPORT");
  ASSERT_TRUE(epoll.ok()) << epoll.error().to_string();
  EXPECT_EQ(epoll.value().outcome.l_safe, threaded.value().outcome.l_safe);
}

TEST(EpollFederationTest, ObservabilityAndTimingsSurviveTheEpollPath) {
  const genome::Cohort cohort = test_cohort(150, 150, 40, 777);
  obs::Observability observability;
  FederationSpec spec;
  spec.num_gdos = 3;
  spec.transport = FederationSpec::TransportMode::epoll;
  spec.obs = &observability;
  const auto result = run_federated_study(cohort, spec);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_GT(result.value().timings.total_ms, 0.0);
  EXPECT_GT(result.value().epc_peak_leader, 0u);
  // The member sessions ran for real: their request counters registered.
  bool member_counter = false;
  for (std::uint32_t g = 0; g < 3; ++g) {
    member_counter = member_counter ||
                     observability.metrics.counter(
                         "member." + std::to_string(g) + ".requests") > 0;
  }
  EXPECT_TRUE(member_counter);
}

TEST(EpollFederationTest, BroadcastSerializesEachMessageExactlyOnce) {
  // Serialize-once conservation over a G=8 star: every sealed record is
  // either a message's first seal (wire.serializations) or a fan-out reuse
  // of an already-staged body (wire.fanout_reuses). A regression that
  // re-serializes per recipient breaks the equality; one that re-stages per
  // broadcast breaks the reuse lower bound.
  const genome::Cohort cohort = test_cohort(400, 300, 60, 321);

  obs::Observability observability;
  FederationSpec spec;
  spec.num_gdos = 8;
  spec.seed = 17;
  spec.parallel_combinations = false;
  spec.transport = FederationSpec::TransportMode::epoll;
  spec.obs = &observability;
  const auto result = run_federated_study(cohort, spec);
  ASSERT_TRUE(result.ok()) << result.error().to_string();

  const double serializations =
      observability.metrics.counter("wire.serializations");
  const double reuses = observability.metrics.counter("wire.fanout_reuses");
  const double records = observability.metrics.counter("wire.records_sent");
  EXPECT_GT(serializations, 0.0);
  EXPECT_GT(records, 0.0);
  // Conservation: first seals plus reuses account for every sealed record.
  EXPECT_EQ(serializations + reuses, records);
  // Serialize-once means strictly fewer serializations than records: the
  // announce, phase-1, phase-2 tile, and phase-3 broadcasts each reach the
  // 7 members off ONE staging (6 reuses apiece beyond the first seal).
  EXPECT_LT(serializations, records);
  EXPECT_GE(reuses, 3.0 * (8 - 2));

  // The run pool fed the hubs and sessions, and its stats were exported.
  EXPECT_GT(observability.metrics.counter("net.pool.hits") +
                observability.metrics.counter("net.pool.misses"),
            0.0);
  EXPECT_GT(observability.metrics.counter("wire.writev_batches"), 0.0);
}

TEST(EpollFederationTest, SilentMemberTimesOutOverEpoll) {
  // Leader expects 3 GDOs; only GDO 1 ever dials. The leader's session
  // deadline fires through the driver's loop timer, the study aborts with a
  // timeout naming GDO 2, and the survivor receives the abort notice over
  // its socket instead of hanging — all on this one thread.
  const genome::Cohort cohort = test_cohort(120, 120, 30, 42);
  tee::QuotingAuthority authority(std::array<std::uint8_t, 32>{0x61});
  tee::Platform leader_platform(
      1, authority, crypto::Csprng(std::array<std::uint8_t, 32>{1}));
  tee::Platform member_platform(
      2, authority, crypto::Csprng(std::array<std::uint8_t, 32>{2}));

  StudyAnnounce announce;
  announce.num_snps = 30;
  announce.combinations =
      Coordinator::build_combinations(3, CollusionPolicy::none());

  net::EventLoop loop;
  ASSERT_TRUE(loop.valid());
  auto leader_hub = net::EpollHub::create(loop, node_id_of(0), 0);
  auto member_hub = net::EpollHub::create(loop, node_id_of(1), 0);
  ASSERT_TRUE(leader_hub.ok());
  ASSERT_TRUE(member_hub.ok());

  LeaderSession leader(leader_platform, 0, 3, cohort.cases.slice_rows(0, 60),
                       cohort.controls, announce);
  leader.set_receive_timeout(std::chrono::milliseconds(300));
  MemberSession member(member_platform, 1, 0,
                       cohort.cases.slice_rows(60, 120));

  EpollSessionDriver leader_driver(loop, *leader_hub.value(), leader);
  EpollSessionDriver member_driver(loop, *member_hub.value(), member);
  member_hub.value()->connect_peer(node_id_of(0), "127.0.0.1",
                                   leader_hub.value()->port());
  member_driver.start();
  leader_driver.start();
  loop.run_until(
      [&] { return leader_driver.finished() && member_driver.finished(); });

  ASSERT_EQ(leader.wants(), SessionWants::failed);
  EXPECT_EQ(leader.status().error().code, common::Errc::timeout);
  EXPECT_NE(leader.status().error().message.find("2"), std::string::npos)
      << leader.status().error().to_string();
  ASSERT_EQ(member.wants(), SessionWants::failed);
  EXPECT_EQ(member.status().error().code, common::Errc::aborted)
      << member.status().error().to_string();
}

}  // namespace
}  // namespace gendpr::core
