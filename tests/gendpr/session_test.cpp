// Step-level tests of the sans-IO protocol sessions: a whole federation is
// pumped one step() at a time with no transport, no threads, and no clock
// beyond the TimePoints the test chooses to report. The same surface the
// epoll driver and the fuzz harnesses use.
#include <gtest/gtest.h>

#include <chrono>
#include <deque>
#include <memory>
#include <vector>

#include "gendpr/federation.hpp"
#include "gendpr/messages.hpp"
#include "gendpr/session.hpp"
#include "gendpr/trusted.hpp"
#include "tee/attestation.hpp"

namespace gendpr::core {
namespace {

using Clock = ProtocolSession::Clock;

/// One delivered frame of a pumped federation, in delivery order.
struct TranscriptEntry {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  common::Bytes payload;
};

/// Routes frames between the sessions (indexed by GDO) until no session has
/// output left, recording every delivery. Breadth-first FIFO order, so the
/// transcript is deterministic.
std::vector<TranscriptEntry> pump_federation(
    std::vector<ProtocolSession*> sessions) {
  std::deque<TranscriptEntry> in_flight;
  const auto collect = [&](std::uint32_t from, std::vector<OutFrame> frames) {
    for (OutFrame& frame : frames) {
      in_flight.push_back(TranscriptEntry{
          from, frame.to_gdo, std::move(frame.payload).take_payload()});
    }
  };
  for (std::uint32_t g = 0; g < sessions.size(); ++g) {
    collect(g, sessions[g]->step({}));
  }
  std::vector<TranscriptEntry> transcript;
  while (!in_flight.empty()) {
    TranscriptEntry entry = std::move(in_flight.front());
    in_flight.pop_front();
    transcript.push_back(entry);
    collect(entry.to,
            sessions[entry.to]->step({InFrame{entry.from, entry.payload}}));
  }
  return transcript;
}

/// Fixed 3-GDO study material shared by the tests below (leader = GDO 0).
struct StudyFixture {
  static constexpr std::uint32_t kGdos = 3;

  StudyFixture() : authority(std::array<std::uint8_t, 32>{0x51}) {
    genome::CohortSpec cohort_spec;
    cohort_spec.num_case = 120;
    cohort_spec.num_control = 120;
    cohort_spec.num_snps = 40;
    cohort_spec.seed = 91;
    cohort = genome::generate_cohort(cohort_spec);
    ranges = genome::equal_partition(cohort_spec.num_case, kGdos);
    for (std::uint32_t g = 0; g < kGdos; ++g) {
      platforms.push_back(std::make_unique<tee::Platform>(
          g + 1, authority,
          crypto::Csprng(
              std::array<std::uint8_t, 32>{static_cast<std::uint8_t>(g + 1)})));
    }
    announce.study_id = 13;
    announce.num_snps = static_cast<std::uint32_t>(cohort_spec.num_snps);
    announce.combinations =
        Coordinator::build_combinations(kGdos, CollusionPolicy::none());
  }

  std::unique_ptr<LeaderSession> make_leader() {
    return std::make_unique<LeaderSession>(
        *platforms[0], 0, kGdos,
        cohort.cases.slice_rows(ranges[0].first, ranges[0].second),
        cohort.controls, announce);
  }
  std::unique_ptr<MemberSession> make_member(std::uint32_t g) {
    return std::make_unique<MemberSession>(
        *platforms[g], g, 0,
        cohort.cases.slice_rows(ranges[g].first, ranges[g].second));
  }

  tee::QuotingAuthority authority;
  genome::Cohort cohort;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  std::vector<std::unique_ptr<tee::Platform>> platforms;
  StudyAnnounce announce;
};

TEST(SessionTest, GoldenTranscriptMatchesInProcessRun) {
  StudyFixture fixture;
  auto leader = fixture.make_leader();
  auto member1 = fixture.make_member(1);
  auto member2 = fixture.make_member(2);

  const std::vector<TranscriptEntry> transcript =
      pump_federation({leader.get(), member1.get(), member2.get()});

  ASSERT_EQ(leader->wants(), SessionWants::done)
      << leader->status().error().to_string();
  ASSERT_EQ(member1->wants(), SessionWants::done)
      << member1->status().error().to_string();
  ASSERT_EQ(member2->wants(), SessionWants::done)
      << member2->status().error().to_string();
  EXPECT_TRUE(member1->enclave().study_complete());
  EXPECT_TRUE(member2->enclave().study_complete());

  // The very first deliveries are the member handshakes toward the leader.
  ASSERT_GE(transcript.size(), 2u);
  EXPECT_EQ(transcript[0].to, 0u);
  EXPECT_EQ(transcript[1].to, 0u);

  // Per member: every leader request except phase1/phase3 draws a reply, so
  // the leader sends exactly two more frames than it receives (handshake
  // reply, announce, k moments requests, phase2, phase1+phase3 unanswered).
  for (std::uint32_t member : {1u, 2u}) {
    std::size_t to_member = 0;
    std::size_t from_member = 0;
    for (const TranscriptEntry& entry : transcript) {
      if (entry.to == member) ++to_member;
      if (entry.from == member) ++from_member;
    }
    EXPECT_EQ(to_member, from_member + 2) << "member " << member;
  }

  // The step-driven outcome is the same study the in-process fabric runs.
  FederationSpec spec;
  spec.num_gdos = StudyFixture::kGdos;
  const auto reference = run_federated_study(fixture.cohort, spec);
  ASSERT_TRUE(reference.ok()) << reference.error().to_string();
  EXPECT_EQ(leader->result().outcome.l_prime,
            reference.value().outcome.l_prime);
  EXPECT_EQ(leader->result().outcome.l_double_prime,
            reference.value().outcome.l_double_prime);
  EXPECT_EQ(leader->result().outcome.l_safe, reference.value().outcome.l_safe);
  EXPECT_EQ(member1->enclave().safe_snps(), leader->result().outcome.l_safe);

  // Same seeds, same sessions => byte-identical wire transcript.
  StudyFixture replay;
  auto leader2 = replay.make_leader();
  auto member1b = replay.make_member(1);
  auto member2b = replay.make_member(2);
  const std::vector<TranscriptEntry> transcript2 =
      pump_federation({leader2.get(), member1b.get(), member2b.get()});
  ASSERT_EQ(transcript.size(), transcript2.size());
  for (std::size_t i = 0; i < transcript.size(); ++i) {
    EXPECT_EQ(transcript[i].from, transcript2[i].from) << "frame " << i;
    EXPECT_EQ(transcript[i].to, transcript2[i].to) << "frame " << i;
    EXPECT_EQ(transcript[i].payload, transcript2[i].payload) << "frame " << i;
  }
}

TEST(SessionTest, HandshakeFromUnknownNodeFails) {
  StudyFixture fixture;
  auto leader = fixture.make_leader();
  leader->step({InFrame{7, common::Bytes{1, 2, 3}}});
  ASSERT_EQ(leader->wants(), SessionWants::failed);
  EXPECT_EQ(leader->status().error().code, common::Errc::unknown_peer);
  EXPECT_NE(leader->status().error().message.find("unknown node"),
            std::string::npos);
}

TEST(SessionTest, MalformedHandshakeFails) {
  StudyFixture fixture;
  auto leader = fixture.make_leader();
  leader->step({InFrame{1, common::Bytes(16, 0xAB)}});
  ASSERT_EQ(leader->wants(), SessionWants::failed);
  EXPECT_FALSE(leader->status().ok());
}

TEST(SessionTest, TruncatedHandshakeFails) {
  StudyFixture fixture;
  auto leader = fixture.make_leader();
  auto member = fixture.make_member(1);
  std::vector<OutFrame> handshake = member->step({});
  ASSERT_EQ(handshake.size(), 1u);
  common::Bytes truncated = std::move(handshake[0].payload).take_payload();
  truncated.resize(truncated.size() / 2);
  leader->step({InFrame{1, std::move(truncated)}});
  ASSERT_EQ(leader->wants(), SessionWants::failed);
  EXPECT_FALSE(leader->status().ok());
}

TEST(SessionTest, WrongAuthorityHandshakeIsRejected) {
  StudyFixture fixture;
  auto leader = fixture.make_leader();
  // A member attested by a different quoting authority: its quote cannot
  // verify against the leader's deployment root.
  tee::QuotingAuthority rogue_authority(std::array<std::uint8_t, 32>{0x99});
  tee::Platform rogue_platform(9, rogue_authority,
                               crypto::Csprng(std::array<std::uint8_t, 32>{9}));
  MemberSession rogue(rogue_platform, 1, 0,
                      fixture.cohort.cases.slice_rows(0, 40));
  std::vector<OutFrame> handshake = rogue.step({});
  ASSERT_EQ(handshake.size(), 1u);
  leader->step({InFrame{1, std::move(handshake[0].payload).take_payload()}});
  ASSERT_EQ(leader->wants(), SessionWants::failed);
  EXPECT_EQ(leader->status().error().code, common::Errc::attestation_rejected);
}

TEST(SessionTest, TamperedRecordFailsDecryption) {
  StudyFixture fixture;
  auto leader = fixture.make_leader();
  auto member1 = fixture.make_member(1);
  auto member2 = fixture.make_member(2);

  // Handshakes complete cleanly...
  std::vector<OutFrame> hs1 = member1->step({});
  std::vector<OutFrame> hs2 = member2->step({});
  ASSERT_EQ(hs1.size(), 1u);
  ASSERT_EQ(hs2.size(), 1u);
  std::vector<OutFrame> replies =
      leader->step({InFrame{1, std::move(hs1[0].payload).take_payload()},
                    InFrame{2, std::move(hs2[0].payload).take_payload()}});
  common::Bytes to_member1;
  for (OutFrame& frame : replies) {
    if (frame.to_gdo == 1 && to_member1.empty()) {
      to_member1 = std::move(frame.payload).take_payload();
    }
  }
  ASSERT_FALSE(to_member1.empty());
  // ...but the handshake reply reaching member 1 is tampered in flight.
  to_member1[to_member1.size() / 2] ^= 0x01;
  member1->step({InFrame{0, std::move(to_member1)}});
  ASSERT_EQ(member1->wants(), SessionWants::failed);
  EXPECT_FALSE(member1->status().ok());
}

TEST(SessionTest, ReplayedRecordIsRejected) {
  StudyFixture fixture;
  auto leader = fixture.make_leader();
  auto member1 = fixture.make_member(1);
  auto member2 = fixture.make_member(2);

  std::vector<OutFrame> hs1 = member1->step({});
  std::vector<OutFrame> hs2 = member2->step({});
  std::vector<OutFrame> replies =
      leader->step({InFrame{1, std::move(hs1[0].payload).take_payload()},
                    InFrame{2, std::move(hs2[0].payload).take_payload()}});
  // First frame to member 1 is its handshake reply; the next (the sealed
  // study announce) is the replay victim.
  common::Bytes reply1;
  common::Bytes announce1;
  for (OutFrame& frame : replies) {
    if (frame.to_gdo != 1) continue;
    if (reply1.empty()) {
      reply1 = std::move(frame.payload).take_payload();
    } else if (announce1.empty()) {
      announce1 = std::move(frame.payload).take_payload();
    }
  }
  ASSERT_FALSE(reply1.empty());
  ASSERT_FALSE(announce1.empty());
  const common::Bytes replay = announce1;
  member1->step({InFrame{0, std::move(reply1)}});
  member1->step({InFrame{0, std::move(announce1)}});
  ASSERT_EQ(member1->wants(), SessionWants::recv);
  // The channel's record counter has moved on: a verbatim replay of the
  // announce cannot authenticate again.
  member1->step({InFrame{0, replay}});
  ASSERT_EQ(member1->wants(), SessionWants::failed);
  EXPECT_FALSE(member1->status().ok());
}

TEST(SessionTest, UnexpectedMessageTypeFails) {
  StudyFixture fixture;
  auto member = fixture.make_member(1);
  std::vector<OutFrame> handshake = member->step({});
  ASSERT_EQ(handshake.size(), 1u);

  // The test plays leader with the tee primitives directly, so it can seal
  // a syntactically valid record of a type the member must refuse.
  GdoEnclave fake_leader(*fixture.platforms[0], 0);
  ASSERT_TRUE(
      fake_leader.provision_dataset(fixture.cohort.cases.slice_rows(0, 40))
          .ok());
  auto channel = fake_leader.channel_to(trusted_module_measurement(),
                                        /*initiator=*/false);
  ASSERT_TRUE(channel->complete(handshake[0].payload.payload()).ok());
  member->step({InFrame{0, channel->handshake_message()}});
  ASSERT_EQ(member->wants(), SessionWants::recv);

  auto sealed = channel->seal(envelope(MsgType::summary_stats, {}));
  ASSERT_TRUE(sealed.ok());
  member->step({InFrame{0, std::move(sealed).take()}});
  ASSERT_EQ(member->wants(), SessionWants::failed);
  EXPECT_EQ(member->status().error().code, common::Errc::bad_message);
  EXPECT_NE(member->status().error().message.find("unexpected message type"),
            std::string::npos);
}

TEST(SessionTest, MemberHandshakeDeadlineExpires) {
  StudyFixture fixture;
  auto member = fixture.make_member(1);
  member->set_receive_timeout(std::chrono::milliseconds(50));
  const auto start = Clock::now();
  member->step({}, start);
  ASSERT_EQ(member->wants(), SessionWants::recv);
  const auto deadline = member->next_deadline();
  ASSERT_TRUE(deadline.has_value());
  EXPECT_EQ(*deadline, start + std::chrono::milliseconds(50));
  // A tick before the deadline is ignored; one past it times the wait out.
  member->on_tick(start + std::chrono::milliseconds(10));
  EXPECT_EQ(member->wants(), SessionWants::recv);
  member->on_tick(start + std::chrono::milliseconds(60));
  ASSERT_EQ(member->wants(), SessionWants::failed);
  EXPECT_EQ(member->status().error().code, common::Errc::timeout);
  EXPECT_NE(member->status().error().message.find("in handshake"),
            std::string::npos);
}

TEST(SessionTest, MemberTransportClosedFails) {
  StudyFixture fixture;
  auto member = fixture.make_member(1);
  member->step({});
  ASSERT_EQ(member->wants(), SessionWants::recv);
  member->on_transport_closed(Clock::now());
  ASSERT_EQ(member->wants(), SessionWants::failed);
  EXPECT_EQ(member->status().error().code, common::Errc::state_violation);
  EXPECT_NE(member->status().error().message.find("mailbox closed"),
            std::string::npos);
}

TEST(SessionTest, LeaderHandshakeDeadlineMarksAllDead) {
  StudyFixture fixture;
  auto leader = fixture.make_leader();
  leader->set_receive_timeout(std::chrono::milliseconds(50));
  const auto start = Clock::now();
  leader->step({}, start);
  ASSERT_EQ(leader->wants(), SessionWants::recv);
  leader->on_tick(start + std::chrono::milliseconds(60));
  leader->step({}, start + std::chrono::milliseconds(60));
  ASSERT_EQ(leader->wants(), SessionWants::failed);
  EXPECT_EQ(leader->status().error().code, common::Errc::timeout);
  EXPECT_NE(leader->status().error().message.find("unresponsive gdo(s): 1 2"),
            std::string::npos)
      << leader->status().error().to_string();
}

TEST(SessionTest, LeaderPeerLossDuringHandshakeFails) {
  StudyFixture fixture;
  auto leader = fixture.make_leader();
  leader->step({});
  ASSERT_EQ(leader->wants(), SessionWants::recv);
  leader->on_peer_lost(1, Clock::now());
  leader->on_peer_lost(2, Clock::now());
  leader->step({});
  ASSERT_EQ(leader->wants(), SessionWants::failed);
  EXPECT_EQ(leader->status().error().code, common::Errc::timeout);
  EXPECT_NE(leader->status().error().message.find("unresponsive gdo(s): 1 2"),
            std::string::npos);
}

TEST(SessionTest, SilentMemberTimesOutAndSurvivorGetsAbortNotice) {
  StudyFixture fixture;
  auto leader = fixture.make_leader();
  auto member1 = fixture.make_member(1);
  leader->set_receive_timeout(std::chrono::milliseconds(50));

  const auto start = Clock::now();
  std::vector<OutFrame> hs1 = member1->step({}, start);
  ASSERT_EQ(hs1.size(), 1u);
  std::vector<OutFrame> replies =
      leader->step({InFrame{1, std::move(hs1[0].payload).take_payload()}},
                   start);
  ASSERT_EQ(replies.size(), 1u);
  member1->step({InFrame{0, std::move(replies[0].payload).take_payload()}},
                start);
  ASSERT_EQ(member1->wants(), SessionWants::recv);

  // GDO 2 never handshakes; the leader's deadline passes, the lone
  // combination dies with it, and the survivor is told to stop waiting.
  leader->on_tick(start + std::chrono::milliseconds(60));
  std::vector<OutFrame> aborts =
      leader->step({}, start + std::chrono::milliseconds(60));
  ASSERT_EQ(leader->wants(), SessionWants::failed);
  EXPECT_EQ(leader->status().error().code, common::Errc::timeout);
  ASSERT_EQ(aborts.size(), 1u);
  EXPECT_EQ(aborts[0].to_gdo, 1u);

  member1->step({InFrame{0, std::move(aborts[0].payload).take_payload()}});
  ASSERT_EQ(member1->wants(), SessionWants::failed);
  EXPECT_EQ(member1->status().error().code, common::Errc::aborted);
  EXPECT_NE(member1->status().error().message.find("study aborted by leader"),
            std::string::npos);
}

TEST(SessionTest, ProvisionFailureSurfacesAtStart) {
  tee::QuotingAuthority authority(std::array<std::uint8_t, 32>{0x52});
  tee::Platform tiny(1, authority,
                     crypto::Csprng(std::array<std::uint8_t, 32>{1}),
                     /*epc_limit=*/64);
  genome::CohortSpec cohort_spec;
  cohort_spec.num_case = 64;
  cohort_spec.num_control = 64;
  cohort_spec.num_snps = 32;
  cohort_spec.seed = 5;
  const genome::Cohort cohort = genome::generate_cohort(cohort_spec);
  MemberSession member(tiny, 1, 0, cohort.cases.slice_rows(0, 64));
  EXPECT_FALSE(member.provision_status().ok());
  EXPECT_EQ(member.provision_status().error().code,
            common::Errc::capacity_exceeded);
  member.step({});
  ASSERT_EQ(member.wants(), SessionWants::failed);
  EXPECT_EQ(member.status().error().code, common::Errc::capacity_exceeded);
}

TEST(SessionTest, FramesArrivingMidComputeAreBuffered) {
  // Both handshakes land before the leader's protocol body ever runs: the
  // session must queue them like a mailbox and consume them in order.
  StudyFixture fixture;
  auto leader = fixture.make_leader();
  auto member1 = fixture.make_member(1);
  auto member2 = fixture.make_member(2);
  std::vector<OutFrame> hs1 = member1->step({});
  std::vector<OutFrame> hs2 = member2->step({});
  leader->on_frame(1, std::move(hs1[0].payload).take_payload(), Clock::now());
  leader->on_frame(2, std::move(hs2[0].payload).take_payload(), Clock::now());
  const std::vector<OutFrame> replies = leader->step({});
  ASSERT_EQ(leader->wants(), SessionWants::recv);
  // Handshake replies for both members plus the first sealed requests.
  std::size_t to1 = 0;
  std::size_t to2 = 0;
  for (const OutFrame& frame : replies) {
    to1 += frame.to_gdo == 1 ? 1 : 0;
    to2 += frame.to_gdo == 2 ? 1 : 0;
  }
  EXPECT_GE(to1, 1u);
  EXPECT_GE(to2, 1u);
}

}  // namespace
}  // namespace gendpr::core
