// Integration: the full data path a real deployment would take - per-GDO
// VCF-lite files on disk, signed manifests verified before the data is
// admitted (threat model §4: "checking the authenticity of signed VCF
// files"), datasets loaded into enclaves, federation run, results matching
// an in-memory run over the same cohort.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "gendpr/federation.hpp"
#include "genome/vcf_lite.hpp"

namespace gendpr::core {
namespace {

struct VcfWorkspace {
  std::vector<std::string> paths;

  ~VcfWorkspace() {
    for (const auto& path : paths) std::remove(path.c_str());
  }
};

TEST(VcfIntegrationTest, FileBackedStudyMatchesInMemory) {
  genome::CohortSpec spec;
  spec.num_case = 300;
  spec.num_control = 300;
  spec.num_snps = 80;
  spec.seed = 77;
  const genome::Cohort cohort = genome::generate_cohort(spec);

  constexpr std::uint32_t kGdos = 3;
  const auto ranges = genome::equal_partition(spec.num_case, kGdos);
  const common::Bytes signing_key = common::to_bytes("federation-roster-key");

  // Each GDO persists its slice as a signed VCF-lite file.
  VcfWorkspace workspace;
  std::vector<genome::DatasetManifest> manifests;
  for (std::uint32_t g = 0; g < kGdos; ++g) {
    genome::VcfLite vcf;
    vcf.genotypes = cohort.cases.slice_rows(ranges[g].first, ranges[g].second);
    for (std::size_t l = 0; l < spec.num_snps; ++l) {
      vcf.snp_ids.push_back("rs" + std::to_string(l));
    }
    const std::string path =
        ::testing::TempDir() + "/gendpr_gdo" + std::to_string(g) + ".vcf";
    ASSERT_TRUE(genome::write_vcf_lite_file(path, vcf).ok());
    workspace.paths.push_back(path);
    const std::string text = genome::write_vcf_lite(vcf);
    manifests.push_back(
        genome::sign_dataset("study-slice-" + std::to_string(g), text,
                             signing_key));
  }

  // Reload from disk, verify manifests, reassemble the case matrix.
  genome::GenotypeMatrix reassembled(spec.num_case, spec.num_snps);
  std::size_t row = 0;
  for (std::uint32_t g = 0; g < kGdos; ++g) {
    const auto loaded = genome::read_vcf_lite_file(workspace.paths[g]);
    ASSERT_TRUE(loaded.ok());
    const std::string text = genome::write_vcf_lite(loaded.value());
    ASSERT_TRUE(
        genome::verify_dataset(manifests[g], text, signing_key).ok());
    for (std::size_t n = 0; n < loaded.value().genotypes.num_individuals();
         ++n, ++row) {
      for (std::size_t l = 0; l < spec.num_snps; ++l) {
        reassembled.set(row, l, loaded.value().genotypes.get(n, l));
      }
    }
  }
  ASSERT_EQ(row, spec.num_case);
  ASSERT_EQ(reassembled, cohort.cases);

  // A federation over the file-backed cohort must match the in-memory run.
  genome::Cohort file_cohort;
  file_cohort.cases = reassembled;
  file_cohort.controls = cohort.controls;

  FederationSpec fed;
  fed.num_gdos = kGdos;
  const auto from_files = run_federated_study(file_cohort, fed);
  const auto in_memory = run_federated_study(cohort, fed);
  ASSERT_TRUE(from_files.ok());
  ASSERT_TRUE(in_memory.ok());
  EXPECT_EQ(from_files.value().outcome.l_safe,
            in_memory.value().outcome.l_safe);
}

TEST(VcfIntegrationTest, TamperedSliceIsDetectedBeforeStudy) {
  genome::VcfLite vcf;
  vcf.genotypes = genome::GenotypeMatrix(4, 6);
  vcf.genotypes.set(1, 3, true);
  for (std::size_t l = 0; l < 6; ++l) {
    vcf.snp_ids.push_back("rs" + std::to_string(l));
  }
  const common::Bytes signing_key = common::to_bytes("roster");
  std::string text = genome::write_vcf_lite(vcf);
  const genome::DatasetManifest manifest =
      genome::sign_dataset("slice", text, signing_key);

  // A compromised GDO swaps one genotype to skew the study.
  const std::size_t flip = text.rfind('0');
  ASSERT_NE(flip, std::string::npos);
  text[flip] = '1';
  const auto status = genome::verify_dataset(manifest, text, signing_key);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, common::Errc::attestation_rejected);
}

}  // namespace
}  // namespace gendpr::core
