// Failure injection at the federation level: a compromised/malfunctioning
// host between the enclaves. Everything the untrusted side can mutate -
// handshakes, records, message ordering - must surface as a clean protocol
// error at the leader, never as a wrong selection.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <set>
#include <thread>

#include "gendpr/node.hpp"
#include "genome/cohort.hpp"

namespace gendpr::core {
namespace {

struct LeaderFixture {
  genome::Cohort cohort;
  tee::QuotingAuthority authority{std::array<std::uint8_t, 32>{0x51}};
  tee::Platform leader_platform{1, authority,
                                crypto::Csprng(std::array<std::uint8_t, 32>{1})};
  tee::Platform member_platform{2, authority,
                                crypto::Csprng(std::array<std::uint8_t, 32>{2})};
  net::Network network;

  LeaderFixture() {
    genome::CohortSpec spec;
    spec.num_case = 200;
    spec.num_control = 200;
    spec.num_snps = 60;
    spec.seed = 31;
    cohort = genome::generate_cohort(spec);
  }

  StudyAnnounce announce() const {
    StudyAnnounce a;
    a.study_id = 1;
    a.num_snps = static_cast<std::uint32_t>(cohort.cases.num_snps());
    a.combinations = Coordinator::build_combinations(2, CollusionPolicy::none());
    return a;
  }

  /// The leader node (GDO 0). Constructing it attaches it to the network,
  /// so tests MUST create it (via this accessor) before starting any
  /// adversarial member thread - otherwise the member's first message races
  /// the leader's attach and gets dropped, deadlocking the handshake.
  LeaderNode& leader() {
    if (!leader_node) {
      leader_node = std::make_unique<LeaderNode>(
          network, leader_platform, 0, 2, cohort.cases.slice_rows(0, 100),
          cohort.controls, announce());
    }
    return *leader_node;
  }

  common::Result<StudyResult> run_leader() {
    return leader().run_study(nullptr);
  }

  std::unique_ptr<LeaderNode> leader_node;
};

TEST(FailureInjectionTest, GarbageHandshakeRejected) {
  LeaderFixture f;
  f.leader();  // attach the leader before the attacker speaks
  auto mailbox = f.network.attach(node_id_of(1));
  std::thread attacker([&] {
    f.network.send(node_id_of(1), node_id_of(0),
                   common::Bytes{0xde, 0xad, 0xbe, 0xef});
  });
  const auto result = f.run_leader();
  attacker.join();
  ASSERT_FALSE(result.ok());
  // Truncated/garbled handshake -> bad_message or attestation failure.
  EXPECT_TRUE(result.error().code == common::Errc::bad_message ||
              result.error().code == common::Errc::attestation_rejected)
      << result.error().to_string();
}

TEST(FailureInjectionTest, HandshakeFromUnknownNodeRejected) {
  LeaderFixture f;
  f.leader();
  f.network.attach(node_id_of(7));
  std::thread attacker([&] {
    f.network.send(node_id_of(7), node_id_of(0), common::Bytes{0x01});
  });
  const auto result = f.run_leader();
  attacker.join();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, common::Errc::unknown_peer);
}

TEST(FailureInjectionTest, TamperedRecordDetected) {
  LeaderFixture f;
  f.leader();
  // An honest member, but the "network" (this test) flips a bit in its
  // first protocol record before delivery.
  auto member_mailbox = f.network.attach(node_id_of(1));
  GdoEnclave member_enclave(f.member_platform, 1);
  ASSERT_TRUE(
      member_enclave.provision_dataset(f.cohort.cases.slice_rows(100, 200))
          .ok());

  std::thread member([&] {
    auto channel = member_enclave.channel_to(trusted_module_measurement(),
                                             /*initiator=*/true);
    f.network.send(node_id_of(1), node_id_of(0),
                   channel->handshake_message());
    const auto leader_handshake = member_mailbox->receive();
    ASSERT_TRUE(leader_handshake.has_value());
    ASSERT_TRUE(channel->complete(leader_handshake->payload).ok());

    // Receive the study announce, answer with summary stats - but corrupt
    // the record on its way out (simulating a compromised host).
    const auto announce_record = member_mailbox->receive();
    ASSERT_TRUE(announce_record.has_value());
    auto plaintext = channel->open(announce_record->payload);
    ASSERT_TRUE(plaintext.ok());
    auto opened = open_envelope(plaintext.value());
    ASSERT_TRUE(opened.ok());
    auto announce = StudyAnnounce::deserialize(opened.value().second);
    ASSERT_TRUE(announce.ok());
    ASSERT_TRUE(member_enclave.on_study_announce(announce.value()).ok());
    auto record = channel->seal(envelope(
        MsgType::summary_stats,
        member_enclave.make_summary_stats().serialize()));
    ASSERT_TRUE(record.ok());
    common::Bytes corrupted = record.value();
    corrupted[corrupted.size() / 2] ^= 0x01;
    f.network.send(node_id_of(1), node_id_of(0), std::move(corrupted));
  });

  const auto result = f.run_leader();
  member.join();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, common::Errc::decrypt_failed);
}

TEST(FailureInjectionTest, WrongMessageTypeRejected) {
  LeaderFixture f;
  f.leader();
  auto member_mailbox = f.network.attach(node_id_of(1));
  GdoEnclave member_enclave(f.member_platform, 1);
  ASSERT_TRUE(
      member_enclave.provision_dataset(f.cohort.cases.slice_rows(100, 200))
          .ok());

  std::thread member([&] {
    auto channel = member_enclave.channel_to(trusted_module_measurement(),
                                             /*initiator=*/true);
    f.network.send(node_id_of(1), node_id_of(0),
                   channel->handshake_message());
    const auto leader_handshake = member_mailbox->receive();
    ASSERT_TRUE(leader_handshake.has_value());
    ASSERT_TRUE(channel->complete(leader_handshake->payload).ok());
    const auto announce_record = member_mailbox->receive();
    ASSERT_TRUE(announce_record.has_value());
    ASSERT_TRUE(channel->open(announce_record->payload).ok());
    // Reply with a phase-3 message where summary stats are expected.
    auto record =
        channel->seal(envelope(MsgType::phase3_result,
                               Phase3Result{{1, 2}, 0.0}.serialize()));
    ASSERT_TRUE(record.ok());
    f.network.send(node_id_of(1), node_id_of(0), std::move(record).take());
  });

  const auto result = f.run_leader();
  member.join();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, common::Errc::state_violation);
}

TEST(FailureInjectionTest, OversizedSummaryRejected) {
  LeaderFixture f;
  f.leader();
  auto member_mailbox = f.network.attach(node_id_of(1));
  GdoEnclave member_enclave(f.member_platform, 1);
  ASSERT_TRUE(
      member_enclave.provision_dataset(f.cohort.cases.slice_rows(100, 200))
          .ok());

  std::thread member([&] {
    auto channel = member_enclave.channel_to(trusted_module_measurement(),
                                             /*initiator=*/true);
    f.network.send(node_id_of(1), node_id_of(0),
                   channel->handshake_message());
    const auto leader_handshake = member_mailbox->receive();
    ASSERT_TRUE(leader_handshake.has_value());
    ASSERT_TRUE(channel->complete(leader_handshake->payload).ok());
    const auto announce_record = member_mailbox->receive();
    ASSERT_TRUE(announce_record.has_value());
    ASSERT_TRUE(channel->open(announce_record->payload).ok());
    // Claims counts over the wrong number of SNPs.
    SummaryStats bogus;
    bogus.case_counts.assign(9999, 1);
    bogus.n_case = 100;
    auto record =
        channel->seal(envelope(MsgType::summary_stats, bogus.serialize()));
    ASSERT_TRUE(record.ok());
    f.network.send(node_id_of(1), node_id_of(0), std::move(record).take());
  });

  const auto result = f.run_leader();
  member.join();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, common::Errc::bad_message);
}

TEST(FailureInjectionTest, MissingMomentsAbortLdPhase) {
  // A member that stops answering moments requests must never let zero
  // moments skew the aggregate: it is declared dead, and with no other
  // combination to fall back on the phase aborts with a timeout naming it.
  LeaderFixture f;
  GdoEnclave leader_enclave(f.leader_platform, 0);
  ASSERT_TRUE(
      leader_enclave.provision_dataset(f.cohort.cases.slice_rows(0, 100))
          .ok());
  Coordinator coordinator(leader_enclave, f.cohort.controls, 2, f.announce());
  SummaryStats member_stats;
  member_stats.case_counts.assign(f.cohort.cases.num_snps(), 5);
  member_stats.n_case = 100;
  ASSERT_TRUE(coordinator.add_summary(1, member_stats).ok());
  ASSERT_TRUE(coordinator.run_maf_phase().ok());

  auto silent_fetch = [](const MomentsRequest&,
                         const std::vector<std::uint32_t>&) {
    return std::vector<std::optional<stats::LdMoments>>{};  // no responses
  };
  const auto result = coordinator.run_ld_phase(silent_fetch);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, common::Errc::timeout);
  EXPECT_NE(result.error().message.find("1"), std::string::npos)
      << result.error().to_string();
  EXPECT_EQ(coordinator.dead_gdos(), (std::set<std::uint32_t>{1}));
}

TEST(CheckpointTest, SealRestoreRoundTrip) {
  LeaderFixture f;
  GdoEnclave enclave(f.member_platform, 1);
  ASSERT_TRUE(enclave.provision_dataset(f.cohort.cases).ok());
  StudyAnnounce announce = f.announce();
  ASSERT_TRUE(enclave.on_study_announce(announce).ok());
  ASSERT_TRUE(enclave.on_phase1(Phase1Result{{1, 2, 3}}).ok());
  ASSERT_TRUE(enclave.on_phase3(Phase3Result{{2, 3}, 0.5}).ok());

  const common::Bytes checkpoint = enclave.seal_study_checkpoint();

  GdoEnclave restored(f.member_platform, 1);
  ASSERT_TRUE(restored.restore_study_checkpoint(checkpoint).ok());
  EXPECT_EQ(restored.safe_snps(), (std::vector<std::uint32_t>{2, 3}));
  EXPECT_EQ(restored.retained_after_phase1(),
            (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_TRUE(restored.study_complete());
}

TEST(CheckpointTest, OtherPlatformCannotRestore) {
  LeaderFixture f;
  GdoEnclave enclave(f.member_platform, 1);
  ASSERT_TRUE(enclave.on_phase1(Phase1Result{}).ok() == false);  // sanity
  const common::Bytes checkpoint = enclave.seal_study_checkpoint();
  GdoEnclave other(f.leader_platform, 1);
  EXPECT_FALSE(other.restore_study_checkpoint(checkpoint).ok());
}

TEST(CheckpointTest, TamperedCheckpointRejected) {
  LeaderFixture f;
  GdoEnclave enclave(f.member_platform, 1);
  common::Bytes checkpoint = enclave.seal_study_checkpoint();
  checkpoint[checkpoint.size() - 1] ^= 0x01;
  const auto status = enclave.restore_study_checkpoint(checkpoint);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, common::Errc::decrypt_failed);
}

// ---------------------------------------------------------------------------
// Liveness: deadlines, dead-GDO degraded mode, abort notices. A GDO that
// stops responding mid-phase must terminate the study within the configured
// deadline (Errc::timeout naming the peer) - or, when the collusion policy
// leaves a combination without it, let the survivors finish.
// ---------------------------------------------------------------------------

/// Handshakes with the leader from `gdo` and answers the study announce with
/// honest summary stats, then goes silent: a GDO crash right after phase 1
/// input submission. Runs on the calling thread.
void run_member_until_summary(net::Network& network, GdoEnclave& enclave,
                              std::shared_ptr<net::Mailbox> mailbox,
                              std::uint32_t gdo, std::uint32_t leader) {
  auto channel = enclave.channel_to(trusted_module_measurement(),
                                    /*initiator=*/true);
  network.send(node_id_of(gdo), node_id_of(leader),
               channel->handshake_message());
  const auto leader_handshake = mailbox->receive();
  ASSERT_TRUE(leader_handshake.has_value());
  ASSERT_TRUE(channel->complete(leader_handshake->payload).ok());
  const auto announce_record = mailbox->receive();
  ASSERT_TRUE(announce_record.has_value());
  auto plaintext = channel->open(announce_record->payload);
  ASSERT_TRUE(plaintext.ok());
  auto opened = open_envelope(plaintext.value());
  ASSERT_TRUE(opened.ok());
  auto announce = StudyAnnounce::deserialize(opened.value().second);
  ASSERT_TRUE(announce.ok());
  ASSERT_TRUE(enclave.on_study_announce(announce.value()).ok());
  auto record = channel->seal(envelope(
      MsgType::summary_stats, enclave.make_summary_stats().serialize()));
  ASSERT_TRUE(record.ok());
  network.send(node_id_of(gdo), node_id_of(leader), std::move(record).take());
}

TEST(LivenessTest, MissingMemberTimesOutHandshake) {
  LeaderFixture f;
  f.leader().set_receive_timeout(std::chrono::milliseconds(100));
  const auto start = std::chrono::steady_clock::now();
  const auto result = f.run_leader();  // member 1 never shows up
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, common::Errc::timeout);
  EXPECT_NE(result.error().message.find("1"), std::string::npos)
      << result.error().to_string();
  EXPECT_LT(std::chrono::steady_clock::now() - start, std::chrono::seconds(10));
}

TEST(LivenessTest, SilentMemberAfterSummaryTimesOutStudy) {
  LeaderFixture f;
  f.leader().set_receive_timeout(std::chrono::milliseconds(250));
  auto member_mailbox = f.network.attach(node_id_of(1));
  GdoEnclave member_enclave(f.member_platform, 1);
  ASSERT_TRUE(
      member_enclave.provision_dataset(f.cohort.cases.slice_rows(100, 200))
          .ok());
  std::thread member([&] {
    run_member_until_summary(f.network, member_enclave, member_mailbox, 1, 0);
  });
  const auto start = std::chrono::steady_clock::now();
  const auto result = f.run_leader();
  member.join();
  ASSERT_FALSE(result.ok());
  // The sole combination needs GDO 1's moments: its silence kills the study.
  EXPECT_EQ(result.error().code, common::Errc::timeout);
  EXPECT_NE(result.error().message.find("1"), std::string::npos)
      << result.error().to_string();
  EXPECT_LT(std::chrono::steady_clock::now() - start, std::chrono::seconds(10));
}

/// Three-GDO federation with leader GDO 0, one honest MemberNode (GDO 1) and
/// one member that crashes after submitting its summary (GDO 2).
struct ThreeGdoFixture {
  genome::Cohort cohort;
  tee::QuotingAuthority authority{std::array<std::uint8_t, 32>{0x52}};
  tee::Platform platform0{1, authority,
                          crypto::Csprng(std::array<std::uint8_t, 32>{1})};
  tee::Platform platform1{2, authority,
                          crypto::Csprng(std::array<std::uint8_t, 32>{2})};
  tee::Platform platform2{3, authority,
                          crypto::Csprng(std::array<std::uint8_t, 32>{3})};
  net::Network network;

  ThreeGdoFixture() {
    genome::CohortSpec spec;
    spec.num_case = 300;
    spec.num_control = 200;
    spec.num_snps = 60;
    spec.seed = 31;
    cohort = genome::generate_cohort(spec);
  }

  StudyAnnounce announce(const CollusionPolicy& policy) const {
    StudyAnnounce a;
    a.study_id = 1;
    a.num_snps = static_cast<std::uint32_t>(cohort.cases.num_snps());
    a.combinations = Coordinator::build_combinations(3, policy);
    return a;
  }
};

TEST(LivenessTest, RedundantCombinationSurvivesDeadGdo) {
  ThreeGdoFixture f;
  // f = 1: combinations {0,1}, {0,2}, {1,2} - losing GDO 2 leaves {0,1}.
  LeaderNode leader(f.network, f.platform0, 0, 3,
                    f.cohort.cases.slice_rows(0, 100), f.cohort.controls,
                    f.announce(CollusionPolicy::fixed(1)));
  leader.set_receive_timeout(std::chrono::milliseconds(250));
  MemberNode honest(f.network, f.platform1, 1, 0,
                    f.cohort.cases.slice_rows(100, 200));
  honest.set_receive_timeout(std::chrono::milliseconds(5000));
  auto mailbox2 = f.network.attach(node_id_of(2));
  GdoEnclave enclave2(f.platform2, 2);
  ASSERT_TRUE(
      enclave2.provision_dataset(f.cohort.cases.slice_rows(200, 300)).ok());
  honest.start();
  std::thread crashing([&] {
    run_member_until_summary(f.network, enclave2, mailbox2, 2, 0);
  });

  const auto result = leader.run_study(nullptr);
  crashing.join();
  honest.join();
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(result.value().dead_gdos, (std::vector<std::uint32_t>{2}));
  ASSERT_TRUE(honest.status().ok()) << honest.status().error().to_string();
  // The surviving member converges on the same safe set as the leader.
  EXPECT_TRUE(honest.enclave().study_complete());
  EXPECT_EQ(honest.enclave().safe_snps(), result.value().outcome.l_safe);
}

TEST(LivenessTest, SurvivingMemberReceivesAbortNotice) {
  ThreeGdoFixture f;
  // No redundancy: the single combination {0,1,2} dies with GDO 2, and the
  // leader must tell the surviving member instead of leaving it waiting.
  LeaderNode leader(f.network, f.platform0, 0, 3,
                    f.cohort.cases.slice_rows(0, 100), f.cohort.controls,
                    f.announce(CollusionPolicy::none()));
  leader.set_receive_timeout(std::chrono::milliseconds(250));
  MemberNode honest(f.network, f.platform1, 1, 0,
                    f.cohort.cases.slice_rows(100, 200));
  honest.set_receive_timeout(std::chrono::milliseconds(10000));
  auto mailbox2 = f.network.attach(node_id_of(2));
  GdoEnclave enclave2(f.platform2, 2);
  ASSERT_TRUE(
      enclave2.provision_dataset(f.cohort.cases.slice_rows(200, 300)).ok());
  honest.start();
  std::thread crashing([&] {
    run_member_until_summary(f.network, enclave2, mailbox2, 2, 0);
  });

  const auto result = leader.run_study(nullptr);
  crashing.join();
  honest.join();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, common::Errc::timeout);
  EXPECT_NE(result.error().message.find("2"), std::string::npos)
      << result.error().to_string();
  ASSERT_FALSE(honest.status().ok());
  EXPECT_EQ(honest.status().error().code, common::Errc::aborted)
      << honest.status().error().to_string();
}

}  // namespace
}  // namespace gendpr::core
