// Property test for the collusion-tolerant LR phase: the genotype-fixed
// basis path of GdoEnclave::on_phase2 must be bit-identical to the legacy
// per-combination `build_lr_matrix` rebuild, across federation sizes
// G in {3..6} and collusion bounds f in {1, 2}, in the dead-GDO degraded
// mode, and with or without a thread pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "gendpr/trusted.hpp"
#include "genome/cohort.hpp"
#include "stats/lr_test.hpp"

namespace gendpr::core {
namespace {

/// A federation of member enclaves plus the phase-2 broadcast a leader
/// would send them: per-GDO counts over a retained SNP set.
struct Federation {
  tee::QuotingAuthority authority{std::array<std::uint8_t, 32>{0x42}};
  std::vector<std::unique_ptr<tee::Platform>> platforms;
  std::vector<std::unique_ptr<GdoEnclave>> enclaves;
  StudyAnnounce announce;
  Phase2Result phase2;
};

Federation make_federation(std::uint32_t num_gdos, std::uint32_t f,
                           std::uint64_t seed) {
  Federation fed;
  genome::CohortSpec spec;
  spec.num_case = 30 * num_gdos;
  spec.num_control = 40;
  spec.num_snps = 48;
  spec.seed = seed;
  const genome::Cohort cohort = genome::generate_cohort(spec);
  const auto ranges =
      genome::equal_partition(cohort.cases.num_individuals(), num_gdos);

  fed.announce.study_id = seed;
  fed.announce.num_snps = static_cast<std::uint32_t>(cohort.cases.num_snps());
  fed.announce.combinations =
      Coordinator::build_combinations(num_gdos, CollusionPolicy::fixed(f));

  // Retained set: every third SNP (what survived phases 1-2).
  for (std::uint32_t s = 0; s < fed.announce.num_snps; s += 3) {
    fed.phase2.retained.push_back(s);
  }
  common::Rng rng(seed ^ 0x9e3779b9);
  fed.phase2.reference_freq.resize(fed.phase2.retained.size());
  for (auto& p : fed.phase2.reference_freq) p = rng.uniform(0.05, 0.95);

  for (std::uint32_t g = 0; g < num_gdos; ++g) {
    std::array<std::uint8_t, 32> platform_seed{};
    platform_seed[0] = static_cast<std::uint8_t>(g + 1);
    fed.platforms.push_back(std::make_unique<tee::Platform>(
        g + 1, fed.authority, crypto::Csprng(platform_seed)));
    fed.enclaves.push_back(
        std::make_unique<GdoEnclave>(*fed.platforms[g], g));
    EXPECT_TRUE(fed.enclaves[g]
                    ->provision_dataset(cohort.cases.slice_rows(
                        ranges[g].first, ranges[g].second))
                    .ok());
    EXPECT_TRUE(fed.enclaves[g]->on_study_announce(fed.announce).ok());
    EXPECT_TRUE(fed.enclaves[g]->on_phase1({fed.phase2.retained}).ok());
    fed.phase2.case_counts_per_gdo.push_back(
        fed.enclaves[g]->planes().allele_counts(fed.phase2.retained));
    fed.phase2.n_case_per_gdo.push_back(static_cast<std::uint32_t>(
        fed.enclaves[g]->dataset().num_individuals()));
  }
  return fed;
}

bool combination_contains(const std::vector<std::uint32_t>& members,
                          std::uint32_t gdo) {
  return std::find(members.begin(), members.end(), gdo) != members.end();
}

/// Runs on_phase2 on every enclave and checks each returned matrix against
/// the legacy from-scratch rebuild: weights from the combination's derived
/// frequency vector, then a full bit-plane `build_lr_matrix`. Returns the
/// per-GDO entry counts so callers can assert coverage.
std::vector<std::size_t> check_against_legacy_rebuild(
    Federation& fed, common::ThreadPool* pool) {
  std::vector<std::size_t> entry_counts;
  for (const auto& enclave : fed.enclaves) {
    const auto matrices = enclave->on_phase2(fed.phase2, pool);
    EXPECT_TRUE(matrices.ok());
    if (!matrices.ok()) return entry_counts;
    for (const auto& entry : matrices.value().entries) {
      const auto& members = fed.announce.combinations[entry.combination_id];
      EXPECT_TRUE(combination_contains(members, enclave->gdo_index()));
      const stats::LrWeights weights =
          stats::lr_weights(fed.phase2.combination_case_freq(members),
                            fed.phase2.reference_freq);
      const stats::LrMatrix expected = stats::build_lr_matrix(
          enclave->planes(), fed.phase2.retained, weights);
      EXPECT_EQ(entry.matrix, expected)
          << "gdo " << enclave->gdo_index() << " combination "
          << entry.combination_id;
    }
    entry_counts.push_back(matrices.value().entries.size());
  }
  return entry_counts;
}

class LrBasisEquivalenceTest
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {
};

TEST_P(LrBasisEquivalenceTest, BasisPathMatchesLegacyRebuild) {
  const auto [num_gdos, f] = GetParam();
  Federation fed = make_federation(num_gdos, f, 7 * num_gdos + f);
  const auto entry_counts = check_against_legacy_rebuild(fed, nullptr);
  ASSERT_EQ(entry_counts.size(), num_gdos);
  for (std::uint32_t g = 0; g < num_gdos; ++g) {
    // Every combination containing GDO g yields exactly one entry.
    std::size_t expected = 0;
    for (const auto& members : fed.announce.combinations) {
      if (combination_contains(members, g)) ++expected;
    }
    EXPECT_EQ(entry_counts[g], expected) << "gdo " << g;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LrBasisEquivalenceTest,
    ::testing::Values(std::pair<std::uint32_t, std::uint32_t>{3, 1},
                      std::pair<std::uint32_t, std::uint32_t>{3, 2},
                      std::pair<std::uint32_t, std::uint32_t>{4, 1},
                      std::pair<std::uint32_t, std::uint32_t>{4, 2},
                      std::pair<std::uint32_t, std::uint32_t>{5, 1},
                      std::pair<std::uint32_t, std::uint32_t>{5, 2},
                      std::pair<std::uint32_t, std::uint32_t>{6, 1},
                      std::pair<std::uint32_t, std::uint32_t>{6, 2}));

TEST(LrBasisEquivalenceDegradedTest, DeadGdoSkippedOthersBitIdentical) {
  Federation fed = make_federation(4, 1, 99);
  // GDO 3 went silent after phase 1: its slot travels empty and every
  // combination naming it is dropped.
  fed.phase2.dead_gdos = {3};
  fed.phase2.case_counts_per_gdo[3].clear();
  fed.phase2.n_case_per_gdo[3] = 0;
  fed.enclaves.pop_back();  // the dead GDO never receives the broadcast
  const auto entry_counts = check_against_legacy_rebuild(fed, nullptr);
  ASSERT_EQ(entry_counts.size(), 3u);
  for (std::uint32_t g = 0; g < 3; ++g) {
    std::size_t expected = 0;
    for (const auto& members : fed.announce.combinations) {
      if (combination_contains(members, g) &&
          !combination_contains(members, 3)) {
        ++expected;
      }
    }
    EXPECT_EQ(entry_counts[g], expected) << "gdo " << g;
  }
}

TEST(LrBasisEquivalenceDegradedTest, PooledDerivationsMatchSerial) {
  Federation fed = make_federation(5, 2, 123);
  common::ThreadPool pool;
  for (const auto& enclave : fed.enclaves) {
    const auto serial = enclave->on_phase2(fed.phase2, nullptr);
    const auto pooled = enclave->on_phase2(fed.phase2, &pool);
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(pooled.ok());
    ASSERT_EQ(serial.value().entries.size(), pooled.value().entries.size());
    for (std::size_t i = 0; i < serial.value().entries.size(); ++i) {
      EXPECT_EQ(serial.value().entries[i].combination_id,
                pooled.value().entries[i].combination_id);
      EXPECT_EQ(serial.value().entries[i].matrix,
                pooled.value().entries[i].matrix);
    }
  }
}

}  // namespace
}  // namespace gendpr::core
