#include "gendpr/federation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "gendpr/report.hpp"
#include "obs/observability.hpp"

namespace gendpr::core {
namespace {

genome::Cohort test_cohort(std::size_t n_case = 600, std::size_t n_control = 600,
                           std::size_t n_snps = 150, std::uint64_t seed = 9) {
  genome::CohortSpec spec;
  spec.num_case = n_case;
  spec.num_control = n_control;
  spec.num_snps = n_snps;
  spec.seed = seed;
  return genome::generate_cohort(spec);
}

TEST(FederationTest, TwoGdoStudyCompletes) {
  const genome::Cohort cohort = test_cohort();
  FederationSpec spec;
  spec.num_gdos = 2;
  const auto result = run_federated_study(cohort, spec);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  const auto& outcome = result.value().outcome;
  EXPECT_FALSE(outcome.l_prime.empty());
  EXPECT_LE(outcome.l_double_prime.size(), outcome.l_prime.size());
  EXPECT_LE(outcome.l_safe.size(), outcome.l_double_prime.size());
  EXPECT_LE(outcome.final_power, spec.config.lr_power_threshold);
}

TEST(FederationTest, PipelinePhasesShrinkMonotonically) {
  const genome::Cohort cohort = test_cohort();
  for (std::uint32_t g : {1u, 3u, 5u}) {
    FederationSpec spec;
    spec.num_gdos = g;
    const auto result = run_federated_study(cohort, spec);
    ASSERT_TRUE(result.ok()) << "G=" << g;
    const auto& outcome = result.value().outcome;
    EXPECT_LE(outcome.l_double_prime.size(), outcome.l_prime.size());
    EXPECT_LE(outcome.l_safe.size(), outcome.l_double_prime.size());
    // Lists are sorted, unique, in range.
    EXPECT_TRUE(std::is_sorted(outcome.l_safe.begin(), outcome.l_safe.end()));
    for (std::uint32_t snp : outcome.l_safe) {
      EXPECT_LT(snp, cohort.cases.num_snps());
    }
  }
}

TEST(FederationTest, ResultIndependentOfGdoCount) {
  // Paper §7.3: "changing the number of GDOs in the federation does not
  // affect the outcome of the verification".
  const genome::Cohort cohort = test_cohort();
  FederationSpec spec;
  spec.num_gdos = 1;
  const auto base = run_federated_study(cohort, spec);
  ASSERT_TRUE(base.ok());
  for (std::uint32_t g : {2u, 3u, 4u, 7u}) {
    FederationSpec varied = spec;
    varied.num_gdos = g;
    const auto result = run_federated_study(cohort, varied);
    ASSERT_TRUE(result.ok()) << "G=" << g;
    EXPECT_EQ(result.value().outcome.l_prime, base.value().outcome.l_prime)
        << "G=" << g;
    EXPECT_EQ(result.value().outcome.l_double_prime,
              base.value().outcome.l_double_prime)
        << "G=" << g;
    EXPECT_EQ(result.value().outcome.l_safe, base.value().outcome.l_safe)
        << "G=" << g;
  }
}

TEST(FederationTest, DeterministicForSameSeed) {
  const genome::Cohort cohort = test_cohort();
  FederationSpec spec;
  spec.num_gdos = 3;
  spec.seed = 1234;
  const auto a = run_federated_study(cohort, spec);
  const auto b = run_federated_study(cohort, spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().outcome.l_safe, b.value().outcome.l_safe);
  EXPECT_EQ(a.value().leader_gdo, b.value().leader_gdo);
}

TEST(FederationTest, LeaderElectionVariesWithSeed) {
  const genome::Cohort cohort = test_cohort(200, 200, 60);
  std::set<std::uint32_t> leaders;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    FederationSpec spec;
    spec.num_gdos = 4;
    spec.seed = seed;
    const auto result = run_federated_study(cohort, spec);
    ASSERT_TRUE(result.ok());
    leaders.insert(result.value().leader_gdo);
  }
  EXPECT_GT(leaders.size(), 1u);  // different seeds elect different leaders
}

TEST(FederationTest, ZeroGdosRejected) {
  const genome::Cohort cohort = test_cohort(100, 100, 30);
  FederationSpec spec;
  spec.num_gdos = 0;
  EXPECT_FALSE(run_federated_study(cohort, spec).ok());
}

TEST(FederationTest, NetworkCarriesOnlyCiphertext) {
  // Indirect check: total network traffic must exceed the plaintext payloads
  // by the AEAD overheads, and no genotype-sized transfers occur (genomes
  // never leave GDOs). The dominant transfer is LR matrices over L''.
  const genome::Cohort cohort = test_cohort();
  FederationSpec spec;
  spec.num_gdos = 3;
  const auto result = run_federated_study(cohort, spec);
  ASSERT_TRUE(result.ok());
  // Bandwidth sanity: total bytes dwarfed by shipping raw genomes (which
  // would be ~ N * L / 8 bytes * G copies).
  EXPECT_GT(result.value().network_bytes_total, 0u);
  EXPECT_GT(result.value().leader_bytes_received, 0u);
}

TEST(FederationTest, EpcPeaksReported) {
  const genome::Cohort cohort = test_cohort();
  FederationSpec spec;
  spec.num_gdos = 3;
  const auto result = run_federated_study(cohort, spec);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().epc_peak_leader, 0u);
  EXPECT_GT(result.value().epc_peak_members_max, 0u);
  // Members hold roughly a GDO's slice of the bit-packed genomes.
  EXPECT_LT(result.value().epc_peak_members_max,
            tee::EpcMeter::kDefaultLimitBytes);
}

TEST(FederationTest, TimingsPopulated) {
  const genome::Cohort cohort = test_cohort();
  FederationSpec spec;
  spec.num_gdos = 2;
  const auto result = run_federated_study(cohort, spec);
  ASSERT_TRUE(result.ok());
  const auto& t = result.value().timings;
  EXPECT_GT(t.total_ms, 0.0);
  EXPECT_GE(t.aggregation_ms, 0.0);
  EXPECT_GE(t.ld_ms, 0.0);
  EXPECT_GE(t.lr_ms, 0.0);
  EXPECT_LE(t.aggregation_ms + t.indexing_ms + t.ld_ms + t.lr_ms,
            t.total_ms * 1.05 + 1.0);
}

TEST(FederationTest, RunReportTracesEveryPhaseOncePerCombination) {
  const genome::Cohort cohort = test_cohort();
  obs::Observability observability;
  FederationSpec spec;
  spec.num_gdos = 3;
  spec.policy = CollusionPolicy::fixed(1);  // C(3,2) = 3 combinations
  spec.obs = &observability;
  const auto result = run_federated_study(cohort, spec);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  ASSERT_EQ(result.value().num_combinations, 3u);

  ReportContext context;
  context.obs = &observability;
  const obs::JsonValue report = make_run_report(result.value(), context);
  // Assert on the serialized document, exactly what check_report.py consumes.
  const auto parsed = obs::JsonValue::parse(report.dump(2));
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().find("schema")->as_string(), kRunReportSchema);

  const obs::JsonValue* phases = parsed.value().find("phases");
  ASSERT_NE(phases, nullptr);
  EXPECT_GT(phases->find("total_ms")->as_number(), 0.0);

  const obs::JsonValue* network = parsed.value().find("network");
  ASSERT_NE(network, nullptr);
  EXPECT_GT(network->find("total_bytes")->as_number(), 0.0);
  EXPECT_FALSE(network->find("links")->as_array().empty());

  const obs::JsonValue* epc = parsed.value().find("epc");
  ASSERT_NE(epc, nullptr);
  ASSERT_EQ(epc->find("per_gdo")->as_array().size(), 3u);
  for (const auto& entry : epc->find("per_gdo")->as_array()) {
    EXPECT_GT(entry.find("peak_bytes")->as_number(), 0.0);
  }

  const obs::JsonValue* trace = parsed.value().find("trace");
  ASSERT_NE(trace, nullptr);
  const auto spans = obs::TraceRecorder::spans_from_json(*trace);
  ASSERT_TRUE(spans.ok()) << spans.error().to_string();
  std::map<std::string, int> name_counts;
  for (const auto& span : spans.value()) {
    ++name_counts[span.name];
    EXPECT_GE(span.duration_ms, 0.0) << span.name << " left open";
  }
  EXPECT_EQ(name_counts["study"], 1);
  for (const std::string phase : {"maf", "ld", "lr"}) {
    EXPECT_EQ(name_counts["phase." + phase], 1);
  }
  // The MAF phase is assessed per tile (one tile with tiling off); the LD
  // and LR phases keep one span per combination, and the LR phase records
  // the leader's per-tile derivations as well.
  EXPECT_EQ(name_counts["maf.tile.0"], 1);
  EXPECT_EQ(name_counts["lr.tile.0"], 1);
  for (const std::string phase : {"ld", "lr"}) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_EQ(name_counts[phase + ".combination." + std::to_string(c)], 1)
          << phase << " combination " << c;
    }
  }
}

TEST(FederationTest, UnobservedRunRecordsNothing) {
  // spec.obs == nullptr must stay the zero-cost default: same outcome, no
  // crash anywhere a span or counter would have been recorded.
  const genome::Cohort cohort = test_cohort(200, 200, 60);
  FederationSpec spec;
  spec.num_gdos = 2;
  const auto result = run_federated_study(cohort, spec);
  ASSERT_TRUE(result.ok());
  // The report still serializes from the StudyResult alone.
  const obs::JsonValue report = make_run_report(result.value());
  EXPECT_EQ(report.find("trace"), nullptr);
  EXPECT_EQ(report.find("metrics"), nullptr);
  EXPECT_NE(report.find("phases"), nullptr);
}

TEST(FederationTest, TinyEpcLimitFailsCleanly) {
  const genome::Cohort cohort = test_cohort();
  FederationSpec spec;
  spec.num_gdos = 2;
  spec.epc_limit = 64;  // far below the dataset size
  const auto result = run_federated_study(cohort, spec);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, common::Errc::capacity_exceeded);
}

}  // namespace
}  // namespace gendpr::core
