#include "gendpr/messages.hpp"

#include <gtest/gtest.h>

#include "wire/serialize.hpp"

namespace gendpr::core {
namespace {

TEST(MessagesTest, StudyAnnounceRoundTrip) {
  StudyAnnounce msg;
  msg.study_id = 99;
  msg.num_snps = 1000;
  msg.config.maf_cutoff = 0.07;
  msg.config.ld_cutoff = 1e-6;
  msg.config.prune = false;  // non-default: the flag must survive the wire
  msg.combinations = {{0, 1, 2}, {0, 1}, {2}};
  const auto restored = StudyAnnounce::deserialize(msg.serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().study_id, 99u);
  EXPECT_EQ(restored.value().num_snps, 1000u);
  EXPECT_EQ(restored.value().config, msg.config);
  EXPECT_EQ(restored.value().combinations, msg.combinations);
}

TEST(MessagesTest, SummaryStatsRoundTrip) {
  SummaryStats msg;
  msg.case_counts = {1, 2, 3, 1000000};
  msg.n_case = 4242;
  const auto restored = SummaryStats::deserialize(msg.serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().case_counts, msg.case_counts);
  EXPECT_EQ(restored.value().n_case, 4242u);
}

TEST(MessagesTest, Phase1ResultRoundTrip) {
  Phase1Result msg;
  msg.retained = {0, 5, 7, 999};
  const auto restored = Phase1Result::deserialize(msg.serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().retained, msg.retained);
}

TEST(MessagesTest, MomentsRequestResponseRoundTrip) {
  MomentsRequest request{17, 3, 4};
  const auto restored_req = MomentsRequest::deserialize(request.serialize());
  ASSERT_TRUE(restored_req.ok());
  EXPECT_EQ(restored_req.value().request_id, 17u);
  EXPECT_EQ(restored_req.value().snp_a, 3u);
  EXPECT_EQ(restored_req.value().snp_b, 4u);

  MomentsResponse response;
  response.request_id = 17;
  response.moments = {10.0, 20.0, 5.0, 10.0, 20.0, 100};
  const auto restored = MomentsResponse::deserialize(response.serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().moments.mu_xy, 5.0);
  EXPECT_EQ(restored.value().moments.n, 100u);
}

TEST(MessagesTest, Phase2ResultRoundTrip) {
  Phase2Result msg;
  msg.retained = {1, 2};
  msg.reference_freq = {0.25, 0.5};
  msg.case_counts_per_gdo = {{3, 6}, {2, 4}};
  msg.n_case_per_gdo = {10, 8};
  const auto restored = Phase2Result::deserialize(msg.serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().retained, msg.retained);
  EXPECT_EQ(restored.value().reference_freq, msg.reference_freq);
  EXPECT_EQ(restored.value().case_counts_per_gdo, msg.case_counts_per_gdo);
  EXPECT_EQ(restored.value().n_case_per_gdo, msg.n_case_per_gdo);
}

TEST(MessagesTest, Phase2ResultDeadGdosRoundTrip) {
  Phase2Result msg;
  msg.retained = {3};
  msg.reference_freq = {0.125};
  // Dead GDO 1 keeps an empty count slot; indices stay stable on the wire.
  msg.case_counts_per_gdo = {{2}, {}, {5}};
  msg.n_case_per_gdo = {8, 0, 20};
  msg.dead_gdos = {1, 4};
  const auto restored = Phase2Result::deserialize(msg.serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().dead_gdos, msg.dead_gdos);
  EXPECT_EQ(restored.value().case_counts_per_gdo, msg.case_counts_per_gdo);
  // An empty dead set round-trips too (the common, all-alive case).
  Phase2Result healthy;
  healthy.retained = {3};
  healthy.reference_freq = {0.125};
  healthy.case_counts_per_gdo = {{2}};
  healthy.n_case_per_gdo = {8};
  const auto restored_healthy = Phase2Result::deserialize(healthy.serialize());
  ASSERT_TRUE(restored_healthy.ok());
  EXPECT_TRUE(restored_healthy.value().dead_gdos.empty());
}

TEST(MessagesTest, Phase2ResultPopulationSizeMismatchRejected) {
  // One count vector but two population sizes: structurally inconsistent.
  Phase2Result msg;
  msg.retained = {3};
  msg.reference_freq = {0.125};
  msg.case_counts_per_gdo = {{2}};
  msg.n_case_per_gdo = {8, 9};
  EXPECT_FALSE(Phase2Result::deserialize(msg.serialize()).ok());
}

TEST(MessagesTest, Phase2CombinationCaseFreqIsExactIntegerRatio) {
  Phase2Result msg;
  msg.retained = {0, 1};
  msg.reference_freq = {0.5, 0.5};
  msg.case_counts_per_gdo = {{1, 2}, {3, 4}, {5, 6}};
  msg.n_case_per_gdo = {10, 20, 30};
  const auto freq = msg.combination_case_freq({0, 2});
  ASSERT_EQ(freq.size(), 2u);
  EXPECT_EQ(freq[0], 6.0 / 40.0);
  EXPECT_EQ(freq[1], 8.0 / 40.0);
}

TEST(MessagesTest, AbortNoticeRoundTrip) {
  AbortNotice msg;
  msg.failed_gdo = 2;
  msg.reason = "LR gather timed out: unresponsive gdo(s): 2";
  const auto restored = AbortNotice::deserialize(msg.serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().failed_gdo, 2u);
  EXPECT_EQ(restored.value().reason, msg.reason);

  AbortNotice anonymous;  // no peer to blame
  const auto restored_anon = AbortNotice::deserialize(anonymous.serialize());
  ASSERT_TRUE(restored_anon.ok());
  EXPECT_EQ(restored_anon.value().failed_gdo, AbortNotice::kNoFailedGdo);
  EXPECT_TRUE(restored_anon.value().reason.empty());
}

TEST(MessagesTest, AbortNoticeTruncationRejected) {
  AbortNotice msg;
  msg.failed_gdo = 1;
  msg.reason = "gone";
  const common::Bytes full = msg.serialize();
  for (std::size_t len = 0; len < full.size(); ++len) {
    EXPECT_FALSE(
        AbortNotice::deserialize(common::BytesView(full.data(), len)).ok())
        << "truncation to " << len << " accepted";
  }
}

TEST(MessagesTest, LrMatricesRoundTrip) {
  LrMatrices msg;
  LrMatrices::Entry entry;
  entry.combination_id = 2;
  entry.matrix = stats::LrMatrix(2, 3);
  entry.matrix.at(0, 0) = 1.5;
  entry.matrix.at(1, 2) = -0.25;
  msg.entries.push_back(entry);
  const auto restored = LrMatrices::deserialize(msg.serialize());
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored.value().entries.size(), 1u);
  EXPECT_EQ(restored.value().entries[0].combination_id, 2u);
  EXPECT_EQ(restored.value().entries[0].matrix, entry.matrix);
}

TEST(MessagesTest, Phase3ResultRoundTrip) {
  Phase3Result msg;
  msg.safe = {4, 8, 15};
  msg.final_power = 0.42;
  const auto restored = Phase3Result::deserialize(msg.serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().safe, msg.safe);
  EXPECT_DOUBLE_EQ(restored.value().final_power, 0.42);
}

TEST(MessagesTest, EnvelopeRoundTrip) {
  const common::Bytes body = {1, 2, 3};
  const common::Bytes framed = envelope(MsgType::phase1_result, body);
  const auto opened = open_envelope(framed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value().first, MsgType::phase1_result);
  const common::Bytes opened_body(opened.value().second.begin(),
                                  opened.value().second.end());
  EXPECT_EQ(opened_body, body);
}

TEST(MessagesTest, EmptyEnvelopeRejected) {
  EXPECT_FALSE(open_envelope({}).ok());
}

TEST(MessagesTest, UnknownTypeRejected) {
  const common::Bytes bad = {0x77, 1, 2};
  EXPECT_FALSE(open_envelope(bad).ok());
  const common::Bytes zero = {0x00};
  EXPECT_FALSE(open_envelope(zero).ok());
}

TEST(MessagesTest, TruncationRejectedEverywhere) {
  StudyAnnounce announce;
  announce.num_snps = 5;
  announce.combinations = {{0, 1}};
  Phase2Result phase2;
  phase2.retained = {1, 2, 3};
  phase2.reference_freq = {0.1, 0.2, 0.3};
  phase2.case_counts_per_gdo = {{1, 2, 3}};
  phase2.n_case_per_gdo = {10};
  LrMatrices matrices;
  matrices.entries.push_back({0, stats::LrMatrix(2, 2)});

  const std::vector<common::Bytes> serialized = {
      announce.serialize(), phase2.serialize(), matrices.serialize()};
  for (const auto& full : serialized) {
    for (std::size_t len = 0; len < full.size(); ++len) {
      const common::BytesView cut(full.data(), len);
      EXPECT_FALSE(StudyAnnounce::deserialize(cut).ok() &&
                   Phase2Result::deserialize(cut).ok() &&
                   LrMatrices::deserialize(cut).ok())
          << "truncation to " << len << " accepted";
    }
  }
}

TEST(MessagesTest, TrailingBytesRejected) {
  Phase1Result msg;
  msg.retained = {1};
  common::Bytes data = msg.serialize();
  data.push_back(0xff);
  EXPECT_FALSE(Phase1Result::deserialize(data).ok());
}

TEST(MessagesTest, MaliciousMatrixDimensionsRejected) {
  // Claim a huge matrix with no body: must fail cleanly, not allocate.
  wire::Writer w;
  w.varint(1);          // one entry
  w.u32(0);             // combination id
  w.u32(0xffffffff);    // rows
  w.u32(0xffffffff);    // cols
  EXPECT_FALSE(LrMatrices::deserialize(w.buffer()).ok());
}

}  // namespace
}  // namespace gendpr::core
