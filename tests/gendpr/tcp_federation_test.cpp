// End-to-end federation over real TCP sockets: each GDO runs its own TcpHub
// on loopback (its own "machine"), members dial the leader, and the full
// three-phase protocol runs unchanged over the net::Transport interface.
// The selection must equal an in-process run over the same cohort.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "gendpr/federation.hpp"
#include "gendpr/node.hpp"
#include "gendpr/report.hpp"
#include "net/tcp.hpp"
#include "obs/observability.hpp"

namespace gendpr::core {
namespace {

TEST(TcpFederationTest, StudyOverRealSocketsMatchesInProcess) {
  genome::CohortSpec cohort_spec;
  cohort_spec.num_case = 300;
  cohort_spec.num_control = 300;
  cohort_spec.num_snps = 80;
  cohort_spec.seed = 55;
  const genome::Cohort cohort = genome::generate_cohort(cohort_spec);

  constexpr std::uint32_t kGdos = 3;
  constexpr std::uint32_t kLeaderGdo = 0;
  const auto ranges = genome::equal_partition(cohort_spec.num_case, kGdos);

  tee::QuotingAuthority authority(std::array<std::uint8_t, 32>{0x71});
  std::vector<std::unique_ptr<tee::Platform>> platforms;
  for (std::uint32_t g = 0; g < kGdos; ++g) {
    platforms.push_back(std::make_unique<tee::Platform>(
        g + 1, authority,
        crypto::Csprng(std::array<std::uint8_t, 32>{
            static_cast<std::uint8_t>(g + 1)})));
  }

  // One hub per GDO "machine"; members dial the leader.
  std::vector<std::unique_ptr<net::TcpHub>> hubs;
  for (std::uint32_t g = 0; g < kGdos; ++g) {
    auto hub = net::TcpHub::create(node_id_of(g), 0);
    ASSERT_TRUE(hub.ok()) << hub.error().to_string();
    hubs.push_back(std::move(hub).take());
  }
  for (std::uint32_t g = 1; g < kGdos; ++g) {
    ASSERT_TRUE(hubs[g]
                    ->connect_peer(node_id_of(kLeaderGdo), "127.0.0.1",
                                   hubs[kLeaderGdo]->port())
                    .ok());
  }

  StudyAnnounce announce;
  announce.study_id = 9;
  announce.num_snps = static_cast<std::uint32_t>(cohort_spec.num_snps);
  announce.combinations =
      Coordinator::build_combinations(kGdos, CollusionPolicy::none());

  obs::Observability observability;
  LeaderNode leader(*hubs[kLeaderGdo], *platforms[kLeaderGdo], kLeaderGdo,
                    kGdos,
                    cohort.cases.slice_rows(ranges[kLeaderGdo].first,
                                            ranges[kLeaderGdo].second),
                    cohort.controls, announce);
  leader.set_observability(&observability);
  std::vector<std::unique_ptr<MemberNode>> members;
  for (std::uint32_t g = 1; g < kGdos; ++g) {
    members.push_back(std::make_unique<MemberNode>(
        *hubs[g], *platforms[g], g, kLeaderGdo,
        cohort.cases.slice_rows(ranges[g].first, ranges[g].second)));
    members.back()->set_observability(&observability);
    members.back()->start();
  }

  const auto tcp_result = leader.run_study(nullptr);
  for (auto& member : members) member->join();
  ASSERT_TRUE(tcp_result.ok()) << tcp_result.error().to_string();
  for (const auto& member : members) {
    EXPECT_TRUE(member->status().ok()) << member->status().error().to_string();
    EXPECT_TRUE(member->enclave().study_complete());
  }

  // Reference: the same study over the in-process fabric.
  FederationSpec spec;
  spec.num_gdos = kGdos;
  const auto in_process = run_federated_study(cohort, spec);
  ASSERT_TRUE(in_process.ok());

  EXPECT_EQ(tcp_result.value().outcome.l_prime,
            in_process.value().outcome.l_prime);
  EXPECT_EQ(tcp_result.value().outcome.l_double_prime,
            in_process.value().outcome.l_double_prime);
  EXPECT_EQ(tcp_result.value().outcome.l_safe,
            in_process.value().outcome.l_safe);

  // Traffic was actually metered on the leader's hub.
  EXPECT_GT(tcp_result.value().network_bytes_total, 0u);

  // The run report works over real sockets too: per-link byte counts from
  // the leader's hub meter, the leader's EPC peak, and a trace with every
  // protocol phase. (Member EPC entries stay 0 here: their platforms live on
  // other "machines" and only the single-host runner can read them all.)
  ReportContext context;
  context.obs = &observability;
  context.transport = "tcp";
  const obs::JsonValue report = make_run_report(tcp_result.value(), context);
  const auto parsed = obs::JsonValue::parse(report.dump());
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().find("transport")->as_string(), "tcp");
  const obs::JsonValue* network_section = parsed.value().find("network");
  ASSERT_NE(network_section, nullptr);
  ASSERT_FALSE(network_section->find("links")->as_array().empty());
  for (const auto& link : network_section->find("links")->as_array()) {
    EXPECT_GT(link.find("bytes")->as_number(), 0.0);
  }
  const obs::JsonValue* epc_section = parsed.value().find("epc");
  ASSERT_NE(epc_section, nullptr);
  ASSERT_EQ(epc_section->find("per_gdo")->as_array().size(), kGdos);
  EXPECT_GT(epc_section->find("per_gdo")
                ->as_array()[kLeaderGdo]
                .find("peak_bytes")
                ->as_number(),
            0.0);
  const auto spans =
      obs::TraceRecorder::spans_from_json(*parsed.value().find("trace"));
  ASSERT_TRUE(spans.ok());
  for (const char* phase : {"phase.maf", "phase.ld", "phase.lr"}) {
    EXPECT_EQ(std::count_if(spans.value().begin(), spans.value().end(),
                            [phase](const obs::Span& span) {
                              return span.name == phase;
                            }),
              1)
        << phase;
  }
}

TEST(TcpFederationTest, MemberSafeSetsMatchLeader) {
  genome::CohortSpec cohort_spec;
  cohort_spec.num_case = 200;
  cohort_spec.num_control = 200;
  cohort_spec.num_snps = 50;
  cohort_spec.seed = 66;
  const genome::Cohort cohort = genome::generate_cohort(cohort_spec);

  tee::QuotingAuthority authority(std::array<std::uint8_t, 32>{0x72});
  tee::Platform leader_platform(1, authority,
                                crypto::Csprng(std::array<std::uint8_t, 32>{1}));
  tee::Platform member_platform(2, authority,
                                crypto::Csprng(std::array<std::uint8_t, 32>{2}));

  auto leader_hub = net::TcpHub::create(node_id_of(0), 0);
  auto member_hub = net::TcpHub::create(node_id_of(1), 0);
  ASSERT_TRUE(leader_hub.ok());
  ASSERT_TRUE(member_hub.ok());
  ASSERT_TRUE(member_hub.value()
                  ->connect_peer(node_id_of(0), "127.0.0.1",
                                 leader_hub.value()->port())
                  .ok());

  StudyAnnounce announce;
  announce.num_snps = 50;
  announce.combinations =
      Coordinator::build_combinations(2, CollusionPolicy::none());

  LeaderNode leader(*leader_hub.value(), leader_platform, 0, 2,
                    cohort.cases.slice_rows(0, 100), cohort.controls,
                    announce);
  MemberNode member(*member_hub.value(), member_platform, 1, 0,
                    cohort.cases.slice_rows(100, 200));
  member.start();
  const auto result = leader.run_study(nullptr);
  member.join();
  ASSERT_TRUE(result.ok());
  // The member's broadcast-received safe set equals the leader's outcome.
  EXPECT_EQ(member.enclave().safe_snps(), result.value().outcome.l_safe);
}

TEST(TcpFederationTest, KilledMemberAbortsStudyPromptly) {
  // Three GDOs over real sockets; GDO 2's whole hub dies right after the
  // attested handshake (machine crash). The leader's transport notices the
  // dropped connection and aborts well before the 10 s deadline, with a
  // timeout naming the dead peer; the surviving member gets an abort notice
  // instead of hanging.
  genome::CohortSpec cohort_spec;
  cohort_spec.num_case = 300;
  cohort_spec.num_control = 200;
  cohort_spec.num_snps = 50;
  cohort_spec.seed = 77;
  const genome::Cohort cohort = genome::generate_cohort(cohort_spec);

  tee::QuotingAuthority authority(std::array<std::uint8_t, 32>{0x73});
  std::vector<std::unique_ptr<tee::Platform>> platforms;
  for (std::uint32_t g = 0; g < 3; ++g) {
    platforms.push_back(std::make_unique<tee::Platform>(
        g + 1, authority,
        crypto::Csprng(std::array<std::uint8_t, 32>{
            static_cast<std::uint8_t>(g + 1)})));
  }

  auto leader_hub = net::TcpHub::create(node_id_of(0), 0);
  auto member_hub = net::TcpHub::create(node_id_of(1), 0);
  ASSERT_TRUE(leader_hub.ok());
  ASSERT_TRUE(member_hub.ok());
  ASSERT_TRUE(member_hub.value()
                  ->connect_peer(node_id_of(0), "127.0.0.1",
                                 leader_hub.value()->port())
                  .ok());

  StudyAnnounce announce;
  announce.num_snps = 50;
  announce.combinations =
      Coordinator::build_combinations(3, CollusionPolicy::none());

  LeaderNode leader(*leader_hub.value(), *platforms[0], 0, 3,
                    cohort.cases.slice_rows(0, 100), cohort.controls,
                    announce);
  leader.set_receive_timeout(std::chrono::milliseconds(10000));
  MemberNode survivor(*member_hub.value(), *platforms[1], 1, 0,
                      cohort.cases.slice_rows(100, 200));
  survivor.set_receive_timeout(std::chrono::milliseconds(10000));
  survivor.start();

  std::thread doomed([&] {
    auto hub = net::TcpHub::create(node_id_of(2), 0);
    ASSERT_TRUE(hub.ok());
    ASSERT_TRUE(hub.value()
                    ->connect_peer(node_id_of(0), "127.0.0.1",
                                   leader_hub.value()->port())
                    .ok());
    auto mailbox = hub.value()->attach(node_id_of(2));
    GdoEnclave enclave(*platforms[2], 2);
    ASSERT_TRUE(
        enclave.provision_dataset(cohort.cases.slice_rows(200, 300)).ok());
    auto channel = enclave.channel_to(trusted_module_measurement(),
                                      /*initiator=*/true);
    hub.value()->send(node_id_of(2), node_id_of(0),
                      channel->handshake_message());
    const auto leader_handshake = mailbox->receive();
    ASSERT_TRUE(leader_handshake.has_value());
    ASSERT_TRUE(channel->complete(leader_handshake->payload).ok());
    // The hub goes out of scope here: the "machine" is gone mid-study.
  });

  const auto start = std::chrono::steady_clock::now();
  const auto result = leader.run_study(nullptr);
  doomed.join();
  survivor.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, common::Errc::timeout);
  EXPECT_NE(result.error().message.find("2"), std::string::npos)
      << result.error().to_string();
  // Peer-loss detection beats the deadline by a wide margin.
  EXPECT_LT(elapsed, std::chrono::seconds(8));
  ASSERT_FALSE(survivor.status().ok());
  EXPECT_EQ(survivor.status().error().code, common::Errc::aborted)
      << survivor.status().error().to_string();
}

}  // namespace
}  // namespace gendpr::core
