// Tiled-vs-monolithic equivalence for the pipelined phase engine.
//
// Tiling (StudyConfig::snp_tile_width > 0) changes the message chunking,
// the transient working-set sizes, and the leader/member scheduling — never
// the assembled per-phase state. These tests pin that contract: every tile
// width must produce bit-identical selections to the monolithic protocol,
// across federation sizes, collusion policies, and dead-GDO degraded runs,
// and a tiled run's transient EPC peak must stay under a limit that the
// monolithic run exceeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "gendpr/federation.hpp"
#include "gendpr/report.hpp"
#include "genome/cohort.hpp"
#include "net/network.hpp"

namespace gendpr::core {
namespace {

genome::Cohort test_cohort(std::size_t n_case, std::size_t n_control,
                           std::size_t n_snps, std::uint64_t seed) {
  genome::CohortSpec spec;
  spec.num_case = n_case;
  spec.num_control = n_control;
  spec.num_snps = n_snps;
  spec.seed = seed;
  return genome::generate_cohort(spec);
}

void expect_same_selection(const StudyResult& tiled, const StudyResult& mono,
                           const std::string& label) {
  EXPECT_EQ(tiled.outcome.l_prime, mono.outcome.l_prime) << label;
  EXPECT_EQ(tiled.outcome.l_double_prime, mono.outcome.l_double_prime)
      << label;
  EXPECT_EQ(tiled.outcome.l_safe, mono.outcome.l_safe) << label;
  EXPECT_EQ(tiled.outcome.final_power, mono.outcome.final_power) << label;
}

TEST(TilingTest, TiledMatchesMonolithicAcrossWidthsAndPolicies) {
  const genome::Cohort cohort = test_cohort(240, 240, 130, 9);
  for (std::uint32_t g : {3u, 4u, 5u}) {
    for (unsigned f : {0u, 1u, 2u}) {
      FederationSpec spec;
      spec.num_gdos = g;
      spec.policy = f == 0 ? CollusionPolicy::none() : CollusionPolicy::fixed(f);
      const auto mono = run_federated_study(cohort, spec);
      ASSERT_TRUE(mono.ok()) << "G=" << g << " f=" << f << ": "
                             << mono.error().to_string();
      EXPECT_EQ(mono.value().maf_tiles, 1u);
      EXPECT_EQ(mono.value().lr_tiles, 1u);
      for (std::uint32_t width : {7u, 64u}) {
        FederationSpec tiled_spec = spec;
        tiled_spec.config.snp_tile_width = width;
        const auto tiled = run_federated_study(cohort, tiled_spec);
        const std::string label = "G=" + std::to_string(g) +
                                  " f=" + std::to_string(f) +
                                  " width=" + std::to_string(width);
        ASSERT_TRUE(tiled.ok()) << label << ": " << tiled.error().to_string();
        expect_same_selection(tiled.value(), mono.value(), label);
        // 130 announced SNPs split into ceil(130/width) phase-1 tiles.
        EXPECT_EQ(tiled.value().maf_tiles, (130 + width - 1) / width) << label;
        EXPECT_GE(tiled.value().lr_tiles, 1u) << label;
      }
    }
  }
}

TEST(TilingTest, WidthBeyondStudyCollapsesToMonolithic) {
  const genome::Cohort cohort = test_cohort(200, 200, 80, 11);
  FederationSpec spec;
  spec.num_gdos = 3;
  spec.policy = CollusionPolicy::fixed(1);
  const auto mono = run_federated_study(cohort, spec);
  ASSERT_TRUE(mono.ok());

  FederationSpec wide = spec;
  wide.config.snp_tile_width = 100000;  // >= num_snps: one tile
  const auto collapsed = run_federated_study(cohort, wide);
  ASSERT_TRUE(collapsed.ok());
  EXPECT_EQ(collapsed.value().maf_tiles, 1u);
  EXPECT_EQ(collapsed.value().lr_tiles, 1u);
  expect_same_selection(collapsed.value(), mono.value(), "width>=total");
}

TEST(TilingTest, EmptyFunnelCompletesWithZeroLrTiles) {
  // maf_cutoff = 1.0 retains nothing (MAF tops out at 0.5): L' is empty,
  // the LD walks and LR selection have no input, and the phase-3 plan must
  // be empty - zero tiles, no phase-2 broadcast bodies - instead of a
  // single phantom tile over zero SNPs. Exercised monolithic and tiled, in
  // both sweep modes.
  const genome::Cohort cohort = test_cohort(200, 200, 80, 11);
  for (bool prune : {false, true}) {
    for (std::uint32_t width : {0u, 16u}) {
      FederationSpec spec;
      spec.num_gdos = 3;
      spec.policy = CollusionPolicy::fixed(1);
      spec.config.maf_cutoff = 1.0;
      spec.config.prune = prune;
      spec.config.snp_tile_width = width;
      const auto result = run_federated_study(cohort, spec);
      ASSERT_TRUE(result.ok())
          << "prune=" << prune << " width=" << width << ": "
          << result.error().to_string();
      const StudyResult& r = result.value();
      EXPECT_TRUE(r.outcome.l_prime.empty());
      EXPECT_TRUE(r.outcome.l_double_prime.empty());
      EXPECT_TRUE(r.outcome.l_safe.empty());
      EXPECT_EQ(r.lr_tiles, 0u);
      EXPECT_EQ(r.phase2_body_bytes, 0u);
      EXPECT_EQ(r.outcome.final_power, 0.0);
    }
  }
}

/// Handshakes with the leader from `gdo`, processes the study announce, and
/// then goes silent without ever sending a summary: a GDO crash right before
/// phase-1 input submission. Unlike a crash *after* the summary, this shape
/// is identical under any tile width, so the tiled and monolithic degraded
/// runs see the same dead set at the same phase. Runs on the calling thread.
void run_member_until_announce(net::Network& network, GdoEnclave& enclave,
                               std::shared_ptr<net::Mailbox> mailbox,
                               std::uint32_t gdo, std::uint32_t leader) {
  auto channel = enclave.channel_to(trusted_module_measurement(),
                                    /*initiator=*/true);
  network.send(node_id_of(gdo), node_id_of(leader),
               channel->handshake_message());
  const auto leader_handshake = mailbox->receive();
  ASSERT_TRUE(leader_handshake.has_value());
  ASSERT_TRUE(channel->complete(leader_handshake->payload).ok());
  const auto announce_record = mailbox->receive();
  ASSERT_TRUE(announce_record.has_value());
  auto plaintext = channel->open(announce_record->payload);
  ASSERT_TRUE(plaintext.ok());
  auto opened = open_envelope(plaintext.value());
  ASSERT_TRUE(opened.ok());
  auto announce = StudyAnnounce::deserialize(opened.value().second);
  ASSERT_TRUE(announce.ok());
  ASSERT_TRUE(enclave.on_study_announce(announce.value()).ok());
}

TEST(TilingTest, DegradedDeadGdoRunMatchesMonolithic) {
  // A member that crashes before submitting any summary is declared dead
  // during the summary gather in both modes, so the surviving combinations
  // — and hence the final selection — must match bit for bit.
  const genome::Cohort cohort = test_cohort(300, 240, 90, 13);
  auto run_with_crashing_member = [&](std::uint32_t width) {
    tee::QuotingAuthority authority{std::array<std::uint8_t, 32>{0x61}};
    tee::Platform platform0{1, authority,
                            crypto::Csprng(std::array<std::uint8_t, 32>{1})};
    tee::Platform platform1{2, authority,
                            crypto::Csprng(std::array<std::uint8_t, 32>{2})};
    tee::Platform platform2{3, authority,
                            crypto::Csprng(std::array<std::uint8_t, 32>{3})};
    net::Network network;
    StudyAnnounce announce;
    announce.study_id = 1;
    announce.num_snps = static_cast<std::uint32_t>(cohort.cases.num_snps());
    announce.config.snp_tile_width = width;
    // f = 1: combinations {0,1}, {0,2}, {1,2} - losing GDO 2 leaves {0,1}.
    announce.combinations =
        Coordinator::build_combinations(3, CollusionPolicy::fixed(1));
    LeaderNode leader(network, platform0, 0, 3,
                      cohort.cases.slice_rows(0, 100), cohort.controls,
                      announce);
    leader.set_receive_timeout(std::chrono::milliseconds(400));
    MemberNode honest(network, platform1, 1, 0,
                      cohort.cases.slice_rows(100, 200));
    honest.set_receive_timeout(std::chrono::milliseconds(20000));
    auto mailbox2 = network.attach(node_id_of(2));
    GdoEnclave enclave2(platform2, 2);
    EXPECT_TRUE(
        enclave2.provision_dataset(cohort.cases.slice_rows(200, 300)).ok());
    honest.start();
    std::thread crashing([&] {
      run_member_until_announce(network, enclave2, mailbox2, 2, 0);
    });
    auto result = leader.run_study(nullptr);
    crashing.join();
    honest.join();
    EXPECT_TRUE(honest.status().ok()) << honest.status().error().to_string();
    return result;
  };

  const auto mono = run_with_crashing_member(0);
  ASSERT_TRUE(mono.ok()) << mono.error().to_string();
  EXPECT_EQ(mono.value().dead_gdos, (std::vector<std::uint32_t>{2}));

  const auto tiled = run_with_crashing_member(16);
  ASSERT_TRUE(tiled.ok()) << tiled.error().to_string();
  EXPECT_EQ(tiled.value().dead_gdos, (std::vector<std::uint32_t>{2}));
  EXPECT_GT(tiled.value().maf_tiles, 1u);
  expect_same_selection(tiled.value(), mono.value(), "degraded width=16");
}

TEST(TilingTest, TiledRunFitsUnderEpcLimitMonolithicExceeds) {
  // Self-calibrating flat-memory check: measure both modes' EPC peaks under
  // a generous limit, then re-run with a limit placed strictly between the
  // leader's tiled and monolithic peaks. The tiled engine (O(tile)
  // transient bases) must complete with the identical selection; the
  // monolithic run must fail capacity_exceeded when the leader expands its
  // full-width basis. The leader gets a deliberately oversized case slice
  // so its basis — and therefore its peak — dominates the member's and the
  // pinch point trips only the leader.
  const genome::Cohort cohort = test_cohort(420, 200, 220, 17);
  const std::uint32_t kWidth = 12;
  struct Run {
    common::Result<StudyResult> result;
    std::uint64_t leader_peak = 0;
    std::uint64_t member_peak = 0;
  };
  auto run_with = [&](std::uint32_t width, std::uint64_t limit) {
    tee::QuotingAuthority authority{std::array<std::uint8_t, 32>{0x71}};
    tee::Platform leader_platform{
        1, authority, crypto::Csprng(std::array<std::uint8_t, 32>{1}), limit};
    tee::Platform member_platform{
        2, authority, crypto::Csprng(std::array<std::uint8_t, 32>{2}), limit};
    net::Network network;
    StudyAnnounce announce;
    announce.study_id = 1;
    announce.num_snps = static_cast<std::uint32_t>(cohort.cases.num_snps());
    announce.config.snp_tile_width = width;
    announce.combinations =
        Coordinator::build_combinations(2, CollusionPolicy::none());
    LeaderNode leader(network, leader_platform, 0, 2,
                      cohort.cases.slice_rows(0, 300), cohort.controls,
                      announce);
    leader.set_receive_timeout(std::chrono::milliseconds(20000));
    MemberNode member(network, member_platform, 1, 0,
                      cohort.cases.slice_rows(300, 420));
    member.set_receive_timeout(std::chrono::milliseconds(20000));
    member.start();
    Run run{leader.run_study(nullptr), 0, 0};
    member.join();
    run.leader_peak = leader_platform.epc().peak();
    run.member_peak = member_platform.epc().peak();
    return run;
  };

  const Run mono = run_with(0, tee::EpcMeter::kDefaultLimitBytes);
  ASSERT_TRUE(mono.result.ok()) << mono.result.error().to_string();
  const Run tiled = run_with(kWidth, tee::EpcMeter::kDefaultLimitBytes);
  ASSERT_TRUE(tiled.result.ok()) << tiled.result.error().to_string();
  expect_same_selection(tiled.result.value(), mono.result.value(),
                        "generous limit");
  ASSERT_GT(tiled.result.value().lr_tiles, 1u)
      << "L'' collapsed below the tile width; the sweep proves nothing";

  ASSERT_LT(tiled.leader_peak, mono.leader_peak)
      << "tiling did not lower the leader's transient peak";
  const std::uint64_t pinch = (tiled.leader_peak + mono.leader_peak) / 2;
  // The pinch must bite the leader's full-width basis and nothing else.
  ASSERT_LT(mono.member_peak, pinch);
  ASSERT_LT(tiled.member_peak, pinch);

  const Run tiled_pinched = run_with(kWidth, pinch);
  ASSERT_TRUE(tiled_pinched.result.ok())
      << tiled_pinched.result.error().to_string();
  expect_same_selection(tiled_pinched.result.value(), mono.result.value(),
                        "pinched limit");

  const Run mono_pinched = run_with(0, pinch);
  ASSERT_FALSE(mono_pinched.result.ok());
  EXPECT_EQ(mono_pinched.result.error().code,
            common::Errc::capacity_exceeded)
      << mono_pinched.result.error().to_string();
}

TEST(TilingTest, PipelineCountersReportOverlap) {
  const genome::Cohort cohort = test_cohort(200, 200, 100, 19);
  obs::Observability observability;
  FederationSpec spec;
  spec.num_gdos = 3;
  spec.policy = CollusionPolicy::fixed(1);
  spec.config.snp_tile_width = 10;
  spec.obs = &observability;
  const auto result = run_federated_study(cohort, spec);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(result.value().snp_tile_width, 10u);
  EXPECT_EQ(result.value().maf_tiles, 10u);
  // Every MAF tile is assessed through the inline pipeline path (the last
  // summary arrival makes the final tile ready), and the report carries
  // both the tiling shape and the pipeline counters.
  EXPECT_EQ(result.value().maf_tiles_assessed_inline, 10u);
  EXPECT_GE(result.value().lr_tiles, 1u);
  EXPECT_FALSE(result.value().kernel_backend.empty());

  ReportContext context;
  context.obs = &observability;
  const obs::JsonValue report = make_run_report(result.value(), context);
  const obs::JsonValue* tiles = report.find("tiles");
  ASSERT_NE(tiles, nullptr);
  EXPECT_EQ(tiles->find("width")->as_number(), 10.0);
  EXPECT_EQ(tiles->find("count")->as_number(), 10.0);
  const obs::JsonValue* metrics = report.find("metrics");
  ASSERT_NE(metrics, nullptr);
  const obs::JsonValue* counters = metrics->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->find("coordinator.maf_tiles")->as_number(), 10.0);
  EXPECT_EQ(
      counters->find("pipeline.maf_tiles_assessed_inline")->as_number(),
      10.0);
}

}  // namespace
}  // namespace gendpr::core
