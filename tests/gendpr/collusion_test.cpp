// Collusion-tolerant GenDPR (§5.6 / Table 5): per-combination evaluation and
// intersection of safe sets.
#include <gtest/gtest.h>

#include <algorithm>

#include "gendpr/federation.hpp"

namespace gendpr::core {
namespace {

genome::Cohort collusion_cohort() {
  genome::CohortSpec spec;
  spec.num_case = 900;
  spec.num_control = 900;
  spec.num_snps = 240;
  spec.associated_fraction = 0.15;
  spec.effect_odds = 2.2;  // strong signal so per-subset LR tests bite
  spec.seed = 21;
  return genome::generate_cohort(spec);
}

/// |a intersect b| - the paper's "safe released" accounting compares the
/// collusion-tolerant release against the f=0 release.
std::size_t intersection_size(const std::vector<std::uint32_t>& a,
                              const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out.size();
}

TEST(CollusionTest, FixedFWithholdsVulnerableSnps) {
  const genome::Cohort cohort = collusion_cohort();
  FederationSpec base;
  base.num_gdos = 3;
  base.seed = 5;
  const auto no_collusion = run_federated_study(cohort, base);
  ASSERT_TRUE(no_collusion.ok());
  const auto& f0_safe = no_collusion.value().outcome.l_safe;

  FederationSpec tolerant = base;
  tolerant.policy = CollusionPolicy::fixed(1);
  const auto result = run_federated_study(cohort, tolerant);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(result.value().num_combinations, 3u);  // C(3,2)

  // Table 5's accounting: SNPs of the f=0 release that the tolerant run no
  // longer certifies are "vulnerable" and withheld; the tolerant release is
  // strictly smaller on this cohort.
  const std::size_t released =
      intersection_size(result.value().outcome.l_safe, f0_safe);
  EXPECT_LT(result.value().outcome.l_safe.size(), f0_safe.size());
  EXPECT_GT(f0_safe.size() - released, 0u);  // some vulnerable SNPs found
  EXPECT_GT(released, 0u);                   // but most data still released
}

TEST(CollusionTest, CombinationCountsMatchPolicy) {
  const genome::Cohort cohort = collusion_cohort();
  struct Case {
    std::uint32_t g;
    CollusionPolicy policy;
    std::size_t expected;
  };
  const Case cases[] = {
      {3, CollusionPolicy::fixed(2), 3},        // C(3,1)
      {4, CollusionPolicy::fixed(2), 6},        // C(4,2)
      {4, CollusionPolicy::conservative(), 14}, // 4+6+4
      {5, CollusionPolicy::fixed(4), 5},        // C(5,1)
  };
  for (const Case& c : cases) {
    FederationSpec spec;
    spec.num_gdos = c.g;
    spec.policy = c.policy;
    spec.seed = 3;
    const auto result = run_federated_study(cohort, spec);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().num_combinations, c.expected)
        << "G=" << c.g;
  }
}

TEST(CollusionTest, ConservativeModeIsMostRestrictive) {
  const genome::Cohort cohort = collusion_cohort();
  FederationSpec spec;
  spec.num_gdos = 4;
  spec.seed = 9;

  spec.policy = CollusionPolicy::conservative();
  const auto conservative = run_federated_study(cohort, spec);
  ASSERT_TRUE(conservative.ok());

  // The conservative f={1..G-1} mode covers every fixed-f combination set,
  // so it releases at most as many SNPs as each fixed-f run (Table 5: the
  // f={...} rows have the smallest release in every group).
  for (unsigned f = 1; f <= 3; ++f) {
    spec.policy = CollusionPolicy::fixed(f);
    const auto fixed = run_federated_study(cohort, spec);
    ASSERT_TRUE(fixed.ok());
    EXPECT_LE(conservative.value().outcome.l_safe.size(),
              fixed.value().outcome.l_safe.size())
        << "f=" << f;
  }
}

TEST(CollusionTest, SafePowerBoundHoldsPerCombination) {
  const genome::Cohort cohort = collusion_cohort();
  FederationSpec spec;
  spec.num_gdos = 4;
  spec.policy = CollusionPolicy::conservative();
  spec.seed = 13;
  const auto result = run_federated_study(cohort, spec);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result.value().outcome.final_power,
            spec.config.lr_power_threshold);
}

TEST(CollusionTest, ParallelAndSerialCombinationEvaluationAgree) {
  const genome::Cohort cohort = collusion_cohort();
  FederationSpec spec;
  spec.num_gdos = 4;
  spec.policy = CollusionPolicy::fixed(2);
  spec.seed = 17;
  spec.parallel_combinations = true;
  const auto parallel = run_federated_study(cohort, spec);
  spec.parallel_combinations = false;
  const auto serial = run_federated_study(cohort, spec);
  ASSERT_TRUE(parallel.ok());
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(parallel.value().outcome.l_safe, serial.value().outcome.l_safe);
  EXPECT_EQ(parallel.value().outcome.l_double_prime,
            serial.value().outcome.l_double_prime);
}

TEST(CollusionTest, VulnerableSnpsDetectedOnSkewedCohort) {
  // Build a cohort where one GDO's slice is distinctive: subsets that
  // isolate it have higher identification power, so the collusion-tolerant
  // run must withhold SNPs the f=0 run would release (Table 5's
  // "vulnerable SNPs" column).
  genome::CohortSpec spec;
  spec.num_case = 600;
  spec.num_control = 600;
  spec.num_snps = 200;
  spec.associated_fraction = 0.3;
  spec.effect_odds = 3.0;
  spec.seed = 29;
  const genome::Cohort cohort = genome::generate_cohort(spec);

  FederationSpec base;
  base.num_gdos = 3;
  base.seed = 19;
  const auto f0 = run_federated_study(cohort, base);
  ASSERT_TRUE(f0.ok());

  FederationSpec tolerant = base;
  tolerant.policy = CollusionPolicy::fixed(2);  // singleton subsets
  const auto result = run_federated_study(cohort, tolerant);
  ASSERT_TRUE(result.ok());

  const std::size_t released = intersection_size(
      result.value().outcome.l_safe, f0.value().outcome.l_safe);
  const std::size_t vulnerable = f0.value().outcome.l_safe.size() - released;
  EXPECT_GT(vulnerable, 0u);
  EXPECT_LT(result.value().outcome.l_safe.size(),
            f0.value().outcome.l_safe.size());
}

}  // namespace
}  // namespace gendpr::core
