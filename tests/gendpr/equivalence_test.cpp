// The paper's Table 4 headline: GenDPR selects exactly the same SNP sets as
// the centralized SecureGenome baseline after every phase, while the naive
// distributed protocol diverges at the LD and LR stages.
#include <gtest/gtest.h>

#include "gendpr/baselines.hpp"
#include "gendpr/federation.hpp"

namespace gendpr::core {
namespace {

genome::Cohort cohort_for(std::uint64_t seed, std::size_t n_case = 800,
                          std::size_t n_snps = 200) {
  genome::CohortSpec spec;
  spec.num_case = n_case;
  spec.num_control = n_case;
  spec.num_snps = n_snps;
  spec.seed = seed;
  return genome::generate_cohort(spec);
}

/// Property sweep: over cohorts, federation sizes, and seeds, GenDPR's
/// selection is byte-identical to the centralized baseline at every phase.
class EquivalenceSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint32_t>> {
};

TEST_P(EquivalenceSweep, GenDprMatchesCentralizedEveryPhase) {
  const auto [seed, num_gdos] = GetParam();
  const genome::Cohort cohort = cohort_for(seed);

  const BaselineResult centralized =
      run_centralized(cohort, StudyConfig{});

  FederationSpec spec;
  spec.num_gdos = num_gdos;
  spec.seed = seed * 31 + 1;
  const auto federated = run_federated_study(cohort, spec);
  ASSERT_TRUE(federated.ok()) << federated.error().to_string();

  EXPECT_EQ(federated.value().outcome.l_prime, centralized.outcome.l_prime);
  EXPECT_EQ(federated.value().outcome.l_double_prime,
            centralized.outcome.l_double_prime);
  EXPECT_EQ(federated.value().outcome.l_safe, centralized.outcome.l_safe);
}

INSTANTIATE_TEST_SUITE_P(
    CohortsAndSizes, EquivalenceSweep,
    ::testing::Combine(::testing::Values(1ull, 2ull, 3ull, 4ull),
                       ::testing::Values(2u, 3u, 5u)));

TEST(EquivalenceTest, SevenGdosStillExact) {
  const genome::Cohort cohort = cohort_for(11);
  const BaselineResult centralized = run_centralized(cohort, StudyConfig{});
  FederationSpec spec;
  spec.num_gdos = 7;
  const auto federated = run_federated_study(cohort, spec);
  ASSERT_TRUE(federated.ok());
  EXPECT_EQ(federated.value().outcome.l_safe, centralized.outcome.l_safe);
}

TEST(EquivalenceTest, PhasesShrinkInCentralizedBaseline) {
  const genome::Cohort cohort = cohort_for(5);
  const BaselineResult centralized = run_centralized(cohort, StudyConfig{});
  EXPECT_FALSE(centralized.outcome.l_prime.empty());
  EXPECT_LT(centralized.outcome.l_prime.size(), cohort.cases.num_snps());
  EXPECT_LE(centralized.outcome.l_double_prime.size(),
            centralized.outcome.l_prime.size());
  EXPECT_LE(centralized.outcome.l_safe.size(),
            centralized.outcome.l_double_prime.size());
}

TEST(EquivalenceTest, NaiveMatchesAtMafPhase) {
  // Paper: the naive scheme "is able to retain the same SNPs during the MAF
  // evaluation" because count aggregation is still global.
  const genome::Cohort cohort = cohort_for(6);
  const BaselineResult centralized = run_centralized(cohort, StudyConfig{});
  const BaselineResult naive =
      run_naive_distributed(cohort, StudyConfig{}, 3);
  EXPECT_EQ(naive.outcome.l_prime, centralized.outcome.l_prime);
}

TEST(EquivalenceTest, NaiveDivergesDownstream) {
  // With heterogeneous local views the naive LD/LR selections must differ
  // from the correct global selection on LD-heavy cohorts (Table 4 bold).
  bool diverged = false;
  for (std::uint64_t seed : {6ull, 7ull, 8ull, 9ull}) {
    genome::CohortSpec spec;
    spec.num_case = 900;
    spec.num_control = 900;
    spec.num_snps = 300;
    spec.ld_copy_prob = 0.45;  // borderline LD: local p-values flip decisions
    spec.seed = seed;
    const genome::Cohort cohort = genome::generate_cohort(spec);
    const BaselineResult centralized = run_centralized(cohort, StudyConfig{});
    const BaselineResult naive =
        run_naive_distributed(cohort, StudyConfig{}, 5);
    if (naive.outcome.l_double_prime != centralized.outcome.l_double_prime ||
        naive.outcome.l_safe != centralized.outcome.l_safe) {
      diverged = true;
      // The naive intersection can only lose SNPs relative to its own LD
      // input; sanity-check containment in L'.
      for (std::uint32_t snp : naive.outcome.l_safe) {
        EXPECT_TRUE(std::binary_search(naive.outcome.l_prime.begin(),
                                       naive.outcome.l_prime.end(), snp));
      }
      break;
    }
  }
  EXPECT_TRUE(diverged)
      << "naive baseline unexpectedly matched the centralized selection on "
         "every cohort";
}

TEST(EquivalenceTest, NaiveSingleGdoEqualsCentralized) {
  // Degenerate case: one GDO owns all data, so "local" is global.
  const genome::Cohort cohort = cohort_for(10);
  const BaselineResult centralized = run_centralized(cohort, StudyConfig{});
  const BaselineResult naive =
      run_naive_distributed(cohort, StudyConfig{}, 1);
  EXPECT_EQ(naive.outcome.l_double_prime,
            centralized.outcome.l_double_prime);
  EXPECT_EQ(naive.outcome.l_safe, centralized.outcome.l_safe);
}

}  // namespace
}  // namespace gendpr::core
