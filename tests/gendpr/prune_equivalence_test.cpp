// Bit-identity of the intersection-aware combination sweep.
//
// The pruned sweep (StudyConfig::prune) reorders combinations, folds the
// running intersection eagerly, truncates LD walks, skips combinations past
// an empty intersection, and delta-derives LR matrices — all of which are
// pure work reductions: the per-phase survivor sets L', L'', and L_safe must
// be byte-identical to the unpruned protocol's, across collusion policies
// and including degraded (dead-GDO) runs. final_power is NOT part of the
// contract: once the intersection is empty, skipped selections may leave the
// pruned maximum short of the unpruned one.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "gendpr/federation.hpp"
#include "gendpr/node.hpp"
#include "gendpr/trusted.hpp"
#include "genome/cohort.hpp"
#include "obs/observability.hpp"

namespace gendpr::core {
namespace {

genome::Cohort test_cohort() {
  genome::CohortSpec spec;  // defaults include block LD and associated SNPs
  spec.num_case = 360;
  spec.num_control = 240;
  spec.num_snps = 120;
  spec.seed = 17;
  return genome::generate_cohort(spec);
}

StudyResult run(const genome::Cohort& cohort, std::uint32_t num_gdos,
                std::uint32_t f, bool prune, obs::Observability* obs = nullptr,
                std::uint32_t tile_width = 0) {
  FederationSpec spec;
  spec.num_gdos = num_gdos;
  spec.policy = CollusionPolicy::fixed(f);
  spec.config.prune = prune;
  spec.config.snp_tile_width = tile_width;
  spec.obs = obs;
  const auto result = run_federated_study(cohort, spec);
  EXPECT_TRUE(result.ok()) << "G=" << num_gdos << " f=" << f
                           << " prune=" << prune;
  return result.ok() ? result.value() : StudyResult{};
}

TEST(PruneEquivalenceTest, SafeSetsBitIdenticalAcrossPolicies) {
  const genome::Cohort cohort = test_cohort();
  for (std::uint32_t g = 3; g <= 6; ++g) {
    for (std::uint32_t f : {1u, 2u}) {
      const StudyResult unpruned = run(cohort, g, f, /*prune=*/false);
      const StudyResult pruned = run(cohort, g, f, /*prune=*/true);
      EXPECT_EQ(pruned.outcome.l_prime, unpruned.outcome.l_prime)
          << "G=" << g << " f=" << f;
      EXPECT_EQ(pruned.outcome.l_double_prime, unpruned.outcome.l_double_prime)
          << "G=" << g << " f=" << f;
      EXPECT_EQ(pruned.outcome.l_safe, unpruned.outcome.l_safe)
          << "G=" << g << " f=" << f;
      // The pruned sweep never fetches more distinct pairs than the
      // unpruned one (truncated walks are prefixes of full walks).
      EXPECT_LE(pruned.ld_pairs_fetched, unpruned.ld_pairs_fetched)
          << "G=" << g << " f=" << f;
      EXPECT_TRUE(pruned.pruning.enabled);
      EXPECT_FALSE(unpruned.pruning.enabled);
      // Mask trajectories are recorded and monotone non-increasing.
      for (const auto* sizes :
           {&pruned.pruning.maf_mask_sizes, &pruned.pruning.ld_mask_sizes,
            &pruned.pruning.lr_mask_sizes}) {
        for (std::size_t i = 1; i < sizes->size(); ++i) {
          EXPECT_LE((*sizes)[i], (*sizes)[i - 1]) << "G=" << g << " f=" << f;
        }
      }
      if (!pruned.pruning.maf_mask_sizes.empty()) {
        EXPECT_EQ(pruned.pruning.maf_mask_sizes.back(),
                  pruned.outcome.l_prime.size());
      }
    }
  }
}

TEST(PruneEquivalenceTest, TiledAndMonolithicPrunedSweepAgree) {
  const genome::Cohort cohort = test_cohort();
  const StudyResult unpruned = run(cohort, 4, 1, /*prune=*/false);
  const StudyResult tiled =
      run(cohort, 4, 1, /*prune=*/true, nullptr, /*tile_width=*/32);
  EXPECT_EQ(tiled.outcome.l_prime, unpruned.outcome.l_prime);
  EXPECT_EQ(tiled.outcome.l_double_prime, unpruned.outcome.l_double_prime);
  EXPECT_EQ(tiled.outcome.l_safe, unpruned.outcome.l_safe);
  EXPECT_GT(tiled.maf_tiles, 1u);
}

TEST(PruneEquivalenceTest, PrunedSweepDoesMeasurablyLessWork) {
  const genome::Cohort cohort = test_cohort();
  obs::Observability obs_unpruned;
  obs::Observability obs_pruned;
  const StudyResult unpruned =
      run(cohort, 6, 2, /*prune=*/false, &obs_unpruned);
  const StudyResult pruned = run(cohort, 6, 2, /*prune=*/true, &obs_pruned);
  EXPECT_EQ(pruned.outcome.l_safe, unpruned.outcome.l_safe);

  // Full LR derivations collapse to chain heads; the remainder shows up as
  // delta updates, and together they conserve the unpruned budget.
  const std::uint64_t matvecs_unpruned =
      obs_unpruned.metrics.counter("lr.combination_matvecs");
  const std::uint64_t matvecs_pruned =
      obs_pruned.metrics.counter("lr.combination_matvecs");
  const std::uint64_t deltas_pruned =
      obs_pruned.metrics.counter("lr.combination_delta_updates");
  EXPECT_LT(matvecs_pruned, matvecs_unpruned);
  EXPECT_EQ(matvecs_pruned + deltas_pruned, matvecs_unpruned);
  EXPECT_EQ(obs_unpruned.metrics.counter("lr.combination_delta_updates"), 0u);

  // Chi-squared work drops from C * num_snps to C * |L'| (or less when
  // walks are skipped outright).
  EXPECT_LT(obs_pruned.metrics.counter("coordinator.chi2_values_computed"),
            obs_unpruned.metrics.counter("coordinator.chi2_values_computed"));
  // MAF evaluations shrink with the per-tile mask.
  EXPECT_LT(obs_pruned.metrics.counter("coordinator.maf_snps_evaluated"),
            obs_unpruned.metrics.counter("coordinator.maf_snps_evaluated"));
  // Reference-side derivations collapse to one chain head per tile.
  EXPECT_LT(obs_pruned.metrics.counter("lr.reference_matvecs"),
            obs_unpruned.metrics.counter("lr.reference_matvecs"));
}

/// Handshakes with the leader from `gdo`, answers the announce with honest
/// summary stats, then goes silent — a crash right after phase-1 input
/// submission (mirrors the liveness tests in failure_injection_test.cpp).
void run_member_until_summary(net::Network& network, GdoEnclave& enclave,
                              std::shared_ptr<net::Mailbox> mailbox,
                              std::uint32_t gdo, std::uint32_t leader) {
  auto channel = enclave.channel_to(trusted_module_measurement(),
                                    /*initiator=*/true);
  network.send(node_id_of(gdo), node_id_of(leader),
               channel->handshake_message());
  const auto leader_handshake = mailbox->receive();
  ASSERT_TRUE(leader_handshake.has_value());
  ASSERT_TRUE(channel->complete(leader_handshake->payload).ok());
  const auto announce_record = mailbox->receive();
  ASSERT_TRUE(announce_record.has_value());
  auto plaintext = channel->open(announce_record->payload);
  ASSERT_TRUE(plaintext.ok());
  auto opened = open_envelope(plaintext.value());
  ASSERT_TRUE(opened.ok());
  auto announce = StudyAnnounce::deserialize(opened.value().second);
  ASSERT_TRUE(announce.ok());
  ASSERT_TRUE(enclave.on_study_announce(announce.value()).ok());
  auto record = channel->seal(envelope(
      MsgType::summary_stats, enclave.make_summary_stats().serialize()));
  ASSERT_TRUE(record.ok());
  network.send(node_id_of(gdo), node_id_of(leader), std::move(record).take());
}

TEST(PruneEquivalenceTest, DegradedRunsStayBitIdentical) {
  // GDO 2 submits its summary, then goes silent; the leader declares it
  // dead mid-walk. The pruned sweep's pass restart must land on the same
  // survivor sets the unpruned path computes over the live combinations.
  genome::CohortSpec cohort_spec;
  cohort_spec.num_case = 300;
  cohort_spec.num_control = 200;
  cohort_spec.num_snps = 60;
  cohort_spec.seed = 31;
  const genome::Cohort cohort = genome::generate_cohort(cohort_spec);

  auto run_degraded = [&](bool prune) {
    tee::QuotingAuthority authority{std::array<std::uint8_t, 32>{0x52}};
    tee::Platform platform0{1, authority,
                            crypto::Csprng(std::array<std::uint8_t, 32>{1})};
    tee::Platform platform1{2, authority,
                            crypto::Csprng(std::array<std::uint8_t, 32>{2})};
    tee::Platform platform2{3, authority,
                            crypto::Csprng(std::array<std::uint8_t, 32>{3})};
    net::Network network;

    StudyAnnounce announce;
    announce.study_id = 1;
    announce.num_snps = static_cast<std::uint32_t>(cohort.cases.num_snps());
    announce.config.prune = prune;
    // f = 1: combinations {0,1}, {0,2}, {1,2} — losing GDO 2 leaves {0,1}.
    announce.combinations =
        Coordinator::build_combinations(3, CollusionPolicy::fixed(1));

    LeaderNode leader(network, platform0, 0, 3,
                      cohort.cases.slice_rows(0, 100), cohort.controls,
                      announce);
    leader.set_receive_timeout(std::chrono::milliseconds(250));
    MemberNode honest(network, platform1, 1, 0,
                      cohort.cases.slice_rows(100, 200));
    honest.set_receive_timeout(std::chrono::milliseconds(5000));
    auto mailbox2 = network.attach(node_id_of(2));
    GdoEnclave enclave2(platform2, 2);
    EXPECT_TRUE(
        enclave2.provision_dataset(cohort.cases.slice_rows(200, 300)).ok());
    honest.start();
    std::thread crashing([&] {
      run_member_until_summary(network, enclave2, mailbox2, 2, 0);
    });

    auto result = leader.run_study(nullptr);
    crashing.join();
    honest.join();
    EXPECT_TRUE(result.ok()) << (result.ok() ? ""
                                             : result.error().to_string());
    if (result.ok()) {
      EXPECT_EQ(result.value().dead_gdos, (std::vector<std::uint32_t>{2}));
      // The surviving member converges on the leader's safe set too.
      EXPECT_TRUE(honest.enclave().study_complete());
      EXPECT_EQ(honest.enclave().safe_snps(), result.value().outcome.l_safe);
    }
    return result.ok() ? std::move(result).take() : StudyResult{};
  };

  const StudyResult unpruned = run_degraded(false);
  const StudyResult pruned = run_degraded(true);
  EXPECT_EQ(pruned.outcome.l_prime, unpruned.outcome.l_prime);
  EXPECT_EQ(pruned.outcome.l_double_prime, unpruned.outcome.l_double_prime);
  EXPECT_EQ(pruned.outcome.l_safe, unpruned.outcome.l_safe);
  EXPECT_FALSE(unpruned.outcome.l_safe.empty());
}

}  // namespace
}  // namespace gendpr::core
