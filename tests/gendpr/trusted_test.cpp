#include "gendpr/trusted.hpp"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "common/rng.hpp"
#include "genome/cohort.hpp"

namespace gendpr::core {
namespace {

struct Fixture {
  tee::QuotingAuthority authority{std::array<std::uint8_t, 32>{0x01}};
  tee::Platform platform{1, authority,
                         crypto::Csprng(std::array<std::uint8_t, 32>{2})};

  genome::Cohort cohort = genome::generate_cohort([] {
    genome::CohortSpec spec;
    spec.num_case = 300;
    spec.num_control = 300;
    spec.num_snps = 120;
    spec.seed = 5;
    return spec;
  }());

  StudyAnnounce make_announce(std::uint32_t num_gdos,
                              CollusionPolicy policy) {
    StudyAnnounce announce;
    announce.study_id = 1;
    announce.num_snps = static_cast<std::uint32_t>(cohort.cases.num_snps());
    announce.combinations =
        Coordinator::build_combinations(num_gdos, policy);
    return announce;
  }
};

TEST(IntersectSortedTest, BasicCases) {
  EXPECT_TRUE(intersect_sorted({}).empty());
  EXPECT_EQ(intersect_sorted({{1, 2, 3}}), (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_EQ(intersect_sorted({{1, 2, 3}, {2, 3, 4}}),
            (std::vector<std::uint32_t>{2, 3}));
  EXPECT_EQ(intersect_sorted({{1, 2}, {3, 4}}), (std::vector<std::uint32_t>{}));
  EXPECT_EQ(intersect_sorted({{1, 2, 3}, {2, 3}, {3}}),
            (std::vector<std::uint32_t>{3}));
}

TEST(BuildCombinationsTest, NonePolicyIsAllGdos) {
  const auto combinations =
      Coordinator::build_combinations(4, CollusionPolicy::none());
  ASSERT_EQ(combinations.size(), 1u);
  EXPECT_EQ(combinations[0], (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

TEST(BuildCombinationsTest, FixedFMatchesBinomial) {
  // C(5, 5-2) = 10 combinations of 3 GDOs.
  const auto combinations =
      Coordinator::build_combinations(5, CollusionPolicy::fixed(2));
  EXPECT_EQ(combinations.size(), 10u);
  for (const auto& members : combinations) {
    EXPECT_EQ(members.size(), 3u);
  }
}

TEST(BuildCombinationsTest, FixedFMaxIsSingletons) {
  const auto combinations =
      Coordinator::build_combinations(4, CollusionPolicy::fixed(3));
  EXPECT_EQ(combinations.size(), 4u);
  for (const auto& members : combinations) EXPECT_EQ(members.size(), 1u);
}

TEST(BuildCombinationsTest, ConservativeSumsAllF) {
  // Sum of C(4, 4-f) for f=1..3: 4 + 6 + 4 = 14.
  const auto combinations =
      Coordinator::build_combinations(4, CollusionPolicy::conservative());
  EXPECT_EQ(combinations.size(), 14u);
}

TEST(BuildCombinationsTest, FClampedToGMinus1) {
  const auto combinations =
      Coordinator::build_combinations(3, CollusionPolicy::fixed(99));
  EXPECT_EQ(combinations.size(), 3u);  // C(3,1)
}

TEST(GdoEnclaveTest, ProvisionAccountsEpc) {
  Fixture f;
  GdoEnclave enclave(f.platform, 0);
  ASSERT_TRUE(enclave.provision_dataset(f.cohort.cases).ok());
  // Both genotype layouts are charged: the packed rows and the SNP-major
  // bit planes built from them (DESIGN.md §2.1).
  const genome::BitPlanes planes(f.cohort.cases);
  EXPECT_EQ(f.platform.epc().in_use(),
            f.cohort.cases.storage_bytes() + planes.storage_bytes());
}

TEST(GdoEnclaveTest, ProvisionRejectedOverEpcLimit) {
  tee::QuotingAuthority authority{std::array<std::uint8_t, 32>{0x03}};
  tee::Platform tiny(1, authority,
                     crypto::Csprng(std::array<std::uint8_t, 32>{4}),
                     /*epc_limit=*/16);
  Fixture f;
  GdoEnclave enclave(tiny, 0);
  const auto status = enclave.provision_dataset(f.cohort.cases);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, common::Errc::capacity_exceeded);
}

TEST(GdoEnclaveTest, SummaryStatsMatchDataset) {
  Fixture f;
  GdoEnclave enclave(f.platform, 0);
  ASSERT_TRUE(enclave.provision_dataset(f.cohort.cases).ok());
  const SummaryStats stats = enclave.make_summary_stats();
  EXPECT_EQ(stats.n_case, f.cohort.cases.num_individuals());
  EXPECT_EQ(stats.case_counts, f.cohort.cases.allele_counts());
}

TEST(GdoEnclaveTest, AnnounceSnpMismatchRejected) {
  Fixture f;
  GdoEnclave enclave(f.platform, 0);
  ASSERT_TRUE(enclave.provision_dataset(f.cohort.cases).ok());
  StudyAnnounce announce = f.make_announce(2, CollusionPolicy::none());
  announce.num_snps = 7;  // wrong
  EXPECT_FALSE(enclave.on_study_announce(announce).ok());
}

TEST(GdoEnclaveTest, HandlersEnforcePhaseOrder) {
  Fixture f;
  GdoEnclave enclave(f.platform, 0);
  ASSERT_TRUE(enclave.provision_dataset(f.cohort.cases).ok());
  EXPECT_FALSE(enclave.on_phase1(Phase1Result{}).ok());
  EXPECT_FALSE(enclave.on_moments_request(MomentsRequest{}).ok());
  EXPECT_FALSE(enclave.on_phase3(Phase3Result{}).ok());
}

TEST(GdoEnclaveTest, MomentsRequestOutOfRangeRejected) {
  Fixture f;
  GdoEnclave enclave(f.platform, 0);
  ASSERT_TRUE(enclave.provision_dataset(f.cohort.cases).ok());
  ASSERT_TRUE(
      enclave.on_study_announce(f.make_announce(1, CollusionPolicy::none()))
          .ok());
  MomentsRequest request{0, 0, 100000};
  EXPECT_FALSE(enclave.on_moments_request(request).ok());
}

/// Per-GDO counts for a 3-GDO study whose slot for `enclave` matches its
/// local dataset (the enclave verifies its own slot before computing).
Phase2Result make_phase2_counts(const GdoEnclave& enclave,
                                std::vector<std::uint32_t> retained) {
  Phase2Result phase2;
  phase2.retained = std::move(retained);
  phase2.reference_freq.assign(phase2.retained.size(), 0.25);
  const std::uint32_t n_case =
      static_cast<std::uint32_t>(enclave.dataset().num_individuals());
  phase2.case_counts_per_gdo.assign(
      3, std::vector<std::uint32_t>(phase2.retained.size(), 7));
  phase2.case_counts_per_gdo[enclave.gdo_index()] =
      enclave.planes().allele_counts(phase2.retained);
  phase2.n_case_per_gdo = {100, 100, 100};
  phase2.n_case_per_gdo[enclave.gdo_index()] = n_case;
  return phase2;
}

TEST(GdoEnclaveTest, Phase2BuildsMatricesOnlyForOwnCombinations) {
  Fixture f;
  GdoEnclave enclave(f.platform, 1);
  ASSERT_TRUE(enclave.provision_dataset(f.cohort.cases).ok());
  StudyAnnounce announce = f.make_announce(3, CollusionPolicy::fixed(1));
  // Combinations of 2 of {0,1,2}: {0,1}, {0,2}, {1,2}. GDO 1 is in 2 of 3.
  ASSERT_TRUE(enclave.on_study_announce(announce).ok());
  ASSERT_TRUE(enclave.on_phase1(Phase1Result{{0, 1, 2}}).ok());
  const Phase2Result phase2 = make_phase2_counts(enclave, {0, 1, 2});
  const auto matrices = enclave.on_phase2(phase2);
  ASSERT_TRUE(matrices.ok());
  ASSERT_EQ(matrices.value().entries.size(), 2u);
  EXPECT_EQ(matrices.value().entries[0].combination_id, 0u);
  EXPECT_EQ(matrices.value().entries[1].combination_id, 2u);
  for (const auto& entry : matrices.value().entries) {
    EXPECT_EQ(entry.matrix.rows(), f.cohort.cases.num_individuals());
    EXPECT_EQ(entry.matrix.cols(), 3u);
  }
}

TEST(GdoEnclaveTest, Phase2FrequencySizeMismatchRejected) {
  Fixture f;
  GdoEnclave enclave(f.platform, 0);
  ASSERT_TRUE(enclave.provision_dataset(f.cohort.cases).ok());
  ASSERT_TRUE(
      enclave.on_study_announce(f.make_announce(1, CollusionPolicy::none()))
          .ok());
  Phase2Result phase2 = make_phase2_counts(enclave, {0, 1});
  phase2.reference_freq = {0.2};  // wrong size
  EXPECT_FALSE(enclave.on_phase2(phase2).ok());
}

TEST(GdoEnclaveTest, Phase2MisattributedOwnCountsRejected) {
  // A leader shipping counts for this GDO that disagree with its dataset is
  // caught inside the enclave before any matrix is computed.
  Fixture f;
  GdoEnclave enclave(f.platform, 1);
  ASSERT_TRUE(enclave.provision_dataset(f.cohort.cases).ok());
  ASSERT_TRUE(enclave
                  .on_study_announce(
                      f.make_announce(3, CollusionPolicy::fixed(1)))
                  .ok());
  Phase2Result phase2 = make_phase2_counts(enclave, {0, 1, 2});
  phase2.case_counts_per_gdo[1][0] += 1;  // tampered own slot
  const auto tampered = enclave.on_phase2(phase2);
  ASSERT_FALSE(tampered.ok());
  EXPECT_EQ(tampered.error().code, common::Errc::bad_message);
}

TEST(GdoEnclaveTest, Phase2CoMemberCountOverPopulationRejected) {
  Fixture f;
  GdoEnclave enclave(f.platform, 1);
  ASSERT_TRUE(enclave.provision_dataset(f.cohort.cases).ok());
  ASSERT_TRUE(enclave
                  .on_study_announce(
                      f.make_announce(3, CollusionPolicy::fixed(1)))
                  .ok());
  Phase2Result phase2 = make_phase2_counts(enclave, {0, 1, 2});
  phase2.case_counts_per_gdo[0][2] = 101;  // exceeds n_case_per_gdo[0]
  EXPECT_FALSE(enclave.on_phase2(phase2).ok());
}

TEST(GdoEnclaveTest, Phase2SkipsCombinationsWithDeadMembers) {
  Fixture f;
  GdoEnclave enclave(f.platform, 1);
  ASSERT_TRUE(enclave.provision_dataset(f.cohort.cases).ok());
  ASSERT_TRUE(enclave
                  .on_study_announce(
                      f.make_announce(3, CollusionPolicy::fixed(1)))
                  .ok());
  Phase2Result phase2 = make_phase2_counts(enclave, {0, 1, 2});
  phase2.dead_gdos = {0};
  phase2.case_counts_per_gdo[0].clear();  // dead slot travels empty
  phase2.n_case_per_gdo[0] = 0;
  const auto matrices = enclave.on_phase2(phase2);
  ASSERT_TRUE(matrices.ok());
  // Only {1,2} survives: {0,1} and {0,2} name the dead GDO 0.
  ASSERT_EQ(matrices.value().entries.size(), 1u);
  EXPECT_EQ(matrices.value().entries[0].combination_id, 2u);
}

TEST(CoordinatorTest, RejectsBogusSummaries) {
  Fixture f;
  GdoEnclave leader(f.platform, 0);
  ASSERT_TRUE(leader.provision_dataset(f.cohort.cases).ok());
  Coordinator coordinator(leader, f.cohort.controls, 2,
                          f.make_announce(2, CollusionPolicy::none()));
  SummaryStats bogus;
  bogus.case_counts = {1, 2};  // wrong length
  bogus.n_case = 10;
  EXPECT_FALSE(coordinator.add_summary(1, bogus).ok());

  SummaryStats inflated;
  inflated.case_counts.assign(f.cohort.cases.num_snps(), 100);
  inflated.n_case = 10;  // counts exceed population
  EXPECT_FALSE(coordinator.add_summary(1, inflated).ok());

  SummaryStats ok;
  ok.case_counts.assign(f.cohort.cases.num_snps(), 1);
  ok.n_case = 10;
  EXPECT_FALSE(coordinator.add_summary(7, ok).ok());  // unknown GDO
  EXPECT_TRUE(coordinator.add_summary(1, ok).ok());
}

TEST(CoordinatorTest, MafPhaseRequiresAllSummaries) {
  Fixture f;
  GdoEnclave leader(f.platform, 0);
  ASSERT_TRUE(leader.provision_dataset(f.cohort.cases).ok());
  Coordinator coordinator(leader, f.cohort.controls, 3,
                          f.make_announce(3, CollusionPolicy::none()));
  EXPECT_FALSE(coordinator.phase1_ready());
  EXPECT_FALSE(coordinator.run_maf_phase().ok());
}

TEST(CoordinatorTest, SingleGdoPipelineRunsEndToEnd) {
  Fixture f;
  GdoEnclave leader(f.platform, 0);
  ASSERT_TRUE(leader.provision_dataset(f.cohort.cases).ok());
  Coordinator coordinator(leader, f.cohort.controls, 1,
                          f.make_announce(1, CollusionPolicy::none()));
  ASSERT_TRUE(coordinator.phase1_ready());
  const auto phase1 = coordinator.run_maf_phase();
  ASSERT_TRUE(phase1.ok());
  EXPECT_FALSE(phase1.value().retained.empty());

  auto fetch = [](const MomentsRequest&, const std::vector<std::uint32_t>&) {
    return std::vector<std::optional<stats::LdMoments>>{};
  };
  const auto phase2 = coordinator.run_ld_phase(fetch);
  ASSERT_TRUE(phase2.ok());
  EXPECT_LE(phase2.value().retained.size(), phase1.value().retained.size());

  ASSERT_TRUE(coordinator.phase3_ready());
  const auto phase3 = coordinator.run_lr_phase(nullptr);
  ASSERT_TRUE(phase3.ok());
  EXPECT_LE(phase3.value().safe.size(), phase2.value().retained.size());
  EXPECT_LE(phase3.value().final_power, 0.9);
}

TEST(CoordinatorTest, LrMatrixValidation) {
  Fixture f;
  GdoEnclave leader(f.platform, 0);
  ASSERT_TRUE(leader.provision_dataset(f.cohort.cases).ok());
  Coordinator coordinator(leader, f.cohort.controls, 2,
                          f.make_announce(2, CollusionPolicy::none()));
  SummaryStats member_stats;
  member_stats.case_counts.assign(f.cohort.cases.num_snps(), 5);
  member_stats.n_case = 50;
  ASSERT_TRUE(coordinator.add_summary(1, member_stats).ok());
  ASSERT_TRUE(coordinator.run_maf_phase().ok());
  auto fetch = [&](const MomentsRequest&, const std::vector<std::uint32_t>&) {
    std::vector<std::optional<stats::LdMoments>> per_gdo(2);
    per_gdo[1] = stats::LdMoments{5, 5, 1, 5, 5, 50};
    return per_gdo;
  };
  ASSERT_TRUE(coordinator.run_ld_phase(fetch).ok());

  LrMatrices bad_combination;
  bad_combination.entries.push_back({7, stats::LrMatrix(50, 1)});
  EXPECT_FALSE(coordinator.add_lr_matrices(1, bad_combination).ok());

  LrMatrices wrong_rows;
  wrong_rows.entries.push_back(
      {0, stats::LrMatrix(3, coordinator.outcome().l_double_prime.size())});
  EXPECT_FALSE(coordinator.add_lr_matrices(1, wrong_rows).ok());
}

/// Three-GDO coordinator with identical member summaries: every combination
/// ranks SNPs identically, so the greedy walks of {0,1} and {0,2} visit the
/// same pairs and the second walk hits moments_cache_ entries created by the
/// first. Shared by the stale-slot regression tests below.
struct RefetchFixture {
  Fixture f;
  GdoEnclave leader{f.platform, 0};
  std::optional<Coordinator> coordinator;

  explicit RefetchFixture(bool prune) {
    EXPECT_TRUE(leader.provision_dataset(f.cohort.cases).ok());
    StudyAnnounce announce = f.make_announce(3, CollusionPolicy::fixed(1));
    announce.config.prune = prune;
    coordinator.emplace(leader, f.cohort.controls, 3, announce);
    SummaryStats member_stats;
    member_stats.case_counts.assign(f.cohort.cases.num_snps(), 5);
    // Larger than the leader's population so the pruning order visits the
    // leader-bearing pairs {0,1} and {0,2} before {1,2}.
    member_stats.n_case = 400;
    EXPECT_TRUE(coordinator->add_summary(1, member_stats).ok());
    EXPECT_TRUE(coordinator->add_summary(2, member_stats).ok());
    EXPECT_TRUE(coordinator->run_maf_phase().ok());
  }
};

TEST(CoordinatorTest, StaleMomentsSlotRefetchedForLiveMember) {
  // Legacy (unpruned) mode: the first touch of a pair broadcasts to all
  // live members. If GDO 2's response is lost in transit (without GDO 2
  // being unresponsive at the network layer, so it is never marked dead),
  // the cached entry keeps an empty slot. When combination {0,2} later
  // aggregates the same pair, the coordinator must re-request the missing
  // slot from the live member instead of replaying MissingMomentsError
  // from the stale cache entry - which used to kill combination {0,2} and
  // {1,2} and silently shrink the assessment.
  RefetchFixture rf(/*prune=*/false);
  std::vector<std::vector<std::uint32_t>> calls;
  auto fetch = [&](const MomentsRequest&,
                   const std::vector<std::uint32_t>& targets) {
    calls.push_back(targets);
    std::vector<std::optional<stats::LdMoments>> per_gdo(3);
    for (std::uint32_t g : targets) {
      if (calls.size() == 1 && g == 2) continue;  // drop GDO 2's response
      per_gdo[g] = stats::LdMoments{5, 5, 1, 5, 5, 50};
    }
    return per_gdo;
  };
  ASSERT_TRUE(rf.coordinator->run_ld_phase(fetch).ok());
  EXPECT_TRUE(rf.coordinator->dead_gdos().empty());
  ASSERT_FALSE(calls.empty());
  // First touch broadcast to both members; the lost slot was later
  // re-requested from GDO 2 alone.
  EXPECT_EQ(calls.front(), (std::vector<std::uint32_t>{1, 2}));
  bool refetched = false;
  for (std::size_t i = 1; i < calls.size(); ++i) {
    refetched |= calls[i] == std::vector<std::uint32_t>{2};
  }
  EXPECT_TRUE(refetched);
}

TEST(CoordinatorTest, PrunedSweepFillsCachedPairSlotsLazily) {
  // Pruned mode fetches per combination: {0,1} creates the cache entry with
  // only slot 1 filled, and {0,2}'s later touch of the same pair must fetch
  // slot 2 on the cache HIT path rather than trusting the entry complete.
  RefetchFixture rf(/*prune=*/true);
  bool single_member_fill = false;
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> seen;
  auto fetch = [&](const MomentsRequest& request,
                   const std::vector<std::uint32_t>& targets) {
    single_member_fill |= targets == std::vector<std::uint32_t>{2};
    std::vector<std::optional<stats::LdMoments>> per_gdo(3);
    for (std::uint32_t g : targets) {
      // A filled slot is never re-requested.
      EXPECT_TRUE(seen.insert({request.snp_a, request.snp_b, g}).second);
      per_gdo[g] = stats::LdMoments{5, 5, 1, 5, 5, 50};
    }
    return per_gdo;
  };
  ASSERT_TRUE(rf.coordinator->run_ld_phase(fetch).ok());
  EXPECT_TRUE(rf.coordinator->dead_gdos().empty());
  EXPECT_TRUE(single_member_fill);
}

}  // namespace
}  // namespace gendpr::core
