#include "common/error.hpp"

#include <gtest/gtest.h>

#include <string>

namespace gendpr::common {
namespace {

TEST(ErrorTest, ErrcNamesAreStable) {
  EXPECT_STREQ(errc_name(Errc::ok), "ok");
  EXPECT_STREQ(errc_name(Errc::decrypt_failed), "decrypt_failed");
  EXPECT_STREQ(errc_name(Errc::attestation_rejected), "attestation_rejected");
  EXPECT_STREQ(errc_name(Errc::bad_message), "bad_message");
  EXPECT_STREQ(errc_name(Errc::capacity_exceeded), "capacity_exceeded");
  EXPECT_STREQ(errc_name(Errc::timeout), "timeout");
  EXPECT_STREQ(errc_name(Errc::aborted), "aborted");
}

TEST(ErrorTest, ErrorToString) {
  const Error e = make_error(Errc::bad_message, "truncated frame");
  EXPECT_EQ(e.to_string(), "bad_message: truncated frame");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(make_error(Errc::decrypt_failed, "tag mismatch"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::decrypt_failed);
}

TEST(ResultTest, ValueOnErrorThrows) {
  Result<int> r(make_error(Errc::bad_message, "x"));
  EXPECT_THROW(r.value(), std::runtime_error);
}

TEST(ResultTest, ErrorOnValueThrows) {
  Result<int> r(7);
  EXPECT_THROW(r.error(), std::logic_error);
}

TEST(ResultTest, TakeMovesValue) {
  Result<std::string> r(std::string("payload"));
  const std::string s = std::move(r).take();
  EXPECT_EQ(s, "payload");
}

TEST(StatusTest, DefaultIsSuccess) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.error().code, Errc::ok);
}

TEST(StatusTest, CarriesError) {
  Status s(make_error(Errc::state_violation, "phase out of order"));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, Errc::state_violation);
}

}  // namespace
}  // namespace gendpr::common
