#include "common/combinatorics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace gendpr::common {
namespace {

TEST(BinomialTest, SmallValues) {
  EXPECT_EQ(binomial(0, 0), 1u);
  EXPECT_EQ(binomial(5, 0), 1u);
  EXPECT_EQ(binomial(5, 5), 1u);
  EXPECT_EQ(binomial(5, 2), 10u);
  EXPECT_EQ(binomial(7, 3), 35u);
  EXPECT_EQ(binomial(10, 5), 252u);
}

TEST(BinomialTest, KGreaterThanNIsZero) {
  EXPECT_EQ(binomial(3, 4), 0u);
}

TEST(BinomialTest, PascalIdentity) {
  for (unsigned n = 1; n < 20; ++n) {
    for (unsigned k = 1; k <= n; ++k) {
      EXPECT_EQ(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(CombinationsTest, CountMatchesBinomial) {
  for (std::size_t n = 0; n <= 8; ++n) {
    for (std::size_t k = 0; k <= n; ++k) {
      EXPECT_EQ(combinations(n, k).size(),
                binomial(static_cast<unsigned>(n), static_cast<unsigned>(k)))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(CombinationsTest, KZeroYieldsEmptySubset) {
  const auto result = combinations(5, 0);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_TRUE(result[0].empty());
}

TEST(CombinationsTest, KGreaterThanNEmpty) {
  EXPECT_TRUE(combinations(3, 4).empty());
}

TEST(CombinationsTest, FullSubset) {
  const auto result = combinations(4, 4);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(CombinationsTest, KnownEnumeration) {
  const auto result = combinations(4, 2);
  const std::vector<std::vector<std::size_t>> expected = {
      {0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}};
  EXPECT_EQ(result, expected);
}

TEST(CombinationsTest, AllSubsetsDistinctAndSorted) {
  const auto result = combinations(7, 3);
  std::set<std::vector<std::size_t>> unique(result.begin(), result.end());
  EXPECT_EQ(unique.size(), result.size());
  for (const auto& subset : result) {
    EXPECT_TRUE(std::is_sorted(subset.begin(), subset.end()));
    for (std::size_t v : subset) EXPECT_LT(v, 7u);
  }
}

TEST(CombinationsTest, LexicographicOrder) {
  const auto result = combinations(6, 2);
  EXPECT_TRUE(std::is_sorted(result.begin(), result.end()));
}

}  // namespace
}  // namespace gendpr::common
