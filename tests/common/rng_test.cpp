#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace gendpr::common {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() != b.next()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntWithinBound) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_int(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(29);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, GammaMeanMatchesShape) {
  Rng rng(31);
  const double shape = 2.5;
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.gamma(shape);
  EXPECT_NEAR(sum / n, shape, 0.05);
}

TEST(RngTest, GammaSubUnitShape) {
  Rng rng(37);
  const double shape = 0.4;
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gamma(shape);
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, shape, 0.03);
}

TEST(RngTest, BetaWithinUnitInterval) {
  Rng rng(41);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.beta(0.5, 2.0);
    EXPECT_GT(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, BetaMeanMatches) {
  Rng rng(43);
  const double a = 2.0;
  const double b = 6.0;
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.beta(a, b);
  EXPECT_NEAR(sum / n, a / (a + b), 0.01);
}

TEST(RngTest, PermutationIsBijective) {
  Rng rng(47);
  const auto perm = rng.permutation(100);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(RngTest, PermutationEmpty) {
  Rng rng(53);
  EXPECT_TRUE(rng.permutation(0).empty());
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(59);
  Rng b = a.fork();
  // The fork must not replay the parent's stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 4);
}

}  // namespace
}  // namespace gendpr::common
