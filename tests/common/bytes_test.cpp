#include "common/bytes.hpp"

#include <gtest/gtest.h>

namespace gendpr::common {
namespace {

TEST(BytesTest, ToHexEmpty) {
  EXPECT_EQ(to_hex({}), "");
}

TEST(BytesTest, ToHexKnownValues) {
  const Bytes data = {0x00, 0x01, 0x0f, 0x10, 0xab, 0xff};
  EXPECT_EQ(to_hex(data), "00010f10abff");
}

TEST(BytesTest, FromHexRoundTrip) {
  const Bytes data = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x42};
  EXPECT_EQ(from_hex(to_hex(data)), data);
}

TEST(BytesTest, FromHexUppercase) {
  EXPECT_EQ(from_hex("DEADBEEF"), (Bytes{0xde, 0xad, 0xbe, 0xef}));
}

TEST(BytesTest, FromHexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(BytesTest, FromHexRejectsNonHex) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
  EXPECT_THROW(from_hex("0g"), std::invalid_argument);
}

TEST(BytesTest, CtEqualMatches) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  EXPECT_TRUE(ct_equal(a, b));
}

TEST(BytesTest, CtEqualDetectsSingleBitDifference) {
  const Bytes a = {1, 2, 3};
  Bytes b = a;
  b[2] ^= 0x01;
  EXPECT_FALSE(ct_equal(a, b));
}

TEST(BytesTest, CtEqualDifferentLengths) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2};
  EXPECT_FALSE(ct_equal(a, b));
}

TEST(BytesTest, CtEqualEmpty) {
  EXPECT_TRUE(ct_equal({}, {}));
}

TEST(BytesTest, SecureZeroClearsBuffer) {
  Bytes buf = {0xaa, 0xbb, 0xcc};
  secure_zero(buf);
  EXPECT_EQ(buf, (Bytes{0, 0, 0}));
}

TEST(BytesTest, ToBytesPreservesContent) {
  EXPECT_EQ(to_bytes("abc"), (Bytes{'a', 'b', 'c'}));
}

TEST(BytesTest, AppendConcatenates) {
  Bytes dst = {1, 2};
  const Bytes src = {3, 4};
  append(dst, src);
  EXPECT_EQ(dst, (Bytes{1, 2, 3, 4}));
}

}  // namespace
}  // namespace gendpr::common
