#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace gendpr::common {
namespace {

TEST(ThreadPoolTest, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, SubmitManyTasks) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPoolTest, SubmitPropagatesException) {
  ThreadPool pool(1);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroCount) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ParallelForSingleIteration) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.parallel_for(1, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, ParallelForPropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::logic_error("bad");
                                 }),
               std::logic_error);
}

TEST(ThreadPoolTest, DefaultSizeIsAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, ParallelForMoreWorkThanThreads) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  pool.parallel_for(10000, [&](std::size_t i) {
    sum.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 10000L * 9999L / 2);
}

}  // namespace
}  // namespace gendpr::common
