// TilePlan partitioning and BitPlanes tile views: a tile is a zero-copy
// slice of the packed planes and the cached popcounts — never a repack or a
// recount.
#include "genome/tile_plan.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "genome/bitplanes.hpp"
#include "genome/genotype.hpp"

namespace gendpr::genome {
namespace {

TEST(TilePlanTest, WidthZeroIsOneTile) {
  const TilePlan plan = TilePlan::over(1000, 0);
  EXPECT_EQ(plan.tile_count(), 1u);
  EXPECT_EQ(plan.begin(0), 0u);
  EXPECT_EQ(plan.end(0), 1000u);
  EXPECT_EQ(plan.width_of(0), 1000u);
}

TEST(TilePlanTest, WidthAtLeastTotalIsOneTile) {
  EXPECT_EQ(TilePlan::over(100, 100).tile_count(), 1u);
  EXPECT_EQ(TilePlan::over(100, 5000).tile_count(), 1u);
}

TEST(TilePlanTest, EmptyRangeYieldsEmptyPlan) {
  // total == 0 used to emit a phantom 1-wide tile over nothing; an empty
  // range now plans zero tiles so the phase protocols stream no records.
  for (std::uint32_t width : {0u, 1u, 64u}) {
    const TilePlan plan = TilePlan::over(0, width);
    EXPECT_EQ(plan.tile_count(), 0u) << "width " << width;
    EXPECT_EQ(plan.total(), 0u);
    EXPECT_EQ(plan.width(), 0u);
  }
  EXPECT_EQ(TilePlan().tile_count(), 0u);  // default-constructed == empty
}

TEST(TilePlanTest, WidthBeyondTotalStillCoversTheRange) {
  const TilePlan plan = TilePlan::over(7, 1u << 20);
  ASSERT_EQ(plan.tile_count(), 1u);
  EXPECT_EQ(plan.begin(0), 0u);
  EXPECT_EQ(plan.end(0), 7u);
  EXPECT_EQ(plan.width_of(0), 7u);
}

TEST(TilePlanTest, TilesPartitionTheRange) {
  for (std::uint32_t total : {1u, 63u, 64u, 65u, 1000u, 1001u}) {
    for (std::uint32_t width : {1u, 64u, 1000u}) {
      const TilePlan plan = TilePlan::over(total, width);
      std::uint32_t covered = 0;
      for (std::uint32_t k = 0; k < plan.tile_count(); ++k) {
        EXPECT_EQ(plan.begin(k), covered) << total << "/" << width;
        EXPECT_GT(plan.end(k), plan.begin(k));
        covered = plan.end(k);
      }
      EXPECT_EQ(covered, total) << total << "/" << width;
    }
  }
}

TEST(TilePlanTest, SliceExtractsTheTileRange) {
  std::vector<std::uint32_t> values(10);
  std::iota(values.begin(), values.end(), 0u);
  const TilePlan plan = TilePlan::over(10, 4);
  ASSERT_EQ(plan.tile_count(), 3u);
  EXPECT_EQ(plan.slice(values, 1),
            (std::vector<std::uint32_t>{4, 5, 6, 7}));
  EXPECT_EQ(plan.slice(values, 2), (std::vector<std::uint32_t>{8, 9}));
}

GenotypeMatrix random_matrix(std::size_t individuals, std::size_t snps,
                             std::uint64_t seed) {
  common::Rng rng(seed);
  GenotypeMatrix m(individuals, snps);
  for (std::size_t n = 0; n < individuals; ++n) {
    for (std::size_t l = 0; l < snps; ++l) {
      if (rng.bernoulli(0.3)) m.set(n, l, true);
    }
  }
  return m;
}

TEST(TileViewTest, ViewSlicesWordsAndCachedCounts) {
  const GenotypeMatrix m = random_matrix(130, 57, 99);
  const BitPlanes planes(m);
  const TilePlan plan = TilePlan::over(57, 16);
  for (std::uint32_t k = 0; k < plan.tile_count(); ++k) {
    const BitPlanes::TileView view = planes.tile(plan.begin(k), plan.end(k));
    EXPECT_EQ(view.snp_begin(), plan.begin(k));
    EXPECT_EQ(view.num_snps(), plan.width_of(k));
    EXPECT_EQ(view.words_per_plane(), planes.words_per_plane());
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < view.num_snps(); ++i) {
      const std::size_t snp = view.snp_begin() + i;
      // Word-range accessor: the view's plane is the parent's plane pointer.
      EXPECT_EQ(view.plane(i), planes.plane(snp));
      // Cached counts: the view reads the parent cache, no recount.
      EXPECT_EQ(view.allele_count(i), planes.allele_count(snp));
      total += planes.allele_count(snp);
    }
    // Tile totals come from the popcount prefix array in O(1).
    EXPECT_EQ(view.total_allele_count(), total);
    EXPECT_EQ(view.words(), planes.plane(view.snp_begin()));
    EXPECT_EQ(view.num_words(),
              view.num_snps() * planes.words_per_plane());
  }
}

TEST(TileViewTest, FullRangeViewCoversEverything) {
  const GenotypeMatrix m = random_matrix(64, 8, 3);
  const BitPlanes planes(m);
  const BitPlanes::TileView view = planes.tile(0, planes.num_snps());
  std::uint64_t total = 0;
  for (std::uint32_t c : planes.allele_counts()) total += c;
  EXPECT_EQ(view.total_allele_count(), total);
}

}  // namespace
}  // namespace gendpr::genome
