#include "genome/genotype.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace gendpr::genome {
namespace {

TEST(GenotypeMatrixTest, DefaultIsAllMajor) {
  GenotypeMatrix m(10, 20);
  for (std::size_t n = 0; n < 10; ++n) {
    for (std::size_t l = 0; l < 20; ++l) {
      EXPECT_FALSE(m.get(n, l));
    }
  }
}

TEST(GenotypeMatrixTest, SetGetRoundTrip) {
  GenotypeMatrix m(4, 11);
  m.set(0, 0, true);
  m.set(3, 10, true);
  m.set(1, 7, true);
  EXPECT_TRUE(m.get(0, 0));
  EXPECT_TRUE(m.get(3, 10));
  EXPECT_TRUE(m.get(1, 7));
  EXPECT_FALSE(m.get(0, 1));
  m.set(1, 7, false);
  EXPECT_FALSE(m.get(1, 7));
}

TEST(GenotypeMatrixTest, SetDoesNotDisturbNeighbours) {
  GenotypeMatrix m(1, 16);
  m.set(0, 5, true);
  m.set(0, 6, true);
  m.set(0, 5, false);
  EXPECT_FALSE(m.get(0, 5));
  EXPECT_TRUE(m.get(0, 6));
  EXPECT_FALSE(m.get(0, 4));
}

TEST(GenotypeMatrixTest, AlleleCountSingleSnp) {
  GenotypeMatrix m(5, 3);
  m.set(0, 1, true);
  m.set(2, 1, true);
  m.set(4, 1, true);
  EXPECT_EQ(m.allele_count(1), 3u);
  EXPECT_EQ(m.allele_count(0), 0u);
}

TEST(GenotypeMatrixTest, AlleleCountsMatchPerSnpCounts) {
  common::Rng rng(5);
  GenotypeMatrix m(50, 37);
  for (std::size_t n = 0; n < 50; ++n) {
    for (std::size_t l = 0; l < 37; ++l) {
      if (rng.bernoulli(0.3)) m.set(n, l, true);
    }
  }
  const auto counts = m.allele_counts();
  ASSERT_EQ(counts.size(), 37u);
  for (std::size_t l = 0; l < 37; ++l) {
    EXPECT_EQ(counts[l], m.allele_count(l)) << "snp " << l;
  }
}

TEST(GenotypeMatrixTest, SubsetAlleleCounts) {
  common::Rng rng(6);
  GenotypeMatrix m(30, 20);
  for (std::size_t n = 0; n < 30; ++n) {
    for (std::size_t l = 0; l < 20; ++l) {
      if (rng.bernoulli(0.4)) m.set(n, l, true);
    }
  }
  const std::vector<std::uint32_t> subset = {3, 7, 19};
  const auto counts = m.allele_counts(subset);
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], m.allele_count(3));
  EXPECT_EQ(counts[1], m.allele_count(7));
  EXPECT_EQ(counts[2], m.allele_count(19));
}

TEST(GenotypeMatrixTest, SliceRowsPreservesContent) {
  common::Rng rng(7);
  GenotypeMatrix m(10, 13);
  for (std::size_t n = 0; n < 10; ++n) {
    for (std::size_t l = 0; l < 13; ++l) {
      if (rng.bernoulli(0.5)) m.set(n, l, true);
    }
  }
  const GenotypeMatrix slice = m.slice_rows(3, 7);
  EXPECT_EQ(slice.num_individuals(), 4u);
  EXPECT_EQ(slice.num_snps(), 13u);
  for (std::size_t n = 0; n < 4; ++n) {
    for (std::size_t l = 0; l < 13; ++l) {
      EXPECT_EQ(slice.get(n, l), m.get(n + 3, l));
    }
  }
}

TEST(GenotypeMatrixTest, SlicesPartitionCounts) {
  common::Rng rng(8);
  GenotypeMatrix m(21, 9);
  for (std::size_t n = 0; n < 21; ++n) {
    for (std::size_t l = 0; l < 9; ++l) {
      if (rng.bernoulli(0.25)) m.set(n, l, true);
    }
  }
  const auto top = m.slice_rows(0, 10).allele_counts();
  const auto bottom = m.slice_rows(10, 21).allele_counts();
  const auto full = m.allele_counts();
  for (std::size_t l = 0; l < 9; ++l) {
    EXPECT_EQ(top[l] + bottom[l], full[l]);
  }
}

TEST(GenotypeMatrixTest, PackedStorageIsEighth) {
  GenotypeMatrix packed(100, 800);
  UnpackedGenotypeMatrix unpacked(100, 800);
  EXPECT_EQ(packed.storage_bytes(), 100u * 100u);
  EXPECT_EQ(unpacked.storage_bytes(), 100u * 800u);
}

TEST(GenotypeMatrixTest, PackedAndUnpackedAgree) {
  common::Rng rng(9);
  GenotypeMatrix packed(40, 23);
  UnpackedGenotypeMatrix unpacked(40, 23);
  for (std::size_t n = 0; n < 40; ++n) {
    for (std::size_t l = 0; l < 23; ++l) {
      const bool v = rng.bernoulli(0.5);
      packed.set(n, l, v);
      unpacked.set(n, l, v);
    }
  }
  for (std::size_t l = 0; l < 23; ++l) {
    EXPECT_EQ(packed.allele_count(l), unpacked.allele_count(l));
  }
}

TEST(GenotypeMatrixTest, NonByteAlignedWidth) {
  // 13 SNPs does not fill whole bytes; the padding bits must stay silent.
  GenotypeMatrix m(2, 13);
  for (std::size_t l = 0; l < 13; ++l) m.set(0, l, true);
  EXPECT_EQ(m.allele_counts().size(), 13u);
  for (std::size_t l = 0; l < 13; ++l) {
    EXPECT_EQ(m.allele_count(l), 1u);
    EXPECT_FALSE(m.get(1, l));
  }
}

TEST(GenotypeMatrixTest, EqualityOperator) {
  GenotypeMatrix a(3, 5);
  GenotypeMatrix b(3, 5);
  EXPECT_EQ(a, b);
  a.set(1, 2, true);
  EXPECT_NE(a, b);
  b.set(1, 2, true);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace gendpr::genome
