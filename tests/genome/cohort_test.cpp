#include "genome/cohort.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/ld.hpp"

namespace gendpr::genome {
namespace {

CohortSpec small_spec() {
  CohortSpec spec;
  spec.num_case = 500;
  spec.num_control = 500;
  spec.num_snps = 200;
  spec.seed = 42;
  return spec;
}

TEST(CohortTest, DimensionsMatchSpec) {
  const Cohort cohort = generate_cohort(small_spec());
  EXPECT_EQ(cohort.cases.num_individuals(), 500u);
  EXPECT_EQ(cohort.controls.num_individuals(), 500u);
  EXPECT_EQ(cohort.cases.num_snps(), 200u);
  EXPECT_EQ(cohort.base_maf.size(), 200u);
}

TEST(CohortTest, DeterministicForSameSeed) {
  const Cohort a = generate_cohort(small_spec());
  const Cohort b = generate_cohort(small_spec());
  EXPECT_EQ(a.cases, b.cases);
  EXPECT_EQ(a.controls, b.controls);
  EXPECT_EQ(a.associated_snps, b.associated_snps);
}

TEST(CohortTest, DifferentSeedsDiffer) {
  CohortSpec spec = small_spec();
  const Cohort a = generate_cohort(spec);
  spec.seed = 43;
  const Cohort b = generate_cohort(spec);
  EXPECT_NE(a.cases, b.cases);
}

TEST(CohortTest, MafSpectrumHasRareTail) {
  CohortSpec spec = small_spec();
  spec.num_snps = 2000;
  const Cohort cohort = generate_cohort(spec);
  std::size_t rare = 0;
  for (double p : cohort.base_maf) {
    EXPECT_GE(p, spec.maf_floor);
    EXPECT_LE(p, 0.5);
    if (p < 0.05) ++rare;
  }
  // A sizeable rare tail so the MAF phase has real work (paper Table 4
  // removes 27%-70% of SNPs at this stage).
  EXPECT_GT(rare, 2000u / 10);
  EXPECT_LT(rare, 2000u * 9 / 10);
}

TEST(CohortTest, ObservedFrequencyTracksBaseMaf) {
  CohortSpec spec = small_spec();
  spec.num_control = 4000;
  spec.ld_copy_prob = 0.0;  // isolate the frequency check from LD copying
  const Cohort cohort = generate_cohort(spec);
  const auto counts = cohort.controls.allele_counts();
  double total_abs_err = 0.0;
  for (std::size_t l = 0; l < spec.num_snps; ++l) {
    const double observed =
        static_cast<double>(counts[l]) / static_cast<double>(spec.num_control);
    total_abs_err += std::abs(observed - cohort.base_maf[l]);
  }
  EXPECT_LT(total_abs_err / static_cast<double>(spec.num_snps), 0.02);
}

TEST(CohortTest, AdjacentSnpsWithinBlockAreCorrelated) {
  CohortSpec spec = small_spec();
  spec.num_control = 3000;
  spec.ld_block_size = 4;
  spec.ld_copy_prob = 0.6;
  const Cohort cohort = generate_cohort(spec);
  // Average r^2 of within-block adjacent pairs must clearly exceed the
  // across-block baseline.
  double within = 0.0;
  int n_within = 0;
  double across = 0.0;
  int n_across = 0;
  for (std::uint32_t l = 0; l + 1 < spec.num_snps; ++l) {
    const auto m = stats::compute_ld_moments(cohort.controls, l, l + 1);
    const double r2 = stats::ld_r2(m);
    if ((l + 1) % spec.ld_block_size != 0) {
      within += r2;
      ++n_within;
    } else {
      across += r2;
      ++n_across;
    }
  }
  within /= n_within;
  across /= n_across;
  EXPECT_GT(within, 5.0 * across);
  EXPECT_GT(within, 0.1);
}

TEST(CohortTest, AssociatedSnpsShiftCaseFrequency) {
  CohortSpec spec = small_spec();
  spec.num_case = 5000;
  spec.num_control = 5000;
  spec.associated_fraction = 0.1;
  spec.effect_odds = 2.0;
  spec.ld_copy_prob = 0.0;
  const Cohort cohort = generate_cohort(spec);
  ASSERT_FALSE(cohort.associated_snps.empty());
  const auto case_counts = cohort.cases.allele_counts();
  const auto control_counts = cohort.controls.allele_counts();
  double mean_shift = 0.0;
  for (std::uint32_t l : cohort.associated_snps) {
    const double case_freq =
        static_cast<double>(case_counts[l]) / static_cast<double>(spec.num_case);
    const double control_freq = static_cast<double>(control_counts[l]) /
                                static_cast<double>(spec.num_control);
    mean_shift += case_freq - control_freq;
  }
  mean_shift /= static_cast<double>(cohort.associated_snps.size());
  EXPECT_GT(mean_shift, 0.01);
}

TEST(CohortTest, AssociatedFractionRespected) {
  CohortSpec spec = small_spec();
  spec.associated_fraction = 0.05;
  const Cohort cohort = generate_cohort(spec);
  EXPECT_EQ(cohort.associated_snps.size(), 10u);  // 5% of 200
}

TEST(CohortTest, ZeroSnpsRejected) {
  CohortSpec spec = small_spec();
  spec.num_snps = 0;
  EXPECT_THROW(generate_cohort(spec), std::invalid_argument);
}

TEST(EqualPartitionTest, EvenSplit) {
  const auto parts = equal_partition(100, 4);
  ASSERT_EQ(parts.size(), 4u);
  for (const auto& [begin, end] : parts) EXPECT_EQ(end - begin, 25u);
  EXPECT_EQ(parts.front().first, 0u);
  EXPECT_EQ(parts.back().second, 100u);
}

TEST(EqualPartitionTest, UnevenSplitDistributesRemainder) {
  const auto parts = equal_partition(10, 3);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].second - parts[0].first, 4u);
  EXPECT_EQ(parts[1].second - parts[1].first, 3u);
  EXPECT_EQ(parts[2].second - parts[2].first, 3u);
  // Contiguous cover.
  EXPECT_EQ(parts[0].second, parts[1].first);
  EXPECT_EQ(parts[1].second, parts[2].first);
}

TEST(EqualPartitionTest, MorePartsThanItems) {
  const auto parts = equal_partition(2, 5);
  ASSERT_EQ(parts.size(), 5u);
  std::size_t total = 0;
  for (const auto& [begin, end] : parts) total += end - begin;
  EXPECT_EQ(total, 2u);
}

TEST(EqualPartitionTest, ZeroPartsRejected) {
  EXPECT_THROW(equal_partition(10, 0), std::invalid_argument);
}

// Property sweep: partition always covers [0, total) contiguously.
class PartitionSweepTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(PartitionSweepTest, CoversRange) {
  const auto [total, parts_count] = GetParam();
  const auto parts = equal_partition(total, parts_count);
  ASSERT_EQ(parts.size(), parts_count);
  std::size_t cursor = 0;
  for (const auto& [begin, end] : parts) {
    EXPECT_EQ(begin, cursor);
    EXPECT_LE(begin, end);
    cursor = end;
  }
  EXPECT_EQ(cursor, total);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionSweepTest,
    ::testing::Values(std::make_pair(14860u, 2u), std::make_pair(14860u, 3u),
                      std::make_pair(14860u, 5u), std::make_pair(14860u, 7u),
                      std::make_pair(7430u, 7u), std::make_pair(1u, 1u),
                      std::make_pair(0u, 3u)));

}  // namespace
}  // namespace gendpr::genome
