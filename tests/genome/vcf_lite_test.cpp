#include "genome/vcf_lite.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.hpp"
#include "genome/cohort.hpp"

namespace gendpr::genome {
namespace {

VcfLite sample_vcf() {
  VcfLite vcf;
  vcf.snp_ids = {"rs1", "rs2", "rs3"};
  vcf.genotypes = GenotypeMatrix(2, 3);
  vcf.genotypes.set(0, 0, true);
  vcf.genotypes.set(1, 2, true);
  return vcf;
}

TEST(VcfLiteTest, WriteProducesExpectedText) {
  const std::string text = write_vcf_lite(sample_vcf());
  EXPECT_EQ(text,
            "##gendpr-vcf-lite v1\n"
            "##individuals=2\n"
            "##snps=3\n"
            "#ids rs1 rs2 rs3\n"
            "100\n"
            "001\n");
}

TEST(VcfLiteTest, RoundTrip) {
  const VcfLite original = sample_vcf();
  const auto parsed = read_vcf_lite(write_vcf_lite(original));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().snp_ids, original.snp_ids);
  EXPECT_EQ(parsed.value().genotypes, original.genotypes);
}

TEST(VcfLiteTest, RoundTripLargeRandomMatrix) {
  common::Rng rng(3);
  VcfLite vcf;
  vcf.genotypes = GenotypeMatrix(100, 57);
  for (std::size_t l = 0; l < 57; ++l) {
    vcf.snp_ids.push_back("rs" + std::to_string(l));
  }
  for (std::size_t n = 0; n < 100; ++n) {
    for (std::size_t l = 0; l < 57; ++l) {
      if (rng.bernoulli(0.3)) vcf.genotypes.set(n, l, true);
    }
  }
  const auto parsed = read_vcf_lite(write_vcf_lite(vcf));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().genotypes, vcf.genotypes);
}

TEST(VcfLiteTest, RejectsMissingMagic) {
  EXPECT_FALSE(read_vcf_lite("not a vcf\n").ok());
}

TEST(VcfLiteTest, RejectsBadCounts) {
  EXPECT_FALSE(read_vcf_lite("##gendpr-vcf-lite v1\n##individuals=x\n").ok());
}

TEST(VcfLiteTest, RejectsIdCountMismatch) {
  const std::string text =
      "##gendpr-vcf-lite v1\n##individuals=1\n##snps=3\n#ids rs1 rs2\n000\n";
  EXPECT_FALSE(read_vcf_lite(text).ok());
}

TEST(VcfLiteTest, RejectsWrongLineLength) {
  const std::string text =
      "##gendpr-vcf-lite v1\n##individuals=1\n##snps=3\n#ids a b c\n0000\n";
  EXPECT_FALSE(read_vcf_lite(text).ok());
}

TEST(VcfLiteTest, RejectsNonBinaryGenotype) {
  const std::string text =
      "##gendpr-vcf-lite v1\n##individuals=1\n##snps=3\n#ids a b c\n012\n";
  EXPECT_FALSE(read_vcf_lite(text).ok());
}

TEST(VcfLiteTest, RejectsMissingGenotypeLines) {
  const std::string text =
      "##gendpr-vcf-lite v1\n##individuals=2\n##snps=2\n#ids a b\n00\n";
  EXPECT_FALSE(read_vcf_lite(text).ok());
}

TEST(VcfLiteTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/vcf_lite_test.vcf";
  const VcfLite vcf = sample_vcf();
  ASSERT_TRUE(write_vcf_lite_file(path, vcf).ok());
  const auto parsed = read_vcf_lite_file(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().genotypes, vcf.genotypes);
  std::remove(path.c_str());
}

TEST(VcfLiteTest, MissingFileFails) {
  const auto result = read_vcf_lite_file("/nonexistent/path.vcf");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, common::Errc::io_error);
}

TEST(DatasetManifestTest, SignVerifyRoundTrip) {
  const std::string text = write_vcf_lite(sample_vcf());
  const common::Bytes key = common::to_bytes("gdo-3 signing key");
  const DatasetManifest manifest = sign_dataset("amd-study", text, key);
  EXPECT_EQ(manifest.num_individuals, 2u);
  EXPECT_EQ(manifest.num_snps, 3u);
  EXPECT_TRUE(verify_dataset(manifest, text, key).ok());
}

TEST(DatasetManifestTest, TamperedContentRejected) {
  std::string text = write_vcf_lite(sample_vcf());
  const common::Bytes key = common::to_bytes("key");
  const DatasetManifest manifest = sign_dataset("study", text, key);
  // Flip one genotype character: simulates a GDO tampering with its data.
  text[text.size() - 2] = text[text.size() - 2] == '0' ? '1' : '0';
  const auto status = verify_dataset(manifest, text, key);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, common::Errc::attestation_rejected);
}

TEST(DatasetManifestTest, WrongKeyRejected) {
  const std::string text = write_vcf_lite(sample_vcf());
  const DatasetManifest manifest =
      sign_dataset("study", text, common::to_bytes("key-a"));
  EXPECT_FALSE(verify_dataset(manifest, text, common::to_bytes("key-b")).ok());
}

TEST(DatasetManifestTest, TamperedMetadataRejected) {
  const std::string text = write_vcf_lite(sample_vcf());
  const common::Bytes key = common::to_bytes("key");
  DatasetManifest manifest = sign_dataset("study", text, key);
  manifest.dataset_name = "different-study";
  EXPECT_FALSE(verify_dataset(manifest, text, key).ok());
}

}  // namespace
}  // namespace gendpr::genome
