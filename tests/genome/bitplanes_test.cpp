#include "genome/bitplanes.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "stats/ld.hpp"
#include "stats/lr_test.hpp"

namespace gendpr::genome {
namespace {

GenotypeMatrix random_matrix(common::Rng& rng, std::size_t n, std::size_t l,
                             double density) {
  GenotypeMatrix m(n, l);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < l; ++j) {
      if (rng.bernoulli(density)) m.set(i, j, true);
    }
  }
  return m;
}

/// Population sizes around the 64-bit word boundary, plus degenerate ones:
/// the tail-word masking has to hold at every alignment.
const std::size_t kPopulationSizes[] = {0, 1, 7, 63, 64, 65, 128, 200};

TEST(BitPlanesTest, GetMatchesMatrix) {
  common::Rng rng(11);
  for (std::size_t n : kPopulationSizes) {
    const GenotypeMatrix m = random_matrix(rng, n, 17, 0.4);
    const BitPlanes planes(m);
    EXPECT_EQ(planes.num_individuals(), n);
    EXPECT_EQ(planes.num_snps(), 17u);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t l = 0; l < 17; ++l) {
        EXPECT_EQ(planes.get(i, l), m.get(i, l)) << "n=" << n << " i=" << i
                                                 << " l=" << l;
      }
    }
  }
}

TEST(BitPlanesTest, AlleleCountsBitIdenticalToScalar) {
  common::Rng rng(12);
  for (std::size_t n : kPopulationSizes) {
    const GenotypeMatrix m = random_matrix(rng, n, 33, 0.3);
    const BitPlanes planes(m);
    EXPECT_EQ(planes.allele_counts(), m.allele_counts()) << "n=" << n;
    for (std::size_t l = 0; l < 33; ++l) {
      EXPECT_EQ(planes.allele_count(l), m.allele_count(l));
    }
  }
}

TEST(BitPlanesTest, SubsetAlleleCountsBitIdenticalToScalar) {
  common::Rng rng(13);
  const GenotypeMatrix m = random_matrix(rng, 130, 40, 0.25);
  const BitPlanes planes(m);
  const std::vector<std::uint32_t> subset = {0, 5, 39, 17, 5};
  EXPECT_EQ(planes.allele_counts(subset), m.allele_counts(subset));
  EXPECT_EQ(planes.allele_counts(std::vector<std::uint32_t>{}),
            m.allele_counts(std::vector<std::uint32_t>{}));
}

TEST(BitPlanesTest, TailWordBitsStaySilent) {
  // 65 individuals, all carriers: the second word of each plane holds exactly
  // one live bit; anything more would corrupt every popcount-based kernel.
  GenotypeMatrix m(65, 3);
  for (std::size_t i = 0; i < 65; ++i) {
    for (std::size_t l = 0; l < 3; ++l) m.set(i, l, true);
  }
  const BitPlanes planes(m);
  ASSERT_EQ(planes.words_per_plane(), 2u);
  for (std::size_t l = 0; l < 3; ++l) {
    EXPECT_EQ(planes.allele_count(l), 65u);
    EXPECT_EQ(planes.plane(l)[1], 1ull);
  }
}

TEST(BitPlanesTest, PairCountMatchesBruteForce) {
  common::Rng rng(14);
  for (std::size_t n : kPopulationSizes) {
    const GenotypeMatrix m = random_matrix(rng, n, 9, 0.5);
    const BitPlanes planes(m);
    for (std::size_t a = 0; a < 9; ++a) {
      for (std::size_t b = 0; b < 9; ++b) {
        std::uint32_t expected = 0;
        for (std::size_t i = 0; i < n; ++i) {
          if (m.get(i, a) && m.get(i, b)) ++expected;
        }
        EXPECT_EQ(planes.pair_count(a, b), expected)
            << "n=" << n << " pair (" << a << "," << b << ")";
      }
    }
  }
}

TEST(BitPlanesTest, LdMomentsBitIdenticalToScalar) {
  common::Rng rng(15);
  for (std::size_t n : kPopulationSizes) {
    const GenotypeMatrix m = random_matrix(rng, n, 12, 0.35);
    const BitPlanes planes(m);
    for (std::uint32_t a = 0; a + 1 < 12; ++a) {
      const stats::LdMoments scalar = stats::compute_ld_moments(m, a, a + 1);
      const stats::LdMoments plane =
          stats::compute_ld_moments(planes, a, a + 1);
      EXPECT_EQ(scalar.n, plane.n);
      // Sums of 0/1 are exact in double, so equality must be exact too.
      EXPECT_EQ(scalar.mu_x, plane.mu_x) << "n=" << n << " a=" << a;
      EXPECT_EQ(scalar.mu_y, plane.mu_y);
      EXPECT_EQ(scalar.mu_xy, plane.mu_xy);
      EXPECT_EQ(scalar.mu_x2, plane.mu_x2);
      EXPECT_EQ(scalar.mu_y2, plane.mu_y2);
    }
  }
}

TEST(BitPlanesTest, LrMatrixBitIdenticalToScalar) {
  common::Rng rng(16);
  for (std::size_t n : kPopulationSizes) {
    const GenotypeMatrix m = random_matrix(rng, n, 20, 0.3);
    const BitPlanes planes(m);
    std::vector<std::uint32_t> snps = {2, 19, 0, 7, 13};
    std::vector<double> case_freq(snps.size()), ref_freq(snps.size());
    for (std::size_t i = 0; i < snps.size(); ++i) {
      case_freq[i] = rng.uniform();
      ref_freq[i] = rng.uniform();
    }
    const stats::LrWeights weights = stats::lr_weights(case_freq, ref_freq);
    EXPECT_EQ(stats::build_lr_matrix(planes, snps, weights),
              stats::build_lr_matrix(m, snps, weights))
        << "n=" << n;
  }
}

TEST(BitPlanesTest, LrMatrixWithWeightColumnMapping) {
  common::Rng rng(17);
  const GenotypeMatrix m = random_matrix(rng, 77, 10, 0.4);
  const BitPlanes planes(m);
  const std::vector<std::uint32_t> snps = {4, 8, 1};
  const std::vector<std::uint32_t> weight_cols = {2, 0, 3};
  std::vector<double> case_freq(4), ref_freq(4);
  for (std::size_t i = 0; i < 4; ++i) {
    case_freq[i] = rng.uniform();
    ref_freq[i] = rng.uniform();
  }
  const stats::LrWeights weights = stats::lr_weights(case_freq, ref_freq);
  EXPECT_EQ(stats::build_lr_matrix(planes, snps, weights, weight_cols),
            stats::build_lr_matrix(m, snps, weights, weight_cols));
}

TEST(BitPlanesTest, EmptyAndDegenerateInputs) {
  const GenotypeMatrix empty_rows(0, 6);
  const BitPlanes planes(empty_rows);
  EXPECT_EQ(planes.words_per_plane(), 0u);
  EXPECT_EQ(planes.allele_counts(), std::vector<std::uint32_t>(6, 0));
  EXPECT_EQ(planes.pair_count(0, 5), 0u);
  const stats::LdMoments moments = stats::compute_ld_moments(planes, 0, 1);
  EXPECT_EQ(moments.n, 0u);
  EXPECT_EQ(moments.mu_xy, 0.0);

  const GenotypeMatrix no_snps(5, 0);
  const BitPlanes empty_planes(no_snps);
  EXPECT_TRUE(empty_planes.allele_counts().empty());

  const BitPlanes default_planes;
  EXPECT_EQ(default_planes.num_individuals(), 0u);
  EXPECT_EQ(default_planes.num_snps(), 0u);
}

TEST(BitPlanesTest, StorageMatchesPackedMatrixScale) {
  // The transpose costs about as much memory as the packed matrix itself
  // (both are one bit per genotype, modulo tail padding + the count cache
  // and its tile-total prefix array).
  const GenotypeMatrix m(1000, 500);
  const BitPlanes planes(m);
  EXPECT_EQ(planes.storage_bytes(),
            500u * ((1000u + 63u) / 64u) * 8u + 500u * 4u + 501u * 8u);
}

}  // namespace
}  // namespace gendpr::genome
