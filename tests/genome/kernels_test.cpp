// Portable-vs-SIMD kernel equivalence: every compiled-and-supported backend
// must agree bit for bit with the portable reference on randomized planes,
// tail words, and degenerate all-zero/all-one inputs. Skipping unavailable
// backends (non-x86 hosts, old CPUs) keeps the suite green everywhere.
#include "genome/kernels/kernels.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace gendpr::genome::kernels {
namespace {

std::vector<KernelBackend> available_simd_backends() {
  std::vector<KernelBackend> backends;
  for (KernelBackend backend : {KernelBackend::avx2, KernelBackend::avx512}) {
    if (kernel_backend_available(backend)) backends.push_back(backend);
  }
  return backends;
}

std::vector<std::uint64_t> random_words(common::Rng& rng, std::size_t n) {
  std::vector<std::uint64_t> words(n);
  for (auto& w : words) w = rng.next();
  return words;
}

TEST(KernelsTest, BackendNamesAreStable) {
  EXPECT_STREQ(kernel_backend_name(KernelBackend::portable), "portable");
  EXPECT_STREQ(kernel_backend_name(KernelBackend::avx2), "avx2");
  EXPECT_STREQ(kernel_backend_name(KernelBackend::avx512), "avx512");
}

TEST(KernelsTest, PortableAlwaysAvailable) {
  EXPECT_TRUE(kernel_backend_available(KernelBackend::portable));
  // The active backend must itself be available.
  EXPECT_TRUE(kernel_backend_available(active_kernel_backend()));
}

TEST(KernelsTest, UnavailableBackendResolvesToPortable) {
  for (KernelBackend backend : {KernelBackend::avx2, KernelBackend::avx512}) {
    if (!kernel_backend_available(backend)) {
      EXPECT_EQ(&kernel_ops_for(backend),
                &kernel_ops_for(KernelBackend::portable));
    }
  }
}

TEST(KernelsTest, PopcountMatchesPortableOnRandomWords) {
  common::Rng rng(0x1ee7);
  const KernelOps& portable = kernel_ops_for(KernelBackend::portable);
  for (KernelBackend backend : available_simd_backends()) {
    const KernelOps& ops = kernel_ops_for(backend);
    // Sweep sizes across the vector-width boundaries and the Harley-Seal
    // 64-word block: 0, tails, exact blocks, blocks + tails.
    for (std::size_t n :
         {0u, 1u, 3u, 4u, 7u, 8u, 15u, 16u, 63u, 64u, 65u, 127u, 1000u}) {
      const auto words = random_words(rng, n);
      EXPECT_EQ(ops.popcount_words(words.data(), n),
                portable.popcount_words(words.data(), n))
          << kernel_backend_name(backend) << " n=" << n;
    }
  }
}

TEST(KernelsTest, AndPopcountMatchesPortableOnRandomWords) {
  common::Rng rng(424242);
  const KernelOps& portable = kernel_ops_for(KernelBackend::portable);
  for (KernelBackend backend : available_simd_backends()) {
    const KernelOps& ops = kernel_ops_for(backend);
    for (std::size_t n :
         {0u, 1u, 3u, 4u, 7u, 8u, 15u, 16u, 63u, 64u, 65u, 127u, 1000u}) {
      const auto a = random_words(rng, n);
      const auto b = random_words(rng, n);
      EXPECT_EQ(ops.and_popcount_words(a.data(), b.data(), n),
                portable.and_popcount_words(a.data(), b.data(), n))
          << kernel_backend_name(backend) << " n=" << n;
    }
  }
}

TEST(KernelsTest, PopcountDegenerateAllZeroAllOne) {
  for (KernelBackend backend : available_simd_backends()) {
    const KernelOps& ops = kernel_ops_for(backend);
    for (std::size_t n : {1u, 64u, 65u, 129u}) {
      const std::vector<std::uint64_t> zeros(n, 0);
      const std::vector<std::uint64_t> ones(n, ~0ull);
      EXPECT_EQ(ops.popcount_words(zeros.data(), n), 0u);
      EXPECT_EQ(ops.popcount_words(ones.data(), n), n * 64);
      EXPECT_EQ(ops.and_popcount_words(zeros.data(), ones.data(), n), 0u);
      EXPECT_EQ(ops.and_popcount_words(ones.data(), ones.data(), n), n * 64);
    }
  }
}

TEST(KernelsTest, SelectWeightsMatchesPortable) {
  common::Rng rng(7);
  const KernelOps& portable = kernel_ops_for(KernelBackend::portable);
  for (KernelBackend backend : available_simd_backends()) {
    const KernelOps& ops = kernel_ops_for(backend);
    for (std::size_t n : {0u, 1u, 3u, 4u, 5u, 7u, 8u, 9u, 31u, 257u}) {
      std::vector<std::uint8_t> indicator(n);
      std::vector<double> minor(n), major(n);
      for (std::size_t i = 0; i < n; ++i) {
        indicator[i] = static_cast<std::uint8_t>(rng.next() & 1);
        minor[i] = static_cast<double>(rng.next() % 1000) / 7.0;
        major[i] = -static_cast<double>(rng.next() % 1000) / 11.0;
      }
      std::vector<double> expected(n), got(n, 1e300);
      portable.select_weights(indicator.data(), minor.data(), major.data(), n,
                              expected.data());
      ops.select_weights(indicator.data(), minor.data(), major.data(), n,
                         got.data());
      for (std::size_t i = 0; i < n; ++i) {
        // Bit-identity, not tolerance: a select must copy the exact double.
        std::uint64_t e_bits, g_bits;
        std::memcpy(&e_bits, &expected[i], 8);
        std::memcpy(&g_bits, &got[i], 8);
        EXPECT_EQ(g_bits, e_bits)
            << kernel_backend_name(backend) << " n=" << n << " i=" << i;
      }
    }
  }
}

}  // namespace
}  // namespace gendpr::genome::kernels
