#include "stats/dp.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gendpr::stats {
namespace {

TEST(LaplaceNoiseTest, MeanNearZero) {
  common::Rng rng(1);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += laplace_noise(rng, 2.0);
  EXPECT_NEAR(sum / n, 0.0, 0.05);
}

TEST(LaplaceNoiseTest, VarianceMatchesScale) {
  common::Rng rng(2);
  const double scale = 1.5;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = laplace_noise(rng, scale);
    sum_sq += x * x;
  }
  // Var(Laplace(0, b)) = 2 b^2.
  EXPECT_NEAR(sum_sq / n, 2.0 * scale * scale, 0.1);
}

TEST(LaplaceNoiseTest, InvalidScaleThrows) {
  common::Rng rng(3);
  EXPECT_THROW(laplace_noise(rng, 0.0), std::invalid_argument);
  EXPECT_THROW(laplace_noise(rng, -1.0), std::invalid_argument);
}

TEST(DpPerturbTest, OutputSizeMatches) {
  common::Rng rng(4);
  const std::vector<std::uint32_t> counts = {10, 20, 30};
  const auto noisy = dp_perturb_counts(counts, 1.0, 1.0, rng);
  EXPECT_EQ(noisy.size(), 3u);
}

TEST(DpPerturbTest, NoiseMagnitudeScalesWithEpsilon) {
  common::Rng rng(5);
  const std::vector<std::uint32_t> counts(5000, 100);
  const auto loose = dp_perturb_counts(counts, 0.1, 1.0, rng);
  const auto tight = dp_perturb_counts(counts, 10.0, 1.0, rng);
  double loose_err = 0.0;
  double tight_err = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    loose_err += std::abs(loose[i] - 100.0);
    tight_err += std::abs(tight[i] - 100.0);
  }
  loose_err /= static_cast<double>(counts.size());
  tight_err /= static_cast<double>(counts.size());
  // Expected |noise| = 1/epsilon: 10 vs 0.1.
  EXPECT_NEAR(loose_err, 10.0, 1.5);
  EXPECT_NEAR(tight_err, 0.1, 0.02);
  EXPECT_GT(loose_err, 20.0 * tight_err);
}

TEST(DpPerturbTest, InvalidEpsilonThrows) {
  common::Rng rng(6);
  EXPECT_THROW(dp_perturb_counts({1}, 0.0, 1.0, rng), std::invalid_argument);
}

TEST(DpPerturbTest, EmptyInput) {
  common::Rng rng(7);
  EXPECT_TRUE(dp_perturb_counts({}, 1.0, 1.0, rng).empty());
}

TEST(ExpectedErrorTest, Formula) {
  EXPECT_DOUBLE_EQ(expected_absolute_error(1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(expected_absolute_error(0.5, 2.0), 4.0);
  EXPECT_THROW(expected_absolute_error(0.0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace gendpr::stats
