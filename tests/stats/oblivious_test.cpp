#include "stats/oblivious.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.hpp"

namespace gendpr::stats {
namespace {

TEST(ObliviousSelectTest, SelectsByMask) {
  EXPECT_DOUBLE_EQ(oblivious_select(1, 3.5, -2.0), 3.5);
  EXPECT_DOUBLE_EQ(oblivious_select(0, 3.5, -2.0), -2.0);
}

TEST(ObliviousSelectTest, PreservesSpecialValues) {
  EXPECT_DOUBLE_EQ(oblivious_select(1, -0.0, 1.0), -0.0);
  EXPECT_TRUE(std::isinf(oblivious_select(0, 1.0,
                                          std::numeric_limits<double>::infinity())));
  EXPECT_TRUE(std::isnan(oblivious_select(1, std::nan(""), 0.0)));
}

TEST(ObliviousSortTest, EmptyAndSingleton) {
  std::vector<double> empty;
  oblivious_sort(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<double> one = {5.0};
  oblivious_sort(one);
  EXPECT_EQ(one, (std::vector<double>{5.0}));
}

TEST(ObliviousSortTest, SortsKnownSequence) {
  std::vector<double> data = {3.0, 1.0, 4.0, 1.5, 9.0, 2.6, 5.0};
  oblivious_sort(data);
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
  EXPECT_DOUBLE_EQ(data.front(), 1.0);
  EXPECT_DOUBLE_EQ(data.back(), 9.0);
}

class ObliviousSortSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ObliviousSortSweep, MatchesStdSort) {
  common::Rng rng(GetParam() * 31 + 1);
  std::vector<double> data(GetParam());
  for (auto& v : data) v = rng.normal();
  std::vector<double> expected = data;
  std::sort(expected.begin(), expected.end());
  oblivious_sort(data);
  EXPECT_EQ(data, expected);
}

// Non-powers of two exercise the +inf padding path.
INSTANTIATE_TEST_SUITE_P(Sizes, ObliviousSortSweep,
                         ::testing::Values(2, 3, 7, 8, 9, 100, 255, 256, 257,
                                           1000));

TEST(ObliviousLrMatrixTest, MatchesRegularBuilder) {
  common::Rng rng(7);
  genome::GenotypeMatrix genotypes(60, 25);
  for (std::size_t n = 0; n < 60; ++n) {
    for (std::size_t l = 0; l < 25; ++l) {
      if (rng.bernoulli(0.35)) genotypes.set(n, l, true);
    }
  }
  std::vector<std::uint32_t> snps = {0, 3, 9, 24};
  std::vector<double> case_freq = {0.4, 0.3, 0.2, 0.5};
  std::vector<double> ref_freq = {0.3, 0.3, 0.3, 0.3};
  const LrWeights weights = lr_weights(case_freq, ref_freq);
  const LrMatrix regular = build_lr_matrix(genotypes, snps, weights);
  const LrMatrix oblivious =
      oblivious_build_lr_matrix(genotypes, snps, weights);
  ASSERT_EQ(regular.rows(), oblivious.rows());
  ASSERT_EQ(regular.cols(), oblivious.cols());
  for (std::size_t r = 0; r < regular.rows(); ++r) {
    for (std::size_t c = 0; c < regular.cols(); ++c) {
      EXPECT_DOUBLE_EQ(regular.at(r, c), oblivious.at(r, c))
          << "cell (" << r << "," << c << ")";
    }
  }
}

TEST(ObliviousPowerTest, MatchesRegularDetectionPower) {
  common::Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> case_scores(200 + rng.uniform_int(200));
    std::vector<double> ref_scores(200 + rng.uniform_int(200));
    for (auto& s : case_scores) s = rng.normal() + 0.5;
    for (auto& s : ref_scores) s = rng.normal();
    for (double fpr : {0.05, 0.1, 0.25}) {
      double t_regular = 0.0;
      double t_oblivious = 0.0;
      const double p_regular =
          detection_power(case_scores, ref_scores, fpr, &t_regular);
      const double p_oblivious = oblivious_detection_power(
          case_scores, ref_scores, fpr, &t_oblivious);
      EXPECT_DOUBLE_EQ(p_regular, p_oblivious);
      EXPECT_DOUBLE_EQ(t_regular, t_oblivious);
    }
  }
}

TEST(ObliviousPowerTest, EmptyInputs) {
  EXPECT_DOUBLE_EQ(oblivious_detection_power({}, {1.0}, 0.1, nullptr), 0.0);
  EXPECT_DOUBLE_EQ(oblivious_detection_power({1.0}, {}, 0.1, nullptr), 0.0);
}

}  // namespace
}  // namespace gendpr::stats
