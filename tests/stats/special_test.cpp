#include "stats/special.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gendpr::stats {
namespace {

TEST(GammaTest, PAtZeroIsZero) {
  EXPECT_DOUBLE_EQ(regularized_gamma_p(2.5, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(regularized_gamma_q(2.5, 0.0), 1.0);
}

TEST(GammaTest, ExponentialSpecialCase) {
  // P(1, x) = 1 - exp(-x).
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    EXPECT_NEAR(regularized_gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
}

TEST(GammaTest, HalfIntegerMatchesErf) {
  // P(1/2, x) = erf(sqrt(x)).
  for (double x : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    EXPECT_NEAR(regularized_gamma_p(0.5, x), std::erf(std::sqrt(x)), 1e-12);
  }
}

TEST(GammaTest, PoissonIdentity) {
  // Q(n, x) = sum_{k<n} e^{-x} x^k / k! for integer n.
  const double x = 5.0;
  double sum = 0.0;
  double term = std::exp(-x);
  for (int k = 0; k < 5; ++k) {
    sum += term;
    term *= x / (k + 1);
  }
  EXPECT_NEAR(regularized_gamma_q(5.0, x), sum, 1e-12);
}

TEST(GammaTest, PPlusQIsOne) {
  for (double a : {0.3, 1.0, 2.5, 10.0, 50.0}) {
    for (double x : {0.01, 0.5, 1.0, 3.0, 10.0, 100.0}) {
      EXPECT_NEAR(regularized_gamma_p(a, x) + regularized_gamma_q(a, x), 1.0,
                  1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(GammaTest, MonotoneInX) {
  double prev = 0.0;
  for (double x = 0.1; x < 20.0; x += 0.1) {
    const double p = regularized_gamma_p(3.0, x);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(GammaTest, DomainErrors) {
  EXPECT_THROW(regularized_gamma_p(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(regularized_gamma_p(1.0, -1.0), std::invalid_argument);
  EXPECT_THROW(regularized_gamma_q(-2.0, 1.0), std::invalid_argument);
}

TEST(Chi2SfTest, KnownCriticalValues) {
  // Classic chi-squared critical values for 1 dof.
  EXPECT_NEAR(chi2_sf(3.841458820694124, 1.0), 0.05, 1e-10);
  EXPECT_NEAR(chi2_sf(6.634896601021213, 1.0), 0.01, 1e-10);
  EXPECT_NEAR(chi2_sf(10.827566170662733, 1.0), 0.001, 1e-10);
  // 2 dof: sf(x) = exp(-x/2).
  EXPECT_NEAR(chi2_sf(5.991464547107979, 2.0), 0.05, 1e-10);
  EXPECT_NEAR(chi2_sf(4.0, 2.0), std::exp(-2.0), 1e-12);
}

TEST(Chi2SfTest, OneDofMatchesErfc) {
  // sf(x, 1) = erfc(sqrt(x/2)).
  for (double x : {0.5, 1.0, 2.0, 10.0, 30.0}) {
    EXPECT_NEAR(chi2_sf(x, 1.0), std::erfc(std::sqrt(x / 2.0)), 1e-12);
  }
}

TEST(Chi2SfTest, EdgeBehaviour) {
  EXPECT_DOUBLE_EQ(chi2_sf(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(chi2_sf(-3.0, 1.0), 1.0);
  EXPECT_LT(chi2_sf(1000.0, 1.0), 1e-100);
  EXPECT_THROW(chi2_sf(1.0, 0.0), std::invalid_argument);
}

TEST(NormalTest, CdfKnownValues) {
  EXPECT_DOUBLE_EQ(normal_cdf(0.0), 0.5);
  EXPECT_NEAR(normal_cdf(1.959963984540054), 0.975, 1e-12);
  EXPECT_NEAR(normal_cdf(-1.959963984540054), 0.025, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-12);
}

TEST(NormalTest, QuantileInvertsCdf) {
  for (double p : {0.001, 0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-10) << "p=" << p;
  }
}

TEST(NormalTest, QuantileKnownValues) {
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(0.9), 1.2815515655446004, 1e-9);
}

TEST(NormalTest, QuantileDomain) {
  EXPECT_THROW(normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW(normal_quantile(1.0), std::invalid_argument);
  EXPECT_THROW(normal_quantile(-0.5), std::invalid_argument);
}

}  // namespace
}  // namespace gendpr::stats
