#include "stats/ld.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "stats/special.hpp"

namespace gendpr::stats {
namespace {

genome::GenotypeMatrix random_matrix(std::size_t n, std::size_t l,
                                     std::uint64_t seed, double p = 0.3) {
  common::Rng rng(seed);
  genome::GenotypeMatrix m(n, l);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < l; ++j) {
      if (rng.bernoulli(p)) m.set(i, j, true);
    }
  }
  return m;
}

TEST(LdMomentsTest, ComputedFromMatrix) {
  genome::GenotypeMatrix m(4, 2);
  m.set(0, 0, true);
  m.set(0, 1, true);
  m.set(1, 0, true);
  m.set(3, 1, true);
  const LdMoments mom = compute_ld_moments(m, 0, 1);
  EXPECT_EQ(mom.n, 4u);
  EXPECT_DOUBLE_EQ(mom.mu_x, 2.0);
  EXPECT_DOUBLE_EQ(mom.mu_y, 2.0);
  EXPECT_DOUBLE_EQ(mom.mu_xy, 1.0);
  EXPECT_DOUBLE_EQ(mom.mu_x2, 2.0);  // binary: x^2 == x
  EXPECT_DOUBLE_EQ(mom.mu_y2, 2.0);
}

TEST(LdMomentsTest, AdditivityEqualsPooledComputation) {
  // Core federated-correctness property: moments over GDO partitions sum to
  // the moments of the pooled population.
  const genome::GenotypeMatrix pooled = random_matrix(300, 5, 11);
  const LdMoments whole = compute_ld_moments(pooled, 1, 2);
  LdMoments assembled;
  const std::size_t cuts[] = {0, 100, 180, 300};
  for (int part = 0; part < 3; ++part) {
    const auto slice = pooled.slice_rows(cuts[part], cuts[part + 1]);
    assembled += compute_ld_moments(slice, 1, 2);
  }
  EXPECT_EQ(assembled.n, whole.n);
  EXPECT_DOUBLE_EQ(assembled.mu_x, whole.mu_x);
  EXPECT_DOUBLE_EQ(assembled.mu_xy, whole.mu_xy);
  EXPECT_DOUBLE_EQ(ld_r2(assembled), ld_r2(whole));
}

TEST(LdR2Test, PerfectCorrelationIsOne) {
  genome::GenotypeMatrix m(100, 2);
  common::Rng rng(13);
  for (std::size_t i = 0; i < 100; ++i) {
    const bool v = rng.bernoulli(0.4);
    m.set(i, 0, v);
    m.set(i, 1, v);
  }
  EXPECT_NEAR(ld_r2(compute_ld_moments(m, 0, 1)), 1.0, 1e-12);
}

TEST(LdR2Test, PerfectAntiCorrelationIsOne) {
  genome::GenotypeMatrix m(100, 2);
  common::Rng rng(17);
  for (std::size_t i = 0; i < 100; ++i) {
    const bool v = rng.bernoulli(0.5);
    m.set(i, 0, v);
    m.set(i, 1, !v);
  }
  EXPECT_NEAR(ld_r2(compute_ld_moments(m, 0, 1)), 1.0, 1e-12);
}

TEST(LdR2Test, IndependentColumnsNearZero) {
  const genome::GenotypeMatrix m = random_matrix(20000, 2, 19);
  EXPECT_LT(ld_r2(compute_ld_moments(m, 0, 1)), 0.001);
}

TEST(LdR2Test, ConstantColumnIsZero) {
  genome::GenotypeMatrix m(50, 2);
  for (std::size_t i = 0; i < 50; ++i) m.set(i, 0, true);  // constant 1
  common::Rng rng(23);
  for (std::size_t i = 0; i < 50; ++i) m.set(i, 1, rng.bernoulli(0.5));
  EXPECT_DOUBLE_EQ(ld_r2(compute_ld_moments(m, 0, 1)), 0.0);
}

TEST(LdR2Test, EmptyPopulationIsZero) {
  LdMoments empty;
  EXPECT_DOUBLE_EQ(ld_r2(empty), 0.0);
  EXPECT_DOUBLE_EQ(ld_p_value(empty), 1.0);
}

TEST(LdPValueTest, CorrelatedPairSignificant) {
  genome::GenotypeMatrix m(1000, 2);
  common::Rng rng(29);
  for (std::size_t i = 0; i < 1000; ++i) {
    const bool v = rng.bernoulli(0.4);
    m.set(i, 0, v);
    m.set(i, 1, rng.bernoulli(0.9) ? v : rng.bernoulli(0.4));
  }
  EXPECT_LT(ld_p_value(compute_ld_moments(m, 0, 1)), 1e-5);
}

TEST(LdPValueTest, IndependentPairNotSignificant) {
  const genome::GenotypeMatrix m = random_matrix(500, 2, 31);
  EXPECT_GT(ld_p_value(compute_ld_moments(m, 0, 1)), 1e-5);
}

TEST(GreedyLdPruneTest, AllIndependentKeepsAll) {
  const std::vector<std::uint32_t> snps = {0, 1, 2, 3};
  const std::vector<double> assoc_p(4, 0.5);
  const auto retained = greedy_ld_prune(
      snps, 1e-5, assoc_p, [](std::uint32_t, std::uint32_t) { return 0.5; });
  EXPECT_EQ(retained, snps);
}

TEST(GreedyLdPruneTest, AllDependentKeepsBestRanked) {
  const std::vector<std::uint32_t> snps = {0, 1, 2, 3};
  const std::vector<double> assoc_p = {0.5, 0.01, 0.3, 0.2};
  const auto retained = greedy_ld_prune(
      snps, 1e-5, assoc_p, [](std::uint32_t, std::uint32_t) { return 1e-9; });
  EXPECT_EQ(retained, (std::vector<std::uint32_t>{1}));
}

TEST(GreedyLdPruneTest, MixedBlocksKeepOnePerBlock) {
  // Pairs (0,1) and (2,3) dependent; pair (1,2) independent.
  const std::vector<std::uint32_t> snps = {0, 1, 2, 3};
  const std::vector<double> assoc_p = {0.1, 0.2, 0.4, 0.3};
  const auto retained = greedy_ld_prune(
      snps, 1e-5, assoc_p, [](std::uint32_t a, std::uint32_t b) {
        const bool same_block = (a / 2) == (b / 2);
        return same_block ? 1e-9 : 0.9;
      });
  // Block {0,1}: keep 0 (better p). Block {2,3}: keep 3.
  EXPECT_EQ(retained, (std::vector<std::uint32_t>{0, 3}));
}

TEST(GreedyLdPruneTest, EmptyAndSingleton) {
  const std::vector<double> assoc_p(4, 0.5);
  EXPECT_TRUE(greedy_ld_prune({}, 1e-5, assoc_p,
                              [](std::uint32_t, std::uint32_t) { return 0.5; })
                  .empty());
  const std::vector<std::uint32_t> one = {2};
  EXPECT_EQ(greedy_ld_prune(one, 1e-5, assoc_p,
                            [](std::uint32_t, std::uint32_t) { return 0.5; }),
            one);
}

}  // namespace
}  // namespace gendpr::stats
