#include "stats/attacks.hpp"

#include "stats/lr_test.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "genome/cohort.hpp"

namespace gendpr::stats {
namespace {

TEST(HomerStatisticTest, HandComputedValue) {
  // y = [1, 0], p_case = [0.8, 0.1], p_ref = [0.5, 0.5].
  // SNP0: |1-0.5| - |1-0.8| = 0.5 - 0.2 = 0.3
  // SNP1: |0-0.5| - |0-0.1| = 0.5 - 0.1 = 0.4
  const double d = homer_statistic({1, 0}, {0.8, 0.1}, {0.5, 0.5});
  EXPECT_NEAR(d, 0.7, 1e-12);
}

TEST(HomerStatisticTest, ZeroWhenFrequenciesEqual) {
  EXPECT_DOUBLE_EQ(homer_statistic({1, 0, 1}, {0.3, 0.4, 0.5},
                                   {0.3, 0.4, 0.5}),
                   0.0);
}

TEST(HomerStatisticTest, MemberLooksPositive) {
  // A genome carrying minor alleles where the case pool is enriched should
  // score positive.
  const double d = homer_statistic({1, 1}, {0.9, 0.8}, {0.2, 0.3});
  EXPECT_GT(d, 0.0);
}

TEST(HomerStatisticTest, SizeMismatchThrows) {
  EXPECT_THROW(homer_statistic({1}, {0.5, 0.5}, {0.5}),
               std::invalid_argument);
}

TEST(HomerScoresTest, MatchesPerIndividualStatistic) {
  common::Rng rng(3);
  genome::GenotypeMatrix pop(20, 10);
  for (std::size_t n = 0; n < 20; ++n) {
    for (std::size_t l = 0; l < 10; ++l) {
      if (rng.bernoulli(0.4)) pop.set(n, l, true);
    }
  }
  std::vector<std::uint32_t> released = {1, 3, 7};
  std::vector<double> case_freq = {0.5, 0.6, 0.7};
  std::vector<double> ref_freq = {0.3, 0.4, 0.5};
  const auto scores = homer_scores(pop, released, case_freq, ref_freq);
  ASSERT_EQ(scores.size(), 20u);
  for (std::size_t n = 0; n < 20; ++n) {
    std::vector<std::uint8_t> genotype;
    for (std::uint32_t l : released) {
      genotype.push_back(pop.get(n, l) ? 1 : 0);
    }
    EXPECT_NEAR(scores[n], homer_statistic(genotype, case_freq, ref_freq),
                1e-12)
        << "individual " << n;
  }
}

TEST(LrScoresTest, MatchesMatrixRowSums) {
  common::Rng rng(5);
  genome::GenotypeMatrix pop(15, 8);
  for (std::size_t n = 0; n < 15; ++n) {
    for (std::size_t l = 0; l < 8; ++l) {
      if (rng.bernoulli(0.3)) pop.set(n, l, true);
    }
  }
  std::vector<std::uint32_t> released = {0, 2, 5};
  std::vector<double> case_freq = {0.4, 0.5, 0.6};
  std::vector<double> ref_freq = {0.3, 0.3, 0.3};
  const auto scores = lr_scores(pop, released, case_freq, ref_freq);
  const LrWeights weights = lr_weights(case_freq, ref_freq);
  const LrMatrix matrix = build_lr_matrix(pop, released, weights);
  for (std::size_t n = 0; n < 15; ++n) {
    double row_sum = 0.0;
    for (std::size_t c = 0; c < 3; ++c) row_sum += matrix.at(n, c);
    EXPECT_NEAR(scores[n], row_sum, 1e-12);
  }
}

class AttackComparisonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    genome::CohortSpec spec;
    spec.num_case = 1500;
    spec.num_control = 1500;
    spec.num_snps = 400;
    spec.associated_fraction = 0.2;
    spec.effect_odds = 2.0;
    spec.ld_copy_prob = 0.0;  // independent SNPs: the LR-test's home turf
    spec.seed = 7;
    cohort_ = genome::generate_cohort(spec);
    released_.resize(cohort_.cases.num_snps());
    std::iota(released_.begin(), released_.end(), 0u);
    const auto case_counts = cohort_.cases.allele_counts();
    const auto ref_counts = cohort_.controls.allele_counts();
    for (std::size_t l = 0; l < released_.size(); ++l) {
      case_freq_.push_back(static_cast<double>(case_counts[l]) / 1500.0);
      ref_freq_.push_back(static_cast<double>(ref_counts[l]) / 1500.0);
    }
  }

  genome::Cohort cohort_;
  std::vector<std::uint32_t> released_;
  std::vector<double> case_freq_;
  std::vector<double> ref_freq_;
};

TEST_F(AttackComparisonTest, BothAttacksBeatGuessing) {
  const auto lr_case =
      lr_scores(cohort_.cases, released_, case_freq_, ref_freq_);
  const auto lr_ref =
      lr_scores(cohort_.controls, released_, case_freq_, ref_freq_);
  const auto homer_case =
      homer_scores(cohort_.cases, released_, case_freq_, ref_freq_);
  const auto homer_ref =
      homer_scores(cohort_.controls, released_, case_freq_, ref_freq_);

  const AttackPower lr_power = evaluate_attack(lr_case, lr_ref, 0.1);
  const AttackPower homer_power = evaluate_attack(homer_case, homer_ref, 0.1);
  EXPECT_GT(lr_power.power, 0.2);     // well above the 0.1 guessing floor
  EXPECT_GT(homer_power.power, 0.2);
}

TEST_F(AttackComparisonTest, LrTestAtLeastAsPowerfulAsHomer) {
  // Sankararaman et al.'s empirical result, which the paper leans on when
  // choosing the LR-test as its assessment statistic (§3.2.3).
  const auto lr_case =
      lr_scores(cohort_.cases, released_, case_freq_, ref_freq_);
  const auto lr_ref =
      lr_scores(cohort_.controls, released_, case_freq_, ref_freq_);
  const auto homer_case =
      homer_scores(cohort_.cases, released_, case_freq_, ref_freq_);
  const auto homer_ref =
      homer_scores(cohort_.controls, released_, case_freq_, ref_freq_);

  const AttackPower lr_power = evaluate_attack(lr_case, lr_ref, 0.1);
  const AttackPower homer_power = evaluate_attack(homer_case, homer_ref, 0.1);
  EXPECT_GE(lr_power.power + 0.02, homer_power.power);  // small tolerance
}

TEST(AttackEvaluationTest, NoSignalPowerEqualsFpr) {
  common::Rng rng(11);
  std::vector<double> members(4000);
  std::vector<double> nonmembers(4000);
  for (auto& s : members) s = rng.normal();
  for (auto& s : nonmembers) s = rng.normal();
  const AttackPower power = evaluate_attack(members, nonmembers, 0.1);
  EXPECT_NEAR(power.power, 0.1, 0.03);
}

}  // namespace
}  // namespace gendpr::stats
