#include "stats/association.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gendpr::stats {
namespace {

TEST(Chi2StatisticTest, NoAssociationIsZero) {
  // Identical proportions in both populations.
  const SinglewiseTable table{.case_minor = 30,
                              .case_total = 100,
                              .control_minor = 30,
                              .control_total = 100};
  EXPECT_NEAR(chi2_statistic(table), 0.0, 1e-12);
  EXPECT_NEAR(chi2_p_value(table), 1.0, 1e-12);
}

TEST(Chi2StatisticTest, HandComputedExample) {
  // 2x2 table: a=20 b=10 / c=80 d=90; n=200.
  // chi2 = 200*(20*90-10*80)^2 / (30*170*100*100) = 200*1000000/51000000.
  const SinglewiseTable table{.case_minor = 20,
                              .case_total = 100,
                              .control_minor = 10,
                              .control_total = 100};
  EXPECT_NEAR(chi2_statistic(table), 200.0 * 1000000.0 / 51000000.0, 1e-9);
}

TEST(Chi2StatisticTest, StrongAssociationLargeStatistic) {
  const SinglewiseTable table{.case_minor = 90,
                              .case_total = 100,
                              .control_minor = 10,
                              .control_total = 100};
  EXPECT_GT(chi2_statistic(table), 100.0);
  EXPECT_LT(chi2_p_value(table), 1e-8);  // "strong association" per §3.1
}

TEST(Chi2StatisticTest, DegenerateMarginsAreZero) {
  EXPECT_EQ(chi2_statistic({0, 100, 0, 100}), 0.0);      // no minor anywhere
  EXPECT_EQ(chi2_statistic({100, 100, 100, 100}), 0.0);  // all minor
  EXPECT_EQ(chi2_statistic({0, 0, 10, 100}), 0.0);       // empty case column
  EXPECT_EQ(chi2_statistic({0, 0, 0, 0}), 0.0);          // empty table
}

TEST(Chi2StatisticTest, SymmetricUnderPopulationSwap) {
  const SinglewiseTable table{.case_minor = 25,
                              .case_total = 120,
                              .control_minor = 40,
                              .control_total = 150};
  const SinglewiseTable swapped{.case_minor = 40,
                                .case_total = 150,
                                .control_minor = 25,
                                .control_total = 120};
  EXPECT_NEAR(chi2_statistic(table), chi2_statistic(swapped), 1e-12);
}

TEST(PaperChi2Test, MatchesFormula) {
  EXPECT_DOUBLE_EQ(paper_chi2(50, 40), 100.0 / 40.0);
  EXPECT_DOUBLE_EQ(paper_chi2(10, 10), 0.0);
  EXPECT_DOUBLE_EQ(paper_chi2(5, 0), 0.0);  // degenerate denominator
}

TEST(MafTest, ComputesFraction) {
  EXPECT_DOUBLE_EQ(minor_allele_frequency(25, 100), 0.25);
  EXPECT_DOUBLE_EQ(minor_allele_frequency(0, 50), 0.0);
  EXPECT_THROW(minor_allele_frequency(1, 0), std::invalid_argument);
}

TEST(MafFilterTest, KeepsAboveCutoff) {
  const std::vector<double> maf = {0.01, 0.05, 0.049, 0.25, 0.5, 0.0};
  const auto retained = maf_filter(maf, 0.05);
  EXPECT_EQ(retained, (std::vector<std::uint32_t>{1, 3, 4}));
}

TEST(MafFilterTest, EmptyInput) {
  EXPECT_TRUE(maf_filter({}, 0.05).empty());
}

TEST(MafFilterTest, AllPass) {
  const auto retained = maf_filter({0.1, 0.2, 0.3}, 0.05);
  EXPECT_EQ(retained.size(), 3u);
}

TEST(MostRankedTest, PicksSmallerPValue) {
  const std::vector<double> p = {0.5, 0.001, 0.2};
  EXPECT_EQ(most_ranked(0, 1, p), 1u);
  EXPECT_EQ(most_ranked(1, 2, p), 1u);
  EXPECT_EQ(most_ranked(0, 2, p), 2u);
}

TEST(MostRankedTest, TiesKeepFirst) {
  const std::vector<double> p = {0.3, 0.3};
  EXPECT_EQ(most_ranked(0, 1, p), 0u);
  EXPECT_EQ(most_ranked(1, 0, p), 1u);
}

}  // namespace
}  // namespace gendpr::stats
