#include "stats/contingency.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "stats/ld.hpp"

namespace gendpr::stats {
namespace {

genome::GenotypeMatrix random_matrix(std::size_t n, std::uint64_t seed,
                                     double p0 = 0.3, double p1 = 0.4) {
  common::Rng rng(seed);
  genome::GenotypeMatrix m(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    m.set(i, 0, rng.bernoulli(p0));
    m.set(i, 1, rng.bernoulli(p1));
  }
  return m;
}

TEST(PairwiseTableTest, CountsSumToPopulation) {
  const auto m = random_matrix(500, 1);
  const PairwiseTable table = pairwise_table(m, 0, 1);
  EXPECT_EQ(table.total(), 500u);
  EXPECT_EQ(table.row0() + table.row1(), 500u);
  EXPECT_EQ(table.col0() + table.col1(), 500u);
}

TEST(PairwiseTableTest, HandComputedCells) {
  genome::GenotypeMatrix m(4, 2);
  // Individuals: (0,0), (0,1), (1,0), (1,1).
  m.set(1, 1, true);
  m.set(2, 0, true);
  m.set(3, 0, true);
  m.set(3, 1, true);
  const PairwiseTable table = pairwise_table(m, 0, 1);
  EXPECT_EQ(table.c00, 1u);
  EXPECT_EQ(table.c01, 1u);
  EXPECT_EQ(table.c10, 1u);
  EXPECT_EQ(table.c11, 1u);
}

TEST(PairwiseTableTest, MarginsMatchAlleleCounts) {
  const auto m = random_matrix(300, 2);
  const PairwiseTable table = pairwise_table(m, 0, 1);
  EXPECT_EQ(table.row1(), m.allele_count(0));
  EXPECT_EQ(table.col1(), m.allele_count(1));
}

TEST(PairwiseTableTest, Additivity) {
  const auto m = random_matrix(400, 3);
  PairwiseTable whole = pairwise_table(m, 0, 1);
  PairwiseTable assembled = pairwise_table(m.slice_rows(0, 150), 0, 1);
  assembled += pairwise_table(m.slice_rows(150, 400), 0, 1);
  EXPECT_EQ(assembled.c00, whole.c00);
  EXPECT_EQ(assembled.c11, whole.c11);
  EXPECT_EQ(assembled.total(), whole.total());
}

TEST(PairwiseR2Test, PerfectCorrelationIsOne) {
  genome::GenotypeMatrix m(100, 2);
  common::Rng rng(5);
  for (std::size_t i = 0; i < 100; ++i) {
    const bool v = rng.bernoulli(0.5);
    m.set(i, 0, v);
    m.set(i, 1, v);
  }
  EXPECT_NEAR(pairwise_r2(pairwise_table(m, 0, 1)), 1.0, 1e-12);
}

TEST(PairwiseR2Test, DegenerateMarginIsZero) {
  genome::GenotypeMatrix m(50, 2);  // SNP 0 constant major
  common::Rng rng(7);
  for (std::size_t i = 0; i < 50; ++i) m.set(i, 1, rng.bernoulli(0.5));
  EXPECT_DOUBLE_EQ(pairwise_r2(pairwise_table(m, 0, 1)), 0.0);
}

// The paper's table-based r^2 must equal the moments-based r^2 GenDPR ships
// over the wire, for any binary population.
class EquivalenceSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EquivalenceSweep, TableR2EqualsMomentsR2) {
  common::Rng seed_rng(GetParam());
  const auto m = random_matrix(200 + seed_rng.uniform_int(300), GetParam(),
                               0.1 + 0.5 * seed_rng.uniform(),
                               0.1 + 0.5 * seed_rng.uniform());
  const PairwiseTable table = pairwise_table(m, 0, 1);
  const LdMoments moments = compute_ld_moments(m, 0, 1);
  EXPECT_NEAR(pairwise_r2(table), ld_r2(moments), 1e-9);
  EXPECT_NEAR(pairwise_p_value(table), ld_p_value(moments), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(PairwiseR2Test, EmptyPopulation) {
  PairwiseTable empty;
  EXPECT_DOUBLE_EQ(pairwise_r2(empty), 0.0);
  EXPECT_DOUBLE_EQ(pairwise_p_value(empty), 1.0);
}

}  // namespace
}  // namespace gendpr::stats
