#include "stats/lr_test.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace gendpr::stats {
namespace {

TEST(LrWeightsTest, KnownValues) {
  const LrWeights w = lr_weights({0.4}, {0.2});
  EXPECT_NEAR(w.when_minor[0], std::log(0.4 / 0.2), 1e-12);
  EXPECT_NEAR(w.when_major[0], std::log(0.6 / 0.8), 1e-12);
}

TEST(LrWeightsTest, EqualFrequenciesGiveZero) {
  const LrWeights w = lr_weights({0.3, 0.1}, {0.3, 0.1});
  for (double v : w.when_minor) EXPECT_DOUBLE_EQ(v, 0.0);
  for (double v : w.when_major) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(LrWeightsTest, ClampsDegenerateFrequencies) {
  const LrWeights w = lr_weights({0.0, 1.0}, {0.5, 0.5});
  for (double v : w.when_minor) EXPECT_TRUE(std::isfinite(v));
  for (double v : w.when_major) EXPECT_TRUE(std::isfinite(v));
}

TEST(LrWeightsTest, SizeMismatchThrows) {
  EXPECT_THROW(lr_weights({0.1, 0.2}, {0.1}), std::invalid_argument);
}

TEST(LrMatrixTest, BuildUsesGenotypeToPickWeight) {
  genome::GenotypeMatrix g(2, 3);
  g.set(0, 1, true);
  g.set(1, 2, true);
  const LrWeights w = lr_weights({0.4, 0.4, 0.4}, {0.2, 0.2, 0.2});
  const std::vector<std::uint32_t> snps = {0, 1, 2};
  const LrMatrix lr = build_lr_matrix(g, snps, w);
  EXPECT_EQ(lr.rows(), 2u);
  EXPECT_EQ(lr.cols(), 3u);
  EXPECT_DOUBLE_EQ(lr.at(0, 0), w.when_major[0]);
  EXPECT_DOUBLE_EQ(lr.at(0, 1), w.when_minor[1]);
  EXPECT_DOUBLE_EQ(lr.at(1, 2), w.when_minor[2]);
}

TEST(LrMatrixTest, SubsetColumnsMapThroughWeightIndex) {
  genome::GenotypeMatrix g(1, 5);
  g.set(0, 4, true);
  // Weights indexed over the subset {2, 4}.
  const LrWeights w = lr_weights({0.3, 0.5}, {0.3, 0.25});
  const std::vector<std::uint32_t> snps = {2, 4};
  const LrMatrix lr = build_lr_matrix(g, snps, w);
  EXPECT_DOUBLE_EQ(lr.at(0, 0), w.when_major[0]);
  EXPECT_DOUBLE_EQ(lr.at(0, 1), w.when_minor[1]);
}

TEST(LrMatrixTest, AppendRowsConcatenates) {
  LrMatrix a(2, 3);
  a.at(0, 0) = 1.0;
  a.at(1, 2) = 2.0;
  LrMatrix b(1, 3);
  b.at(0, 1) = 3.0;
  a.append_rows(b);
  EXPECT_EQ(a.rows(), 3u);
  EXPECT_DOUBLE_EQ(a.at(2, 1), 3.0);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 1.0);
}

TEST(LrMatrixTest, AppendToEmptyAdopts) {
  LrMatrix empty;
  LrMatrix b(2, 4);
  b.at(1, 3) = 5.0;
  empty.append_rows(b);
  EXPECT_EQ(empty.rows(), 2u);
  EXPECT_EQ(empty.cols(), 4u);
  EXPECT_DOUBLE_EQ(empty.at(1, 3), 5.0);
}

TEST(LrMatrixTest, AppendColumnMismatchThrows) {
  LrMatrix a(1, 3);
  LrMatrix b(1, 2);
  EXPECT_THROW(a.append_rows(b), std::invalid_argument);
}

genome::GenotypeMatrix random_genotypes(std::size_t individuals,
                                        std::size_t snps,
                                        std::uint64_t seed) {
  common::Rng rng(seed);
  genome::GenotypeMatrix g(individuals, snps);
  for (std::size_t n = 0; n < individuals; ++n) {
    for (std::size_t s = 0; s < snps; ++s) {
      if (rng.bernoulli(0.3)) g.set(n, s, true);
    }
  }
  return g;
}

LrWeights random_weights(std::size_t cols, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<double> case_freq(cols);
  std::vector<double> ref_freq(cols);
  for (std::size_t i = 0; i < cols; ++i) {
    case_freq[i] = rng.uniform(0.05, 0.95);
    ref_freq[i] = rng.uniform(0.05, 0.95);
  }
  return lr_weights(case_freq, ref_freq);
}

TEST(LrBasisTest, DeriveBitIdenticalToBitPlaneBuild) {
  // 130 rows spans three plane words per SNP; exercises the word tail.
  const genome::GenotypeMatrix g = random_genotypes(130, 40, 11);
  const genome::BitPlanes planes(g);
  const std::vector<std::uint32_t> snps = {0, 3, 7, 12, 25, 39};
  const LrBasis basis(planes, snps);
  EXPECT_EQ(basis.rows(), 130u);
  EXPECT_EQ(basis.cols(), snps.size());
  EXPECT_EQ(basis.storage_bytes(), 130u * snps.size());
  // The same basis serves several weight vectors; each derivation must be
  // exactly the matrix a from-scratch bit-plane build would produce.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const LrWeights w = random_weights(snps.size(), seed);
    EXPECT_EQ(basis.derive(w), build_lr_matrix(planes, snps, w));
  }
}

TEST(LrBasisTest, SubsetColumnsMapThroughWeightIndex) {
  const genome::GenotypeMatrix g = random_genotypes(70, 20, 17);
  const genome::BitPlanes planes(g);
  // Weights indexed over the full SNP range; the basis covers a subset.
  const std::vector<std::uint32_t> snps = {2, 9, 19};
  const LrWeights w = random_weights(20, 4);
  const std::vector<std::uint32_t> snp_to_weight_col = {2, 9, 19};
  const LrBasis basis(planes, snps);
  EXPECT_EQ(basis.derive(w, snp_to_weight_col),
            build_lr_matrix(planes, snps, w, snp_to_weight_col));
}

TEST(LrBasisTest, DeriveUpdateMatchesFreshDerivation) {
  const genome::GenotypeMatrix g = random_genotypes(130, 40, 23);
  const genome::BitPlanes planes(g);
  const std::vector<std::uint32_t> snps = {1, 4, 8, 13, 21, 34};
  const LrBasis basis(planes, snps);
  const LrWeights prev = random_weights(snps.size(), 5);

  // Change a strict subset of the weight pairs; only those columns may be
  // recomputed, and the result must equal a from-scratch derivation.
  LrWeights next = prev;
  next.when_minor[1] += 0.25;
  next.when_major[4] -= 0.5;
  next.when_minor[5] = 0.0;
  next.when_major[5] = 1.0;
  LrMatrix matrix = basis.derive(prev);
  EXPECT_EQ(basis.derive_update(prev, next, matrix), 3u);
  EXPECT_EQ(matrix, basis.derive(next));

  // Identical weights touch nothing; the matrix chains onward unchanged.
  EXPECT_EQ(basis.derive_update(next, next, matrix), 0u);
  EXPECT_EQ(matrix, basis.derive(next));

  // A full change degenerates to a full derivation.
  const LrWeights far = random_weights(snps.size(), 6);
  EXPECT_EQ(basis.derive_update(next, far, matrix), snps.size());
  EXPECT_EQ(matrix, basis.derive(far));
}

TEST(LrBasisTest, EmptyBasisDerivesEmptyMatrix) {
  const LrBasis empty;
  EXPECT_EQ(empty.rows(), 0u);
  EXPECT_EQ(empty.cols(), 0u);
  EXPECT_EQ(empty.storage_bytes(), 0u);
  const LrMatrix derived = empty.derive(LrWeights{});
  EXPECT_EQ(derived.rows(), 0u);
  EXPECT_EQ(derived.cols(), 0u);
}

TEST(DetectionPowerTest, SeparatedScoresFullPower) {
  // Case scores all above every reference score -> power 1 at any FPR.
  const std::vector<double> case_scores = {10.0, 11.0, 12.0};
  const std::vector<double> ref_scores = {0.0, 1.0, 2.0, 3.0, 4.0,
                                          5.0, 6.0, 7.0, 8.0, 9.0};
  double threshold = 0.0;
  const double power = detection_power(case_scores, ref_scores, 0.1,
                                       &threshold);
  EXPECT_DOUBLE_EQ(power, 1.0);
  // 90th empirical percentile: exactly one of ten reference scores exceeds
  // it, matching the 0.1 false-positive budget.
  EXPECT_DOUBLE_EQ(threshold, 8.0);
}

TEST(DetectionPowerTest, IdenticalDistributionsPowerNearFpr) {
  common::Rng rng(3);
  std::vector<double> case_scores(5000);
  std::vector<double> ref_scores(5000);
  for (auto& s : case_scores) s = rng.normal();
  for (auto& s : ref_scores) s = rng.normal();
  const double power = detection_power(case_scores, ref_scores, 0.1, nullptr);
  EXPECT_NEAR(power, 0.1, 0.02);  // no signal: power == false-positive rate
}

TEST(DetectionPowerTest, EmptyInputsGiveZero) {
  EXPECT_DOUBLE_EQ(detection_power({}, {1.0}, 0.1, nullptr), 0.0);
  EXPECT_DOUBLE_EQ(detection_power({1.0}, {}, 0.1, nullptr), 0.0);
}

TEST(DetectionPowerTest, ScratchOverloadBitIdentical) {
  common::Rng rng(5);
  std::vector<double> case_scores(777);
  std::vector<double> ref_scores(1234);
  for (auto& s : case_scores) s = rng.normal();
  for (auto& s : ref_scores) s = rng.normal();
  std::vector<double> scratch;
  for (double fpr : {0.0, 0.05, 0.1, 0.5, 0.999}) {
    double t_plain = 0.0, t_scratch = 0.0;
    const double plain =
        detection_power(case_scores, ref_scores, fpr, &t_plain);
    const double reused =
        detection_power(case_scores, ref_scores, fpr, &t_scratch, scratch);
    EXPECT_DOUBLE_EQ(plain, reused) << "fpr " << fpr;
    EXPECT_DOUBLE_EQ(t_plain, t_scratch) << "fpr " << fpr;
  }
}

TEST(DetectionPowerTest, ThresholdQuantileEdges) {
  const std::vector<double> ref = {1.0, 2.0, 3.0, 4.0};
  double threshold = 0.0;
  // FPR 0 -> threshold is the max; nothing above it.
  detection_power({10.0}, ref, 0.0, &threshold);
  EXPECT_DOUBLE_EQ(threshold, 4.0);
  // FPR ~1 -> threshold is the min.
  detection_power({10.0}, ref, 0.999, &threshold);
  EXPECT_DOUBLE_EQ(threshold, 1.0);
}

class SelectSafeSnpsTest : public ::testing::Test {
 protected:
  /// Builds LR matrices where columns [0, identifying) have a case/reference
  /// gap of `gap` and the rest are pure noise.
  static std::pair<LrMatrix, LrMatrix> synthetic(std::size_t n_case,
                                                 std::size_t n_ref,
                                                 std::size_t cols,
                                                 std::size_t identifying,
                                                 double gap,
                                                 std::uint64_t seed) {
    common::Rng rng(seed);
    LrMatrix case_lr(n_case, cols);
    LrMatrix ref_lr(n_ref, cols);
    for (std::size_t c = 0; c < cols; ++c) {
      const double shift = c < identifying ? gap : 0.0;
      for (std::size_t r = 0; r < n_case; ++r) {
        case_lr.at(r, c) = rng.normal() * 0.1 + shift;
      }
      for (std::size_t r = 0; r < n_ref; ++r) {
        ref_lr.at(r, c) = rng.normal() * 0.1;
      }
    }
    return {case_lr, ref_lr};
  }
};

TEST_F(SelectSafeSnpsTest, NoSignalKeepsEverything) {
  const auto [case_lr, ref_lr] = synthetic(400, 400, 30, 0, 0.0, 7);
  const LrSelectionResult result =
      select_safe_snps(case_lr, ref_lr, LrSelectionParams{});
  EXPECT_EQ(result.safe_columns.size(), 30u);
  EXPECT_LE(result.final_power, 0.9);
}

TEST_F(SelectSafeSnpsTest, StrongIdentifiersAreDropped) {
  const auto [case_lr, ref_lr] = synthetic(400, 400, 30, 5, 3.0, 11);
  const LrSelectionResult result =
      select_safe_snps(case_lr, ref_lr, LrSelectionParams{});
  EXPECT_LE(result.final_power, 0.9);
  // The 5 identifying columns (0..4) must not all survive.
  std::size_t surviving_identifiers = 0;
  for (std::uint32_t c : result.safe_columns) {
    if (c < 5) ++surviving_identifiers;
  }
  EXPECT_LT(surviving_identifiers, 5u);
  // The noise columns should all survive.
  std::size_t surviving_noise = 0;
  for (std::uint32_t c : result.safe_columns) {
    if (c >= 5) ++surviving_noise;
  }
  EXPECT_EQ(surviving_noise, 25u);
}

TEST_F(SelectSafeSnpsTest, PowerConstraintHolds) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const auto [case_lr, ref_lr] = synthetic(300, 300, 40, 10, 1.5, seed);
    LrSelectionParams params;
    params.power_threshold = 0.5;
    const LrSelectionResult result =
        select_safe_snps(case_lr, ref_lr, params);
    EXPECT_LE(result.final_power, 0.5) << "seed " << seed;
  }
}

TEST_F(SelectSafeSnpsTest, RowOrderInvariance) {
  // GenDPR merges GDO matrices in arbitrary order; selection must not care.
  const auto [case_lr, ref_lr] = synthetic(200, 200, 20, 4, 2.0, 13);
  LrMatrix reversed_case(case_lr.rows(), case_lr.cols());
  for (std::size_t r = 0; r < case_lr.rows(); ++r) {
    for (std::size_t c = 0; c < case_lr.cols(); ++c) {
      reversed_case.at(case_lr.rows() - 1 - r, c) = case_lr.at(r, c);
    }
  }
  const auto a = select_safe_snps(case_lr, ref_lr, LrSelectionParams{});
  const auto b = select_safe_snps(reversed_case, ref_lr, LrSelectionParams{});
  EXPECT_EQ(a.safe_columns, b.safe_columns);
  EXPECT_DOUBLE_EQ(a.final_power, b.final_power);
}

TEST_F(SelectSafeSnpsTest, PooledSelectionBitIdenticalToSerial) {
  // The pool splits the gap pass by column block and the candidate updates
  // by row chunk; both preserve the serial accumulation order per element,
  // so the selection must match exactly - the collusion tests rely on this.
  common::ThreadPool pool(4);
  for (std::uint64_t seed : {3ull, 19ull, 29ull}) {
    const auto [case_lr, ref_lr] = synthetic(500, 500, 35, 8, 1.2, seed);
    const auto serial = select_safe_snps(case_lr, ref_lr, LrSelectionParams{});
    const auto pooled =
        select_safe_snps(case_lr, ref_lr, LrSelectionParams{}, &pool);
    EXPECT_EQ(serial.safe_columns, pooled.safe_columns) << "seed " << seed;
    EXPECT_DOUBLE_EQ(serial.final_power, pooled.final_power);
    EXPECT_DOUBLE_EQ(serial.final_threshold, pooled.final_threshold);
  }
}

TEST_F(SelectSafeSnpsTest, EmptyMatrixGivesEmptyResult) {
  const LrMatrix empty;
  const auto result = select_safe_snps(empty, empty, LrSelectionParams{});
  EXPECT_TRUE(result.safe_columns.empty());
}

TEST_F(SelectSafeSnpsTest, ColumnMismatchThrows) {
  LrMatrix a(1, 2);
  LrMatrix b(1, 3);
  EXPECT_THROW(select_safe_snps(a, b, LrSelectionParams{}),
               std::invalid_argument);
}

TEST_F(SelectSafeSnpsTest, SafeColumnsAreSortedAndUnique) {
  const auto [case_lr, ref_lr] = synthetic(200, 200, 25, 6, 1.0, 17);
  const auto result = select_safe_snps(case_lr, ref_lr, LrSelectionParams{});
  EXPECT_TRUE(std::is_sorted(result.safe_columns.begin(),
                             result.safe_columns.end()));
  EXPECT_EQ(std::adjacent_find(result.safe_columns.begin(),
                               result.safe_columns.end()),
            result.safe_columns.end());
}

// Property sweep over FPR values: the final power never exceeds the limit.
class LrFprSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(LrFprSweepTest, PowerBounded) {
  common::Rng rng(23);
  LrMatrix case_lr(300, 30);
  LrMatrix ref_lr(300, 30);
  for (auto& v : case_lr.values()) v = rng.normal() * 0.2 + 0.1;
  for (auto& v : ref_lr.values()) v = rng.normal() * 0.2;
  LrSelectionParams params;
  params.false_positive_rate = GetParam();
  params.power_threshold = 0.6;
  const auto result = select_safe_snps(case_lr, ref_lr, params);
  EXPECT_LE(result.final_power, 0.6);
}

INSTANTIATE_TEST_SUITE_P(Fprs, LrFprSweepTest,
                         ::testing::Values(0.01, 0.05, 0.1, 0.2, 0.5));

}  // namespace
}  // namespace gendpr::stats
