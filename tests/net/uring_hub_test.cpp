// UringHub tests: the completion-driven hub must match EpollHub
// frame-for-frame — dial + hello identity exchange, ordered buffering of
// frames sent while a dial is in flight, peer-loss reporting on connection
// death and dial exhaustion, traffic metering — and interoperate with an
// epoll hub on the other end of the wire. Every test skips gracefully on
// kernels without io_uring.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <vector>

#include "net/epoll_hub.hpp"
#include "net/event_loop.hpp"
#include "net/uring_hub.hpp"

namespace gendpr::net {
namespace {

using namespace std::chrono_literals;

#define SKIP_WITHOUT_URING()                                 \
  do {                                                       \
    if (!UringHub::available()) {                            \
      GTEST_SKIP() << "io_uring not available on this kernel"; \
    }                                                        \
  } while (0)

common::Bytes bytes_of(std::initializer_list<std::uint8_t> values) {
  return common::Bytes(values);
}

TEST(UringHubTest, DialHelloAndFramesBothWays) {
  SKIP_WITHOUT_URING();
  EventLoop loop;
  ASSERT_TRUE(loop.valid());
  auto a = UringHub::create(loop, 1, 0);
  auto b = UringHub::create(loop, 2, 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  std::map<NodeId, std::vector<common::Bytes>> a_received;
  std::map<NodeId, std::vector<common::Bytes>> b_received;
  a.value()->set_frame_handler([&](NodeId from, common::BytesView payload) {
    a_received[from].push_back(common::Bytes(payload.begin(), payload.end()));
  });
  b.value()->set_frame_handler([&](NodeId from, common::BytesView payload) {
    b_received[from].push_back(common::Bytes(payload.begin(), payload.end()));
  });

  // Frames queued before the dial completes must arrive after the hello, in
  // send order.
  b.value()->connect_peer(1, "127.0.0.1", a.value()->port());
  ASSERT_TRUE(b.value()->send(1, bytes_of({10})).ok());
  ASSERT_TRUE(b.value()->send(1, bytes_of({11, 12})).ok());

  loop.run_until([&] { return a_received[2].size() == 2; });
  ASSERT_EQ(a_received[2].size(), 2u);
  EXPECT_EQ(a_received[2][0], bytes_of({10}));
  EXPECT_EQ(a_received[2][1], bytes_of({11, 12}));
  EXPECT_TRUE(a.value()->is_connected(2));

  // The hello identified the dialer, so the accepting side can answer.
  ASSERT_TRUE(a.value()->send(2, bytes_of({20})).ok());
  loop.run_until([&] { return b_received[1].size() == 1; });
  EXPECT_EQ(b_received[1][0], bytes_of({20}));

  // Payload bytes were metered on both hubs (hellos carry no payload).
  EXPECT_EQ(b.value()->meter().total_bytes(), 4u);
  EXPECT_EQ(a.value()->meter().total_bytes(), 4u);
  EXPECT_EQ(a.value()->meter().bytes_received_by(1), 3u);
}

TEST(UringHubTest, InteroperatesWithAnEpollHub) {
  SKIP_WITHOUT_URING();
  EventLoop loop;
  ASSERT_TRUE(loop.valid());
  auto uring = UringHub::create(loop, 1, 0);
  auto epoll = EpollHub::create(loop, 2, 0);
  ASSERT_TRUE(uring.ok());
  ASSERT_TRUE(epoll.ok());

  std::vector<common::Bytes> at_uring;
  std::vector<common::Bytes> at_epoll;
  uring.value()->set_frame_handler(
      [&](NodeId, common::BytesView payload) { at_uring.push_back(common::Bytes(payload.begin(), payload.end())); });
  epoll.value()->set_frame_handler(
      [&](NodeId, common::BytesView payload) { at_epoll.push_back(common::Bytes(payload.begin(), payload.end())); });

  // Same wire format in both directions: an epoll dialer into a uring
  // listener, answered over the same connection.
  epoll.value()->connect_peer(1, "127.0.0.1", uring.value()->port());
  ASSERT_TRUE(epoll.value()->send(1, bytes_of({1, 2, 3})).ok());
  loop.run_until([&] { return at_uring.size() == 1; });
  EXPECT_EQ(at_uring[0], bytes_of({1, 2, 3}));

  ASSERT_TRUE(uring.value()->send(2, bytes_of({4})).ok());
  loop.run_until([&] { return at_epoll.size() == 1; });
  EXPECT_EQ(at_epoll[0], bytes_of({4}));
}

TEST(UringHubTest, SendToUnknownPeerFails) {
  SKIP_WITHOUT_URING();
  EventLoop loop;
  auto hub = UringHub::create(loop, 1, 0);
  ASSERT_TRUE(hub.ok());
  const common::Status sent = hub.value()->send(9, bytes_of({1}));
  ASSERT_FALSE(sent.ok());
  EXPECT_EQ(sent.error().code, common::Errc::unknown_peer);
}

TEST(UringHubTest, PeerHubDestructionReportsLoss) {
  SKIP_WITHOUT_URING();
  EventLoop loop;
  auto a = UringHub::create(loop, 1, 0);
  auto b = UringHub::create(loop, 2, 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  std::vector<NodeId> lost;
  a.value()->set_peer_lost_handler([&](NodeId peer) { lost.push_back(peer); });
  b.value()->connect_peer(1, "127.0.0.1", a.value()->port());
  ASSERT_TRUE(b.value()->send(1, bytes_of({1})).ok());
  a.value()->set_frame_handler([](NodeId, common::BytesView) {});
  loop.run_until([&] { return a.value()->is_connected(2); });

  b.value().reset();  // the peer "machine" goes away; its dtor drains the ring
  loop.run_until([&] { return !lost.empty(); });
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(lost[0], 2u);
  EXPECT_FALSE(a.value()->is_connected(2));
  // Further sends to the dead peer fail as lost, not as never-known.
  const common::Status sent = a.value()->send(2, bytes_of({3}));
  ASSERT_FALSE(sent.ok());
  EXPECT_EQ(sent.error().code, common::Errc::unknown_peer);
  EXPECT_NE(sent.error().message.find("was lost"), std::string::npos);
}

TEST(UringHubTest, ExhaustedDialReportsPeerLost) {
  SKIP_WITHOUT_URING();
  EventLoop loop;
  auto hub = UringHub::create(loop, 1, 0);
  ASSERT_TRUE(hub.ok());
  // Find a loopback port with no listener: bind-then-close frees it.
  auto probe = UringHub::create(loop, 7, 0);
  ASSERT_TRUE(probe.ok());
  const std::uint16_t dead_port = probe.value()->port();
  probe.value().reset();

  std::vector<NodeId> lost;
  hub.value()->set_peer_lost_handler(
      [&](NodeId peer) { lost.push_back(peer); });
  UringHub::DialOptions options;
  options.max_attempts = 2;
  options.initial_backoff = 5ms;
  hub.value()->connect_peer(9, "127.0.0.1", dead_port, options);
  // Frames sent during the dial ride its fate.
  ASSERT_TRUE(hub.value()->send(9, bytes_of({1})).ok());
  loop.run_until([&] { return !lost.empty(); });
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(lost[0], 9u);
}

TEST(UringHubTest, DestructionWithLiveConnectionsDrainsCleanly) {
  SKIP_WITHOUT_URING();
  // Hubs die with an established connection, an in-flight RECV each, and a
  // pending dial retry: the dtor's shutdown + cancel + reap must leave no
  // kernel op targeting freed memory (ASan would flag it) and no leaked Op
  // (LSan would).
  EventLoop loop;
  auto a = UringHub::create(loop, 1, 0);
  auto b = UringHub::create(loop, 2, 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  a.value()->set_frame_handler([](NodeId, common::BytesView) {});
  b.value()->connect_peer(1, "127.0.0.1", a.value()->port());
  ASSERT_TRUE(b.value()->send(1, bytes_of({1, 2})).ok());
  loop.run_until([&] { return a.value()->is_connected(2); });
  UringHub::DialOptions slow;
  slow.max_attempts = 5;
  slow.initial_backoff = 10'000ms;  // retry far in the future
  b.value()->connect_peer(9, "127.0.0.1", 1, slow);
  // Destroy b first (active conn + dial), then a (accepted conn).
  b.value().reset();
  a.value().reset();
}

}  // namespace
}  // namespace gendpr::net
