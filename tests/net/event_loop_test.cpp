// EventLoop unit tests: timer ordering and cancellation, fd readiness
// dispatch over a pipe, self-unwatch from inside a handler, run_until's
// exhaustion guarantee (no fds + no timers = return, not spin), and post()'s
// cross-thread wakeup and ordering contract.
#include <gtest/gtest.h>

#include <sys/epoll.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "net/event_loop.hpp"

namespace gendpr::net {
namespace {

using namespace std::chrono_literals;

TEST(EventLoopTest, TimersFireInDueOrder) {
  EventLoop loop;
  ASSERT_TRUE(loop.valid());
  std::vector<int> order;
  const auto now = EventLoop::Clock::now();
  loop.add_timer(now + 30ms, [&] { order.push_back(3); });
  loop.add_timer(now + 10ms, [&] { order.push_back(1); });
  loop.add_timer(now + 20ms, [&] { order.push_back(2); });
  loop.run_until([&] { return order.size() == 3; });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoopTest, CancelledTimerNeverFires) {
  EventLoop loop;
  ASSERT_TRUE(loop.valid());
  bool cancelled_fired = false;
  bool kept_fired = false;
  const auto id = loop.add_timer_after(10ms, [&] { cancelled_fired = true; });
  loop.add_timer_after(20ms, [&] { kept_fired = true; });
  loop.cancel_timer(id);
  loop.run_until([&] { return kept_fired; });
  EXPECT_FALSE(cancelled_fired);
  EXPECT_TRUE(kept_fired);
}

TEST(EventLoopTest, TimerCallbackMayAddTimers) {
  EventLoop loop;
  ASSERT_TRUE(loop.valid());
  int ticks = 0;
  std::function<void()> tick = [&] {
    if (++ticks < 3) loop.add_timer_after(1ms, tick);
  };
  loop.add_timer_after(1ms, tick);
  loop.run_until([&] { return ticks == 3; });
  EXPECT_EQ(ticks, 3);
}

TEST(EventLoopTest, RunUntilReturnsWhenNothingCanWakeIt) {
  EventLoop loop;
  ASSERT_TRUE(loop.valid());
  bool fired = false;
  loop.add_timer_after(1ms, [&] { fired = true; });
  // The predicate never becomes true; the loop must still return once the
  // only timer has fired and nothing else could ever produce an event.
  loop.run_until([] { return false; });
  EXPECT_TRUE(fired);
}

namespace {
struct PipeReader : EventLoop::IoHandler {
  EventLoop* loop = nullptr;
  int fd = -1;
  std::vector<std::uint8_t> received;
  bool unwatch_on_read = false;

  void on_ready(std::uint32_t events) override {
    if ((events & EPOLLIN) == 0) return;
    std::uint8_t buffer[16];
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    for (ssize_t i = 0; i < n; ++i) received.push_back(buffer[i]);
    if (unwatch_on_read) loop->unwatch(fd);
  }
};
}  // namespace

TEST(EventLoopTest, DispatchesPipeReadiness) {
  EventLoop loop;
  ASSERT_TRUE(loop.valid());
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  auto reader = std::make_shared<PipeReader>();
  reader->loop = &loop;
  reader->fd = fds[0];
  ASSERT_TRUE(loop.watch(fds[0], EPOLLIN, reader).ok());
  ASSERT_EQ(::write(fds[1], "ab", 2), 2);
  loop.run_until([&] { return reader->received.size() == 2; });
  EXPECT_EQ(reader->received, (std::vector<std::uint8_t>{'a', 'b'}));
  loop.unwatch(fds[0]);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(EventLoopTest, HandlerMayUnwatchItselfFromOnReady) {
  EventLoop loop;
  ASSERT_TRUE(loop.valid());
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  auto reader = std::make_shared<PipeReader>();
  reader->loop = &loop;
  reader->fd = fds[0];
  reader->unwatch_on_read = true;
  ASSERT_TRUE(loop.watch(fds[0], EPOLLIN, reader).ok());
  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  // After the self-unwatch nothing is registered: run_until must return on
  // exhaustion rather than wait for the predicate.
  loop.run_until([] { return false; });
  EXPECT_EQ(reader->received.size(), 1u);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(EventLoopTest, PostedTasksRunInOrder) {
  EventLoop loop;
  ASSERT_TRUE(loop.valid());
  std::vector<int> order;
  loop.post([&] { order.push_back(1); });
  loop.post([&] { order.push_back(2); });
  loop.post([&] { order.push_back(3); });
  loop.run_until([&] { return order.size() == 3; });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoopTest, PostFromAnotherThreadWakesABlockedLoop) {
  EventLoop loop;
  ASSERT_TRUE(loop.valid());
  std::atomic<bool> ran{false};
  // With no fds and no timers the loop would exit immediately; a pending
  // far-future timer keeps it blocked in epoll_wait so only the post()'s
  // wake can get the task through.
  loop.add_timer_after(std::chrono::seconds(30), [] {});
  std::thread producer([&] {
    std::this_thread::sleep_for(10ms);
    loop.post([&] { ran.store(true); });
  });
  loop.run_until([&] { return ran.load(); });
  producer.join();
  EXPECT_TRUE(ran.load());
}

TEST(EventLoopTest, PostedTaskMayPostMore) {
  EventLoop loop;
  ASSERT_TRUE(loop.valid());
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 3) loop.post(chain);
  };
  loop.post(chain);
  loop.run_until([&] { return depth == 3; });
  EXPECT_EQ(depth, 3);
}

}  // namespace
}  // namespace gendpr::net
