#include "net/tcp.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/rng.hpp"

namespace gendpr::net {
namespace {

using common::Bytes;

TEST(TcpHubTest, CreateBindsEphemeralPort) {
  auto hub = TcpHub::create(1, 0);
  ASSERT_TRUE(hub.ok()) << hub.error().to_string();
  EXPECT_GT(hub.value()->port(), 0);
  EXPECT_EQ(hub.value()->self(), 1u);
}

TEST(TcpHubTest, ConnectAndExchange) {
  auto a = TcpHub::create(1, 0);
  auto b = TcpHub::create(2, 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(
      a.value()->connect_peer(2, "127.0.0.1", b.value()->port()).ok());

  auto mailbox_b = b.value()->attach(2);
  ASSERT_TRUE(a.value()->send(1, 2, Bytes{0x42, 0x43}).ok());
  const auto received = mailbox_b->receive();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->from, 1u);
  EXPECT_EQ(received->payload, (Bytes{0x42, 0x43}));
}

TEST(TcpHubTest, BidirectionalAfterSingleDial) {
  auto a = TcpHub::create(1, 0);
  auto b = TcpHub::create(2, 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(
      a.value()->connect_peer(2, "127.0.0.1", b.value()->port()).ok());
  auto mailbox_a = a.value()->attach(1);
  auto mailbox_b = b.value()->attach(2);

  ASSERT_TRUE(a.value()->send(1, 2, Bytes{1}).ok());
  ASSERT_TRUE(mailbox_b->receive().has_value());
  // b learned about a through the hello; reply over the same connection.
  ASSERT_TRUE(b.value()->send(2, 1, Bytes{2}).ok());
  const auto reply = mailbox_a->receive();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->from, 2u);
  EXPECT_EQ(reply->payload, (Bytes{2}));
}

TEST(TcpHubTest, SendToUnknownPeerFails) {
  auto hub = TcpHub::create(1, 0);
  ASSERT_TRUE(hub.ok());
  const auto status = hub.value()->send(1, 9, Bytes{1});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, common::Errc::unknown_peer);
}

TEST(TcpHubTest, ConnectToClosedPortFails) {
  auto hub = TcpHub::create(1, 0);
  ASSERT_TRUE(hub.ok());
  // Grab a port then release it so nothing is listening there.
  std::uint16_t dead_port = 1;
  {
    auto scratch = TcpHub::create(9, 0);
    ASSERT_TRUE(scratch.ok());
    dead_port = scratch.value()->port();
  }
  const auto status =
      hub.value()->connect_peer(2, "127.0.0.1", dead_port);
  EXPECT_FALSE(status.ok());
}

TEST(TcpHubTest, BadHostRejected) {
  auto hub = TcpHub::create(1, 0);
  ASSERT_TRUE(hub.ok());
  const auto status = hub.value()->connect_peer(2, "not-an-ip", 1234);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, common::Errc::invalid_argument);
}

TEST(TcpHubTest, LargePayloadRoundTrip) {
  auto a = TcpHub::create(1, 0);
  auto b = TcpHub::create(2, 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(
      a.value()->connect_peer(2, "127.0.0.1", b.value()->port()).ok());
  auto mailbox_b = b.value()->attach(2);

  common::Rng rng(3);
  Bytes big(2 * 1024 * 1024);
  for (auto& byte : big) byte = static_cast<std::uint8_t>(rng.next());
  ASSERT_TRUE(a.value()->send(1, 2, big).ok());
  const auto received = mailbox_b->receive();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->payload, big);
}

TEST(TcpHubTest, ManyMessagesPreserveOrder) {
  auto a = TcpHub::create(1, 0);
  auto b = TcpHub::create(2, 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(
      a.value()->connect_peer(2, "127.0.0.1", b.value()->port()).ok());
  auto mailbox_b = b.value()->attach(2);
  for (std::uint32_t i = 0; i < 500; ++i) {
    Bytes msg(4);
    for (int j = 0; j < 4; ++j) msg[j] = static_cast<std::uint8_t>(i >> (8 * j));
    ASSERT_TRUE(a.value()->send(1, 2, std::move(msg)).ok());
  }
  for (std::uint32_t i = 0; i < 500; ++i) {
    const auto received = mailbox_b->receive();
    ASSERT_TRUE(received.has_value());
    std::uint32_t value = 0;
    for (int j = 0; j < 4; ++j) value |= std::uint32_t{received->payload[j]} << (8 * j);
    EXPECT_EQ(value, i);
  }
}

TEST(TcpHubTest, MeterCountsTraffic) {
  auto a = TcpHub::create(1, 0);
  auto b = TcpHub::create(2, 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(
      a.value()->connect_peer(2, "127.0.0.1", b.value()->port()).ok());
  auto mailbox_b = b.value()->attach(2);
  ASSERT_TRUE(a.value()->send(1, 2, Bytes(100)).ok());
  ASSERT_TRUE(mailbox_b->receive().has_value());
  EXPECT_EQ(a.value()->meter_or_null()->bytes_sent_by(1), 100u);
  EXPECT_EQ(b.value()->meter_or_null()->bytes_received_by(2), 100u);
}

TEST(TcpHubTest, ThreeHubStar) {
  // Leader hub + two members dialing in: the federation topology.
  auto leader = TcpHub::create(1, 0);
  auto m1 = TcpHub::create(2, 0);
  auto m2 = TcpHub::create(3, 0);
  ASSERT_TRUE(leader.ok());
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  ASSERT_TRUE(
      m1.value()->connect_peer(1, "127.0.0.1", leader.value()->port()).ok());
  ASSERT_TRUE(
      m2.value()->connect_peer(1, "127.0.0.1", leader.value()->port()).ok());
  auto leader_mailbox = leader.value()->attach(1);
  ASSERT_TRUE(m1.value()->send(2, 1, Bytes{0xaa}).ok());
  ASSERT_TRUE(m2.value()->send(3, 1, Bytes{0xbb}).ok());
  std::set<std::uint32_t> senders;
  for (int i = 0; i < 2; ++i) {
    const auto received = leader_mailbox->receive();
    ASSERT_TRUE(received.has_value());
    senders.insert(received->from);
  }
  EXPECT_EQ(senders, (std::set<std::uint32_t>{2, 3}));
  // Leader can reply to both over the accepted connections.
  ASSERT_TRUE(leader.value()->send(1, 2, Bytes{0x01}).ok());
  ASSERT_TRUE(leader.value()->send(1, 3, Bytes{0x02}).ok());
  EXPECT_TRUE(m1.value()->attach(2)->receive().has_value());
  EXPECT_TRUE(m2.value()->attach(3)->receive().has_value());
}

TEST(TcpHubTest, ConcurrentSendersDoNotInterleaveFrames) {
  // Two threads hammer the same connection with variable-size frames. Every
  // payload byte carries its sender's tag, so any interleaving of the two
  // write streams shows up as a mixed (or framing-corrupted) message.
  auto a = TcpHub::create(1, 0);
  auto b = TcpHub::create(2, 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(
      a.value()->connect_peer(2, "127.0.0.1", b.value()->port()).ok());
  auto mailbox_b = b.value()->attach(2);

  constexpr int kPerThread = 300;
  auto sender = [&a](std::uint8_t tag) {
    common::Rng rng(tag);
    for (int i = 0; i < kPerThread; ++i) {
      Bytes payload(1 + rng.next() % 4096, tag);
      ASSERT_TRUE(a.value()->send(1, 2, std::move(payload)).ok());
    }
  };
  std::thread first(sender, std::uint8_t{0xaa});
  std::thread second(sender, std::uint8_t{0xbb});
  first.join();
  second.join();

  for (int i = 0; i < 2 * kPerThread; ++i) {
    const auto received = mailbox_b->receive();
    ASSERT_TRUE(received.has_value());
    ASSERT_FALSE(received->payload.empty());
    const std::uint8_t tag = received->payload[0];
    ASSERT_TRUE(tag == 0xaa || tag == 0xbb);
    for (const std::uint8_t byte : received->payload) ASSERT_EQ(byte, tag);
  }
}

TEST(TcpHubTest, PeerDisconnectEvictsAndReportsLoss) {
  auto a = TcpHub::create(1, 0);
  ASSERT_TRUE(a.ok());
  std::atomic<NodeId> lost{kNoNode};
  a.value()->set_peer_lost_handler([&](NodeId peer) { lost = peer; });
  {
    auto b = TcpHub::create(2, 0);
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(
        a.value()->connect_peer(2, "127.0.0.1", b.value()->port()).ok());
    ASSERT_TRUE(a.value()->is_connected(2));
  }  // peer hub destroyed: its side of the connection closes

  // a's reader notices EOF and tears the connection down. The hub evicts the
  // peer before invoking the handler, so wait for the handler too.
  for (int i = 0;
       i < 400 && (a.value()->is_connected(2) || lost.load() == kNoNode);
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_FALSE(a.value()->is_connected(2));
  EXPECT_EQ(a.value()->lost_peers(), std::vector<NodeId>{2});
  EXPECT_EQ(lost.load(), 2u);

  // Sends to the lost peer fail fast and stay out of the bandwidth meter.
  const auto sent_before = a.value()->meter_or_null()->bytes_sent_by(1);
  const auto status = a.value()->send(1, 2, Bytes{1, 2, 3});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, common::Errc::unknown_peer);
  EXPECT_EQ(a.value()->meter_or_null()->bytes_sent_by(1), sent_before);
}

TEST(TcpHubTest, ConnectRetriesUntilListenerAppears) {
  auto a = TcpHub::create(1, 0);
  ASSERT_TRUE(a.ok());
  std::uint16_t port = 0;
  {
    auto scratch = TcpHub::create(9, 0);
    ASSERT_TRUE(scratch.ok());
    port = scratch.value()->port();
  }  // the port is free again; nothing is listening on it yet

  std::unique_ptr<TcpHub> b;
  std::thread late_listener([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    auto hub = TcpHub::create(2, port);
    ASSERT_TRUE(hub.ok()) << hub.error().to_string();
    b = std::move(hub).take();
  });
  TcpHub::DialOptions options;
  options.max_attempts = 10;
  options.initial_backoff = std::chrono::milliseconds(20);
  const auto status = a.value()->connect_peer(2, "127.0.0.1", port, options);
  late_listener.join();
  ASSERT_TRUE(status.ok()) << status.error().to_string();
  EXPECT_TRUE(a.value()->is_connected(2));
}

}  // namespace
}  // namespace gendpr::net
