#include "net/network.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace gendpr::net {
namespace {

using common::Bytes;

TEST(MailboxTest, PushThenReceive) {
  Mailbox mailbox;
  mailbox.push(Envelope{1, 2, Bytes{0xaa}});
  const auto received = mailbox.receive();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->from, 1u);
  EXPECT_EQ(received->to, 2u);
  EXPECT_EQ(received->payload, (Bytes{0xaa}));
}

TEST(MailboxTest, FifoOrder) {
  Mailbox mailbox;
  for (std::uint8_t i = 0; i < 10; ++i) {
    mailbox.push(Envelope{1, 2, Bytes{i}});
  }
  for (std::uint8_t i = 0; i < 10; ++i) {
    EXPECT_EQ(mailbox.receive()->payload[0], i);
  }
}

TEST(MailboxTest, TryReceiveEmptyReturnsNullopt) {
  Mailbox mailbox;
  EXPECT_FALSE(mailbox.try_receive().has_value());
}

TEST(MailboxTest, CloseWakesBlockedReceiver) {
  Mailbox mailbox;
  std::atomic<bool> returned{false};
  std::thread receiver([&] {
    const auto result = mailbox.receive();
    EXPECT_FALSE(result.has_value());
    returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  mailbox.close();
  receiver.join();
  EXPECT_TRUE(returned);
}

TEST(MailboxTest, ReceiveBlocksUntilPush) {
  Mailbox mailbox;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    mailbox.push(Envelope{1, 2, Bytes{0x42}});
  });
  const auto received = mailbox.receive();
  producer.join();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->payload, (Bytes{0x42}));
}

TEST(MailboxTest, PushAfterCloseDropped) {
  Mailbox mailbox;
  mailbox.close();
  mailbox.push(Envelope{1, 2, Bytes{1}});
  EXPECT_EQ(mailbox.pending(), 0u);
}

TEST(NetworkTest, SendBetweenAttachedNodes) {
  Network network;
  network.attach(1);
  auto mailbox2 = network.attach(2);
  ASSERT_TRUE(network.send(1, 2, Bytes{0x11}).ok());
  const auto received = mailbox2->receive();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->from, 1u);
  EXPECT_EQ(received->payload, (Bytes{0x11}));
}

TEST(NetworkTest, SendToUnknownPeerFails) {
  Network network;
  network.attach(1);
  const auto status = network.send(1, 99, Bytes{0x11});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, common::Errc::unknown_peer);
}

TEST(NetworkTest, BroadcastSkipsSender) {
  Network network;
  auto m1 = network.attach(1);
  auto m2 = network.attach(2);
  auto m3 = network.attach(3);
  network.broadcast(1, Bytes{0x77});
  EXPECT_EQ(m1->pending(), 0u);
  EXPECT_EQ(m2->pending(), 1u);
  EXPECT_EQ(m3->pending(), 1u);
}

TEST(NetworkTest, DetachClosesMailbox) {
  Network network;
  auto mailbox = network.attach(5);
  network.detach(5);
  EXPECT_FALSE(network.is_attached(5));
  EXPECT_FALSE(mailbox->receive().has_value());
}

TEST(NetworkTest, NodeCount) {
  Network network;
  EXPECT_EQ(network.node_count(), 0u);
  network.attach(1);
  network.attach(2);
  EXPECT_EQ(network.node_count(), 2u);
  network.detach(1);
  EXPECT_EQ(network.node_count(), 1u);
}

TEST(NetworkTest, ConcurrentSendersAllDelivered) {
  Network network;
  auto sink = network.attach(100);
  constexpr int kSenders = 8;
  constexpr int kPerSender = 200;
  std::vector<std::thread> senders;
  for (int s = 0; s < kSenders; ++s) {
    network.attach(s + 1);
    senders.emplace_back([&network, s] {
      for (int i = 0; i < kPerSender; ++i) {
        ASSERT_TRUE(network
                        .send(s + 1, 100,
                              Bytes{static_cast<std::uint8_t>(s),
                                    static_cast<std::uint8_t>(i)})
                        .ok());
      }
    });
  }
  for (auto& t : senders) t.join();
  int received = 0;
  while (sink->try_receive().has_value()) ++received;
  EXPECT_EQ(received, kSenders * kPerSender);
}

TEST(TrafficMeterTest, RecordsBytesAndMessages) {
  Network network;
  network.attach(1);
  network.attach(2);
  ASSERT_TRUE(network.send(1, 2, Bytes(100)).ok());
  ASSERT_TRUE(network.send(1, 2, Bytes(50)).ok());
  ASSERT_TRUE(network.send(2, 1, Bytes(25)).ok());
  EXPECT_EQ(network.meter().total_bytes(), 175u);
  EXPECT_EQ(network.meter().total_messages(), 3u);
  EXPECT_EQ(network.meter().bytes_sent_by(1), 150u);
  EXPECT_EQ(network.meter().bytes_received_by(1), 25u);
  EXPECT_EQ(network.meter().bytes_received_by(2), 150u);
}

TEST(TrafficMeterTest, BroadcastCountsPerReceiver) {
  Network network;
  network.attach(1);
  network.attach(2);
  network.attach(3);
  network.broadcast(1, Bytes(10));
  EXPECT_EQ(network.meter().total_bytes(), 20u);
  EXPECT_EQ(network.meter().total_messages(), 2u);
}

TEST(TrafficMeterTest, ResetClears) {
  Network network;
  network.attach(1);
  network.attach(2);
  ASSERT_TRUE(network.send(1, 2, Bytes(10)).ok());
  network.meter().reset();
  EXPECT_EQ(network.meter().total_bytes(), 0u);
}

}  // namespace
}  // namespace gendpr::net
