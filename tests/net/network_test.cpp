#include "net/network.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <thread>
#include <vector>

namespace gendpr::net {
namespace {

using common::Bytes;

TEST(MailboxTest, PushThenReceive) {
  Mailbox mailbox;
  mailbox.push(Envelope{1, 2, Bytes{0xaa}});
  const auto received = mailbox.receive();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->from, 1u);
  EXPECT_EQ(received->to, 2u);
  EXPECT_EQ(received->payload, (Bytes{0xaa}));
}

TEST(MailboxTest, FifoOrder) {
  Mailbox mailbox;
  for (std::uint8_t i = 0; i < 10; ++i) {
    mailbox.push(Envelope{1, 2, Bytes{i}});
  }
  for (std::uint8_t i = 0; i < 10; ++i) {
    EXPECT_EQ(mailbox.receive()->payload[0], i);
  }
}

TEST(MailboxTest, TryReceiveEmptyReturnsNullopt) {
  Mailbox mailbox;
  EXPECT_FALSE(mailbox.try_receive().has_value());
}

TEST(MailboxTest, CloseWakesBlockedReceiver) {
  Mailbox mailbox;
  std::atomic<bool> returned{false};
  std::thread receiver([&] {
    const auto result = mailbox.receive();
    EXPECT_FALSE(result.has_value());
    returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  mailbox.close();
  receiver.join();
  EXPECT_TRUE(returned);
}

TEST(MailboxTest, ReceiveBlocksUntilPush) {
  Mailbox mailbox;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    mailbox.push(Envelope{1, 2, Bytes{0x42}});
  });
  const auto received = mailbox.receive();
  producer.join();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->payload, (Bytes{0x42}));
}

TEST(MailboxTest, PushAfterCloseDropped) {
  Mailbox mailbox;
  mailbox.close();
  EXPECT_FALSE(mailbox.push(Envelope{1, 2, Bytes{1}}));
  EXPECT_EQ(mailbox.pending(), 0u);
}

TEST(MailboxTest, ReceiveForDeliversQueuedMessage) {
  Mailbox mailbox;
  ASSERT_TRUE(mailbox.push(Envelope{1, 2, Bytes{0x0f}}));
  const auto result = mailbox.receive_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().payload, (Bytes{0x0f}));
}

TEST(MailboxTest, ReceiveForExpiresWithTimeoutCode) {
  Mailbox mailbox;
  const auto start = std::chrono::steady_clock::now();
  const auto result = mailbox.receive_for(std::chrono::milliseconds(30));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, common::Errc::timeout);
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(30));
}

TEST(MailboxTest, ReceiveForZeroBlocksUntilPush) {
  Mailbox mailbox;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    mailbox.push(Envelope{1, 2, Bytes{0x42}});
  });
  const auto result = mailbox.receive_for(std::chrono::milliseconds(0));
  producer.join();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().payload, (Bytes{0x42}));
}

TEST(MailboxTest, CloseWakesBlockedReceiveFor) {
  Mailbox mailbox;
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    mailbox.close();
  });
  const auto result = mailbox.receive_for(std::chrono::seconds(30));
  closer.join();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, common::Errc::state_violation);
}

TEST(MailboxTest, ReceiveForDrainsQueueAfterClose) {
  Mailbox mailbox;
  ASSERT_TRUE(mailbox.push(Envelope{1, 2, Bytes{0x01}}));
  ASSERT_TRUE(mailbox.push(Envelope{1, 2, Bytes{0x02}}));
  mailbox.close();
  // Messages queued before close() must still come out, in order...
  auto first = mailbox.receive_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().payload, (Bytes{0x01}));
  auto second = mailbox.receive_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().payload, (Bytes{0x02}));
  // ...and only then does the closed state surface (not as a timeout).
  auto drained = mailbox.receive_for(std::chrono::milliseconds(10));
  ASSERT_FALSE(drained.ok());
  EXPECT_EQ(drained.error().code, common::Errc::state_violation);
}

TEST(MailboxTest, ReceiveForNeverDropsOnExpiryRace) {
  // A message racing the deadline is either delivered by this receive_for
  // or still queued for the next one - it must never vanish.
  for (int i = 0; i < 100; ++i) {
    Mailbox mailbox;
    std::thread pusher([&] { mailbox.push(Envelope{1, 2, Bytes{0x07}}); });
    const auto result = mailbox.receive_for(std::chrono::milliseconds(1));
    pusher.join();
    if (result.ok()) {
      EXPECT_EQ(result.value().payload, (Bytes{0x07}));
    } else {
      EXPECT_EQ(result.error().code, common::Errc::timeout);
      EXPECT_EQ(mailbox.pending(), 1u);
    }
  }
}

TEST(MailboxTest, PerSenderFifoUnderConcurrentPushers) {
  Mailbox mailbox;
  constexpr int kSenders = 4;
  constexpr int kPerSender = 500;
  std::vector<std::thread> pushers;
  for (int s = 0; s < kSenders; ++s) {
    pushers.emplace_back([&mailbox, s] {
      for (int i = 0; i < kPerSender; ++i) {
        Bytes payload{static_cast<std::uint8_t>(i & 0xff),
                      static_cast<std::uint8_t>(i >> 8)};
        ASSERT_TRUE(mailbox.push(
            Envelope{static_cast<NodeId>(s + 1), 9, std::move(payload)}));
      }
    });
  }
  for (auto& pusher : pushers) pusher.join();
  std::map<NodeId, int> next_per_sender;
  for (int n = 0; n < kSenders * kPerSender; ++n) {
    const auto received = mailbox.try_receive();
    ASSERT_TRUE(received.has_value());
    const int value = received->payload[0] | (received->payload[1] << 8);
    EXPECT_EQ(value, next_per_sender[received->from]++);
  }
}

TEST(NetworkTest, SendBetweenAttachedNodes) {
  Network network;
  network.attach(1);
  auto mailbox2 = network.attach(2);
  ASSERT_TRUE(network.send(1, 2, Bytes{0x11}).ok());
  const auto received = mailbox2->receive();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->from, 1u);
  EXPECT_EQ(received->payload, (Bytes{0x11}));
}

TEST(NetworkTest, SendToUnknownPeerFails) {
  Network network;
  network.attach(1);
  const auto status = network.send(1, 99, Bytes{0x11});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, common::Errc::unknown_peer);
}

TEST(NetworkTest, BroadcastSkipsSender) {
  Network network;
  auto m1 = network.attach(1);
  auto m2 = network.attach(2);
  auto m3 = network.attach(3);
  network.broadcast(1, Bytes{0x77});
  EXPECT_EQ(m1->pending(), 0u);
  EXPECT_EQ(m2->pending(), 1u);
  EXPECT_EQ(m3->pending(), 1u);
}

TEST(NetworkTest, DetachClosesMailbox) {
  Network network;
  auto mailbox = network.attach(5);
  network.detach(5);
  EXPECT_FALSE(network.is_attached(5));
  EXPECT_FALSE(mailbox->receive().has_value());
}

TEST(NetworkTest, PeerLostHandlerFiresOnDetach) {
  Network network;
  network.attach(3);
  NodeId lost = kNoNode;
  network.set_peer_lost_handler([&](NodeId node) { lost = node; });
  network.detach(99);  // unknown node: no spurious callback
  EXPECT_EQ(lost, kNoNode);
  network.detach(3);
  EXPECT_EQ(lost, 3u);
}

TEST(NetworkTest, DroppedSendNotMetered) {
  Network network;
  network.attach(1);
  auto mailbox = network.attach(2);
  mailbox->close();  // receiver gone, node still attached
  ASSERT_TRUE(network.send(1, 2, Bytes(64)).ok());
  EXPECT_EQ(network.meter().total_bytes(), 0u);
}

TEST(NetworkTest, NodeCount) {
  Network network;
  EXPECT_EQ(network.node_count(), 0u);
  network.attach(1);
  network.attach(2);
  EXPECT_EQ(network.node_count(), 2u);
  network.detach(1);
  EXPECT_EQ(network.node_count(), 1u);
}

TEST(NetworkTest, ConcurrentSendersAllDelivered) {
  Network network;
  auto sink = network.attach(100);
  constexpr int kSenders = 8;
  constexpr int kPerSender = 200;
  std::vector<std::thread> senders;
  for (int s = 0; s < kSenders; ++s) {
    network.attach(s + 1);
    senders.emplace_back([&network, s] {
      for (int i = 0; i < kPerSender; ++i) {
        ASSERT_TRUE(network
                        .send(s + 1, 100,
                              Bytes{static_cast<std::uint8_t>(s),
                                    static_cast<std::uint8_t>(i)})
                        .ok());
      }
    });
  }
  for (auto& t : senders) t.join();
  int received = 0;
  while (sink->try_receive().has_value()) ++received;
  EXPECT_EQ(received, kSenders * kPerSender);
}

TEST(TrafficMeterTest, RecordsBytesAndMessages) {
  Network network;
  network.attach(1);
  network.attach(2);
  ASSERT_TRUE(network.send(1, 2, Bytes(100)).ok());
  ASSERT_TRUE(network.send(1, 2, Bytes(50)).ok());
  ASSERT_TRUE(network.send(2, 1, Bytes(25)).ok());
  EXPECT_EQ(network.meter().total_bytes(), 175u);
  EXPECT_EQ(network.meter().total_messages(), 3u);
  EXPECT_EQ(network.meter().bytes_sent_by(1), 150u);
  EXPECT_EQ(network.meter().bytes_received_by(1), 25u);
  EXPECT_EQ(network.meter().bytes_received_by(2), 150u);
}

TEST(TrafficMeterTest, BroadcastCountsPerReceiver) {
  Network network;
  network.attach(1);
  network.attach(2);
  network.attach(3);
  network.broadcast(1, Bytes(10));
  EXPECT_EQ(network.meter().total_bytes(), 20u);
  EXPECT_EQ(network.meter().total_messages(), 2u);
}

TEST(TrafficMeterTest, ResetClears) {
  Network network;
  network.attach(1);
  network.attach(2);
  ASSERT_TRUE(network.send(1, 2, Bytes(10)).ok());
  network.meter().reset();
  EXPECT_EQ(network.meter().total_bytes(), 0u);
}

}  // namespace
}  // namespace gendpr::net
