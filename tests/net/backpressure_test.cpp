// Write-side backpressure under a slow reader, for both hub flavors: the
// per-connection queue stays bounded by the watermark (no OOM from one stuck
// peer), pause/resume fire exactly at the high/low marks, a paused link
// never head-of-line-blocks a healthy sibling, and killing the peer in the
// middle of a partial write tears the connection down cleanly and releases
// the pause.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/epoll_hub.hpp"
#include "net/event_loop.hpp"
#include "net/uring_hub.hpp"

namespace gendpr::net {
namespace {

using namespace std::chrono_literals;

constexpr std::size_t kHigh = 128 * 1024;
constexpr std::size_t kLow = 32 * 1024;
constexpr std::size_t kChunk = 8 * 1024;
constexpr int kMaxIterations = 20000;  // safety cap, never a real bound

/// A TCP endpoint that accepts one connection and reads only when told to —
/// the "slow peer" the hub must not let poison anything else.
struct SlowReader {
  int listen_fd = -1;
  int conn_fd = -1;
  std::uint16_t port = 0;
  std::size_t drained = 0;

  static SlowReader listen_on_loopback() {
    SlowReader reader;
    reader.listen_fd =
        ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ::bind(reader.listen_fd, reinterpret_cast<sockaddr*>(&addr),
           sizeof(addr));
    ::listen(reader.listen_fd, 4);
    socklen_t len = sizeof(addr);
    ::getsockname(reader.listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
    reader.port = ntohs(addr.sin_port);
    return reader;
  }

  bool try_accept() {
    if (conn_fd >= 0) return true;
    conn_fd = ::accept4(listen_fd, nullptr, nullptr,
                        SOCK_NONBLOCK | SOCK_CLOEXEC);
    return conn_fd >= 0;
  }

  std::size_t drain(std::size_t max_bytes) {
    if (conn_fd < 0) return 0;
    std::vector<std::uint8_t> buf(max_bytes);
    const ssize_t n = ::recv(conn_fd, buf.data(), buf.size(), 0);
    if (n <= 0) return 0;
    drained += static_cast<std::size_t>(n);
    return static_cast<std::size_t>(n);
  }

  void kill_connection() {
    if (conn_fd >= 0) {
      ::close(conn_fd);
      conn_fd = -1;
    }
  }

  ~SlowReader() {
    kill_connection();
    if (listen_fd >= 0) ::close(listen_fd);
  }
};

class BackpressureTest : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<Hub> make_hub(EventLoop& loop, NodeId self) {
    if (std::string(GetParam()) == "uring") {
      auto hub = UringHub::create(loop, self, 0);
      EXPECT_TRUE(hub.ok());
      return std::move(hub).take();
    }
    auto hub = EpollHub::create(loop, self, 0);
    EXPECT_TRUE(hub.ok());
    return std::move(hub).take();
  }

  void SetUp() override {
    if (std::string(GetParam()) == "uring" && !UringHub::available()) {
      GTEST_SKIP() << "io_uring not available on this kernel";
    }
  }
};

/// Sends chunks to `peer` until the hub reports the pause; the queue must
/// stay bounded by the watermark plus the one enqueue that crossed it.
std::size_t fill_until_paused(EventLoop& loop, Hub& hub, NodeId peer,
                              const bool& paused) {
  const common::Bytes chunk(kChunk, 0xAB);
  std::size_t sent = 0;
  for (int i = 0; i < kMaxIterations && !paused; ++i) {
    EXPECT_TRUE(hub.send(peer, chunk).ok());
    ++sent;
    loop.poll_once(0ms);
  }
  return sent;
}

TEST_P(BackpressureTest, SlowReaderPausesThenDrainingResumes) {
  EventLoop loop;
  ASSERT_TRUE(loop.valid());
  auto hub = make_hub(loop, 2);
  hub->set_watermarks({kHigh, kLow});
  bool paused = false;
  std::uint64_t pauses = 0;
  std::uint64_t resumes = 0;
  hub->set_backpressure_handler([&](NodeId peer, bool now_paused) {
    EXPECT_EQ(peer, 1u);
    paused = now_paused;
    (now_paused ? pauses : resumes) += 1;
  });

  SlowReader reader = SlowReader::listen_on_loopback();
  hub->connect_peer(1, "127.0.0.1", reader.port);
  loop.run_until([&] {
    reader.try_accept();
    return hub->is_connected(1);
  });

  const std::size_t sent = fill_until_paused(loop, *hub, 1, paused);
  ASSERT_TRUE(paused) << "queue never crossed the high watermark";
  EXPECT_EQ(pauses, 1u);
  EXPECT_EQ(resumes, 0u);
  // Bounded growth: at most the watermark plus the enqueue that crossed it
  // (frame payload + header). A producer that obeys the pause cannot OOM.
  EXPECT_LE(hub->backpressure().peak_queued_bytes, kHigh + kChunk + 8);

  // Drain the peer: the queue empties through the loop and the hub resumes
  // exactly once, below the low watermark.
  for (int i = 0; i < kMaxIterations && resumes == 0; ++i) {
    reader.drain(64 * 1024);
    loop.poll_once(1ms);
  }
  ASSERT_EQ(resumes, 1u);
  EXPECT_FALSE(paused);

  // Every byte accepted before the pause is eventually delivered intact:
  // hello (8 bytes, empty payload) + sent framed chunks.
  const std::size_t expected = 8 + sent * (kChunk + 8);
  for (int i = 0; i < kMaxIterations && reader.drained < expected; ++i) {
    reader.drain(64 * 1024);
    loop.poll_once(1ms);
  }
  EXPECT_EQ(reader.drained, expected);
}

TEST_P(BackpressureTest, PausedPeerDoesNotBlockASibling) {
  EventLoop loop;
  ASSERT_TRUE(loop.valid());
  auto hub = make_hub(loop, 3);
  hub->set_watermarks({kHigh, kLow});
  bool paused = false;
  hub->set_backpressure_handler(
      [&](NodeId, bool now_paused) { paused = now_paused; });

  SlowReader reader = SlowReader::listen_on_loopback();
  auto fast = EpollHub::create(loop, 2, 0);
  ASSERT_TRUE(fast.ok());
  std::map<NodeId, std::vector<common::Bytes>> fast_received;
  fast.value()->set_frame_handler([&](NodeId from, common::BytesView payload) {
    fast_received[from].push_back(common::Bytes(payload.begin(), payload.end()));
  });

  hub->connect_peer(1, "127.0.0.1", reader.port);
  hub->connect_peer(2, "127.0.0.1", fast.value()->port());
  loop.run_until([&] {
    reader.try_accept();
    return hub->is_connected(1) && hub->is_connected(2);
  });

  fill_until_paused(loop, *hub, 1, paused);
  ASSERT_TRUE(paused);

  // The healthy link keeps flowing while the slow one sits paused: no
  // head-of-line blocking across connections.
  const common::Bytes note{0x42};
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(hub->send(2, note).ok());
  loop.run_until([&] { return fast_received[3].size() == 50; });
  EXPECT_EQ(fast_received[3].size(), 50u);
  EXPECT_TRUE(paused) << "draining the fast link must not touch the slow one";
}

TEST_P(BackpressureTest, KillingPeerMidPartialWriteReleasesThePause) {
  EventLoop loop;
  ASSERT_TRUE(loop.valid());
  auto hub = make_hub(loop, 2);
  hub->set_watermarks({kHigh, kLow});
  bool paused = false;
  std::vector<NodeId> lost;
  hub->set_backpressure_handler(
      [&](NodeId, bool now_paused) { paused = now_paused; });
  hub->set_peer_lost_handler([&](NodeId peer) { lost.push_back(peer); });

  SlowReader reader = SlowReader::listen_on_loopback();
  hub->connect_peer(1, "127.0.0.1", reader.port);
  loop.run_until([&] {
    reader.try_accept();
    return hub->is_connected(1);
  });

  fill_until_paused(loop, *hub, 1, paused);
  ASSERT_TRUE(paused);

  // The peer dies with a multi-frame queue mid-flight (socket buffers full,
  // partial write pending). The hub must drop the connection, report the
  // loss, and lift the pause so no producer is left stalled on a ghost.
  reader.kill_connection();
  loop.run_until([&] { return !lost.empty(); });
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(lost[0], 1u);
  EXPECT_FALSE(paused);
  EXPECT_FALSE(hub->is_connected(1));
  EXPECT_EQ(hub->backpressure().resumes, 1u);
  // Teardown with the dead conn's queue still populated must be clean
  // (ASan/LSan guard the buffers, the uring drain guards the kernel ops).
}

std::string transport_name(
    const ::testing::TestParamInfo<const char*>& param) {
  return std::string(param.param);
}

INSTANTIATE_TEST_SUITE_P(Transports, BackpressureTest,
                         ::testing::Values("epoll", "uring"),
                         transport_name);

}  // namespace
}  // namespace gendpr::net
