// StudyAcceptor tests: one long-lived listening port serves several
// concurrent studies — the hello's study id routes each inbound connection
// (plus any bytes that arrived right behind the hello) to that study's hub,
// across hub flavors; unknown studies and malformed first frames are cut.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <map>
#include <memory>
#include <vector>

#include "net/epoll_hub.hpp"
#include "net/event_loop.hpp"
#include "net/study_acceptor.hpp"
#include "net/uring_hub.hpp"

namespace gendpr::net {
namespace {

common::Bytes bytes_of(std::initializer_list<std::uint8_t> values) {
  return common::Bytes(values);
}

TEST(StudyAcceptorTest, RoutesConcurrentStudiesOverOnePort) {
  EventLoop loop;
  ASSERT_TRUE(loop.valid());
  auto acceptor = StudyAcceptor::create(loop, 0);
  ASSERT_TRUE(acceptor.ok());

  // Two studies, each with its own receiving hub behind the shared port.
  // The receivers listen on no port of their own — every connection comes
  // adopted from the acceptor.
  auto study7_hub = EpollHub::create_adopt_only(loop, 1);
  auto study9_hub = EpollHub::create_adopt_only(loop, 1);
  study7_hub->set_study_id(7);
  study9_hub->set_study_id(9);
  acceptor.value()->add_study(7, loop, *study7_hub);
  acceptor.value()->add_study(9, loop, *study9_hub);

  std::map<NodeId, std::vector<common::Bytes>> at_study7;
  std::map<NodeId, std::vector<common::Bytes>> at_study9;
  study7_hub->set_frame_handler([&](NodeId from, common::BytesView payload) {
    at_study7[from].push_back(common::Bytes(payload.begin(), payload.end()));
  });
  study9_hub->set_frame_handler([&](NodeId from, common::BytesView payload) {
    at_study9[from].push_back(common::Bytes(payload.begin(), payload.end()));
  });

  // Both dialers target the SAME port; only their hellos differ. Frames
  // sent while the dial is in flight land right behind the hello — the
  // leftover handoff path.
  auto dialer7 = EpollHub::create(loop, 2, 0);
  auto dialer9 = EpollHub::create(loop, 3, 0);
  ASSERT_TRUE(dialer7.ok());
  ASSERT_TRUE(dialer9.ok());
  dialer7.value()->set_study_id(7);
  dialer9.value()->set_study_id(9);
  dialer7.value()->connect_peer(1, "127.0.0.1", acceptor.value()->port());
  dialer9.value()->connect_peer(1, "127.0.0.1", acceptor.value()->port());
  ASSERT_TRUE(dialer7.value()->send(1, bytes_of({70, 71})).ok());
  ASSERT_TRUE(dialer9.value()->send(1, bytes_of({90})).ok());

  loop.run_until(
      [&] { return !at_study7[2].empty() && !at_study9[3].empty(); });
  // Routed by study id, not arrival order — and never cross-delivered.
  ASSERT_EQ(at_study7[2].size(), 1u);
  EXPECT_EQ(at_study7[2][0], bytes_of({70, 71}));
  ASSERT_EQ(at_study9[3].size(), 1u);
  EXPECT_EQ(at_study9[3][0], bytes_of({90}));
  EXPECT_TRUE(at_study7[3].empty());
  EXPECT_TRUE(at_study9[2].empty());
  EXPECT_EQ(acceptor.value()->accepted(), 2u);

  // The adopted connections are full duplex: the study hubs answer their
  // peers over the same socket.
  std::vector<common::Bytes> back_at_7;
  dialer7.value()->set_frame_handler(
      [&](NodeId, common::BytesView payload) { back_at_7.push_back(common::Bytes(payload.begin(), payload.end())); });
  ASSERT_TRUE(study7_hub->send(2, bytes_of({77})).ok());
  loop.run_until([&] { return !back_at_7.empty(); });
  EXPECT_EQ(back_at_7[0], bytes_of({77}));

  acceptor.value()->remove_study(7);
  acceptor.value()->remove_study(9);
}

TEST(StudyAcceptorTest, AdoptsIntoAUringHub) {
  if (!UringHub::available()) {
    GTEST_SKIP() << "io_uring not available on this kernel";
  }
  EventLoop loop;
  ASSERT_TRUE(loop.valid());
  auto acceptor = StudyAcceptor::create(loop, 0);
  ASSERT_TRUE(acceptor.ok());
  auto receiver = UringHub::create_adopt_only(loop, 1);
  ASSERT_TRUE(receiver.ok());
  receiver.value()->set_study_id(5);
  acceptor.value()->add_study(5, loop, *receiver.value());

  std::vector<common::Bytes> received;
  receiver.value()->set_frame_handler(
      [&](NodeId, common::BytesView payload) { received.push_back(common::Bytes(payload.begin(), payload.end())); });
  auto dialer = EpollHub::create(loop, 2, 0);
  ASSERT_TRUE(dialer.ok());
  dialer.value()->set_study_id(5);
  dialer.value()->connect_peer(1, "127.0.0.1", acceptor.value()->port());
  ASSERT_TRUE(dialer.value()->send(1, bytes_of({5, 5})).ok());
  loop.run_until([&] { return !received.empty(); });
  EXPECT_EQ(received[0], bytes_of({5, 5}));
  acceptor.value()->remove_study(5);
}

TEST(StudyAcceptorTest, UnregisteredStudyConnectionsAreCut) {
  EventLoop loop;
  ASSERT_TRUE(loop.valid());
  auto acceptor = StudyAcceptor::create(loop, 0);
  ASSERT_TRUE(acceptor.ok());
  auto hub = EpollHub::create_adopt_only(loop, 1);
  hub->set_study_id(7);
  acceptor.value()->add_study(7, loop, *hub);

  // A dialer for a study nobody registered: the acceptor closes it, the
  // dialer observes the loss.
  auto dialer = EpollHub::create(loop, 2, 0);
  ASSERT_TRUE(dialer.ok());
  dialer.value()->set_study_id(42);
  std::vector<NodeId> lost;
  dialer.value()->set_peer_lost_handler(
      [&](NodeId peer) { lost.push_back(peer); });
  dialer.value()->connect_peer(1, "127.0.0.1", acceptor.value()->port());
  ASSERT_TRUE(dialer.value()->send(1, bytes_of({1})).ok());
  loop.run_until([&] { return !lost.empty(); });
  EXPECT_EQ(lost[0], 1u);
  acceptor.value()->remove_study(7);
}

TEST(StudyAcceptorTest, MalformedFirstFrameIsCut) {
  EventLoop loop;
  ASSERT_TRUE(loop.valid());
  auto acceptor = StudyAcceptor::create(loop, 0);
  ASSERT_TRUE(acceptor.ok());

  // A raw client whose first frame is no hello (payload larger than a study
  // id): the acceptor must cut it before buffering further.
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(acceptor.value()->port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  // Frame header claiming a 100-byte payload (frame_len = 104), from = 2.
  const std::uint8_t bogus[8] = {104, 0, 0, 0, 2, 0, 0, 0};
  ASSERT_EQ(::send(fd, bogus, sizeof(bogus), MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(bogus)));

  // The acceptor closes its side; our blocking-free probe sees EOF.
  std::uint8_t probe = 0;
  ssize_t n = -1;
  loop.run_until([&] {
    n = ::recv(fd, &probe, 1, MSG_DONTWAIT);
    return n == 0;
  });
  EXPECT_EQ(n, 0);
  ::close(fd);
}

}  // namespace
}  // namespace gendpr::net
