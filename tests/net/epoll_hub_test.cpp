// EpollHub tests: nonblocking dial + hello identity exchange, ordered
// buffering of frames sent while a dial is in flight, peer-loss reporting on
// both connection death and dial exhaustion, and traffic metering — all on
// a single thread.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <vector>

#include "net/epoll_hub.hpp"
#include "net/event_loop.hpp"

namespace gendpr::net {
namespace {

using namespace std::chrono_literals;

common::Bytes bytes_of(std::initializer_list<std::uint8_t> values) {
  return common::Bytes(values);
}

TEST(EpollHubTest, DialHelloAndFramesBothWays) {
  EventLoop loop;
  ASSERT_TRUE(loop.valid());
  auto a = EpollHub::create(loop, 1, 0);
  auto b = EpollHub::create(loop, 2, 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  std::map<NodeId, std::vector<common::Bytes>> a_received;
  std::map<NodeId, std::vector<common::Bytes>> b_received;
  a.value()->set_frame_handler([&](NodeId from, common::BytesView payload) {
    a_received[from].push_back(common::Bytes(payload.begin(), payload.end()));
  });
  b.value()->set_frame_handler([&](NodeId from, common::BytesView payload) {
    b_received[from].push_back(common::Bytes(payload.begin(), payload.end()));
  });

  // Frames queued before the dial completes must arrive after the hello, in
  // send order.
  b.value()->connect_peer(1, "127.0.0.1", a.value()->port());
  ASSERT_TRUE(b.value()->send(1, bytes_of({10})).ok());
  ASSERT_TRUE(b.value()->send(1, bytes_of({11, 12})).ok());

  loop.run_until([&] { return a_received[2].size() == 2; });
  ASSERT_EQ(a_received[2].size(), 2u);
  EXPECT_EQ(a_received[2][0], bytes_of({10}));
  EXPECT_EQ(a_received[2][1], bytes_of({11, 12}));
  EXPECT_TRUE(a.value()->is_connected(2));

  // The hello identified the dialer, so the accepting side can answer.
  ASSERT_TRUE(a.value()->send(2, bytes_of({20})).ok());
  loop.run_until([&] { return b_received[1].size() == 1; });
  EXPECT_EQ(b_received[1][0], bytes_of({20}));

  // Payload bytes were metered on both hubs (hellos carry no payload).
  EXPECT_EQ(b.value()->meter().total_bytes(), 4u);
  EXPECT_EQ(a.value()->meter().total_bytes(), 4u);
  EXPECT_EQ(a.value()->meter().bytes_received_by(1), 3u);
}

TEST(EpollHubTest, SendToUnknownPeerFails) {
  EventLoop loop;
  auto hub = EpollHub::create(loop, 1, 0);
  ASSERT_TRUE(hub.ok());
  const common::Status sent = hub.value()->send(9, bytes_of({1}));
  ASSERT_FALSE(sent.ok());
  EXPECT_EQ(sent.error().code, common::Errc::unknown_peer);
}

TEST(EpollHubTest, PeerHubDestructionReportsLoss) {
  EventLoop loop;
  auto a = EpollHub::create(loop, 1, 0);
  auto b = EpollHub::create(loop, 2, 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  std::vector<NodeId> lost;
  a.value()->set_peer_lost_handler([&](NodeId peer) { lost.push_back(peer); });
  b.value()->connect_peer(1, "127.0.0.1", a.value()->port());
  ASSERT_TRUE(b.value()->send(1, bytes_of({1})).ok());
  a.value()->set_frame_handler([](NodeId, common::BytesView) {});
  loop.run_until([&] { return a.value()->is_connected(2); });

  b.value().reset();  // the peer "machine" goes away
  loop.run_until([&] { return !lost.empty(); });
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(lost[0], 2u);
  EXPECT_FALSE(a.value()->is_connected(2));
  // Further sends to the dead peer fail as lost, not as never-known.
  const common::Status sent = a.value()->send(2, bytes_of({3}));
  ASSERT_FALSE(sent.ok());
  EXPECT_EQ(sent.error().code, common::Errc::unknown_peer);
  EXPECT_NE(sent.error().message.find("was lost"), std::string::npos);
}

TEST(EpollHubTest, ExhaustedDialReportsPeerLost) {
  EventLoop loop;
  auto hub = EpollHub::create(loop, 1, 0);
  ASSERT_TRUE(hub.ok());
  // Find a loopback port with no listener: bind-then-close frees it.
  auto probe = EpollHub::create(loop, 7, 0);
  ASSERT_TRUE(probe.ok());
  const std::uint16_t dead_port = probe.value()->port();
  probe.value().reset();

  std::vector<NodeId> lost;
  hub.value()->set_peer_lost_handler([&](NodeId peer) { lost.push_back(peer); });
  EpollHub::DialOptions options;
  options.max_attempts = 2;
  options.initial_backoff = 5ms;
  hub.value()->connect_peer(9, "127.0.0.1", dead_port, options);
  // Frames sent during the dial ride its fate.
  ASSERT_TRUE(hub.value()->send(9, bytes_of({1})).ok());
  loop.run_until([&] { return !lost.empty(); });
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(lost[0], 9u);
}

}  // namespace
}  // namespace gendpr::net
