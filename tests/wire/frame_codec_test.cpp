// Property tests of the incremental frame codec against arbitrary stream
// chunkings: the decoder must recover the identical frame sequence whether
// the kernel delivers the byte stream one byte at a time, split mid-header
// at every possible offset, or coalesced into a single read — and it must
// honor the pooled-receive-buffer borrow discipline (a nullopt from next()
// means the fed chunk may be reused, even when a frame straddled it).
#include "wire/frame.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace gendpr::wire {
namespace {

struct ExpectedFrame {
  std::uint32_t from = 0;
  common::Bytes payload;
};

/// A small heterogeneous conversation: hello, empty frame, short frames,
/// and one payload larger than any single chunk used below.
std::vector<ExpectedFrame> test_frames() {
  std::vector<ExpectedFrame> frames;
  frames.push_back({7, {}});  // classic empty hello
  frames.push_back({7, {0x01}});
  common::Bytes medium(57);
  for (std::size_t i = 0; i < medium.size(); ++i) {
    medium[i] = static_cast<unsigned char>(i * 3 + 1);
  }
  frames.push_back({2, medium});
  common::Bytes large(4096 + 13);
  for (std::size_t i = 0; i < large.size(); ++i) {
    large[i] = static_cast<unsigned char>((i * 7) ^ (i >> 8));
  }
  frames.push_back({9, large});
  frames.push_back({7, {0xAA, 0xBB}});
  return frames;
}

common::Bytes encode_stream(const std::vector<ExpectedFrame>& frames) {
  common::Bytes stream;
  for (const ExpectedFrame& frame : frames) {
    const common::Bytes encoded = encode_frame(
        frame.from, common::BytesView(frame.payload.data(),
                                      frame.payload.size()));
    stream.insert(stream.end(), encoded.begin(), encoded.end());
  }
  return stream;
}

/// Feeds `stream` to a fresh decoder in chunks cut at `cuts` (ascending
/// offsets), draining after every feed, and returns the decoded frames.
/// Every payload is copied out before the next feed/next, per the borrow
/// discipline.
std::vector<ExpectedFrame> decode_chunked(const common::Bytes& stream,
                                          const std::vector<std::size_t>& cuts) {
  FrameDecoder decoder;
  std::vector<ExpectedFrame> decoded;
  std::size_t begin = 0;
  std::vector<std::size_t> bounds = cuts;
  bounds.push_back(stream.size());
  for (std::size_t end : bounds) {
    decoder.feed(common::BytesView(stream.data() + begin, end - begin));
    for (;;) {
      auto frame = decoder.next();
      EXPECT_TRUE(frame.ok()) << frame.error().to_string();
      if (!frame.ok() || !frame.value().has_value()) break;
      decoded.push_back(
          {frame.value()->from,
           common::Bytes(frame.value()->payload.begin(),
                         frame.value()->payload.end())});
    }
    begin = end;
  }
  return decoded;
}

void expect_same(const std::vector<ExpectedFrame>& actual,
                 const std::vector<ExpectedFrame>& expected,
                 const std::string& label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].from, expected[i].from) << label << " frame " << i;
    EXPECT_EQ(actual[i].payload, expected[i].payload)
        << label << " frame " << i;
  }
}

TEST(FrameCodecTest, SplitAtEveryOffsetRecoversTheStream) {
  const std::vector<ExpectedFrame> frames = test_frames();
  const common::Bytes stream = encode_stream(frames);
  // Two-chunk delivery with the boundary at every byte offset: exercises a
  // header split at each of its 8 positions and a payload split everywhere
  // else. O(n^2) in stream size, so the large frame keeps this meaningful
  // without making it slow.
  for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
    expect_same(decode_chunked(stream, {cut}), frames,
                "cut at " + std::to_string(cut));
  }
}

TEST(FrameCodecTest, ByteAtATimeRecoversTheStream) {
  const std::vector<ExpectedFrame> frames = test_frames();
  const common::Bytes stream = encode_stream(frames);
  std::vector<std::size_t> cuts;
  for (std::size_t i = 1; i < stream.size(); ++i) cuts.push_back(i);
  expect_same(decode_chunked(stream, cuts), frames, "byte-at-a-time");
}

TEST(FrameCodecTest, CoalescedSingleChunkRecoversTheStream) {
  const std::vector<ExpectedFrame> frames = test_frames();
  const common::Bytes stream = encode_stream(frames);
  expect_same(decode_chunked(stream, {}), frames, "coalesced");
}

TEST(FrameCodecTest, StraddlingFramesSurvivePooledBufferReuse) {
  // The hubs recycle ONE receive buffer across reads: after next() returns
  // nullopt the previous chunk's storage is overwritten by the next recv.
  // Frames that straddled the boundary must have been stashed, not
  // borrowed. Simulated here by copying each chunk into the same reused
  // buffer and poisoning it before the next feed.
  const std::vector<ExpectedFrame> frames = test_frames();
  const common::Bytes stream = encode_stream(frames);
  for (const std::size_t chunk_size : {1u, 3u, 7u, 64u, 1000u}) {
    FrameDecoder decoder;
    std::vector<ExpectedFrame> decoded;
    common::Bytes recv_buffer(chunk_size);
    for (std::size_t begin = 0; begin < stream.size(); begin += chunk_size) {
      const std::size_t len = std::min(chunk_size, stream.size() - begin);
      // Poison, then fill: any stale borrowed view would read garbage.
      std::fill(recv_buffer.begin(), recv_buffer.end(),
                static_cast<unsigned char>(0xEE));
      std::memcpy(recv_buffer.data(), stream.data() + begin, len);
      decoder.feed(common::BytesView(recv_buffer.data(), len));
      for (;;) {
        auto frame = decoder.next();
        ASSERT_TRUE(frame.ok()) << frame.error().to_string();
        if (!frame.value().has_value()) break;
        decoded.push_back(
            {frame.value()->from,
             common::Bytes(frame.value()->payload.begin(),
                           frame.value()->payload.end())});
      }
    }
    expect_same(decoded, frames, "chunk size " + std::to_string(chunk_size));
    EXPECT_EQ(decoder.buffered(), 0u) << "chunk size " << chunk_size;
  }
}

TEST(FrameCodecTest, HelloFramesDecodeStudyIds) {
  FrameDecoder decoder;
  common::Bytes stream = encode_hello(3, 0);
  const common::Bytes named = encode_hello(4, 0x1122334455667788ULL);
  stream.insert(stream.end(), named.begin(), named.end());
  decoder.feed(common::BytesView(stream.data(), stream.size()));

  auto classic = decoder.next();
  ASSERT_TRUE(classic.ok());
  ASSERT_TRUE(classic.value().has_value());
  EXPECT_EQ(classic.value()->from, 3u);
  EXPECT_TRUE(classic.value()->is_hello());
  ASSERT_TRUE(classic.value()->hello_study().has_value());
  EXPECT_EQ(*classic.value()->hello_study(), 0u);

  auto multiplexed = decoder.next();
  ASSERT_TRUE(multiplexed.ok());
  ASSERT_TRUE(multiplexed.value().has_value());
  EXPECT_EQ(multiplexed.value()->from, 4u);
  ASSERT_TRUE(multiplexed.value()->hello_study().has_value());
  EXPECT_EQ(*multiplexed.value()->hello_study(), 0x1122334455667788ULL);
}

TEST(FrameCodecTest, MalformedHeaderIsUnrecoverable) {
  // len < 4 cannot cover the from field.
  {
    FrameDecoder decoder;
    const common::Bytes bad = {0x03, 0, 0, 0, 1, 0, 0, 0};
    decoder.feed(common::BytesView(bad.data(), bad.size()));
    EXPECT_FALSE(decoder.next().ok());
  }
  // A length over kMaxFramePayload is corruption, not an allocation request.
  {
    FrameDecoder decoder;
    common::Bytes bad(kFrameHeaderBytes, 0);
    const std::uint32_t len = kMaxFramePayload + 4 + 1;
    std::memcpy(bad.data(), &len, sizeof(len));
    decoder.feed(common::BytesView(bad.data(), bad.size()));
    EXPECT_FALSE(decoder.next().ok());
  }
  // The malformed header is detected even when it arrives a byte at a time.
  {
    FrameDecoder decoder;
    const common::Bytes bad = {0x02, 0, 0, 0, 1, 0, 0, 0};
    bool failed = false;
    for (unsigned char byte : bad) {
      decoder.feed(common::BytesView(&byte, 1));
      auto frame = decoder.next();
      if (!frame.ok()) {
        failed = true;
        break;
      }
      EXPECT_FALSE(frame.value().has_value());
    }
    EXPECT_TRUE(failed);
  }
}

TEST(FrameCodecTest, EncodedHeaderRoundTrips) {
  const auto header = encode_frame_header(0xCAFEBABE, 12);
  FrameDecoder decoder;
  common::Bytes frame(header.begin(), header.end());
  frame.resize(frame.size() + 12, 0x5A);
  decoder.feed(common::BytesView(frame.data(), frame.size()));
  auto decoded = decoder.next();
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(decoded.value().has_value());
  EXPECT_EQ(decoded.value()->from, 0xCAFEBABEu);
  EXPECT_EQ(decoded.value()->payload.size(), 12u);
}

}  // namespace
}  // namespace gendpr::wire
