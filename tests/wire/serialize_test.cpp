#include "wire/serialize.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"

namespace gendpr::wire {
namespace {

using common::Bytes;

TEST(WriterTest, FixedWidthLittleEndian) {
  Writer w;
  w.u8(0x01);
  w.u16(0x0203);
  w.u32(0x04050607);
  w.u64(0x08090a0b0c0d0e0fULL);
  const Bytes expected = {0x01, 0x03, 0x02, 0x07, 0x06, 0x05, 0x04,
                          0x0f, 0x0e, 0x0d, 0x0c, 0x0b, 0x0a, 0x09, 0x08};
  EXPECT_EQ(w.buffer(), expected);
}

TEST(WriterTest, VarintEncodings) {
  {
    Writer w;
    w.varint(0);
    EXPECT_EQ(w.buffer(), (Bytes{0x00}));
  }
  {
    Writer w;
    w.varint(127);
    EXPECT_EQ(w.buffer(), (Bytes{0x7f}));
  }
  {
    Writer w;
    w.varint(128);
    EXPECT_EQ(w.buffer(), (Bytes{0x80, 0x01}));
  }
  {
    Writer w;
    w.varint(300);
    EXPECT_EQ(w.buffer(), (Bytes{0xac, 0x02}));
  }
}

TEST(ReaderTest, FixedWidthRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  Reader r(w.buffer());
  EXPECT_EQ(r.u8().value(), 0xab);
  EXPECT_EQ(r.u16().value(), 0xbeef);
  EXPECT_EQ(r.u32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.u64().value(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.exhausted());
}

TEST(ReaderTest, VarintRoundTripSweep) {
  for (std::uint64_t v :
       {0ULL, 1ULL, 127ULL, 128ULL, 300ULL, 16383ULL, 16384ULL,
        0xffffffffULL, 0xffffffffffffffffULL}) {
    Writer w;
    w.varint(v);
    Reader r(w.buffer());
    EXPECT_EQ(r.varint().value(), v);
  }
}

TEST(ReaderTest, F64RoundTrip) {
  for (double v : {0.0, 1.0, -1.5, 3.141592653589793, 1e-300, 1e300,
                   std::numeric_limits<double>::infinity()}) {
    Writer w;
    w.f64(v);
    Reader r(w.buffer());
    EXPECT_EQ(r.f64().value(), v);
  }
}

TEST(ReaderTest, F64NanRoundTrip) {
  Writer w;
  w.f64(std::nan(""));
  Reader r(w.buffer());
  EXPECT_TRUE(std::isnan(r.f64().value()));
}

TEST(ReaderTest, BytesAndStringRoundTrip) {
  Writer w;
  w.bytes(Bytes{1, 2, 3});
  w.string("hello");
  w.bytes({});
  Reader r(w.buffer());
  EXPECT_EQ(r.bytes().value(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.string().value(), "hello");
  EXPECT_TRUE(r.bytes().value().empty());
  EXPECT_TRUE(r.exhausted());
}

TEST(ReaderTest, VectorRoundTrips) {
  Writer w;
  w.vector_u32({1, 2, 3, 0xffffffff});
  w.vector_u64({42, 0xffffffffffffffffULL});
  w.vector_f64({0.5, -2.5, 1e10});
  Reader r(w.buffer());
  EXPECT_EQ(r.vector_u32().value(),
            (std::vector<std::uint32_t>{1, 2, 3, 0xffffffff}));
  EXPECT_EQ(r.vector_u64().value(),
            (std::vector<std::uint64_t>{42, 0xffffffffffffffffULL}));
  EXPECT_EQ(r.vector_f64().value(), (std::vector<double>{0.5, -2.5, 1e10}));
}

TEST(ReaderTest, EmptyVectors) {
  Writer w;
  w.vector_u32({});
  w.vector_f64({});
  Reader r(w.buffer());
  EXPECT_TRUE(r.vector_u32().value().empty());
  EXPECT_TRUE(r.vector_f64().value().empty());
}

TEST(ReaderTest, TruncatedFixedWidthFails) {
  const Bytes short_buf = {0x01, 0x02};
  Reader r(short_buf);
  EXPECT_FALSE(r.u32().ok());
  // Cursor unchanged: a smaller read still works.
  EXPECT_TRUE(r.u16().ok());
}

TEST(ReaderTest, TruncatedBytesBodyFails) {
  Writer w;
  w.varint(100);  // claims 100 bytes follow
  w.raw(Bytes{1, 2, 3});
  Reader r(w.buffer());
  const auto result = r.bytes();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, common::Errc::bad_message);
}

TEST(ReaderTest, TruncatedVectorFails) {
  Writer w;
  w.varint(1000000);  // absurd element count
  Reader r(w.buffer());
  EXPECT_FALSE(r.vector_u32().ok());
}

TEST(ReaderTest, MaliciousVarintOverflowFails) {
  // 11 continuation bytes exceed the 64-bit range.
  const Bytes evil(11, 0xff);
  Reader r(evil);
  EXPECT_FALSE(r.varint().ok());
}

TEST(ReaderTest, RawReadsExactCount) {
  const Bytes data = {9, 8, 7, 6};
  Reader r(data);
  EXPECT_EQ(r.raw(2).value(), (Bytes{9, 8}));
  EXPECT_EQ(r.remaining(), 2u);
  EXPECT_FALSE(r.raw(3).ok());
  EXPECT_EQ(r.raw(2).value(), (Bytes{7, 6}));
}

// Property: random message round trips through writer/reader.
class SerializeFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(SerializeFuzzTest, RandomRoundTrip) {
  common::Rng rng(GetParam());
  std::vector<std::uint64_t> u64s;
  std::vector<double> f64s;
  Bytes blob;
  const std::size_t n = rng.uniform_int(50);
  for (std::size_t i = 0; i < n; ++i) {
    u64s.push_back(rng.next());
    f64s.push_back(rng.normal());
    blob.push_back(static_cast<std::uint8_t>(rng.next()));
  }
  Writer w;
  w.vector_u64(u64s);
  w.vector_f64(f64s);
  w.bytes(blob);
  Reader r(w.buffer());
  EXPECT_EQ(r.vector_u64().value(), u64s);
  EXPECT_EQ(r.vector_f64().value(), f64s);
  EXPECT_EQ(r.bytes().value(), blob);
  EXPECT_TRUE(r.exhausted());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeFuzzTest, ::testing::Range(0, 16));

}  // namespace
}  // namespace gendpr::wire
