// Allocation-regression gate for the pooled send path. This binary installs
// a counting global operator new, warms a BufferPool, then drives the exact
// steady-state send sequence the sessions run — acquire a record buffer,
// serialize in place, AEAD-seal in place, frame, return to the pool — and
// asserts the whole cycle costs at most one heap allocation per frame
// (budgeted for the pool's freelist bookkeeping; the frame bytes themselves
// must never allocate once the pool is warm).
//
// Lives in its own test binary: the operator new/delete replacement is
// process-global, and no other test should run under it.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "common/bytes.hpp"
#include "tee/secure_channel.hpp"
#include "wire/buffer_pool.hpp"
#include "wire/frame.hpp"
#include "wire/serialize.hpp"

namespace {

std::atomic<std::uint64_t> g_heap_allocs{0};

}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

// GCC pairs these replacements against the inlined defaults and warns about
// the malloc/free crossover; the pairing here is exactly new->malloc,
// delete->free, so the warning is a false positive.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
#pragma GCC diagnostic pop

namespace gendpr::wire {
namespace {

struct ChannelFixture {
  tee::QuotingAuthority authority{std::array<std::uint8_t, 32>{0x42}};
  tee::Measurement module = tee::measure("gendpr.trusted", "1.0");
  crypto::Csprng rng_a{std::array<std::uint8_t, 32>{1}};
  crypto::Csprng rng_b{std::array<std::uint8_t, 32>{2}};
};

TEST(WireAllocTest, SteadyStateSendPathIsAtMostOneAllocPerFrame) {
  ChannelFixture f;
  tee::SecureChannel sender(f.authority, {1, f.module}, f.module, true,
                            f.rng_a);
  tee::SecureChannel receiver(f.authority, {2, f.module}, f.module, false,
                              f.rng_b);
  ASSERT_TRUE(sender.complete(receiver.handshake_message()).ok());
  ASSERT_TRUE(receiver.complete(sender.handshake_message()).ok());

  BufferPool pool(8);
  common::Bytes body(256);
  for (std::size_t i = 0; i < body.size(); ++i) {
    body[i] = static_cast<unsigned char>(i);
  }
  const common::BytesView body_view(body.data(), body.size());

  // One full send-path cycle; the WireBuffer's destructor at scope exit
  // hands the storage back to the pool, exactly like the hub does after
  // the kernel accepts the frame.
  const auto send_one = [&] {
    WireBuffer buf = WireBuffer::for_record(pool, 1 + body_view.size());
    Writer w(std::move(buf).release_storage());
    w.u8(0x05);
    w.raw(body_view);
    buf.adopt_storage(std::move(w).take());
    ASSERT_TRUE(sender.seal_in_place(buf).ok());
    buf.finish_frame(1);
    ASSERT_EQ(buf.frame().size(), wire::kFrameHeaderBytes + WireBuffer::kSeqBytes +
                                      1 + body_view.size() + 16);
  };

  // Warm-up: first acquisitions miss the freelist and size the storage.
  for (int i = 0; i < 32; ++i) send_one();
  const BufferPool::Stats warm = pool.stats();
  EXPECT_GT(warm.hits, 0u);

  constexpr std::uint64_t kFrames = 512;
  const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (std::uint64_t i = 0; i < kFrames; ++i) send_one();
  const std::uint64_t allocs =
      g_heap_allocs.load(std::memory_order_relaxed) - before;

  // The gate: at most one allocation per steady-state frame. In practice
  // the pooled path is allocation-free; the budget absorbs freelist deque
  // block churn without letting a per-frame copy or re-serialization back
  // in (any such regression costs at least one allocation per frame plus
  // whatever it copies).
  EXPECT_LE(allocs, kFrames) << "send path allocates per frame again";

  const BufferPool::Stats steady = pool.stats();
  EXPECT_EQ(steady.misses, warm.misses)
      << "steady-state acquisitions fell out of the freelist";
  EXPECT_EQ(steady.copies, warm.copies)
      << "a compatibility copy crept into the pooled path";
  EXPECT_EQ(steady.outstanding, 0u);
}

TEST(WireAllocTest, PooledAcquireReusesGrownCapacity) {
  BufferPool pool(4);
  const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  {
    common::Bytes storage = pool.acquire(64 * 1024);
    storage.resize(64 * 1024);
    pool.release(std::move(storage));
  }
  const std::uint64_t first =
      g_heap_allocs.load(std::memory_order_relaxed) - before;
  EXPECT_GT(first, 0u);  // cold acquisition really allocates

  const std::uint64_t mid = g_heap_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 100; ++i) {
    common::Bytes storage = pool.acquire(64 * 1024);
    pool.release(std::move(storage));
  }
  const std::uint64_t reuse =
      g_heap_allocs.load(std::memory_order_relaxed) - mid;
  EXPECT_EQ(reuse, 0u) << "warm pool acquisitions must not allocate";

  const BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 100u);
}

}  // namespace
}  // namespace gendpr::wire
