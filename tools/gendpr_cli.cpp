// gendpr - command-line front end for the library.
//
// Subcommands:
//   gendpr gen <dir> [--cases N] [--controls N] [--snps L] [--gdos G]
//          [--seed S]
//       Generates a synthetic cohort, splits the cases into per-GDO signed
//       VCF-lite files under <dir> (plus the reference panel), and writes a
//       roster manifest.
//   gendpr assess <dir> [--gdos G] [--f F | --conservative] [--maf C]
//          [--ld C] [--fpr R] [--power P] [--seed S] [--tile-width W]
//          [--epc-mb M]
//       Loads the cohort from <dir>, verifies dataset signatures, runs the
//       federated assessment, and prints the per-phase outcome.
//   gendpr release <dir> [--out FILE] [--dp-epsilon E] [assess flags]
//       Runs the assessment and writes the released GWAS statistics (TSV);
//       with --dp-epsilon also publishes the withheld complement under DP
//       (the paper's §5.5 hybrid release).
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "gendpr/baselines.hpp"
#include "gendpr/federation.hpp"
#include "gendpr/release.hpp"
#include "gendpr/report.hpp"
#include "genome/vcf_lite.hpp"
#include "obs/observability.hpp"

namespace {

using namespace gendpr;

struct Args {
  std::string command;
  std::string dir;
  std::size_t cases = 2000;
  std::size_t controls = 2000;
  std::size_t snps = 500;
  std::uint32_t gdos = 3;
  std::uint64_t seed = 1;
  std::optional<unsigned> f;
  bool conservative = false;
  core::StudyConfig config;
  std::uint64_t epc_limit = tee::EpcMeter::kDefaultLimitBytes;
  std::optional<double> dp_epsilon;
  std::string out = "release.tsv";
  std::string report;
  std::string transport;  // "", "in_process", "epoll", "uring"
  std::uint32_t event_loops = 1;
};

void usage() {
  std::fprintf(stderr,
               "usage: gendpr <gen|assess|release> <dir> [options]\n"
               "  gen:     --cases N --controls N --snps L --gdos G --seed S\n"
               "  assess:  --gdos G [--f F | --conservative] --maf C --ld C\n"
               "           --fpr R --power P --seed S --report FILE\n"
               "           --tile-width W (SNPs per pipeline tile, 0 = off)\n"
               "           --epc-mb M (per-enclave EPC limit, MiB)\n"
               "           --no-prune (disable intersection-aware sweep "
               "pruning)\n"
               "           --transport in_process|epoll|uring "
               "--event-loops N\n"
               "  release: assess options plus --out FILE --dp-epsilon E\n");
}

bool parse_args(int argc, char** argv, Args& args) {
  if (argc < 3) return false;
  args.command = argv[1];
  args.dir = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (flag == "--conservative") {
      args.conservative = true;
    } else if (flag == "--no-prune") {
      args.config.prune = false;
    } else if ((value = next()) == nullptr) {
      return false;
    } else if (flag == "--cases") {
      args.cases = std::strtoul(value, nullptr, 10);
    } else if (flag == "--controls") {
      args.controls = std::strtoul(value, nullptr, 10);
    } else if (flag == "--snps") {
      args.snps = std::strtoul(value, nullptr, 10);
    } else if (flag == "--gdos") {
      args.gdos = static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--seed") {
      args.seed = std::strtoull(value, nullptr, 10);
    } else if (flag == "--f") {
      args.f = static_cast<unsigned>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--maf") {
      args.config.maf_cutoff = std::atof(value);
    } else if (flag == "--ld") {
      args.config.ld_cutoff = std::atof(value);
    } else if (flag == "--fpr") {
      args.config.lr_false_positive_rate = std::atof(value);
    } else if (flag == "--power") {
      args.config.lr_power_threshold = std::atof(value);
    } else if (flag == "--tile-width") {
      args.config.snp_tile_width =
          static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--epc-mb") {
      args.epc_limit = std::strtoull(value, nullptr, 10) * 1024 * 1024;
    } else if (flag == "--dp-epsilon") {
      args.dp_epsilon = std::atof(value);
    } else if (flag == "--out") {
      args.out = value;
    } else if (flag == "--report") {
      args.report = value;
    } else if (flag == "--transport") {
      args.transport = value;
    } else if (flag == "--event-loops") {
      args.event_loops =
          static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

std::string slice_path(const std::string& dir, std::uint32_t g) {
  return dir + "/gdo" + std::to_string(g) + ".vcf";
}

std::string reference_path(const std::string& dir) {
  return dir + "/reference.vcf";
}

common::Bytes roster_key() {
  return common::to_bytes("gendpr-cli-roster-key-v1");
}

int cmd_gen(const Args& args) {
  genome::CohortSpec spec;
  spec.num_case = args.cases;
  spec.num_control = args.controls;
  spec.num_snps = args.snps;
  spec.seed = args.seed;
  std::printf("generating %zu cases + %zu controls x %zu SNPs (seed %llu)\n",
              spec.num_case, spec.num_control, spec.num_snps,
              static_cast<unsigned long long>(spec.seed));
  const genome::Cohort cohort = genome::generate_cohort(spec);

  std::vector<std::string> ids;
  for (std::size_t l = 0; l < args.snps; ++l) {
    ids.push_back("rs" + std::to_string(l));
  }
  const auto ranges = genome::equal_partition(args.cases, args.gdos);
  for (std::uint32_t g = 0; g < args.gdos; ++g) {
    genome::VcfLite vcf;
    vcf.snp_ids = ids;
    vcf.genotypes = cohort.cases.slice_rows(ranges[g].first, ranges[g].second);
    const std::string path = slice_path(args.dir, g);
    if (auto s = genome::write_vcf_lite_file(path, vcf); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.error().to_string().c_str());
      return 1;
    }
    const genome::DatasetManifest manifest = genome::sign_dataset(
        "gdo" + std::to_string(g), genome::write_vcf_lite(vcf), roster_key());
    std::printf("  wrote %s (%zu genomes, digest %s...)\n", path.c_str(),
                vcf.genotypes.num_individuals(),
                common::to_hex(common::BytesView(
                                   manifest.content_digest.data(), 6))
                    .c_str());
  }
  genome::VcfLite reference;
  reference.snp_ids = ids;
  reference.genotypes = cohort.controls;
  if (auto s = genome::write_vcf_lite_file(reference_path(args.dir), reference);
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.error().to_string().c_str());
    return 1;
  }
  std::printf("  wrote %s (%zu genomes)\n", reference_path(args.dir).c_str(),
              args.controls);
  return 0;
}

common::Result<genome::Cohort> load_cohort(const Args& args) {
  genome::Cohort cohort;
  std::vector<genome::GenotypeMatrix> slices;
  std::size_t total = 0;
  std::size_t snps = 0;
  for (std::uint32_t g = 0; g < args.gdos; ++g) {
    auto vcf = genome::read_vcf_lite_file(slice_path(args.dir, g));
    if (!vcf.ok()) return vcf.error();
    total += vcf.value().genotypes.num_individuals();
    snps = vcf.value().genotypes.num_snps();
    slices.push_back(vcf.value().genotypes);
  }
  cohort.cases = genome::GenotypeMatrix(total, snps);
  std::size_t row = 0;
  for (const auto& slice : slices) {
    for (std::size_t n = 0; n < slice.num_individuals(); ++n, ++row) {
      for (std::size_t l = 0; l < snps; ++l) {
        cohort.cases.set(row, l, slice.get(n, l));
      }
    }
  }
  auto reference = genome::read_vcf_lite_file(reference_path(args.dir));
  if (!reference.ok()) return reference.error();
  cohort.controls = reference.value().genotypes;
  return cohort;
}

common::Result<core::StudyResult> run_assessment(const Args& args,
                                                 const genome::Cohort& cohort,
                                                 obs::Observability* obs) {
  core::FederationSpec spec;
  spec.num_gdos = args.gdos;
  spec.config = args.config;
  spec.seed = args.seed;
  spec.epc_limit = args.epc_limit;
  spec.obs = obs;
  spec.event_loops = args.event_loops == 0 ? 1 : args.event_loops;
  if (args.transport == "epoll") {
    spec.transport = core::FederationSpec::TransportMode::epoll;
  } else if (args.transport == "uring") {
    spec.transport = core::FederationSpec::TransportMode::uring;
  } else if (args.transport == "in_process") {
    spec.transport = core::FederationSpec::TransportMode::in_process;
  } else if (!args.transport.empty()) {
    std::fprintf(stderr, "unknown --transport '%s', using in_process\n",
                 args.transport.c_str());
  }
  if (args.conservative) {
    spec.policy = core::CollusionPolicy::conservative();
  } else if (args.f.has_value()) {
    spec.policy = core::CollusionPolicy::fixed(*args.f);
  }
  return core::run_federated_study(cohort, spec);
}

// Serializes the run report when --report was given; returns false on an
// unwritable path so the command exits non-zero (CI depends on that).
bool maybe_write_report(const Args& args, const core::StudyResult& result,
                        const obs::Observability& obs) {
  if (args.report.empty()) return true;
  core::ReportContext context;
  context.obs = &obs;
  context.study_id = args.seed;
  const auto status =
      core::write_run_report(args.report, core::make_run_report(result, context));
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.error().to_string().c_str());
    return false;
  }
  std::printf("wrote run report %s\n", args.report.c_str());
  return true;
}

int cmd_assess(const Args& args) {
  auto cohort = load_cohort(args);
  if (!cohort.ok()) {
    std::fprintf(stderr, "%s\n", cohort.error().to_string().c_str());
    return 1;
  }
  obs::Observability observability;
  auto result = run_assessment(args, cohort.value(), &observability);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.error().to_string().c_str());
    return 1;
  }
  const auto& r = result.value();
  std::printf("federation: %u GDOs, leader GDO %u, %zu combination(s)\n",
              args.gdos, r.leader_gdo, r.num_combinations);
  std::printf("phase 1 (MAF %.3g):        %zu SNPs retained\n",
              args.config.maf_cutoff, r.outcome.l_prime.size());
  std::printf("phase 2 (LD p<%.3g):       %zu SNPs retained\n",
              args.config.ld_cutoff, r.outcome.l_double_prime.size());
  std::printf("phase 3 (power<=%.2f@%.2f): %zu SNPs safe "
              "(residual power %.3f)\n",
              args.config.lr_power_threshold,
              args.config.lr_false_positive_rate, r.outcome.l_safe.size(),
              r.outcome.final_power);
  std::printf("time: %.1f ms (modelled multi-host: %.1f ms); network %.1f KB\n",
              r.timings.total_ms, r.modelled_distributed_ms,
              static_cast<double>(r.network_bytes_total) / 1024.0);
  if (!maybe_write_report(args, r, observability)) return 1;
  return 0;
}

int cmd_release(const Args& args) {
  auto cohort = load_cohort(args);
  if (!cohort.ok()) {
    std::fprintf(stderr, "%s\n", cohort.error().to_string().c_str());
    return 1;
  }
  obs::Observability observability;
  auto result = run_assessment(args, cohort.value(), &observability);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.error().to_string().c_str());
    return 1;
  }
  core::ReleaseOptions options;
  options.dp_epsilon = args.dp_epsilon;
  options.dp_seed = args.seed;
  const core::Release release =
      core::build_release(cohort.value().cases, cohort.value().controls,
                          result.value().outcome.l_safe, options);
  std::FILE* out = std::fopen(args.out.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", args.out.c_str());
    return 1;
  }
  const std::string tsv = core::release_to_tsv(release);
  std::fwrite(tsv.data(), 1, tsv.size(), out);
  std::fclose(out);
  std::printf("wrote %s: %zu exact rows", args.out.c_str(),
              release.noise_free_count);
  if (args.dp_epsilon.has_value()) {
    std::printf(" + %zu DP rows (epsilon %.3g)", release.dp_count,
                *args.dp_epsilon);
  }
  std::printf("\n");
  if (!maybe_write_report(args, result.value(), observability)) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) {
    usage();
    return 2;
  }
  if (args.command == "gen") return cmd_gen(args);
  if (args.command == "assess") return cmd_assess(args);
  if (args.command == "release") return cmd_release(args);
  usage();
  return 2;
}
