#!/usr/bin/env python3
"""Compares a google-benchmark JSON run against a committed baseline.

Usage: compare_bench.py BASELINE.json CANDIDATE.json

Timings are machine- and scale-dependent, so they are never compared.
What must hold between a baseline committed at paper scale and a smoke run
at GENDPR_BENCH_SCALE<<1 is the *shape* of the result:

  * the candidate covers every benchmark name the baseline has (a vanished
    row means a sweep config was dropped or a bench silently errored);
  * no candidate row carries an error_occurred marker;
  * every user counter present in a baseline row is present in the matching
    candidate row (schema drift in the counters the paper tables are built
    from);
  * the pruning-ablation invariants hold within the candidate itself:
    prune on/off certify the same SafeSnps, and the pruned row does
    strictly less derivation and chi-squared work;
  * the work-conservation ledger balances: pruning may only convert full
    LR basis derivations (LrMatvecs) into cheaper rank-one delta updates
    (LrDeltaUpdates), never create or destroy work —
    on.LrMatvecs + on.LrDeltaUpdates == off.LrMatvecs, and the unpruned
    sweep performs no delta updates at all;
  * LD oracle traffic is monotone: the pruned sweep asks members for at
    most as many LD windows (LdMemberRequests) as the unpruned one.

Exits non-zero with a per-failure message on stderr.
"""

import json
import sys


def rows_by_name(doc):
    return {b["name"]: b for b in doc.get("benchmarks", [])}


def fail(msg, failures):
    print(f"FAIL {msg}", file=sys.stderr)
    failures.append(msg)


def check_ablation_invariants(rows, label, failures):
    off = rows.get("BM_Table5_PruningAblation/0/iterations:1")
    on = rows.get("BM_Table5_PruningAblation/1/iterations:1")
    if off is None or on is None:
        return  # not a table5 file
    if on.get("SafeSnps") != off.get("SafeSnps"):
        fail(
            f"{label}: pruned sweep changed the safe set "
            f"({on.get('SafeSnps')} != {off.get('SafeSnps')})",
            failures,
        )
    for counter in ("LrMatvecs", "Chi2Values"):
        if not on.get(counter, 0) < off.get(counter, float("inf")):
            fail(
                f"{label}: {counter} not reduced by pruning "
                f"({on.get(counter)} >= {off.get(counter)})",
                failures,
            )
    for counter in ("LdPairsFetched", "LdMemberRequests"):
        if not on.get(counter, 0) <= off.get(counter, 0):
            fail(
                f"{label}: {counter} grew under pruning "
                f"({on.get(counter)} > {off.get(counter)})",
                failures,
            )
    check_conservation(on, off, label, failures)


def check_conservation(on, off, label, failures):
    """Pruning converts matvecs into delta updates; it never invents work.

    Every combination the unpruned sweep derives with a full basis matvec
    must appear in the pruned sweep as either a matvec or a rank-one delta
    update — the ledger on.LrMatvecs + on.LrDeltaUpdates == off.LrMatvecs
    balances exactly. The unpruned sweep, having nothing to reuse, performs
    zero delta updates.
    """
    required = ("LrMatvecs", "LrDeltaUpdates")
    if any(row.get(c) is None for row in (on, off) for c in required):
        fail(f"{label}: conservation counters missing from ablation rows",
             failures)
        return
    if off["LrDeltaUpdates"] != 0:
        fail(
            f"{label}: unpruned sweep performed delta updates "
            f"({off['LrDeltaUpdates']} != 0)",
            failures,
        )
    total_on = on["LrMatvecs"] + on["LrDeltaUpdates"]
    if total_on != off["LrMatvecs"]:
        fail(
            f"{label}: LR work not conserved — pruned matvecs+deltas "
            f"{on['LrMatvecs']}+{on['LrDeltaUpdates']}={total_on} != "
            f"unpruned matvecs {off['LrMatvecs']}",
            failures,
        )


def check_wire_ablation(rows, label, failures):
    """Zero-copy frame-path invariants within a wire-ablation file.

    At every payload size the ablation runs both chains, and the pooled path
    must show its structural advantage regardless of machine or scale: at
    least a 2x reduction in payload passes per frame, and a steady state of
    at most one heap allocation per frame. The fan-out pair must keep the
    serialize-once contract (one serialization per broadcast, against one
    per peer on the legacy loop).
    """
    legacy_prefix = "BM_Wire_LegacyFramePath/"
    for name, legacy in rows.items():
        if not name.startswith(legacy_prefix):
            continue
        size = name[len(legacy_prefix):]
        pooled = rows.get(f"BM_Wire_PooledFramePath/{size}")
        if pooled is None:
            fail(f"{label}: no pooled row for payload size {size}", failures)
            continue
        legacy_copies = legacy.get("CopiesPerFrame", 0)
        pooled_copies = pooled.get("CopiesPerFrame", float("inf"))
        if not pooled_copies * 2 <= legacy_copies:
            fail(
                f"{label}: pooled path at {size} B lost the 2x copy "
                f"reduction ({pooled_copies} vs {legacy_copies})",
                failures,
            )
        if not pooled.get("AllocsPerFrame", float("inf")) <= 1:
            fail(
                f"{label}: pooled path at {size} B allocates "
                f"{pooled.get('AllocsPerFrame')} per steady-state frame",
                failures,
            )
    once_prefix = "BM_Wire_FanoutSerializeOnce/"
    for name, once in rows.items():
        if not name.startswith(once_prefix):
            continue
        size = name[len(once_prefix):]
        reserialize = rows.get(f"BM_Wire_FanoutReserialize/{size}")
        if once.get("SerializationsPerBroadcast") != 1:
            fail(
                f"{label}: staged broadcast at {size} B serialized "
                f"{once.get('SerializationsPerBroadcast')} times",
                failures,
            )
        if reserialize is not None and not (
            once.get("SerializationsPerBroadcast", float("inf"))
            < reserialize.get("SerializationsPerBroadcast", 0)
        ):
            fail(
                f"{label}: fan-out rows at {size} B do not contrast "
                f"serialize-once against per-peer serialization",
                failures,
            )


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    baseline_path, candidate_path = argv[1], argv[2]
    with open(baseline_path) as f:
        baseline = rows_by_name(json.load(f))
    with open(candidate_path) as f:
        candidate = rows_by_name(json.load(f))

    failures = []
    for name, base_row in baseline.items():
        cand_row = candidate.get(name)
        if cand_row is None:
            fail(f"{candidate_path}: benchmark '{name}' disappeared", failures)
            continue
        if cand_row.get("error_occurred"):
            fail(
                f"{candidate_path}: '{name}' errored: "
                f"{cand_row.get('error_message', '?')}",
                failures,
            )
            continue
        missing = [
            key
            for key, value in base_row.items()
            if isinstance(value, (int, float))
            and not isinstance(value, bool)
            and key
            not in (
                "real_time",
                "cpu_time",
                "iterations",
                "repetitions",
                "repetition_index",
                "family_index",
                "per_family_instance_index",
                "threads",
            )
            and key not in cand_row
        ]
        if missing:
            fail(
                f"{candidate_path}: '{name}' lost counters {missing}",
                failures,
            )
    check_ablation_invariants(candidate, candidate_path, failures)
    check_ablation_invariants(baseline, baseline_path, failures)
    check_wire_ablation(candidate, candidate_path, failures)
    check_wire_ablation(baseline, baseline_path, failures)

    if failures:
        print(f"{len(failures)} failure(s)", file=sys.stderr)
        return 1
    print(
        f"ok   {candidate_path}: {len(baseline)} baseline rows covered "
        f"({baseline_path})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
