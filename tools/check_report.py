#!/usr/bin/env python3
"""Validates gendpr.run_report.v2 documents (and BENCH_*.json smoke output).

Usage:
    tools/check_report.py report.json [more.json ...]

Files whose top-level object carries ``"schema": "gendpr.run_report.v2"``
are validated structurally: required sections, per-phase wall times, per-link
byte counts, per-GDO EPC peaks, the SIMD kernel backend, the tiling shape of
the pipelined phase engine, and — when a trace is embedded — that every
analysis phase appears exactly once, carries one ``maf.tile.<k>`` /
``lr.tile.<k>`` span per tile, and one combination span per combination in
the LD/LR phases. Google-benchmark JSON (``"benchmarks"`` array) gets a
shallow sanity check. Anything else is an error. Exits non-zero on the first
invalid file; stdlib only, so it runs anywhere CI has python3.
"""
import json
import sys

SCHEMA = "gendpr.run_report.v2"
PHASES = ("phase.maf", "phase.ld", "phase.lr")
PHASE_TIMINGS = ("aggregation_ms", "indexing_ms", "ld_ms", "lr_ms", "total_ms")
KERNEL_BACKENDS = ("portable", "avx2", "avx512")


class Invalid(Exception):
    pass


def require(condition, message):
    if not condition:
        raise Invalid(message)


def check_run_report(doc):
    require(doc.get("schema") == SCHEMA, f"schema is not {SCHEMA}")
    require(isinstance(doc.get("transport"), str), "missing transport label")

    study = doc.get("study")
    require(isinstance(study, dict), "missing study section")
    require(study.get("num_combinations", 0) >= 1, "no combinations recorded")
    require(study.get("num_gdos", 0) >= 1, "study.num_gdos missing")
    require(
        isinstance(study.get("combination_members_total"), int),
        "study.combination_members_total missing",
    )
    require(
        1 <= study.get("live_combinations", 0) <= study["num_combinations"],
        "study.live_combinations out of range",
    )
    selection = study.get("selection")
    require(isinstance(selection, dict), "missing study.selection")
    for key in ("l_prime", "l_double_prime", "l_safe"):
        require(isinstance(selection.get(key), int), f"selection.{key} missing")
    require(
        selection["l_safe"] <= selection["l_double_prime"] <= selection["l_prime"],
        "selection sets must shrink monotonically",
    )

    phases = doc.get("phases")
    require(isinstance(phases, dict), "missing phases section")
    for key in PHASE_TIMINGS:
        value = phases.get(key)
        require(
            isinstance(value, (int, float)) and value >= 0,
            f"phases.{key} missing or negative",
        )

    network = doc.get("network")
    require(isinstance(network, dict), "missing network section")
    require(network.get("total_bytes", 0) > 0, "no network traffic recorded")
    require(
        network.get("phase2_body_bytes", 0) > 0,
        "no phase-2 broadcast body recorded",
    )
    links = network.get("links")
    require(isinstance(links, list) and links, "missing per-link byte counts")
    for link in links:
        for key in ("from", "to", "bytes", "messages"):
            require(key in link, f"link entry missing {key}")
        require(link["bytes"] > 0, "per-link byte count is zero")

    epc = doc.get("epc")
    require(isinstance(epc, dict), "missing epc section")
    per_gdo = epc.get("per_gdo")
    require(isinstance(per_gdo, list) and per_gdo, "missing per-GDO EPC peaks")
    for entry in per_gdo:
        require("gdo" in entry and "peak_bytes" in entry, "bad per_gdo entry")
        require(entry["peak_bytes"] > 0, f"GDO {entry.get('gdo')} EPC peak is zero")
    limit = epc.get("limit_bytes", 0)
    if limit:
        for entry in per_gdo:
            require(
                entry["peak_bytes"] <= limit,
                f"GDO {entry['gdo']} EPC peak exceeds the configured limit",
            )

    crypto = doc.get("crypto")
    require(isinstance(crypto, dict), "missing crypto section")
    require(
        crypto.get("backend") in ("portable", "native"),
        f"crypto.backend {crypto.get('backend')!r} is not a known AEAD backend",
    )
    require(crypto.get("records_sealed", 0) > 0, "no AEAD records sealed")
    require(crypto.get("bytes_sealed", 0) > 0, "no AEAD bytes sealed")
    metrics = doc.get("metrics")
    if isinstance(metrics, dict):
        labels = metrics.get("labels", {})
        require(
            labels.get("crypto.backend") == crypto["backend"],
            "metrics crypto.backend label disagrees with the crypto section",
        )

    kernels = doc.get("kernels")
    require(isinstance(kernels, dict), "missing kernels section")
    require(
        kernels.get("backend") in KERNEL_BACKENDS,
        f"kernels.backend {kernels.get('backend')!r} is not a known backend",
    )
    if isinstance(metrics, dict):
        labels = metrics.get("labels", {})
        require(
            labels.get("kernel.backend") == kernels["backend"],
            "metrics kernel.backend label disagrees with the kernels section",
        )

    tiles = doc.get("tiles")
    require(isinstance(tiles, dict), "missing tiles section")
    require(tiles.get("count", 0) >= 1, "tiles.count must be at least 1")
    require(tiles.get("lr_count", 0) >= 1, "tiles.lr_count must be at least 1")
    width = tiles.get("width")
    require(isinstance(width, int) and width >= 0, "tiles.width missing")
    if width == 0:
        require(
            tiles["count"] == 1 and tiles["lr_count"] == 1,
            "monolithic run (width 0) must report exactly one tile per phase",
        )

    pipeline = doc.get("pipeline")
    require(isinstance(pipeline, dict), "missing pipeline section")
    inline_tiles = pipeline.get("maf_tiles_assessed_inline")
    require(isinstance(inline_tiles, int), "pipeline.maf_tiles_assessed_inline missing")
    require(
        inline_tiles <= tiles["count"],
        "more MAF tiles assessed inline than the plan has tiles",
    )
    for key in ("leader_inline_assess_ms", "leader_lr_derive_ms"):
        value = pipeline.get(key)
        require(
            isinstance(value, (int, float)) and value >= 0,
            f"pipeline.{key} missing or negative",
        )

    events = doc.get("events")
    require(isinstance(events, dict), "missing events section")
    require(isinstance(events.get("dead_gdos"), list), "missing events.dead_gdos")

    check_lr_counters(doc, study, tiles, degraded=bool(events["dead_gdos"]))

    trace = doc.get("trace")
    if trace is not None:
        check_trace(
            trace, study["num_combinations"], set(events["dead_gdos"]), tiles
        )


def check_lr_counters(doc, study, tiles, degraded):
    """LR-phase accounting invariants over the exported counters.

    Every node that receives a phase-2 tile expands one genotype-fixed LR
    basis over that tile's columns (``lr.basis_builds``) and derives one
    matrix slice per live combination it belongs to
    (``lr.combination_matvecs``). With T = tiles.lr_count, a clean run pins
    both counters exactly:
        basis_builds == num_gdos * T
        combination_matvecs == combination_members_total * T
    and the leader builds the reference panel's basis once per tile. A
    degraded run only bounds them: a member may build bases (and derive
    matrices) and then be declared dead afterwards, so the counters can
    reach the clean-run values but never pin to the post-mortem live set.
    """
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        return  # run was not observed; nothing to cross-check
    counters = metrics.get("counters")
    require(isinstance(counters, dict), "metrics.counters missing")
    basis = counters.get("lr.basis_builds", 0)
    matvecs = counters.get("lr.combination_matvecs", 0)
    num_gdos = study["num_gdos"]
    members_total = study["combination_members_total"]
    lr_tiles = tiles["lr_count"]
    if degraded:
        require(
            1 <= basis <= num_gdos * lr_tiles,
            f"lr.basis_builds {basis} outside [1, {num_gdos * lr_tiles}] "
            f"(degraded run)",
        )
        require(
            matvecs >= members_total * lr_tiles,
            f"lr.combination_matvecs {matvecs} below the live-combination "
            f"member-tile total {members_total * lr_tiles}",
        )
    else:
        require(
            basis == num_gdos * lr_tiles,
            f"lr.basis_builds {basis}: expected one basis build per GDO per "
            f"tile ({num_gdos} * {lr_tiles})",
        )
        require(
            matvecs == members_total * lr_tiles,
            f"lr.combination_matvecs {matvecs}: expected one derivation per "
            f"combination member per tile ({members_total} * {lr_tiles})",
        )
    require(
        counters.get("lr.reference_basis_builds", 0) == lr_tiles,
        "reference panel basis must be built exactly once per LR tile",
    )


def check_trace(trace, num_combinations, dead_gdos, tiles):
    require(isinstance(trace, list) and trace, "trace section is empty")
    by_name = {}
    for span in trace:
        for key in ("id", "name", "start_ms"):
            require(key in span, f"trace span missing {key}")
        require(span.get("duration_ms") is not None, f"span {span['name']} left open")
        by_name.setdefault(span["name"], []).append(span)

    require("study" in by_name, "trace has no root study span")
    require(len(by_name["study"]) == 1, "more than one study span")

    def check_children(phase, prefix, expected, exact):
        children = [name for name in by_name if name.startswith(prefix)]
        if exact:
            require(
                len(children) == expected,
                f"{phase}: {len(children)} {prefix}* spans, expected {expected}",
            )
        else:
            require(
                0 < len(children) <= expected,
                f"{phase}: {len(children)} {prefix}* spans, "
                f"expected at most {expected}",
            )
        for name in children:
            require(
                len(by_name[name]) == 1,
                f"{name} recorded {len(by_name[name])} times, expected once",
            )
            parent = by_name[name][0].get("parent")
            require(
                parent == by_name[phase][0]["id"],
                f"{name} is not a child of {phase}",
            )

    for phase in PHASES:
        require(phase in by_name, f"trace missing {phase}")
        require(len(by_name[phase]) == 1, f"{phase} recorded more than once")

    # The MAF phase is assessed per tile (combinations are an inner loop of
    # each tile span); the LD and LR phases keep per-combination spans, and
    # the LR phase additionally records the leader's per-tile derivations.
    # Combinations naming a dead GDO are skipped, so a degraded run may
    # trace fewer combination spans than the announced count — never more.
    # Tile spans are exact in either case: dead members drop out of the
    # readiness requirement, not the plan.
    check_children("phase.maf", "maf.tile.", tiles["count"], exact=True)
    check_children("phase.lr", "lr.tile.", tiles["lr_count"], exact=True)
    for phase in ("phase.ld", "phase.lr"):
        prefix = phase.split(".", 1)[1] + ".combination."
        check_children(phase, prefix, num_combinations, exact=not dead_gdos)


def check_google_benchmark(doc):
    benchmarks = doc.get("benchmarks")
    require(isinstance(benchmarks, list) and benchmarks, "no benchmarks recorded")
    for bench in benchmarks:
        require("name" in bench, "benchmark entry missing name")
        require(
            bench.get("error_occurred", False) is False,
            f"benchmark {bench.get('name')} reported an error",
        )


def check_file(path):
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    require(isinstance(doc, dict), "top-level JSON is not an object")
    if doc.get("schema") == SCHEMA:
        check_run_report(doc)
        return "run report"
    if "benchmarks" in doc:
        check_google_benchmark(doc)
        return "benchmark output"
    raise Invalid("neither a run report nor google-benchmark output")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv[1:]:
        try:
            kind = check_file(path)
        except (OSError, json.JSONDecodeError, Invalid) as error:
            print(f"FAIL {path}: {error}", file=sys.stderr)
            return 1
        print(f"ok   {path} ({kind})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
