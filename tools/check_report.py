#!/usr/bin/env python3
"""Validates gendpr.run_report.v1 documents (and BENCH_*.json smoke output).

Usage:
    tools/check_report.py report.json [more.json ...]

Files whose top-level object carries ``"schema": "gendpr.run_report.v1"``
are validated structurally: required sections, per-phase wall times, per-link
byte counts, per-GDO EPC peaks, and — when a trace is embedded — that every
analysis phase appears exactly once and carries one combination span per
combination. Google-benchmark JSON (``"benchmarks"`` array) gets a shallow
sanity check. Anything else is an error. Exits non-zero on the first
invalid file; stdlib only, so it runs anywhere CI has python3.
"""
import json
import sys

SCHEMA = "gendpr.run_report.v1"
PHASES = ("phase.maf", "phase.ld", "phase.lr")
PHASE_TIMINGS = ("aggregation_ms", "indexing_ms", "ld_ms", "lr_ms", "total_ms")


class Invalid(Exception):
    pass


def require(condition, message):
    if not condition:
        raise Invalid(message)


def check_run_report(doc):
    require(doc.get("schema") == SCHEMA, f"schema is not {SCHEMA}")
    require(isinstance(doc.get("transport"), str), "missing transport label")

    study = doc.get("study")
    require(isinstance(study, dict), "missing study section")
    require(study.get("num_combinations", 0) >= 1, "no combinations recorded")
    require(study.get("num_gdos", 0) >= 1, "study.num_gdos missing")
    require(
        isinstance(study.get("combination_members_total"), int),
        "study.combination_members_total missing",
    )
    require(
        1 <= study.get("live_combinations", 0) <= study["num_combinations"],
        "study.live_combinations out of range",
    )
    selection = study.get("selection")
    require(isinstance(selection, dict), "missing study.selection")
    for key in ("l_prime", "l_double_prime", "l_safe"):
        require(isinstance(selection.get(key), int), f"selection.{key} missing")
    require(
        selection["l_safe"] <= selection["l_double_prime"] <= selection["l_prime"],
        "selection sets must shrink monotonically",
    )

    phases = doc.get("phases")
    require(isinstance(phases, dict), "missing phases section")
    for key in PHASE_TIMINGS:
        value = phases.get(key)
        require(
            isinstance(value, (int, float)) and value >= 0,
            f"phases.{key} missing or negative",
        )

    network = doc.get("network")
    require(isinstance(network, dict), "missing network section")
    require(network.get("total_bytes", 0) > 0, "no network traffic recorded")
    require(
        network.get("phase2_body_bytes", 0) > 0,
        "no phase-2 broadcast body recorded",
    )
    links = network.get("links")
    require(isinstance(links, list) and links, "missing per-link byte counts")
    for link in links:
        for key in ("from", "to", "bytes", "messages"):
            require(key in link, f"link entry missing {key}")
        require(link["bytes"] > 0, "per-link byte count is zero")

    epc = doc.get("epc")
    require(isinstance(epc, dict), "missing epc section")
    per_gdo = epc.get("per_gdo")
    require(isinstance(per_gdo, list) and per_gdo, "missing per-GDO EPC peaks")
    for entry in per_gdo:
        require("gdo" in entry and "peak_bytes" in entry, "bad per_gdo entry")
        require(entry["peak_bytes"] > 0, f"GDO {entry.get('gdo')} EPC peak is zero")
    limit = epc.get("limit_bytes", 0)
    if limit:
        for entry in per_gdo:
            require(
                entry["peak_bytes"] <= limit,
                f"GDO {entry['gdo']} EPC peak exceeds the configured limit",
            )

    crypto = doc.get("crypto")
    require(isinstance(crypto, dict), "missing crypto section")
    require(
        crypto.get("backend") in ("portable", "native"),
        f"crypto.backend {crypto.get('backend')!r} is not a known AEAD backend",
    )
    require(crypto.get("records_sealed", 0) > 0, "no AEAD records sealed")
    require(crypto.get("bytes_sealed", 0) > 0, "no AEAD bytes sealed")
    metrics = doc.get("metrics")
    if isinstance(metrics, dict):
        labels = metrics.get("labels", {})
        require(
            labels.get("crypto.backend") == crypto["backend"],
            "metrics crypto.backend label disagrees with the crypto section",
        )

    events = doc.get("events")
    require(isinstance(events, dict), "missing events section")
    require(isinstance(events.get("dead_gdos"), list), "missing events.dead_gdos")

    check_lr_counters(doc, study, degraded=bool(events["dead_gdos"]))

    trace = doc.get("trace")
    if trace is not None:
        check_trace(trace, study["num_combinations"], set(events["dead_gdos"]))


def check_lr_counters(doc, study, degraded):
    """LR-phase accounting invariants over the exported counters.

    Every node that receives the phase-2 per-GDO counts expands exactly one
    genotype-fixed LR basis (``lr.basis_builds``) and derives one matrix per
    live combination it belongs to (``lr.combination_matvecs``). On a clean
    run that pins both counters exactly:
        basis_builds == num_gdos
        combination_matvecs == combination_members_total
    A degraded run only bounds them: a member may build its basis (and derive
    its matrices) and then be declared dead afterwards, so the counters can
    reach the clean-run values but never pin to the post-mortem live set.
    """
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        return  # run was not observed; nothing to cross-check
    counters = metrics.get("counters")
    require(isinstance(counters, dict), "metrics.counters missing")
    basis = counters.get("lr.basis_builds", 0)
    matvecs = counters.get("lr.combination_matvecs", 0)
    num_gdos = study["num_gdos"]
    members_total = study["combination_members_total"]
    if degraded:
        require(
            1 <= basis <= num_gdos,
            f"lr.basis_builds {basis} outside [1, {num_gdos}] (degraded run)",
        )
        require(
            matvecs >= members_total,
            f"lr.combination_matvecs {matvecs} below the live-combination "
            f"member total {members_total}",
        )
    else:
        require(
            basis == num_gdos,
            f"lr.basis_builds {basis}: expected exactly one basis build per "
            f"GDO ({num_gdos})",
        )
        require(
            matvecs == members_total,
            f"lr.combination_matvecs {matvecs}: expected one derivation per "
            f"combination member ({members_total})",
        )
    require(
        counters.get("lr.reference_basis_builds", 0) == 1,
        "reference panel basis must be built exactly once",
    )


def check_trace(trace, num_combinations, dead_gdos):
    require(isinstance(trace, list) and trace, "trace section is empty")
    by_name = {}
    for span in trace:
        for key in ("id", "name", "start_ms"):
            require(key in span, f"trace span missing {key}")
        require(span.get("duration_ms") is not None, f"span {span['name']} left open")
        by_name.setdefault(span["name"], []).append(span)

    require("study" in by_name, "trace has no root study span")
    require(len(by_name["study"]) == 1, "more than one study span")

    for phase in PHASES:
        require(phase in by_name, f"trace missing {phase}")
        require(len(by_name[phase]) == 1, f"{phase} recorded more than once")
        prefix = phase.split(".", 1)[1] + ".combination."
        combos = [name for name in by_name if name.startswith(prefix)]
        # Combinations naming a dead GDO are skipped, so a degraded run may
        # trace fewer than the announced count — never more.
        if dead_gdos:
            require(
                0 < len(combos) <= num_combinations,
                f"{phase}: {len(combos)} combination spans, "
                f"expected at most {num_combinations}",
            )
        else:
            require(
                len(combos) == num_combinations,
                f"{phase}: {len(combos)} combination spans, "
                f"expected {num_combinations}",
            )
        for name in combos:
            require(
                len(by_name[name]) == 1,
                f"{name} recorded {len(by_name[name])} times, expected once",
            )
            parent = by_name[name][0].get("parent")
            require(
                parent == by_name[phase][0]["id"],
                f"{name} is not a child of {phase}",
            )


def check_google_benchmark(doc):
    benchmarks = doc.get("benchmarks")
    require(isinstance(benchmarks, list) and benchmarks, "no benchmarks recorded")
    for bench in benchmarks:
        require("name" in bench, "benchmark entry missing name")
        require(
            bench.get("error_occurred", False) is False,
            f"benchmark {bench.get('name')} reported an error",
        )


def check_file(path):
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    require(isinstance(doc, dict), "top-level JSON is not an object")
    if doc.get("schema") == SCHEMA:
        check_run_report(doc)
        return "run report"
    if "benchmarks" in doc:
        check_google_benchmark(doc)
        return "benchmark output"
    raise Invalid("neither a run report nor google-benchmark output")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv[1:]:
        try:
            kind = check_file(path)
        except (OSError, json.JSONDecodeError, Invalid) as error:
            print(f"FAIL {path}: {error}", file=sys.stderr)
            return 1
        print(f"ok   {path} ({kind})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
