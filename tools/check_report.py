#!/usr/bin/env python3
"""Validates gendpr.run_report.v2 documents (and BENCH_*.json smoke output).

Usage:
    tools/check_report.py report.json [more.json ...]

Files whose top-level object carries ``"schema": "gendpr.run_report.v2"``
are validated structurally: required sections, per-phase wall times, per-link
byte counts, per-GDO EPC peaks, the SIMD kernel backend, the tiling shape of
the pipelined phase engine, and — when a trace is embedded — that every
analysis phase appears exactly once, carries one ``maf.tile.<k>`` /
``lr.tile.<k>`` span per tile, and one combination span per combination in
the LD/LR phases. Google-benchmark JSON (``"benchmarks"`` array) gets a
shallow sanity check. Anything else is an error. Exits non-zero on the first
invalid file; stdlib only, so it runs anywhere CI has python3.
"""
import json
import sys

SCHEMA = "gendpr.run_report.v2"
PHASES = ("phase.maf", "phase.ld", "phase.lr")
PHASE_TIMINGS = ("aggregation_ms", "indexing_ms", "ld_ms", "lr_ms", "total_ms")
KERNEL_BACKENDS = ("portable", "avx2", "avx512")


class Invalid(Exception):
    pass


def require(condition, message):
    if not condition:
        raise Invalid(message)


def check_run_report(doc):
    require(doc.get("schema") == SCHEMA, f"schema is not {SCHEMA}")
    require(isinstance(doc.get("transport"), str), "missing transport label")

    study = doc.get("study")
    require(isinstance(study, dict), "missing study section")
    require(study.get("num_combinations", 0) >= 1, "no combinations recorded")
    require(study.get("num_gdos", 0) >= 1, "study.num_gdos missing")
    require(
        isinstance(study.get("combination_members_total"), int),
        "study.combination_members_total missing",
    )
    require(
        1 <= study.get("live_combinations", 0) <= study["num_combinations"],
        "study.live_combinations out of range",
    )
    selection = study.get("selection")
    require(isinstance(selection, dict), "missing study.selection")
    for key in ("l_prime", "l_double_prime", "l_safe"):
        require(isinstance(selection.get(key), int), f"selection.{key} missing")
    require(
        selection["l_safe"] <= selection["l_double_prime"] <= selection["l_prime"],
        "selection sets must shrink monotonically",
    )

    phases = doc.get("phases")
    require(isinstance(phases, dict), "missing phases section")
    for key in PHASE_TIMINGS:
        value = phases.get(key)
        require(
            isinstance(value, (int, float)) and value >= 0,
            f"phases.{key} missing or negative",
        )

    network = doc.get("network")
    require(isinstance(network, dict), "missing network section")
    require(network.get("total_bytes", 0) > 0, "no network traffic recorded")
    if selection["l_double_prime"] > 0:
        # An empty phase-2 funnel (every SNP filtered before the LR test)
        # legitimately broadcasts no phase-2 tiles at all.
        require(
            network.get("phase2_body_bytes", 0) > 0,
            "no phase-2 broadcast body recorded",
        )
    links = network.get("links")
    require(isinstance(links, list) and links, "missing per-link byte counts")
    for link in links:
        for key in ("from", "to", "bytes", "messages"):
            require(key in link, f"link entry missing {key}")
        require(link["bytes"] > 0, "per-link byte count is zero")

    epc = doc.get("epc")
    require(isinstance(epc, dict), "missing epc section")
    per_gdo = epc.get("per_gdo")
    require(isinstance(per_gdo, list) and per_gdo, "missing per-GDO EPC peaks")
    for entry in per_gdo:
        require("gdo" in entry and "peak_bytes" in entry, "bad per_gdo entry")
        require(entry["peak_bytes"] > 0, f"GDO {entry.get('gdo')} EPC peak is zero")
    limit = epc.get("limit_bytes", 0)
    if limit:
        for entry in per_gdo:
            require(
                entry["peak_bytes"] <= limit,
                f"GDO {entry['gdo']} EPC peak exceeds the configured limit",
            )

    crypto = doc.get("crypto")
    require(isinstance(crypto, dict), "missing crypto section")
    require(
        crypto.get("backend") in ("portable", "native"),
        f"crypto.backend {crypto.get('backend')!r} is not a known AEAD backend",
    )
    require(crypto.get("records_sealed", 0) > 0, "no AEAD records sealed")
    require(crypto.get("bytes_sealed", 0) > 0, "no AEAD bytes sealed")
    metrics = doc.get("metrics")
    if isinstance(metrics, dict):
        labels = metrics.get("labels", {})
        require(
            labels.get("crypto.backend") == crypto["backend"],
            "metrics crypto.backend label disagrees with the crypto section",
        )

    kernels = doc.get("kernels")
    require(isinstance(kernels, dict), "missing kernels section")
    require(
        kernels.get("backend") in KERNEL_BACKENDS,
        f"kernels.backend {kernels.get('backend')!r} is not a known backend",
    )
    if isinstance(metrics, dict):
        labels = metrics.get("labels", {})
        require(
            labels.get("kernel.backend") == kernels["backend"],
            "metrics kernel.backend label disagrees with the kernels section",
        )

    tiles = doc.get("tiles")
    require(isinstance(tiles, dict), "missing tiles section")
    require(tiles.get("count", 0) >= 1, "tiles.count must be at least 1")
    if selection["l_double_prime"] == 0:
        # Nothing survived phase 2: the phase-3 plan is empty, zero tiles.
        require(
            tiles.get("lr_count", -1) == 0,
            "empty L'' must report zero LR tiles",
        )
    else:
        require(
            tiles.get("lr_count", 0) >= 1, "tiles.lr_count must be at least 1"
        )
    width = tiles.get("width")
    require(isinstance(width, int) and width >= 0, "tiles.width missing")
    if width == 0:
        require(
            tiles["count"] == 1 and tiles["lr_count"] <= 1,
            "monolithic run (width 0) must report at most one tile per phase",
        )

    pipeline = doc.get("pipeline")
    require(isinstance(pipeline, dict), "missing pipeline section")
    inline_tiles = pipeline.get("maf_tiles_assessed_inline")
    require(isinstance(inline_tiles, int), "pipeline.maf_tiles_assessed_inline missing")
    require(
        inline_tiles <= tiles["count"],
        "more MAF tiles assessed inline than the plan has tiles",
    )
    for key in ("leader_inline_assess_ms", "leader_lr_derive_ms"):
        value = pipeline.get(key)
        require(
            isinstance(value, (int, float)) and value >= 0,
            f"pipeline.{key} missing or negative",
        )

    pruning = doc.get("pruning")
    require(isinstance(pruning, dict), "missing pruning section")
    require(isinstance(pruning.get("enabled"), bool), "pruning.enabled missing")
    for key in ("maf_mask_sizes", "ld_mask_sizes", "lr_mask_sizes"):
        sizes = pruning.get(key)
        require(isinstance(sizes, list), f"pruning.{key} missing")
        if not pruning["enabled"]:
            require(not sizes, f"pruning.{key} must be empty when pruning is off")
        # The running intersection only ever shrinks: each recorded mask size
        # must be monotone non-increasing across the evaluation order.
        for earlier, later in zip(sizes, sizes[1:]):
            require(
                later <= earlier,
                f"pruning.{key} is not monotone non-increasing: {sizes}",
            )
    if pruning["enabled"]:
        # The folds land exactly on the intersected selection sets.
        if pruning["maf_mask_sizes"]:
            require(
                pruning["maf_mask_sizes"][-1] == selection["l_prime"],
                "final MAF mask size disagrees with selection.l_prime",
            )
        if pruning["ld_mask_sizes"] and not pruning["ld_walks_skipped"]:
            require(
                pruning["ld_mask_sizes"][-1] == selection["l_double_prime"],
                "final LD mask size disagrees with selection.l_double_prime",
            )
        if pruning["lr_mask_sizes"] and not pruning["lr_selections_skipped"]:
            require(
                pruning["lr_mask_sizes"][-1] == selection["l_safe"],
                "final LR mask size disagrees with selection.l_safe",
            )
    for key in (
        "maf_reassessments",
        "ld_reassessments",
        "ld_walks_skipped",
        "lr_selections_skipped",
    ):
        value = pruning.get(key)
        require(
            isinstance(value, (int, float)) and value >= 0,
            f"pruning.{key} missing or negative",
        )
        if not pruning["enabled"]:
            require(value == 0, f"pruning.{key} nonzero with pruning off")

    events = doc.get("events")
    require(isinstance(events, dict), "missing events section")
    require(isinstance(events.get("dead_gdos"), list), "missing events.dead_gdos")

    check_lr_counters(
        doc, study, tiles, pruning, degraded=bool(events["dead_gdos"])
    )
    check_wire_counters(doc, study, tiles, degraded=bool(events["dead_gdos"]))

    trace = doc.get("trace")
    if trace is not None:
        check_trace(
            trace,
            study["num_combinations"],
            set(events["dead_gdos"]),
            tiles,
            pruning,
        )


def check_lr_counters(doc, study, tiles, pruning, degraded):
    """LR-phase accounting invariants over the exported counters.

    Every node that receives a phase-2 tile expands one genotype-fixed LR
    basis over that tile's columns (``lr.basis_builds``) and derives one
    matrix slice per live combination it belongs to. With T = tiles.lr_count
    and pruning off, a clean run pins the counters exactly:
        basis_builds == num_gdos * T
        combination_matvecs == combination_members_total * T
    and the leader builds the reference panel's basis once per tile.

    Under the intersection-aware sweep only each per-node chain head is a
    full derivation (``lr.combination_matvecs``); the rest are in-place
    delta updates (``lr.combination_delta_updates``). Pruned work never
    exceeds the unpruned budget, and full + delta derivations together
    still conserve it on a clean run:
        combination_matvecs <= combination_members_total * T
        combination_matvecs + combination_delta_updates
            == combination_members_total * T

    A degraded run only bounds the totals: a member may build bases (and
    derive matrices) and then be declared dead afterwards, so the counters
    can reach the clean-run values but never pin to the post-mortem live
    set.
    """
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        return  # run was not observed; nothing to cross-check
    counters = metrics.get("counters")
    require(isinstance(counters, dict), "metrics.counters missing")
    basis = counters.get("lr.basis_builds", 0)
    matvecs = counters.get("lr.combination_matvecs", 0)
    deltas = counters.get("lr.combination_delta_updates", 0)
    ref_matvecs = counters.get("lr.reference_matvecs", 0)
    ref_deltas = counters.get("lr.reference_delta_updates", 0)
    num_gdos = study["num_gdos"]
    members_total = study["combination_members_total"]
    live_combinations = study["live_combinations"]
    lr_tiles = tiles["lr_count"]
    pruned = pruning["enabled"]
    if not pruned:
        require(
            deltas == 0 and ref_deltas == 0,
            "delta-update counters must be zero with pruning off",
        )
    if lr_tiles == 0:
        require(
            basis == 0 and matvecs == 0 and deltas == 0,
            "LR derivation counters must be zero with an empty phase-3 plan",
        )
        require(
            counters.get("lr.reference_basis_builds", 0) == 0,
            "no reference basis with an empty phase-3 plan",
        )
        return
    if degraded:
        require(
            1 <= basis <= num_gdos * lr_tiles,
            f"lr.basis_builds {basis} outside [1, {num_gdos * lr_tiles}] "
            f"(degraded run)",
        )
        require(
            matvecs + deltas >= members_total * lr_tiles,
            f"lr derivations {matvecs}+{deltas} below the live-combination "
            f"member-tile total {members_total * lr_tiles}",
        )
    else:
        require(
            basis == num_gdos * lr_tiles,
            f"lr.basis_builds {basis}: expected one basis build per GDO per "
            f"tile ({num_gdos} * {lr_tiles})",
        )
        if pruned:
            require(
                1 <= matvecs <= members_total * lr_tiles,
                f"lr.combination_matvecs {matvecs} outside "
                f"[1, {members_total * lr_tiles}] (pruned run)",
            )
            require(
                matvecs + deltas == members_total * lr_tiles,
                f"lr derivations {matvecs}+{deltas}: full + delta updates "
                f"must conserve the member-tile total "
                f"({members_total} * {lr_tiles})",
            )
            require(
                ref_matvecs == lr_tiles,
                f"lr.reference_matvecs {ref_matvecs}: expected one chain "
                f"head per tile ({lr_tiles})",
            )
            require(
                ref_matvecs + ref_deltas == live_combinations * lr_tiles,
                f"reference derivations {ref_matvecs}+{ref_deltas} must "
                f"conserve the combination-tile total "
                f"({live_combinations} * {lr_tiles})",
            )
        else:
            require(
                matvecs == members_total * lr_tiles,
                f"lr.combination_matvecs {matvecs}: expected one derivation "
                f"per combination member per tile "
                f"({members_total} * {lr_tiles})",
            )
            require(
                ref_matvecs == live_combinations * lr_tiles,
                f"lr.reference_matvecs {ref_matvecs}: expected one per live "
                f"combination per tile ({live_combinations} * {lr_tiles})",
            )
    require(
        counters.get("lr.reference_basis_builds", 0) == lr_tiles,
        "reference panel basis must be built exactly once per LR tile",
    )


def check_wire_counters(doc, study, tiles, degraded):
    """Serialize-once accounting over the pooled send path.

    Every sealed protocol record is either a message's first seal
    (``wire.serializations``) or a per-peer AEAD pass over an already-staged
    body (``wire.fanout_reuses``), so the counters conserve exactly:
        serializations + fanout_reuses == records_sent
    On a clean run the leader's announce, phase-1, per-tile phase-2, and
    phase-3 broadcasts each reach G-1 members off one staging, which pins a
    fan-out floor of (3 + lr_tiles) * (G - 2) reuses. A regression that
    re-serializes per recipient inflates ``wire.serializations`` and breaks
    the equality; one that re-stages per broadcast starves the floor.
    """
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        return  # run was not observed; nothing to cross-check
    counters = metrics.get("counters", {})
    if "wire.records_sent" not in counters:
        return  # report predates the pooled wire path
    serializations = counters.get("wire.serializations", 0)
    reuses = counters.get("wire.fanout_reuses", 0)
    records = counters["wire.records_sent"]
    require(records > 0, "wire.records_sent is zero on an observed run")
    require(serializations > 0, "wire.serializations is zero")
    require(
        serializations + reuses == records,
        f"wire counters break conservation: {serializations} first seals + "
        f"{reuses} fan-out reuses != {records} records sent",
    )
    num_gdos = study["num_gdos"]
    if degraded or num_gdos < 3:
        return  # mid-study deaths truncate broadcasts; only conservation holds
    floor = (3 + tiles["lr_count"]) * (num_gdos - 2)
    require(
        reuses >= floor,
        f"wire.fanout_reuses {reuses} below the broadcast floor {floor} "
        f"((3 + {tiles['lr_count']} tiles) * ({num_gdos} - 2))",
    )
    require(
        serializations < records,
        "every record was a fresh serialization: broadcasts are not reusing "
        "their staged bodies",
    )


def check_trace(trace, num_combinations, dead_gdos, tiles, pruning):
    require(isinstance(trace, list) and trace, "trace section is empty")
    by_name = {}
    for span in trace:
        for key in ("id", "name", "start_ms"):
            require(key in span, f"trace span missing {key}")
        require(span.get("duration_ms") is not None, f"span {span['name']} left open")
        by_name.setdefault(span["name"], []).append(span)

    require("study" in by_name, "trace has no root study span")
    require(len(by_name["study"]) == 1, "more than one study span")

    def check_children(phase, prefix, expected, exact, repeats=1, may_be_empty=False):
        children = [name for name in by_name if name.startswith(prefix)]
        if exact:
            require(
                len(children) == expected,
                f"{phase}: {len(children)} {prefix}* spans, expected {expected}",
            )
        else:
            lower = 0 if may_be_empty else min(1, expected)
            require(
                lower <= len(children) <= expected,
                f"{phase}: {len(children)} {prefix}* spans, "
                f"expected at most {expected}",
            )
        for name in children:
            require(
                1 <= len(by_name[name]) <= repeats,
                f"{name} recorded {len(by_name[name])} times, "
                f"expected at most {repeats}",
            )
            for span in by_name[name]:
                require(
                    span.get("parent") == by_name[phase][0]["id"],
                    f"{name} is not a child of {phase}",
                )

    for phase in PHASES:
        require(phase in by_name, f"trace missing {phase}")
        require(len(by_name[phase]) == 1, f"{phase} recorded more than once")

    # The MAF phase is assessed per tile (combinations are an inner loop of
    # each tile span); the LD and LR phases keep per-combination spans, and
    # the LR phase additionally records the leader's per-tile derivations.
    # Combinations naming a dead GDO are skipped, so a degraded run may
    # trace fewer combination spans than the announced count — never more.
    # Under the intersection-aware sweep a clean run may also trace fewer:
    # combinations past an already-empty running intersection are skipped,
    # and phase-1/2 reassessments forced by mid-phase deaths re-open the
    # affected tile / combination spans (never more than once per restart).
    pruned = pruning["enabled"]
    maf_repeats = 1 + (pruning["maf_reassessments"] if pruned else 0)
    ld_repeats = 1 + (pruning["ld_reassessments"] if pruned else 0)
    check_children(
        "phase.maf", "maf.tile.", tiles["count"],
        exact=maf_repeats == 1, repeats=maf_repeats,
    )
    if tiles["lr_count"] > 0:
        check_children("phase.lr", "lr.tile.", tiles["lr_count"], exact=True)
    combination_exact = not dead_gdos and not pruned
    check_children(
        "phase.ld", "ld.combination.", num_combinations,
        exact=combination_exact, repeats=ld_repeats,
        may_be_empty=pruned,
    )
    check_children(
        "phase.lr", "lr.combination.", num_combinations,
        exact=combination_exact, may_be_empty=pruned and tiles["lr_count"] == 0,
    )


def check_google_benchmark(doc):
    benchmarks = doc.get("benchmarks")
    require(isinstance(benchmarks, list) and benchmarks, "no benchmarks recorded")
    for bench in benchmarks:
        require("name" in bench, "benchmark entry missing name")
        require(
            bench.get("error_occurred", False) is False,
            f"benchmark {bench.get('name')} reported an error",
        )


def check_file(path):
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    require(isinstance(doc, dict), "top-level JSON is not an object")
    if doc.get("schema") == SCHEMA:
        check_run_report(doc)
        return "run report"
    if "benchmarks" in doc:
        check_google_benchmark(doc)
        return "benchmark output"
    raise Invalid("neither a run report nor google-benchmark output")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv[1:]:
        try:
            kind = check_file(path)
        except (OSError, json.JSONDecodeError, Invalid) as error:
            print(f"FAIL {path}: {error}", file=sys.stderr)
            return 1
        print(f"ok   {path} ({kind})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
