# Drives the CLI end to end: generate a cohort, assess it, write a release.
file(REMOVE_RECURSE ${WORKDIR})
file(MAKE_DIRECTORY ${WORKDIR})

execute_process(
  COMMAND ${CLI} gen ${WORKDIR} --cases 400 --controls 400 --snps 120 --gdos 3
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "gendpr gen failed (${rc})")
endif()

execute_process(
  COMMAND ${CLI} assess ${WORKDIR} --gdos 3 --report ${WORKDIR}/report.json
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "gendpr assess failed (${rc})")
endif()
if(NOT out MATCHES "SNPs safe")
  message(FATAL_ERROR "assess output missing safe-SNP line: ${out}")
endif()
if(NOT EXISTS ${WORKDIR}/report.json)
  message(FATAL_ERROR "report.json was not written")
endif()
file(READ ${WORKDIR}/report.json report)
if(NOT report MATCHES "gendpr.run_report.v2")
  message(FATAL_ERROR "report.json missing schema marker")
endif()
if(NOT report MATCHES "phase.maf")
  message(FATAL_ERROR "report.json missing MAF phase span")
endif()

execute_process(
  COMMAND ${CLI} release ${WORKDIR} --gdos 3 --out ${WORKDIR}/release.tsv
          --dp-epsilon 1.0
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "gendpr release failed (${rc})")
endif()
if(NOT EXISTS ${WORKDIR}/release.tsv)
  message(FATAL_ERROR "release.tsv was not written")
endif()
file(READ ${WORKDIR}/release.tsv tsv)
if(NOT tsv MATCHES "snp\tmode\tcase_count")
  message(FATAL_ERROR "release.tsv missing header")
endif()
