#!/usr/bin/env bash
# Builds the benchmark binaries in Release and runs a selection of them with
# JSON output, writing BENCH_<name>.json at the repo root (gitignored).
#
# Usage:
#   tools/run_bench.sh [bench_name ...]
#
# With no arguments, runs the ablation benches touched by the bit-plane work
# plus the end-to-end runtime figure. GENDPR_BENCH_SCALE (e.g. 0.1) is
# forwarded to the bench processes for quick smoke runs, and
# GENDPR_REPORT_DIR makes the runtime benches drop a gendpr.run_report.v2
# document per federated run into that directory.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build-bench"

benches=("$@")
if [[ ${#benches[@]} -eq 0 ]]; then
  benches=(bench_ablation_packing bench_ablation_lrtest bench_ablation_crypto
           bench_ablation_kernels bench_ablation_wire bench_fig6_runtime)
fi

# Reject unknown targets up front: a typo'd name used to surface only as a
# cryptic cmake --target error after a full configure.
for bench in "${benches[@]}"; do
  if [[ ! -f "${repo_root}/bench/${bench}.cpp" ]]; then
    echo "error: unknown bench target '${bench}' (no bench/${bench}.cpp)" >&2
    exit 1
  fi
done

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${build_dir}" -j "$(nproc)" --target "${benches[@]}"

for bench in "${benches[@]}"; do
  out="${repo_root}/BENCH_${bench#bench_}.json"
  # Write to a temp file and mv on success so an interrupted or failed bench
  # never leaves a stale/truncated BENCH_*.json behind.
  tmp="$(mktemp "${out}.XXXXXX")"
  trap 'rm -f "${tmp}"' EXIT
  echo "== ${bench} -> ${out}"
  "${build_dir}/bench/${bench}" \
    --benchmark_format=json \
    --benchmark_out="${tmp}" \
    --benchmark_out_format=json
  mv "${tmp}" "${out}"
  trap - EXIT
done
