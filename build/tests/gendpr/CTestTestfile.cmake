# CMake generated Testfile for 
# Source directory: /root/repo/tests/gendpr
# Build directory: /root/repo/build/tests/gendpr
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/gendpr/messages_test[1]_include.cmake")
include("/root/repo/build/tests/gendpr/trusted_test[1]_include.cmake")
include("/root/repo/build/tests/gendpr/federation_test[1]_include.cmake")
include("/root/repo/build/tests/gendpr/equivalence_test[1]_include.cmake")
include("/root/repo/build/tests/gendpr/collusion_test[1]_include.cmake")
include("/root/repo/build/tests/gendpr/failure_injection_test[1]_include.cmake")
include("/root/repo/build/tests/gendpr/release_test[1]_include.cmake")
include("/root/repo/build/tests/gendpr/vcf_integration_test[1]_include.cmake")
include("/root/repo/build/tests/gendpr/tcp_federation_test[1]_include.cmake")
