file(REMOVE_RECURSE
  "CMakeFiles/vcf_integration_test.dir/vcf_integration_test.cpp.o"
  "CMakeFiles/vcf_integration_test.dir/vcf_integration_test.cpp.o.d"
  "vcf_integration_test"
  "vcf_integration_test.pdb"
  "vcf_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcf_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
