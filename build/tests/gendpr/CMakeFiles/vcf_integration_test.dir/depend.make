# Empty dependencies file for vcf_integration_test.
# This may be replaced when dependencies are built.
