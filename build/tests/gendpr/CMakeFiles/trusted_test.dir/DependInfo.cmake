
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/gendpr/trusted_test.cpp" "tests/gendpr/CMakeFiles/trusted_test.dir/trusted_test.cpp.o" "gcc" "tests/gendpr/CMakeFiles/trusted_test.dir/trusted_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gendpr/CMakeFiles/gendpr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gendpr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/gendpr_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/gendpr_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/genome/CMakeFiles/gendpr_genome.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/gendpr_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/gendpr_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gendpr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
