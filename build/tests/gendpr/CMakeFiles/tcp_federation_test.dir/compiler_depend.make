# Empty compiler generated dependencies file for tcp_federation_test.
# This may be replaced when dependencies are built.
