file(REMOVE_RECURSE
  "CMakeFiles/tcp_federation_test.dir/tcp_federation_test.cpp.o"
  "CMakeFiles/tcp_federation_test.dir/tcp_federation_test.cpp.o.d"
  "tcp_federation_test"
  "tcp_federation_test.pdb"
  "tcp_federation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_federation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
