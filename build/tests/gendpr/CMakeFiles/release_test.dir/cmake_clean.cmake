file(REMOVE_RECURSE
  "CMakeFiles/release_test.dir/release_test.cpp.o"
  "CMakeFiles/release_test.dir/release_test.cpp.o.d"
  "release_test"
  "release_test.pdb"
  "release_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/release_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
