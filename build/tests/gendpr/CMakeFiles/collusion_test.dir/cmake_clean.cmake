file(REMOVE_RECURSE
  "CMakeFiles/collusion_test.dir/collusion_test.cpp.o"
  "CMakeFiles/collusion_test.dir/collusion_test.cpp.o.d"
  "collusion_test"
  "collusion_test.pdb"
  "collusion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collusion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
