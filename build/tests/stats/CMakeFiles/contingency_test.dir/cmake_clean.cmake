file(REMOVE_RECURSE
  "CMakeFiles/contingency_test.dir/contingency_test.cpp.o"
  "CMakeFiles/contingency_test.dir/contingency_test.cpp.o.d"
  "contingency_test"
  "contingency_test.pdb"
  "contingency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contingency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
