file(REMOVE_RECURSE
  "CMakeFiles/oblivious_test.dir/oblivious_test.cpp.o"
  "CMakeFiles/oblivious_test.dir/oblivious_test.cpp.o.d"
  "oblivious_test"
  "oblivious_test.pdb"
  "oblivious_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oblivious_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
