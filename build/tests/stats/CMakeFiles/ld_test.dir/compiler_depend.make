# Empty compiler generated dependencies file for ld_test.
# This may be replaced when dependencies are built.
