file(REMOVE_RECURSE
  "CMakeFiles/ld_test.dir/ld_test.cpp.o"
  "CMakeFiles/ld_test.dir/ld_test.cpp.o.d"
  "ld_test"
  "ld_test.pdb"
  "ld_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ld_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
