file(REMOVE_RECURSE
  "CMakeFiles/lr_test_test.dir/lr_test_test.cpp.o"
  "CMakeFiles/lr_test_test.dir/lr_test_test.cpp.o.d"
  "lr_test_test"
  "lr_test_test.pdb"
  "lr_test_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lr_test_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
