# Empty compiler generated dependencies file for lr_test_test.
# This may be replaced when dependencies are built.
