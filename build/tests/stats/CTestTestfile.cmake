# CMake generated Testfile for 
# Source directory: /root/repo/tests/stats
# Build directory: /root/repo/build/tests/stats
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/stats/special_test[1]_include.cmake")
include("/root/repo/build/tests/stats/association_test[1]_include.cmake")
include("/root/repo/build/tests/stats/ld_test[1]_include.cmake")
include("/root/repo/build/tests/stats/lr_test_test[1]_include.cmake")
include("/root/repo/build/tests/stats/dp_test[1]_include.cmake")
include("/root/repo/build/tests/stats/attacks_test[1]_include.cmake")
include("/root/repo/build/tests/stats/contingency_test[1]_include.cmake")
include("/root/repo/build/tests/stats/oblivious_test[1]_include.cmake")
