file(REMOVE_RECURSE
  "CMakeFiles/hmac_hkdf_test.dir/hmac_hkdf_test.cpp.o"
  "CMakeFiles/hmac_hkdf_test.dir/hmac_hkdf_test.cpp.o.d"
  "hmac_hkdf_test"
  "hmac_hkdf_test.pdb"
  "hmac_hkdf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmac_hkdf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
