# Empty dependencies file for hmac_hkdf_test.
# This may be replaced when dependencies are built.
