file(REMOVE_RECURSE
  "CMakeFiles/aes_gcm_test.dir/aes_gcm_test.cpp.o"
  "CMakeFiles/aes_gcm_test.dir/aes_gcm_test.cpp.o.d"
  "aes_gcm_test"
  "aes_gcm_test.pdb"
  "aes_gcm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aes_gcm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
