file(REMOVE_RECURSE
  "CMakeFiles/csprng_test.dir/csprng_test.cpp.o"
  "CMakeFiles/csprng_test.dir/csprng_test.cpp.o.d"
  "csprng_test"
  "csprng_test.pdb"
  "csprng_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csprng_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
