# Empty dependencies file for csprng_test.
# This may be replaced when dependencies are built.
