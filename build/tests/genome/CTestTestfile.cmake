# CMake generated Testfile for 
# Source directory: /root/repo/tests/genome
# Build directory: /root/repo/build/tests/genome
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/genome/genotype_test[1]_include.cmake")
include("/root/repo/build/tests/genome/cohort_test[1]_include.cmake")
include("/root/repo/build/tests/genome/vcf_lite_test[1]_include.cmake")
