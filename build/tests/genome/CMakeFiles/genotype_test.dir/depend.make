# Empty dependencies file for genotype_test.
# This may be replaced when dependencies are built.
