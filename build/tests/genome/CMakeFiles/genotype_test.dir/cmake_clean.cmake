file(REMOVE_RECURSE
  "CMakeFiles/genotype_test.dir/genotype_test.cpp.o"
  "CMakeFiles/genotype_test.dir/genotype_test.cpp.o.d"
  "genotype_test"
  "genotype_test.pdb"
  "genotype_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genotype_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
