# Empty dependencies file for vcf_lite_test.
# This may be replaced when dependencies are built.
