file(REMOVE_RECURSE
  "CMakeFiles/vcf_lite_test.dir/vcf_lite_test.cpp.o"
  "CMakeFiles/vcf_lite_test.dir/vcf_lite_test.cpp.o.d"
  "vcf_lite_test"
  "vcf_lite_test.pdb"
  "vcf_lite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcf_lite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
