file(REMOVE_RECURSE
  "CMakeFiles/cohort_test.dir/cohort_test.cpp.o"
  "CMakeFiles/cohort_test.dir/cohort_test.cpp.o.d"
  "cohort_test"
  "cohort_test.pdb"
  "cohort_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
