# Empty dependencies file for cohort_test.
# This may be replaced when dependencies are built.
