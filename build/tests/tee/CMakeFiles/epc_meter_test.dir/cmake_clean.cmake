file(REMOVE_RECURSE
  "CMakeFiles/epc_meter_test.dir/epc_meter_test.cpp.o"
  "CMakeFiles/epc_meter_test.dir/epc_meter_test.cpp.o.d"
  "epc_meter_test"
  "epc_meter_test.pdb"
  "epc_meter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epc_meter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
