# Empty compiler generated dependencies file for epc_meter_test.
# This may be replaced when dependencies are built.
