# Empty dependencies file for sealing_test.
# This may be replaced when dependencies are built.
