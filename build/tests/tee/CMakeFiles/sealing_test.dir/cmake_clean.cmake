file(REMOVE_RECURSE
  "CMakeFiles/sealing_test.dir/sealing_test.cpp.o"
  "CMakeFiles/sealing_test.dir/sealing_test.cpp.o.d"
  "sealing_test"
  "sealing_test.pdb"
  "sealing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sealing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
