# Empty dependencies file for gendpr_net.
# This may be replaced when dependencies are built.
