file(REMOVE_RECURSE
  "CMakeFiles/gendpr_net.dir/network.cpp.o"
  "CMakeFiles/gendpr_net.dir/network.cpp.o.d"
  "CMakeFiles/gendpr_net.dir/tcp.cpp.o"
  "CMakeFiles/gendpr_net.dir/tcp.cpp.o.d"
  "libgendpr_net.a"
  "libgendpr_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gendpr_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
