file(REMOVE_RECURSE
  "libgendpr_net.a"
)
