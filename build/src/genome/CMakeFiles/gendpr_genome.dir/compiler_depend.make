# Empty compiler generated dependencies file for gendpr_genome.
# This may be replaced when dependencies are built.
