file(REMOVE_RECURSE
  "CMakeFiles/gendpr_genome.dir/cohort.cpp.o"
  "CMakeFiles/gendpr_genome.dir/cohort.cpp.o.d"
  "CMakeFiles/gendpr_genome.dir/genotype.cpp.o"
  "CMakeFiles/gendpr_genome.dir/genotype.cpp.o.d"
  "CMakeFiles/gendpr_genome.dir/vcf_lite.cpp.o"
  "CMakeFiles/gendpr_genome.dir/vcf_lite.cpp.o.d"
  "libgendpr_genome.a"
  "libgendpr_genome.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gendpr_genome.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
