file(REMOVE_RECURSE
  "libgendpr_genome.a"
)
