# Empty dependencies file for gendpr_core.
# This may be replaced when dependencies are built.
