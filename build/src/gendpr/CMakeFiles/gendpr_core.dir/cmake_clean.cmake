file(REMOVE_RECURSE
  "CMakeFiles/gendpr_core.dir/baselines.cpp.o"
  "CMakeFiles/gendpr_core.dir/baselines.cpp.o.d"
  "CMakeFiles/gendpr_core.dir/federation.cpp.o"
  "CMakeFiles/gendpr_core.dir/federation.cpp.o.d"
  "CMakeFiles/gendpr_core.dir/messages.cpp.o"
  "CMakeFiles/gendpr_core.dir/messages.cpp.o.d"
  "CMakeFiles/gendpr_core.dir/node.cpp.o"
  "CMakeFiles/gendpr_core.dir/node.cpp.o.d"
  "CMakeFiles/gendpr_core.dir/release.cpp.o"
  "CMakeFiles/gendpr_core.dir/release.cpp.o.d"
  "CMakeFiles/gendpr_core.dir/trusted.cpp.o"
  "CMakeFiles/gendpr_core.dir/trusted.cpp.o.d"
  "libgendpr_core.a"
  "libgendpr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gendpr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
