file(REMOVE_RECURSE
  "libgendpr_core.a"
)
