file(REMOVE_RECURSE
  "CMakeFiles/gendpr_tee.dir/attestation.cpp.o"
  "CMakeFiles/gendpr_tee.dir/attestation.cpp.o.d"
  "CMakeFiles/gendpr_tee.dir/epc_meter.cpp.o"
  "CMakeFiles/gendpr_tee.dir/epc_meter.cpp.o.d"
  "CMakeFiles/gendpr_tee.dir/identity.cpp.o"
  "CMakeFiles/gendpr_tee.dir/identity.cpp.o.d"
  "CMakeFiles/gendpr_tee.dir/sealing.cpp.o"
  "CMakeFiles/gendpr_tee.dir/sealing.cpp.o.d"
  "CMakeFiles/gendpr_tee.dir/secure_channel.cpp.o"
  "CMakeFiles/gendpr_tee.dir/secure_channel.cpp.o.d"
  "libgendpr_tee.a"
  "libgendpr_tee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gendpr_tee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
