# Empty dependencies file for gendpr_tee.
# This may be replaced when dependencies are built.
