file(REMOVE_RECURSE
  "libgendpr_tee.a"
)
