
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tee/attestation.cpp" "src/tee/CMakeFiles/gendpr_tee.dir/attestation.cpp.o" "gcc" "src/tee/CMakeFiles/gendpr_tee.dir/attestation.cpp.o.d"
  "/root/repo/src/tee/epc_meter.cpp" "src/tee/CMakeFiles/gendpr_tee.dir/epc_meter.cpp.o" "gcc" "src/tee/CMakeFiles/gendpr_tee.dir/epc_meter.cpp.o.d"
  "/root/repo/src/tee/identity.cpp" "src/tee/CMakeFiles/gendpr_tee.dir/identity.cpp.o" "gcc" "src/tee/CMakeFiles/gendpr_tee.dir/identity.cpp.o.d"
  "/root/repo/src/tee/sealing.cpp" "src/tee/CMakeFiles/gendpr_tee.dir/sealing.cpp.o" "gcc" "src/tee/CMakeFiles/gendpr_tee.dir/sealing.cpp.o.d"
  "/root/repo/src/tee/secure_channel.cpp" "src/tee/CMakeFiles/gendpr_tee.dir/secure_channel.cpp.o" "gcc" "src/tee/CMakeFiles/gendpr_tee.dir/secure_channel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gendpr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/gendpr_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/gendpr_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
