file(REMOVE_RECURSE
  "libgendpr_common.a"
)
