file(REMOVE_RECURSE
  "CMakeFiles/gendpr_common.dir/bytes.cpp.o"
  "CMakeFiles/gendpr_common.dir/bytes.cpp.o.d"
  "CMakeFiles/gendpr_common.dir/combinatorics.cpp.o"
  "CMakeFiles/gendpr_common.dir/combinatorics.cpp.o.d"
  "CMakeFiles/gendpr_common.dir/error.cpp.o"
  "CMakeFiles/gendpr_common.dir/error.cpp.o.d"
  "CMakeFiles/gendpr_common.dir/log.cpp.o"
  "CMakeFiles/gendpr_common.dir/log.cpp.o.d"
  "CMakeFiles/gendpr_common.dir/rng.cpp.o"
  "CMakeFiles/gendpr_common.dir/rng.cpp.o.d"
  "CMakeFiles/gendpr_common.dir/thread_pool.cpp.o"
  "CMakeFiles/gendpr_common.dir/thread_pool.cpp.o.d"
  "libgendpr_common.a"
  "libgendpr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gendpr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
