# Empty dependencies file for gendpr_common.
# This may be replaced when dependencies are built.
