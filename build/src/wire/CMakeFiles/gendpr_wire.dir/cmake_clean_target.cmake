file(REMOVE_RECURSE
  "libgendpr_wire.a"
)
