# Empty dependencies file for gendpr_wire.
# This may be replaced when dependencies are built.
