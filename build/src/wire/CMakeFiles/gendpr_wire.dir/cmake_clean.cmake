file(REMOVE_RECURSE
  "CMakeFiles/gendpr_wire.dir/serialize.cpp.o"
  "CMakeFiles/gendpr_wire.dir/serialize.cpp.o.d"
  "libgendpr_wire.a"
  "libgendpr_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gendpr_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
