file(REMOVE_RECURSE
  "CMakeFiles/gendpr_crypto.dir/aes256.cpp.o"
  "CMakeFiles/gendpr_crypto.dir/aes256.cpp.o.d"
  "CMakeFiles/gendpr_crypto.dir/csprng.cpp.o"
  "CMakeFiles/gendpr_crypto.dir/csprng.cpp.o.d"
  "CMakeFiles/gendpr_crypto.dir/gcm.cpp.o"
  "CMakeFiles/gendpr_crypto.dir/gcm.cpp.o.d"
  "CMakeFiles/gendpr_crypto.dir/hkdf.cpp.o"
  "CMakeFiles/gendpr_crypto.dir/hkdf.cpp.o.d"
  "CMakeFiles/gendpr_crypto.dir/hmac.cpp.o"
  "CMakeFiles/gendpr_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/gendpr_crypto.dir/sha256.cpp.o"
  "CMakeFiles/gendpr_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/gendpr_crypto.dir/x25519.cpp.o"
  "CMakeFiles/gendpr_crypto.dir/x25519.cpp.o.d"
  "libgendpr_crypto.a"
  "libgendpr_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gendpr_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
