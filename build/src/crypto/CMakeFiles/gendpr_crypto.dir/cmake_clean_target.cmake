file(REMOVE_RECURSE
  "libgendpr_crypto.a"
)
