# Empty dependencies file for gendpr_crypto.
# This may be replaced when dependencies are built.
