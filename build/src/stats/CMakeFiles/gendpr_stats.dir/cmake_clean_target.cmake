file(REMOVE_RECURSE
  "libgendpr_stats.a"
)
