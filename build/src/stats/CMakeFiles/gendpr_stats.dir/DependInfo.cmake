
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/association.cpp" "src/stats/CMakeFiles/gendpr_stats.dir/association.cpp.o" "gcc" "src/stats/CMakeFiles/gendpr_stats.dir/association.cpp.o.d"
  "/root/repo/src/stats/attacks.cpp" "src/stats/CMakeFiles/gendpr_stats.dir/attacks.cpp.o" "gcc" "src/stats/CMakeFiles/gendpr_stats.dir/attacks.cpp.o.d"
  "/root/repo/src/stats/contingency.cpp" "src/stats/CMakeFiles/gendpr_stats.dir/contingency.cpp.o" "gcc" "src/stats/CMakeFiles/gendpr_stats.dir/contingency.cpp.o.d"
  "/root/repo/src/stats/dp.cpp" "src/stats/CMakeFiles/gendpr_stats.dir/dp.cpp.o" "gcc" "src/stats/CMakeFiles/gendpr_stats.dir/dp.cpp.o.d"
  "/root/repo/src/stats/ld.cpp" "src/stats/CMakeFiles/gendpr_stats.dir/ld.cpp.o" "gcc" "src/stats/CMakeFiles/gendpr_stats.dir/ld.cpp.o.d"
  "/root/repo/src/stats/lr_test.cpp" "src/stats/CMakeFiles/gendpr_stats.dir/lr_test.cpp.o" "gcc" "src/stats/CMakeFiles/gendpr_stats.dir/lr_test.cpp.o.d"
  "/root/repo/src/stats/oblivious.cpp" "src/stats/CMakeFiles/gendpr_stats.dir/oblivious.cpp.o" "gcc" "src/stats/CMakeFiles/gendpr_stats.dir/oblivious.cpp.o.d"
  "/root/repo/src/stats/special.cpp" "src/stats/CMakeFiles/gendpr_stats.dir/special.cpp.o" "gcc" "src/stats/CMakeFiles/gendpr_stats.dir/special.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gendpr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/genome/CMakeFiles/gendpr_genome.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/gendpr_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/gendpr_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
