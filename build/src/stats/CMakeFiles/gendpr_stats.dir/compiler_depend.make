# Empty compiler generated dependencies file for gendpr_stats.
# This may be replaced when dependencies are built.
