file(REMOVE_RECURSE
  "CMakeFiles/gendpr_stats.dir/association.cpp.o"
  "CMakeFiles/gendpr_stats.dir/association.cpp.o.d"
  "CMakeFiles/gendpr_stats.dir/attacks.cpp.o"
  "CMakeFiles/gendpr_stats.dir/attacks.cpp.o.d"
  "CMakeFiles/gendpr_stats.dir/contingency.cpp.o"
  "CMakeFiles/gendpr_stats.dir/contingency.cpp.o.d"
  "CMakeFiles/gendpr_stats.dir/dp.cpp.o"
  "CMakeFiles/gendpr_stats.dir/dp.cpp.o.d"
  "CMakeFiles/gendpr_stats.dir/ld.cpp.o"
  "CMakeFiles/gendpr_stats.dir/ld.cpp.o.d"
  "CMakeFiles/gendpr_stats.dir/lr_test.cpp.o"
  "CMakeFiles/gendpr_stats.dir/lr_test.cpp.o.d"
  "CMakeFiles/gendpr_stats.dir/oblivious.cpp.o"
  "CMakeFiles/gendpr_stats.dir/oblivious.cpp.o.d"
  "CMakeFiles/gendpr_stats.dir/special.cpp.o"
  "CMakeFiles/gendpr_stats.dir/special.cpp.o.d"
  "libgendpr_stats.a"
  "libgendpr_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gendpr_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
