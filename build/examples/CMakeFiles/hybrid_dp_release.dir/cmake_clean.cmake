file(REMOVE_RECURSE
  "CMakeFiles/hybrid_dp_release.dir/hybrid_dp_release.cpp.o"
  "CMakeFiles/hybrid_dp_release.dir/hybrid_dp_release.cpp.o.d"
  "hybrid_dp_release"
  "hybrid_dp_release.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_dp_release.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
