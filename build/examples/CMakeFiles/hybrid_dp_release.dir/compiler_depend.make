# Empty compiler generated dependencies file for hybrid_dp_release.
# This may be replaced when dependencies are built.
