# Empty compiler generated dependencies file for federated_study.
# This may be replaced when dependencies are built.
