file(REMOVE_RECURSE
  "CMakeFiles/federated_study.dir/federated_study.cpp.o"
  "CMakeFiles/federated_study.dir/federated_study.cpp.o.d"
  "federated_study"
  "federated_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
