# Empty compiler generated dependencies file for collusion_audit.
# This may be replaced when dependencies are built.
