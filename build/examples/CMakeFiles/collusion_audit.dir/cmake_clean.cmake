file(REMOVE_RECURSE
  "CMakeFiles/collusion_audit.dir/collusion_audit.cpp.o"
  "CMakeFiles/collusion_audit.dir/collusion_audit.cpp.o.d"
  "collusion_audit"
  "collusion_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collusion_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
