# Empty compiler generated dependencies file for membership_attack.
# This may be replaced when dependencies are built.
