file(REMOVE_RECURSE
  "CMakeFiles/membership_attack.dir/membership_attack.cpp.o"
  "CMakeFiles/membership_attack.dir/membership_attack.cpp.o.d"
  "membership_attack"
  "membership_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/membership_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
