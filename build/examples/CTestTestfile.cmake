# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_federated_study "/root/repo/build/examples/federated_study" "2" "200" "800")
set_tests_properties(example_federated_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_collusion_audit "/root/repo/build/examples/collusion_audit" "3")
set_tests_properties(example_collusion_audit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hybrid_dp_release "/root/repo/build/examples/hybrid_dp_release" "0.5")
set_tests_properties(example_hybrid_dp_release PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_membership_attack "/root/repo/build/examples/membership_attack")
set_tests_properties(example_membership_attack PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
