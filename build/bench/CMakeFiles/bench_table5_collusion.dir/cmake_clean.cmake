file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_collusion.dir/bench_table5_collusion.cpp.o"
  "CMakeFiles/bench_table5_collusion.dir/bench_table5_collusion.cpp.o.d"
  "bench_table5_collusion"
  "bench_table5_collusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_collusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
