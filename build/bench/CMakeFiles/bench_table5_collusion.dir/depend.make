# Empty dependencies file for bench_table5_collusion.
# This may be replaced when dependencies are built.
