# Empty dependencies file for bench_ablation_oblivious.
# This may be replaced when dependencies are built.
