file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_oblivious.dir/bench_ablation_oblivious.cpp.o"
  "CMakeFiles/bench_ablation_oblivious.dir/bench_ablation_oblivious.cpp.o.d"
  "bench_ablation_oblivious"
  "bench_ablation_oblivious.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_oblivious.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
