file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lrtest.dir/bench_ablation_lrtest.cpp.o"
  "CMakeFiles/bench_ablation_lrtest.dir/bench_ablation_lrtest.cpp.o.d"
  "bench_ablation_lrtest"
  "bench_ablation_lrtest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lrtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
