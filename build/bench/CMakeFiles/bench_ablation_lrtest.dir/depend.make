# Empty dependencies file for bench_ablation_lrtest.
# This may be replaced when dependencies are built.
