# Empty dependencies file for bench_table4_selection.
# This may be replaced when dependencies are built.
