# Empty dependencies file for gendpr_cli.
# This may be replaced when dependencies are built.
