file(REMOVE_RECURSE
  "CMakeFiles/gendpr_cli.dir/gendpr_cli.cpp.o"
  "CMakeFiles/gendpr_cli.dir/gendpr_cli.cpp.o.d"
  "gendpr"
  "gendpr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gendpr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
