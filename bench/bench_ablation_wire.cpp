// Ablation: what the pooled zero-copy frame path buys over the legacy
// serialize/envelope/seal/frame chain (DESIGN.md §6.5). Both paths are
// implemented side by side at the payload sizes the protocol ships — moment
// responses, count vectors, and LR-matrix tiles — under a counting global
// allocator, so each benchmark reports the two quantities the design cares
// about next to its wall time:
//   CopiesPerFrame  — full passes over the payload bytes (serialize writes
//                     and explicit copies; the AEAD pass is common to both)
//   AllocsPerFrame  — heap allocations per steady-state frame
// The fan-out benches contrast per-peer re-serialization against the
// serialize-once staging the broadcast path uses.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "common/bytes.hpp"
#include "tee/secure_channel.hpp"
#include "wire/buffer_pool.hpp"
#include "wire/frame.hpp"
#include "wire/serialize.hpp"

namespace {

std::atomic<std::uint64_t> g_heap_allocs{0};

}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

// GCC pairs these replacements against the inlined defaults and warns about
// the malloc/free crossover; the pairing here is exactly new->malloc,
// delete->free, so the warning is a false positive.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
#pragma GCC diagnostic pop

namespace {

using namespace gendpr;

struct ChannelFixture {
  tee::QuotingAuthority authority{std::array<std::uint8_t, 32>{0x42}};
  tee::Measurement module = tee::measure("gendpr.trusted", "1.0");
  crypto::Csprng rng_a{std::array<std::uint8_t, 32>{1}};
  crypto::Csprng rng_b{std::array<std::uint8_t, 32>{2}};
  tee::SecureChannel sender{authority, {1, module}, module, true, rng_a};
  tee::SecureChannel receiver{authority, {2, module}, module, false, rng_b};

  ChannelFixture() {
    if (!sender.complete(receiver.handshake_message()).ok() ||
        !receiver.complete(sender.handshake_message()).ok()) {
      std::abort();
    }
  }
};

common::Bytes make_body(std::size_t size) {
  common::Bytes body(size);
  for (std::size_t i = 0; i < size; ++i) {
    body[i] = static_cast<unsigned char>(i * 131 + 7);
  }
  return body;
}

/// The pre-pool chain: serialize to a fresh buffer, copy it behind a type
/// byte (the envelope), seal into a fresh record, copy once more behind the
/// frame header. Three payload passes, four allocations, per frame.
void BM_Wire_LegacyFramePath(benchmark::State& state) {
  ChannelFixture f;
  const common::Bytes payload = make_body(static_cast<std::size_t>(state.range(0)));
  std::uint64_t allocs = 0;
  std::uint64_t frames = 0;
  for (auto _ : state) {
    const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
    common::Bytes body(payload);  // serialize pass 1: message -> bytes
    common::Bytes enveloped;      // pass 2: type byte + body copy
    enveloped.reserve(1 + body.size());
    enveloped.push_back(0x05);
    enveloped.insert(enveloped.end(), body.begin(), body.end());
    auto record = f.sender.seal(enveloped);  // AEAD into a fresh record
    if (!record.ok()) {
      state.SkipWithError("seal failed");
      return;
    }
    // Pass 3: the whole record again, behind the frame header.
    common::Bytes frame = wire::encode_frame(
        1, common::BytesView(record.value().data(), record.value().size()));
    benchmark::DoNotOptimize(frame.data());
    allocs += g_heap_allocs.load(std::memory_order_relaxed) - before;
    frames += 1;
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  state.counters["CopiesPerFrame"] = 3.0;
  state.counters["AllocsPerFrame"] =
      frames ? static_cast<double>(allocs) / static_cast<double>(frames) : 0.0;
}
BENCHMARK(BM_Wire_LegacyFramePath)
    ->Arg(56)         // one moments response
    ->Arg(4096)       // count vector, 1,000 SNPs
    ->Arg(64 << 10)   // phase-2 tile
    ->Arg(1 << 20)    // LR matrix slice
    ->Arg(4 << 20);   // LR matrix scale

/// The pooled chain: serialize once into the buffer's final wire position,
/// seal in place, stamp the header over the reserved headroom. One payload
/// pass; the warm pool makes the steady state allocation-free.
void BM_Wire_PooledFramePath(benchmark::State& state) {
  ChannelFixture f;
  const common::Bytes payload = make_body(static_cast<std::size_t>(state.range(0)));
  const common::BytesView payload_view(payload.data(), payload.size());
  wire::BufferPool pool(4);
  std::uint64_t allocs = 0;
  std::uint64_t frames = 0;
  const auto send_one = [&](bool measured) {
    const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
    wire::WireBuffer buf =
        wire::WireBuffer::for_record(pool, 1 + payload_view.size());
    wire::Writer w(std::move(buf).release_storage());
    w.u8(0x05);              // envelope type byte, in place
    w.raw(payload_view);     // the single payload pass
    buf.adopt_storage(std::move(w).take());
    if (!f.sender.seal_in_place(buf).ok()) {
      state.SkipWithError("seal failed");
      return;
    }
    buf.finish_frame(1);
    benchmark::DoNotOptimize(buf.frame().data());
    if (measured) {
      allocs += g_heap_allocs.load(std::memory_order_relaxed) - before;
      frames += 1;
    }
  };
  for (int i = 0; i < 8; ++i) send_one(false);  // warm the pool
  for (auto _ : state) send_one(true);
  state.SetBytesProcessed(state.iterations() * state.range(0));
  state.counters["CopiesPerFrame"] = 1.0;
  state.counters["AllocsPerFrame"] =
      frames ? static_cast<double>(allocs) / static_cast<double>(frames) : 0.0;
}
BENCHMARK(BM_Wire_PooledFramePath)
    ->Arg(56)
    ->Arg(4096)
    ->Arg(64 << 10)
    ->Arg(1 << 20)
    ->Arg(4 << 20);

/// Broadcast to G-1 peers, re-serializing per recipient (the old loop).
void BM_Wire_FanoutReserialize(benchmark::State& state) {
  ChannelFixture f;
  constexpr int kPeers = 7;  // G = 8 star
  const common::Bytes payload = make_body(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    for (int peer = 0; peer < kPeers; ++peer) {
      common::Bytes enveloped;
      enveloped.reserve(1 + payload.size());
      enveloped.push_back(0x05);
      enveloped.insert(enveloped.end(), payload.begin(), payload.end());
      auto record = f.sender.seal(enveloped);
      if (!record.ok()) {
        state.SkipWithError("seal failed");
        return;
      }
      benchmark::DoNotOptimize(record.value().data());
    }
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * kPeers);
  state.counters["SerializationsPerBroadcast"] = kPeers;
}
BENCHMARK(BM_Wire_FanoutReserialize)->Arg(4096)->Arg(64 << 10);

/// Broadcast to G-1 peers off one staged body: serialize exactly once, pay
/// only the per-peer AEAD pass (the seal_from path the sessions use).
void BM_Wire_FanoutSerializeOnce(benchmark::State& state) {
  ChannelFixture f;
  constexpr int kPeers = 7;
  const common::Bytes payload = make_body(static_cast<std::size_t>(state.range(0)));
  wire::BufferPool pool(4);
  for (auto _ : state) {
    wire::Writer w;
    w.reserve(1 + payload.size());
    w.u8(0x05);
    w.raw(common::BytesView(payload.data(), payload.size()));
    const common::Bytes staged = std::move(w).take();
    const common::BytesView staged_view(staged.data(), staged.size());
    for (int peer = 0; peer < kPeers; ++peer) {
      wire::WireBuffer record;
      if (!f.sender.seal_from(pool, staged_view, record).ok()) {
        state.SkipWithError("seal failed");
        return;
      }
      record.finish_frame(1);
      benchmark::DoNotOptimize(record.frame().data());
    }
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * kPeers);
  state.counters["SerializationsPerBroadcast"] = 1;
}
BENCHMARK(BM_Wire_FanoutSerializeOnce)->Arg(4096)->Arg(64 << 10);

}  // namespace

BENCHMARK_MAIN();
