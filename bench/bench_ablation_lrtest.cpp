// Ablation: LR-test selection strategy (DESIGN.md §4).
//
// GenDPR/SecureGenome use an empirical subset search (greedy forward
// admission with exact power re-evaluation). The cheap alternative is a
// one-shot analytic filter: score every SNP by its case/reference mean LR
// gap and keep everything below a fixed quantile, without re-checking the
// joint power. This bench compares running time, retained-SNP count, and -
// the reason the empirical search wins - the actual adversary power of the
// released subset.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <numeric>

#include "bench_common.hpp"
#include "common/thread_pool.hpp"
#include "genome/bitplanes.hpp"
#include "stats/lr_test.hpp"

namespace {

using namespace gendpr;
using namespace gendpr::bench;

struct LrInputs {
  stats::LrMatrix case_lr;
  stats::LrMatrix ref_lr;
};

LrInputs make_inputs(std::size_t cols) {
  const genome::Cohort& cohort = cohort_for(kPaperCasesHalf, 1000);
  const auto case_counts = cohort.cases.allele_counts();
  const auto ref_counts = cohort.controls.allele_counts();
  std::vector<std::uint32_t> snps(cols);
  std::iota(snps.begin(), snps.end(), 0u);
  std::vector<double> case_freq(cols), ref_freq(cols);
  for (std::size_t i = 0; i < cols; ++i) {
    case_freq[i] = static_cast<double>(case_counts[i]) /
                   static_cast<double>(cohort.cases.num_individuals());
    ref_freq[i] = static_cast<double>(ref_counts[i]) /
                  static_cast<double>(cohort.controls.num_individuals());
  }
  const stats::LrWeights weights = stats::lr_weights(case_freq, ref_freq);
  return {stats::build_lr_matrix(cohort.cases, snps, weights),
          stats::build_lr_matrix(cohort.controls, snps, weights)};
}

/// Power of a fixed column subset (exact, for judging both strategies).
double subset_power(const LrInputs& inputs,
                    const std::vector<std::uint32_t>& columns) {
  std::vector<double> case_scores(inputs.case_lr.rows(), 0.0);
  std::vector<double> ref_scores(inputs.ref_lr.rows(), 0.0);
  for (std::uint32_t c : columns) {
    for (std::size_t r = 0; r < inputs.case_lr.rows(); ++r) {
      case_scores[r] += inputs.case_lr.at(r, c);
    }
    for (std::size_t r = 0; r < inputs.ref_lr.rows(); ++r) {
      ref_scores[r] += inputs.ref_lr.at(r, c);
    }
  }
  return stats::detection_power(case_scores, ref_scores, 0.1, nullptr);
}

void BM_LrSelection_EmpiricalGreedy(benchmark::State& state) {
  const LrInputs inputs = make_inputs(state.range(0));
  stats::LrSelectionResult result;
  for (auto _ : state) {
    result = stats::select_safe_snps(inputs.case_lr, inputs.ref_lr,
                                     stats::LrSelectionParams{});
    benchmark::DoNotOptimize(result.safe_columns);
  }
  state.counters["retained"] =
      static_cast<double>(result.safe_columns.size());
  state.counters["power"] = subset_power(inputs, result.safe_columns);
}
BENCHMARK(BM_LrSelection_EmpiricalGreedy)
    ->Arg(100)
    ->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_LrSelection_EmpiricalGreedyPooled(benchmark::State& state) {
  const LrInputs inputs = make_inputs(state.range(0));
  common::ThreadPool pool;
  stats::LrSelectionResult result;
  for (auto _ : state) {
    result = stats::select_safe_snps(inputs.case_lr, inputs.ref_lr,
                                     stats::LrSelectionParams{}, &pool);
    benchmark::DoNotOptimize(result.safe_columns);
  }
  state.counters["retained"] =
      static_cast<double>(result.safe_columns.size());
  state.counters["power"] = subset_power(inputs, result.safe_columns);
}
BENCHMARK(BM_LrSelection_EmpiricalGreedyPooled)
    ->Arg(100)
    ->Arg(400)
    ->Unit(benchmark::kMillisecond);

// Packed-vs-bitplane comparison for the LR-matrix fill (phase-3 input prep):
// per-element get() against the word-at-a-time plane walk.
void BM_LrBuild_PackedScalar(benchmark::State& state) {
  const genome::Cohort& cohort = cohort_for(kPaperCasesHalf, 1000);
  const std::size_t cols = state.range(0);
  const auto case_counts = cohort.cases.allele_counts();
  const auto ref_counts = cohort.controls.allele_counts();
  std::vector<std::uint32_t> snps(cols);
  std::iota(snps.begin(), snps.end(), 0u);
  std::vector<double> case_freq(cols), ref_freq(cols);
  for (std::size_t i = 0; i < cols; ++i) {
    case_freq[i] = static_cast<double>(case_counts[i]) /
                   static_cast<double>(cohort.cases.num_individuals());
    ref_freq[i] = static_cast<double>(ref_counts[i]) /
                  static_cast<double>(cohort.controls.num_individuals());
  }
  const stats::LrWeights weights = stats::lr_weights(case_freq, ref_freq);
  for (auto _ : state) {
    const stats::LrMatrix lr =
        stats::build_lr_matrix(cohort.cases, snps, weights);
    benchmark::DoNotOptimize(lr);
  }
}
BENCHMARK(BM_LrBuild_PackedScalar)
    ->Arg(100)
    ->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_LrBuild_Bitplane(benchmark::State& state) {
  const genome::Cohort& cohort = cohort_for(kPaperCasesHalf, 1000);
  const std::size_t cols = state.range(0);
  const genome::BitPlanes planes(cohort.cases);
  const auto& case_counts = planes.allele_counts();
  const auto ref_counts = cohort.controls.allele_counts();
  std::vector<std::uint32_t> snps(cols);
  std::iota(snps.begin(), snps.end(), 0u);
  std::vector<double> case_freq(cols), ref_freq(cols);
  for (std::size_t i = 0; i < cols; ++i) {
    case_freq[i] = static_cast<double>(case_counts[i]) /
                   static_cast<double>(planes.num_individuals());
    ref_freq[i] = static_cast<double>(ref_counts[i]) /
                  static_cast<double>(cohort.controls.num_individuals());
  }
  const stats::LrWeights weights = stats::lr_weights(case_freq, ref_freq);
  for (auto _ : state) {
    const stats::LrMatrix lr = stats::build_lr_matrix(planes, snps, weights);
    benchmark::DoNotOptimize(lr);
  }
}
BENCHMARK(BM_LrBuild_Bitplane)
    ->Arg(100)
    ->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_LrSelection_AnalyticOneShot(benchmark::State& state) {
  const LrInputs inputs = make_inputs(state.range(0));
  std::vector<std::uint32_t> retained;
  for (auto _ : state) {
    // Per-SNP identifying gap, then keep the lowest 90%.
    const std::size_t cols = inputs.case_lr.cols();
    std::vector<double> gap(cols, 0.0);
    for (std::size_t c = 0; c < cols; ++c) {
      double case_mean = 0.0, ref_mean = 0.0;
      for (std::size_t r = 0; r < inputs.case_lr.rows(); ++r) {
        case_mean += inputs.case_lr.at(r, c);
      }
      for (std::size_t r = 0; r < inputs.ref_lr.rows(); ++r) {
        ref_mean += inputs.ref_lr.at(r, c);
      }
      gap[c] = case_mean / static_cast<double>(inputs.case_lr.rows()) -
               ref_mean / static_cast<double>(inputs.ref_lr.rows());
    }
    std::vector<double> sorted_gap = gap;
    std::sort(sorted_gap.begin(), sorted_gap.end());
    const double cutoff = sorted_gap[(cols * 9) / 10];
    retained.clear();
    for (std::size_t c = 0; c < cols; ++c) {
      if (gap[c] <= cutoff) retained.push_back(static_cast<std::uint32_t>(c));
    }
    benchmark::DoNotOptimize(retained);
  }
  state.counters["retained"] = static_cast<double>(retained.size());
  state.counters["power"] = subset_power(inputs, retained);
}
BENCHMARK(BM_LrSelection_AnalyticOneShot)
    ->Arg(100)
    ->Arg(400)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
