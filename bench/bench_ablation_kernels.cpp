// Ablation: what do the SIMD bit-plane kernels buy? (DESIGN.md §2.2).
//
// Benches the three dispatched kernels — plane popcount (allele counts),
// AND+popcount over plane pairs (the non-marginal LD moment), and the
// indicator-select behind LrBasis::derive — per backend over protocol-sized
// inputs, so the portable/AVX2/AVX-512 columns of the same kernel are
// directly comparable. A backend the CPU lacks is skipped, not faked. The
// tail bench runs the same federated study monolithic and SNP-tiled to show
// the tiling ablation on end-to-end time and the leader's transient EPC
// peak (and, with GENDPR_REPORT_DIR set, drops a tiled run report CI can
// feed through tools/check_report.py).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <random>
#include <vector>

#include "bench_common.hpp"
#include "genome/kernels/kernels.hpp"

namespace {

using namespace gendpr;
using namespace gendpr::bench;
using genome::kernels::KernelBackend;

std::vector<std::uint64_t> random_words(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::uint64_t> words(n);
  for (auto& w : words) w = rng();
  return words;
}

bool skip_if_unavailable(benchmark::State& state, KernelBackend backend) {
  if (!genome::kernels::kernel_backend_available(backend)) {
    state.SkipWithError("kernel backend unavailable on this CPU");
    return true;
  }
  state.SetLabel(genome::kernels::kernel_backend_name(backend));
  return false;
}

/// Allele-count kernel: one popcount pass over a bit-plane. 2,048 words is
/// one plane of a ~131k-individual aggregate; 32,768 words is the 100k-SNP
/// wide-study shape transposed (many short planes behave like one long one
/// since the kernel is a flat reduction).
void BM_Kernels_Popcount(benchmark::State& state) {
  const auto backend = static_cast<KernelBackend>(state.range(1));
  if (skip_if_unavailable(state, backend)) return;
  const auto& ops = genome::kernels::kernel_ops_for(backend);
  const auto words = random_words(state.range(0), 0xc0ffee);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops.popcount_words(words.data(), words.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) *
                          sizeof(std::uint64_t));
}
BENCHMARK(BM_Kernels_Popcount)
    ->ArgNames({"words", "backend"})
    ->Args({2048, 0})
    ->Args({2048, 1})
    ->Args({2048, 2})
    ->Args({32768, 0})
    ->Args({32768, 1})
    ->Args({32768, 2});

/// LD-moments kernel: popcount(a & b) over two planes. This is the inner
/// loop of every pairwise moment in the greedy LD walk — the hottest kernel
/// of a wide study.
void BM_Kernels_AndPopcount(benchmark::State& state) {
  const auto backend = static_cast<KernelBackend>(state.range(1));
  if (skip_if_unavailable(state, backend)) return;
  const auto& ops = genome::kernels::kernel_ops_for(backend);
  const auto a = random_words(state.range(0), 0xdead);
  const auto b = random_words(state.range(0), 0xbeef);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ops.and_popcount_words(a.data(), b.data(), a.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 2 *
                          sizeof(std::uint64_t));
}
BENCHMARK(BM_Kernels_AndPopcount)
    ->ArgNames({"words", "backend"})
    ->Args({2048, 0})
    ->Args({2048, 1})
    ->Args({2048, 2})
    ->Args({32768, 0})
    ->Args({32768, 1})
    ->Args({32768, 2});

/// LrBasis::derive kernel: per-individual weight select off the genotype
/// indicator. 8,192 individuals matches one basis row block at paper scale.
void BM_Kernels_SelectWeights(benchmark::State& state) {
  const auto backend = static_cast<KernelBackend>(state.range(1));
  if (skip_if_unavailable(state, backend)) return;
  const auto& ops = genome::kernels::kernel_ops_for(backend);
  const std::size_t n = state.range(0);
  std::mt19937_64 rng(0xfeed);
  std::vector<std::uint8_t> indicator(n);
  std::vector<double> when_minor(n), when_major(n), out(n);
  for (std::size_t i = 0; i < n; ++i) {
    indicator[i] = rng() & 1;
    when_minor[i] = static_cast<double>(rng() % 1000) / 997.0;
    when_major[i] = static_cast<double>(rng() % 1000) / 991.0;
  }
  for (auto _ : state) {
    ops.select_weights(indicator.data(), when_minor.data(), when_major.data(),
                       n, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * n * sizeof(double));
}
BENCHMARK(BM_Kernels_SelectWeights)
    ->ArgNames({"n", "backend"})
    ->Args({8192, 0})
    ->Args({8192, 1})
    ->Args({8192, 2});

/// Tiling ablation: the same federated study monolithic (width 0) vs
/// SNP-tiled. Total time barely moves (tiling only re-chunks messages); the
/// leader's transient EPC peak is what drops — that headroom is what admits
/// the 100k-SNP wide study of EXPERIMENTS.md under a fixed EPC limit.
void BM_Kernels_TiledStudy(benchmark::State& state) {
  const auto width = static_cast<std::uint32_t>(state.range(0));
  const genome::Cohort& cohort = cohort_for(kPaperCasesHalf, 1000);
  double total_ms = 0;
  std::uint64_t leader_peak = 0;
  core::StudyResult last;
  obs::Observability observability;
  for (auto _ : state) {
    core::FederationSpec spec;
    spec.num_gdos = 3;
    spec.config.snp_tile_width = width;
    spec.obs = &observability;
    auto run = core::run_federated_study(cohort, spec);
    if (!run.ok()) {
      state.SkipWithError(run.error().to_string().c_str());
      return;
    }
    total_ms = run.value().timings.total_ms;
    leader_peak = run.value().epc_peak_leader;
    last = run.value();
  }
  state.counters["Total_ms"] = total_ms;
  state.counters["LeaderEpcPeak_KiB"] = static_cast<double>(leader_peak) / 1024;
  state.counters["MafTiles"] = last.maf_tiles;
  state.counters["LrTiles"] = last.lr_tiles;
  state.SetLabel(last.kernel_backend);
  write_bench_report("kernels_tiled_w" + std::to_string(width), last,
                     &observability);
}
BENCHMARK(BM_Kernels_TiledStudy)
    ->ArgNames({"tile_width"})
    ->Arg(0)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
