// Ablation: what share of GenDPR's end-to-end time is cryptography?
// (DESIGN.md §4). Measures the AEAD record path at the three message sizes
// the protocol actually ships - allele-count vectors (4*L bytes), moment
// responses (~56 bytes), and LR matrix payloads (MBs) - plus the attested
// handshake, and contrasts a full federated run against the same pipeline
// with no network/crypto (the centralized baseline).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "crypto/aead.hpp"
#include "crypto/gcm.hpp"
#include "gendpr/baselines.hpp"
#include "tee/secure_channel.hpp"

namespace {

using namespace gendpr;
using namespace gendpr::bench;

void BM_Crypto_GcmSeal(benchmark::State& state) {
  const common::Bytes key(32, 0x42);
  const crypto::GcmNonce nonce{};
  const common::Bytes payload(state.range(0), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::gcm_seal(key, nonce, {}, payload));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crypto_GcmSeal)
    ->Arg(56)        // one moments response
    ->Arg(4000)      // count vector, 1,000 SNPs
    ->Arg(40000)     // count vector, 10,000 SNPs
    ->Arg(1 << 22);  // LR matrix scale

void BM_Crypto_GcmOpen(benchmark::State& state) {
  const common::Bytes key(32, 0x42);
  const crypto::GcmNonce nonce{};
  const common::Bytes payload(state.range(0), 0xab);
  const common::Bytes sealed = crypto::gcm_seal(key, nonce, {}, payload);
  for (auto _ : state) {
    auto opened = crypto::gcm_open(key, nonce, {}, sealed);
    benchmark::DoNotOptimize(opened);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crypto_GcmOpen)->Arg(4000)->Arg(1 << 22);

// Per-backend engine benches over a cached GcmContext: no per-record key
// schedule or GHASH table build, so these isolate the kernel throughput the
// two backends deliver. The gcm_seal/gcm_open benches above go through the
// historical wrappers (context built per call) — comparing the two at 56 B
// shows what context caching alone buys on protocol-sized records.
void BM_Crypto_ContextSeal(benchmark::State& state) {
  const auto backend = static_cast<crypto::AeadBackend>(state.range(1));
  if (!crypto::aead_backend_available(backend)) {
    state.SkipWithError("AEAD backend unavailable on this CPU");
    return;
  }
  const common::Bytes key(32, 0x42);
  const crypto::GcmContext ctx(key, backend);
  const crypto::GcmNonce nonce{};
  const common::Bytes payload(state.range(0), 0xab);
  common::Bytes out(payload.size() + crypto::kGcmTagSize);
  for (auto _ : state) {
    ctx.seal_into(nonce, {}, payload, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  state.SetLabel(crypto::aead_backend_name(backend));
}
BENCHMARK(BM_Crypto_ContextSeal)
    ->ArgNames({"bytes", "backend"})
    ->Args({56, 0})
    ->Args({56, 1})
    ->Args({4000, 0})
    ->Args({4000, 1})
    ->Args({1 << 22, 0})
    ->Args({1 << 22, 1});

void BM_Crypto_ContextOpen(benchmark::State& state) {
  const auto backend = static_cast<crypto::AeadBackend>(state.range(1));
  if (!crypto::aead_backend_available(backend)) {
    state.SkipWithError("AEAD backend unavailable on this CPU");
    return;
  }
  const common::Bytes key(32, 0x42);
  const crypto::GcmContext ctx(key, backend);
  const crypto::GcmNonce nonce{};
  const common::Bytes payload(state.range(0), 0xab);
  const common::Bytes sealed = ctx.seal(nonce, {}, payload);
  common::Bytes scratch;
  for (auto _ : state) {
    if (!ctx.open_to(nonce, {}, sealed, scratch).ok()) {
      state.SkipWithError("open failed");
      return;
    }
    benchmark::DoNotOptimize(scratch.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  state.SetLabel(crypto::aead_backend_name(backend));
}
BENCHMARK(BM_Crypto_ContextOpen)
    ->ArgNames({"bytes", "backend"})
    ->Args({4000, 0})
    ->Args({4000, 1})
    ->Args({1 << 22, 0})
    ->Args({1 << 22, 1});

void BM_Crypto_AttestedHandshake(benchmark::State& state) {
  tee::QuotingAuthority authority(std::array<std::uint8_t, 32>{1});
  const tee::Measurement module = tee::measure("gendpr.trusted", "1.0.0");
  crypto::Csprng rng(std::array<std::uint8_t, 32>{2});
  for (auto _ : state) {
    tee::SecureChannel a(authority, {1, module}, module, true, rng);
    tee::SecureChannel b(authority, {2, module}, module, false, rng);
    benchmark::DoNotOptimize(a.complete(b.handshake_message()));
    benchmark::DoNotOptimize(b.complete(a.handshake_message()));
  }
}
BENCHMARK(BM_Crypto_AttestedHandshake)->Unit(benchmark::kMicrosecond);

/// End-to-end contrast: federated (attestation + AEAD on every exchange)
/// vs the same statistics with no crypto at all. The delta bounds the total
/// crypto + transport share.
void BM_Crypto_FederatedVsPlain(benchmark::State& state) {
  const genome::Cohort& cohort = cohort_for(kPaperCasesHalf, 1000);
  double federated_ms = 0;
  double plain_ms = 0;
  for (auto _ : state) {
    core::FederationSpec spec;
    spec.num_gdos = 3;
    auto run = core::run_federated_study(cohort, spec);
    if (!run.ok()) {
      state.SkipWithError(run.error().to_string().c_str());
      return;
    }
    federated_ms = run.value().timings.total_ms;
    const auto central = core::run_centralized(cohort, core::StudyConfig{});
    plain_ms = central.timings.total_ms;
  }
  state.counters["Federated_ms"] = federated_ms;
  state.counters["PlainCentral_ms"] = plain_ms;
  state.counters["OverheadPct"] =
      plain_ms > 0 ? 100.0 * (federated_ms - plain_ms) / plain_ms : 0.0;
}
BENCHMARK(BM_Crypto_FederatedVsPlain)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
