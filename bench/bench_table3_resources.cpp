// Reproduces Table 3: GenDPR's average resource utilization across
// federation sizes (2/3/5/7 GDOs) and SNP counts (1,000 / 10,000), plus the
// §7.1 bandwidth accounting:
//   * enclave memory (EPC peak, leader and members) - the paper reports
//     ~2 MB per enclave;
//   * bytes exchanged per count vector: 4 * L_des plus AEAD overhead;
//   * genome outsourcing avoided: 2 * L_des * N_T bits never leave GDOs.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "tee/secure_channel.hpp"

namespace {

using namespace gendpr;
using namespace gendpr::bench;

void BM_Table3_Resources(benchmark::State& state) {
  const std::uint32_t num_gdos = static_cast<std::uint32_t>(state.range(0));
  const std::size_t num_snps = state.range(1);
  const genome::Cohort& cohort = cohort_for(kPaperCasesFull, num_snps);
  core::FederationSpec spec;
  spec.num_gdos = num_gdos;
  core::StudyResult result;
  for (auto _ : state) {
    auto run = core::run_federated_study(cohort, spec);
    if (!run.ok()) {
      state.SkipWithError(run.error().to_string().c_str());
      return;
    }
    result = std::move(run).take();
  }

  const double n_total = static_cast<double>(
      cohort.cases.num_individuals() + cohort.controls.num_individuals());
  state.counters["LeaderEPC_KB"] =
      static_cast<double>(result.epc_peak_leader) / 1024.0;
  state.counters["MemberEPC_KB"] =
      static_cast<double>(result.epc_peak_members_max) / 1024.0;
  state.counters["NetTotal_KB"] =
      static_cast<double>(result.network_bytes_total) / 1024.0;
  state.counters["LeaderRecv_KB"] =
      static_cast<double>(result.leader_bytes_received) / 1024.0;
  // Plaintext size of one allele-count vector (4 bytes/SNP, §7.1) and the
  // encrypted-record size actually sent.
  state.counters["CountVector_B"] = 4.0 * static_cast<double>(num_snps);
  state.counters["CountVectorEnc_B"] =
      4.0 * static_cast<double>(num_snps) +
      static_cast<double>(tee::SecureChannel::record_overhead());
  // What a genome-pooling design would have shipped: 2 bits per SNP per
  // genome (§7.1), in KB.
  state.counters["GenomeShipAvoided_KB"] =
      2.0 * static_cast<double>(num_snps) * n_total / 8.0 / 1024.0;
  state.counters["Total_ms"] = result.timings.total_ms;
}
BENCHMARK(BM_Table3_Resources)
    ->ArgsProduct({{2, 3, 5, 7}, {1000, 10000}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
