// Ablation: which membership-attack statistic should the assessment use?
//
// Reproduces the result the paper's §3.2.3 cites from SecureGenome: the
// likelihood-ratio test is at least as powerful as Homer et al.'s distance
// statistic, which is why GenDPR bounds the LR-test's power rather than
// Homer's. Reports detection power (at 10% FPR) of both attacks against the
// same unprotected release, plus their score-computation cost.
#include <benchmark/benchmark.h>

#include <numeric>

#include "bench_common.hpp"
#include "stats/attacks.hpp"

namespace {

using namespace gendpr;
using namespace gendpr::bench;

struct ReleaseView {
  const genome::Cohort* cohort;
  std::vector<std::uint32_t> released;
  std::vector<double> case_freq;
  std::vector<double> ref_freq;
};

ReleaseView make_release(std::size_t num_snps) {
  const genome::Cohort& cohort = cohort_for(kPaperCasesHalf, 1000);
  ReleaseView view;
  view.cohort = &cohort;
  view.released.resize(num_snps);
  std::iota(view.released.begin(), view.released.end(), 0u);
  const auto case_counts = cohort.cases.allele_counts(view.released);
  const auto ref_counts = cohort.controls.allele_counts(view.released);
  for (std::size_t i = 0; i < num_snps; ++i) {
    view.case_freq.push_back(
        static_cast<double>(case_counts[i]) /
        static_cast<double>(cohort.cases.num_individuals()));
    view.ref_freq.push_back(
        static_cast<double>(ref_counts[i]) /
        static_cast<double>(cohort.controls.num_individuals()));
  }
  return view;
}

void BM_Attack_LrTest(benchmark::State& state) {
  const ReleaseView view = make_release(state.range(0));
  stats::AttackPower power;
  for (auto _ : state) {
    const auto member = stats::lr_scores(view.cohort->cases, view.released,
                                         view.case_freq, view.ref_freq);
    const auto nonmember = stats::lr_scores(
        view.cohort->controls, view.released, view.case_freq, view.ref_freq);
    power = stats::evaluate_attack(member, nonmember, 0.1);
    benchmark::DoNotOptimize(power);
  }
  state.counters["power"] = power.power;
}
BENCHMARK(BM_Attack_LrTest)
    ->Arg(200)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_Attack_Homer(benchmark::State& state) {
  const ReleaseView view = make_release(state.range(0));
  stats::AttackPower power;
  for (auto _ : state) {
    const auto member = stats::homer_scores(
        view.cohort->cases, view.released, view.case_freq, view.ref_freq);
    const auto nonmember = stats::homer_scores(
        view.cohort->controls, view.released, view.case_freq, view.ref_freq);
    power = stats::evaluate_attack(member, nonmember, 0.1);
    benchmark::DoNotOptimize(power);
  }
  state.counters["power"] = power.power;
}
BENCHMARK(BM_Attack_Homer)
    ->Arg(200)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
