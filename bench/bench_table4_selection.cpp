// Reproduces Table 4: number of SNPs retained after each verification phase
// (MAF / LD / LR) for the centralized baseline, GenDPR, and the naive
// distributed protocol, over {7,430, 14,860} case genomes and
// {1,000, 2,500, 5,000, 10,000} SNPs.
//
// The paper's headline (asserted in tests/gendpr/equivalence_test.cpp and
// re-checked here via the GenDPRMatchesCentralized counter): GenDPR retains
// exactly the centralized selection in every cell, while the naive protocol
// diverges at the LD and LR stages.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "gendpr/baselines.hpp"

namespace {

using namespace gendpr;
using namespace gendpr::bench;

void BM_Table4_Selection(benchmark::State& state) {
  const std::size_t num_case = state.range(0);
  const std::size_t num_snps = state.range(1);
  const genome::Cohort& cohort = cohort_for(num_case, num_snps);

  core::BaselineResult centralized;
  core::BaselineResult naive;
  core::StudyResult gendpr_result;
  for (auto _ : state) {
    centralized = core::run_centralized(cohort, core::StudyConfig{});
    naive = core::run_naive_distributed(cohort, core::StudyConfig{}, 3);
    core::FederationSpec spec;
    spec.num_gdos = 3;
    auto run = core::run_federated_study(cohort, spec);
    if (!run.ok()) {
      state.SkipWithError(run.error().to_string().c_str());
      return;
    }
    gendpr_result = std::move(run).take();
  }

  state.counters["Central_MAF"] =
      static_cast<double>(centralized.outcome.l_prime.size());
  state.counters["Central_LD"] =
      static_cast<double>(centralized.outcome.l_double_prime.size());
  state.counters["Central_LR"] =
      static_cast<double>(centralized.outcome.l_safe.size());
  state.counters["GenDPR_MAF"] =
      static_cast<double>(gendpr_result.outcome.l_prime.size());
  state.counters["GenDPR_LD"] =
      static_cast<double>(gendpr_result.outcome.l_double_prime.size());
  state.counters["GenDPR_LR"] =
      static_cast<double>(gendpr_result.outcome.l_safe.size());
  state.counters["Naive_MAF"] =
      static_cast<double>(naive.outcome.l_prime.size());
  state.counters["Naive_LD"] =
      static_cast<double>(naive.outcome.l_double_prime.size());
  state.counters["Naive_LR"] =
      static_cast<double>(naive.outcome.l_safe.size());
  state.counters["GenDPRMatchesCentralized"] =
      (gendpr_result.outcome.l_prime == centralized.outcome.l_prime &&
       gendpr_result.outcome.l_double_prime ==
           centralized.outcome.l_double_prime &&
       gendpr_result.outcome.l_safe == centralized.outcome.l_safe)
          ? 1.0
          : 0.0;
  state.counters["NaiveDiverges"] =
      (naive.outcome.l_double_prime != centralized.outcome.l_double_prime ||
       naive.outcome.l_safe != centralized.outcome.l_safe)
          ? 1.0
          : 0.0;
}
BENCHMARK(BM_Table4_Selection)
    ->ArgsProduct({{kPaperCasesHalf, kPaperCasesFull},
                   {1000, 2500, 5000, 10000}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
