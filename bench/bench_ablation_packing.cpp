// Ablation: bit-packed vs byte-per-genotype storage (DESIGN.md §4).
//
// The enclave working set is the scarce resource under SGX1's ~128 MB EPC;
// bit-packing is what keeps a GDO's slice of 14,860 x 10,000 genotypes at
// ~2 MB (Table 3 scale). This bench quantifies the memory factor and the
// compute cost/benefit on the two hot access patterns: per-SNP allele
// counting (phase 1) and random get() (LD moments).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "genome/genotype.hpp"

namespace {

using namespace gendpr;
using namespace gendpr::bench;

genome::GenotypeMatrix make_packed(std::size_t n, std::size_t l) {
  common::Rng rng(3);
  genome::GenotypeMatrix m(n, l);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < l; ++j) {
      if (rng.bernoulli(0.3)) m.set(i, j, true);
    }
  }
  return m;
}

genome::UnpackedGenotypeMatrix make_unpacked(std::size_t n, std::size_t l) {
  common::Rng rng(3);
  genome::UnpackedGenotypeMatrix m(n, l);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < l; ++j) {
      if (rng.bernoulli(0.3)) m.set(i, j, true);
    }
  }
  return m;
}

void BM_Packing_PackedAlleleCounts(benchmark::State& state) {
  const auto m = make_packed(scaled(14860), state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.allele_counts());
  }
  state.counters["storage_KB"] =
      static_cast<double>(m.storage_bytes()) / 1024.0;
}
BENCHMARK(BM_Packing_PackedAlleleCounts)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_Packing_UnpackedAlleleCounts(benchmark::State& state) {
  const auto m = make_unpacked(scaled(14860), state.range(0));
  for (auto _ : state) {
    std::vector<std::uint32_t> counts(state.range(0));
    for (std::size_t l = 0; l < counts.size(); ++l) {
      counts[l] = m.allele_count(l);
    }
    benchmark::DoNotOptimize(counts);
  }
  state.counters["storage_KB"] =
      static_cast<double>(m.storage_bytes()) / 1024.0;
}
BENCHMARK(BM_Packing_UnpackedAlleleCounts)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_Packing_PackedRandomGet(benchmark::State& state) {
  const auto m = make_packed(scaled(14860), 1000);
  common::Rng rng(7);
  std::uint64_t sum = 0;
  for (auto _ : state) {
    const std::size_t i = rng.uniform_int(m.num_individuals());
    const std::size_t j = rng.uniform_int(m.num_snps());
    sum += m.get(i, j) ? 1 : 0;
  }
  benchmark::DoNotOptimize(sum);
}
BENCHMARK(BM_Packing_PackedRandomGet);

void BM_Packing_UnpackedRandomGet(benchmark::State& state) {
  const auto m = make_unpacked(scaled(14860), 1000);
  common::Rng rng(7);
  std::uint64_t sum = 0;
  for (auto _ : state) {
    const std::size_t i = rng.uniform_int(scaled(14860));
    const std::size_t j = rng.uniform_int(1000);
    sum += m.get(i, j) ? 1 : 0;
  }
  benchmark::DoNotOptimize(sum);
}
BENCHMARK(BM_Packing_UnpackedRandomGet);

}  // namespace

BENCHMARK_MAIN();
