// Ablation: bit-packed vs byte-per-genotype storage, and row-major packed
// storage vs the SNP-major bit planes (DESIGN.md §4, §2.1).
//
// The enclave working set is the scarce resource under SGX1's ~128 MB EPC;
// bit-packing is what keeps a GDO's slice of 14,860 x 10,000 genotypes at
// ~2 MB (Table 3 scale). This bench quantifies the memory factor and the
// compute cost/benefit on the two hot access patterns: per-SNP allele
// counting (phase 1) and LD-moment computation (phase 2), the latter both
// through the bit-by-bit get() path and the word-parallel bit planes.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "genome/bitplanes.hpp"
#include "genome/genotype.hpp"
#include "stats/ld.hpp"

namespace {

using namespace gendpr;
using namespace gendpr::bench;

genome::GenotypeMatrix make_packed(std::size_t n, std::size_t l) {
  common::Rng rng(3);
  genome::GenotypeMatrix m(n, l);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < l; ++j) {
      if (rng.bernoulli(0.3)) m.set(i, j, true);
    }
  }
  return m;
}

genome::UnpackedGenotypeMatrix make_unpacked(std::size_t n, std::size_t l) {
  common::Rng rng(3);
  genome::UnpackedGenotypeMatrix m(n, l);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < l; ++j) {
      if (rng.bernoulli(0.3)) m.set(i, j, true);
    }
  }
  return m;
}

void BM_Packing_PackedAlleleCounts(benchmark::State& state) {
  const auto m = make_packed(scaled(14860), state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.allele_counts());
  }
  state.counters["storage_KB"] =
      static_cast<double>(m.storage_bytes()) / 1024.0;
}
BENCHMARK(BM_Packing_PackedAlleleCounts)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_Packing_UnpackedAlleleCounts(benchmark::State& state) {
  const auto m = make_unpacked(scaled(14860), state.range(0));
  for (auto _ : state) {
    std::vector<std::uint32_t> counts(state.range(0));
    for (std::size_t l = 0; l < counts.size(); ++l) {
      counts[l] = m.allele_count(l);
    }
    benchmark::DoNotOptimize(counts);
  }
  state.counters["storage_KB"] =
      static_cast<double>(m.storage_bytes()) / 1024.0;
}
BENCHMARK(BM_Packing_UnpackedAlleleCounts)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_Packing_BitplaneBuild(benchmark::State& state) {
  const auto m = make_packed(scaled(14860), state.range(0));
  for (auto _ : state) {
    genome::BitPlanes planes(m);
    benchmark::DoNotOptimize(planes);
  }
  const genome::BitPlanes planes(m);
  state.counters["storage_KB"] =
      static_cast<double>(planes.storage_bytes()) / 1024.0;
}
BENCHMARK(BM_Packing_BitplaneBuild)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_Packing_BitplaneAlleleCounts(benchmark::State& state) {
  // Counts are precomputed at plane-build time; per-study lookups copy them.
  const auto m = make_packed(scaled(14860), state.range(0));
  const genome::BitPlanes planes(m);
  for (auto _ : state) {
    std::vector<std::uint32_t> counts = planes.allele_counts();
    benchmark::DoNotOptimize(counts);
  }
  state.counters["storage_KB"] =
      static_cast<double>(planes.storage_bytes()) / 1024.0;
}
BENCHMARK(BM_Packing_BitplaneAlleleCounts)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// The LD-moments kernel over adjacent SNP pairs - exactly the inner loop of
// the phase-2 greedy walk. Scalar path: one get() per individual per SNP.
// Bit-plane path: cached popcounts + one AND+popcount word sweep.
void BM_Packing_LdMomentsScalar(benchmark::State& state) {
  const auto m = make_packed(scaled(14860), 1000);
  std::uint32_t a = 0;
  for (auto _ : state) {
    const stats::LdMoments moments = stats::compute_ld_moments(m, a, a + 1);
    benchmark::DoNotOptimize(moments);
    a = (a + 1) % static_cast<std::uint32_t>(m.num_snps() - 1);
  }
}
BENCHMARK(BM_Packing_LdMomentsScalar);

void BM_Packing_LdMomentsBitplane(benchmark::State& state) {
  const auto m = make_packed(scaled(14860), 1000);
  const genome::BitPlanes planes(m);
  std::uint32_t a = 0;
  for (auto _ : state) {
    const stats::LdMoments moments =
        stats::compute_ld_moments(planes, a, a + 1);
    benchmark::DoNotOptimize(moments);
    a = (a + 1) % static_cast<std::uint32_t>(planes.num_snps() - 1);
  }
}
BENCHMARK(BM_Packing_LdMomentsBitplane);

void BM_Packing_PackedRandomGet(benchmark::State& state) {
  const auto m = make_packed(scaled(14860), 1000);
  common::Rng rng(7);
  std::uint64_t sum = 0;
  for (auto _ : state) {
    const std::size_t i = rng.uniform_int(m.num_individuals());
    const std::size_t j = rng.uniform_int(m.num_snps());
    sum += m.get(i, j) ? 1 : 0;
  }
  benchmark::DoNotOptimize(sum);
}
BENCHMARK(BM_Packing_PackedRandomGet);

void BM_Packing_UnpackedRandomGet(benchmark::State& state) {
  const auto m = make_unpacked(scaled(14860), 1000);
  common::Rng rng(7);
  std::uint64_t sum = 0;
  for (auto _ : state) {
    const std::size_t i = rng.uniform_int(scaled(14860));
    const std::size_t j = rng.uniform_int(1000);
    sum += m.get(i, j) ? 1 : 0;
  }
  benchmark::DoNotOptimize(sum);
}
BENCHMARK(BM_Packing_UnpackedRandomGet);

}  // namespace

BENCHMARK_MAIN();
