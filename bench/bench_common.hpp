// Shared workload setup for the reproduction benches.
//
// The paper evaluates on the dbGaP AMD cohort: 14,860 case genomes and
// 13,035 controls (the controls double as the LR-test reference), varying
// the case count between 7,430 and 14,860 and the SNP count between 1,000
// and 10,000. The synthetic generator mirrors those dimensions; see
// DESIGN.md §1 for the substitution rationale.
//
// Set GENDPR_BENCH_SCALE=<float> (e.g. 0.1) to shrink every population for
// quick smoke runs; results keep their shape but not their magnitudes.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "gendpr/federation.hpp"
#include "gendpr/report.hpp"
#include "genome/cohort.hpp"
#include "obs/observability.hpp"

namespace gendpr::bench {

inline double bench_scale() {
  static const double scale = [] {
    const char* env = std::getenv("GENDPR_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    const double parsed = std::atof(env);
    return parsed > 0.0 ? parsed : 1.0;
  }();
  return scale;
}

inline std::size_t scaled(std::size_t n) {
  const auto s = static_cast<std::size_t>(static_cast<double>(n) *
                                          bench_scale());
  return s < 8 ? 8 : s;
}

/// SNP-count scaling with a higher floor: the MAF/LD cutoffs need a few
/// dozen SNPs to leave a non-trivial survivor set, so smoke runs keep at
/// least 64. Benches that sweep SNP counts (table 5) use this; population
/// counts keep using `scaled`.
inline std::size_t scaled_snps(std::size_t n) {
  const auto s = static_cast<std::size_t>(static_cast<double>(n) *
                                          bench_scale());
  return s < 64 ? 64 : s;
}

/// Paper cohort dimensions.
inline constexpr std::size_t kPaperControls = 13035;
inline constexpr std::size_t kPaperCasesFull = 14860;
inline constexpr std::size_t kPaperCasesHalf = 7430;

/// Cached cohort generation: benches sweep G over the same cohort, exactly
/// like the paper reuses one dataset across federation sizes.
inline const genome::Cohort& cohort_for(std::size_t num_case,
                                        std::size_t num_snps) {
  static std::map<std::pair<std::size_t, std::size_t>, genome::Cohort> cache;
  const auto key = std::make_pair(num_case, num_snps);
  auto it = cache.find(key);
  if (it == cache.end()) {
    genome::CohortSpec spec;
    spec.num_case = scaled(num_case);
    spec.num_control = scaled(kPaperControls);
    spec.num_snps = num_snps;  // SNP counts stay at paper scale
    spec.seed = 1039;          // nod to phs001039
    it = cache.emplace(key, genome::generate_cohort(spec)).first;
  }
  return it->second;
}

/// Directory the runtime benches drop per-run reports into, or nullptr when
/// reporting is off. Set GENDPR_REPORT_DIR=<dir> (the CI bench-smoke job
/// does) to get one gendpr.run_report.v2 document per federated bench run
/// alongside the google-benchmark JSON.
inline const char* report_dir() {
  static const char* dir = [] {
    const char* env = std::getenv("GENDPR_REPORT_DIR");
    return (env != nullptr && *env != '\0') ? env : nullptr;
  }();
  return dir;
}

/// Serializes `result` to $GENDPR_REPORT_DIR/<name>.json via the same
/// RunReport path the CLI's --report uses. No-op when reporting is off;
/// a write failure is reported but does not fail the bench.
inline void write_bench_report(const std::string& name,
                               const core::StudyResult& result,
                               const obs::Observability* obs = nullptr) {
  if (report_dir() == nullptr) return;
  core::ReportContext context;
  context.obs = obs;
  const std::string path = std::string(report_dir()) + "/" + name + ".json";
  const auto status =
      core::write_run_report(path, core::make_run_report(result, context));
  if (!status.ok()) {
    std::fprintf(stderr, "bench report: %s\n",
                 status.error().to_string().c_str());
  }
}

}  // namespace gendpr::bench
