// Ablation: §5.6's claim that combination evaluations "can be efficiently
// conducted in parallel inside the leader enclave". Runs the same
// collusion-tolerant study with the leader's per-combination LR selection
// parallelized vs serialized.
//
// Note: on a single-core host the two are expected to tie; the bench also
// reports the combination count so the reader can relate speedup to
// available parallelism.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace gendpr;
using namespace gendpr::bench;

void run_mode(benchmark::State& state, bool parallel) {
  const std::uint32_t num_gdos = static_cast<std::uint32_t>(state.range(0));
  const genome::Cohort& cohort = cohort_for(kPaperCasesHalf, 1000);
  core::FederationSpec spec;
  spec.num_gdos = num_gdos;
  spec.policy = core::CollusionPolicy::conservative();
  spec.parallel_combinations = parallel;
  core::StudyResult result;
  for (auto _ : state) {
    auto run = core::run_federated_study(cohort, spec);
    if (!run.ok()) {
      state.SkipWithError(run.error().to_string().c_str());
      return;
    }
    result = std::move(run).take();
  }
  state.counters["LRtest_ms"] = result.timings.lr_ms;
  state.counters["Total_ms"] = result.timings.total_ms;
  state.counters["Combinations"] =
      static_cast<double>(result.num_combinations);
  state.counters["HardwareThreads"] =
      static_cast<double>(std::thread::hardware_concurrency());
}

void BM_Parallel_Combinations(benchmark::State& state) {
  run_mode(state, true);
}
BENCHMARK(BM_Parallel_Combinations)
    ->Arg(3)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_Serial_Combinations(benchmark::State& state) {
  run_mode(state, false);
}
BENCHMARK(BM_Serial_Combinations)
    ->Arg(3)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
