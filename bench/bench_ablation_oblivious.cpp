// Ablation: cost of the data-oblivious kernels (the paper's §8 future work,
// prototyped in stats/oblivious.hpp). The literature the paper cites reports
// "significant performance overhead" for data-oblivious genomic processing;
// this bench quantifies it for our two hottest kernels.
#include <benchmark/benchmark.h>

#include <numeric>

#include "bench_common.hpp"
#include "stats/oblivious.hpp"

namespace {

using namespace gendpr;
using namespace gendpr::bench;

struct Inputs {
  genome::GenotypeMatrix genotypes;
  std::vector<std::uint32_t> snps;
  stats::LrWeights weights;
  std::vector<double> case_scores;
  std::vector<double> ref_scores;
};

Inputs make_inputs(std::size_t n, std::size_t cols) {
  common::Rng rng(5);
  Inputs in{genome::GenotypeMatrix(n, cols), {}, {}, {}, {}};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t l = 0; l < cols; ++l) {
      if (rng.bernoulli(0.3)) in.genotypes.set(i, l, true);
    }
  }
  in.snps.resize(cols);
  std::iota(in.snps.begin(), in.snps.end(), 0u);
  std::vector<double> case_freq(cols), ref_freq(cols);
  for (auto& f : case_freq) f = 0.2 + 0.3 * rng.uniform();
  for (auto& f : ref_freq) f = 0.2 + 0.3 * rng.uniform();
  in.weights = stats::lr_weights(case_freq, ref_freq);
  in.case_scores.resize(n);
  in.ref_scores.resize(n);
  for (auto& s : in.case_scores) s = rng.normal() + 0.3;
  for (auto& s : in.ref_scores) s = rng.normal();
  return in;
}

void BM_Oblivious_LrBuild_Regular(benchmark::State& state) {
  const Inputs in = make_inputs(scaled(14860), 200);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stats::build_lr_matrix(in.genotypes, in.snps, in.weights));
  }
}
BENCHMARK(BM_Oblivious_LrBuild_Regular)->Unit(benchmark::kMillisecond);

void BM_Oblivious_LrBuild_Oblivious(benchmark::State& state) {
  const Inputs in = make_inputs(scaled(14860), 200);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stats::oblivious_build_lr_matrix(in.genotypes, in.snps, in.weights));
  }
}
BENCHMARK(BM_Oblivious_LrBuild_Oblivious)->Unit(benchmark::kMillisecond);

void BM_Oblivious_Power_Regular(benchmark::State& state) {
  const Inputs in = make_inputs(scaled(13035), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stats::detection_power(in.case_scores, in.ref_scores, 0.1, nullptr));
  }
}
BENCHMARK(BM_Oblivious_Power_Regular)->Unit(benchmark::kMillisecond);

void BM_Oblivious_Power_Oblivious(benchmark::State& state) {
  const Inputs in = make_inputs(scaled(13035), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::oblivious_detection_power(
        in.case_scores, in.ref_scores, 0.1, nullptr));
  }
}
BENCHMARK(BM_Oblivious_Power_Oblivious)->Unit(benchmark::kMillisecond);

void BM_Oblivious_Sort(benchmark::State& state) {
  common::Rng rng(3);
  std::vector<double> base(state.range(0));
  for (auto& v : base) v = rng.normal();
  for (auto _ : state) {
    std::vector<double> data = base;
    stats::oblivious_sort(data);
    benchmark::DoNotOptimize(data);
  }
}
BENCHMARK(BM_Oblivious_Sort)->Arg(1024)->Arg(16384)
    ->Unit(benchmark::kMillisecond);

void BM_Oblivious_StdSort(benchmark::State& state) {
  common::Rng rng(3);
  std::vector<double> base(state.range(0));
  for (auto& v : base) v = rng.normal();
  for (auto _ : state) {
    std::vector<double> data = base;
    std::sort(data.begin(), data.end());
    benchmark::DoNotOptimize(data);
  }
}
BENCHMARK(BM_Oblivious_StdSort)->Arg(1024)->Arg(16384)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
