// Reproduces Table 5: collusion-tolerant GenDPR at 10,000 SNPs and 14,860
// genomes, for G in {3,4,5} and every fixed f plus the conservative
// f={1..G-1} mode. For each setting it reports:
//   * SafeReleased  - SNPs of the f=0 release the tolerant run certifies
//   * Vulnerable    - f=0 SNPs withheld because some honest-subset
//                     combination would expose them to colluders
//   * ReleasedPct   - SafeReleased / |f=0 release| (paper: 71.7%-79.1%)
//   * Combinations  - C(G, G-f) (or the sum over f for conservative mode)
//   * Total_ms      - running time (paper: conservative mode costs the most;
//                     f=G-1 is the cheapest non-trivial setting)
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_common.hpp"

namespace {

using namespace gendpr;
using namespace gendpr::bench;

std::size_t intersection_size(const std::vector<std::uint32_t>& a,
                              const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out.size();
}

const std::vector<std::uint32_t>& f0_safe_set(const genome::Cohort& cohort,
                                              std::uint32_t num_gdos) {
  static std::map<std::uint32_t, std::vector<std::uint32_t>> cache;
  auto it = cache.find(num_gdos);
  if (it == cache.end()) {
    core::FederationSpec spec;
    spec.num_gdos = num_gdos;
    auto run = core::run_federated_study(cohort, spec);
    it = cache.emplace(num_gdos, run.ok() ? run.value().outcome.l_safe
                                          : std::vector<std::uint32_t>{})
             .first;
  }
  return it->second;
}

/// state.range(0) = G; state.range(1) = f, or -1 for conservative mode.
void BM_Table5_Collusion(benchmark::State& state) {
  const std::uint32_t num_gdos = static_cast<std::uint32_t>(state.range(0));
  const std::int64_t f = state.range(1);
  const genome::Cohort& cohort =
      cohort_for(kPaperCasesFull, scaled_snps(10000));
  const auto& f0_safe = f0_safe_set(cohort, num_gdos);

  obs::Observability observability;
  core::FederationSpec spec;
  spec.num_gdos = num_gdos;
  spec.policy = f < 0 ? core::CollusionPolicy::conservative()
                      : core::CollusionPolicy::fixed(
                            static_cast<unsigned>(f));
  spec.obs = report_dir() != nullptr ? &observability : nullptr;
  core::StudyResult result;
  for (auto _ : state) {
    auto run = core::run_federated_study(cohort, spec);
    if (!run.ok()) {
      state.SkipWithError(run.error().to_string().c_str());
      return;
    }
    result = std::move(run).take();
  }

  const std::size_t released =
      intersection_size(result.outcome.l_safe, f0_safe);
  state.counters["SafeReleased"] = static_cast<double>(released);
  state.counters["Vulnerable"] =
      static_cast<double>(f0_safe.size() - released);
  state.counters["ReleasedPct"] =
      f0_safe.empty() ? 0.0
                      : 100.0 * static_cast<double>(released) /
                            static_cast<double>(f0_safe.size());
  state.counters["F0Release"] = static_cast<double>(f0_safe.size());
  state.counters["Combinations"] =
      static_cast<double>(result.num_combinations);
  state.counters["Total_ms"] = result.timings.total_ms;
  state.counters["Phase2Bytes"] =
      static_cast<double>(result.phase2_body_bytes);
  write_bench_report("table5_g" + std::to_string(num_gdos) + "_f" +
                         (f < 0 ? std::string("cons") : std::to_string(f)),
                     result, &observability);
}
/// Pruning ablation at a Table-5 shape one step past the paper's sweep:
/// G = 6, f = 2 is C(6, 4) = 15 combinations, the regime where the
/// intersection-aware sweep pays off. Both modes must certify the exact
/// same safe set; the pruned row discloses how much per-combination work
/// the shrinking candidate mask removed (fewer LD pairs fetched, fewer
/// chi-squared evaluations, full LR derivations collapsed to chain heads
/// plus cheap delta updates). state.range(0) = prune on/off.
void BM_Table5_PruningAblation(benchmark::State& state) {
  const bool prune = state.range(0) != 0;
  const genome::Cohort& cohort =
      cohort_for(kPaperCasesFull, scaled_snps(10000));
  obs::Observability observability;
  core::FederationSpec spec;
  spec.num_gdos = 6;
  spec.policy = core::CollusionPolicy::fixed(2);
  spec.config.prune = prune;
  spec.obs = &observability;
  core::StudyResult result;
  for (auto _ : state) {
    auto run = core::run_federated_study(cohort, spec);
    if (!run.ok()) {
      state.SkipWithError(run.error().to_string().c_str());
      return;
    }
    result = std::move(run).take();
  }

  const auto counter = [&](const char* name) {
    return static_cast<double>(observability.metrics.counter(name));
  };
  state.counters["SafeSnps"] =
      static_cast<double>(result.outcome.l_safe.size());
  state.counters["LdPairsFetched"] =
      static_cast<double>(result.ld_pairs_fetched);
  state.counters["LdMemberRequests"] =
      counter("coordinator.ld_member_requests");
  state.counters["Chi2Values"] = counter("coordinator.chi2_values_computed");
  state.counters["LrMatvecs"] = counter("lr.combination_matvecs");
  state.counters["LrDeltaUpdates"] =
      counter("lr.combination_delta_updates");
  state.counters["Total_ms"] = result.timings.total_ms;
  write_bench_report(prune ? "table5_prune_on" : "table5_prune_off", result,
                     &observability);
}
BENCHMARK(BM_Table5_PruningAblation)
    ->Args({0})
    ->Args({1})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK(BM_Table5_Collusion)
    // G = 3: f = 1, 2, {1,2}
    ->Args({3, 1})
    ->Args({3, 2})
    ->Args({3, -1})
    // G = 4: f = 1, 2, 3, {1,2,3}
    ->Args({4, 1})
    ->Args({4, 2})
    ->Args({4, 3})
    ->Args({4, -1})
    // G = 5: f = 1, 2, 3, 4, {1,2,3,4}
    ->Args({5, 1})
    ->Args({5, 2})
    ->Args({5, 3})
    ->Args({5, 4})
    ->Args({5, -1})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
