// Reproduces Figures 6a/6b: the Fig. 5 running-time comparison at
// 10,000 SNPs (7,430 genomes for 6a, 14,860 for 6b).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "gendpr/baselines.hpp"

namespace {

using namespace gendpr;
using namespace gendpr::bench;

void report(benchmark::State& state, const core::PhaseTimings& t,
            std::size_t safe_count) {
  state.counters["DataAggregation_ms"] = t.aggregation_ms;
  state.counters["Indexing_ms"] = t.indexing_ms;
  state.counters["LD_ms"] = t.ld_ms;
  state.counters["LRtest_ms"] = t.lr_ms;
  state.counters["Total_ms"] = t.total_ms;
  state.counters["safe_snps"] = static_cast<double>(safe_count);
}

void BM_Fig6_Centralized(benchmark::State& state) {
  const std::size_t num_case = state.range(0);
  const genome::Cohort& cohort = cohort_for(num_case, 10000);
  core::BaselineResult result;
  for (auto _ : state) {
    result = core::run_centralized(cohort, core::StudyConfig{});
    benchmark::DoNotOptimize(result.outcome.l_safe);
  }
  report(state, result.timings, result.outcome.l_safe.size());
}
BENCHMARK(BM_Fig6_Centralized)
    ->Arg(kPaperCasesHalf)
    ->Arg(kPaperCasesFull)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_Fig6_GenDPR(benchmark::State& state) {
  const std::size_t num_case = state.range(0);
  const std::uint32_t num_gdos = static_cast<std::uint32_t>(state.range(1));
  const genome::Cohort& cohort = cohort_for(num_case, 10000);
  obs::Observability observability;
  core::FederationSpec spec;
  spec.num_gdos = num_gdos;
  spec.obs = report_dir() != nullptr ? &observability : nullptr;
  core::StudyResult result;
  for (auto _ : state) {
    auto run = core::run_federated_study(cohort, spec);
    if (!run.ok()) {
      state.SkipWithError(run.error().to_string().c_str());
      return;
    }
    result = std::move(run).take();
    benchmark::DoNotOptimize(result.outcome.l_safe);
  }
  report(state, result.timings, result.outcome.l_safe.size());
  state.counters["ModelledDistributed_ms"] = result.modelled_distributed_ms;
  write_bench_report("fig6_gendpr_" + std::to_string(num_case) + "cases_" +
                         std::to_string(num_gdos) + "gdos",
                     result, &observability);
}
BENCHMARK(BM_Fig6_GenDPR)
    ->ArgsProduct({{kPaperCasesHalf, kPaperCasesFull}, {2, 3, 5, 7}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
