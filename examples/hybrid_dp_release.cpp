// Hybrid noise-free + differentially-private release (§5.5).
//
//   $ ./examples/hybrid_dp_release [epsilon]
//
// The paper sketches an extension: SNPs in L_safe are released exactly,
// while statistics over the withheld complement L_des \ L_safe can still be
// published with DP perturbation, so the release covers every SNP of
// interest. This example runs GenDPR, builds the hybrid release, and
// quantifies the utility split (exact vs noisy counts).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "gendpr/federation.hpp"
#include "stats/dp.hpp"

int main(int argc, char** argv) {
  using namespace gendpr;

  const double epsilon = argc > 1 ? std::atof(argv[1]) : 1.0;

  genome::CohortSpec cohort_spec;
  cohort_spec.num_case = 2500;
  cohort_spec.num_control = 2500;
  cohort_spec.num_snps = 600;
  cohort_spec.seed = 13;
  const genome::Cohort cohort = genome::generate_cohort(cohort_spec);

  core::FederationSpec spec;
  spec.num_gdos = 3;
  const auto result = core::run_federated_study(cohort, spec);
  if (!result.ok()) {
    std::fprintf(stderr, "study failed: %s\n",
                 result.error().to_string().c_str());
    return 1;
  }
  const auto& outcome = result.value().outcome;

  // Partition L_des into the noise-free and DP-perturbed parts.
  std::set<std::uint32_t> safe(outcome.l_safe.begin(), outcome.l_safe.end());
  std::vector<std::uint32_t> noisy_part;
  for (std::uint32_t l = 0; l < cohort.cases.num_snps(); ++l) {
    if (safe.count(l) == 0) noisy_part.push_back(l);
  }
  std::printf("L_des = %zu SNPs -> %zu released exactly, %zu released with "
              "Laplace(%g) noise\n",
              cohort.cases.num_snps(), safe.size(), noisy_part.size(),
              1.0 / epsilon);

  // Exact counts over L_safe; DP counts over the complement. Sensitivity 1:
  // one individual changes each count by at most 1 in the binary encoding.
  common::Rng dp_rng(99);
  const auto exact_counts = cohort.cases.allele_counts(outcome.l_safe);
  const auto raw_noisy_counts = cohort.cases.allele_counts(noisy_part);
  const auto dp_counts =
      stats::dp_perturb_counts(raw_noisy_counts, epsilon, 1.0, dp_rng);

  double mean_abs_error = 0.0;
  for (std::size_t i = 0; i < noisy_part.size(); ++i) {
    mean_abs_error +=
        std::abs(dp_counts[i] - static_cast<double>(raw_noisy_counts[i]));
  }
  if (!noisy_part.empty()) {
    mean_abs_error /= static_cast<double>(noisy_part.size());
  }

  std::printf("\nutility report:\n");
  std::printf("  exact part:  %zu counts, error 0 by construction\n",
              exact_counts.size());
  std::printf("  noisy part:  %zu counts, mean |error| %.2f "
              "(theory: %.2f at eps=%g)\n",
              dp_counts.size(), mean_abs_error,
              stats::expected_absolute_error(epsilon, 1.0), epsilon);
  std::printf("  full-coverage release: every one of the %zu desired SNPs "
              "gets a published statistic.\n",
              cohort.cases.num_snps());

  std::printf("\nfirst 5 hybrid release rows:\n");
  std::printf("  %-8s %-10s %-12s\n", "SNP", "mode", "case count");
  for (std::size_t i = 0; i < std::min<std::size_t>(3, outcome.l_safe.size());
       ++i) {
    std::printf("  %-8u %-10s %-12u\n", outcome.l_safe[i], "exact",
                exact_counts[i]);
  }
  for (std::size_t i = 0; i < std::min<std::size_t>(2, noisy_part.size());
       ++i) {
    std::printf("  %-8u %-10s %-12.1f\n", noisy_part[i], "dp-noisy",
                dp_counts[i]);
  }
  return 0;
}
