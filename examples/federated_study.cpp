// Full federated-study walkthrough with a configurable federation.
//
//   $ ./examples/federated_study [num_gdos] [num_snps] [num_case]
//
// Runs GenDPR and the two comparator pipelines from the paper's evaluation
// (the centralized SecureGenome enclave and the naive distributed protocol)
// over the same cohort, then prints a Table 4-style comparison plus the
// resource accounting of §7.1.
#include <cstdio>
#include <cstdlib>

#include "gendpr/baselines.hpp"
#include "gendpr/federation.hpp"

int main(int argc, char** argv) {
  using namespace gendpr;

  const std::uint32_t num_gdos =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 3;
  const std::size_t num_snps =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 1000;
  const std::size_t num_case =
      argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 4000;

  genome::CohortSpec cohort_spec;
  cohort_spec.num_case = num_case;
  cohort_spec.num_control = num_case;
  cohort_spec.num_snps = num_snps;
  cohort_spec.seed = 7;
  std::printf("generating cohort: %zu cases + %zu controls x %zu SNPs...\n",
              cohort_spec.num_case, cohort_spec.num_control, num_snps);
  const genome::Cohort cohort = genome::generate_cohort(cohort_spec);

  // GenDPR.
  core::FederationSpec spec;
  spec.num_gdos = num_gdos;
  const auto gendpr_run = core::run_federated_study(cohort, spec);
  if (!gendpr_run.ok()) {
    std::fprintf(stderr, "GenDPR failed: %s\n",
                 gendpr_run.error().to_string().c_str());
    return 1;
  }
  const core::StudyResult& gendpr = gendpr_run.value();

  // Comparators.
  const core::BaselineResult central =
      core::run_centralized(cohort, spec.config);
  const core::BaselineResult naive =
      core::run_naive_distributed(cohort, spec.config, num_gdos);

  std::printf("\n=== retained SNPs per phase (Table 4 style) ===\n");
  std::printf("%-22s %8s %8s %8s\n", "", "MAF", "LD", "LR");
  std::printf("%-22s %8zu %8zu %8zu\n", "Centralized",
              central.outcome.l_prime.size(),
              central.outcome.l_double_prime.size(),
              central.outcome.l_safe.size());
  std::printf("%-22s %8zu %8zu %8zu\n", "GenDPR",
              gendpr.outcome.l_prime.size(),
              gendpr.outcome.l_double_prime.size(),
              gendpr.outcome.l_safe.size());
  std::printf("%-22s %8zu %8zu %8zu\n", "Naive distributed",
              naive.outcome.l_prime.size(),
              naive.outcome.l_double_prime.size(),
              naive.outcome.l_safe.size());
  std::printf("GenDPR == centralized at every phase: %s\n",
              (gendpr.outcome.l_prime == central.outcome.l_prime &&
               gendpr.outcome.l_double_prime ==
                   central.outcome.l_double_prime &&
               gendpr.outcome.l_safe == central.outcome.l_safe)
                  ? "YES"
                  : "NO");

  std::printf("\n=== running time (leader enclave) ===\n");
  std::printf("%-22s %10s %10s %10s %10s %10s\n", "", "aggr", "index", "LD",
              "LR", "total");
  std::printf("%-22s %9.1fms %9.1fms %9.1fms %9.1fms %9.1fms\n", "GenDPR",
              gendpr.timings.aggregation_ms, gendpr.timings.indexing_ms,
              gendpr.timings.ld_ms, gendpr.timings.lr_ms,
              gendpr.timings.total_ms);
  std::printf("%-22s %9.1fms %9.1fms %9.1fms %9.1fms %9.1fms\n",
              "Centralized", central.timings.aggregation_ms,
              central.timings.indexing_ms, central.timings.ld_ms,
              central.timings.lr_ms, central.timings.total_ms);
  std::printf("modelled multi-host GenDPR total: %.1f ms\n",
              gendpr.modelled_distributed_ms);

  std::printf("\n=== resources (§7.1) ===\n");
  std::printf("leader enclave peak:  %8.1f KB\n",
              static_cast<double>(gendpr.epc_peak_leader) / 1024.0);
  std::printf("member enclave peak:  %8.1f KB (max)\n",
              static_cast<double>(gendpr.epc_peak_members_max) / 1024.0);
  std::printf("network total:        %8.1f KB ciphertext\n",
              static_cast<double>(gendpr.network_bytes_total) / 1024.0);
  const double genomes_avoided_kb =
      2.0 * static_cast<double>(num_snps) *
      static_cast<double>(cohort.cases.num_individuals() +
                          cohort.controls.num_individuals()) /
      8.0 / 1024.0;
  std::printf("genome shipping avoided: %.1f KB (2 bits x L x N_T)\n",
              genomes_avoided_kb);
  return 0;
}
