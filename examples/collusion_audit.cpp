// Collusion audit: how much of a federation's release becomes unsafe when
// members collude, and what tolerating that costs (§5.6 / Table 5).
//
//   $ ./examples/collusion_audit [num_gdos]
//
// Runs the plain (f=0) study, every fixed-f collusion-tolerant study, and
// the conservative f={1..G-1} mode over the same cohort, reporting safe vs
// vulnerable SNPs and the running-time trade-off.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "gendpr/federation.hpp"

namespace {

std::size_t intersection_size(const std::vector<std::uint32_t>& a,
                              const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out.size();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gendpr;

  const std::uint32_t num_gdos =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 4;

  genome::CohortSpec cohort_spec;
  cohort_spec.num_case = 3000;
  cohort_spec.num_control = 3000;
  cohort_spec.num_snps = 800;
  cohort_spec.associated_fraction = 0.15;
  cohort_spec.effect_odds = 2.0;
  cohort_spec.seed = 11;
  const genome::Cohort cohort = genome::generate_cohort(cohort_spec);

  core::FederationSpec base;
  base.num_gdos = num_gdos;

  std::printf("federation of %u GDOs, %zu SNPs, %zu case genomes\n\n",
              num_gdos, cohort.cases.num_snps(),
              cohort.cases.num_individuals());

  const auto f0 = core::run_federated_study(cohort, base);
  if (!f0.ok()) {
    std::fprintf(stderr, "f=0 study failed: %s\n",
                 f0.error().to_string().c_str());
    return 1;
  }
  const auto& f0_safe = f0.value().outcome.l_safe;
  std::printf("without collusion tolerance (f=0): %zu SNPs releasable, "
              "%.1f ms\n\n",
              f0_safe.size(), f0.value().timings.total_ms);

  std::printf("%-14s %12s %12s %12s %12s %12s\n", "setting", "combos",
              "safe", "vulnerable", "released%", "time(ms)");
  auto audit = [&](const char* label, core::CollusionPolicy policy) {
    core::FederationSpec spec = base;
    spec.policy = policy;
    const auto run = core::run_federated_study(cohort, spec);
    if (!run.ok()) {
      std::printf("%-14s failed: %s\n", label,
                  run.error().to_string().c_str());
      return;
    }
    const std::size_t released =
        intersection_size(run.value().outcome.l_safe, f0_safe);
    const std::size_t vulnerable = f0_safe.size() - released;
    std::printf("%-14s %12zu %12zu %12zu %11.1f%% %12.1f\n", label,
                run.value().num_combinations, released, vulnerable,
                f0_safe.empty() ? 0.0
                                : 100.0 * static_cast<double>(released) /
                                      static_cast<double>(f0_safe.size()),
                run.value().timings.total_ms);
  };

  char label[32];
  for (unsigned f = 1; f < num_gdos; ++f) {
    std::snprintf(label, sizeof(label), "f = %u", f);
    audit(label, core::CollusionPolicy::fixed(f));
  }
  std::snprintf(label, sizeof(label), "f = {1..%u}", num_gdos - 1);
  audit(label, core::CollusionPolicy::conservative());

  std::printf("\nSNPs flagged vulnerable are withheld from the open release: "
              "colluding members could subtract their own contributions\n"
              "from published aggregates and mount membership attacks "
              "against the remaining honest members' donors.\n");
  return 0;
}
