// Quickstart: run one federated GenDPR study end to end and release the
// GWAS statistics over the safe SNP subset.
//
//   $ ./examples/quickstart
//
// Three biocenters (GDOs) hold slices of a synthetic case cohort; the
// public control panel doubles as the LR-test reference. GenDPR's three
// phases (MAF -> LD -> LR-test) select the SNPs whose statistics can be
// published without enabling membership inference, and we finish by
// computing the chi-squared association statistics over that safe subset -
// the "open-access GWAS statistics release" of the paper's Figure 1.
#include <algorithm>
#include <cstdio>

#include "gendpr/federation.hpp"
#include "gendpr/release.hpp"

int main() {
  using namespace gendpr;

  // 1. A synthetic cohort: 2,000 case genomes + 2,000 controls, 500 SNPs.
  genome::CohortSpec cohort_spec;
  cohort_spec.num_case = 2000;
  cohort_spec.num_control = 2000;
  cohort_spec.num_snps = 500;
  cohort_spec.seed = 42;
  const genome::Cohort cohort = genome::generate_cohort(cohort_spec);
  std::printf("cohort: %zu case genomes, %zu reference genomes, %zu SNPs\n",
              cohort.cases.num_individuals(),
              cohort.controls.num_individuals(), cohort.cases.num_snps());

  // 2. Run the federation: 3 GDOs, SecureGenome thresholds (MAF 0.05,
  //    LD 1e-5, FPR 0.1, power 0.9).
  core::FederationSpec spec;
  spec.num_gdos = 3;
  const auto result = core::run_federated_study(cohort, spec);
  if (!result.ok()) {
    std::fprintf(stderr, "study failed: %s\n",
                 result.error().to_string().c_str());
    return 1;
  }
  const auto& outcome = result.value().outcome;
  std::printf("leader: GDO %u\n", result.value().leader_gdo);
  std::printf("phase 1 (MAF):     %4zu / %zu SNPs retained\n",
              outcome.l_prime.size(), cohort.cases.num_snps());
  std::printf("phase 2 (LD):      %4zu SNPs retained\n",
              outcome.l_double_prime.size());
  std::printf("phase 3 (LR-test): %4zu SNPs safe to release "
              "(adversary power %.3f <= 0.9)\n",
              outcome.l_safe.size(), outcome.final_power);
  std::printf("total time: %.1f ms; network: %.1f KB (ciphertext only)\n",
              result.value().timings.total_ms,
              static_cast<double>(result.value().network_bytes_total) /
                  1024.0);

  // 3. The actual release: chi-squared statistics over L_safe only.
  const core::Release release =
      core::build_release(cohort.cases, cohort.controls, outcome.l_safe);
  std::vector<core::ReleaseRow> ranked = release.rows;
  std::sort(ranked.begin(), ranked.end(),
            [](const core::ReleaseRow& a, const core::ReleaseRow& b) {
              return a.p_value < b.p_value;
            });
  std::printf("\nreleased GWAS statistics (top 5 by association):\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, ranked.size()); ++i) {
    std::printf("  SNP %4u: chi2 %7.2f, p-value %.3e\n", ranked[i].snp,
                ranked[i].chi2, ranked[i].p_value);
  }
  return 0;
}
