// Membership-inference attack demo: why releases must be assessed at all.
//
//   $ ./examples/membership_attack
//
// Plays the adversary of §4: armed with a victim's genotype and a reference
// panel with a similar allele distribution, it computes the likelihood-ratio
// statistic (Eq. 1) against published case allele frequencies and flags
// membership when the LR exceeds the (1-FPR) reference quantile. We mount
// the attack twice - against an unprotected full release over L_des, and
// against the GenDPR-assessed release over L_safe - and report detection
// power (true positive rate at 10% false positives) for both.
#include <cstdio>
#include <numeric>

#include "gendpr/federation.hpp"
#include "stats/lr_test.hpp"

namespace {

using namespace gendpr;

/// Adversary: scores every individual of `population` against the published
/// frequencies over `released` SNPs and measures detection power.
double attack_power(const genome::GenotypeMatrix& cases,
                    const genome::GenotypeMatrix& reference,
                    const std::vector<std::uint32_t>& released) {
  if (released.empty()) return 0.0;
  const std::uint64_t n_case = cases.num_individuals();
  const std::uint64_t n_ref = reference.num_individuals();
  const auto case_counts = cases.allele_counts(released);
  const auto ref_counts = reference.allele_counts(released);
  std::vector<double> case_freq(released.size());
  std::vector<double> ref_freq(released.size());
  for (std::size_t i = 0; i < released.size(); ++i) {
    case_freq[i] = static_cast<double>(case_counts[i]) /
                   static_cast<double>(n_case);
    ref_freq[i] = static_cast<double>(ref_counts[i]) /
                  static_cast<double>(n_ref);
  }
  const stats::LrWeights weights = stats::lr_weights(case_freq, ref_freq);
  const stats::LrMatrix case_lr =
      stats::build_lr_matrix(cases, released, weights);
  const stats::LrMatrix ref_lr =
      stats::build_lr_matrix(reference, released, weights);

  std::vector<double> case_scores(case_lr.rows(), 0.0);
  std::vector<double> ref_scores(ref_lr.rows(), 0.0);
  for (std::size_t r = 0; r < case_lr.rows(); ++r) {
    for (std::size_t c = 0; c < case_lr.cols(); ++c) {
      case_scores[r] += case_lr.at(r, c);
    }
  }
  for (std::size_t r = 0; r < ref_lr.rows(); ++r) {
    for (std::size_t c = 0; c < ref_lr.cols(); ++c) {
      ref_scores[r] += ref_lr.at(r, c);
    }
  }
  return stats::detection_power(case_scores, ref_scores, 0.1, nullptr);
}

}  // namespace

int main() {
  // A cohort with strong association signal: the dangerous case.
  genome::CohortSpec cohort_spec;
  cohort_spec.num_case = 2000;
  cohort_spec.num_control = 2000;
  cohort_spec.num_snps = 600;
  cohort_spec.associated_fraction = 0.25;
  cohort_spec.effect_odds = 2.5;
  cohort_spec.seed = 17;
  const genome::Cohort cohort = genome::generate_cohort(cohort_spec);

  // Unprotected release: statistics over every desired SNP.
  std::vector<std::uint32_t> all_snps(cohort.cases.num_snps());
  std::iota(all_snps.begin(), all_snps.end(), 0u);
  const double naive_power =
      attack_power(cohort.cases, cohort.controls, all_snps);

  // GenDPR-protected release. The identification-power bound is the
  // federation's privacy knob; we tighten it from the paper's default 0.9 to
  // 0.3 so the protection is visible on this high-signal cohort.
  core::FederationSpec spec;
  spec.num_gdos = 3;
  spec.config.lr_power_threshold = 0.3;
  const auto result = core::run_federated_study(cohort, spec);
  if (!result.ok()) {
    std::fprintf(stderr, "study failed: %s\n",
                 result.error().to_string().c_str());
    return 1;
  }
  const auto& safe = result.value().outcome.l_safe;
  const double protected_power =
      attack_power(cohort.cases, cohort.controls, safe);

  std::printf("membership attack at 10%% false-positive budget\n");
  std::printf("  (power 0.10 = adversary does no better than guessing)\n\n");
  std::printf("  unprotected release (%4zu SNPs): detection power %.3f\n",
              all_snps.size(), naive_power);
  std::printf("  GenDPR release     (%4zu SNPs): detection power %.3f\n",
              safe.size(), protected_power);
  std::printf("\nGenDPR keeps the adversary below the configured 0.3 power "
              "bound: %s\n",
              protected_power <= 0.3 ? "yes" : "NO - investigate!");
  if (naive_power > protected_power) {
    std::printf("the assessed release cut attack power by %.1f%%.\n",
                100.0 * (naive_power - protected_power) / naive_power);
  }
  return 0;
}
