#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/log.hpp"

namespace gendpr::net {

using common::Errc;
using common::make_error;
using common::Status;

namespace {

Status write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t offset = 0;
  while (offset < size) {
    const ssize_t n = ::send(fd, data + offset, size - offset, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return make_error(Errc::io_error,
                        std::string("tcp send: ") + std::strerror(errno));
    }
    offset += static_cast<std::size_t>(n);
  }
  return Status::success();
}

Status read_all(int fd, std::uint8_t* data, std::size_t size) {
  std::size_t offset = 0;
  while (offset < size) {
    const ssize_t n = ::recv(fd, data + offset, size - offset, 0);
    if (n == 0) {
      return make_error(Errc::io_error, "tcp peer closed connection");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return make_error(Errc::io_error,
                        std::string("tcp recv: ") + std::strerror(errno));
    }
    offset += static_cast<std::size_t>(n);
  }
  return Status::success();
}

void store_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

/// Sends one frame: [u32 len][u32 from][payload]; len covers from+payload.
Status send_frame(int fd, NodeId from, common::BytesView payload) {
  std::uint8_t header[8];
  store_u32(header, static_cast<std::uint32_t>(payload.size() + 4));
  store_u32(header + 4, from);
  if (Status s = write_all(fd, header, 8); !s.ok()) return s;
  return write_all(fd, payload.data(), payload.size());
}

constexpr std::uint32_t kMaxFrameBytes = 256u * 1024 * 1024;

}  // namespace

common::Result<std::unique_ptr<TcpHub>> TcpHub::create(NodeId self,
                                                       std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return make_error(Errc::io_error,
                      std::string("socket: ") + std::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return make_error(Errc::io_error,
                      std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(fd, 16) < 0) {
    ::close(fd);
    return make_error(Errc::io_error,
                      std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    return make_error(Errc::io_error,
                      std::string("getsockname: ") + std::strerror(errno));
  }
  auto hub = std::unique_ptr<TcpHub>(
      new TcpHub(self, fd, ntohs(addr.sin_port)));
  return hub;
}

TcpHub::TcpHub(NodeId self, int listen_fd, std::uint16_t port)
    : self_(self), listen_fd_(listen_fd), port_(port) {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

TcpHub::~TcpHub() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closing_ = true;
  }
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [peer, fd] : peer_fds_) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
    peer_fds_.clear();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& thread : reader_threads_) {
    if (thread.joinable()) thread.join();
  }
  mailbox_->close();
}

common::Status TcpHub::register_connection(NodeId peer, int fd) {
  const int nodelay = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
  std::lock_guard<std::mutex> lock(mutex_);
  if (closing_) {
    ::close(fd);
    return make_error(Errc::state_violation, "hub is closing");
  }
  if (peer_fds_.count(peer) > 0) {
    ::close(fd);
    return make_error(Errc::invalid_argument,
                      "duplicate connection for peer " + std::to_string(peer));
  }
  peer_fds_[peer] = fd;
  reader_threads_.emplace_back([this, peer, fd] { reader_loop(peer, fd); });
  return Status::success();
}

void TcpHub::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (closing_) return;
      }
      if (errno == EINTR) continue;
      return;  // listening socket gone
    }
    // First frame on an inbound connection is the hello carrying the peer id.
    std::uint8_t header[8];
    if (!read_all(fd, header, 8).ok()) {
      ::close(fd);
      continue;
    }
    const std::uint32_t frame_len = load_u32(header);
    const NodeId peer = load_u32(header + 4);
    if (frame_len != 4) {  // hello has an empty payload
      ::close(fd);
      continue;
    }
    if (!register_connection(peer, fd).ok()) continue;
  }
}

void TcpHub::reader_loop(NodeId peer, int fd) {
  for (;;) {
    std::uint8_t header[8];
    if (!read_all(fd, header, 8).ok()) return;
    const std::uint32_t frame_len = load_u32(header);
    const NodeId from = load_u32(header + 4);
    if (frame_len < 4 || frame_len - 4 > kMaxFrameBytes) {
      common::log_warn("tcp", "oversized/undersized frame from peer ", peer);
      return;
    }
    common::Bytes payload(frame_len - 4);
    if (!payload.empty() && !read_all(fd, payload.data(), payload.size()).ok()) {
      return;
    }
    meter_.record(from, self_, payload.size());
    mailbox_->push(Envelope{from, self_, std::move(payload)});
  }
}

common::Status TcpHub::connect_peer(NodeId peer, const std::string& host,
                                    std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return make_error(Errc::io_error,
                      std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return make_error(Errc::invalid_argument, "bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return make_error(Errc::io_error,
                      std::string("connect: ") + std::strerror(errno));
  }
  // Hello: announce who we are.
  if (Status s = send_frame(fd, self_, {}); !s.ok()) {
    ::close(fd);
    return s;
  }
  return register_connection(peer, fd);
}

std::shared_ptr<Mailbox> TcpHub::attach(NodeId node) {
  // A hub hosts exactly one node; tolerate (and ignore) re-attachment.
  if (node != self_) {
    common::log_warn("tcp", "attach for foreign node ", node, " on hub ",
                     self_);
  }
  return mailbox_;
}

void TcpHub::detach(NodeId node) {
  if (node == self_) mailbox_->close();
}

common::Status TcpHub::send(NodeId from, NodeId to, common::Bytes payload) {
  int fd = -1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = peer_fds_.find(to);
    if (it == peer_fds_.end()) {
      return make_error(Errc::unknown_peer,
                        "no connection to node " + std::to_string(to));
    }
    fd = it->second;
  }
  meter_.record(from, to, payload.size());
  return send_frame(fd, from, payload);
}

}  // namespace gendpr::net
