#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/log.hpp"
#include "wire/frame.hpp"

namespace gendpr::net {

using common::Errc;
using common::make_error;
using common::Status;

namespace {

Status write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t offset = 0;
  while (offset < size) {
    const ssize_t n = ::send(fd, data + offset, size - offset, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return make_error(Errc::io_error,
                        std::string("tcp send: ") + std::strerror(errno));
    }
    offset += static_cast<std::size_t>(n);
  }
  return Status::success();
}

Status read_all(int fd, std::uint8_t* data, std::size_t size) {
  std::size_t offset = 0;
  while (offset < size) {
    const ssize_t n = ::recv(fd, data + offset, size - offset, 0);
    if (n == 0) {
      return make_error(Errc::io_error, "tcp peer closed connection");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return make_error(Errc::io_error,
                        std::string("tcp recv: ") + std::strerror(errno));
    }
    offset += static_cast<std::size_t>(n);
  }
  return Status::success();
}

std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

/// Sends one frame in the shared wire format (wire/frame.hpp). Callers must
/// hold the connection's write mutex: interleaved write_all calls from two
/// senders would corrupt the framing for every later message.
Status send_frame(int fd, NodeId from, common::BytesView payload) {
  const auto header = wire::encode_frame_header(from, payload.size());
  if (Status s = write_all(fd, header.data(), header.size()); !s.ok()) {
    return s;
  }
  return write_all(fd, payload.data(), payload.size());
}

}  // namespace

common::Result<std::unique_ptr<TcpHub>> TcpHub::create(NodeId self,
                                                       std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return make_error(Errc::io_error,
                      std::string("socket: ") + std::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return make_error(Errc::io_error,
                      std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(fd, 16) < 0) {
    ::close(fd);
    return make_error(Errc::io_error,
                      std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    return make_error(Errc::io_error,
                      std::string("getsockname: ") + std::strerror(errno));
  }
  auto hub = std::unique_ptr<TcpHub>(
      new TcpHub(self, fd, ntohs(addr.sin_port)));
  return hub;
}

TcpHub::TcpHub(NodeId self, int listen_fd, std::uint16_t port)
    : self_(self), listen_fd_(listen_fd), port_(port) {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

TcpHub::~TcpHub() {
  std::vector<std::shared_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closing_ = true;
    for (auto& [peer, connection] : peers_) connections.push_back(connection);
    peers_.clear();
  }
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  for (auto& connection : connections) {
    // Shut down (do not close): each reader may still be blocked in recv on
    // its fd and owns the close. Closing here would race the recv and let the
    // fd number be reused under the reader.
    std::lock_guard<std::mutex> write_lock(connection->write_mutex);
    if (connection->fd >= 0) ::shutdown(connection->fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& slot : reader_slots_) {
    if (slot.thread.joinable()) slot.thread.join();
  }
  mailbox_->close();
}

common::Status TcpHub::register_connection(NodeId peer, int fd) {
  const int nodelay = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
  std::lock_guard<std::mutex> lock(mutex_);
  if (closing_) {
    ::close(fd);
    return make_error(Errc::state_violation, "hub is closing");
  }
  if (peers_.count(peer) > 0) {
    ::close(fd);
    return make_error(Errc::invalid_argument,
                      "duplicate connection for peer " + std::to_string(peer));
  }
  reap_finished_readers_locked();
  auto connection = std::make_shared<Connection>();
  connection->fd = fd;
  peers_[peer] = connection;
  lost_peers_.erase(peer);  // a reconnect clears the lost mark
  reader_slots_.emplace_back();
  ReaderSlot* slot = &reader_slots_.back();
  slot->thread = std::thread([this, peer, connection, slot] {
    reader_loop(peer, connection);
    slot->done.store(true, std::memory_order_release);
  });
  return Status::success();
}

void TcpHub::reap_finished_readers_locked() {
  for (auto it = reader_slots_.begin(); it != reader_slots_.end();) {
    if (it->done.load(std::memory_order_acquire)) {
      if (it->thread.joinable()) it->thread.join();
      it = reader_slots_.erase(it);
    } else {
      ++it;
    }
  }
}

void TcpHub::drop_connection(NodeId peer,
                             const std::shared_ptr<Connection>& connection) {
  PeerLostHandler handler;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closing_) return;  // destructor owns the fds now
    auto it = peers_.find(peer);
    if (it == peers_.end() || it->second != connection) return;
    peers_.erase(it);
    lost_peers_.insert(peer);
    handler = peer_lost_handler_;
  }
  {
    // Wake the reader (and fail in-flight writes); the reader closes the fd.
    std::lock_guard<std::mutex> write_lock(connection->write_mutex);
    if (connection->fd >= 0) ::shutdown(connection->fd, SHUT_RDWR);
  }
  common::log_warn("tcp", "hub ", self_, " lost connection to peer ", peer);
  if (handler) handler(peer);
}

void TcpHub::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (closing_) return;
      }
      if (errno == EINTR) continue;
      return;  // listening socket gone
    }
    // First frame on an inbound connection is the hello carrying the peer id.
    std::uint8_t header[8];
    if (!read_all(fd, header, 8).ok()) {
      ::close(fd);
      continue;
    }
    const std::uint32_t frame_len = load_u32(header);
    const NodeId peer = load_u32(header + 4);
    if (frame_len != 4) {  // hello has an empty payload
      ::close(fd);
      continue;
    }
    if (!register_connection(peer, fd).ok()) continue;
  }
}

void TcpHub::reader_loop(NodeId peer,
                         std::shared_ptr<Connection> connection) {
  // fd is written once before this thread starts and only mutated again by
  // this thread (at the close below); teardown paths shutdown() it but never
  // close it, so a plain read is safe for the whole loop.
  const int fd = connection->fd;
  if (fd < 0) return;
  wire::FrameDecoder decoder;
  std::uint8_t buf[64 * 1024];
  bool stream_ok = true;
  while (stream_ok) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    decoder.feed(common::BytesView(buf, static_cast<std::size_t>(n)));
    for (;;) {
      auto frame = decoder.next();
      if (!frame.ok()) {
        common::log_warn("tcp", "malformed frame from peer ", peer);
        stream_ok = false;
        break;
      }
      if (!frame.value().has_value()) break;
      const wire::FrameDecoder::Frame f = *frame.value();
      meter_.record(f.from, self_, f.payload.size());
      // The mailbox outlives the decoder's borrow of the read buffer, so
      // the threaded transport takes its owning copy here.
      mailbox_->push(Envelope{
          f.from, self_, common::Bytes(f.payload.begin(), f.payload.end())});
    }
  }
  drop_connection(peer, connection);
  {
    // The reader owns the close. The write mutex excludes any sender that is
    // mid-frame; once fd flips to -1, send() reports the connection as lost.
    std::lock_guard<std::mutex> write_lock(connection->write_mutex);
    ::close(connection->fd);
    connection->fd = -1;
  }
}

common::Status TcpHub::connect_peer(NodeId peer, const std::string& host,
                                    std::uint16_t port, DialOptions options) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return make_error(Errc::invalid_argument, "bad host address: " + host);
  }
  if (options.max_attempts < 1) options.max_attempts = 1;

  Status last = make_error(Errc::io_error, "connect: no attempt made");
  std::chrono::milliseconds backoff = options.initial_backoff;
  for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(backoff);
      backoff *= 2;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closing_) return make_error(Errc::state_violation, "hub is closing");
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return make_error(Errc::io_error,
                        std::string("socket: ") + std::strerror(errno));
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      last = make_error(Errc::io_error,
                        std::string("connect: ") + std::strerror(errno));
      ::close(fd);
      continue;  // likely a startup race: the peer has not bound yet
    }
    // Hello: announce who we are.
    if (Status s = send_frame(fd, self_, {}); !s.ok()) {
      ::close(fd);
      last = s;
      continue;
    }
    return register_connection(peer, fd);
  }
  return last;
}

bool TcpHub::is_connected(NodeId peer) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peers_.count(peer) > 0;
}

std::vector<NodeId> TcpHub::lost_peers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {lost_peers_.begin(), lost_peers_.end()};
}

std::shared_ptr<Mailbox> TcpHub::attach(NodeId node) {
  // A hub hosts exactly one node; tolerate (and ignore) re-attachment.
  if (node != self_) {
    common::log_warn("tcp", "attach for foreign node ", node, " on hub ",
                     self_);
  }
  return mailbox_;
}

void TcpHub::detach(NodeId node) {
  if (node == self_) mailbox_->close();
}

void TcpHub::set_peer_lost_handler(PeerLostHandler handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  peer_lost_handler_ = std::move(handler);
}

common::Status TcpHub::send(NodeId from, NodeId to, common::Bytes payload) {
  std::shared_ptr<Connection> connection;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = peers_.find(to);
    if (it == peers_.end()) {
      const bool lost = lost_peers_.count(to) > 0;
      return make_error(Errc::unknown_peer,
                        (lost ? "connection to node " : "no connection to node ") +
                            std::to_string(to) + (lost ? " was lost" : ""));
    }
    connection = it->second;
  }
  Status sent;
  {
    std::lock_guard<std::mutex> write_lock(connection->write_mutex);
    if (connection->fd < 0) {
      sent = make_error(Errc::unknown_peer,
                        "connection to node " + std::to_string(to) +
                            " was lost");
    } else {
      sent = send_frame(connection->fd, from, payload);
    }
  }
  if (sent.ok()) {
    // Meter only after the frame hit the socket: failed writes must not
    // inflate the §7.1 bandwidth accounting.
    meter_.record(from, to, payload.size());
  } else if (sent.error().code == Errc::io_error) {
    drop_connection(to, connection);  // a failed write means a dead socket
  }
  return sent;
}

}  // namespace gendpr::net
