// Nonblocking TCP endpoint driven by an EventLoop (readiness model).
//
// Where TcpHub spends one reader thread per peer plus an acceptor thread,
// EpollHub is a callback front-end for a single-threaded epoll loop: frames
// arrive through set_frame_handler, connection losses through
// set_peer_lost_handler, and send_frame() enqueues pooled WireBuffers into a
// per-connection write queue flushed with gathered writes (one
// sendmsg/writev batch coalesces many small frames) as EPOLLOUT allows.
// Crossing the per-connection write
// watermark fires the backpressure handler (see net/hub.hpp). Dialing is
// nonblocking with timer-driven, jittered exponential backoff, and frames
// sent while a dial is still in flight are buffered and flushed in order
// once it completes — so any number of GDO endpoints (and their protocol
// sessions) can share one thread. The wire format (wire/frame.hpp, hello
// included) is exactly TcpHub's: the hubs interoperate frame-for-frame.
//
// Threading: everything here, handlers included, runs on the loop thread.
// No locks, no atomics — the event loop is the serialization point.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "net/event_loop.hpp"
#include "net/hub.hpp"
#include "wire/frame.hpp"

namespace gendpr::net {

class EpollHub : public Hub {
 public:
  /// Binds a listening socket on 127.0.0.1:port (port 0 = ephemeral; see
  /// port()) for node `self` and accepts peer connections on `loop`. The
  /// loop must outlive the hub.
  static common::Result<std::unique_ptr<EpollHub>> create(EventLoop& loop,
                                                          NodeId self,
                                                          std::uint16_t port);

  /// Hub with no listening socket of its own: every inbound connection is
  /// handed over by a StudyAcceptor through adopt_inbound(). Dialing out
  /// still works.
  static std::unique_ptr<EpollHub> create_adopt_only(EventLoop& loop,
                                                     NodeId self);

  ~EpollHub() override;

  void connect_peer(NodeId peer, const std::string& host, std::uint16_t port,
                    DialOptions options) override;
  using Hub::connect_peer;

  common::Status send_frame(NodeId to, wire::WireBuffer buf) override;

  bool is_connected(NodeId peer) const override;

  void adopt_inbound(int fd, NodeId peer, common::Bytes leftover) override;

 private:
  /// One TCP connection (inbound or dialed). Registered as the fd's
  /// IoHandler; all state is loop-thread-only.
  struct Conn : EventLoop::IoHandler {
    Conn(EpollHub* owner, int conn_fd) : hub(owner), fd(conn_fd) {}
    void on_ready(std::uint32_t events) override;

    EpollHub* hub;
    int fd;
    NodeId peer = kNoNode;     // known after dial / after inbound hello
    bool connecting = false;   // dial awaiting EPOLLOUT + SO_ERROR check
    bool awaiting_hello = false;  // inbound: first frame must be the hello
    bool paused = false;       // write queue above the high watermark
    wire::FrameDecoder decoder;
    std::deque<wire::WireBuffer> write_queue;  // pooled, header-stamped frames
    std::size_t write_offset = 0;  // bytes of the front frame already written
    std::size_t queued_bytes = 0;  // unsent bytes across the whole queue
    std::uint32_t watched_events = 0;
  };

  /// The listening socket's IoHandler.
  struct Acceptor : EventLoop::IoHandler {
    explicit Acceptor(EpollHub* owner) : hub(owner) {}
    void on_ready(std::uint32_t events) override;
    EpollHub* hub;
  };

  /// An in-flight dial: retry schedule plus frames queued before
  /// establishment.
  struct Dial {
    std::string host;
    std::uint16_t port = 0;
    int attempts_left = 0;
    std::chrono::milliseconds backoff{0};
    /// Pooled frames queued before the connection exists; flushed after the
    /// hello, or dropped (and counted) when the dial permanently fails.
    std::deque<wire::WireBuffer> pending;
    std::optional<EventLoop::TimerId> retry_timer;
  };

  EpollHub(EventLoop& loop, NodeId self, int listen_fd, std::uint16_t port);

  void on_acceptable();
  void on_conn_ready(const std::shared_ptr<Conn>& conn, std::uint32_t events);
  void on_dial_writable(const std::shared_ptr<Conn>& conn);
  void read_frames(const std::shared_ptr<Conn>& conn);
  void enqueue_frame(const std::shared_ptr<Conn>& conn, wire::WireBuffer buf);
  void flush_writes(const std::shared_ptr<Conn>& conn);
  void update_events(const std::shared_ptr<Conn>& conn);
  /// Tears the connection down; established peers are reported lost.
  void drop_conn(const std::shared_ptr<Conn>& conn);
  void attempt_dial(NodeId peer);
  void dial_attempt_failed(NodeId peer);
  /// Dial completed: send the hello, flush frames queued during the dial.
  void finish_dial(NodeId peer, const std::shared_ptr<Conn>& conn);
  void register_established(NodeId peer, const std::shared_ptr<Conn>& conn);
  void report_peer_lost(NodeId peer);

  EventLoop* loop_;
  int listen_fd_;  // -1 for an adopt-only hub
  std::map<int, std::shared_ptr<Conn>> conns_;   // every live fd
  std::map<NodeId, std::shared_ptr<Conn>> peers_;  // established only
  std::map<NodeId, Dial> dials_;
  std::set<NodeId> lost_peers_;
};

}  // namespace gendpr::net
