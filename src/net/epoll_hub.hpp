// Nonblocking TCP endpoint driven by an EventLoop.
//
// Where TcpHub spends one reader thread per peer plus an acceptor thread,
// EpollHub is a callback front-end for a single-threaded epoll loop: frames
// arrive through set_frame_handler, connection losses through
// set_peer_lost_handler, and send() enqueues into a per-connection write
// buffer flushed as EPOLLOUT allows. Dialing is nonblocking with
// timer-driven exponential backoff, and frames sent while a dial is still
// in flight are buffered and flushed in order once it completes — so any
// number of GDO endpoints (and their protocol sessions) can share one
// thread. The wire format (wire/frame.hpp, hello included) is exactly
// TcpHub's: the two hubs interoperate frame-for-frame.
//
// Threading: everything here, handlers included, runs on the loop thread.
// No locks, no atomics — the event loop is the serialization point.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "net/event_loop.hpp"
#include "net/network.hpp"
#include "wire/frame.hpp"

namespace gendpr::net {

class EpollHub {
 public:
  using FrameHandler = std::function<void(NodeId from, common::Bytes payload)>;
  using PeerLostHandler = std::function<void(NodeId peer)>;

  /// Dial behaviour: attempts spaced by exponential backoff starting at
  /// `initial_backoff` (doubling per retry), absorbing the startup race
  /// where the peer's hub has not bound its port yet.
  struct DialOptions {
    int max_attempts = 5;
    std::chrono::milliseconds initial_backoff{25};
  };

  /// Binds a listening socket on 127.0.0.1:port (port 0 = ephemeral; see
  /// port()) for node `self` and accepts peer connections on `loop`. The
  /// loop must outlive the hub.
  static common::Result<std::unique_ptr<EpollHub>> create(EventLoop& loop,
                                                          NodeId self,
                                                          std::uint16_t port);

  ~EpollHub();

  EpollHub(const EpollHub&) = delete;
  EpollHub& operator=(const EpollHub&) = delete;

  std::uint16_t port() const noexcept { return port_; }
  NodeId self() const noexcept { return self_; }

  /// Delivery callback for every data frame (hellos are consumed here).
  void set_frame_handler(FrameHandler handler) {
    frame_handler_ = std::move(handler);
  }
  /// Loss callback: fires when an established connection dies or a dial
  /// exhausts its attempts.
  void set_peer_lost_handler(PeerLostHandler handler) {
    peer_lost_handler_ = std::move(handler);
  }

  /// Starts a nonblocking dial to a peer hub. Frames sent to `peer` before
  /// the dial completes are buffered and flushed (after the hello) once it
  /// does; if every attempt fails the peer is reported lost.
  void connect_peer(NodeId peer, const std::string& host, std::uint16_t port,
                    DialOptions options);
  void connect_peer(NodeId peer, const std::string& host, std::uint16_t port) {
    connect_peer(peer, host, port, DialOptions{});
  }

  /// Enqueues one frame for `peer`. Success means accepted for delivery
  /// (written as EPOLLOUT allows), not yet on the wire; unknown_peer means
  /// there is no live or in-flight connection to the peer.
  common::Status send(NodeId to, common::Bytes payload);

  /// True while an established connection to `peer` is registered.
  bool is_connected(NodeId peer) const;

  TrafficMeter& meter() noexcept { return meter_; }

 private:
  /// One TCP connection (inbound or dialed). Registered as the fd's
  /// IoHandler; all state is loop-thread-only.
  struct Conn : EventLoop::IoHandler {
    Conn(EpollHub* owner, int conn_fd) : hub(owner), fd(conn_fd) {}
    void on_ready(std::uint32_t events) override;

    EpollHub* hub;
    int fd;
    NodeId peer = kNoNode;     // known after dial / after inbound hello
    bool connecting = false;   // dial awaiting EPOLLOUT + SO_ERROR check
    bool awaiting_hello = false;  // inbound: first frame must be the hello
    wire::FrameDecoder decoder;
    std::deque<common::Bytes> write_queue;  // encoded frames
    std::size_t write_offset = 0;  // bytes of the front frame already written
    std::uint32_t watched_events = 0;
  };

  /// The listening socket's IoHandler.
  struct Acceptor : EventLoop::IoHandler {
    explicit Acceptor(EpollHub* owner) : hub(owner) {}
    void on_ready(std::uint32_t events) override;
    EpollHub* hub;
  };

  /// An in-flight dial: retry schedule plus frames queued before
  /// establishment.
  struct Dial {
    std::string host;
    std::uint16_t port = 0;
    int attempts_left = 0;
    std::chrono::milliseconds backoff{0};
    std::deque<common::Bytes> pending;  // encoded frames awaiting the hello
    std::optional<EventLoop::TimerId> retry_timer;
  };

  EpollHub(EventLoop& loop, NodeId self, int listen_fd, std::uint16_t port);

  void on_acceptable();
  void on_conn_ready(const std::shared_ptr<Conn>& conn, std::uint32_t events);
  void on_dial_writable(const std::shared_ptr<Conn>& conn);
  void read_frames(const std::shared_ptr<Conn>& conn);
  void flush_writes(const std::shared_ptr<Conn>& conn);
  void update_events(const std::shared_ptr<Conn>& conn);
  /// Tears the connection down; established peers are reported lost.
  void drop_conn(const std::shared_ptr<Conn>& conn);
  void attempt_dial(NodeId peer);
  void dial_attempt_failed(NodeId peer);
  /// Dial completed: send the hello, flush frames queued during the dial.
  void finish_dial(NodeId peer, const std::shared_ptr<Conn>& conn);
  void register_established(NodeId peer, const std::shared_ptr<Conn>& conn);
  void report_peer_lost(NodeId peer);

  EventLoop* loop_;
  NodeId self_;
  int listen_fd_;
  std::uint16_t port_;
  TrafficMeter meter_;
  FrameHandler frame_handler_;
  PeerLostHandler peer_lost_handler_;
  std::map<int, std::shared_ptr<Conn>> conns_;   // every live fd
  std::map<NodeId, std::shared_ptr<Conn>> peers_;  // established only
  std::map<NodeId, Dial> dials_;
  std::set<NodeId> lost_peers_;
};

}  // namespace gendpr::net
