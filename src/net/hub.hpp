// Common surface of the nonblocking socket hubs (epoll and io_uring).
//
// A Hub is one GDO endpoint on an EventLoop: it owns the framed loopback
// TCP connections of that node, delivers inbound frames and peer losses
// through callbacks, and queues outbound frames for asynchronous delivery.
// EpollHub (readiness-driven) and UringHub (completion-driven) both derive
// from this class, so the session driver, the federation runner, and the
// StudyAcceptor are written once against the seam and never know which
// kernel interface is underneath.
//
// Write-side backpressure lives here: every connection accounts the bytes
// queued but not yet on the wire, and crossing the high watermark fires the
// backpressure handler with paused=true (resumed at the low watermark).
// Drivers use the pause to stop pulling frames out of their session, so one
// slow peer stalls exactly one session — never the loop, never a sibling.
//
// Threading: everything here, handlers included, runs on the loop thread.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <random>
#include <string>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "net/network.hpp"
#include "wire/buffer_pool.hpp"

namespace gendpr::net {

class Hub {
 public:
  /// Inbound payloads are views into the hub's pooled receive buffer, valid
  /// only for the duration of the call — sessions decrypt in place (open_to)
  /// or copy before returning.
  using FrameHandler =
      std::function<void(NodeId from, common::BytesView payload)>;
  using PeerLostHandler = std::function<void(NodeId peer)>;
  /// paused=true: the connection to `peer` crossed the high watermark and
  /// the producer should stop queueing. paused=false: drained below the low
  /// watermark (or the connection died), producing may resume.
  using BackpressureHandler = std::function<void(NodeId peer, bool paused)>;

  /// Dial behaviour: attempts spaced by exponential backoff starting at
  /// `initial_backoff` (doubling per retry) with uniform random jitter of
  /// up to half the current backoff, so peers that lost the same hub do not
  /// retry in lockstep and re-stampede it.
  struct DialOptions {
    int max_attempts = 5;
    std::chrono::milliseconds initial_backoff{25};
  };

  /// Per-connection write-queue watermarks, in bytes of encoded frames not
  /// yet written to the socket. high must be > low.
  struct Watermarks {
    std::size_t high = 1u << 20;  // pause above 1 MiB queued
    std::size_t low = 1u << 19;   // resume below 512 KiB
  };

  /// Aggregated backpressure telemetry across every connection of the hub.
  struct BackpressureStats {
    std::uint64_t pauses = 0;
    std::uint64_t resumes = 0;
    std::uint64_t peak_queued_bytes = 0;
  };

  /// Zero-copy frame-path telemetry.
  struct WireStats {
    std::uint64_t frames_sent = 0;
    std::uint64_t writev_batches = 0;  // gathered-write syscalls (epoll hub)
    std::uint64_t dial_dropped_frames = 0;  // queued on dials that failed
  };

  virtual ~Hub() = default;

  Hub(const Hub&) = delete;
  Hub& operator=(const Hub&) = delete;

  NodeId self() const noexcept { return self_; }
  /// Listening port (0 for an adopt-only hub fed by a StudyAcceptor).
  std::uint16_t port() const noexcept { return port_; }

  /// Delivery callback for every data frame (hellos are consumed here).
  void set_frame_handler(FrameHandler handler) {
    frame_handler_ = std::move(handler);
  }
  /// Loss callback: fires when an established connection dies or a dial
  /// exhausts its attempts.
  void set_peer_lost_handler(PeerLostHandler handler) {
    peer_lost_handler_ = std::move(handler);
  }
  /// Watermark pause/resume callback (see BackpressureHandler).
  void set_backpressure_handler(BackpressureHandler handler) {
    backpressure_handler_ = std::move(handler);
  }
  /// Replaces the default watermarks. Call before traffic flows.
  void set_watermarks(Watermarks watermarks) { watermarks_ = watermarks; }

  /// Study this endpoint belongs to; rides in every dial's hello so a
  /// shared acceptor can route the connection. 0 = the classic
  /// single-study hello (empty payload, byte-identical wire format).
  void set_study_id(std::uint64_t study_id) noexcept { study_id_ = study_id; }
  std::uint64_t study_id() const noexcept { return study_id_; }

  const BackpressureStats& backpressure() const noexcept { return bp_stats_; }
  const WireStats& wire_stats() const noexcept { return wire_stats_; }
  TrafficMeter& meter() noexcept { return meter_; }

  /// Buffer pool backing this hub's frames. Defaults to the process-wide
  /// pool; a federation run installs one pool shared with its sessions so
  /// send buffers cycle session → hub → pool without crossing pools.
  void set_buffer_pool(wire::BufferPool* pool) noexcept { pool_ = pool; }
  wire::BufferPool& pool() noexcept {
    return pool_ != nullptr ? *pool_ : wire::default_pool();
  }

  /// Starts a nonblocking dial to a peer hub. Frames sent to `peer` before
  /// the dial completes are buffered and flushed (after the hello) once it
  /// does; if every attempt fails the peer is reported lost.
  virtual void connect_peer(NodeId peer, const std::string& host,
                            std::uint16_t port, DialOptions options) = 0;
  void connect_peer(NodeId peer, const std::string& host, std::uint16_t port) {
    connect_peer(peer, host, port, DialOptions{});
  }

  /// Enqueues one pooled frame for `peer`. The buffer arrives with its
  /// payload in final wire position; the hub stamps the frame header
  /// (finish_frame) and queues the buffer as-is — no copy between the
  /// session and the kernel. Success means accepted for delivery (written as
  /// the kernel allows), not yet on the wire; unknown_peer means there is no
  /// live or in-flight connection to the peer.
  virtual common::Status send_frame(NodeId to, wire::WireBuffer buf) = 0;

  /// Compatibility convenience over send_frame for callers holding an
  /// owning payload (tests, legacy paths): copies once into a pooled buffer.
  common::Status send(NodeId to, common::Bytes payload) {
    return send_frame(to, wire::WireBuffer::from_payload(
                              pool(), common::BytesView(payload.data(),
                                                        payload.size())));
  }

  /// True while an established connection to `peer` is registered.
  virtual bool is_connected(NodeId peer) const = 0;

  /// Adopts an established inbound connection whose hello was already
  /// consumed by a StudyAcceptor. Ownership of `fd` transfers to the hub;
  /// `leftover` is whatever the acceptor read past the hello and is fed to
  /// the framer first. Must run on the hub's loop thread.
  virtual void adopt_inbound(int fd, NodeId peer, common::Bytes leftover) = 0;

 protected:
  Hub(NodeId self, std::uint16_t port)
      : self_(self),
        port_(port),
        jitter_rng_(std::random_device{}() ^
                    (static_cast<unsigned>(self) << 16)) {}

  void set_port(std::uint16_t port) noexcept { port_ = port; }

  /// Backoff with uniform jitter in [backoff, 1.5*backoff): breaks the
  /// deterministic lockstep of peers reconnecting to the same endpoint.
  std::chrono::milliseconds jittered(std::chrono::milliseconds backoff) {
    const auto half = std::max<std::chrono::milliseconds::rep>(
        backoff.count() / 2, 1);
    std::uniform_int_distribution<std::chrono::milliseconds::rep> dist(0,
                                                                       half);
    return backoff + std::chrono::milliseconds(dist(jitter_rng_));
  }

  /// Watermark bookkeeping after a connection's queue grew to `queued`
  /// bytes. `paused` is the connection's pause flag.
  void note_enqueued(NodeId peer, std::size_t queued, bool& paused) {
    if (queued > bp_stats_.peak_queued_bytes) {
      bp_stats_.peak_queued_bytes = queued;
    }
    if (!paused && queued > watermarks_.high) {
      paused = true;
      bp_stats_.pauses += 1;
      if (backpressure_handler_) backpressure_handler_(peer, true);
    }
  }

  /// Watermark bookkeeping after a connection's queue drained to `queued`
  /// bytes.
  void note_drained(NodeId peer, std::size_t queued, bool& paused) {
    if (paused && queued < watermarks_.low) {
      paused = false;
      bp_stats_.resumes += 1;
      if (backpressure_handler_) backpressure_handler_(peer, false);
    }
  }

  /// A dying connection releases its pause so the producer is never left
  /// stalled on a peer that no longer exists (the loss itself is reported
  /// separately).
  void release_pause_on_drop(NodeId peer, bool& paused) {
    if (paused) {
      paused = false;
      bp_stats_.resumes += 1;
      if (backpressure_handler_) backpressure_handler_(peer, false);
    }
  }

  NodeId self_;
  std::uint16_t port_;
  std::uint64_t study_id_ = 0;
  Watermarks watermarks_;
  BackpressureStats bp_stats_;
  WireStats wire_stats_;
  wire::BufferPool* pool_ = nullptr;
  TrafficMeter meter_;
  FrameHandler frame_handler_;
  PeerLostHandler peer_lost_handler_;
  BackpressureHandler backpressure_handler_;
  std::minstd_rand jitter_rng_;
};

}  // namespace gendpr::net
