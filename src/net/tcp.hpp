// TCP transport: the cross-machine counterpart of the in-process Network.
//
// A real GenDPR federation spans institutions; each GDO machine runs one
// TcpHub bound to a TCP port, connects to its peers, and the protocol layer
// (gendpr/node.hpp) runs unchanged against the net::Transport interface.
// Framing is length-prefixed: [u32 len][u32 from][payload]; a hello frame
// announcing the sender's node id opens every connection. Only ciphertext
// crosses this layer (SecureChannel records and attestation handshakes), so
// TCP's lack of confidentiality is irrelevant by construction.
//
// Liveness: frames from concurrent senders are serialized per connection (a
// write mutex per fd keeps frames atomic on the byte stream); a connection
// whose reader or writer fails is torn down — fd closed, peer evicted, the
// peer-lost handler notified — so later sends fail fast with unknown_peer
// instead of writing into a dead socket. connect_peer retries with
// exponential backoff to absorb startup races where the peer's hub is not
// listening yet.
//
// Scope: blocking sockets with one reader thread per peer connection -
// appropriate for federation sizes (G <= dozens), not a general-purpose
// high-connection-count server.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/network.hpp"

namespace gendpr::net {

class TcpHub : public Transport {
 public:
  /// Dial behaviour for connect_peer. Attempts are spaced by an exponential
  /// backoff starting at `initial_backoff` (doubling per retry), absorbing
  /// the startup race where the peer's hub has not bound its port yet.
  struct DialOptions {
    int max_attempts = 5;
    std::chrono::milliseconds initial_backoff{25};
  };

  /// Binds a listening socket on 127.0.0.1:port (port 0 = ephemeral; see
  /// port()) for node `self` and starts accepting peer connections.
  static common::Result<std::unique_ptr<TcpHub>> create(NodeId self,
                                                        std::uint16_t port);

  ~TcpHub() override;

  TcpHub(const TcpHub&) = delete;
  TcpHub& operator=(const TcpHub&) = delete;

  /// The port actually bound (useful with port 0).
  std::uint16_t port() const noexcept { return port_; }
  NodeId self() const noexcept { return self_; }

  /// Dials a peer hub and registers the connection under `peer`, retrying
  /// per `options` when the connection attempt fails.
  common::Status connect_peer(NodeId peer, const std::string& host,
                              std::uint16_t port, DialOptions options);
  common::Status connect_peer(NodeId peer, const std::string& host,
                              std::uint16_t port) {
    return connect_peer(peer, host, port, DialOptions{});
  }

  /// True while a live connection to `peer` is registered.
  bool is_connected(NodeId peer) const;

  /// Peers whose connection was torn down (read/write failure) and has not
  /// reconnected since.
  std::vector<NodeId> lost_peers() const;

  // Transport interface. attach() must be called with this hub's own node
  // id; send() routes to a connected peer (dialed by us or accepted).
  std::shared_ptr<Mailbox> attach(NodeId node) override;
  void detach(NodeId node) override;
  common::Status send(NodeId from, NodeId to, common::Bytes payload) override;
  TrafficMeter* meter_or_null() noexcept override { return &meter_; }
  void set_peer_lost_handler(PeerLostHandler handler) override;

 private:
  /// One live peer connection. The write mutex serializes whole frames onto
  /// the fd; fd becomes -1 once the connection is torn down (checked under
  /// that same mutex, so a sender can never write into a recycled fd).
  struct Connection {
    int fd = -1;
    std::mutex write_mutex;
  };

  /// A reader thread plus its completion flag; finished slots are reaped
  /// (joined and erased) on the next register_connection instead of growing
  /// without bound. std::list keeps slot addresses stable for the thread.
  struct ReaderSlot {
    std::thread thread;
    std::atomic<bool> done{false};
  };

  TcpHub(NodeId self, int listen_fd, std::uint16_t port);

  void accept_loop();
  void reader_loop(NodeId peer, std::shared_ptr<Connection> connection);
  common::Status register_connection(NodeId peer, int fd);
  /// Evicts `connection` (if still current for `peer`), closes its fd, and
  /// notifies the peer-lost handler. Safe to call from any thread; no-op
  /// while the hub is shutting down (the destructor owns the fds then).
  void drop_connection(NodeId peer, const std::shared_ptr<Connection>& connection);
  void reap_finished_readers_locked();

  NodeId self_;
  int listen_fd_;
  std::uint16_t port_;
  std::shared_ptr<Mailbox> mailbox_ = std::make_shared<Mailbox>();
  TrafficMeter meter_;

  mutable std::mutex mutex_;
  std::map<NodeId, std::shared_ptr<Connection>> peers_;
  std::set<NodeId> lost_peers_;
  PeerLostHandler peer_lost_handler_;
  std::list<ReaderSlot> reader_slots_;
  std::thread accept_thread_;
  bool closing_ = false;
};

}  // namespace gendpr::net
