// TCP transport: the cross-machine counterpart of the in-process Network.
//
// A real GenDPR federation spans institutions; each GDO machine runs one
// TcpHub bound to a TCP port, connects to its peers, and the protocol layer
// (gendpr/node.hpp) runs unchanged against the net::Transport interface.
// Framing is length-prefixed: [u32 len][u32 from][payload]; a hello frame
// announcing the sender's node id opens every connection. Only ciphertext
// crosses this layer (SecureChannel records and attestation handshakes), so
// TCP's lack of confidentiality is irrelevant by construction.
//
// Scope: blocking sockets with one reader thread per peer connection -
// appropriate for federation sizes (G <= dozens), not a general-purpose
// high-connection-count server.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/network.hpp"

namespace gendpr::net {

class TcpHub : public Transport {
 public:
  /// Binds a listening socket on 127.0.0.1:port (port 0 = ephemeral; see
  /// port()) for node `self` and starts accepting peer connections.
  static common::Result<std::unique_ptr<TcpHub>> create(NodeId self,
                                                        std::uint16_t port);

  ~TcpHub() override;

  TcpHub(const TcpHub&) = delete;
  TcpHub& operator=(const TcpHub&) = delete;

  /// The port actually bound (useful with port 0).
  std::uint16_t port() const noexcept { return port_; }
  NodeId self() const noexcept { return self_; }

  /// Dials a peer hub and registers the connection under `peer`.
  common::Status connect_peer(NodeId peer, const std::string& host,
                              std::uint16_t port);

  // Transport interface. attach() must be called with this hub's own node
  // id; send() routes to a connected peer (dialed by us or accepted).
  std::shared_ptr<Mailbox> attach(NodeId node) override;
  void detach(NodeId node) override;
  common::Status send(NodeId from, NodeId to, common::Bytes payload) override;
  TrafficMeter* meter_or_null() noexcept override { return &meter_; }

 private:
  TcpHub(NodeId self, int listen_fd, std::uint16_t port);

  void accept_loop();
  void reader_loop(NodeId peer, int fd);
  common::Status register_connection(NodeId peer, int fd);

  NodeId self_;
  int listen_fd_;
  std::uint16_t port_;
  std::shared_ptr<Mailbox> mailbox_ = std::make_shared<Mailbox>();
  TrafficMeter meter_;

  std::mutex mutex_;
  std::map<NodeId, int> peer_fds_;
  std::vector<std::thread> reader_threads_;
  std::thread accept_thread_;
  bool closing_ = false;
};

}  // namespace gendpr::net
