#include "net/study_acceptor.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/log.hpp"
#include "wire/frame.hpp"

namespace gendpr::net {

using common::Errc;
using common::make_error;
using common::Status;

namespace {

/// A hello that has not completed within this window is a stuck or hostile
/// connection; holding it longer only ties up acceptor state.
constexpr std::chrono::milliseconds kHelloTimeout{5000};

std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

}  // namespace

common::Result<std::unique_ptr<StudyAcceptor>> StudyAcceptor::create(
    EventLoop& loop, std::uint16_t port) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return make_error(Errc::io_error,
                      std::string("socket: ") + std::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return make_error(Errc::io_error,
                      std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(fd, 64) < 0) {
    ::close(fd);
    return make_error(Errc::io_error,
                      std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    return make_error(Errc::io_error,
                      std::string("getsockname: ") + std::strerror(errno));
  }
  auto acceptor = std::unique_ptr<StudyAcceptor>(
      new StudyAcceptor(loop, fd, ntohs(addr.sin_port)));
  if (Status s = loop.watch(fd, EPOLLIN,
                            std::make_shared<Acceptor>(acceptor.get()));
      !s.ok()) {
    return s.error();
  }
  return acceptor;
}

StudyAcceptor::StudyAcceptor(EventLoop& loop, int listen_fd,
                             std::uint16_t port)
    : loop_(&loop), listen_fd_(listen_fd), port_(port) {}

StudyAcceptor::~StudyAcceptor() {
  for (auto& [fd, pending] : pending_) {
    if (pending->timeout.has_value()) loop_->cancel_timer(*pending->timeout);
    loop_->unwatch(fd);
    ::close(fd);
    pending->fd = -1;
  }
  loop_->unwatch(listen_fd_);
  ::close(listen_fd_);
}

void StudyAcceptor::add_study(std::uint64_t study_id, EventLoop& hub_loop,
                              Hub& hub) {
  const std::lock_guard<std::mutex> lock(routes_mutex_);
  routes_[study_id] = Route{&hub_loop, &hub};
}

void StudyAcceptor::remove_study(std::uint64_t study_id) {
  const std::lock_guard<std::mutex> lock(routes_mutex_);
  routes_.erase(study_id);
}

void StudyAcceptor::Acceptor::on_ready(std::uint32_t events) {
  (void)events;
  self->on_acceptable();
}

void StudyAcceptor::on_acceptable() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or error; either way wait for epoll
    const int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    auto pending = std::make_shared<Pending>(this, fd);
    if (!loop_->watch(fd, EPOLLIN, pending).ok()) {
      ::close(fd);
      continue;
    }
    accepted_ += 1;
    pending_[fd] = pending;
    pending->timeout = loop_->add_timer_after(kHelloTimeout, [this, pending] {
      pending->timeout.reset();
      drop_pending(pending);
    });
  }
}

void StudyAcceptor::Pending::on_ready(std::uint32_t events) {
  if (fd < 0) return;
  auto it = self->pending_.find(fd);
  if (it == self->pending_.end()) return;
  const std::shared_ptr<Pending> self_ref = it->second;
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    self->drop_pending(self_ref);
    return;
  }
  self->on_pending_readable(self_ref);
}

void StudyAcceptor::on_pending_readable(
    const std::shared_ptr<Pending>& pending) {
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(pending->fd, buf, sizeof(buf), 0);
    if (n == 0) {
      drop_pending(pending);
      return;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      drop_pending(pending);
      return;
    }
    pending->buffer.insert(pending->buffer.end(), buf,
                           buf + static_cast<std::size_t>(n));
    if (try_dispatch(pending)) return;  // routed or dropped either way
  }
}

bool StudyAcceptor::try_dispatch(const std::shared_ptr<Pending>& pending) {
  const common::Bytes& buf = pending->buffer;
  if (buf.size() < wire::kFrameHeaderBytes) return false;
  const std::uint32_t frame_len = load_u32(buf.data());
  if (frame_len < 4) {
    drop_pending(pending);
    return true;
  }
  const std::size_t payload_size = frame_len - 4;
  // The first frame must be a hello: empty payload (study 0) or exactly the
  // study-id bytes. Anything larger is a protocol violation on a raw
  // socket, cut before buffering a single payload byte further.
  if (payload_size != 0 && payload_size != wire::kHelloStudyBytes) {
    drop_pending(pending);
    return true;
  }
  const std::size_t hello_size = wire::kFrameHeaderBytes + payload_size;
  if (buf.size() < hello_size) return false;
  const NodeId from = load_u32(buf.data() + 4);
  std::uint64_t study_id = 0;
  for (std::size_t i = 0; i < payload_size; ++i) {
    study_id |= std::uint64_t{buf[wire::kFrameHeaderBytes + i]} << (8 * i);
  }
  if (from == kNoNode) {
    drop_pending(pending);
    return true;
  }
  Route route;
  {
    const std::lock_guard<std::mutex> lock(routes_mutex_);
    auto it = routes_.find(study_id);
    if (it != routes_.end()) route = it->second;
  }
  if (route.hub == nullptr) {
    common::log_warn("acceptor", "hello for unregistered study ", study_id,
                     " from node ", from);
    drop_pending(pending);
    return true;
  }
  common::Bytes leftover(buf.begin() + static_cast<std::ptrdiff_t>(hello_size),
                         buf.end());
  const int fd = pending->fd;
  detach_pending(pending);
  // The handoff must run on the hub's own loop thread; post() is the only
  // cross-thread door. Captures raw pointers — the caller keeps the hub and
  // its loop alive until remove_study.
  Hub* hub = route.hub;
  route.loop->post([hub, fd, from, leftover = std::move(leftover)]() mutable {
    hub->adopt_inbound(fd, from, std::move(leftover));
  });
  return true;
}

void StudyAcceptor::detach_pending(const std::shared_ptr<Pending>& pending) {
  if (pending->timeout.has_value()) {
    loop_->cancel_timer(*pending->timeout);
    pending->timeout.reset();
  }
  loop_->unwatch(pending->fd);
  pending_.erase(pending->fd);
  pending->fd = -1;
}

void StudyAcceptor::drop_pending(const std::shared_ptr<Pending>& pending) {
  if (pending->fd < 0) return;
  const int fd = pending->fd;
  detach_pending(pending);
  ::close(fd);
}

}  // namespace gendpr::net
