#include "net/network.hpp"

#include <vector>

namespace gendpr::net {

bool Mailbox::push(Envelope envelope) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return false;
    queue_.push_back(std::move(envelope));
  }
  cv_.notify_one();
  return true;
}

std::optional<Envelope> Mailbox::receive() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return std::nullopt;
  Envelope envelope = std::move(queue_.front());
  queue_.pop_front();
  return envelope;
}

common::Result<Envelope> Mailbox::receive_for(
    std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto ready = [this] { return closed_ || !queue_.empty(); };
  if (timeout.count() <= 0) {
    cv_.wait(lock, ready);
  } else {
    // wait_until re-checks the predicate after the deadline, so a message
    // racing the expiry is still delivered below.
    cv_.wait_until(lock, std::chrono::steady_clock::now() + timeout, ready);
  }
  if (!queue_.empty()) {
    Envelope envelope = std::move(queue_.front());
    queue_.pop_front();
    return envelope;
  }
  if (closed_) {
    return common::make_error(common::Errc::state_violation,
                              "mailbox closed");
  }
  return common::make_error(common::Errc::timeout,
                            "mailbox receive timed out after " +
                                std::to_string(timeout.count()) + " ms");
}

std::optional<Envelope> Mailbox::try_receive() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (queue_.empty()) return std::nullopt;
  Envelope envelope = std::move(queue_.front());
  queue_.pop_front();
  return envelope;
}

void Mailbox::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool Mailbox::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t Mailbox::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void TrafficMeter::record(NodeId from, NodeId to, std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  LinkStats& stats = links_[{from, to}];
  stats.bytes += bytes;
  stats.messages += 1;
}

std::uint64_t TrafficMeter::total_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [link, stats] : links_) total += stats.bytes;
  return total;
}

std::uint64_t TrafficMeter::total_messages() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [link, stats] : links_) total += stats.messages;
  return total;
}

std::uint64_t TrafficMeter::bytes_sent_by(NodeId node) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [link, stats] : links_) {
    if (link.first == node) total += stats.bytes;
  }
  return total;
}

std::uint64_t TrafficMeter::bytes_received_by(NodeId node) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [link, stats] : links_) {
    if (link.second == node) total += stats.bytes;
  }
  return total;
}

std::vector<TrafficMeter::Link> TrafficMeter::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Link> links;
  links.reserve(links_.size());
  for (const auto& [link, stats] : links_) {
    links.push_back(Link{link.first, link.second, stats.bytes, stats.messages});
  }
  return links;
}

void TrafficMeter::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  links_.clear();
}

std::shared_ptr<Mailbox> Network::attach(NodeId node) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto mailbox = std::make_shared<Mailbox>();
  mailboxes_[node] = mailbox;
  return mailbox;
}

void Network::detach(NodeId node) {
  std::shared_ptr<Mailbox> mailbox;
  PeerLostHandler handler;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = mailboxes_.find(node);
    if (it == mailboxes_.end()) return;
    mailbox = it->second;
    mailboxes_.erase(it);
    handler = peer_lost_handler_;
  }
  mailbox->close();
  if (handler) handler(node);
}

void Network::set_peer_lost_handler(PeerLostHandler handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  peer_lost_handler_ = std::move(handler);
}

common::Status Network::send(NodeId from, NodeId to, common::Bytes payload) {
  std::shared_ptr<Mailbox> mailbox;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = mailboxes_.find(to);
    if (it == mailboxes_.end()) {
      return common::make_error(common::Errc::unknown_peer,
                                "send to unattached node " +
                                    std::to_string(to));
    }
    mailbox = it->second;
  }
  // Meter only delivered bytes: a push onto a closed mailbox is a drop, and
  // the §7.1 accounting must match what actually reached the receiver.
  const std::size_t bytes = payload.size();
  if (mailbox->push(Envelope{from, to, std::move(payload)})) {
    meter_.record(from, to, bytes);
  }
  return common::Status::success();
}

void Network::broadcast(NodeId from, const common::Bytes& payload) {
  std::vector<std::pair<NodeId, std::shared_ptr<Mailbox>>> targets;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    targets.reserve(mailboxes_.size());
    for (const auto& [node, mailbox] : mailboxes_) {
      if (node != from) targets.emplace_back(node, mailbox);
    }
  }
  for (auto& [node, mailbox] : targets) {
    if (mailbox->push(Envelope{from, node, payload})) {
      meter_.record(from, node, payload.size());
    }
  }
}

bool Network::is_attached(NodeId node) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return mailboxes_.count(node) > 0;
}

std::size_t Network::node_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return mailboxes_.size();
}

}  // namespace gendpr::net
