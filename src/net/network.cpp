#include "net/network.hpp"

#include <vector>

namespace gendpr::net {

void Mailbox::push(Envelope envelope) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return;
    queue_.push_back(std::move(envelope));
  }
  cv_.notify_one();
}

std::optional<Envelope> Mailbox::receive() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return std::nullopt;
  Envelope envelope = std::move(queue_.front());
  queue_.pop_front();
  return envelope;
}

std::optional<Envelope> Mailbox::try_receive() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (queue_.empty()) return std::nullopt;
  Envelope envelope = std::move(queue_.front());
  queue_.pop_front();
  return envelope;
}

void Mailbox::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t Mailbox::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void TrafficMeter::record(NodeId from, NodeId to, std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  LinkStats& stats = links_[{from, to}];
  stats.bytes += bytes;
  stats.messages += 1;
}

std::uint64_t TrafficMeter::total_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [link, stats] : links_) total += stats.bytes;
  return total;
}

std::uint64_t TrafficMeter::total_messages() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [link, stats] : links_) total += stats.messages;
  return total;
}

std::uint64_t TrafficMeter::bytes_sent_by(NodeId node) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [link, stats] : links_) {
    if (link.first == node) total += stats.bytes;
  }
  return total;
}

std::uint64_t TrafficMeter::bytes_received_by(NodeId node) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [link, stats] : links_) {
    if (link.second == node) total += stats.bytes;
  }
  return total;
}

void TrafficMeter::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  links_.clear();
}

std::shared_ptr<Mailbox> Network::attach(NodeId node) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto mailbox = std::make_shared<Mailbox>();
  mailboxes_[node] = mailbox;
  return mailbox;
}

void Network::detach(NodeId node) {
  std::shared_ptr<Mailbox> mailbox;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = mailboxes_.find(node);
    if (it == mailboxes_.end()) return;
    mailbox = it->second;
    mailboxes_.erase(it);
  }
  mailbox->close();
}

common::Status Network::send(NodeId from, NodeId to, common::Bytes payload) {
  std::shared_ptr<Mailbox> mailbox;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = mailboxes_.find(to);
    if (it == mailboxes_.end()) {
      return common::make_error(common::Errc::unknown_peer,
                                "send to unattached node " +
                                    std::to_string(to));
    }
    mailbox = it->second;
  }
  meter_.record(from, to, payload.size());
  mailbox->push(Envelope{from, to, std::move(payload)});
  return common::Status::success();
}

void Network::broadcast(NodeId from, const common::Bytes& payload) {
  std::vector<std::pair<NodeId, std::shared_ptr<Mailbox>>> targets;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    targets.reserve(mailboxes_.size());
    for (const auto& [node, mailbox] : mailboxes_) {
      if (node != from) targets.emplace_back(node, mailbox);
    }
  }
  for (auto& [node, mailbox] : targets) {
    meter_.record(from, node, payload.size());
    mailbox->push(Envelope{from, node, payload});
  }
}

bool Network::is_attached(NodeId node) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return mailboxes_.count(node) > 0;
}

std::size_t Network::node_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return mailboxes_.size();
}

}  // namespace gendpr::net
