#include "net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

namespace gendpr::net {

using common::Errc;
using common::make_error;
using common::Status;

EventLoop::EventLoop() : epoll_fd_(::epoll_create1(EPOLL_CLOEXEC)) {
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ >= 0 && wake_fd_ >= 0) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
      ::close(wake_fd_);
      wake_fd_ = -1;
    }
  }
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EventLoop::watch(int fd, std::uint32_t events,
                        std::shared_ptr<IoHandler> handler) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    return make_error(Errc::io_error,
                      std::string("epoll_ctl add: ") + std::strerror(errno));
  }
  handlers_[fd] = std::move(handler);
  return Status::success();
}

Status EventLoop::modify(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
    return make_error(Errc::io_error,
                      std::string("epoll_ctl mod: ") + std::strerror(errno));
  }
  return Status::success();
}

void EventLoop::unwatch(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

EventLoop::TimerId EventLoop::add_timer(TimePoint when,
                                        std::function<void()> fn) {
  const TimerId id = next_timer_id_++;
  timers_.emplace(when, Timer{id, std::move(fn)});
  return id;
}

void EventLoop::cancel_timer(TimerId id) {
  for (auto it = timers_.begin(); it != timers_.end(); ++it) {
    if (it->second.id == id) {
      timers_.erase(it);
      return;
    }
  }
}

void EventLoop::post(std::function<void()> fn) {
  {
    const std::lock_guard<std::mutex> lock(posted_mutex_);
    posted_.push_back(std::move(fn));
  }
  const std::uint64_t one = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending wakeup.
  [[maybe_unused]] const ssize_t n =
      ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::run_posted_tasks() {
  // Swap under the lock, run outside it: a task may post again (even to
  // this loop) without deadlocking. Tasks posted mid-drain run next batch.
  std::deque<std::function<void()>> batch;
  {
    const std::lock_guard<std::mutex> lock(posted_mutex_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
}

int EventLoop::wait_timeout_ms(std::chrono::milliseconds max_wait) const {
  if (timers_.empty()) {
    return max_wait.count() < 0 ? -1 : static_cast<int>(max_wait.count());
  }
  const auto remaining = timers_.begin()->first - Clock::now();
  if (remaining <= Clock::duration::zero()) return 0;
  // Ceil so the wait never wakes before the timer is actually due.
  auto ms = std::chrono::ceil<std::chrono::milliseconds>(remaining);
  if (max_wait.count() >= 0 && ms > max_wait) ms = max_wait;
  return static_cast<int>(ms.count());
}

void EventLoop::run_due_timers() {
  const TimePoint now = Clock::now();
  // Pop due timers one at a time: a timer callback may add or cancel other
  // timers, so iterators must be re-fetched after every call.
  for (;;) {
    auto it = timers_.begin();
    if (it == timers_.end() || it->first > now) break;
    std::function<void()> fn = std::move(it->second.fn);
    timers_.erase(it);
    fn();
  }
}

void EventLoop::poll_once(std::chrono::milliseconds max_wait) {
  std::vector<epoll_event> events(64);
  const int n = ::epoll_wait(epoll_fd_, events.data(),
                             static_cast<int>(events.size()),
                             wait_timeout_ms(max_wait));
  if (n < 0 && errno != EINTR) return;
  for (int i = 0; i < n; ++i) {
    const int fd = events[static_cast<std::size_t>(i)].data.fd;
    if (fd == wake_fd_) {
      std::uint64_t drained = 0;
      [[maybe_unused]] const ssize_t r =
          ::read(wake_fd_, &drained, sizeof(drained));
      continue;  // the post queue is drained below regardless
    }
    auto it = handlers_.find(fd);
    if (it == handlers_.end()) continue;  // unwatched by an earlier handler
    // Keep the handler alive across the call: it may unwatch its own fd.
    const std::shared_ptr<IoHandler> handler = it->second;
    handler->on_ready(events[static_cast<std::size_t>(i)].events);
  }
  run_posted_tasks();
  run_due_timers();
}

void EventLoop::run_until(const std::function<bool()>& done) {
  while (!done()) {
    if (handlers_.empty() && timers_.empty()) {
      // Nothing watched and no timers: only a cross-thread post could wake
      // us, and those drain here before we give up on the loop. A task may
      // post further tasks mid-drain; those keep the loop alive too.
      run_posted_tasks();
      bool more_posted;
      {
        const std::lock_guard<std::mutex> lock(posted_mutex_);
        more_posted = !posted_.empty();
      }
      if (done() || (handlers_.empty() && timers_.empty() && !more_posted)) {
        return;
      }
      continue;
    }
    poll_once(std::chrono::milliseconds{-1});
  }
}

}  // namespace gendpr::net
