#include "net/uring_hub.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "common/log.hpp"

#if defined(__linux__)
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#endif

namespace gendpr::net {

using common::Errc;
using common::make_error;
using common::Status;

#if defined(__linux__) && defined(__NR_io_uring_setup)

namespace {

constexpr unsigned kRingEntries = 256;
constexpr std::size_t kRecvBufBytes = 64 * 1024;
/// Fixed-buffer receive slots registered with the kernel (1 MiB slab).
constexpr int kFixedRecvSlots = 16;
/// user_data of ASYNC_CANCEL ops: never a valid (aligned) Op pointer.
constexpr std::uint64_t kCancelToken = 1;

int sys_io_uring_setup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_setup, entries, params));
}

int sys_io_uring_register(int fd, unsigned opcode, const void* arg,
                          unsigned nr_args) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_register, fd, opcode, arg, nr_args));
}

int sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

int make_nonblocking_socket() {
  return ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
}

void set_nodelay(int fd) {
  const int nodelay = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
}

}  // namespace

/// One in-flight kernel operation. Heap-allocated, ownership passes to the
/// kernel at submission (user_data carries the raw pointer) and back at CQE
/// reap. Holding the Conn by shared_ptr keeps its fd slot and buffers alive
/// until the kernel is provably done with them.
struct UringHub::Op {
  enum class Kind { accept, recv, send, connect };
  Kind kind;
  std::shared_ptr<Conn> conn;  // null for accept
  sockaddr_in addr{};          // connect target / accept peer storage
  socklen_t addr_len = sizeof(sockaddr_in);
  /// Registered slot a READ_FIXED receive targets; -1 = plain RECV into the
  /// connection's fallback buffer. The slot stays claimed until this op's
  /// CQE is reaped, so the kernel never writes into a recycled slot.
  int buf_slot = -1;
};

/// One TCP connection (inbound, adopted, or dialed). All state is
/// loop-thread-only; liveness across late completions comes from the Op's
/// shared_ptr.
struct UringHub::Conn {
  explicit Conn(int conn_fd) : fd(conn_fd), recv_buf(kRecvBufBytes) {}

  int fd;
  NodeId peer = kNoNode;        // known after dial / after inbound hello
  bool awaiting_hello = false;  // inbound: first frame must be the hello
  bool connecting = false;      // CONNECT op still in flight
  bool dead = false;            // dropped; ignore every later completion
  bool paused = false;          // write queue above the high watermark
  wire::FrameDecoder decoder;
  std::vector<std::uint8_t> recv_buf;  // fallback RECV target (no fixed slot)
  std::deque<wire::WireBuffer> write_queue;  // pooled, header-stamped frames
  std::size_t write_offset = 0;  // bytes of the front frame already written
  std::size_t queued_bytes = 0;  // unsent bytes across the whole queue
  Op* recv_op = nullptr;         // in-flight ops, for targeted cancel
  Op* send_op = nullptr;
  Op* connect_op = nullptr;
};

void UringHub::RingHandler::on_ready(std::uint32_t events) {
  (void)events;
  hub->reap();
}

bool UringHub::available() {
  static const bool supported = [] {
    io_uring_params params{};
    const int fd = sys_io_uring_setup(4, &params);
    if (fd < 0) return false;
    ::close(fd);
    return true;
  }();
  return supported;
}

UringHub::UringHub(EventLoop& loop, NodeId self, std::uint16_t port)
    : Hub(self, port), loop_(&loop) {}

common::Status UringHub::init_ring() {
  io_uring_params params{};
  ring_fd_ = sys_io_uring_setup(kRingEntries, &params);
  if (ring_fd_ < 0) {
    return make_error(Errc::io_error, std::string("io_uring_setup: ") +
                                          std::strerror(errno));
  }
  sq_map_len_ = params.sq_off.array + params.sq_entries * sizeof(unsigned);
  cq_map_len_ = params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
  single_mmap_ = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap_) {
    sq_map_len_ = cq_map_len_ = std::max(sq_map_len_, cq_map_len_);
  }
  sq_ptr_ = ::mmap(nullptr, sq_map_len_, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
  if (sq_ptr_ == MAP_FAILED) {
    sq_ptr_ = nullptr;
    destroy_ring();
    return make_error(Errc::io_error,
                      std::string("mmap sq: ") + std::strerror(errno));
  }
  if (single_mmap_) {
    cq_ptr_ = sq_ptr_;
  } else {
    cq_ptr_ = ::mmap(nullptr, cq_map_len_, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
    if (cq_ptr_ == MAP_FAILED) {
      cq_ptr_ = nullptr;
      destroy_ring();
      return make_error(Errc::io_error,
                        std::string("mmap cq: ") + std::strerror(errno));
    }
  }
  sqes_map_len_ = params.sq_entries * sizeof(io_uring_sqe);
  sqes_ptr_ = ::mmap(nullptr, sqes_map_len_, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
  if (sqes_ptr_ == MAP_FAILED) {
    sqes_ptr_ = nullptr;
    destroy_ring();
    return make_error(Errc::io_error,
                      std::string("mmap sqes: ") + std::strerror(errno));
  }
  auto* sq_base = static_cast<std::uint8_t*>(sq_ptr_);
  sq_head_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.head);
  sq_tail_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.tail);
  sq_mask_ = *reinterpret_cast<unsigned*>(sq_base + params.sq_off.ring_mask);
  sq_array_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.array);
  sq_entries_ = params.sq_entries;
  auto* cq_base = static_cast<std::uint8_t*>(cq_ptr_);
  cq_head_ = reinterpret_cast<unsigned*>(cq_base + params.cq_off.head);
  cq_tail_ = reinterpret_cast<unsigned*>(cq_base + params.cq_off.tail);
  cq_mask_ = *reinterpret_cast<unsigned*>(cq_base + params.cq_off.ring_mask);
  cqes_ = cq_base + params.cq_off.cqes;
  register_fixed_buffers();
  return Status::success();
}

void UringHub::register_fixed_buffers() {
#if defined(__NR_io_uring_register)
  // One slab, carved into per-receive slots and registered as one iovec per
  // slot — the kernel pins the pages once here instead of per operation.
  fixed_slab_.assign(
      static_cast<std::size_t>(kFixedRecvSlots) * kRecvBufBytes, 0);
  std::vector<iovec> iovs(static_cast<std::size_t>(kFixedRecvSlots));
  for (int slot = 0; slot < kFixedRecvSlots; ++slot) {
    iovs[static_cast<std::size_t>(slot)].iov_base =
        fixed_slab_.data() + static_cast<std::size_t>(slot) * kRecvBufBytes;
    iovs[static_cast<std::size_t>(slot)].iov_len = kRecvBufBytes;
  }
  const int rc = sys_io_uring_register(ring_fd_, IORING_REGISTER_BUFFERS,
                                       iovs.data(),
                                       static_cast<unsigned>(iovs.size()));
  if (rc == 0) {
    use_fixed_ = true;
    free_slots_.reserve(static_cast<std::size_t>(kFixedRecvSlots));
    for (int slot = kFixedRecvSlots - 1; slot >= 0; --slot) {
      free_slots_.push_back(slot);
    }
  } else {
    fixed_slab_.clear();
    fixed_slab_.shrink_to_fit();
  }
#endif
}

void UringHub::destroy_ring() {
  if (sqes_ptr_ != nullptr) ::munmap(sqes_ptr_, sqes_map_len_);
  if (cq_ptr_ != nullptr && !single_mmap_) ::munmap(cq_ptr_, cq_map_len_);
  if (sq_ptr_ != nullptr) ::munmap(sq_ptr_, sq_map_len_);
  sqes_ptr_ = cq_ptr_ = sq_ptr_ = nullptr;
  if (ring_fd_ >= 0) {
    ::close(ring_fd_);
    ring_fd_ = -1;
  }
}

common::Status UringHub::init_listener(std::uint16_t port) {
  const int fd = make_nonblocking_socket();
  if (fd < 0) {
    return make_error(Errc::io_error,
                      std::string("socket: ") + std::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return make_error(Errc::io_error,
                      std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(fd, 64) < 0) {
    ::close(fd);
    return make_error(Errc::io_error,
                      std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    return make_error(Errc::io_error,
                      std::string("getsockname: ") + std::strerror(errno));
  }
  listen_fd_ = fd;
  set_port(ntohs(addr.sin_port));
  return Status::success();
}

common::Result<std::unique_ptr<UringHub>> UringHub::create(
    EventLoop& loop, NodeId self, std::uint16_t port) {
  auto hub = std::unique_ptr<UringHub>(new UringHub(loop, self, port));
  if (Status s = hub->init_ring(); !s.ok()) return s.error();
  if (Status s = hub->init_listener(port); !s.ok()) return s.error();
  if (Status s = loop.watch(hub->ring_fd_, EPOLLIN,
                            std::make_shared<RingHandler>(hub.get()));
      !s.ok()) {
    return s.error();
  }
  if (!hub->submit_accept()) {
    return make_error(Errc::io_error, "io_uring: cannot arm accept");
  }
  return hub;
}

common::Result<std::unique_ptr<UringHub>> UringHub::create_adopt_only(
    EventLoop& loop, NodeId self) {
  auto hub = std::unique_ptr<UringHub>(new UringHub(loop, self, 0));
  if (Status s = hub->init_ring(); !s.ok()) return s.error();
  if (Status s = loop.watch(hub->ring_fd_, EPOLLIN,
                            std::make_shared<RingHandler>(hub.get()));
      !s.ok()) {
    return s.error();
  }
  return hub;
}

UringHub::~UringHub() {
  shutting_down_ = true;
  for (auto& [peer, dial] : dials_) {
    if (dial.retry_timer.has_value()) loop_->cancel_timer(*dial.retry_timer);
  }
  // Make every in-flight op completable: shutdown unblocks RECV/SEND, the
  // explicit cancels cover ACCEPT and CONNECT (and are harmless no-ops for
  // ops that already completed).
  for (const auto& conn : conns_) {
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    cancel_conn_ops(conn);
  }
  if (accept_op_ != nullptr) submit_cancel(accept_op_);
  // Reap until the kernel owns nothing of ours; only then may buffers and
  // mappings be released.
  while (outstanding_ > 0) {
    const int rc =
        sys_io_uring_enter(ring_fd_, 0, 1, IORING_ENTER_GETEVENTS);
    if (rc < 0 && errno != EINTR) break;
    reap();
  }
  for (const auto& conn : conns_) {
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (ring_fd_ >= 0) loop_->unwatch(ring_fd_);
  destroy_ring();
}

bool UringHub::submit_op(std::unique_ptr<Op> op) {
  // Immediate one-SQE submission: the queue never accumulates, so a full SQ
  // means kRingEntries ops are genuinely in flight — beyond this hub's
  // bounded per-connection op count, i.e. unreachable.
  const unsigned tail = *sq_tail_;
  const unsigned head = __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE);
  if (tail - head >= sq_entries_) return false;
  auto* sqes = static_cast<io_uring_sqe*>(sqes_ptr_);
  io_uring_sqe* sqe = &sqes[tail & sq_mask_];
  std::memset(sqe, 0, sizeof(*sqe));
  switch (op->kind) {
    case Op::Kind::accept:
      sqe->opcode = IORING_OP_ACCEPT;
      sqe->fd = listen_fd_;
      sqe->addr = reinterpret_cast<std::uintptr_t>(&op->addr);
      sqe->addr2 = reinterpret_cast<std::uintptr_t>(&op->addr_len);
      sqe->accept_flags = SOCK_CLOEXEC;
      break;
    case Op::Kind::recv:
      if (op->buf_slot >= 0) {
        // Registered-buffer receive: RECV has no fixed variant, but on a
        // socket READ_FIXED at offset 0 is the same read — minus the per-op
        // page pin, because the slot was registered at ring setup.
        sqe->opcode = IORING_OP_READ_FIXED;
        sqe->fd = op->conn->fd;
        sqe->addr = reinterpret_cast<std::uintptr_t>(
            fixed_slab_.data() +
            static_cast<std::size_t>(op->buf_slot) * kRecvBufBytes);
        sqe->len = static_cast<std::uint32_t>(kRecvBufBytes);
        sqe->off = 0;
        sqe->buf_index = static_cast<std::uint16_t>(op->buf_slot);
      } else {
        sqe->opcode = IORING_OP_RECV;
        sqe->fd = op->conn->fd;
        sqe->addr =
            reinterpret_cast<std::uintptr_t>(op->conn->recv_buf.data());
        sqe->len = static_cast<std::uint32_t>(op->conn->recv_buf.size());
      }
      break;
    case Op::Kind::send: {
      const common::BytesView front = op->conn->write_queue.front().frame();
      sqe->opcode = IORING_OP_SEND;
      sqe->fd = op->conn->fd;
      sqe->addr = reinterpret_cast<std::uintptr_t>(front.data() +
                                                   op->conn->write_offset);
      sqe->len =
          static_cast<std::uint32_t>(front.size() - op->conn->write_offset);
      sqe->msg_flags = MSG_NOSIGNAL;
      break;
    }
    case Op::Kind::connect:
      sqe->opcode = IORING_OP_CONNECT;
      sqe->fd = op->conn->fd;
      sqe->addr = reinterpret_cast<std::uintptr_t>(&op->addr);
      sqe->off = op->addr_len;
      break;
  }
  sqe->user_data = reinterpret_cast<std::uintptr_t>(op.get());
  sq_array_[tail & sq_mask_] = tail & sq_mask_;
  __atomic_store_n(sq_tail_, tail + 1, __ATOMIC_RELEASE);
  for (;;) {
    const int rc = sys_io_uring_enter(ring_fd_, 1, 0, 0);
    if (rc >= 0) break;
    if (errno != EINTR) return false;
  }
  outstanding_ += 1;
  op.release();  // the kernel owns it until the CQE is reaped
  return true;
}

void UringHub::submit_cancel(const Op* target) {
  const unsigned tail = *sq_tail_;
  const unsigned head = __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE);
  if (tail - head >= sq_entries_) return;
  auto* sqes = static_cast<io_uring_sqe*>(sqes_ptr_);
  io_uring_sqe* sqe = &sqes[tail & sq_mask_];
  std::memset(sqe, 0, sizeof(*sqe));
  sqe->opcode = IORING_OP_ASYNC_CANCEL;
  sqe->fd = -1;
  sqe->addr = reinterpret_cast<std::uintptr_t>(target);
  sqe->user_data = kCancelToken;
  sq_array_[tail & sq_mask_] = tail & sq_mask_;
  __atomic_store_n(sq_tail_, tail + 1, __ATOMIC_RELEASE);
  for (;;) {
    const int rc = sys_io_uring_enter(ring_fd_, 1, 0, 0);
    if (rc >= 0) break;
    if (errno != EINTR) return;
  }
  outstanding_ += 1;
}

bool UringHub::submit_accept() {
  auto op = std::make_unique<Op>();
  op->kind = Op::Kind::accept;
  Op* raw = op.get();
  if (!submit_op(std::move(op))) return false;
  accept_op_ = raw;
  return true;
}

bool UringHub::submit_recv(const std::shared_ptr<Conn>& conn) {
  auto op = std::make_unique<Op>();
  op->kind = Op::Kind::recv;
  op->conn = conn;
  int slot = -1;
  if (use_fixed_ && !free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  op->buf_slot = slot;
  Op* raw = op.get();
  if (!submit_op(std::move(op))) {
    if (slot >= 0) free_slots_.push_back(slot);
    return false;
  }
  conn->recv_op = raw;
  return true;
}

void UringHub::maybe_submit_send(const std::shared_ptr<Conn>& conn) {
  if (conn->send_op != nullptr || conn->write_queue.empty() || conn->dead) {
    return;
  }
  auto op = std::make_unique<Op>();
  op->kind = Op::Kind::send;
  op->conn = conn;
  Op* raw = op.get();
  if (!submit_op(std::move(op))) {
    drop_conn(conn);
    return;
  }
  conn->send_op = raw;
}

bool UringHub::submit_connect(const std::shared_ptr<Conn>& conn) {
  auto op = std::make_unique<Op>();
  op->kind = Op::Kind::connect;
  op->conn = conn;
  op->addr = {};
  // The dial target was validated and stored by attempt_dial via the Dial
  // entry; re-derive it here so the sockaddr lives inside the Op for the
  // whole kernel lifetime of the CONNECT.
  auto it = dials_.find(conn->peer);
  if (it == dials_.end()) return false;
  op->addr.sin_family = AF_INET;
  op->addr.sin_port = htons(it->second.port);
  if (::inet_pton(AF_INET, it->second.host.c_str(), &op->addr.sin_addr) !=
      1) {
    return false;
  }
  op->addr_len = sizeof(op->addr);
  Op* raw = op.get();
  if (!submit_op(std::move(op))) return false;
  conn->connect_op = raw;
  return true;
}

void UringHub::reap() {
  auto* cqes = static_cast<io_uring_cqe*>(cqes_);
  for (;;) {
    const unsigned head = *cq_head_;
    const unsigned tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
    if (head == tail) break;
    const io_uring_cqe& cqe = cqes[head & cq_mask_];
    const std::int32_t res = cqe.res;
    const std::uint64_t user_data = cqe.user_data;
    __atomic_store_n(cq_head_, head + 1, __ATOMIC_RELEASE);
    handle_cqe(res, user_data);
  }
}

void UringHub::handle_cqe(std::int32_t res, std::uint64_t user_data) {
  if (outstanding_ > 0) outstanding_ -= 1;
  if (user_data == kCancelToken) return;  // a cancel's own completion
  std::unique_ptr<Op> op(reinterpret_cast<Op*>(
      static_cast<std::uintptr_t>(user_data)));
  switch (op->kind) {
    case Op::Kind::accept:
      on_accept_done(res, op.get());
      break;
    case Op::Kind::recv: {
      if (op->conn->recv_op == op.get()) op->conn->recv_op = nullptr;
      const int slot = op->buf_slot;
      const std::uint8_t* data =
          slot >= 0 ? fixed_slab_.data() +
                          static_cast<std::size_t>(slot) * kRecvBufBytes
                    : op->conn->recv_buf.data();
      on_recv_done(res, op->conn, data, slot >= 0);
      // The frames were delivered (or stashed) before this point, so the
      // slot is free for the next receive.
      if (slot >= 0) free_slots_.push_back(slot);
      break;
    }
    case Op::Kind::send:
      if (op->conn->send_op == op.get()) op->conn->send_op = nullptr;
      on_send_done(res, op->conn);
      break;
    case Op::Kind::connect:
      if (op->conn->connect_op == op.get()) op->conn->connect_op = nullptr;
      on_connect_done(res, op->conn);
      break;
  }
}

void UringHub::on_accept_done(std::int32_t res, Op* op) {
  (void)op;
  accept_op_ = nullptr;
  if (shutting_down_) {
    if (res >= 0) ::close(res);
    return;
  }
  if (res >= 0) {
    set_nodelay(res);
    auto conn = std::make_shared<Conn>(res);
    conn->awaiting_hello = true;
    conns_.insert(conn);
    if (!submit_recv(conn)) drop_conn(conn);
  } else if (res == -ECANCELED) {
    return;  // shutting down; do not re-arm
  }
  if (!submit_accept()) {
    common::log_warn("uring", "hub ", self_, " cannot re-arm accept");
  }
}

void UringHub::on_recv_done(std::int32_t res,
                            const std::shared_ptr<Conn>& conn,
                            const std::uint8_t* data, bool was_fixed) {
  if (conn->dead || shutting_down_) return;
  if (was_fixed && (res == -EINVAL || res == -EOPNOTSUPP)) {
    // Kernel accepted the registration but rejects READ_FIXED on sockets:
    // flip the whole hub to plain RECV and re-arm this connection.
    use_fixed_ = false;
    if (!submit_recv(conn)) drop_conn(conn);
    return;
  }
  if (res <= 0) {
    drop_conn(conn);
    return;
  }
  conn->decoder.feed(common::BytesView(data, static_cast<std::size_t>(res)));
  deliver_frames(conn);
  if (!conn->dead && !submit_recv(conn)) drop_conn(conn);
}

void UringHub::deliver_frames(const std::shared_ptr<Conn>& conn) {
  for (;;) {
    auto frame = conn->decoder.next();
    if (!frame.ok()) {
      common::log_warn("uring", "malformed frame on hub ", self_);
      drop_conn(conn);
      return;
    }
    if (!frame.value().has_value()) break;
    const wire::FrameDecoder::Frame f = *frame.value();
    if (conn->awaiting_hello) {
      // Same contract as EpollHub::read_frames: the first frame must be a
      // hello naming the peer, for the one study this hub serves.
      const auto study = f.hello_study();
      if (!study.has_value() || f.from == kNoNode || *study != study_id_) {
        drop_conn(conn);
        return;
      }
      conn->awaiting_hello = false;
      conn->peer = f.from;
      register_established(f.from, conn);
      continue;
    }
    meter_.record(f.from, self_, f.payload.size());
    if (frame_handler_) frame_handler_(f.from, f.payload);
    if (conn->dead) return;  // handler tore the hub's state down
  }
}

void UringHub::on_send_done(std::int32_t res,
                            const std::shared_ptr<Conn>& conn) {
  if (conn->dead || shutting_down_) return;
  if (res <= 0) {
    drop_conn(conn);
    return;
  }
  const auto written = static_cast<std::size_t>(res);
  conn->write_offset += written;
  conn->queued_bytes -= written;
  if (conn->write_offset == conn->write_queue.front().frame().size()) {
    conn->write_queue.pop_front();  // pooled storage returns here
    conn->write_offset = 0;
  }
  maybe_submit_send(conn);
  if (conn->dead) return;
  // Resume last, mirroring EpollHub::flush_writes: a producer resumed by
  // this callback may enqueue immediately and must find the next SEND
  // already armed.
  note_drained(conn->peer, conn->queued_bytes, conn->paused);
}

void UringHub::on_connect_done(std::int32_t res,
                               const std::shared_ptr<Conn>& conn) {
  if (conn->dead) return;
  const NodeId peer = conn->peer;
  if (shutting_down_) return;
  if (res != 0) {
    conn->dead = true;
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
    conns_.erase(conn);
    dial_attempt_failed(peer);
    return;
  }
  conn->connecting = false;
  if (!submit_recv(conn)) {
    drop_conn(conn);
    return;
  }
  finish_dial(peer, conn);
}

void UringHub::enqueue_frame(const std::shared_ptr<Conn>& conn,
                             wire::WireBuffer buf) {
  conn->queued_bytes += buf.frame().size();
  conn->write_queue.push_back(std::move(buf));
  wire_stats_.frames_sent += 1;
  note_enqueued(conn->peer, conn->queued_bytes, conn->paused);
}

void UringHub::cancel_conn_ops(const std::shared_ptr<Conn>& conn) {
  if (conn->recv_op != nullptr) submit_cancel(conn->recv_op);
  if (conn->send_op != nullptr) submit_cancel(conn->send_op);
  if (conn->connect_op != nullptr) submit_cancel(conn->connect_op);
}

void UringHub::drop_conn(const std::shared_ptr<Conn>& conn) {
  if (conn->dead) return;
  conn->dead = true;
  if (conn->fd >= 0) {
    // Shutdown first so in-flight RECV/SEND complete promptly; the cancels
    // cover a pending CONNECT. The kernel's file reference (taken at
    // submission) keeps late completions harmless, and the Op shared_ptrs
    // keep the buffers they target alive until reaped.
    ::shutdown(conn->fd, SHUT_RDWR);
    cancel_conn_ops(conn);
    ::close(conn->fd);
    conn->fd = -1;
  }
  conns_.erase(conn);
  const NodeId peer = conn->peer;
  if (peer == kNoNode) return;
  release_pause_on_drop(peer, conn->paused);
  auto it = peers_.find(peer);
  if (it == peers_.end() || it->second != conn) return;
  peers_.erase(it);
  report_peer_lost(peer);
}

void UringHub::report_peer_lost(NodeId peer) {
  lost_peers_.insert(peer);
  common::log_warn("uring", "hub ", self_, " lost connection to peer ", peer);
  if (peer_lost_handler_) peer_lost_handler_(peer);
}

void UringHub::register_established(NodeId peer,
                                    const std::shared_ptr<Conn>& conn) {
  lost_peers_.erase(peer);  // a reconnect clears the lost mark
  peers_[peer] = conn;
}

void UringHub::adopt_inbound(int fd, NodeId peer, common::Bytes leftover) {
  set_nodelay(fd);
  auto conn = std::make_shared<Conn>(fd);
  conn->peer = peer;
  conns_.insert(conn);
  register_established(peer, conn);
  if (!leftover.empty()) {
    conn->decoder.feed(common::BytesView(leftover.data(), leftover.size()));
    deliver_frames(conn);
    if (conn->dead) return;
  }
  if (!submit_recv(conn)) drop_conn(conn);
}

void UringHub::connect_peer(NodeId peer, const std::string& host,
                            std::uint16_t port, DialOptions options) {
  if (options.max_attempts < 1) options.max_attempts = 1;
  Dial dial;
  dial.host = host;
  dial.port = port;
  dial.attempts_left = options.max_attempts;
  dial.backoff = options.initial_backoff;
  dials_[peer] = std::move(dial);
  attempt_dial(peer);
}

void UringHub::attempt_dial(NodeId peer) {
  auto it = dials_.find(peer);
  if (it == dials_.end()) return;
  Dial& dial = it->second;
  dial.retry_timer.reset();
  dial.attempts_left -= 1;
  const int fd = make_nonblocking_socket();
  if (fd < 0) {
    dial_attempt_failed(peer);
    return;
  }
  set_nodelay(fd);
  auto conn = std::make_shared<Conn>(fd);
  conn->peer = peer;
  conn->connecting = true;
  conns_.insert(conn);
  if (!submit_connect(conn)) {
    conn->dead = true;
    ::close(fd);
    conn->fd = -1;
    conns_.erase(conn);
    dial.attempts_left = 0;  // a bad address never resolves itself
    dial_attempt_failed(peer);
    return;
  }
}

void UringHub::dial_attempt_failed(NodeId peer) {
  auto it = dials_.find(peer);
  if (it == dials_.end()) return;
  Dial& dial = it->second;
  if (dial.attempts_left <= 0) {
    // Frames queued against the dial die with it; the counter makes the
    // loss visible in run reports instead of silent.
    wire_stats_.dial_dropped_frames += dial.pending.size();
    dials_.erase(it);
    report_peer_lost(peer);
    return;
  }
  // Same jittered schedule as EpollHub: reconnect storms must not arrive as
  // one synchronized wave per backoff step.
  const std::chrono::milliseconds backoff = jittered(dial.backoff);
  dial.backoff *= 2;
  dial.retry_timer =
      loop_->add_timer_after(backoff, [this, peer] { attempt_dial(peer); });
}

void UringHub::finish_dial(NodeId peer, const std::shared_ptr<Conn>& conn) {
  auto it = dials_.find(peer);
  // Hello first, then everything queued while the dial was in flight,
  // preserving send order.
  enqueue_frame(conn,
                wire::WireBuffer::from_frame(
                    pool(), wire::encode_hello(self_, study_id_)));
  if (it != dials_.end()) {
    for (wire::WireBuffer& buf : it->second.pending) {
      meter_.record(self_, peer, buf.payload_size());
      enqueue_frame(conn, std::move(buf));
    }
    dials_.erase(it);
  }
  register_established(peer, conn);
  maybe_submit_send(conn);
}

Status UringHub::send_frame(NodeId to, wire::WireBuffer buf) {
  buf.finish_frame(self_);
  if (auto dial = dials_.find(to); dial != dials_.end()) {
    // Still pooled: the buffer waits in its wire shape until the dial
    // resolves, with no eager re-encode and no extra copy.
    dial->second.pending.push_back(std::move(buf));
    return Status::success();
  }
  auto it = peers_.find(to);
  if (it == peers_.end()) {
    const bool lost = lost_peers_.count(to) > 0;
    return make_error(Errc::unknown_peer,
                      (lost ? "connection to node " : "no connection to node ") +
                          std::to_string(to) + (lost ? " was lost" : ""));
  }
  const std::shared_ptr<Conn> conn = it->second;
  meter_.record(self_, to, buf.payload_size());
  enqueue_frame(conn, std::move(buf));
  maybe_submit_send(conn);
  if (conn->dead) {
    return make_error(Errc::unknown_peer,
                      "connection to node " + std::to_string(to) +
                          " was lost");
  }
  return Status::success();
}

bool UringHub::is_connected(NodeId peer) const {
  return peers_.count(peer) > 0;
}

#else  // no io_uring syscall numbers on this platform

struct UringHub::Conn {};
struct UringHub::Op {};

void UringHub::RingHandler::on_ready(std::uint32_t) {}

bool UringHub::available() { return false; }

UringHub::UringHub(EventLoop& loop, NodeId self, std::uint16_t port)
    : Hub(self, port), loop_(&loop) {}

common::Status UringHub::init_ring() {
  return make_error(Errc::io_error, "io_uring unsupported on this platform");
}
common::Status UringHub::init_listener(std::uint16_t) {
  return make_error(Errc::io_error, "io_uring unsupported on this platform");
}
void UringHub::destroy_ring() {}

common::Result<std::unique_ptr<UringHub>> UringHub::create(EventLoop&, NodeId,
                                                           std::uint16_t) {
  return make_error(Errc::io_error, "io_uring unsupported on this platform");
}
common::Result<std::unique_ptr<UringHub>> UringHub::create_adopt_only(
    EventLoop&, NodeId) {
  return make_error(Errc::io_error, "io_uring unsupported on this platform");
}

UringHub::~UringHub() = default;

void UringHub::connect_peer(NodeId peer, const std::string&, std::uint16_t,
                            DialOptions) {
  if (peer_lost_handler_) peer_lost_handler_(peer);
}
common::Status UringHub::send_frame(NodeId, wire::WireBuffer) {
  return make_error(Errc::io_error, "io_uring unsupported on this platform");
}
bool UringHub::is_connected(NodeId) const { return false; }
void UringHub::adopt_inbound(int fd, NodeId, common::Bytes) { ::close(fd); }

#endif

}  // namespace gendpr::net
