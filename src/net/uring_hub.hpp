// Completion-driven TCP endpoint backed by io_uring (raw syscalls).
//
// UringHub is the proactor sibling of EpollHub behind the same net::Hub
// seam: instead of reacting to readiness it keeps one RECV and at most one
// SEND operation in flight per connection (plus one ACCEPT on the listener
// and one CONNECT per in-flight dial), and handles their completions. The
// ring fd itself is watched on the shared EventLoop — it polls readable
// whenever completions are pending — so uring- and epoll-backed hubs, plus
// all timers, coexist on one loop thread with no second wait primitive.
//
// No liburing: the ring is set up with io_uring_setup(2)/mmap(2) and driven
// with io_uring_enter(2) directly, using acquire/release atomics on the
// shared ring indices. Runtime support is probed by available(); callers
// fall back to EpollHub on kernels without io_uring.
//
// Semantics (wire format, hello/study validation, dial backoff + jitter,
// watermark backpressure, peer-lost reporting, traffic metering) match
// EpollHub frame-for-frame: the transports interoperate and produce
// byte-identical protocol traffic.
//
// Threading: everything here, handlers included, runs on the loop thread.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "net/event_loop.hpp"
#include "net/hub.hpp"
#include "wire/frame.hpp"

namespace gendpr::net {

class UringHub : public Hub {
 public:
  /// True when this kernel accepts io_uring_setup(2) (probed once, cached).
  static bool available();

  /// Binds a listening socket on 127.0.0.1:port (port 0 = ephemeral) for
  /// node `self` and serves it with an io_uring instance whose completions
  /// are dispatched from `loop`. Fails with Errc::io_error when the kernel
  /// lacks io_uring (check available() first). The loop must outlive the
  /// hub.
  static common::Result<std::unique_ptr<UringHub>> create(EventLoop& loop,
                                                          NodeId self,
                                                          std::uint16_t port);

  /// Hub with no listening socket of its own: every inbound connection is
  /// handed over by a StudyAcceptor through adopt_inbound(). Dialing out
  /// still works.
  static common::Result<std::unique_ptr<UringHub>> create_adopt_only(
      EventLoop& loop, NodeId self);

  /// Drains every in-flight kernel operation (shutdown + async cancel +
  /// reap) before releasing buffers, so the kernel never completes into
  /// freed memory.
  ~UringHub() override;

  void connect_peer(NodeId peer, const std::string& host, std::uint16_t port,
                    DialOptions options) override;
  using Hub::connect_peer;

  common::Status send_frame(NodeId to, wire::WireBuffer buf) override;

  bool is_connected(NodeId peer) const override;

  void adopt_inbound(int fd, NodeId peer, common::Bytes leftover) override;

 private:
  struct Conn;
  struct Op;

  /// Watches the ring fd on the EventLoop; readable = completions pending.
  struct RingHandler : EventLoop::IoHandler {
    explicit RingHandler(UringHub* owner) : hub(owner) {}
    void on_ready(std::uint32_t events) override;
    UringHub* hub;
  };

  /// An in-flight dial: retry schedule plus frames queued before
  /// establishment. Mirrors EpollHub::Dial.
  struct Dial {
    std::string host;
    std::uint16_t port = 0;
    int attempts_left = 0;
    std::chrono::milliseconds backoff{0};
    /// Pooled frames queued before the connection exists; flushed after the
    /// hello, or dropped (and counted) when the dial permanently fails.
    std::deque<wire::WireBuffer> pending;
    std::optional<EventLoop::TimerId> retry_timer;
  };

  UringHub(EventLoop& loop, NodeId self, std::uint16_t port);

  common::Status init_ring();
  common::Status init_listener(std::uint16_t port);
  /// Attempts IORING_REGISTER_BUFFERS for the receive slab; on refusal the
  /// hub silently stays on plain RECV.
  void register_fixed_buffers();
  void destroy_ring();

  /// Prepares + submits one SQE; returns false if the kernel refused it.
  bool submit_accept();
  bool submit_recv(const std::shared_ptr<Conn>& conn);
  void maybe_submit_send(const std::shared_ptr<Conn>& conn);
  bool submit_connect(const std::shared_ptr<Conn>& conn);
  void submit_cancel(const Op* target);
  bool submit_op(std::unique_ptr<Op> op);

  void reap();
  void handle_cqe(std::int32_t res, std::uint64_t user_data);
  void on_accept_done(std::int32_t res, Op* op);
  /// `data` is the receive buffer the completed op targeted (a registered
  /// fixed slot or the connection's fallback buffer); `was_fixed` drives the
  /// runtime READ_FIXED → RECV fallback on kernels that reject it.
  void on_recv_done(std::int32_t res, const std::shared_ptr<Conn>& conn,
                    const std::uint8_t* data, bool was_fixed);
  void on_send_done(std::int32_t res, const std::shared_ptr<Conn>& conn);
  void on_connect_done(std::int32_t res, const std::shared_ptr<Conn>& conn);

  void deliver_frames(const std::shared_ptr<Conn>& conn);
  void enqueue_frame(const std::shared_ptr<Conn>& conn, wire::WireBuffer buf);
  /// Tears the connection down; established peers are reported lost. The fd
  /// is shutdown + closed immediately; in-flight ops are cancelled and keep
  /// the Conn (and its buffers) alive until their completions are reaped.
  void drop_conn(const std::shared_ptr<Conn>& conn);
  void cancel_conn_ops(const std::shared_ptr<Conn>& conn);
  void attempt_dial(NodeId peer);
  void dial_attempt_failed(NodeId peer);
  void finish_dial(NodeId peer, const std::shared_ptr<Conn>& conn);
  void register_established(NodeId peer, const std::shared_ptr<Conn>& conn);
  void report_peer_lost(NodeId peer);

  EventLoop* loop_;
  int ring_fd_ = -1;
  int listen_fd_ = -1;  // -1 for an adopt-only hub
  bool shutting_down_ = false;
  std::uint64_t outstanding_ = 0;  // submitted SQEs not yet reaped

  // Ring mappings (see init_ring / destroy_ring).
  void* sq_ptr_ = nullptr;
  std::size_t sq_map_len_ = 0;
  void* cq_ptr_ = nullptr;
  std::size_t cq_map_len_ = 0;
  void* sqes_ptr_ = nullptr;
  std::size_t sqes_map_len_ = 0;
  bool single_mmap_ = false;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned* sq_array_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned sq_entries_ = 0;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  void* cqes_ = nullptr;  // io_uring_cqe array (typed in the .cpp)

  // Registered fixed-buffer receive slab (IORING_REGISTER_BUFFERS): one
  // contiguous allocation carved into per-receive slots, registered once at
  // ring setup so READ_FIXED receives skip the kernel's per-op pin/unpin.
  // Probed at registration and again at first completion; on any refusal
  // the hub falls back to plain RECV into per-connection buffers.
  bool use_fixed_ = false;
  std::vector<std::uint8_t> fixed_slab_;
  std::vector<int> free_slots_;

  Op* accept_op_ = nullptr;
  std::set<std::shared_ptr<Conn>> conns_;         // every live connection
  std::map<NodeId, std::shared_ptr<Conn>> peers_;  // established only
  std::map<NodeId, Dial> dials_;
  std::set<NodeId> lost_peers_;
};

}  // namespace gendpr::net
