// In-process message-passing fabric for the GWAS federation.
//
// Substitutes for the paper's inter-biocenter network (all evaluation nodes
// ran on one host there as well). Each registered node owns a mailbox;
// `send` enqueues an envelope, `Mailbox::receive` blocks until one arrives.
// Message boundaries, per-sender FIFO ordering, and the exact on-the-wire
// bytes (always ciphertext above this layer) are preserved, and a traffic
// meter records per-link volumes for the §7.1 bandwidth accounting.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"

namespace gendpr::net {

/// Federation-unique node identifier. 0 is reserved as "unassigned".
using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = 0;

struct Envelope {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  common::Bytes payload;
};

/// Blocking MPSC queue of envelopes owned by one node.
class Mailbox {
 public:
  /// Enqueues the envelope. Returns false (message dropped) if the mailbox
  /// is already closed — callers metering delivered bytes must check.
  bool push(Envelope envelope);

  /// Blocks until a message arrives. Returns std::nullopt if the mailbox was
  /// closed and drained.
  std::optional<Envelope> receive();

  /// Bounded-wait variant: blocks at most `timeout` (<= 0 means forever).
  /// Messages already queued are drained even after close(); afterwards a
  /// closed mailbox yields Errc::state_violation and an expired wait yields
  /// Errc::timeout. A message that arrives in the same instant the deadline
  /// expires is delivered, never dropped.
  common::Result<Envelope> receive_for(std::chrono::milliseconds timeout);

  /// Non-blocking variant.
  std::optional<Envelope> try_receive();

  /// Wakes all waiters; subsequent receive() calls drain then end.
  void close();

  bool closed() const;
  std::size_t pending() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Envelope> queue_;
  bool closed_ = false;
};

/// Byte counters per directed link, plus totals. Thread-safe.
class TrafficMeter {
 public:
  void record(NodeId from, NodeId to, std::size_t bytes);

  std::uint64_t total_bytes() const;
  std::uint64_t total_messages() const;
  std::uint64_t bytes_sent_by(NodeId node) const;
  std::uint64_t bytes_received_by(NodeId node) const;

  /// One directed link's accumulated volume.
  struct Link {
    NodeId from = kNoNode;
    NodeId to = kNoNode;
    std::uint64_t bytes = 0;
    std::uint64_t messages = 0;
  };

  /// Point-in-time copy of every link, ordered by (from, to). This is how
  /// per-link accounting outlives the meter's owner: run reports snapshot
  /// the links before the transport is torn down.
  std::vector<Link> snapshot() const;

  void reset();

 private:
  struct LinkStats {
    std::uint64_t bytes = 0;
    std::uint64_t messages = 0;
  };
  mutable std::mutex mutex_;
  std::map<std::pair<NodeId, NodeId>, LinkStats> links_;
};

/// Abstract message transport between federation nodes. The protocol layer
/// (gendpr/node.hpp) binds to this interface; implementations are the
/// in-process Network below and the cross-machine TcpHub (net/tcp.hpp).
class Transport {
 public:
  virtual ~Transport() = default;

  /// Registers a node and returns its mailbox (owned by the transport).
  virtual std::shared_ptr<Mailbox> attach(NodeId node) = 0;

  /// Removes a node; its mailbox is closed.
  virtual void detach(NodeId node) = 0;

  /// Delivers `payload` to `to`. Fails with unknown_peer if `to` is not
  /// reachable.
  virtual common::Status send(NodeId from, NodeId to,
                              common::Bytes payload) = 0;

  /// Byte accounting, when the implementation provides it.
  virtual TrafficMeter* meter_or_null() noexcept { return nullptr; }

  /// Invoked when the transport learns a peer is gone (connection torn down,
  /// node detached). May fire from an internal transport thread; handlers
  /// must be cheap and thread-safe. nullptr clears the handler. Transports
  /// that cannot detect peer loss ignore it (callers still need deadlines).
  using PeerLostHandler = std::function<void(NodeId)>;
  virtual void set_peer_lost_handler(PeerLostHandler handler) {
    (void)handler;
  }
};

/// The in-process fabric: node registry + routing. Nodes register to obtain
/// a mailbox; any registered node may send to any other by id.
class Network : public Transport {
 public:
  std::shared_ptr<Mailbox> attach(NodeId node) override;

  void detach(NodeId node) override;

  common::Status send(NodeId from, NodeId to, common::Bytes payload) override;

  TrafficMeter* meter_or_null() noexcept override { return &meter_; }

  /// detach() reports the node as lost to the registered handler (the
  /// in-process analogue of a dropped connection).
  void set_peer_lost_handler(PeerLostHandler handler) override;

  /// Sends a copy of the payload to every attached node except `from`.
  void broadcast(NodeId from, const common::Bytes& payload);

  bool is_attached(NodeId node) const;
  std::size_t node_count() const;

  TrafficMeter& meter() noexcept { return meter_; }
  const TrafficMeter& meter() const noexcept { return meter_; }

 private:
  mutable std::mutex mutex_;
  std::map<NodeId, std::shared_ptr<Mailbox>> mailboxes_;
  TrafficMeter meter_;
  PeerLostHandler peer_lost_handler_;
};

}  // namespace gendpr::net
