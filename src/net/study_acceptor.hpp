// Long-lived acceptor multiplexing several studies over one port.
//
// A federation that runs many assessments concurrently should not need one
// listening port per study. StudyAcceptor owns the single shared listening
// socket: it accepts every inbound connection, reads just far enough to
// decode the hello frame (whose payload names the study — wire/frame.hpp),
// then hands the established fd plus any bytes read past the hello to the
// hub registered for that study via the hub loop's post() — so the handoff
// lands on the hub's own thread even when the study's sessions are sharded
// onto a different event loop. Connections whose hello names no registered
// study, is malformed, or does not arrive within the hello timeout are
// closed.
//
// Threading: accepting and hello parsing run on the acceptor's loop thread;
// add_study/remove_study may be called from any thread (the route table is
// the only shared state and is mutex-guarded). A registered hub and its
// loop must stay alive until remove_study returns.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "net/event_loop.hpp"
#include "net/hub.hpp"

namespace gendpr::net {

class StudyAcceptor {
 public:
  /// Binds 127.0.0.1:port (port 0 = ephemeral; see port()) on `loop`. The
  /// loop must outlive the acceptor.
  static common::Result<std::unique_ptr<StudyAcceptor>> create(
      EventLoop& loop, std::uint16_t port);

  ~StudyAcceptor();

  StudyAcceptor(const StudyAcceptor&) = delete;
  StudyAcceptor& operator=(const StudyAcceptor&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// Routes connections whose hello names `study_id` to `hub`, delivered by
  /// posting adopt_inbound onto `hub_loop`. One hub per study.
  void add_study(std::uint64_t study_id, EventLoop& hub_loop, Hub& hub);
  /// Stops routing `study_id`; connections already handed off are the
  /// hub's. Call before destroying the hub.
  void remove_study(std::uint64_t study_id);

  /// Connections accepted so far (acceptor loop thread only; test hook).
  std::uint64_t accepted() const noexcept { return accepted_; }

 private:
  struct Acceptor : EventLoop::IoHandler {
    explicit Acceptor(StudyAcceptor* owner) : self(owner) {}
    void on_ready(std::uint32_t events) override;
    StudyAcceptor* self;
  };

  /// An accepted connection whose hello has not fully arrived yet.
  struct Pending : EventLoop::IoHandler {
    Pending(StudyAcceptor* owner, int conn_fd) : self(owner), fd(conn_fd) {}
    void on_ready(std::uint32_t events) override;
    StudyAcceptor* self;
    int fd;
    common::Bytes buffer;  // raw bytes read so far (hello + leftover)
    std::optional<EventLoop::TimerId> timeout;
  };

  struct Route {
    EventLoop* loop = nullptr;
    Hub* hub = nullptr;
  };

  StudyAcceptor(EventLoop& loop, int listen_fd, std::uint16_t port);

  void on_acceptable();
  void on_pending_readable(const std::shared_ptr<Pending>& pending);
  /// Tries to parse the hello out of pending->buffer; routes or drops the
  /// connection once enough bytes arrived. Returns false while incomplete.
  bool try_dispatch(const std::shared_ptr<Pending>& pending);
  void drop_pending(const std::shared_ptr<Pending>& pending);
  /// Detaches the fd from the acceptor loop without closing it.
  void detach_pending(const std::shared_ptr<Pending>& pending);

  EventLoop* loop_;
  int listen_fd_;
  std::uint16_t port_;
  std::uint64_t accepted_ = 0;
  std::map<int, std::shared_ptr<Pending>> pending_;
  std::mutex routes_mutex_;  // guards routes_ only
  std::map<std::uint64_t, Route> routes_;
};

}  // namespace gendpr::net
