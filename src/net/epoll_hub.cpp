#include "net/epoll_hub.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "common/log.hpp"

namespace gendpr::net {

using common::Errc;
using common::make_error;
using common::Status;

namespace {

int make_nonblocking_socket() {
  return ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
}

void set_nodelay(int fd) {
  const int nodelay = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
}

/// Frames gathered per write syscall. Caps the iovec array on the stack;
/// deeper queues simply take another batch on the next EPOLLOUT.
constexpr int kWritevBatch = 64;

}  // namespace

common::Result<std::unique_ptr<EpollHub>> EpollHub::create(EventLoop& loop,
                                                           NodeId self,
                                                           std::uint16_t port) {
  const int fd = make_nonblocking_socket();
  if (fd < 0) {
    return make_error(Errc::io_error,
                      std::string("socket: ") + std::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return make_error(Errc::io_error,
                      std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(fd, 64) < 0) {
    ::close(fd);
    return make_error(Errc::io_error,
                      std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    return make_error(Errc::io_error,
                      std::string("getsockname: ") + std::strerror(errno));
  }
  auto hub = std::unique_ptr<EpollHub>(
      new EpollHub(loop, self, fd, ntohs(addr.sin_port)));
  if (Status s = loop.watch(fd, EPOLLIN,
                            std::make_shared<Acceptor>(hub.get()));
      !s.ok()) {
    return s.error();
  }
  return hub;
}

std::unique_ptr<EpollHub> EpollHub::create_adopt_only(EventLoop& loop,
                                                      NodeId self) {
  return std::unique_ptr<EpollHub>(new EpollHub(loop, self, -1, 0));
}

EpollHub::EpollHub(EventLoop& loop, NodeId self, int listen_fd,
                   std::uint16_t port)
    : Hub(self, port), loop_(&loop), listen_fd_(listen_fd) {}

EpollHub::~EpollHub() {
  for (auto& [peer, dial] : dials_) {
    if (dial.retry_timer.has_value()) loop_->cancel_timer(*dial.retry_timer);
  }
  for (auto& [fd, conn] : conns_) {
    loop_->unwatch(fd);
    ::close(fd);
    conn->fd = -1;
  }
  if (listen_fd_ >= 0) {
    loop_->unwatch(listen_fd_);
    ::close(listen_fd_);
  }
}

void EpollHub::Acceptor::on_ready(std::uint32_t events) {
  (void)events;
  hub->on_acceptable();
}

void EpollHub::on_acceptable() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or error; either way wait for epoll
    set_nodelay(fd);
    auto conn = std::make_shared<Conn>(this, fd);
    conn->awaiting_hello = true;
    conn->watched_events = EPOLLIN;
    if (!loop_->watch(fd, EPOLLIN, conn).ok()) {
      ::close(fd);
      continue;
    }
    conns_[fd] = conn;
  }
}

void EpollHub::adopt_inbound(int fd, NodeId peer, common::Bytes leftover) {
  set_nodelay(fd);
  auto conn = std::make_shared<Conn>(this, fd);
  conn->peer = peer;
  conn->watched_events = EPOLLIN;
  if (!loop_->watch(fd, EPOLLIN, conn).ok()) {
    ::close(fd);
    report_peer_lost(peer);
    return;
  }
  conns_[fd] = conn;
  register_established(peer, conn);
  if (!leftover.empty()) {
    conn->decoder.feed(common::BytesView(leftover.data(), leftover.size()));
    // Frames the acceptor read past the hello are delivered immediately so
    // ordering is preserved before any fresh socket reads.
    for (;;) {
      auto frame = conn->decoder.next();
      if (!frame.ok()) {
        drop_conn(conn);
        return;
      }
      if (!frame.value().has_value()) break;
      const wire::FrameDecoder::Frame f = *frame.value();
      meter_.record(f.from, self_, f.payload.size());
      if (frame_handler_) frame_handler_(f.from, f.payload);
      if (conn->fd < 0) return;
    }
  }
}

void EpollHub::Conn::on_ready(std::uint32_t events) {
  // The hub holds the only long-lived reference; re-acquire a shared_ptr so
  // drop paths inside can erase the map entry safely mid-dispatch.
  auto it = hub->conns_.find(fd);
  if (it == hub->conns_.end()) return;
  const std::shared_ptr<Conn> self_ref = it->second;
  if (connecting) {
    hub->on_dial_writable(self_ref);
    return;
  }
  hub->on_conn_ready(self_ref, events);
}

void EpollHub::on_conn_ready(const std::shared_ptr<Conn>& conn,
                             std::uint32_t events) {
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    drop_conn(conn);
    return;
  }
  if ((events & EPOLLIN) != 0) {
    read_frames(conn);
    if (conn->fd < 0) return;  // dropped while reading
  }
  if ((events & EPOLLOUT) != 0) flush_writes(conn);
}

void EpollHub::read_frames(const std::shared_ptr<Conn>& conn) {
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n == 0) {
      drop_conn(conn);
      return;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      drop_conn(conn);
      return;
    }
    conn->decoder.feed(common::BytesView(buf, static_cast<std::size_t>(n)));
    for (;;) {
      auto frame = conn->decoder.next();
      if (!frame.ok()) {
        common::log_warn("epoll", "malformed frame on hub ", self_);
        drop_conn(conn);
        return;
      }
      if (!frame.value().has_value()) break;
      const wire::FrameDecoder::Frame f = *frame.value();
      if (conn->awaiting_hello) {
        // First frame on an inbound connection must be the hello naming the
        // peer; anything else is a protocol violation on a raw socket. A
        // hub accepting directly serves exactly one study, so a hello for a
        // different study is a routing error.
        const auto study = f.hello_study();
        if (!study.has_value() || f.from == kNoNode ||
            *study != study_id_) {
          drop_conn(conn);
          return;
        }
        conn->awaiting_hello = false;
        conn->peer = f.from;
        register_established(f.from, conn);
        continue;
      }
      meter_.record(f.from, self_, f.payload.size());
      if (frame_handler_) frame_handler_(f.from, f.payload);
      if (conn->fd < 0) return;  // handler tore the hub's state down
    }
  }
}

void EpollHub::enqueue_frame(const std::shared_ptr<Conn>& conn,
                             wire::WireBuffer buf) {
  conn->queued_bytes += buf.frame().size();
  conn->write_queue.push_back(std::move(buf));
  wire_stats_.frames_sent += 1;
  note_enqueued(conn->peer, conn->queued_bytes, conn->paused);
}

void EpollHub::flush_writes(const std::shared_ptr<Conn>& conn) {
  while (!conn->write_queue.empty()) {
    // Gathered write: batch every queued frame (up to kWritevBatch) into one
    // iovec array so a burst of small frames costs one syscall, not one
    // each. sendmsg rather than writev for MSG_NOSIGNAL.
    iovec iov[kWritevBatch];
    int iovcnt = 0;
    for (const wire::WireBuffer& buf : conn->write_queue) {
      if (iovcnt == kWritevBatch) break;
      const common::BytesView frame = buf.frame();
      const std::size_t skip =
          iovcnt == 0 ? conn->write_offset : std::size_t{0};
      iov[iovcnt].iov_base =
          const_cast<std::uint8_t*>(frame.data() + skip);
      iov[iovcnt].iov_len = frame.size() - skip;
      ++iovcnt;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
    const ssize_t n = ::sendmsg(conn->fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      drop_conn(conn);
      return;
    }
    wire_stats_.writev_batches += 1;
    std::size_t written = static_cast<std::size_t>(n);
    conn->queued_bytes -= written;
    while (written > 0) {
      const std::size_t front_remaining =
          conn->write_queue.front().frame().size() - conn->write_offset;
      if (written >= front_remaining) {
        written -= front_remaining;
        conn->write_queue.pop_front();  // pooled storage returns here
        conn->write_offset = 0;
      } else {
        conn->write_offset += written;
        written = 0;
      }
    }
  }
  update_events(conn);
  // Resume last: the handler may synchronously queue more frames, which
  // must observe a consistent epoll mask first.
  note_drained(conn->peer, conn->queued_bytes, conn->paused);
}

void EpollHub::update_events(const std::shared_ptr<Conn>& conn) {
  const std::uint32_t wanted =
      EPOLLIN | (conn->write_queue.empty() ? 0u : std::uint32_t{EPOLLOUT});
  if (wanted == conn->watched_events) return;
  if (loop_->modify(conn->fd, wanted).ok()) conn->watched_events = wanted;
}

void EpollHub::drop_conn(const std::shared_ptr<Conn>& conn) {
  if (conn->fd < 0) return;
  loop_->unwatch(conn->fd);
  ::close(conn->fd);
  conns_.erase(conn->fd);
  conn->fd = -1;
  const NodeId peer = conn->peer;
  if (peer == kNoNode) return;
  release_pause_on_drop(peer, conn->paused);
  auto it = peers_.find(peer);
  if (it == peers_.end() || it->second != conn) return;
  peers_.erase(it);
  report_peer_lost(peer);
}

void EpollHub::report_peer_lost(NodeId peer) {
  lost_peers_.insert(peer);
  common::log_warn("epoll", "hub ", self_, " lost connection to peer ", peer);
  if (peer_lost_handler_) peer_lost_handler_(peer);
}

void EpollHub::register_established(NodeId peer,
                                    const std::shared_ptr<Conn>& conn) {
  lost_peers_.erase(peer);  // a reconnect clears the lost mark
  peers_[peer] = conn;
}

void EpollHub::connect_peer(NodeId peer, const std::string& host,
                            std::uint16_t port, DialOptions options) {
  if (options.max_attempts < 1) options.max_attempts = 1;
  Dial dial;
  dial.host = host;
  dial.port = port;
  dial.attempts_left = options.max_attempts;
  dial.backoff = options.initial_backoff;
  dials_[peer] = std::move(dial);
  attempt_dial(peer);
}

void EpollHub::attempt_dial(NodeId peer) {
  auto it = dials_.find(peer);
  if (it == dials_.end()) return;
  Dial& dial = it->second;
  dial.retry_timer.reset();
  dial.attempts_left -= 1;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(dial.port);
  if (::inet_pton(AF_INET, dial.host.c_str(), &addr.sin_addr) != 1) {
    dial.attempts_left = 0;  // a bad address never resolves itself
    dial_attempt_failed(peer);
    return;
  }
  const int fd = make_nonblocking_socket();
  if (fd < 0) {
    dial_attempt_failed(peer);
    return;
  }
  set_nodelay(fd);
  auto conn = std::make_shared<Conn>(this, fd);
  conn->peer = peer;
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr));
  if (rc == 0) {
    conn->watched_events = EPOLLIN;
    if (!loop_->watch(fd, EPOLLIN, conn).ok()) {
      ::close(fd);
      dial_attempt_failed(peer);
      return;
    }
    conns_[fd] = conn;
    finish_dial(peer, conn);
    return;
  }
  if (errno != EINPROGRESS) {
    ::close(fd);
    dial_attempt_failed(peer);
    return;
  }
  // In-flight: EPOLLOUT fires when the connect resolves either way; the
  // SO_ERROR check in on_dial_writable tells which.
  conn->connecting = true;
  conn->watched_events = EPOLLOUT;
  if (!loop_->watch(fd, EPOLLOUT, conn).ok()) {
    ::close(fd);
    dial_attempt_failed(peer);
    return;
  }
  conns_[fd] = conn;
}

void EpollHub::on_dial_writable(const std::shared_ptr<Conn>& conn) {
  const NodeId peer = conn->peer;
  int so_error = 0;
  socklen_t len = sizeof(so_error);
  ::getsockopt(conn->fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
  if (so_error != 0) {
    loop_->unwatch(conn->fd);
    ::close(conn->fd);
    conns_.erase(conn->fd);
    conn->fd = -1;
    dial_attempt_failed(peer);
    return;
  }
  conn->connecting = false;
  conn->watched_events = EPOLLIN;
  (void)loop_->modify(conn->fd, EPOLLIN);
  finish_dial(peer, conn);
}

void EpollHub::dial_attempt_failed(NodeId peer) {
  auto it = dials_.find(peer);
  if (it == dials_.end()) return;
  Dial& dial = it->second;
  if (dial.attempts_left <= 0) {
    // Frames queued against the dial die with it; the counter makes the
    // loss visible in run reports instead of silent.
    wire_stats_.dial_dropped_frames += dial.pending.size();
    dials_.erase(it);
    report_peer_lost(peer);
    return;
  }
  // Jitter desynchronizes the retry schedules of peers that all lost the
  // same endpoint at the same moment (a leader restart), so the reconnect
  // storm does not arrive as one synchronized wave per backoff step.
  const std::chrono::milliseconds backoff = jittered(dial.backoff);
  dial.backoff *= 2;
  dial.retry_timer = loop_->add_timer_after(
      backoff, [this, peer] { attempt_dial(peer); });
}

void EpollHub::finish_dial(NodeId peer, const std::shared_ptr<Conn>& conn) {
  auto it = dials_.find(peer);
  // Hello first, then everything queued while the dial was in flight,
  // preserving send order.
  enqueue_frame(conn,
                wire::WireBuffer::from_frame(
                    pool(), wire::encode_hello(self_, study_id_)));
  if (it != dials_.end()) {
    for (wire::WireBuffer& buf : it->second.pending) {
      meter_.record(self_, peer, buf.payload_size());
      enqueue_frame(conn, std::move(buf));
    }
    dials_.erase(it);
  }
  register_established(peer, conn);
  flush_writes(conn);
}

Status EpollHub::send_frame(NodeId to, wire::WireBuffer buf) {
  buf.finish_frame(self_);
  if (auto dial = dials_.find(to); dial != dials_.end()) {
    // Still pooled: the buffer waits in its wire shape until the dial
    // resolves, with no eager re-encode and no extra copy.
    dial->second.pending.push_back(std::move(buf));
    return Status::success();
  }
  auto it = peers_.find(to);
  if (it == peers_.end()) {
    const bool lost = lost_peers_.count(to) > 0;
    return make_error(Errc::unknown_peer,
                      (lost ? "connection to node " : "no connection to node ") +
                          std::to_string(to) + (lost ? " was lost" : ""));
  }
  const std::shared_ptr<Conn> conn = it->second;
  meter_.record(self_, to, buf.payload_size());
  enqueue_frame(conn, std::move(buf));
  // Opportunistic flush: most frames fit the socket buffer, so this usually
  // drains the queue without an epoll round trip.
  flush_writes(conn);
  if (conn->fd < 0) {
    return make_error(Errc::unknown_peer,
                      "connection to node " + std::to_string(to) +
                          " was lost");
  }
  return Status::success();
}

bool EpollHub::is_connected(NodeId peer) const {
  return peers_.count(peer) > 0;
}

}  // namespace gendpr::net
