// Single-threaded epoll event loop.
//
// One EventLoop drives any number of fds and timers on the caller's thread:
// handlers registered with watch() run when their fd is ready, timers run
// when their due time passes, and run_until() dispatches both until a
// predicate says the work is done. Nothing here locks — every method must be
// called from the loop thread — which is exactly the execution model the
// sans-IO sessions want: one thread, many sessions, no data races by
// construction.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "common/error.hpp"

namespace gendpr::net {

class EventLoop {
 public:
  using Clock = std::chrono::steady_clock;
  using TimePoint = Clock::time_point;
  using TimerId = std::uint64_t;

  /// Readiness callback for a watched fd. `events` is the epoll event mask
  /// (EPOLLIN / EPOLLOUT / EPOLLERR / EPOLLHUP bits).
  class IoHandler {
   public:
    virtual ~IoHandler() = default;
    virtual void on_ready(std::uint32_t events) = 0;
  };

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  bool valid() const noexcept { return epoll_fd_ >= 0; }

  /// Registers `fd` for `events`; the handler is kept alive by the loop
  /// while watched (and through its own dispatch even if it unwatches
  /// itself from inside on_ready).
  common::Status watch(int fd, std::uint32_t events,
                       std::shared_ptr<IoHandler> handler);
  /// Changes the event mask of a watched fd.
  common::Status modify(int fd, std::uint32_t events);
  /// Stops watching `fd`. Safe to call from inside the fd's own on_ready.
  void unwatch(int fd);

  /// Runs `fn` once when `when` passes. Timers fire in due order.
  TimerId add_timer(TimePoint when, std::function<void()> fn);
  TimerId add_timer_after(std::chrono::milliseconds delay,
                          std::function<void()> fn) {
    return add_timer(Clock::now() + delay, std::move(fn));
  }
  void cancel_timer(TimerId id);

  /// Dispatches fd and timer events until `done()` returns true (checked
  /// after every dispatch batch) or nothing is left that could ever wake
  /// the loop (no watched fds and no timers).
  void run_until(const std::function<bool()>& done);

  /// Runs at most one epoll_wait batch with the given cap on blocking time.
  void poll_once(std::chrono::milliseconds max_wait);

 private:
  int wait_timeout_ms(std::chrono::milliseconds max_wait) const;
  void run_due_timers();

  int epoll_fd_ = -1;
  std::map<int, std::shared_ptr<IoHandler>> handlers_;
  struct Timer {
    TimerId id;
    std::function<void()> fn;
  };
  std::multimap<TimePoint, Timer> timers_;
  TimerId next_timer_id_ = 1;
};

}  // namespace gendpr::net
