// Single-threaded epoll event loop.
//
// One EventLoop drives any number of fds and timers on the caller's thread:
// handlers registered with watch() run when their fd is ready, timers run
// when their due time passes, and run_until() dispatches both until a
// predicate says the work is done. Watch/modify/timer calls must come from
// the loop thread — which is exactly the execution model the sans-IO
// sessions want: one thread, many sessions, no data races by construction.
//
// The one cross-thread entry point is post(): any thread may enqueue a task,
// an eventfd wakes the loop, and the task runs on the loop thread. This is
// how a sharded federation (one loop per core) injects work into a sibling
// loop — connection handoffs, straggler teardown, shutdown wakeups — without
// ever sharing loop state across threads.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>

#include "common/error.hpp"

namespace gendpr::net {

class EventLoop {
 public:
  using Clock = std::chrono::steady_clock;
  using TimePoint = Clock::time_point;
  using TimerId = std::uint64_t;

  /// Readiness callback for a watched fd. `events` is the epoll event mask
  /// (EPOLLIN / EPOLLOUT / EPOLLERR / EPOLLHUP bits).
  class IoHandler {
   public:
    virtual ~IoHandler() = default;
    virtual void on_ready(std::uint32_t events) = 0;
  };

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  bool valid() const noexcept { return epoll_fd_ >= 0 && wake_fd_ >= 0; }

  /// Registers `fd` for `events`; the handler is kept alive by the loop
  /// while watched (and through its own dispatch even if it unwatches
  /// itself from inside on_ready).
  common::Status watch(int fd, std::uint32_t events,
                       std::shared_ptr<IoHandler> handler);
  /// Changes the event mask of a watched fd.
  common::Status modify(int fd, std::uint32_t events);
  /// Stops watching `fd`. Safe to call from inside the fd's own on_ready.
  void unwatch(int fd);

  /// Runs `fn` once when `when` passes. Timers fire in due order.
  TimerId add_timer(TimePoint when, std::function<void()> fn);
  TimerId add_timer_after(std::chrono::milliseconds delay,
                          std::function<void()> fn) {
    return add_timer(Clock::now() + delay, std::move(fn));
  }
  void cancel_timer(TimerId id);

  /// Enqueues `fn` to run on the loop thread and wakes the loop. The ONLY
  /// entry point that is safe from any thread; everything a foreign thread
  /// wants done to loop-owned state goes through here. Posted tasks never
  /// count as pending work for run_until's nothing-can-wake-us exit (a task
  /// already enqueued still runs first).
  void post(std::function<void()> fn);

  /// Dispatches fd and timer events until `done()` returns true (checked
  /// after every dispatch batch) or nothing is left that could ever wake
  /// the loop (no watched fds and no timers).
  void run_until(const std::function<bool()>& done);

  /// Runs at most one epoll_wait batch with the given cap on blocking time.
  void poll_once(std::chrono::milliseconds max_wait);

 private:
  int wait_timeout_ms(std::chrono::milliseconds max_wait) const;
  void run_due_timers();
  void run_posted_tasks();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd; watched directly, never in handlers_
  std::map<int, std::shared_ptr<IoHandler>> handlers_;
  struct Timer {
    TimerId id;
    std::function<void()> fn;
  };
  std::multimap<TimePoint, Timer> timers_;
  TimerId next_timer_id_ = 1;
  std::mutex posted_mutex_;                       // guards posted_ only
  std::deque<std::function<void()>> posted_;      // cross-thread task queue
};

}  // namespace gendpr::net
