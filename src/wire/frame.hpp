// Transport frame codec shared by every socket front-end.
//
// A frame is [u32 len][u32 from][payload] (little-endian), where len covers
// the from field plus the payload. The first frame on every connection is
// the "hello" announcing the sender's node id: its payload is either empty
// (study 0, the classic single-study wire format) or exactly 8 bytes of
// little-endian study id — how a long-lived acceptor multiplexes several
// concurrent studies over one port. TcpHub's blocking reader threads and
// the epoll/io_uring hubs' incremental reads all parse this layout through
// FrameDecoder, so every transport stays wire-compatible by construction.
//
// The decoder is zero-copy on the common path: feed() borrows the caller's
// receive buffer, and frames that land wholly inside one chunk come back as
// BytesView spans into it. Only frames that straddle a chunk boundary are
// stitched together in an internal stash. The borrow discipline is strict:
// after feed(), drain next() until it yields nullopt (which guarantees no
// unconsumed view into the chunk remains) before reusing the receive
// buffer, and consume each Frame::payload before the next next()/feed().
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "common/error.hpp"

namespace gendpr::wire {

/// Frame header size: [u32 len][u32 from].
inline constexpr std::size_t kFrameHeaderBytes = 8;

/// Upper bound on a single frame's payload. Anything larger is treated as a
/// corrupt stream, not a request for 4 GiB of buffer.
inline constexpr std::uint32_t kMaxFramePayload = 256u * 1024 * 1024;

/// Header for a frame carrying `payload_size` bytes from `from`.
std::array<std::uint8_t, kFrameHeaderBytes> encode_frame_header(
    std::uint32_t from, std::size_t payload_size);

/// Whole frame (header + payload) as one contiguous buffer — the shape a
/// queued nonblocking write wants.
common::Bytes encode_frame(std::uint32_t from, common::BytesView payload);

/// Payload size of a hello that names a study (8-byte little-endian id).
inline constexpr std::size_t kHelloStudyBytes = 8;

/// Connection-opening hello from `from`. Study 0 encodes as the classic
/// empty-payload hello, so single-study deployments stay byte-identical on
/// the wire.
common::Bytes encode_hello(std::uint32_t from, std::uint64_t study_id);

/// Incremental frame parser over an arbitrary chunking of the byte stream.
/// feed() borrows raw bytes; next() yields completed frames in order as
/// views into either the fed chunk or the decoder's internal stash.
class FrameDecoder {
 public:
  struct Frame {
    std::uint32_t from = 0;
    /// View into the fed chunk (fast path) or the decoder's stash (frame
    /// straddled a chunk boundary). Valid until the next call to next() or
    /// feed() — decrypt or copy before then.
    common::BytesView payload;
    /// True for the connection-opening hello (empty payload or an 8-byte
    /// study id). Only meaningful for the FIRST frame of a connection;
    /// established-connection frames are never re-interpreted as hellos.
    bool is_hello() const noexcept {
      return payload.empty() || payload.size() == kHelloStudyBytes;
    }
    /// Study id carried by a hello: 0 for the classic empty hello, the
    /// decoded id for an 8-byte hello, nullopt when the frame is no hello.
    std::optional<std::uint64_t> hello_study() const noexcept;
  };

  /// Borrows `data` until next() returns nullopt. Any bytes of a previously
  /// fed chunk that next() has not consumed are copied into the stash first,
  /// so feeding early never loses stream bytes.
  void feed(common::BytesView data);

  /// Next completed frame: a Frame when one is fully buffered, nullopt when
  /// more bytes are needed, or Errc::bad_message on a malformed header
  /// (len < 4 or payload over kMaxFramePayload) — the stream is then
  /// unrecoverable and the connection must be dropped. A nullopt return
  /// guarantees the fed chunk is fully consumed (no view into it survives),
  /// so the caller may reuse its receive buffer.
  common::Result<std::optional<Frame>> next();

  /// Bytes buffered but not yet consumed by next().
  std::size_t buffered() const noexcept { return stash_.size() + chunk_.size(); }

 private:
  /// Unconsumed remainder of the chunk passed to the last feed().
  common::BytesView chunk_;
  /// Partial frame carried across chunk boundaries (header + payload
  /// prefix), topped up from chunk_ by next().
  common::Bytes stash_;
  /// Backing storage for the most recently returned straddling frame; keeps
  /// its payload view alive until the next next()/feed().
  common::Bytes stash_frame_;
};

}  // namespace gendpr::wire
