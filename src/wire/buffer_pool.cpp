#include "wire/buffer_pool.hpp"

#include <cstdlib>
#include <cstring>
#include <utility>

namespace gendpr::wire {

namespace {

constexpr std::size_t kDefaultRetained = 64;

std::size_t retained_from_env() {
  const char* env = std::getenv("GENDPR_POOL_BUFFERS");
  if (env == nullptr || *env == '\0') {
    return kDefaultRetained;
  }
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(env, &end, 10);
  if (end == env || (end != nullptr && *end != '\0')) {
    return kDefaultRetained;
  }
  return static_cast<std::size_t>(parsed);
}

void store_u32(std::uint8_t* out, std::uint32_t value) {
  out[0] = static_cast<std::uint8_t>(value & 0xff);
  out[1] = static_cast<std::uint8_t>((value >> 8) & 0xff);
  out[2] = static_cast<std::uint8_t>((value >> 16) & 0xff);
  out[3] = static_cast<std::uint8_t>((value >> 24) & 0xff);
}

}  // namespace

BufferPool::BufferPool(std::size_t max_retained)
    : max_retained_(max_retained != 0 ? max_retained : retained_from_env()) {}

common::Bytes BufferPool::acquire(std::size_t min_capacity) {
  common::Bytes storage;
  bool hit = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!free_.empty()) {
      storage = std::move(free_.back());
      free_.pop_back();
      hit = true;
      ++stats_.hits;
    } else {
      ++stats_.misses;
    }
    ++stats_.outstanding;
    if (stats_.outstanding > stats_.peak_outstanding) {
      stats_.peak_outstanding = stats_.outstanding;
    }
  }
  storage.clear();
  if (!hit || storage.capacity() < min_capacity) {
    storage.reserve(min_capacity);
  }
  return storage;
}

void BufferPool::release(common::Bytes storage) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stats_.outstanding > 0) {
    --stats_.outstanding;
  }
  if (free_.size() < max_retained_) {
    storage.clear();
    free_.push_back(std::move(storage));
  }
}

void BufferPool::forfeit() noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stats_.outstanding > 0) {
    --stats_.outstanding;
  }
}

void BufferPool::note_copy() noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.copies;
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

BufferPool& default_pool() {
  static BufferPool pool;
  return pool;
}

WireBuffer::~WireBuffer() { reset(); }

WireBuffer::WireBuffer(WireBuffer&& other) noexcept
    : pool_(other.pool_),
      storage_(std::move(other.storage_)),
      finished_(other.finished_) {
  other.pool_ = nullptr;
  other.storage_.clear();
  other.finished_ = false;
}

WireBuffer& WireBuffer::operator=(WireBuffer&& other) noexcept {
  if (this != &other) {
    reset();
    pool_ = other.pool_;
    storage_ = std::move(other.storage_);
    finished_ = other.finished_;
    other.pool_ = nullptr;
    other.storage_.clear();
    other.finished_ = false;
  }
  return *this;
}

void WireBuffer::reset() noexcept {
  if (pool_ != nullptr) {
    pool_->release(std::move(storage_));
    pool_ = nullptr;
  }
  storage_.clear();
  finished_ = false;
}

WireBuffer WireBuffer::from_payload(BufferPool& pool,
                                    common::BytesView payload) {
  common::Bytes storage = pool.acquire(kHeaderBytes + payload.size());
  storage.resize(kHeaderBytes);
  storage.insert(storage.end(), payload.begin(), payload.end());
  if (!payload.empty()) {
    pool.note_copy();
  }
  return WireBuffer(&pool, std::move(storage), false);
}

WireBuffer WireBuffer::from_frame(BufferPool& pool, common::Bytes frame) {
  // The frame is already fully encoded; adopt its bytes so finish_frame()
  // does not rewrite the header. The storage still cycles through `pool`.
  return WireBuffer(&pool, std::move(frame), true);
}

WireBuffer WireBuffer::for_record(BufferPool& pool,
                                  std::size_t plaintext_capacity) {
  // [0..8) frame header | [8..16) seq | plaintext → ciphertext | 16 B tag.
  common::Bytes storage =
      pool.acquire(kHeaderBytes + kSeqBytes + plaintext_capacity + 16);
  storage.resize(kHeaderBytes + kSeqBytes);
  return WireBuffer(&pool, std::move(storage), false);
}

void WireBuffer::finish_frame(std::uint32_t from) {
  if (finished_) {
    return;
  }
  const std::size_t payload = payload_size();
  store_u32(storage_.data(), static_cast<std::uint32_t>(payload + 4));
  store_u32(storage_.data() + 4, from);
  finished_ = true;
}

common::Bytes WireBuffer::take_payload() && {
  common::Bytes out = std::move(storage_);
  out.erase(out.begin(),
            out.begin() + static_cast<std::ptrdiff_t>(kHeaderBytes));
  if (pool_ != nullptr) {
    if (!out.empty()) {
      pool_->note_copy();
    }
    pool_->forfeit();
    pool_ = nullptr;
  }
  finished_ = false;
  return out;
}

common::Bytes WireBuffer::release_storage() && {
  // The pool pointer stays: adopt_storage() hands the bytes back before this
  // WireBuffer is destroyed, so the storage still returns to the pool.
  return std::move(storage_);
}

void WireBuffer::adopt_storage(common::Bytes storage) noexcept {
  storage_ = std::move(storage);
}

}  // namespace gendpr::wire
