#include "wire/serialize.hpp"

#include <cstring>
#include <limits>

namespace gendpr::wire {

using common::Errc;
using common::Error;
using common::Result;

void Writer::u8(std::uint8_t v) { buffer_.push_back(v); }

void Writer::u16(std::uint16_t v) {
  buffer_.push_back(static_cast<std::uint8_t>(v));
  buffer_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::varint(std::uint64_t v) {
  while (v >= 0x80) {
    buffer_.push_back(static_cast<std::uint8_t>(v | 0x80));
    v >>= 7;
  }
  buffer_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Writer::bytes(common::BytesView data) {
  varint(data.size());
  raw(data);
}

void Writer::string(const std::string& s) {
  varint(s.size());
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void Writer::vector_u32(const std::vector<std::uint32_t>& v) {
  varint(v.size());
  for (std::uint32_t x : v) u32(x);
}

void Writer::vector_u64(const std::vector<std::uint64_t>& v) {
  varint(v.size());
  for (std::uint64_t x : v) u64(x);
}

void Writer::vector_f64(const std::vector<double>& v) {
  varint(v.size());
  for (double x : v) f64(x);
}

void Writer::raw(common::BytesView data) {
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

Error Reader::truncated(const char* what) const {
  return common::make_error(Errc::bad_message,
                            std::string("truncated while reading ") + what);
}

Result<std::uint8_t> Reader::u8() {
  if (remaining() < 1) return truncated("u8");
  return data_[pos_++];
}

Result<std::uint16_t> Reader::u16() {
  if (remaining() < 2) return truncated("u16");
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v = static_cast<std::uint16_t>(v | (std::uint16_t{data_[pos_ + i]} << (8 * i)));
  }
  pos_ += 2;
  return v;
}

Result<std::uint32_t> Reader::u32() {
  if (remaining() < 4) return truncated("u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{data_[pos_ + i]} << (8 * i);
  pos_ += 4;
  return v;
}

Result<std::uint64_t> Reader::u64() {
  if (remaining() < 8) return truncated("u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{data_[pos_ + i]} << (8 * i);
  pos_ += 8;
  return v;
}

Result<std::uint64_t> Reader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  std::size_t cursor = pos_;
  while (cursor < data_.size()) {
    const std::uint8_t byte = data_[cursor++];
    if (shift >= 64 || (shift == 63 && (byte & 0x7f) > 1)) {
      return common::make_error(Errc::bad_message, "varint overflow");
    }
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      pos_ = cursor;
      return v;
    }
    shift += 7;
  }
  return truncated("varint");
}

Result<double> Reader::f64() {
  auto bits = u64();
  if (!bits.ok()) return bits.error();
  double v;
  std::memcpy(&v, &bits.value(), sizeof(v));
  return v;
}

Result<common::Bytes> Reader::bytes() {
  const std::size_t saved = pos_;
  auto len = varint();
  if (!len.ok()) return len.error();
  if (len.value() > remaining()) {
    pos_ = saved;
    return truncated("bytes body");
  }
  common::Bytes out(data_.begin() + pos_,
                    data_.begin() + pos_ + len.value());
  pos_ += len.value();
  return out;
}

Result<std::string> Reader::string() {
  auto raw_bytes = bytes();
  if (!raw_bytes.ok()) return raw_bytes.error();
  return std::string(raw_bytes.value().begin(), raw_bytes.value().end());
}

Result<std::vector<std::uint32_t>> Reader::vector_u32() {
  const std::size_t saved = pos_;
  auto len = varint();
  if (!len.ok()) return len.error();
  if (len.value() > remaining() / 4) {
    pos_ = saved;
    return truncated("vector_u32 body");
  }
  std::vector<std::uint32_t> out;
  out.reserve(len.value());
  for (std::uint64_t i = 0; i < len.value(); ++i) {
    out.push_back(u32().value());  // length pre-validated above
  }
  return out;
}

Result<std::vector<std::uint64_t>> Reader::vector_u64() {
  const std::size_t saved = pos_;
  auto len = varint();
  if (!len.ok()) return len.error();
  if (len.value() > remaining() / 8) {
    pos_ = saved;
    return truncated("vector_u64 body");
  }
  std::vector<std::uint64_t> out;
  out.reserve(len.value());
  for (std::uint64_t i = 0; i < len.value(); ++i) out.push_back(u64().value());
  return out;
}

Result<std::vector<double>> Reader::vector_f64() {
  const std::size_t saved = pos_;
  auto len = varint();
  if (!len.ok()) return len.error();
  if (len.value() > remaining() / 8) {
    pos_ = saved;
    return truncated("vector_f64 body");
  }
  std::vector<double> out;
  out.reserve(len.value());
  for (std::uint64_t i = 0; i < len.value(); ++i) out.push_back(f64().value());
  return out;
}

Result<common::Bytes> Reader::raw(std::size_t n) {
  if (remaining() < n) return truncated("raw");
  common::Bytes out(data_.begin() + pos_, data_.begin() + pos_ + n);
  pos_ += n;
  return out;
}

}  // namespace gendpr::wire
