// Pooled wire buffers: the allocation- and copy-free frame path.
//
// A WireBuffer is one outgoing frame laid out in its final wire shape from
// the start: 8 bytes of frame-header headroom, then the payload. Sealed
// records additionally reserve the 8-byte AEAD sequence header inside the
// payload, so a protocol message is serialized exactly once — directly into
// the position it will occupy on the wire — sealed in place, and handed to
// the hub without any further copy. Storage comes from a BufferPool: a
// thread-safe freelist of byte vectors that keep their capacity across
// frames, so the steady-state send path performs zero heap allocations.
//
// Ownership walks a cycle: pool → session (serialize + seal) → hub (queued
// for the kernel) → pool (returned by ~WireBuffer once written). The pool
// never hands the same storage to two owners; `outstanding` tracks buffers
// currently out of the pool and `copies` counts every payload byte-copy the
// compatibility shims (`from_payload`, `take_payload`) still perform — the
// quantity `wire.copies_per_frame` reports.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>

#include "common/bytes.hpp"

namespace gendpr::wire {

/// Thread-safe freelist of frame storage buffers. The retained-buffer cap
/// defaults to `GENDPR_POOL_BUFFERS` (64 when unset); buffers released past
/// the cap are simply freed.
class BufferPool {
 public:
  struct Stats {
    std::uint64_t hits = 0;         // acquisitions served from the freelist
    std::uint64_t misses = 0;       // acquisitions that had to allocate
    std::uint64_t outstanding = 0;  // buffers currently out of the pool
    std::uint64_t peak_outstanding = 0;
    std::uint64_t copies = 0;  // payload copies through the compat shims
  };

  /// `max_retained` caps the freelist; 0 means "use GENDPR_POOL_BUFFERS".
  explicit BufferPool(std::size_t max_retained = 0);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// A cleared buffer with capacity >= `min_capacity`. Freelist buffers keep
  /// their grown capacity, so a warmed pool reserves nothing on reuse.
  common::Bytes acquire(std::size_t min_capacity);

  /// Returns storage to the freelist (or frees it past the cap).
  void release(common::Bytes storage);

  /// A buffer left the pool permanently (its bytes were moved out).
  void forfeit() noexcept;

  /// Accounting hook for the compatibility copies (`from_payload`,
  /// `take_payload`).
  void note_copy() noexcept;

  Stats stats() const;
  std::size_t max_retained() const noexcept { return max_retained_; }

 private:
  mutable std::mutex mutex_;
  std::deque<common::Bytes> free_;
  std::size_t max_retained_;
  Stats stats_;
};

/// Process-wide fallback pool for paths that were not wired to a per-run
/// pool (tests, the step() driver, standalone sessions).
BufferPool& default_pool();

/// One outgoing frame in final wire layout. Move-only; returns its storage
/// to the owning pool on destruction.
///
///   [0..8)   frame header ([u32 len][u32 from]), written by finish_frame()
///   [8..)    frame payload
///
/// For sealed records the payload is itself [u64 seq][ciphertext][tag]; the
/// seq slot is reserved by `for_record` and filled by
/// `SecureChannel::seal_in_place`.
class WireBuffer {
 public:
  /// Frame-header headroom at the front of the storage.
  static constexpr std::size_t kHeaderBytes = 8;
  /// Additional headroom a sealed record reserves for the AEAD seq field.
  static constexpr std::size_t kSeqBytes = 8;

  WireBuffer() = default;
  ~WireBuffer();

  WireBuffer(WireBuffer&& other) noexcept;
  WireBuffer& operator=(WireBuffer&& other) noexcept;
  WireBuffer(const WireBuffer&) = delete;
  WireBuffer& operator=(const WireBuffer&) = delete;

  /// Compatibility shim: pooled buffer whose payload is a copy of `payload`
  /// (counted in BufferPool::Stats::copies).
  static WireBuffer from_payload(BufferPool& pool, common::BytesView payload);

  /// Adopts an already-encoded whole frame (header included), e.g. a hello
  /// from encode_hello(). finish_frame() becomes a no-op; the storage still
  /// returns to `pool` on destruction.
  static WireBuffer from_frame(BufferPool& pool, common::Bytes frame);

  /// An empty record buffer: payload starts as the 8-byte seq placeholder,
  /// with capacity reserved for `plaintext_capacity` plaintext bytes plus
  /// the 16-byte GCM tag. Serialize the plaintext with writer() and seal
  /// with SecureChannel::seal_in_place.
  static WireBuffer for_record(BufferPool& pool,
                               std::size_t plaintext_capacity);

  /// Fills the frame header for sender `from` over the current payload.
  void finish_frame(std::uint32_t from);

  /// Whole wire frame (header + payload); valid only after finish_frame().
  common::BytesView frame() const noexcept {
    return common::BytesView(storage_.data(), storage_.size());
  }

  common::BytesView payload() const noexcept {
    return common::BytesView(storage_.data() + kHeaderBytes, payload_size());
  }
  std::size_t payload_size() const noexcept {
    return storage_.size() - kHeaderBytes;
  }
  bool empty() const noexcept { return storage_.size() <= kHeaderBytes; }
  std::size_t size() const noexcept { return payload_size(); }

  /// Compatibility shim for owning consumers (threaded transport, tests):
  /// strips the header headroom and yields the payload as owning Bytes.
  /// Costs one memmove, counted in BufferPool::Stats::copies.
  common::Bytes take_payload() &&;

  /// Storage handoff for in-place serialization: release, append through a
  /// wire::Writer, adopt back. The storage keeps its header/seq headroom.
  common::Bytes release_storage() &&;
  void adopt_storage(common::Bytes storage) noexcept;

  /// Direct mutable access for in-place sealing.
  std::uint8_t* data() noexcept { return storage_.data(); }
  common::Bytes& storage() noexcept { return storage_; }

 private:
  WireBuffer(BufferPool* pool, common::Bytes storage, bool finished)
      : pool_(pool), storage_(std::move(storage)), finished_(finished) {}

  void reset() noexcept;

  BufferPool* pool_ = nullptr;
  common::Bytes storage_;
  bool finished_ = false;
};

}  // namespace gendpr::wire
