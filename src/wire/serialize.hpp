// Binary wire format: explicit little-endian fixed-width integers, varints,
// length-prefixed strings/blobs, and homogeneous vectors.
//
// Every protocol message in gendpr/messages.hpp serializes through Writer and
// parses through Reader. Reader never trusts lengths: all reads are
// bounds-checked and return Errc::bad_message on truncation, which the
// failure-injection tests exercise with corrupted and truncated frames.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"

namespace gendpr::wire {

/// Appends typed values to an internal buffer.
class Writer {
 public:
  Writer() = default;
  /// Adopts existing storage and appends at its end — the in-place
  /// serialization hook for pooled WireBuffers, which hand over storage that
  /// already holds frame/record headroom.
  explicit Writer(common::Bytes storage) noexcept
      : buffer_(std::move(storage)) {}

  /// Pre-sizes the buffer for `additional` more bytes; pairs with the
  /// messages' encoded_size() so serialization allocates at most once.
  void reserve(std::size_t additional) {
    buffer_.reserve(buffer_.size() + additional);
  }

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// LEB128-style unsigned varint (1-10 bytes).
  void varint(std::uint64_t v);
  /// IEEE-754 binary64, little-endian byte order.
  void f64(double v);
  /// varint length prefix + raw bytes.
  void bytes(common::BytesView data);
  void string(const std::string& s);
  void vector_u32(const std::vector<std::uint32_t>& v);
  void vector_u64(const std::vector<std::uint64_t>& v);
  void vector_f64(const std::vector<double>& v);
  /// Raw bytes with no length prefix (caller knows the framing).
  void raw(common::BytesView data);

  const common::Bytes& buffer() const noexcept { return buffer_; }
  common::Bytes take() && { return std::move(buffer_); }
  std::size_t size() const noexcept { return buffer_.size(); }

 private:
  common::Bytes buffer_;
};

/// Bounds-checked sequential parser over a byte view. All accessors return
/// Result and leave the cursor unchanged on failure.
class Reader {
 public:
  explicit Reader(common::BytesView data) noexcept : data_(data) {}

  common::Result<std::uint8_t> u8();
  common::Result<std::uint16_t> u16();
  common::Result<std::uint32_t> u32();
  common::Result<std::uint64_t> u64();
  common::Result<std::uint64_t> varint();
  common::Result<double> f64();
  common::Result<common::Bytes> bytes();
  common::Result<std::string> string();
  common::Result<std::vector<std::uint32_t>> vector_u32();
  common::Result<std::vector<std::uint64_t>> vector_u64();
  common::Result<std::vector<double>> vector_f64();
  /// Reads exactly n raw bytes.
  common::Result<common::Bytes> raw(std::size_t n);

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool exhausted() const noexcept { return remaining() == 0; }

 private:
  common::Error truncated(const char* what) const;

  common::BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace gendpr::wire
