#include "wire/frame.hpp"

#include <cstring>

namespace gendpr::wire {

namespace {

void store_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

}  // namespace

std::array<std::uint8_t, kFrameHeaderBytes> encode_frame_header(
    std::uint32_t from, std::size_t payload_size) {
  std::array<std::uint8_t, kFrameHeaderBytes> header{};
  store_u32(header.data(), static_cast<std::uint32_t>(payload_size + 4));
  store_u32(header.data() + 4, from);
  return header;
}

common::Bytes encode_frame(std::uint32_t from, common::BytesView payload) {
  common::Bytes frame(kFrameHeaderBytes + payload.size());
  const auto header = encode_frame_header(from, payload.size());
  std::memcpy(frame.data(), header.data(), kFrameHeaderBytes);
  if (!payload.empty()) {
    std::memcpy(frame.data() + kFrameHeaderBytes, payload.data(),
                payload.size());
  }
  return frame;
}

common::Bytes encode_hello(std::uint32_t from, std::uint64_t study_id) {
  if (study_id == 0) return encode_frame(from, {});
  std::array<std::uint8_t, kHelloStudyBytes> body{};
  for (std::size_t i = 0; i < kHelloStudyBytes; ++i) {
    body[i] = static_cast<std::uint8_t>(study_id >> (8 * i));
  }
  return encode_frame(from, common::BytesView(body.data(), body.size()));
}

std::optional<std::uint64_t> FrameDecoder::Frame::hello_study()
    const noexcept {
  if (payload.empty()) return std::uint64_t{0};
  if (payload.size() != kHelloStudyBytes) return std::nullopt;
  std::uint64_t id = 0;
  for (std::size_t i = 0; i < kHelloStudyBytes; ++i) {
    id |= std::uint64_t{payload[i]} << (8 * i);
  }
  return id;
}

void FrameDecoder::feed(common::BytesView data) {
  // Compact before growing: once everything parsed so far is consumed the
  // buffer restarts at zero, so steady-state streaming never accumulates.
  if (consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

common::Result<std::optional<FrameDecoder::Frame>> FrameDecoder::next() {
  if (buffered() < kFrameHeaderBytes) return std::optional<Frame>{};
  const std::uint8_t* base = buffer_.data() + consumed_;
  const std::uint32_t frame_len = load_u32(base);
  if (frame_len < 4 || frame_len - 4 > kMaxFramePayload) {
    return common::make_error(common::Errc::bad_message,
                              "malformed frame header");
  }
  const std::size_t payload_size = frame_len - 4;
  if (buffered() < kFrameHeaderBytes + payload_size) {
    return std::optional<Frame>{};
  }
  Frame frame;
  frame.from = load_u32(base + 4);
  frame.payload.assign(base + kFrameHeaderBytes,
                       base + kFrameHeaderBytes + payload_size);
  consumed_ += kFrameHeaderBytes + payload_size;
  return std::optional<Frame>{std::move(frame)};
}

}  // namespace gendpr::wire
