#include "wire/frame.hpp"

#include <algorithm>
#include <cstring>

namespace gendpr::wire {

namespace {

void store_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

}  // namespace

std::array<std::uint8_t, kFrameHeaderBytes> encode_frame_header(
    std::uint32_t from, std::size_t payload_size) {
  std::array<std::uint8_t, kFrameHeaderBytes> header{};
  store_u32(header.data(), static_cast<std::uint32_t>(payload_size + 4));
  store_u32(header.data() + 4, from);
  return header;
}

common::Bytes encode_frame(std::uint32_t from, common::BytesView payload) {
  common::Bytes frame(kFrameHeaderBytes + payload.size());
  const auto header = encode_frame_header(from, payload.size());
  std::memcpy(frame.data(), header.data(), kFrameHeaderBytes);
  if (!payload.empty()) {
    std::memcpy(frame.data() + kFrameHeaderBytes, payload.data(),
                payload.size());
  }
  return frame;
}

common::Bytes encode_hello(std::uint32_t from, std::uint64_t study_id) {
  if (study_id == 0) return encode_frame(from, {});
  std::array<std::uint8_t, kHelloStudyBytes> body{};
  for (std::size_t i = 0; i < kHelloStudyBytes; ++i) {
    body[i] = static_cast<std::uint8_t>(study_id >> (8 * i));
  }
  return encode_frame(from, common::BytesView(body.data(), body.size()));
}

std::optional<std::uint64_t> FrameDecoder::Frame::hello_study()
    const noexcept {
  if (payload.empty()) return std::uint64_t{0};
  if (payload.size() != kHelloStudyBytes) return std::nullopt;
  std::uint64_t id = 0;
  for (std::size_t i = 0; i < kHelloStudyBytes; ++i) {
    id |= std::uint64_t{payload[i]} << (8 * i);
  }
  return id;
}

void FrameDecoder::feed(common::BytesView data) {
  // Callers normally drain to nullopt before feeding again, but never lose
  // stream bytes if they don't: stash whatever is left of the old chunk.
  if (!chunk_.empty()) {
    stash_.insert(stash_.end(), chunk_.begin(), chunk_.end());
  }
  chunk_ = data;
}

common::Result<std::optional<FrameDecoder::Frame>> FrameDecoder::next() {
  if (!stash_.empty()) {
    // Slow path: a frame straddles chunk boundaries. Top the stash up from
    // the current chunk — first to a full header, then to the full frame.
    if (stash_.size() < kFrameHeaderBytes) {
      const std::size_t take =
          std::min(kFrameHeaderBytes - stash_.size(), chunk_.size());
      stash_.insert(stash_.end(), chunk_.begin(), chunk_.begin() + take);
      chunk_ = chunk_.subspan(take);
      if (stash_.size() < kFrameHeaderBytes) return std::optional<Frame>{};
    }
    const std::uint32_t frame_len = load_u32(stash_.data());
    if (frame_len < 4 || frame_len - 4 > kMaxFramePayload) {
      return common::make_error(common::Errc::bad_message,
                                "malformed frame header");
    }
    const std::size_t payload_size = frame_len - 4;
    const std::size_t total = kFrameHeaderBytes + payload_size;
    if (stash_.size() < total) {
      const std::size_t take = std::min(total - stash_.size(), chunk_.size());
      stash_.insert(stash_.end(), chunk_.begin(), chunk_.begin() + take);
      chunk_ = chunk_.subspan(take);
      if (stash_.size() < total) return std::optional<Frame>{};
    }
    // Frame complete. feed() can stash more than one frame's worth, so keep
    // any excess for the next call.
    if (stash_.size() == total) {
      stash_frame_ = std::move(stash_);
      stash_.clear();
    } else {
      stash_frame_.assign(stash_.begin(),
                          stash_.begin() + static_cast<std::ptrdiff_t>(total));
      stash_.erase(stash_.begin(),
                   stash_.begin() + static_cast<std::ptrdiff_t>(total));
    }
    Frame frame;
    frame.from = load_u32(stash_frame_.data() + 4);
    frame.payload = common::BytesView(stash_frame_.data() + kFrameHeaderBytes,
                                      payload_size);
    return std::optional<Frame>{std::move(frame)};
  }

  // Fast path: parse directly out of the borrowed chunk, zero-copy.
  if (chunk_.size() < kFrameHeaderBytes) {
    if (!chunk_.empty()) {
      stash_.assign(chunk_.begin(), chunk_.end());
      chunk_ = {};
    }
    return std::optional<Frame>{};
  }
  const std::uint32_t frame_len = load_u32(chunk_.data());
  if (frame_len < 4 || frame_len - 4 > kMaxFramePayload) {
    return common::make_error(common::Errc::bad_message,
                              "malformed frame header");
  }
  const std::size_t payload_size = frame_len - 4;
  const std::size_t total = kFrameHeaderBytes + payload_size;
  if (chunk_.size() < total) {
    stash_.assign(chunk_.begin(), chunk_.end());
    chunk_ = {};
    return std::optional<Frame>{};
  }
  Frame frame;
  frame.from = load_u32(chunk_.data() + 4);
  frame.payload = chunk_.subspan(kFrameHeaderBytes, payload_size);
  chunk_ = chunk_.subspan(total);
  return std::optional<Frame>{std::move(frame)};
}

}  // namespace gendpr::wire
