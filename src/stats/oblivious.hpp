// Data-oblivious kernels - a first cut at the paper's stated future work
// (§8: "we plan to extend GenDPR to cope with side-channel attacks against
// TEEs by designing an oblivious version of the protocol").
//
// SGX enclaves leak through memory-access patterns and branches on secret
// data (§2.1). The hot loops of GenDPR's phases touch genotypes; this module
// provides drop-in variants whose control flow and memory-access pattern are
// independent of the genotype values:
//   * branchless selection (constant-time cmov on doubles),
//   * a bitonic sorting network (the standard oblivious sort) for score
//     calibration,
//   * an oblivious LR-matrix builder (arithmetic select instead of a
//     genotype-dependent branch),
//   * an oblivious detection-power evaluation (bitonic sort + branchless
//     threshold comparison).
// Results are bit-identical to the regular implementations (tested); the
// cost difference is quantified in bench_ablation_oblivious, mirroring the
// "significant performance overhead" the paper cites for data-oblivious
// genomics ([1, 30] in its bibliography).
//
// Scope note: these harden the genotype-touching inner loops. Full protocol
// obliviousness (hiding which SNPs survive each phase from an observer of
// enclave memory) additionally needs ORAM-style structures and is out of
// scope, as it is for the paper.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "genome/genotype.hpp"
#include "stats/lr_test.hpp"

namespace gendpr::stats {

/// Constant-time select: returns a if mask==1, b if mask==0, without a
/// branch on mask. mask must be 0 or 1.
double oblivious_select(std::uint64_t mask, double a, double b) noexcept;

/// In-place bitonic sort (ascending). The comparison sequence depends only
/// on data.size(), never on the values: the canonical oblivious sort.
/// O(n log^2 n) compare-exchanges.
void oblivious_sort(std::span<double> data);

/// LR matrix over `snps` with no genotype-dependent branch: each cell is
/// computed as w_major + g * (w_minor - w_major) with g in {0,1}.
LrMatrix oblivious_build_lr_matrix(const genome::GenotypeMatrix& genotypes,
                                   const std::vector<std::uint32_t>& snps,
                                   const LrWeights& weights);

/// detection_power with an oblivious calibration: the reference scores are
/// bitonic-sorted (fixed pattern) and the case comparisons accumulate
/// branchlessly. Same result as stats::detection_power.
double oblivious_detection_power(const std::vector<double>& case_scores,
                                 const std::vector<double>& reference_scores,
                                 double false_positive_rate,
                                 double* threshold_out);

}  // namespace gendpr::stats
