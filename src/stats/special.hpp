// Special functions needed for GWAS statistics: the regularized incomplete
// gamma function (chi-squared survival function / p-values) and the normal
// distribution (LR-test power approximations, DP calibration).
//
// Implementations follow the classic series / continued-fraction split
// (Numerical Recipes style) with double precision; tests compare against
// high-precision reference values.
#pragma once

namespace gendpr::stats {

/// Regularized lower incomplete gamma P(a, x), a > 0, x >= 0.
double regularized_gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double regularized_gamma_q(double a, double x);

/// Survival function of the chi-squared distribution with k degrees of
/// freedom: P[X >= x]. This is the p-value of a chi-squared statistic.
double chi2_sf(double x, double k);

/// Standard normal CDF.
double normal_cdf(double x);

/// Standard normal quantile (inverse CDF), p in (0, 1).
/// Acklam's rational approximation refined by one Halley step (|err| < 1e-12).
double normal_quantile(double p);

}  // namespace gendpr::stats
