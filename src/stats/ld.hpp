// Linkage disequilibrium from distributable correlation moments.
//
// GenDPR's Phase 2 cannot pool genotypes, so each GDO ships the five sums of
// §5.4 per SNP pair (mu_l, mu_{l+1}, mu_{l,l+1}, mu_{l^2}, mu_{(l+1)^2}) plus
// its population size; moments are additive, so the leader aggregates them
// and evaluates the squared Pearson correlation r^2 exactly as a centralized
// holder of all genomes would. Significance: N * r^2 is asymptotically
// chi-squared with 1 dof, giving the p-value compared against the paper's
// 1e-5 LD cut-off (small p-value = dependent pair).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/coro.hpp"
#include "genome/bitplanes.hpp"
#include "genome/genotype.hpp"

namespace gendpr::stats {

/// Additive correlation moments for one SNP pair over one population.
struct LdMoments {
  double mu_x = 0;   // sum of genotypes at the first SNP
  double mu_y = 0;   // sum at the second SNP
  double mu_xy = 0;  // sum of products
  double mu_x2 = 0;  // sum of squares at the first SNP
  double mu_y2 = 0;  // sum of squares at the second SNP
  std::uint64_t n = 0;

  LdMoments& operator+=(const LdMoments& other) noexcept;
  friend LdMoments operator+(LdMoments a, const LdMoments& b) noexcept {
    a += b;
    return a;
  }
};

/// Moments of the pair (snp_x, snp_y) over all individuals of `genotypes`.
LdMoments compute_ld_moments(const genome::GenotypeMatrix& genotypes,
                             std::uint32_t snp_x, std::uint32_t snp_y);

/// Word-parallel moments from SNP-major bit planes. For binary genotypes
/// x = x^2, so mu_x = mu_x2 = count_x (cached per plane) and the only term
/// needing a sweep is mu_xy = popcount(plane_x & plane_y). Sums of 0/1
/// values are exact in double, so the result is bit-identical to the scalar
/// per-individual loop.
LdMoments compute_ld_moments(const genome::BitPlanes& planes,
                             std::uint32_t snp_x, std::uint32_t snp_y);

/// Squared Pearson correlation from aggregated moments; 0 for degenerate
/// (constant) columns.
double ld_r2(const LdMoments& moments);

/// P-value of the correlation (chi-squared approximation: n * r^2, 1 dof).
double ld_p_value(const LdMoments& moments);

/// Greedy LD pruning over an ordered SNP list (Algorithm 1 lines 28-57):
/// walks adjacent pairs; an independent pair (p-value > cutoff) keeps the
/// current SNP and advances; a dependent pair keeps only the better-ranked
/// SNP (smaller association p-value) and continues the scan from the next
/// position. `pair_p_value(a, b)` supplies the LD p-value of a pair and
/// abstracts who owns the genomes (local matrix or federated aggregation).
///
/// This is the canonical (sans-IO) form: `pair_p_value` returns a
/// `Task<double>`, so a federated caller may suspend mid-walk while member
/// moments are in flight. The blocking wrapper below adapts synchronous
/// p-value callbacks onto the same walk.
template <typename AsyncPairPValueFn>
common::Task<std::vector<std::uint32_t>> greedy_ld_prune_async(
    std::vector<std::uint32_t> snps, double ld_cutoff,
    std::vector<double> association_p_values, AsyncPairPValueFn pair_p_value) {
  std::vector<std::uint32_t> retained;
  if (snps.empty()) co_return retained;
  if (snps.size() == 1) co_return snps;

  std::uint32_t current = snps[0];
  for (std::size_t i = 1; i < snps.size(); ++i) {
    const std::uint32_t next = snps[i];
    const double p = co_await pair_p_value(current, next);
    if (p > ld_cutoff) {
      // Independent: current survives; next becomes the comparison anchor.
      retained.push_back(current);
      current = next;
    } else {
      // Dependent: keep only the better-ranked of the two.
      current = (association_p_values[next] < association_p_values[current])
                    ? next
                    : current;
    }
  }
  retained.push_back(current);
  co_return retained;
}

/// Blocking-callback adapter over greedy_ld_prune_async (local baselines and
/// property tests; nothing in the adapted walk ever suspends).
template <typename PairPValueFn>
std::vector<std::uint32_t> greedy_ld_prune(
    const std::vector<std::uint32_t>& snps, double ld_cutoff,
    const std::vector<double>& association_p_values,
    PairPValueFn&& pair_p_value) {
  return common::run_sync(greedy_ld_prune_async(
      snps, ld_cutoff, association_p_values,
      [&pair_p_value](std::uint32_t a,
                      std::uint32_t b) -> common::Task<double> {
        co_return pair_p_value(a, b);
      }));
}

/// Truncated walk for the intersection-aware combination sweep. Runs the
/// exact same walk as greedy_ld_prune but returns as soon as the comparison
/// anchor moves past `resolve_through` (a SNP id): at that point the fate of
/// every SNP <= resolve_through is decided (each was either retained or
/// discarded by the shared walk prefix), and everything the full walk would
/// still retain lies beyond resolve_through. Intersecting the truncated
/// result with any SNP set bounded by resolve_through therefore equals
/// intersecting the full walk's result with it — while the tail of the
/// walk (and its pair fetches) is skipped entirely. The returned list may
/// omit retained SNPs > resolve_through; use it only for such
/// intersections.
template <typename AsyncPairPValueFn>
common::Task<std::vector<std::uint32_t>> greedy_ld_prune_resolving_async(
    std::vector<std::uint32_t> snps, double ld_cutoff,
    std::vector<double> association_p_values, AsyncPairPValueFn pair_p_value,
    std::uint32_t resolve_through) {
  std::vector<std::uint32_t> retained;
  if (snps.empty() || snps[0] > resolve_through) co_return retained;
  if (snps.size() == 1) co_return snps;

  std::uint32_t current = snps[0];
  for (std::size_t i = 1; i < snps.size(); ++i) {
    const std::uint32_t next = snps[i];
    const double p = co_await pair_p_value(current, next);
    if (p > ld_cutoff) {
      retained.push_back(current);
      current = next;
    } else {
      current = (association_p_values[next] < association_p_values[current])
                    ? next
                    : current;
    }
    if (current > resolve_through) co_return retained;
  }
  retained.push_back(current);
  co_return retained;
}

/// Blocking-callback adapter over greedy_ld_prune_resolving_async.
template <typename PairPValueFn>
std::vector<std::uint32_t> greedy_ld_prune_resolving(
    const std::vector<std::uint32_t>& snps, double ld_cutoff,
    const std::vector<double>& association_p_values,
    PairPValueFn&& pair_p_value, std::uint32_t resolve_through) {
  return common::run_sync(greedy_ld_prune_resolving_async(
      snps, ld_cutoff, association_p_values,
      [&pair_p_value](std::uint32_t a,
                      std::uint32_t b) -> common::Task<double> {
        co_return pair_p_value(a, b);
      },
      resolve_through));
}

}  // namespace gendpr::stats
