// Single-SNP association statistics: contingency tables, chi-squared tests,
// minor allele frequencies, and SNP ranking.
//
// Mirrors §3 of the paper. Two chi-squared variants are provided: the
// standard Pearson test on the 2x2 singlewise contingency table (Table 2a),
// used for ranking SNPs ("most ranked" = smallest p-value), and the
// simplified statistic the paper prints in §3.1
// (chi2 = (N_case - N_control)^2 / N_control), kept for reference.
#pragma once

#include <cstdint>
#include <vector>

namespace gendpr::stats {

/// Singlewise contingency table (paper Table 2a) for one SNP.
struct SinglewiseTable {
  std::uint64_t case_minor = 0;    // N^case_1
  std::uint64_t case_total = 0;    // N^case
  std::uint64_t control_minor = 0; // N^control_1
  std::uint64_t control_total = 0; // N^control

  std::uint64_t case_major() const noexcept { return case_total - case_minor; }
  std::uint64_t control_major() const noexcept {
    return control_total - control_minor;
  }
  std::uint64_t total() const noexcept { return case_total + control_total; }
};

/// Pearson chi-squared statistic of the 2x2 table (1 degree of freedom).
/// Returns 0 for degenerate tables (empty margins).
double chi2_statistic(const SinglewiseTable& table);

/// P-value of the Pearson statistic (chi-squared survival, 1 dof).
double chi2_p_value(const SinglewiseTable& table);

/// The simplified chi-squared printed in the paper's §3.1.
double paper_chi2(std::uint64_t n_case_minor, std::uint64_t n_control_minor);

/// Minor allele frequency from aggregate counts: total minor-allele count
/// over total allele observations.
double minor_allele_frequency(std::uint64_t minor_count,
                              std::uint64_t total_count);

/// Indices of SNPs whose MAF is >= cutoff (the paper's Phase 1 filter keeps
/// these; MAF below the cutoff marks rare, identifying variants).
std::vector<std::uint32_t> maf_filter(const std::vector<double>& maf,
                                      double cutoff);

/// Index of the better-ranked of two SNPs: the one with the smaller
/// association p-value (paper's getMostRanked). Ties keep `l1`.
std::uint32_t most_ranked(std::uint32_t l1, std::uint32_t l2,
                          const std::vector<double>& p_values);

}  // namespace gendpr::stats
