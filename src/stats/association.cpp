#include "stats/association.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/special.hpp"

namespace gendpr::stats {

double chi2_statistic(const SinglewiseTable& table) {
  const double n = static_cast<double>(table.total());
  if (n == 0.0) return 0.0;
  const double row_minor =
      static_cast<double>(table.case_minor + table.control_minor);
  const double row_major = n - row_minor;
  const double col_case = static_cast<double>(table.case_total);
  const double col_control = static_cast<double>(table.control_total);
  if (row_minor == 0.0 || row_major == 0.0 || col_case == 0.0 ||
      col_control == 0.0) {
    return 0.0;  // degenerate margin: no information
  }
  // Pearson chi2 for a 2x2 table: n (ad - bc)^2 / (row1 row2 col1 col2).
  const double a = static_cast<double>(table.case_minor);
  const double b = static_cast<double>(table.control_minor);
  const double c = static_cast<double>(table.case_major());
  const double d = static_cast<double>(table.control_major());
  const double det = a * d - b * c;
  return n * det * det / (row_minor * row_major * col_case * col_control);
}

double chi2_p_value(const SinglewiseTable& table) {
  return chi2_sf(chi2_statistic(table), 1.0);
}

double paper_chi2(std::uint64_t n_case_minor, std::uint64_t n_control_minor) {
  if (n_control_minor == 0) return 0.0;
  const double diff = static_cast<double>(n_case_minor) -
                      static_cast<double>(n_control_minor);
  return diff * diff / static_cast<double>(n_control_minor);
}

double minor_allele_frequency(std::uint64_t minor_count,
                              std::uint64_t total_count) {
  if (total_count == 0) {
    throw std::invalid_argument("minor_allele_frequency: empty population");
  }
  return static_cast<double>(minor_count) / static_cast<double>(total_count);
}

std::vector<std::uint32_t> maf_filter(const std::vector<double>& maf,
                                      double cutoff) {
  std::vector<std::uint32_t> retained;
  retained.reserve(maf.size());
  for (std::size_t l = 0; l < maf.size(); ++l) {
    if (maf[l] >= cutoff) retained.push_back(static_cast<std::uint32_t>(l));
  }
  return retained;
}

std::uint32_t most_ranked(std::uint32_t l1, std::uint32_t l2,
                          const std::vector<double>& p_values) {
  return p_values[l2] < p_values[l1] ? l2 : l1;
}

}  // namespace gendpr::stats
