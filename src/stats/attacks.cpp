#include "stats/attacks.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/lr_test.hpp"

namespace gendpr::stats {

double homer_statistic(const std::vector<std::uint8_t>& genotype,
                       const std::vector<double>& case_freq,
                       const std::vector<double>& reference_freq) {
  if (genotype.size() != case_freq.size() ||
      genotype.size() != reference_freq.size()) {
    throw std::invalid_argument("homer_statistic: size mismatch");
  }
  double d = 0.0;
  for (std::size_t l = 0; l < genotype.size(); ++l) {
    const double y = genotype[l] != 0 ? 1.0 : 0.0;
    d += std::abs(y - reference_freq[l]) - std::abs(y - case_freq[l]);
  }
  return d;
}

std::vector<double> homer_scores(const genome::GenotypeMatrix& population,
                                 const std::vector<std::uint32_t>& released,
                                 const std::vector<double>& case_freq,
                                 const std::vector<double>& reference_freq) {
  if (released.size() != case_freq.size() ||
      released.size() != reference_freq.size()) {
    throw std::invalid_argument("homer_scores: size mismatch");
  }
  std::vector<double> scores(population.num_individuals(), 0.0);
  // |y - p| for binary y: y=1 -> 1-p; y=0 -> p. The per-SNP contribution is
  // precomputable for both alleles.
  std::vector<double> when_minor(released.size());
  std::vector<double> when_major(released.size());
  for (std::size_t i = 0; i < released.size(); ++i) {
    when_minor[i] = (1.0 - reference_freq[i]) - (1.0 - case_freq[i]);
    when_major[i] = reference_freq[i] - case_freq[i];
  }
  for (std::size_t n = 0; n < population.num_individuals(); ++n) {
    double d = 0.0;
    for (std::size_t i = 0; i < released.size(); ++i) {
      d += population.get(n, released[i]) ? when_minor[i] : when_major[i];
    }
    scores[n] = d;
  }
  return scores;
}

std::vector<double> lr_scores(const genome::GenotypeMatrix& population,
                              const std::vector<std::uint32_t>& released,
                              const std::vector<double>& case_freq,
                              const std::vector<double>& reference_freq) {
  const LrWeights weights = lr_weights(case_freq, reference_freq);
  std::vector<double> scores(population.num_individuals(), 0.0);
  for (std::size_t n = 0; n < population.num_individuals(); ++n) {
    double lr = 0.0;
    for (std::size_t i = 0; i < released.size(); ++i) {
      lr += population.get(n, released[i]) ? weights.when_minor[i]
                                           : weights.when_major[i];
    }
    scores[n] = lr;
  }
  return scores;
}

AttackPower evaluate_attack(const std::vector<double>& member_scores,
                            const std::vector<double>& nonmember_scores,
                            double false_positive_rate) {
  AttackPower result;
  result.power = detection_power(member_scores, nonmember_scores,
                                 false_positive_rate, &result.threshold);
  return result;
}

}  // namespace gendpr::stats
