#include "stats/dp.hpp"

#include <cmath>
#include <stdexcept>

namespace gendpr::stats {

double laplace_noise(common::Rng& rng, double scale) {
  if (scale <= 0.0) {
    throw std::invalid_argument("laplace_noise: scale must be > 0");
  }
  // Inverse CDF: u uniform in (-1/2, 1/2); x = -b sgn(u) ln(1 - 2|u|).
  double u = 0.0;
  do {
    u = rng.uniform() - 0.5;
  } while (u == -0.5);
  const double sign = u < 0.0 ? -1.0 : 1.0;
  return -scale * sign * std::log(1.0 - 2.0 * std::abs(u));
}

std::vector<double> dp_perturb_counts(const std::vector<std::uint32_t>& counts,
                                      double epsilon, double sensitivity,
                                      common::Rng& rng) {
  if (epsilon <= 0.0) {
    throw std::invalid_argument("dp_perturb_counts: epsilon must be > 0");
  }
  const double scale = sensitivity / epsilon;
  std::vector<double> noisy;
  noisy.reserve(counts.size());
  for (std::uint32_t count : counts) {
    noisy.push_back(static_cast<double>(count) + laplace_noise(rng, scale));
  }
  return noisy;
}

double expected_absolute_error(double epsilon, double sensitivity) {
  if (epsilon <= 0.0) {
    throw std::invalid_argument("expected_absolute_error: epsilon must be > 0");
  }
  return sensitivity / epsilon;
}

}  // namespace gendpr::stats
