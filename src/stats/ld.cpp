#include "stats/ld.hpp"

#include <cmath>

#include "stats/special.hpp"

namespace gendpr::stats {

LdMoments& LdMoments::operator+=(const LdMoments& other) noexcept {
  mu_x += other.mu_x;
  mu_y += other.mu_y;
  mu_xy += other.mu_xy;
  mu_x2 += other.mu_x2;
  mu_y2 += other.mu_y2;
  n += other.n;
  return *this;
}

LdMoments compute_ld_moments(const genome::GenotypeMatrix& genotypes,
                             std::uint32_t snp_x, std::uint32_t snp_y) {
  LdMoments m;
  m.n = genotypes.num_individuals();
  for (std::size_t i = 0; i < genotypes.num_individuals(); ++i) {
    const double x = genotypes.get(i, snp_x) ? 1.0 : 0.0;
    const double y = genotypes.get(i, snp_y) ? 1.0 : 0.0;
    m.mu_x += x;
    m.mu_y += y;
    m.mu_xy += x * y;
    m.mu_x2 += x * x;
    m.mu_y2 += y * y;
  }
  return m;
}

LdMoments compute_ld_moments(const genome::BitPlanes& planes,
                             std::uint32_t snp_x, std::uint32_t snp_y) {
  LdMoments m;
  m.n = planes.num_individuals();
  const double count_x = planes.allele_count(snp_x);
  const double count_y = planes.allele_count(snp_y);
  m.mu_x = count_x;
  m.mu_x2 = count_x;
  m.mu_y = count_y;
  m.mu_y2 = count_y;
  m.mu_xy = planes.pair_count(snp_x, snp_y);
  return m;
}

double ld_r2(const LdMoments& m) {
  if (m.n == 0) return 0.0;
  const double n = static_cast<double>(m.n);
  const double cov = n * m.mu_xy - m.mu_x * m.mu_y;
  const double var_x = n * m.mu_x2 - m.mu_x * m.mu_x;
  const double var_y = n * m.mu_y2 - m.mu_y * m.mu_y;
  if (var_x <= 0.0 || var_y <= 0.0) return 0.0;
  return (cov * cov) / (var_x * var_y);
}

double ld_p_value(const LdMoments& m) {
  if (m.n == 0) return 1.0;
  const double statistic = static_cast<double>(m.n) * ld_r2(m);
  return chi2_sf(statistic, 1.0);
}

}  // namespace gendpr::stats
