#include "stats/lr_test.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace gendpr::stats {

void LrMatrix::append_rows(const LrMatrix& other) {
  if (rows_ == 0 && cols_ == 0) {
    *this = other;
    return;
  }
  if (other.cols_ != cols_) {
    throw std::invalid_argument("LrMatrix::append_rows: column mismatch");
  }
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  rows_ += other.rows_;
}

LrWeights lr_weights(const std::vector<double>& case_freq,
                     const std::vector<double>& reference_freq,
                     double freq_floor) {
  if (case_freq.size() != reference_freq.size()) {
    throw std::invalid_argument("lr_weights: frequency vector size mismatch");
  }
  LrWeights weights;
  weights.when_minor.resize(case_freq.size());
  weights.when_major.resize(case_freq.size());
  for (std::size_t l = 0; l < case_freq.size(); ++l) {
    const double p_hat =
        std::clamp(case_freq[l], freq_floor, 1.0 - freq_floor);
    const double p = std::clamp(reference_freq[l], freq_floor,
                                1.0 - freq_floor);
    weights.when_minor[l] = std::log(p_hat / p);
    weights.when_major[l] = std::log((1.0 - p_hat) / (1.0 - p));
  }
  return weights;
}

LrMatrix build_lr_matrix(const genome::GenotypeMatrix& genotypes,
                         const std::vector<std::uint32_t>& snps,
                         const LrWeights& weights,
                         const std::vector<std::uint32_t>& snp_to_weight_col) {
  LrMatrix matrix(genotypes.num_individuals(), snps.size());
  for (std::size_t n = 0; n < genotypes.num_individuals(); ++n) {
    for (std::size_t i = 0; i < snps.size(); ++i) {
      const std::uint32_t col = snp_to_weight_col[i];
      matrix.at(n, i) = genotypes.get(n, snps[i])
                            ? weights.when_minor[col]
                            : weights.when_major[col];
    }
  }
  return matrix;
}

LrMatrix build_lr_matrix(const genome::GenotypeMatrix& genotypes,
                         const std::vector<std::uint32_t>& snps,
                         const LrWeights& weights) {
  std::vector<std::uint32_t> identity(snps.size());
  std::iota(identity.begin(), identity.end(), 0u);
  return build_lr_matrix(genotypes, snps, weights, identity);
}

double detection_power(const std::vector<double>& case_scores,
                       const std::vector<double>& reference_scores,
                       double false_positive_rate, double* threshold_out) {
  if (reference_scores.empty() || case_scores.empty()) {
    if (threshold_out != nullptr) *threshold_out = 0.0;
    return 0.0;
  }
  // Threshold: smallest reference score such that the fraction of reference
  // scores strictly above it is <= fpr, i.e. the (1-fpr) empirical quantile.
  // nth_element instead of a full sort: this runs once per candidate SNP in
  // the selection loop and dominates the LR phase at paper scale.
  std::vector<double> scratch_ref = reference_scores;
  const std::size_t n_ref = scratch_ref.size();
  std::size_t idx = static_cast<std::size_t>(
      std::ceil((1.0 - false_positive_rate) * static_cast<double>(n_ref)));
  if (idx == 0) idx = 1;
  if (idx > n_ref) idx = n_ref;
  std::nth_element(scratch_ref.begin(), scratch_ref.begin() + (idx - 1),
                   scratch_ref.end());
  const double threshold = scratch_ref[idx - 1];
  if (threshold_out != nullptr) *threshold_out = threshold;

  std::size_t detected = 0;
  for (double score : case_scores) {
    if (score > threshold) ++detected;
  }
  return static_cast<double>(detected) /
         static_cast<double>(case_scores.size());
}

LrSelectionResult select_safe_snps(const LrMatrix& case_lr,
                                   const LrMatrix& reference_lr,
                                   const LrSelectionParams& params) {
  if (case_lr.cols() != reference_lr.cols()) {
    throw std::invalid_argument("select_safe_snps: column count mismatch");
  }
  const std::size_t cols = case_lr.cols();
  LrSelectionResult result;
  if (cols == 0) return result;

  // Identifying power of each SNP alone: the gap between the mean case and
  // mean reference LR contribution. Low-gap SNPs are admitted first.
  std::vector<double> gap(cols, 0.0);
  for (std::size_t c = 0; c < cols; ++c) {
    double case_mean = 0.0;
    for (std::size_t r = 0; r < case_lr.rows(); ++r) {
      case_mean += case_lr.at(r, c);
    }
    if (case_lr.rows() > 0) case_mean /= static_cast<double>(case_lr.rows());
    double ref_mean = 0.0;
    for (std::size_t r = 0; r < reference_lr.rows(); ++r) {
      ref_mean += reference_lr.at(r, c);
    }
    if (reference_lr.rows() > 0) {
      ref_mean /= static_cast<double>(reference_lr.rows());
    }
    gap[c] = case_mean - ref_mean;
  }
  std::vector<std::uint32_t> order(cols);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&gap](std::uint32_t a, std::uint32_t b) {
                     if (gap[a] != gap[b]) return gap[a] < gap[b];
                     return a < b;  // deterministic tie-break
                   });

  // Greedy forward admission with incremental per-individual sums.
  std::vector<double> case_sums(case_lr.rows(), 0.0);
  std::vector<double> ref_sums(reference_lr.rows(), 0.0);
  std::vector<std::uint32_t> kept;
  double current_power = 0.0;
  double current_threshold = 0.0;

  for (std::uint32_t candidate : order) {
    for (std::size_t r = 0; r < case_lr.rows(); ++r) {
      case_sums[r] += case_lr.at(r, candidate);
    }
    for (std::size_t r = 0; r < reference_lr.rows(); ++r) {
      ref_sums[r] += reference_lr.at(r, candidate);
    }
    double threshold = 0.0;
    const double power = detection_power(case_sums, ref_sums,
                                         params.false_positive_rate,
                                         &threshold);
    if (power <= params.power_threshold) {
      kept.push_back(candidate);
      current_power = power;
      current_threshold = threshold;
    } else {
      // Roll the candidate back and try the next one.
      for (std::size_t r = 0; r < case_lr.rows(); ++r) {
        case_sums[r] -= case_lr.at(r, candidate);
      }
      for (std::size_t r = 0; r < reference_lr.rows(); ++r) {
        ref_sums[r] -= reference_lr.at(r, candidate);
      }
    }
  }

  std::sort(kept.begin(), kept.end());
  result.safe_columns = std::move(kept);
  result.final_power = current_power;
  result.final_threshold = current_threshold;
  return result;
}

}  // namespace gendpr::stats
