#include "stats/lr_test.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "genome/kernels/kernels.hpp"

namespace gendpr::stats {

void LrMatrix::append_rows(const LrMatrix& other) {
  if (rows_ == 0 && cols_ == 0) {
    *this = other;
    return;
  }
  if (other.cols_ != cols_) {
    throw std::invalid_argument("LrMatrix::append_rows: column mismatch");
  }
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  rows_ += other.rows_;
}

LrWeights lr_weights(const std::vector<double>& case_freq,
                     const std::vector<double>& reference_freq,
                     double freq_floor) {
  if (case_freq.size() != reference_freq.size()) {
    throw std::invalid_argument("lr_weights: frequency vector size mismatch");
  }
  LrWeights weights;
  weights.when_minor.resize(case_freq.size());
  weights.when_major.resize(case_freq.size());
  for (std::size_t l = 0; l < case_freq.size(); ++l) {
    const double p_hat =
        std::clamp(case_freq[l], freq_floor, 1.0 - freq_floor);
    const double p = std::clamp(reference_freq[l], freq_floor,
                                1.0 - freq_floor);
    weights.when_minor[l] = std::log(p_hat / p);
    weights.when_major[l] = std::log((1.0 - p_hat) / (1.0 - p));
  }
  return weights;
}

LrMatrix build_lr_matrix(const genome::GenotypeMatrix& genotypes,
                         const std::vector<std::uint32_t>& snps,
                         const LrWeights& weights,
                         const std::vector<std::uint32_t>& snp_to_weight_col) {
  LrMatrix matrix(genotypes.num_individuals(), snps.size());
  for (std::size_t n = 0; n < genotypes.num_individuals(); ++n) {
    for (std::size_t i = 0; i < snps.size(); ++i) {
      const std::uint32_t col = snp_to_weight_col[i];
      matrix.at(n, i) = genotypes.get(n, snps[i])
                            ? weights.when_minor[col]
                            : weights.when_major[col];
    }
  }
  return matrix;
}

LrMatrix build_lr_matrix(const genome::GenotypeMatrix& genotypes,
                         const std::vector<std::uint32_t>& snps,
                         const LrWeights& weights) {
  std::vector<std::uint32_t> identity(snps.size());
  std::iota(identity.begin(), identity.end(), 0u);
  return build_lr_matrix(genotypes, snps, weights, identity);
}

LrMatrix build_lr_matrix(const genome::BitPlanes& planes,
                         const std::vector<std::uint32_t>& snps,
                         const LrWeights& weights,
                         const std::vector<std::uint32_t>& snp_to_weight_col) {
  const std::size_t rows = planes.num_individuals();
  const std::size_t cols = snps.size();
  LrMatrix matrix(rows, cols);
  if (rows == 0 || cols == 0) return matrix;

  std::vector<double> when_minor(cols), when_major(cols);
  for (std::size_t i = 0; i < cols; ++i) {
    when_minor[i] = weights.when_minor[snp_to_weight_col[i]];
    when_major[i] = weights.when_major[snp_to_weight_col[i]];
  }

  // One plane word covers 64 rows; gather the block's word per column once,
  // then emit the 64 rows contiguously (row-major writes).
  double* out = matrix.values().data();
  std::vector<std::uint64_t> block(cols);
  for (std::size_t w = 0; w < planes.words_per_plane(); ++w) {
    for (std::size_t i = 0; i < cols; ++i) {
      block[i] = planes.plane(snps[i])[w];
    }
    const std::size_t row_end = std::min(rows, (w + 1) * 64);
    for (std::size_t n = w * 64; n < row_end; ++n) {
      const std::size_t k = n % 64;
      double* row_out = out + n * cols;
      for (std::size_t i = 0; i < cols; ++i) {
        row_out[i] = ((block[i] >> k) & 1) != 0 ? when_minor[i]
                                                : when_major[i];
      }
    }
  }
  return matrix;
}

LrMatrix build_lr_matrix(const genome::BitPlanes& planes,
                         const std::vector<std::uint32_t>& snps,
                         const LrWeights& weights) {
  std::vector<std::uint32_t> identity(snps.size());
  std::iota(identity.begin(), identity.end(), 0u);
  return build_lr_matrix(planes, snps, weights, identity);
}

LrBasis::LrBasis(const genome::BitPlanes& planes,
                 const std::vector<std::uint32_t>& snps)
    : rows_(planes.num_individuals()),
      cols_(snps.size()),
      indicator_(rows_ * cols_, 0) {
  if (rows_ == 0 || cols_ == 0) return;
  // Same word-gather sweep as the bit-plane matrix build: one plane word
  // covers 64 rows, gathered per column once, rows emitted contiguously.
  std::uint8_t* out = indicator_.data();
  std::vector<std::uint64_t> block(cols_);
  for (std::size_t w = 0; w < planes.words_per_plane(); ++w) {
    for (std::size_t i = 0; i < cols_; ++i) {
      block[i] = planes.plane(snps[i])[w];
    }
    const std::size_t row_end = std::min(rows_, (w + 1) * 64);
    for (std::size_t n = w * 64; n < row_end; ++n) {
      const std::size_t k = n % 64;
      std::uint8_t* row_out = out + n * cols_;
      for (std::size_t i = 0; i < cols_; ++i) {
        row_out[i] = static_cast<std::uint8_t>((block[i] >> k) & 1);
      }
    }
  }
}

LrMatrix LrBasis::derive(
    const LrWeights& weights,
    const std::vector<std::uint32_t>& snp_to_weight_col) const {
  LrMatrix matrix(rows_, cols_);
  if (rows_ == 0 || cols_ == 0) return matrix;
  std::vector<double> when_minor(cols_), when_major(cols_);
  for (std::size_t i = 0; i < cols_; ++i) {
    when_minor[i] = weights.when_minor[snp_to_weight_col[i]];
    when_major[i] = weights.when_major[snp_to_weight_col[i]];
  }
  // The basis-times-weights product b*wm + (1-b)*wM with b in {0, 1} is a
  // select between the two exact weight values, so every cell equals the
  // build_lr_matrix cell bit for bit — true for every kernel backend, since
  // the SIMD variants blend the same two doubles instead of computing.
  const genome::kernels::KernelOps& ops = genome::kernels::kernel_ops();
  double* out = matrix.values().data();
  const std::uint8_t* ind = indicator_.data();
  for (std::size_t n = 0; n < rows_; ++n) {
    ops.select_weights(ind + n * cols_, when_minor.data(), when_major.data(),
                       cols_, out + n * cols_);
  }
  return matrix;
}

LrMatrix LrBasis::derive(const LrWeights& weights) const {
  std::vector<std::uint32_t> identity(cols_);
  std::iota(identity.begin(), identity.end(), 0u);
  return derive(weights, identity);
}

std::size_t LrBasis::derive_update(const LrWeights& prev,
                                   const LrWeights& next,
                                   LrMatrix& matrix) const {
  if (matrix.rows() != rows_ || matrix.cols() != cols_) {
    throw std::invalid_argument("derive_update: matrix shape mismatch");
  }
  std::vector<std::uint32_t> changed;
  for (std::size_t i = 0; i < cols_; ++i) {
    if (prev.when_minor[i] != next.when_minor[i] ||
        prev.when_major[i] != next.when_major[i]) {
      changed.push_back(static_cast<std::uint32_t>(i));
    }
  }
  if (changed.empty()) return 0;
  // Every changed cell is the same two-way select derive() would emit;
  // rows stay the hot loop so writes walk each row-major row once.
  double* out = matrix.values().data();
  const std::uint8_t* ind = indicator_.data();
  for (std::size_t n = 0; n < rows_; ++n) {
    double* row_out = out + n * cols_;
    const std::uint8_t* row_ind = ind + n * cols_;
    for (std::uint32_t i : changed) {
      row_out[i] = row_ind[i] != 0 ? next.when_minor[i] : next.when_major[i];
    }
  }
  return changed.size();
}

double detection_power(const std::vector<double>& case_scores,
                       const std::vector<double>& reference_scores,
                       double false_positive_rate, double* threshold_out,
                       std::vector<double>& scratch) {
  if (reference_scores.empty() || case_scores.empty()) {
    if (threshold_out != nullptr) *threshold_out = 0.0;
    return 0.0;
  }
  // Threshold: smallest reference score such that the fraction of reference
  // scores strictly above it is <= fpr, i.e. the (1-fpr) empirical quantile.
  // nth_element instead of a full sort: this runs once per candidate SNP in
  // the selection loop and dominates the LR phase at paper scale.
  scratch.assign(reference_scores.begin(), reference_scores.end());
  const std::size_t n_ref = scratch.size();
  std::size_t idx = static_cast<std::size_t>(
      std::ceil((1.0 - false_positive_rate) * static_cast<double>(n_ref)));
  if (idx == 0) idx = 1;
  if (idx > n_ref) idx = n_ref;
  std::nth_element(scratch.begin(), scratch.begin() + (idx - 1),
                   scratch.end());
  const double threshold = scratch[idx - 1];
  if (threshold_out != nullptr) *threshold_out = threshold;

  std::size_t detected = 0;
  for (double score : case_scores) {
    if (score > threshold) ++detected;
  }
  return static_cast<double>(detected) /
         static_cast<double>(case_scores.size());
}

double detection_power(const std::vector<double>& case_scores,
                       const std::vector<double>& reference_scores,
                       double false_positive_rate, double* threshold_out) {
  std::vector<double> scratch;
  return detection_power(case_scores, reference_scores, false_positive_rate,
                         threshold_out, scratch);
}

namespace {

/// Column block width of the gap pass: wide enough that each task reads
/// contiguous row segments, small enough to spread blocks across the pool.
constexpr std::size_t kGapColumnBlock = 64;

/// Minimum rows before per-candidate score updates are worth fanning out.
constexpr std::size_t kParallelRowThreshold = 4096;

/// Per-column mean over the rows of `m`, accumulated in ascending row order
/// within each column (a single row-major sweep per column block), so the
/// result is bit-identical to the naive column-major pass regardless of how
/// many blocks run concurrently.
void column_means_into(const LrMatrix& m, std::size_t col_begin,
                       std::size_t col_end, std::vector<double>& means) {
  const std::size_t width = col_end - col_begin;
  std::vector<double> sums(width, 0.0);
  const double* values = m.values().data();
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const double* row = values + r * m.cols() + col_begin;
    for (std::size_t i = 0; i < width; ++i) sums[i] += row[i];
  }
  const double denom = m.rows() > 0 ? static_cast<double>(m.rows()) : 1.0;
  for (std::size_t i = 0; i < width; ++i) {
    means[col_begin + i] = sums[i] / denom;
  }
}

/// Adds (sign = +1) or rolls back (sign = -1) column `candidate` of `m` into
/// the per-individual running scores. Rows are independent, so splitting
/// them across the pool cannot change any result bit.
void apply_candidate(const LrMatrix& m, std::uint32_t candidate, double sign,
                     std::vector<double>& sums, common::ThreadPool* pool) {
  const std::size_t rows = m.rows();
  auto run = [&](std::size_t begin, std::size_t end) {
    for (std::size_t r = begin; r < end; ++r) {
      sums[r] += sign * m.at(r, candidate);
    }
  };
  if (pool == nullptr || rows < kParallelRowThreshold) {
    run(0, rows);
    return;
  }
  const std::size_t chunks =
      std::min(pool->size(), (rows + kParallelRowThreshold - 1) /
                                 kParallelRowThreshold);
  const std::size_t chunk_rows = (rows + chunks - 1) / chunks;
  pool->parallel_for(chunks, [&](std::size_t chunk) {
    const std::size_t begin = chunk * chunk_rows;
    run(begin, std::min(rows, begin + chunk_rows));
  });
}

}  // namespace

LrSelectionResult select_safe_snps(const LrMatrix& case_lr,
                                   const LrMatrix& reference_lr,
                                   const LrSelectionParams& params,
                                   common::ThreadPool* pool) {
  if (case_lr.cols() != reference_lr.cols()) {
    throw std::invalid_argument("select_safe_snps: column count mismatch");
  }
  const std::size_t cols = case_lr.cols();
  LrSelectionResult result;
  if (cols == 0) return result;

  // Identifying power of each SNP alone: the gap between the mean case and
  // mean reference LR contribution. Low-gap SNPs are admitted first.
  std::vector<double> case_means(cols, 0.0);
  std::vector<double> ref_means(cols, 0.0);
  const std::size_t blocks = (cols + kGapColumnBlock - 1) / kGapColumnBlock;
  auto gap_block = [&](std::size_t block) {
    const std::size_t begin = block * kGapColumnBlock;
    const std::size_t end = std::min(cols, begin + kGapColumnBlock);
    column_means_into(case_lr, begin, end, case_means);
    column_means_into(reference_lr, begin, end, ref_means);
  };
  if (pool != nullptr && blocks > 1) {
    pool->parallel_for(blocks, gap_block);
  } else {
    for (std::size_t block = 0; block < blocks; ++block) gap_block(block);
  }
  std::vector<double> gap(cols, 0.0);
  for (std::size_t c = 0; c < cols; ++c) {
    gap[c] = case_means[c] - ref_means[c];
  }
  std::vector<std::uint32_t> order(cols);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&gap](std::uint32_t a, std::uint32_t b) {
                     if (gap[a] != gap[b]) return gap[a] < gap[b];
                     return a < b;  // deterministic tie-break
                   });

  // Greedy forward admission with incremental per-individual sums.
  std::vector<double> case_sums(case_lr.rows(), 0.0);
  std::vector<double> ref_sums(reference_lr.rows(), 0.0);
  std::vector<double> quantile_scratch;
  quantile_scratch.reserve(reference_lr.rows());
  std::vector<std::uint32_t> kept;
  double current_power = 0.0;
  double current_threshold = 0.0;

  for (std::uint32_t candidate : order) {
    apply_candidate(case_lr, candidate, 1.0, case_sums, pool);
    apply_candidate(reference_lr, candidate, 1.0, ref_sums, pool);
    double threshold = 0.0;
    const double power =
        detection_power(case_sums, ref_sums, params.false_positive_rate,
                        &threshold, quantile_scratch);
    if (power <= params.power_threshold) {
      kept.push_back(candidate);
      current_power = power;
      current_threshold = threshold;
    } else {
      // Roll the candidate back and try the next one.
      apply_candidate(case_lr, candidate, -1.0, case_sums, pool);
      apply_candidate(reference_lr, candidate, -1.0, ref_sums, pool);
    }
  }

  std::sort(kept.begin(), kept.end());
  result.safe_columns = std::move(kept);
  result.final_power = current_power;
  result.final_threshold = current_threshold;
  return result;
}

}  // namespace gendpr::stats
