// Likelihood-ratio membership test (SecureGenome-style) and the safe-subset
// selection of the paper's Phase 3.
//
// The per-individual LR over a SNP set L (paper Eq. 1):
//   LR_n = sum_l [ x_{n,l} log(p̂_l/p_l) + (1 - x_{n,l}) log((1-p̂_l)/(1-p_l)) ]
// where p̂_l is the case frequency and p_l the reference frequency. The
// adversary scores a victim genome and flags membership when LR exceeds a
// threshold calibrated on the reference population at a tolerated
// false-positive rate. A SNP set is *safe* when the adversary's detection
// power (fraction of true case members flagged) stays below the configured
// threshold (defaults mirror §7: FPR 0.1, power limit 0.9).
//
// `LrMatrix` is the exchanged artifact (one row per individual, one column
// per SNP); GDOs build local matrices from *global* frequencies, the leader
// concatenates them. `select_safe_snps` runs the empirical subset search:
// SNPs are admitted in ascending order of identifying power and a candidate
// is kept only if the resulting power stays below the limit.
#pragma once

#include <cstdint>
#include <vector>

#include "common/thread_pool.hpp"
#include "genome/bitplanes.hpp"
#include "genome/genotype.hpp"

namespace gendpr::stats {

/// Dense row-major matrix of per-individual, per-SNP LR contributions.
class LrMatrix {
 public:
  LrMatrix() = default;
  LrMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), values_(rows * cols, 0.0) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double at(std::size_t row, std::size_t col) const noexcept {
    return values_[row * cols_ + col];
  }
  double& at(std::size_t row, std::size_t col) noexcept {
    return values_[row * cols_ + col];
  }

  const std::vector<double>& values() const noexcept { return values_; }
  std::vector<double>& values() noexcept { return values_; }

  /// Appends the rows of `other` (must have the same column count).
  void append_rows(const LrMatrix& other);

  bool operator==(const LrMatrix&) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> values_;
};

/// Per-SNP LR weights for x=1 and x=0 given case and reference frequencies.
struct LrWeights {
  std::vector<double> when_minor;  // log(p̂/p)
  std::vector<double> when_major;  // log((1-p̂)/(1-p))
};

/// Computes the weights, clamping frequencies into [freq_floor, 1-freq_floor]
/// so rare/fixed SNPs do not produce infinities.
LrWeights lr_weights(const std::vector<double>& case_freq,
                     const std::vector<double>& reference_freq,
                     double freq_floor = 1e-6);

/// Builds the LR matrix of `genotypes` restricted to `snps`, using weights
/// computed from global frequencies (paper Fig. 4 step 2).
LrMatrix build_lr_matrix(const genome::GenotypeMatrix& genotypes,
                         const std::vector<std::uint32_t>& snps,
                         const LrWeights& weights,
                         const std::vector<std::uint32_t>& snp_to_weight_col);

/// Convenience overload when `snps` indexes the weight vectors directly
/// (weight column i corresponds to snps[i]).
LrMatrix build_lr_matrix(const genome::GenotypeMatrix& genotypes,
                         const std::vector<std::uint32_t>& snps,
                         const LrWeights& weights);

/// Word-parallel LR-matrix fill from SNP-major bit planes: reads one plane
/// word per 64 individuals and writes rows contiguously, instead of one
/// get() call per matrix cell. Output is bit-identical to the scalar build
/// (each cell is one of the same two weight values).
LrMatrix build_lr_matrix(const genome::BitPlanes& planes,
                         const std::vector<std::uint32_t>& snps,
                         const LrWeights& weights,
                         const std::vector<std::uint32_t>& snp_to_weight_col);

LrMatrix build_lr_matrix(const genome::BitPlanes& planes,
                         const std::vector<std::uint32_t>& snps,
                         const LrWeights& weights);

/// Genotype-fixed factor of the LR matrix, built once per SNP set.
///
/// Every LR-matrix cell is linear in the per-SNP weights over an indicator
/// that depends only on the genotypes:
///   cell(n, i) = b_{n,i} * when_minor[i] + (1 - b_{n,i}) * when_major[i]
/// with b in {0, 1}. The collusion-tolerant mode (§5.6) evaluates the same
/// genotypes under C(G, G-f) different weight vectors, so expanding the
/// indicator once and deriving each combination's matrix as a cheap
/// basis-times-weights product replaces C full bit-plane rebuilds with one
/// build plus C sweeps. Because b is exactly 0 or 1, the product selects one
/// of the two weight values verbatim — `derive` is bit-identical to
/// `build_lr_matrix` over the same planes and SNP set (property-tested).
class LrBasis {
 public:
  LrBasis() = default;
  /// Expands the 0/1 indicator of `planes` restricted to `snps` (row-major,
  /// one byte per cell), reusing the word-gather sweep of the bit-plane
  /// matrix build.
  LrBasis(const genome::BitPlanes& planes,
          const std::vector<std::uint32_t>& snps);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  /// Bytes held by the expanded indicator (EPC accounting).
  std::size_t storage_bytes() const noexcept { return indicator_.size(); }

  /// Derives the LR matrix for one weight vector: one select per cell.
  /// `snp_to_weight_col[i]` maps basis column i to its weight column.
  LrMatrix derive(const LrWeights& weights,
                  const std::vector<std::uint32_t>& snp_to_weight_col) const;

  /// Identity-mapped overload (weight column i corresponds to basis col i).
  LrMatrix derive(const LrWeights& weights) const;

  /// Delta-evaluation for the intersection-aware combination sweep:
  /// `matrix` must be this basis's derive() result for `prev` (identity
  /// mapping); it is updated in place to derive(next) by recomputing only
  /// the columns whose (when_minor, when_major) pair changed — a cell's
  /// value depends on nothing else, so untouched columns are already
  /// bit-identical to a fresh derivation. Returns how many columns were
  /// recomputed.
  std::size_t derive_update(const LrWeights& prev, const LrWeights& next,
                            LrMatrix& matrix) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint8_t> indicator_;  // row-major, values in {0, 1}
};

struct LrSelectionParams {
  double false_positive_rate = 0.1;  // beta in §7
  double power_threshold = 0.9;      // identification-power limit in §7
};

struct LrSelectionResult {
  /// Column indices (into the LR matrices) retained as safe.
  std::vector<std::uint32_t> safe_columns;
  /// Adversary detection power over the final safe set.
  double final_power = 0.0;
  /// LR threshold calibrated on the reference at the configured FPR.
  double final_threshold = 0.0;
};

/// Empirical safe-subset search over merged case and reference LR matrices
/// (they must have equal column counts). Deterministic: depends only on the
/// multiset of rows, so any GDO concatenation order yields the same result.
/// `pool` (optional) parallelises the per-column gap pass and the
/// per-candidate score updates; every per-column and per-row accumulation
/// keeps its serial order, so the selection is identical with or without a
/// pool. Must not be the pool currently running this call (no nesting).
LrSelectionResult select_safe_snps(const LrMatrix& case_lr,
                                   const LrMatrix& reference_lr,
                                   const LrSelectionParams& params,
                                   common::ThreadPool* pool = nullptr);

/// Detection power of the adversary for fixed per-individual LR scores:
/// threshold = (1 - fpr) quantile of reference scores; power = fraction of
/// case scores strictly above it. Exposed for tests and the membership
/// attack example.
double detection_power(const std::vector<double>& case_scores,
                       const std::vector<double>& reference_scores,
                       double false_positive_rate, double* threshold_out);

/// Same, but reuses `scratch` for the quantile's partial sort instead of
/// allocating a reference-sized vector per call - the allocation dominated
/// the greedy selection loop, which calls this once per candidate SNP.
double detection_power(const std::vector<double>& case_scores,
                       const std::vector<double>& reference_scores,
                       double false_positive_rate, double* threshold_out,
                       std::vector<double>& scratch);

}  // namespace gendpr::stats
