// Pairwise contingency tables (paper Table 2b) and the r^2 linkage
// disequilibrium statistic in the paper's own formulation:
//
//   r^2 = (C00*C11 - C01*C10)^2 / (C0-*C1-*C-0*C-1)
//
// where C_ab counts individuals carrying allele a at the first SNP and b at
// the second. For binary dominant-encoded genotypes this is algebraically
// identical to the moments-based squared Pearson correlation in ld.hpp
// (tests/stats/contingency_test.cpp proves the equivalence numerically);
// GenDPR's wire protocol ships the additive moments because they aggregate
// across GDOs, while this form exists for direct/centralized use and for
// readers following the paper's notation.
#pragma once

#include <cstdint>

#include "genome/genotype.hpp"

namespace gendpr::stats {

/// Pairwise table of two SNPs over one population (paper Table 2b).
struct PairwiseTable {
  std::uint64_t c00 = 0;  // major/major
  std::uint64_t c01 = 0;  // major at l1, minor at l2
  std::uint64_t c10 = 0;  // minor at l1, major at l2
  std::uint64_t c11 = 0;  // minor/minor

  std::uint64_t row0() const noexcept { return c00 + c01; }  // C_0-
  std::uint64_t row1() const noexcept { return c10 + c11; }  // C_1-
  std::uint64_t col0() const noexcept { return c00 + c10; }  // C_-0
  std::uint64_t col1() const noexcept { return c01 + c11; }  // C_-1
  std::uint64_t total() const noexcept { return c00 + c01 + c10 + c11; }

  PairwiseTable& operator+=(const PairwiseTable& other) noexcept {
    c00 += other.c00;
    c01 += other.c01;
    c10 += other.c10;
    c11 += other.c11;
    return *this;
  }
};

/// Builds the pairwise table of (snp_a, snp_b) over all individuals.
PairwiseTable pairwise_table(const genome::GenotypeMatrix& genotypes,
                             std::uint32_t snp_a, std::uint32_t snp_b);

/// The paper's r^2 statistic; 0 for degenerate margins.
double pairwise_r2(const PairwiseTable& table);

/// P-value via the chi-squared approximation (n * r^2, 1 dof), matching
/// ld_p_value for the same population.
double pairwise_p_value(const PairwiseTable& table);

}  // namespace gendpr::stats
