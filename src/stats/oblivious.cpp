#include "stats/oblivious.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

namespace gendpr::stats {

double oblivious_select(std::uint64_t mask, double a, double b) noexcept {
  // mask in {0,1} -> all-zeros or all-ones; select via bitwise mix.
  const std::uint64_t full = ~(mask - 1);  // 1 -> 0xFF..FF, 0 -> 0x00..00
  std::uint64_t a_bits;
  std::uint64_t b_bits;
  std::memcpy(&a_bits, &a, sizeof(a_bits));
  std::memcpy(&b_bits, &b, sizeof(b_bits));
  const std::uint64_t out_bits = (a_bits & full) | (b_bits & ~full);
  double out;
  std::memcpy(&out, &out_bits, sizeof(out));
  return out;
}

namespace {

/// Branchless compare-exchange: after the call data[i] <= data[j].
void compare_exchange(double* data, std::size_t i, std::size_t j) noexcept {
  const double a = data[i];
  const double b = data[j];
  const std::uint64_t swap_mask = a > b ? 1u : 0u;  // compiles to a setcc
  data[i] = oblivious_select(swap_mask, b, a);
  data[j] = oblivious_select(swap_mask, a, b);
}

}  // namespace

void oblivious_sort(std::span<double> data) {
  const std::size_t n = data.size();
  if (n < 2) return;
  // Pad virtually to the next power of two with +inf sentinels by sorting a
  // scratch buffer; the network's sequence depends only on the padded size.
  const std::size_t padded = std::bit_ceil(n);
  std::vector<double> scratch(padded, std::numeric_limits<double>::infinity());
  std::copy(data.begin(), data.end(), scratch.begin());

  for (std::size_t k = 2; k <= padded; k <<= 1) {
    for (std::size_t j = k >> 1; j > 0; j >>= 1) {
      for (std::size_t i = 0; i < padded; ++i) {
        const std::size_t partner = i ^ j;
        if (partner > i) {
          if ((i & k) == 0) {
            compare_exchange(scratch.data(), i, partner);
          } else {
            compare_exchange(scratch.data(), partner, i);
          }
        }
      }
    }
  }
  std::copy(scratch.begin(), scratch.begin() + n, data.begin());
}

LrMatrix oblivious_build_lr_matrix(const genome::GenotypeMatrix& genotypes,
                                   const std::vector<std::uint32_t>& snps,
                                   const LrWeights& weights) {
  LrMatrix matrix(genotypes.num_individuals(), snps.size());
  for (std::size_t n = 0; n < genotypes.num_individuals(); ++n) {
    for (std::size_t i = 0; i < snps.size(); ++i) {
      // Arithmetic select: no branch, uniform access pattern.
      const double g = genotypes.get(n, snps[i]) ? 1.0 : 0.0;
      matrix.at(n, i) =
          weights.when_major[i] +
          g * (weights.when_minor[i] - weights.when_major[i]);
    }
  }
  return matrix;
}

double oblivious_detection_power(const std::vector<double>& case_scores,
                                 const std::vector<double>& reference_scores,
                                 double false_positive_rate,
                                 double* threshold_out) {
  if (reference_scores.empty() || case_scores.empty()) {
    if (threshold_out != nullptr) *threshold_out = 0.0;
    return 0.0;
  }
  std::vector<double> sorted_ref = reference_scores;
  oblivious_sort(sorted_ref);
  const std::size_t n_ref = sorted_ref.size();
  std::size_t idx = static_cast<std::size_t>(
      std::ceil((1.0 - false_positive_rate) * static_cast<double>(n_ref)));
  if (idx == 0) idx = 1;
  if (idx > n_ref) idx = n_ref;
  const double threshold = sorted_ref[idx - 1];
  if (threshold_out != nullptr) *threshold_out = threshold;

  // Branchless accumulation of (score > threshold).
  std::uint64_t detected = 0;
  for (double score : case_scores) {
    detected += score > threshold ? 1u : 0u;  // setcc, no data-dependent jump
  }
  return static_cast<double>(detected) /
         static_cast<double>(case_scores.size());
}

}  // namespace gendpr::stats
