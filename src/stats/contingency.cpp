#include "stats/contingency.hpp"

#include "stats/special.hpp"

namespace gendpr::stats {

PairwiseTable pairwise_table(const genome::GenotypeMatrix& genotypes,
                             std::uint32_t snp_a, std::uint32_t snp_b) {
  PairwiseTable table;
  for (std::size_t n = 0; n < genotypes.num_individuals(); ++n) {
    const bool a = genotypes.get(n, snp_a);
    const bool b = genotypes.get(n, snp_b);
    if (!a && !b) {
      ++table.c00;
    } else if (!a && b) {
      ++table.c01;
    } else if (a && !b) {
      ++table.c10;
    } else {
      ++table.c11;
    }
  }
  return table;
}

double pairwise_r2(const PairwiseTable& table) {
  const double row0 = static_cast<double>(table.row0());
  const double row1 = static_cast<double>(table.row1());
  const double col0 = static_cast<double>(table.col0());
  const double col1 = static_cast<double>(table.col1());
  if (row0 == 0.0 || row1 == 0.0 || col0 == 0.0 || col1 == 0.0) return 0.0;
  const double det = static_cast<double>(table.c00) *
                         static_cast<double>(table.c11) -
                     static_cast<double>(table.c01) *
                         static_cast<double>(table.c10);
  return det * det / (row0 * row1 * col0 * col1);
}

double pairwise_p_value(const PairwiseTable& table) {
  const std::uint64_t n = table.total();
  if (n == 0) return 1.0;
  return chi2_sf(static_cast<double>(n) * pairwise_r2(table), 1.0);
}

}  // namespace gendpr::stats
