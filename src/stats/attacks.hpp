// Membership-inference attack statistics from the literature GenDPR builds
// on (§2.2 / §3.2):
//
//   * Homer et al. 2008 - the original distance-based statistic
//     D(Y) = sum_l |y_l - p_ref,l| - |y_l - p_case,l|,
//     where y_l is the victim's allele value and p the published
//     frequencies. Positive D suggests membership in the case pool.
//   * Sankararaman et al. 2009 (SecureGenome) - the likelihood-ratio test
//     (stats/lr_test.hpp), shown there to dominate Homer's statistic. The
//     comparison bench (bench_ablation_attacks) reproduces that dominance,
//     which is why GenDPR assesses releases with the LR-test.
//
// These are attacker-side tools: examples and benches use them to measure
// how exposed a release is; the protocol itself only needs lr_test.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "genome/genotype.hpp"

namespace gendpr::stats {

/// Homer's D statistic for one individual over the released SNPs.
/// `genotype[i]` is the victim's binary allele value at released SNP i;
/// `case_freq` / `reference_freq` are the published frequencies.
double homer_statistic(const std::vector<std::uint8_t>& genotype,
                       const std::vector<double>& case_freq,
                       const std::vector<double>& reference_freq);

/// Homer scores for every individual of `population` over `released` SNPs.
std::vector<double> homer_scores(const genome::GenotypeMatrix& population,
                                 const std::vector<std::uint32_t>& released,
                                 const std::vector<double>& case_freq,
                                 const std::vector<double>& reference_freq);

/// LR scores (Eq. 1 totals) for every individual of `population`; the
/// LR-test analogue of homer_scores, for power comparisons.
std::vector<double> lr_scores(const genome::GenotypeMatrix& population,
                              const std::vector<std::uint32_t>& released,
                              const std::vector<double>& case_freq,
                              const std::vector<double>& reference_freq);

/// End-to-end attack evaluation: detection power at `false_positive_rate`
/// of a score-based membership attack, given scores of true members (case)
/// and non-members (reference).
struct AttackPower {
  double power = 0.0;      // true-positive rate at the calibrated threshold
  double threshold = 0.0;  // (1 - fpr) quantile of non-member scores
};
AttackPower evaluate_attack(const std::vector<double>& member_scores,
                            const std::vector<double>& nonmember_scores,
                            double false_positive_rate);

}  // namespace gendpr::stats
