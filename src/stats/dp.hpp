// Differential-privacy utilities for the hybrid release of §5.5.
//
// The paper sketches a hybrid scheme: statistics over L_safe are released
// noise-free, while SNPs in L_des \ L_safe can still be published with
// DP perturbation. This module provides the Laplace mechanism over count
// vectors and the epsilon accounting for that example.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace gendpr::stats {

/// One Laplace(0, scale) deviate.
double laplace_noise(common::Rng& rng, double scale);

/// Laplace mechanism over a count vector. `sensitivity` is the L1
/// sensitivity of each count (1 for presence/absence of one individual's
/// allele); noise scale is sensitivity / epsilon.
std::vector<double> dp_perturb_counts(const std::vector<std::uint32_t>& counts,
                                      double epsilon, double sensitivity,
                                      common::Rng& rng);

/// Expected absolute error of the mechanism (scale = sensitivity/epsilon;
/// E|Laplace(0,b)| = b). Useful for utility reporting in the example.
double expected_absolute_error(double epsilon, double sensitivity);

}  // namespace gendpr::stats
