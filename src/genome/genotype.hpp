// Genotype storage.
//
// A GWAS over L SNPs encodes each genome as one binary value per SNP
// (paper §3.1, Table 1): 0 = only the major allele present, 1 = the minor
// allele present. GenotypeMatrix stores N individuals x L SNPs bit-packed
// (8 genotypes/byte), which keeps the simulated enclave working set small -
// one of the design points the Table 3 reproduction and the packing ablation
// bench measure. An unpacked byte-per-genotype variant exists for the
// ablation comparison.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"

namespace gendpr::genome {

/// Bit-packed N x L matrix of binary genotypes. Row-major: each individual's
/// genotypes are contiguous, so per-individual scans (LR-test) and per-SNP
/// columns (allele counts) are both cheap.
class GenotypeMatrix {
 public:
  GenotypeMatrix() = default;
  GenotypeMatrix(std::size_t num_individuals, std::size_t num_snps);

  std::size_t num_individuals() const noexcept { return num_individuals_; }
  std::size_t num_snps() const noexcept { return num_snps_; }

  bool get(std::size_t individual, std::size_t snp) const noexcept;
  void set(std::size_t individual, std::size_t snp, bool minor) noexcept;

  /// Count of minor alleles at `snp` over all individuals.
  std::uint32_t allele_count(std::size_t snp) const noexcept;

  /// Minor-allele counts for every SNP (the caseLocalCounts vector of §5.2).
  std::vector<std::uint32_t> allele_counts() const;

  /// Minor-allele counts restricted to the SNP subset `snps`.
  std::vector<std::uint32_t> allele_counts(
      const std::vector<std::uint32_t>& snps) const;

  /// Selects rows [begin, end) into a new matrix (GDO partitioning).
  GenotypeMatrix slice_rows(std::size_t begin, std::size_t end) const;

  /// Raw packed-row access for word-parallel consumers (BitPlanes build).
  /// Bits past num_snps() in the last byte of a row are always zero.
  std::size_t row_stride() const noexcept { return row_stride_; }
  const std::uint8_t* row_data(std::size_t individual) const noexcept {
    return bits_.data() + individual * row_stride_;
  }

  /// Heap bytes used by the packed storage (EPC accounting).
  std::size_t storage_bytes() const noexcept { return bits_.size(); }

  bool operator==(const GenotypeMatrix&) const = default;

 private:
  std::size_t index_of(std::size_t individual, std::size_t snp) const noexcept {
    return individual * row_stride_ + snp / 8;
  }

  std::size_t num_individuals_ = 0;
  std::size_t num_snps_ = 0;
  std::size_t row_stride_ = 0;  // bytes per row
  common::Bytes bits_;
};

/// Unpacked (1 byte/genotype) storage; exists only for the packing ablation.
class UnpackedGenotypeMatrix {
 public:
  UnpackedGenotypeMatrix(std::size_t num_individuals, std::size_t num_snps)
      : num_individuals_(num_individuals),
        num_snps_(num_snps),
        values_(num_individuals * num_snps, 0) {}

  bool get(std::size_t individual, std::size_t snp) const noexcept {
    return values_[individual * num_snps_ + snp] != 0;
  }
  void set(std::size_t individual, std::size_t snp, bool minor) noexcept {
    values_[individual * num_snps_ + snp] = minor ? 1 : 0;
  }
  std::uint32_t allele_count(std::size_t snp) const noexcept {
    std::uint32_t count = 0;
    for (std::size_t n = 0; n < num_individuals_; ++n) {
      count += values_[n * num_snps_ + snp];
    }
    return count;
  }
  std::size_t storage_bytes() const noexcept { return values_.size(); }

 private:
  std::size_t num_individuals_;
  std::size_t num_snps_;
  std::vector<std::uint8_t> values_;
};

}  // namespace gendpr::genome
