// VCF-lite: a minimal text container for binary-encoded GWAS genotypes,
// plus signed dataset manifests.
//
// Real deployments feed VCF files to the pipeline; the paper assumes "the
// trusted part of GenDPR is able to detect whether a federation member has
// tampered with the genome data ... by checking the authenticity of signed
// VCF files" (§4). This module provides (a) a self-describing text format
// for the binary genotype matrices and (b) an HMAC-signed manifest binding
// file content to a dataset name, which enclaves verify before admitting a
// local dataset into a study.
//
// Format:
//   ##gendpr-vcf-lite v1
//   ##individuals=<N>
//   ##snps=<L>
//   #ids <id_0> <id_1> ... <id_{L-1}>
//   <N lines of L characters, each '0' or '1'>
#pragma once

#include <array>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "crypto/sha256.hpp"
#include "genome/genotype.hpp"

namespace gendpr::genome {

struct VcfLite {
  std::vector<std::string> snp_ids;
  GenotypeMatrix genotypes;
};

/// Serializes to the text format.
std::string write_vcf_lite(const VcfLite& vcf);

/// Parses the text format; rejects malformed headers, inconsistent
/// dimensions, and non-binary genotype characters.
common::Result<VcfLite> read_vcf_lite(const std::string& text);

/// Convenience file wrappers.
common::Status write_vcf_lite_file(const std::string& path,
                                   const VcfLite& vcf);
common::Result<VcfLite> read_vcf_lite_file(const std::string& path);

/// Signed dataset manifest: binds a dataset name and content digest under a
/// GDO signing key registered with the federation.
struct DatasetManifest {
  std::string dataset_name;
  std::uint64_t num_individuals = 0;
  std::uint64_t num_snps = 0;
  crypto::Sha256Digest content_digest{};
  crypto::Sha256Digest signature{};
};

/// Computes the digest of the serialized VCF content.
crypto::Sha256Digest digest_vcf(const std::string& vcf_text);

/// Issues a manifest for `vcf_text` under `signing_key`.
DatasetManifest sign_dataset(const std::string& dataset_name,
                             const std::string& vcf_text,
                             common::BytesView signing_key);

/// Verifies manifest signature and that it matches `vcf_text`.
common::Status verify_dataset(const DatasetManifest& manifest,
                              const std::string& vcf_text,
                              common::BytesView signing_key);

}  // namespace gendpr::genome
