// Fixed-width SNP tiling for the pipelined study engine.
//
// A TilePlan partitions an ordered SNP (or retained-column) range [0, total)
// into contiguous tiles of a fixed width; the last tile takes the remainder.
// Tiles are always whole-SNP ranges, and BitPlanes stores each SNP's plane
// word-aligned and plane-contiguous, so any tile is a contiguous word range
// of the packed planes — slicing never repacks (BitPlanes::tile).
//
// Width 0 means "no tiling": one tile spanning everything, which makes the
// monolithic protocol the single-tile special case of the tiled engine and
// is why tiled and monolithic runs are bit-identical by construction — the
// assembled per-phase state never depends on the tile boundaries, only the
// message chunking and transient working-set sizes do.
#pragma once

#include <cstdint>
#include <vector>

namespace gendpr::genome {

class TilePlan {
 public:
  TilePlan() = default;

  /// Plan over `total` items with the requested width; width 0 (or >= total)
  /// collapses to a single tile. total == 0 yields an *empty* plan (zero
  /// tiles): there is nothing to stream, so the phase protocols exchange no
  /// records at all rather than a phantom 1-wide tile over nothing.
  static TilePlan over(std::uint32_t total, std::uint32_t requested_width);

  std::uint32_t total() const noexcept { return total_; }
  /// Effective tile width (>= 1 unless the plan is empty).
  std::uint32_t width() const noexcept { return width_; }
  std::uint32_t tile_count() const noexcept { return tile_count_; }

  std::uint32_t begin(std::uint32_t tile) const noexcept {
    return tile * width_;
  }
  std::uint32_t end(std::uint32_t tile) const noexcept {
    const std::uint64_t e =
        static_cast<std::uint64_t>(tile + 1) * width_;
    return e < total_ ? static_cast<std::uint32_t>(e) : total_;
  }
  std::uint32_t width_of(std::uint32_t tile) const noexcept {
    return end(tile) - begin(tile);
  }

  /// Slice of `values` (one entry per item) covered by `tile`.
  template <typename T>
  std::vector<T> slice(const std::vector<T>& values,
                       std::uint32_t tile) const {
    return std::vector<T>(values.begin() + begin(tile),
                          values.begin() + end(tile));
  }

 private:
  std::uint32_t total_ = 0;
  std::uint32_t width_ = 0;
  std::uint32_t tile_count_ = 0;
};

}  // namespace gendpr::genome
