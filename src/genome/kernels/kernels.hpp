// Runtime-dispatched SIMD kernels for the bit-plane hot loops.
//
// The three loops that dominate wide studies — per-plane popcounts (allele
// counts), AND+popcount over plane pairs (the one non-marginal LD moment),
// and the indicator-select that derives an LR matrix from a genotype-fixed
// basis — are pure integer/select operations, so a vectorized backend can be
// bit-identical to the portable one. This header is the seam: the same
// pattern as crypto's AEAD engine (crypto/gcm_backend.hpp), with each ISA
// variant compiled in its own translation unit under scoped compiler flags
// and a CPUID-probing dispatcher choosing at runtime. The dispatcher, not
// the kernels, checks CPU support; a kernel TU is only entered when its ISA
// is both compiled in and advertised by the executing CPU.
//
// Backend selection: GENDPR_KERNEL_BACKEND=portable|avx2|avx512 overrides;
// an unavailable override falls back to the best available backend, exactly
// like GENDPR_CRYPTO_BACKEND.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gendpr::genome::kernels {

enum class KernelBackend : std::uint8_t {
  portable = 0,  // std::popcount / scalar select, any CPU
  avx2 = 1,      // Harley-Seal CSA + vpshufb nibble-LUT popcount
  avx512 = 2,    // vpopcntq (AVX-512F/BW/VPOPCNTDQ) + masked blends
};

/// Stable lowercase name, exported as the run report's `kernel.backend`.
const char* kernel_backend_name(KernelBackend backend) noexcept;

/// True when the backend is both compiled into this binary and supported by
/// the executing CPU (including OS XSAVE state for YMM/ZMM registers).
bool kernel_backend_available(KernelBackend backend) noexcept;

/// Resolves GENDPR_KERNEL_BACKEND (re-read on every call), falling back to
/// the best available backend when unset, unknown, or unavailable.
KernelBackend default_kernel_backend() noexcept;

/// The dispatch table. All entries are total functions: n == 0 is fine and
/// every backend returns bit-identical results for identical inputs.
struct KernelOps {
  /// Sum of std::popcount over words[0..n).
  std::uint64_t (*popcount_words)(const std::uint64_t* words, std::size_t n);
  /// Sum of std::popcount(a[i] & b[i]) over [0..n).
  std::uint64_t (*and_popcount_words)(const std::uint64_t* a,
                                      const std::uint64_t* b, std::size_t n);
  /// out[i] = indicator[i] != 0 ? when_minor[i] : when_major[i] — the
  /// LrBasis row derivation (a pure select, hence exact).
  void (*select_weights)(const std::uint8_t* indicator,
                         const double* when_minor, const double* when_major,
                         std::size_t n, double* out);
};

/// Ops for an explicit backend; unavailable backends resolve to portable.
/// Test and bench entry point — hot paths use kernel_ops().
const KernelOps& kernel_ops_for(KernelBackend backend) noexcept;

/// Ops for the process-wide active backend. Resolved once on first use
/// (env + CPUID) and cached: the per-call getenv of default_kernel_backend()
/// would be measurable in the per-pair LD loop.
const KernelOps& kernel_ops() noexcept;

/// The backend kernel_ops() resolved to (for metrics labels).
KernelBackend active_kernel_backend() noexcept;

}  // namespace gendpr::genome::kernels
