// Internal contract between the kernel dispatcher and the ISA-specific
// translation units (same shape as crypto/gcm_backend.hpp).
//
// Each SIMD TU is compiled with scoped -m flags, so nothing in this header
// may leak intrinsics; the dispatcher performs all CPU checks and only calls
// an implementation whose *_compiled() probe reports true. When a TU is
// built without its ISA (non-x86 target, compiler too old), it provides
// stubs that are never reached.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gendpr::genome::kernels::detail {

// kernels.cpp — portable reference implementations (the bit-identity oracle).
std::uint64_t popcount_words_portable(const std::uint64_t* words,
                                      std::size_t n);
std::uint64_t and_popcount_words_portable(const std::uint64_t* a,
                                          const std::uint64_t* b,
                                          std::size_t n);
void select_weights_portable(const std::uint8_t* indicator,
                             const double* when_minor,
                             const double* when_major, std::size_t n,
                             double* out);

// kernels_avx2.cpp — Harley-Seal + vpshufb LUT (compiled with -mavx2).
bool avx2_kernels_compiled() noexcept;
std::uint64_t popcount_words_avx2(const std::uint64_t* words, std::size_t n);
std::uint64_t and_popcount_words_avx2(const std::uint64_t* a,
                                      const std::uint64_t* b, std::size_t n);
void select_weights_avx2(const std::uint8_t* indicator,
                         const double* when_minor, const double* when_major,
                         std::size_t n, double* out);

// kernels_avx512.cpp — vpopcntq + masked blends (compiled with
// -mavx512f -mavx512bw -mavx512vpopcntdq).
bool avx512_kernels_compiled() noexcept;
std::uint64_t popcount_words_avx512(const std::uint64_t* words,
                                    std::size_t n);
std::uint64_t and_popcount_words_avx512(const std::uint64_t* a,
                                        const std::uint64_t* b, std::size_t n);
void select_weights_avx512(const std::uint8_t* indicator,
                           const double* when_minor, const double* when_major,
                           std::size_t n, double* out);

}  // namespace gendpr::genome::kernels::detail
