// AVX2 kernels: Harley-Seal carry-save popcount with the vpshufb nibble-LUT
// digit counter, and a blendv-based weight select. Compiled with -mavx2 only
// (see src/genome/CMakeLists.txt); the dispatcher guarantees the CPU and OS
// support YMM state before any function here is called.
#include "genome/kernels/kernels_backend.hpp"

#if defined(__AVX2__)
#include <immintrin.h>

#include <bit>
#include <cstring>
#endif

namespace gendpr::genome::kernels::detail {

#if defined(__AVX2__)

bool avx2_kernels_compiled() noexcept { return true; }

namespace {

/// Per-byte popcount via two vpshufb nibble lookups, horizontally summed
/// into four u64 lanes with vpsadbw (Mula's method).
inline __m256i popcount256(__m256i v) noexcept {
  const __m256i lookup =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                         _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

/// One carry-save adder step: (carry, sum) of three bit-vectors.
inline void csa256(__m256i a, __m256i b, __m256i c, __m256i* carry,
                   __m256i* sum) noexcept {
  const __m256i u = _mm256_xor_si256(a, b);
  *sum = _mm256_xor_si256(u, c);
  *carry = _mm256_or_si256(_mm256_and_si256(a, b), _mm256_and_si256(u, c));
}

inline std::uint64_t reduce_add256(__m256i v) noexcept {
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

/// Harley-Seal over 16 vectors (64 words) per iteration: the CSA tree packs
/// 16 input vectors into one ones/twos/fours/eights/sixteens column-count,
/// so the expensive per-byte popcount runs once per 16 loads. `load(i)`
/// supplies the i-th 256-bit block, which lets the AND-popcount variant fuse
/// the intersection into the loads.
template <typename LoadFn>
inline std::uint64_t harley_seal(std::size_t vectors, LoadFn load) noexcept {
  __m256i total = _mm256_setzero_si256();
  __m256i ones = _mm256_setzero_si256();
  __m256i twos = _mm256_setzero_si256();
  __m256i fours = _mm256_setzero_si256();
  __m256i eights = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 16 <= vectors; i += 16) {
    __m256i twos_a, twos_b, fours_a, fours_b, eights_a, eights_b, sixteens;
    csa256(load(i + 0), load(i + 1), ones, &twos_a, &ones);
    csa256(load(i + 2), load(i + 3), ones, &twos_b, &ones);
    csa256(twos_a, twos_b, twos, &fours_a, &twos);
    csa256(load(i + 4), load(i + 5), ones, &twos_a, &ones);
    csa256(load(i + 6), load(i + 7), ones, &twos_b, &ones);
    csa256(twos_a, twos_b, twos, &fours_b, &twos);
    csa256(fours_a, fours_b, fours, &eights_a, &fours);
    csa256(load(i + 8), load(i + 9), ones, &twos_a, &ones);
    csa256(load(i + 10), load(i + 11), ones, &twos_b, &ones);
    csa256(twos_a, twos_b, twos, &fours_a, &twos);
    csa256(load(i + 12), load(i + 13), ones, &twos_a, &ones);
    csa256(load(i + 14), load(i + 15), ones, &twos_b, &ones);
    csa256(twos_a, twos_b, twos, &fours_b, &twos);
    csa256(fours_a, fours_b, fours, &eights_b, &fours);
    csa256(eights_a, eights_b, eights, &sixteens, &eights);
    total = _mm256_add_epi64(total, popcount256(sixteens));
  }
  total = _mm256_slli_epi64(total, 4);
  total = _mm256_add_epi64(total, _mm256_slli_epi64(popcount256(eights), 3));
  total = _mm256_add_epi64(total, _mm256_slli_epi64(popcount256(fours), 2));
  total = _mm256_add_epi64(total, _mm256_slli_epi64(popcount256(twos), 1));
  total = _mm256_add_epi64(total, popcount256(ones));
  for (; i < vectors; ++i) {
    total = _mm256_add_epi64(total, popcount256(load(i)));
  }
  return reduce_add256(total);
}

}  // namespace

std::uint64_t popcount_words_avx2(const std::uint64_t* words, std::size_t n) {
  const std::size_t vectors = n / 4;
  std::uint64_t count = harley_seal(vectors, [words](std::size_t i) {
    return _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(words + i * 4));
  });
  for (std::size_t i = vectors * 4; i < n; ++i) {
    count += static_cast<std::uint64_t>(std::popcount(words[i]));
  }
  return count;
}

std::uint64_t and_popcount_words_avx2(const std::uint64_t* a,
                                      const std::uint64_t* b, std::size_t n) {
  const std::size_t vectors = n / 4;
  std::uint64_t count = harley_seal(vectors, [a, b](std::size_t i) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i * 4));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i * 4));
    return _mm256_and_si256(va, vb);
  });
  for (std::size_t i = vectors * 4; i < n; ++i) {
    count += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
  }
  return count;
}

void select_weights_avx2(const std::uint8_t* indicator,
                         const double* when_minor, const double* when_major,
                         std::size_t n, double* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    std::uint32_t packed;
    std::memcpy(&packed, indicator + i, sizeof(packed));
    const __m256i bytes = _mm256_cvtepu8_epi64(
        _mm_cvtsi32_si128(static_cast<int>(packed)));
    // 0/1 lanes -> all-zero/all-one masks for the double blend.
    const __m256i mask = _mm256_sub_epi64(_mm256_setzero_si256(), bytes);
    const __m256d minor = _mm256_loadu_pd(when_minor + i);
    const __m256d major = _mm256_loadu_pd(when_major + i);
    _mm256_storeu_pd(
        out + i,
        _mm256_blendv_pd(major, minor, _mm256_castsi256_pd(mask)));
  }
  for (; i < n; ++i) {
    out[i] = indicator[i] != 0 ? when_minor[i] : when_major[i];
  }
}

#else  // !defined(__AVX2__)

// Stubs for builds without AVX2 codegen; the dispatcher never calls them.
bool avx2_kernels_compiled() noexcept { return false; }

std::uint64_t popcount_words_avx2(const std::uint64_t*, std::size_t) {
  return 0;
}

std::uint64_t and_popcount_words_avx2(const std::uint64_t*,
                                      const std::uint64_t*, std::size_t) {
  return 0;
}

void select_weights_avx2(const std::uint8_t*, const double*, const double*,
                         std::size_t, double*) {}

#endif  // defined(__AVX2__)

}  // namespace gendpr::genome::kernels::detail
