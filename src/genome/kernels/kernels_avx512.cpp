// AVX-512 kernels: native vpopcntq per-lane popcounts and mask-register
// weight blends. Compiled with -mavx512f -mavx512bw -mavx512vpopcntdq only
// (see src/genome/CMakeLists.txt); the dispatcher checks ZMM state and the
// VPOPCNTDQ CPUID bit before calling in.
#include "genome/kernels/kernels_backend.hpp"

#if defined(__AVX512F__) && defined(__AVX512BW__) && \
    defined(__AVX512VPOPCNTDQ__)
#define GENDPR_AVX512_KERNELS 1
#include <immintrin.h>

#include <bit>
#include <cstring>
#endif

namespace gendpr::genome::kernels::detail {

#if defined(GENDPR_AVX512_KERNELS)

bool avx512_kernels_compiled() noexcept { return true; }

std::uint64_t popcount_words_avx512(const std::uint64_t* words,
                                    std::size_t n) {
  __m512i total = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v = _mm512_loadu_si512(words + i);
    total = _mm512_add_epi64(total, _mm512_popcnt_epi64(v));
  }
  std::uint64_t count = static_cast<std::uint64_t>(
      _mm512_reduce_add_epi64(total));
  for (; i < n; ++i) {
    count += static_cast<std::uint64_t>(std::popcount(words[i]));
  }
  return count;
}

std::uint64_t and_popcount_words_avx512(const std::uint64_t* a,
                                        const std::uint64_t* b,
                                        std::size_t n) {
  __m512i total = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v =
        _mm512_and_si512(_mm512_loadu_si512(a + i), _mm512_loadu_si512(b + i));
    total = _mm512_add_epi64(total, _mm512_popcnt_epi64(v));
  }
  std::uint64_t count = static_cast<std::uint64_t>(
      _mm512_reduce_add_epi64(total));
  for (; i < n; ++i) {
    count += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
  }
  return count;
}

void select_weights_avx512(const std::uint8_t* indicator,
                           const double* when_minor, const double* when_major,
                           std::size_t n, double* out) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t packed;
    std::memcpy(&packed, indicator + i, sizeof(packed));
    const __m128i bytes =
        _mm_cvtsi64_si128(static_cast<long long>(packed));
    const __mmask8 mask = _mm512_cmpneq_epi64_mask(
        _mm512_cvtepu8_epi64(bytes), _mm512_setzero_si512());
    const __m512d minor = _mm512_loadu_pd(when_minor + i);
    const __m512d major = _mm512_loadu_pd(when_major + i);
    _mm512_storeu_pd(out + i, _mm512_mask_blend_pd(mask, major, minor));
  }
  for (; i < n; ++i) {
    out[i] = indicator[i] != 0 ? when_minor[i] : when_major[i];
  }
}

#else  // !GENDPR_AVX512_KERNELS

// Stubs for builds without AVX-512 codegen; the dispatcher never calls them.
bool avx512_kernels_compiled() noexcept { return false; }

std::uint64_t popcount_words_avx512(const std::uint64_t*, std::size_t) {
  return 0;
}

std::uint64_t and_popcount_words_avx512(const std::uint64_t*,
                                        const std::uint64_t*, std::size_t) {
  return 0;
}

void select_weights_avx512(const std::uint8_t*, const double*, const double*,
                           std::size_t, double*) {}

#endif  // GENDPR_AVX512_KERNELS

}  // namespace gendpr::genome::kernels::detail
