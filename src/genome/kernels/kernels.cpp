#include "genome/kernels/kernels.hpp"

#include <bit>
#include <cstdlib>
#include <cstring>

#include "crypto/cpu_features.hpp"
#include "genome/kernels/kernels_backend.hpp"

namespace gendpr::genome::kernels {

namespace detail {

std::uint64_t popcount_words_portable(const std::uint64_t* words,
                                      std::size_t n) {
  std::uint64_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    count += static_cast<std::uint64_t>(std::popcount(words[i]));
  }
  return count;
}

std::uint64_t and_popcount_words_portable(const std::uint64_t* a,
                                          const std::uint64_t* b,
                                          std::size_t n) {
  std::uint64_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    count += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
  }
  return count;
}

void select_weights_portable(const std::uint8_t* indicator,
                             const double* when_minor,
                             const double* when_major, std::size_t n,
                             double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = indicator[i] != 0 ? when_minor[i] : when_major[i];
  }
}

}  // namespace detail

namespace {

constexpr KernelOps kPortableOps = {
    &detail::popcount_words_portable,
    &detail::and_popcount_words_portable,
    &detail::select_weights_portable,
};

constexpr KernelOps kAvx2Ops = {
    &detail::popcount_words_avx2,
    &detail::and_popcount_words_avx2,
    &detail::select_weights_avx2,
};

constexpr KernelOps kAvx512Ops = {
    &detail::popcount_words_avx512,
    &detail::and_popcount_words_avx512,
    &detail::select_weights_avx512,
};

KernelBackend best_available_backend() noexcept {
  if (kernel_backend_available(KernelBackend::avx512)) {
    return KernelBackend::avx512;
  }
  if (kernel_backend_available(KernelBackend::avx2)) {
    return KernelBackend::avx2;
  }
  return KernelBackend::portable;
}

}  // namespace

const char* kernel_backend_name(KernelBackend backend) noexcept {
  switch (backend) {
    case KernelBackend::avx2:
      return "avx2";
    case KernelBackend::avx512:
      return "avx512";
    case KernelBackend::portable:
      break;
  }
  return "portable";
}

bool kernel_backend_available(KernelBackend backend) noexcept {
  const crypto::CpuFeatures& cpu = crypto::cpu_features();
  switch (backend) {
    case KernelBackend::portable:
      return true;
    case KernelBackend::avx2:
      return detail::avx2_kernels_compiled() && cpu.avx2;
    case KernelBackend::avx512:
      return detail::avx512_kernels_compiled() && cpu.avx512_popcount;
  }
  return false;
}

KernelBackend default_kernel_backend() noexcept {
  const char* env = std::getenv("GENDPR_KERNEL_BACKEND");
  if (env != nullptr) {
    KernelBackend requested = KernelBackend::portable;
    bool known = true;
    if (std::strcmp(env, "portable") == 0) {
      requested = KernelBackend::portable;
    } else if (std::strcmp(env, "avx2") == 0) {
      requested = KernelBackend::avx2;
    } else if (std::strcmp(env, "avx512") == 0) {
      requested = KernelBackend::avx512;
    } else {
      known = false;
    }
    if (known && kernel_backend_available(requested)) return requested;
  }
  return best_available_backend();
}

const KernelOps& kernel_ops_for(KernelBackend backend) noexcept {
  switch (backend) {
    case KernelBackend::avx2:
      if (kernel_backend_available(KernelBackend::avx2)) return kAvx2Ops;
      break;
    case KernelBackend::avx512:
      if (kernel_backend_available(KernelBackend::avx512)) return kAvx512Ops;
      break;
    case KernelBackend::portable:
      break;
  }
  return kPortableOps;
}

KernelBackend active_kernel_backend() noexcept {
  static const KernelBackend backend = default_kernel_backend();
  return backend;
}

const KernelOps& kernel_ops() noexcept {
  static const KernelOps& ops = kernel_ops_for(active_kernel_backend());
  return ops;
}

}  // namespace gendpr::genome::kernels
