#include "genome/genotype.hpp"

#include <bit>

namespace gendpr::genome {

GenotypeMatrix::GenotypeMatrix(std::size_t num_individuals,
                               std::size_t num_snps)
    : num_individuals_(num_individuals),
      num_snps_(num_snps),
      row_stride_((num_snps + 7) / 8),
      bits_(num_individuals * row_stride_, 0) {}

bool GenotypeMatrix::get(std::size_t individual,
                         std::size_t snp) const noexcept {
  return (bits_[index_of(individual, snp)] >> (snp % 8)) & 1;
}

void GenotypeMatrix::set(std::size_t individual, std::size_t snp,
                         bool minor) noexcept {
  std::uint8_t& byte = bits_[index_of(individual, snp)];
  const std::uint8_t mask = static_cast<std::uint8_t>(1u << (snp % 8));
  byte = minor ? static_cast<std::uint8_t>(byte | mask)
               : static_cast<std::uint8_t>(byte & ~mask);
}

std::uint32_t GenotypeMatrix::allele_count(std::size_t snp) const noexcept {
  std::uint32_t count = 0;
  for (std::size_t n = 0; n < num_individuals_; ++n) {
    count += get(n, snp) ? 1 : 0;
  }
  return count;
}

std::vector<std::uint32_t> GenotypeMatrix::allele_counts() const {
  std::vector<std::uint32_t> counts(num_snps_, 0);
  // Row-major sweep with popcount over whole bytes, fixing up the tail.
  for (std::size_t n = 0; n < num_individuals_; ++n) {
    const std::uint8_t* row = bits_.data() + n * row_stride_;
    for (std::size_t l = 0; l < num_snps_; ++l) {
      counts[l] += (row[l / 8] >> (l % 8)) & 1;
    }
  }
  return counts;
}

std::vector<std::uint32_t> GenotypeMatrix::allele_counts(
    const std::vector<std::uint32_t>& snps) const {
  std::vector<std::uint32_t> counts(snps.size(), 0);
  for (std::size_t n = 0; n < num_individuals_; ++n) {
    const std::uint8_t* row = bits_.data() + n * row_stride_;
    for (std::size_t i = 0; i < snps.size(); ++i) {
      const std::uint32_t l = snps[i];
      counts[i] += (row[l / 8] >> (l % 8)) & 1;
    }
  }
  return counts;
}

GenotypeMatrix GenotypeMatrix::slice_rows(std::size_t begin,
                                          std::size_t end) const {
  GenotypeMatrix out(end - begin, num_snps_);
  std::copy(bits_.begin() + begin * row_stride_,
            bits_.begin() + end * row_stride_, out.bits_.begin());
  return out;
}

}  // namespace gendpr::genome
