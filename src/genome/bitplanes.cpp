#include "genome/bitplanes.hpp"

#include <bit>

#include "genome/kernels/kernels.hpp"

namespace gendpr::genome {

BitPlanes::BitPlanes(const GenotypeMatrix& genotypes)
    : num_individuals_(genotypes.num_individuals()),
      num_snps_(genotypes.num_snps()),
      words_per_plane_((genotypes.num_individuals() + 63) / 64),
      words_(genotypes.num_snps() * words_per_plane_, 0),
      counts_(genotypes.num_snps(), 0) {
  // Transpose by scattering each row's set bits into its column planes.
  // Padding bits past num_snps in a row byte are never set by the matrix,
  // so only real SNP indices are touched; individual indices past
  // num_individuals are never written, keeping tail words zero.
  for (std::size_t n = 0; n < num_individuals_; ++n) {
    const std::uint8_t* row = genotypes.row_data(n);
    const std::size_t word = n / 64;
    const std::uint64_t bit = 1ull << (n % 64);
    for (std::size_t j = 0; j < genotypes.row_stride(); ++j) {
      std::uint8_t byte = row[j];
      while (byte != 0) {
        const std::size_t snp = j * 8 +
                                static_cast<std::size_t>(std::countr_zero(byte));
        words_[snp * words_per_plane_ + word] |= bit;
        byte = static_cast<std::uint8_t>(byte & (byte - 1));
      }
    }
  }
  const kernels::KernelOps& ops = kernels::kernel_ops();
  count_prefix_.assign(num_snps_ + 1, 0);
  for (std::size_t l = 0; l < num_snps_; ++l) {
    counts_[l] = static_cast<std::uint32_t>(
        ops.popcount_words(plane(l), words_per_plane_));
    count_prefix_[l + 1] = count_prefix_[l] + counts_[l];
  }
}

std::vector<std::uint32_t> BitPlanes::allele_counts(
    const std::vector<std::uint32_t>& snps) const {
  std::vector<std::uint32_t> counts(snps.size(), 0);
  for (std::size_t i = 0; i < snps.size(); ++i) {
    counts[i] = counts_[snps[i]];
  }
  return counts;
}

std::uint32_t BitPlanes::pair_count(std::size_t snp_a,
                                    std::size_t snp_b) const noexcept {
  return static_cast<std::uint32_t>(kernels::kernel_ops().and_popcount_words(
      plane(snp_a), plane(snp_b), words_per_plane_));
}

}  // namespace gendpr::genome
