// SNP-major bit-plane view of a GenotypeMatrix.
//
// GenotypeMatrix is row-major (one individual's genotypes contiguous), which
// suits per-individual scans but makes the per-SNP-column kernels - LD
// moments, allele counts, LR-matrix fill - walk the matrix one bit at a time.
// BitPlanes is the column-major transpose packed into 64-bit words: plane l
// holds the genotype bit of every individual at SNP l, so a whole-population
// column reduction is a short word sweep (popcount, AND+popcount) instead of
// N accessor calls. Per-SNP popcounts are precomputed once at construction,
// which makes the five binary-genotype LD moments (mu_x = mu_x2 = count_x,
// mu_xy = popcount(plane_x & plane_y)) derivable without touching the words
// at all for the marginal terms.
//
// Built once per provisioned dataset and kept alongside the row-major matrix;
// both layouts are charged against the EPC meter (see DESIGN.md §2.1).
#pragma once

#include <cstdint>
#include <vector>

#include "genome/genotype.hpp"

namespace gendpr::genome {

/// Column-major, 64-bit-word-packed transpose of a GenotypeMatrix with
/// cached per-SNP minor-allele popcounts. Tail bits (individual indices
/// >= num_individuals in the last word of each plane) are always zero.
class BitPlanes {
 public:
  BitPlanes() = default;
  explicit BitPlanes(const GenotypeMatrix& genotypes);

  std::size_t num_individuals() const noexcept { return num_individuals_; }
  std::size_t num_snps() const noexcept { return num_snps_; }
  std::size_t words_per_plane() const noexcept { return words_per_plane_; }

  /// Words of SNP `snp`'s plane (bit n = individual n's genotype).
  const std::uint64_t* plane(std::size_t snp) const noexcept {
    return words_.data() + snp * words_per_plane_;
  }

  /// Cached minor-allele count at `snp` (popcount of its plane).
  std::uint32_t allele_count(std::size_t snp) const noexcept {
    return counts_[snp];
  }

  /// Minor-allele counts for every SNP (precomputed; no per-call sweep).
  const std::vector<std::uint32_t>& allele_counts() const noexcept {
    return counts_;
  }

  /// Minor-allele counts restricted to the SNP subset `snps`.
  std::vector<std::uint32_t> allele_counts(
      const std::vector<std::uint32_t>& snps) const;

  /// popcount(plane_a AND plane_b): individuals carrying the minor allele at
  /// both SNPs - the only non-marginal term of the LD moment struct.
  std::uint32_t pair_count(std::size_t snp_a, std::size_t snp_b) const noexcept;

  bool get(std::size_t individual, std::size_t snp) const noexcept {
    return (plane(snp)[individual / 64] >> (individual % 64)) & 1;
  }

  /// Heap bytes of the plane words + count cache (EPC accounting).
  std::size_t storage_bytes() const noexcept {
    return words_.size() * sizeof(std::uint64_t) +
           counts_.size() * sizeof(std::uint32_t);
  }

 private:
  std::size_t num_individuals_ = 0;
  std::size_t num_snps_ = 0;
  std::size_t words_per_plane_ = 0;
  std::vector<std::uint64_t> words_;  // plane-contiguous: snp * words_per_plane
  std::vector<std::uint32_t> counts_;
};

}  // namespace gendpr::genome
