// SNP-major bit-plane view of a GenotypeMatrix.
//
// GenotypeMatrix is row-major (one individual's genotypes contiguous), which
// suits per-individual scans but makes the per-SNP-column kernels - LD
// moments, allele counts, LR-matrix fill - walk the matrix one bit at a time.
// BitPlanes is the column-major transpose packed into 64-bit words: plane l
// holds the genotype bit of every individual at SNP l, so a whole-population
// column reduction is a short word sweep (popcount, AND+popcount) instead of
// N accessor calls. Per-SNP popcounts are precomputed once at construction,
// which makes the five binary-genotype LD moments (mu_x = mu_x2 = count_x,
// mu_xy = popcount(plane_x & plane_y)) derivable without touching the words
// at all for the marginal terms.
//
// Built once per provisioned dataset and kept alongside the row-major matrix;
// both layouts are charged against the EPC meter (see DESIGN.md §2.1).
#pragma once

#include <cstdint>
#include <vector>

#include "genome/genotype.hpp"

namespace gendpr::genome {

/// Column-major, 64-bit-word-packed transpose of a GenotypeMatrix with
/// cached per-SNP minor-allele popcounts. Tail bits (individual indices
/// >= num_individuals in the last word of each plane) are always zero.
class BitPlanes {
 public:
  BitPlanes() = default;
  explicit BitPlanes(const GenotypeMatrix& genotypes);

  std::size_t num_individuals() const noexcept { return num_individuals_; }
  std::size_t num_snps() const noexcept { return num_snps_; }
  std::size_t words_per_plane() const noexcept { return words_per_plane_; }

  /// Words of SNP `snp`'s plane (bit n = individual n's genotype).
  const std::uint64_t* plane(std::size_t snp) const noexcept {
    return words_.data() + snp * words_per_plane_;
  }

  /// Cached minor-allele count at `snp` (popcount of its plane).
  std::uint32_t allele_count(std::size_t snp) const noexcept {
    return counts_[snp];
  }

  /// Minor-allele counts for every SNP (precomputed; no per-call sweep).
  const std::vector<std::uint32_t>& allele_counts() const noexcept {
    return counts_;
  }

  /// Minor-allele counts restricted to the SNP subset `snps`.
  std::vector<std::uint32_t> allele_counts(
      const std::vector<std::uint32_t>& snps) const;

  /// popcount(plane_a AND plane_b): individuals carrying the minor allele at
  /// both SNPs - the only non-marginal term of the LD moment struct.
  std::uint32_t pair_count(std::size_t snp_a, std::size_t snp_b) const noexcept;

  bool get(std::size_t individual, std::size_t snp) const noexcept {
    return (plane(snp)[individual / 64] >> (individual % 64)) & 1;
  }

  /// Zero-copy view over the SNP range [snp_begin, snp_end). Planes are
  /// plane-contiguous, so a tile is one contiguous word range of the parent
  /// storage and its per-SNP counts are a slice of the parent cache - taking
  /// a view never repacks words or recomputes popcounts.
  class TileView {
   public:
    TileView() = default;

    std::size_t snp_begin() const noexcept { return snp_begin_; }
    std::size_t snp_end() const noexcept { return snp_begin_ + num_snps_; }
    std::size_t num_snps() const noexcept { return num_snps_; }
    std::size_t words_per_plane() const noexcept { return words_per_plane_; }

    /// Plane of the tile-local SNP `snp` (index 0 = snp_begin).
    const std::uint64_t* plane(std::size_t snp) const noexcept {
      return words_ + snp * words_per_plane_;
    }
    /// The tile's contiguous word range (num_snps * words_per_plane words).
    const std::uint64_t* words() const noexcept { return words_; }
    std::size_t num_words() const noexcept {
      return num_snps_ * words_per_plane_;
    }

    /// Cached minor-allele count of tile-local SNP `snp` (no sweep).
    std::uint32_t allele_count(std::size_t snp) const noexcept {
      return counts_[snp];
    }
    /// Slice of the parent's per-SNP count cache covering the tile.
    const std::uint32_t* allele_counts() const noexcept { return counts_; }

    /// Sum of the tile's per-SNP counts, O(1) from the parent's popcount
    /// prefix array.
    std::uint64_t total_allele_count() const noexcept { return total_; }

   private:
    friend class BitPlanes;
    TileView(const std::uint64_t* words, const std::uint32_t* counts,
             std::size_t snp_begin, std::size_t num_snps,
             std::size_t words_per_plane, std::uint64_t total) noexcept
        : words_(words),
          counts_(counts),
          snp_begin_(snp_begin),
          num_snps_(num_snps),
          words_per_plane_(words_per_plane),
          total_(total) {}

    const std::uint64_t* words_ = nullptr;
    const std::uint32_t* counts_ = nullptr;
    std::size_t snp_begin_ = 0;
    std::size_t num_snps_ = 0;
    std::size_t words_per_plane_ = 0;
    std::uint64_t total_ = 0;
  };

  TileView tile(std::size_t snp_begin, std::size_t snp_end) const noexcept {
    return TileView(plane(snp_begin), counts_.data() + snp_begin, snp_begin,
                    snp_end - snp_begin, words_per_plane_,
                    count_prefix_[snp_end] - count_prefix_[snp_begin]);
  }

  /// Heap bytes of the plane words + count caches (EPC accounting).
  std::size_t storage_bytes() const noexcept {
    return words_.size() * sizeof(std::uint64_t) +
           counts_.size() * sizeof(std::uint32_t) +
           count_prefix_.size() * sizeof(std::uint64_t);
  }

 private:
  std::size_t num_individuals_ = 0;
  std::size_t num_snps_ = 0;
  std::size_t words_per_plane_ = 0;
  std::vector<std::uint64_t> words_;  // plane-contiguous: snp * words_per_plane
  std::vector<std::uint32_t> counts_;
  // count_prefix_[l] = sum of counts_[0..l); tile count totals in O(1).
  std::vector<std::uint64_t> count_prefix_{0};
};

}  // namespace gendpr::genome
