#include "genome/vcf_lite.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

#include "crypto/hmac.hpp"
#include "wire/serialize.hpp"

namespace gendpr::genome {

using common::Errc;
using common::make_error;

std::string write_vcf_lite(const VcfLite& vcf) {
  std::ostringstream out;
  out << "##gendpr-vcf-lite v1\n";
  out << "##individuals=" << vcf.genotypes.num_individuals() << "\n";
  out << "##snps=" << vcf.genotypes.num_snps() << "\n";
  out << "#ids";
  for (const std::string& id : vcf.snp_ids) out << ' ' << id;
  out << "\n";
  for (std::size_t n = 0; n < vcf.genotypes.num_individuals(); ++n) {
    std::string line(vcf.genotypes.num_snps(), '0');
    for (std::size_t l = 0; l < vcf.genotypes.num_snps(); ++l) {
      if (vcf.genotypes.get(n, l)) line[l] = '1';
    }
    out << line << "\n";
  }
  return out.str();
}

namespace {

common::Result<std::uint64_t> parse_header_count(const std::string& line,
                                                 const std::string& prefix) {
  if (line.rfind(prefix, 0) != 0) {
    return make_error(Errc::bad_message, "expected header " + prefix);
  }
  std::uint64_t value = 0;
  const char* begin = line.data() + prefix.size();
  const char* end = line.data() + line.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    return make_error(Errc::bad_message, "bad count in header " + prefix);
  }
  return value;
}

}  // namespace

common::Result<VcfLite> read_vcf_lite(const std::string& text) {
  std::istringstream in(text);
  std::string line;

  if (!std::getline(in, line) || line != "##gendpr-vcf-lite v1") {
    return make_error(Errc::bad_message, "missing vcf-lite magic header");
  }
  if (!std::getline(in, line)) {
    return make_error(Errc::bad_message, "missing individuals header");
  }
  auto individuals = parse_header_count(line, "##individuals=");
  if (!individuals.ok()) return individuals.error();
  if (!std::getline(in, line)) {
    return make_error(Errc::bad_message, "missing snps header");
  }
  auto snps = parse_header_count(line, "##snps=");
  if (!snps.ok()) return snps.error();

  if (!std::getline(in, line) || line.rfind("#ids", 0) != 0) {
    return make_error(Errc::bad_message, "missing #ids line");
  }
  VcfLite vcf;
  {
    std::istringstream ids(line.substr(4));
    std::string id;
    while (ids >> id) vcf.snp_ids.push_back(id);
  }
  if (vcf.snp_ids.size() != snps.value()) {
    return make_error(Errc::bad_message,
                      "snp id count does not match ##snps header");
  }

  vcf.genotypes = GenotypeMatrix(individuals.value(), snps.value());
  for (std::uint64_t n = 0; n < individuals.value(); ++n) {
    if (!std::getline(in, line)) {
      return make_error(Errc::bad_message, "missing genotype line " +
                                               std::to_string(n));
    }
    if (line.size() != snps.value()) {
      return make_error(Errc::bad_message, "genotype line " +
                                               std::to_string(n) +
                                               " has wrong length");
    }
    for (std::uint64_t l = 0; l < snps.value(); ++l) {
      if (line[l] == '1') {
        vcf.genotypes.set(n, l, true);
      } else if (line[l] != '0') {
        return make_error(Errc::bad_message, "non-binary genotype character");
      }
    }
  }
  return vcf;
}

common::Status write_vcf_lite_file(const std::string& path,
                                   const VcfLite& vcf) {
  std::ofstream out(path);
  if (!out) {
    return make_error(Errc::io_error, "cannot open for write: " + path);
  }
  out << write_vcf_lite(vcf);
  if (!out) return make_error(Errc::io_error, "write failed: " + path);
  return common::Status::success();
}

common::Result<VcfLite> read_vcf_lite_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return make_error(Errc::io_error, "cannot open for read: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return read_vcf_lite(buffer.str());
}

crypto::Sha256Digest digest_vcf(const std::string& vcf_text) {
  return crypto::Sha256::hash(common::to_bytes(vcf_text));
}

namespace {

crypto::Sha256Digest manifest_signature(const DatasetManifest& manifest,
                                        common::BytesView signing_key) {
  crypto::HmacSha256 mac(signing_key);
  mac.update(common::to_bytes("gendpr.dataset.manifest.v1"));
  wire::Writer w;
  w.string(manifest.dataset_name);
  w.u64(manifest.num_individuals);
  w.u64(manifest.num_snps);
  w.raw(common::BytesView(manifest.content_digest.data(),
                          manifest.content_digest.size()));
  mac.update(w.buffer());
  return mac.finish();
}

}  // namespace

DatasetManifest sign_dataset(const std::string& dataset_name,
                             const std::string& vcf_text,
                             common::BytesView signing_key) {
  DatasetManifest manifest;
  manifest.dataset_name = dataset_name;
  manifest.content_digest = digest_vcf(vcf_text);
  // Dimensions are advisory metadata; parse errors surface at read time.
  const auto parsed = read_vcf_lite(vcf_text);
  if (parsed.ok()) {
    manifest.num_individuals = parsed.value().genotypes.num_individuals();
    manifest.num_snps = parsed.value().genotypes.num_snps();
  }
  manifest.signature = manifest_signature(manifest, signing_key);
  return manifest;
}

common::Status verify_dataset(const DatasetManifest& manifest,
                              const std::string& vcf_text,
                              common::BytesView signing_key) {
  const crypto::Sha256Digest expected =
      manifest_signature(manifest, signing_key);
  if (!common::ct_equal(
          common::BytesView(expected.data(), expected.size()),
          common::BytesView(manifest.signature.data(),
                            manifest.signature.size()))) {
    return make_error(Errc::attestation_rejected,
                      "dataset manifest signature invalid");
  }
  const crypto::Sha256Digest digest = digest_vcf(vcf_text);
  if (digest != manifest.content_digest) {
    return make_error(Errc::attestation_rejected,
                      "dataset content does not match signed manifest");
  }
  return common::Status::success();
}

}  // namespace gendpr::genome
