// Synthetic GWAS cohort generation.
//
// Substitutes for the gated dbGaP phs001039.v1.p1 AMD cohort the paper uses
// (27,895 genomes: 14,860 case / 13,035 control; controls double as the
// LR-test reference). The generator reproduces the statistical features the
// GenDPR pipeline is sensitive to:
//   * a rare-variant-heavy minor-allele-frequency spectrum (Beta-distributed
//     base frequencies), so the 0.05 MAF cut-off removes a large fraction;
//   * block-structured linkage disequilibrium (first-order Markov copying
//     within blocks), so the LD phase finds dependent adjacent pairs;
//   * case/control allele-frequency shifts at a configurable fraction of
//     SNPs, so chi^2 ranking and the LR-test see real signal.
// See DESIGN.md §1 for the substitution rationale.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "genome/genotype.hpp"

namespace gendpr::genome {

struct CohortSpec {
  std::size_t num_case = 1000;
  std::size_t num_control = 1000;  // also used as the LR-test reference
  std::size_t num_snps = 1000;

  // MAF spectrum: base minor-allele frequency ~ Beta(maf_alpha, maf_beta),
  // clamped to [maf_floor, 0.5]. The defaults put a sizeable mass below the
  // 0.05 MAF cut-off, mirroring the attrition visible in the paper's Table 4.
  double maf_alpha = 0.35;
  double maf_beta = 1.2;
  double maf_floor = 1e-3;

  // LD structure: SNPs are grouped in haplotype blocks of ld_block_size;
  // within a block, an individual's genotype copies the block's first SNP
  // (the anchor) with probability ld_copy_prob, otherwise it is drawn fresh
  // from the SNP's own frequency. Anchor copying makes every pair inside a
  // block strongly correlated - like real haplotype blocks, and unlike
  // chain copying whose correlation decays with distance - so the LD phase
  // prunes each surviving block down to its best-ranked SNP, reproducing
  // the heavy LD attrition of the paper's Table 4 (e.g. 4,584 -> 375).
  std::size_t ld_block_size = 10;
  double ld_copy_prob = 0.72;

  // Association signal: this fraction of SNPs has the case-population
  // frequency shifted (multiplicatively, odds-scale) by effect_odds.
  double associated_fraction = 0.05;
  double effect_odds = 1.6;

  std::uint64_t seed = 1;
};

struct Cohort {
  GenotypeMatrix cases;
  GenotypeMatrix controls;
  /// Ground truth: per-SNP base minor-allele frequency used for generation.
  std::vector<double> base_maf;
  /// Ground truth: indices of SNPs given an association effect.
  std::vector<std::uint32_t> associated_snps;
};

/// Generates a cohort deterministically from spec.seed.
Cohort generate_cohort(const CohortSpec& spec);

/// Splits `total` individuals into `parts` nearly equal contiguous ranges
/// ("we have divided genomes equally among federation members", §7).
/// Returns (begin, end) pairs covering [0, total).
std::vector<std::pair<std::size_t, std::size_t>> equal_partition(
    std::size_t total, std::size_t parts);

}  // namespace gendpr::genome
