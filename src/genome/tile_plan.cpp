#include "genome/tile_plan.hpp"

namespace gendpr::genome {

TilePlan TilePlan::over(std::uint32_t total, std::uint32_t requested_width) {
  TilePlan plan;
  plan.total_ = total;
  if (total == 0) return plan;  // empty plan: zero tiles, nothing to stream
  if (requested_width == 0 || requested_width >= total) {
    plan.width_ = total;
    plan.tile_count_ = 1;
    return plan;
  }
  plan.width_ = requested_width;
  plan.tile_count_ = (total + requested_width - 1) / requested_width;
  return plan;
}

}  // namespace gendpr::genome
