#include "genome/cohort.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gendpr::genome {

namespace {

/// Shifts a frequency on the odds scale: p' = odds*p / (1 + (odds-1)*p).
double shift_odds(double p, double odds) noexcept {
  return odds * p / (1.0 + (odds - 1.0) * p);
}

/// Fills one population's genotype matrix given per-SNP frequencies and the
/// block-anchor LD structure.
void fill_population(GenotypeMatrix& matrix, const std::vector<double>& freq,
                     const CohortSpec& spec, common::Rng& rng) {
  const std::size_t num_snps = matrix.num_snps();
  for (std::size_t n = 0; n < matrix.num_individuals(); ++n) {
    bool anchor = false;
    for (std::size_t l = 0; l < num_snps; ++l) {
      const bool block_start = spec.ld_block_size == 0
                                   ? true
                                   : (l % spec.ld_block_size == 0);
      bool value;
      if (block_start) {
        value = rng.bernoulli(freq[l]);
        anchor = value;
      } else if (rng.bernoulli(spec.ld_copy_prob)) {
        value = anchor;  // copy the block anchor -> within-block LD
      } else {
        value = rng.bernoulli(freq[l]);
      }
      if (value) matrix.set(n, l, true);
    }
  }
}

}  // namespace

Cohort generate_cohort(const CohortSpec& spec) {
  if (spec.num_snps == 0) {
    throw std::invalid_argument("generate_cohort: num_snps must be > 0");
  }
  common::Rng rng(spec.seed);

  Cohort cohort;
  cohort.base_maf.resize(spec.num_snps);
  for (double& p : cohort.base_maf) {
    p = std::clamp(rng.beta(spec.maf_alpha, spec.maf_beta) * 0.5,
                   spec.maf_floor, 0.5);
  }

  // Choose associated SNPs without replacement.
  const std::size_t num_associated = static_cast<std::size_t>(
      std::floor(spec.associated_fraction * static_cast<double>(spec.num_snps)));
  const std::vector<std::size_t> perm = rng.permutation(spec.num_snps);
  cohort.associated_snps.assign(perm.begin(), perm.begin() + num_associated);
  std::sort(cohort.associated_snps.begin(), cohort.associated_snps.end());

  std::vector<double> case_freq = cohort.base_maf;
  for (std::uint32_t l : cohort.associated_snps) {
    case_freq[l] = shift_odds(case_freq[l], spec.effect_odds);
  }

  cohort.cases = GenotypeMatrix(spec.num_case, spec.num_snps);
  cohort.controls = GenotypeMatrix(spec.num_control, spec.num_snps);
  common::Rng case_rng = rng.fork();
  common::Rng control_rng = rng.fork();
  fill_population(cohort.cases, case_freq, spec, case_rng);
  fill_population(cohort.controls, cohort.base_maf, spec, control_rng);
  return cohort;
}

std::vector<std::pair<std::size_t, std::size_t>> equal_partition(
    std::size_t total, std::size_t parts) {
  if (parts == 0) {
    throw std::invalid_argument("equal_partition: parts must be > 0");
  }
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  ranges.reserve(parts);
  const std::size_t base = total / parts;
  const std::size_t extra = total % parts;
  std::size_t begin = 0;
  for (std::size_t i = 0; i < parts; ++i) {
    const std::size_t size = base + (i < extra ? 1 : 0);
    ranges.emplace_back(begin, begin + size);
    begin += size;
  }
  return ranges;
}

}  // namespace gendpr::genome
