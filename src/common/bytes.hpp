// Byte-buffer utilities shared by every module.
//
// `Bytes` is the project-wide owning byte buffer; spans of `const std::uint8_t`
// are used for non-owning views. Helpers here cover hex (for test vectors and
// logging digests), constant-time comparison (for MAC verification), and
// explicit zeroization of key material.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace gendpr::common {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Encodes `data` as lowercase hex.
std::string to_hex(BytesView data);

/// Decodes a hex string (upper or lower case). Throws std::invalid_argument
/// on odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

/// Constant-time equality; safe for comparing MACs and tags. Returns false
/// for mismatched lengths (length is not secret in our protocols).
bool ct_equal(BytesView a, BytesView b) noexcept;

/// Overwrites the buffer with zeros in a way the optimizer must not elide.
/// Used for key material leaving scope.
void secure_zero(std::span<std::uint8_t> data) noexcept;

/// Converts a string to bytes without copying semantics surprises.
Bytes to_bytes(std::string_view s);

/// Appends `src` to `dst`.
void append(Bytes& dst, BytesView src);

}  // namespace gendpr::common
