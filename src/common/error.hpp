// Error taxonomy for the library.
//
// Protocol- and crypto-layer failures that callers are expected to handle are
// reported through `Result<T>`; programming errors (precondition violations)
// throw. This keeps enclave code paths explicit about which failures are
// attacker-triggerable (bad ciphertext, forged quote, truncated frame).
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace gendpr::common {

enum class Errc {
  ok = 0,
  decrypt_failed,        // AEAD tag mismatch or malformed ciphertext
  attestation_rejected,  // quote/measurement verification failed
  bad_message,           // malformed or truncated wire data
  unknown_peer,          // message from an unregistered node
  state_violation,       // protocol step out of order
  capacity_exceeded,     // simulated EPC limit exceeded
  invalid_argument,      // caller-supplied parameter out of domain
  io_error,              // file read/write failure
  timeout,               // bounded wait expired (unresponsive peer)
  aborted,               // operation cancelled by a peer's abort notice
};

/// Human-readable name for an error code.
const char* errc_name(Errc code) noexcept;

struct Error {
  Errc code = Errc::ok;
  std::string message;

  std::string to_string() const {
    return std::string(errc_name(code)) + ": " + message;
  }
};

/// Minimal expected-like result. GCC 12's <expected> is not available under
/// C++20, so we carry our own: either a value or an Error.
template <typename T>
class Result {
 public:
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : storage_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const noexcept { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const noexcept { return ok(); }

  const T& value() const& {
    require_ok();
    return std::get<T>(storage_);
  }
  T& value() & {
    require_ok();
    return std::get<T>(storage_);
  }
  T&& take() && {
    require_ok();
    return std::get<T>(std::move(storage_));
  }

  const Error& error() const {
    if (ok()) throw std::logic_error("Result::error() on success value");
    return std::get<Error>(storage_);
  }

 private:
  void require_ok() const {
    if (!ok()) {
      throw std::runtime_error("Result::value() on error: " +
                               std::get<Error>(storage_).to_string());
    }
  }

  std::variant<T, Error> storage_;
};

/// Result specialization for operations with no payload.
class Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  static Status success() { return Status(); }

  bool ok() const noexcept { return error_.code == Errc::ok; }
  explicit operator bool() const noexcept { return ok(); }
  const Error& error() const noexcept { return error_; }

 private:
  Error error_;
};

inline Error make_error(Errc code, std::string message) {
  return Error{code, std::move(message)};
}

}  // namespace gendpr::common
