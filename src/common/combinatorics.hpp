// Subset enumeration used by the collusion-tolerant coordinator (§5.6):
// GenDPR evaluates every combination of G-f out of G GDOs and intersects
// the per-combination safe SNP sets.
#pragma once

#include <cstdint>
#include <vector>

namespace gendpr::common {

/// Binomial coefficient C(n, k) as a 64-bit value; saturates are not needed
/// for our federation sizes (G <= 16 in all workloads). Returns 0 for k > n.
std::uint64_t binomial(unsigned n, unsigned k) noexcept;

/// Enumerates all k-element subsets of {0, .., n-1} in lexicographic order.
/// Each subset is a sorted vector of indices.
std::vector<std::vector<std::size_t>> combinations(std::size_t n,
                                                   std::size_t k);

}  // namespace gendpr::common
