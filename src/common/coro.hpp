// Minimal coroutine task type for the sans-IO protocol engine.
//
// `Task<T>` is a lazily-started, single-awaiter coroutine: creating one
// allocates the frame but runs nothing; `co_await`ing it starts the body via
// symmetric transfer and resumes the awaiter when the body co_returns.
// Exceptions thrown inside the body are captured and rethrown at the await
// site, so error signalling (e.g. the coordinator's MissingMomentsError)
// crosses suspension points exactly like it crosses ordinary calls.
//
// The protocol layer is written once as coroutines that suspend at its
// receive points; `run_sync` drives such a chain to completion when every
// awaitable in it completes without an external event (the compatibility
// path for callers that still supply blocking callbacks).
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <stdexcept>
#include <type_traits>
#include <utility>

namespace gendpr::common {

template <typename T>
class Task;

namespace coro_detail {

/// Resumes the parent coroutine (if any) when a task body finishes.
struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }
  template <typename Promise>
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> handle) noexcept {
    std::coroutine_handle<> continuation = handle.promise().continuation;
    return continuation ? continuation : std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

template <typename T>
struct TaskPromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr error;

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { error = std::current_exception(); }
};

template <typename T>
struct TaskPromise : TaskPromiseBase<T> {
  std::optional<T> value;

  Task<T> get_return_object() noexcept;
  void return_value(T v) { value.emplace(std::move(v)); }
  T take_value() {
    if (this->error) std::rethrow_exception(this->error);
    return std::move(*value);
  }
};

template <>
struct TaskPromise<void> : TaskPromiseBase<void> {
  Task<void> get_return_object() noexcept;
  void return_void() noexcept {}
  void take_value() {
    if (this->error) std::rethrow_exception(this->error);
  }
};

}  // namespace coro_detail

template <typename T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = coro_detail::TaskPromise<T>;

  Task() noexcept = default;
  explicit Task(std::coroutine_handle<promise_type> handle) noexcept
      : handle_(handle) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (handle_) handle_.destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  bool valid() const noexcept { return static_cast<bool>(handle_); }
  bool done() const noexcept { return handle_ && handle_.done(); }

  /// Starts (or continues) the body on the current stack. Used by run_sync;
  /// awaiting callers start the body through symmetric transfer instead.
  void resume() { handle_.resume(); }

  /// Result of a finished task; rethrows an exception captured in the body.
  T result() { return handle_.promise().take_value(); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> awaiting) noexcept {
        handle.promise().continuation = awaiting;
        return handle;  // start the child body
      }
      T await_resume() { return handle.promise().take_value(); }
    };
    return Awaiter{handle_};
  }

 private:
  std::coroutine_handle<promise_type> handle_;
};

namespace coro_detail {

template <typename T>
Task<T> TaskPromise<T>::get_return_object() noexcept {
  return Task<T>(std::coroutine_handle<TaskPromise<T>>::from_promise(*this));
}

inline Task<void> TaskPromise<void>::get_return_object() noexcept {
  return Task<void>(
      std::coroutine_handle<TaskPromise<void>>::from_promise(*this));
}

}  // namespace coro_detail

/// Drives `task` to completion on the current stack and returns its result.
/// Valid only when no awaitable in the chain suspends on an external event
/// (every co_await completes synchronously); a task that is still pending
/// after its synchronous run is a caller contract violation.
template <typename T>
T run_sync(Task<T> task) {
  task.resume();
  if (!task.done()) {
    throw std::logic_error(
        "run_sync: task suspended on an external event; it needs a driver");
  }
  return task.result();
}

}  // namespace gendpr::common
