#include "common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace gendpr::common {

namespace {

std::atomic<LogLevel> g_level{LogLevel::warn};
std::mutex g_write_mutex;

const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::debug:
      return "DEBUG";
    case LogLevel::info:
      return "INFO ";
    case LogLevel::warn:
      return "WARN ";
    case LogLevel::error:
      return "ERROR";
    case LogLevel::off:
      return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return g_level.load(std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& component,
              const std::string& message) {
  if (level < log_level()) return;
  const auto now = std::chrono::system_clock::now();
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count();
  std::lock_guard<std::mutex> lock(g_write_mutex);
  std::fprintf(stderr, "[%lld.%03lld] %s [%s] %s\n",
               static_cast<long long>(ms / 1000),
               static_cast<long long>(ms % 1000), level_tag(level),
               component.c_str(), message.c_str());
}

}  // namespace gendpr::common
