// Fixed-size thread pool.
//
// Used by the collusion-tolerant coordinator to evaluate the C(G, G-f)
// combinations in parallel inside the leader enclave (paper §5.6: "can be
// efficiently conducted in parallel inside the leader enclave"), and by the
// ablation bench that compares serial vs parallel combination evaluation.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace gendpr::common {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means std::thread::hardware_concurrency
  /// (minimum 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Schedules `fn` and returns a future for its result.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using ResultT = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<ResultT()>>(
        std::forward<Fn>(fn));
    std::future<ResultT> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Runs `fn(i)` for i in [0, count) across the pool and blocks until all
  /// iterations complete. Exceptions from iterations propagate (first one).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// --- Task accounting (observability) ---
  /// Tasks that finished executing (including ones that threw).
  std::uint64_t tasks_completed() const noexcept {
    return tasks_completed_.load(std::memory_order_relaxed);
  }
  /// Cumulative wall time spent inside task bodies, in milliseconds. Workers
  /// run concurrently, so this can exceed the pool's lifetime wall clock.
  double task_wall_ms() const noexcept {
    return static_cast<double>(
               task_nanos_.load(std::memory_order_relaxed)) /
           1e6;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::atomic<std::uint64_t> tasks_completed_{0};
  std::atomic<std::uint64_t> task_nanos_{0};
};

}  // namespace gendpr::common
