#include "common/combinatorics.hpp"

#include <numeric>

namespace gendpr::common {

std::uint64_t binomial(unsigned n, unsigned k) noexcept {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  std::uint64_t result = 1;
  for (unsigned i = 1; i <= k; ++i) {
    result = result * (n - k + i) / i;
  }
  return result;
}

std::vector<std::vector<std::size_t>> combinations(std::size_t n,
                                                   std::size_t k) {
  std::vector<std::vector<std::size_t>> out;
  if (k > n) return out;
  std::vector<std::size_t> current(k);
  std::iota(current.begin(), current.end(), std::size_t{0});
  for (;;) {
    out.push_back(current);
    // Find the rightmost position that can still be incremented, i.e. the
    // largest i with current[i] < n - k + i.
    std::size_t i = k;
    while (i > 0 && current[i - 1] == n - k + (i - 1)) --i;
    if (i == 0) break;  // current is the last combination {n-k, .., n-1}
    ++current[i - 1];
    for (std::size_t j = i; j < k; ++j) current[j] = current[j - 1] + 1;
  }
  return out;
}

}  // namespace gendpr::common
