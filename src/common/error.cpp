#include "common/error.hpp"

namespace gendpr::common {

const char* errc_name(Errc code) noexcept {
  switch (code) {
    case Errc::ok:
      return "ok";
    case Errc::decrypt_failed:
      return "decrypt_failed";
    case Errc::attestation_rejected:
      return "attestation_rejected";
    case Errc::bad_message:
      return "bad_message";
    case Errc::unknown_peer:
      return "unknown_peer";
    case Errc::state_violation:
      return "state_violation";
    case Errc::capacity_exceeded:
      return "capacity_exceeded";
    case Errc::invalid_argument:
      return "invalid_argument";
    case Errc::io_error:
      return "io_error";
    case Errc::timeout:
      return "timeout";
    case Errc::aborted:
      return "aborted";
  }
  return "unknown";
}

}  // namespace gendpr::common
