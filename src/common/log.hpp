// Minimal leveled logger.
//
// The federation runner and examples log milestone events (attestation
// complete, phase results); tests run with the logger silenced. A free
// function API keeps call sites terse and avoids a singleton object graph.
#pragma once

#include <sstream>
#include <string>

namespace gendpr::common {

enum class LogLevel { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

/// Sets the global minimum level (default: warn, so library users are quiet
/// by default and tests stay clean).
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Writes one line to stderr if `level` passes the global threshold.
/// Thread-safe (line-at-a-time).
void log_line(LogLevel level, const std::string& component,
              const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(const std::string& component, Args&&... args) {
  if (log_level() <= LogLevel::debug)
    log_line(LogLevel::debug, component,
             detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(const std::string& component, Args&&... args) {
  if (log_level() <= LogLevel::info)
    log_line(LogLevel::info, component,
             detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(const std::string& component, Args&&... args) {
  if (log_level() <= LogLevel::warn)
    log_line(LogLevel::warn, component,
             detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(const std::string& component, Args&&... args) {
  if (log_level() <= LogLevel::error)
    log_line(LogLevel::error, component,
             detail::concat(std::forward<Args>(args)...));
}

}  // namespace gendpr::common
