// Deterministic pseudo-random number generation for simulation and tests.
//
// All stochastic components of the library (synthetic cohorts, leader
// election, workload generators) draw from `Rng`, a SplitMix64-seeded
// xoshiro256** generator. Determinism given a seed is a hard requirement:
// the paper's correctness experiment (Table 4) compares three protocol
// variants over the *same* cohort, and our property tests replay runs.
//
// Cryptographic randomness lives in crypto/csprng.hpp, not here.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace gendpr::common {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64.
/// Not cryptographically secure; simulation/statistics use only.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, bound) without modulo bias. bound must be > 0.
  std::uint64_t uniform_int(std::uint64_t bound) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Standard normal via Box-Muller (cached spare deviate).
  double normal() noexcept;

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Gamma(shape, 1) via Marsaglia-Tsang; shape > 0.
  double gamma(double shape) noexcept;

  /// Beta(a, b) via two gamma draws; a, b > 0.
  double beta(double a, double b) noexcept;

  /// Fisher-Yates shuffle of indices [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Forks an independent stream (splits state via SplitMix on a drawn value).
  Rng fork() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace gendpr::common
