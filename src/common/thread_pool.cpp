#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>

namespace gendpr::common {

ThreadPool::ThreadPool(std::size_t num_threads) {
  std::size_t n = num_threads;
  if (n == 0) {
    n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    const auto start = std::chrono::steady_clock::now();
    task();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    task_nanos_.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()),
        std::memory_order_relaxed);
    tasks_completed_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const std::size_t lanes = std::min(count, size());
  std::vector<std::future<void>> futures;
  futures.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    futures.push_back(submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
    }));
  }
  for (auto& future : futures) future.get();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace gendpr::common
