#include "common/rng.hpp"

#include <cmath>
#include <numeric>

namespace gendpr::common {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t bound) noexcept {
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() noexcept {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  spare_normal_ = radius * std::sin(angle);
  has_spare_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::gamma(double shape) noexcept {
  // Marsaglia & Tsang (2000). For shape < 1, boost via the standard
  // Gamma(shape) = Gamma(shape+1) * U^{1/shape} identity.
  if (shape < 1.0) {
    const double boosted = gamma(shape + 1.0);
    double u = 0.0;
    do {
      u = uniform();
    } while (u <= 0.0);
    return boosted * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

double Rng::beta(double a, double b) noexcept {
  const double x = gamma(a);
  const double y = gamma(b);
  return x / (x + y);
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> out(n);
  std::iota(out.begin(), out.end(), std::size_t{0});
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = uniform_int(i);
    std::swap(out[i - 1], out[j]);
  }
  return out;
}

Rng Rng::fork() noexcept {
  return Rng(next());
}

}  // namespace gendpr::common
