// Monotonic timing helpers for the phase-time accounting in the paper's
// Figures 5-6 and Table 5.
#pragma once

#include <chrono>

namespace gendpr::common {

/// Wall-clock stopwatch over the steady clock.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/restart, in milliseconds.
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  double elapsed_seconds() const { return elapsed_ms() / 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gendpr::common
