// Sans-IO protocol sessions.
//
// A ProtocolSession is the per-node protocol state machine with every I/O
// dependency inverted: no sockets, no threads, no clocks inside. The session
// tells its driver what it needs through wants() — deliver frames, flush
// queued output, or nothing further — and the driver feeds events back in
// (`on_frame`, `on_tick`, `on_peer_lost`, `on_transport_closed`,
// `on_sends_complete`). Deadlines are pure data: a recv wait publishes its
// expiry through next_deadline() and the driver reports the passage of time
// with on_tick(now), so PR 2's timeout/abort semantics survive unchanged
// under any front-end.
//
// The protocol bodies are written once as C++20 coroutines (run_protocol)
// that suspend at their receive and send-flush points; the blocking node
// pumps (node.hpp), the epoll driver (session_driver.hpp), step-level unit
// tests, and the fuzz harnesses are all just different drivers of the same
// coroutine. Sessions speak GDO indices; translating them to transport node
// ids is the driver's job.
#pragma once

#include <chrono>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/coro.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "gendpr/messages.hpp"
#include "gendpr/study_result.hpp"
#include "gendpr/trusted.hpp"
#include "obs/observability.hpp"
#include "tee/enclave.hpp"
#include "wire/buffer_pool.hpp"

namespace gendpr::core {

/// What a session needs from its driver to make progress.
enum class SessionWants {
  idle,    // constructed; start() not yet called
  send,    // frames queued: take_output(), deliver them, on_sends_complete()
  recv,    // waiting for a frame, a tick past next_deadline(), or a close
  done,    // protocol finished cleanly; status().ok()
  failed,  // protocol finished with an error; see status()
};

/// A frame the session wants delivered to `to_gdo`. The payload is the
/// sealed record (or handshake message) exactly as it must cross the wire,
/// held in a pooled buffer with frame-header headroom so the transport can
/// stamp the header and queue the bytes without copying.
struct OutFrame {
  std::uint32_t to_gdo = 0;
  wire::WireBuffer payload;
};

/// A message serialized (and enveloped) once for fan-out: broadcast and
/// multicast seal the same staged bytes per peer, so the serialization cost
/// is paid per distinct message, never per recipient.
struct StagedMessage {
  common::Bytes bytes;
  /// Set by the first per-peer seal; later seals count as fan-out reuses.
  bool sealed_once = false;
};

/// A frame received from `from_gdo` (driver-translated from transport ids).
struct InFrame {
  std::uint32_t from_gdo = 0;
  common::Bytes payload;
};

/// Delivery failure for one frame of a flush, reported with the transport's
/// error so the session can distinguish peer loss from hard faults.
struct SendFailure {
  std::uint32_t to_gdo = 0;
  common::Error error;
};

/// Base protocol session: driver-facing surface plus the coroutine plumbing
/// the member/leader protocol bodies are written against.
class ProtocolSession {
 public:
  using Clock = std::chrono::steady_clock;
  using TimePoint = Clock::time_point;

  ProtocolSession() = default;
  virtual ~ProtocolSession();

  ProtocolSession(const ProtocolSession&) = delete;
  ProtocolSession& operator=(const ProtocolSession&) = delete;

  /// Bounds every protocol wait (kNoDeadline = wait forever). Each recv
  /// suspension takes a fresh deadline of now + timeout, matching the
  /// per-call semantics of Mailbox::receive_for. Call before start().
  void set_receive_timeout(std::chrono::milliseconds timeout) noexcept {
    receive_timeout_ = timeout;
  }

  /// Starts the protocol body; runs it until its first suspension. The
  /// session is single-threaded: all entry points below must be called from
  /// the driver's thread, never concurrently.
  void start(TimePoint now);

  /// Delivers one frame. Frames arriving while the session is not waiting
  /// (mid-send, or before it reaches its next receive) are queued in order,
  /// exactly like a transport mailbox would buffer them.
  void on_frame(std::uint32_t from_gdo, common::Bytes payload, TimePoint now);

  /// Zero-copy delivery: when the session is blocked on a receive the view
  /// is handed to the protocol body directly (it aliases the caller's
  /// buffer and is consumed before this call returns); otherwise the bytes
  /// are copied into the input queue exactly like the owning overload.
  void on_frame(std::uint32_t from_gdo, common::BytesView payload,
                TimePoint now);

  /// Pool backing this session's outgoing frames (nullptr = the process-wide
  /// wire::default_pool()). Call before start().
  void set_wire_pool(wire::BufferPool* pool) noexcept { wire_pool_ = pool; }

  /// Reports the passage of time. Resumes a recv wait with a timeout event
  /// iff `now` has reached next_deadline(); earlier ticks are ignored, so
  /// spurious wakeups are harmless.
  void on_tick(TimePoint now);

  /// Reports that the transport lost the connection to a peer. Queues the
  /// loss for the protocol body (leader gathers fold it into the dead set)
  /// and wakes a blocked recv wait once so the body can react.
  void on_peer_lost(std::uint32_t gdo_index, TimePoint now);

  /// Reports that the session's own transport endpoint is gone (mailbox
  /// closed / event loop shutting down). The current and every later recv
  /// wait resumes with a closed event.
  void on_transport_closed(TimePoint now);

  /// Acknowledges a wants()==send flush: the driver attempted delivery of
  /// every frame it took and reports the per-frame failures (empty = all
  /// delivered / accepted by the transport).
  void on_sends_complete(std::vector<SendFailure> failures, TimePoint now);

  SessionWants wants() const noexcept { return wants_; }

  /// Frames queued for delivery (valid during wants()==send; empties the
  /// queue). The driver must take them before acknowledging the flush.
  std::vector<OutFrame> take_output();

  /// Expiry of the current recv wait, if one is armed (wants()==recv and a
  /// positive receive timeout is configured).
  std::optional<TimePoint> next_deadline() const noexcept {
    return wants_ == SessionWants::recv ? wait_deadline_ : std::nullopt;
  }

  /// Final status (valid once wants() is done/failed; ok() iff done).
  const common::Status& status() const noexcept { return status_; }

  /// Convenience driver for tests and fuzzers: starts the session if
  /// needed, feeds `frames` in order whenever the session asks to receive,
  /// auto-acknowledges every send flush with "all delivered", and returns
  /// the frames the session emitted along the way.
  std::vector<OutFrame> step(std::vector<InFrame> frames,
                             TimePoint now = TimePoint{});

 protected:
  /// One resumption cause for a suspended receive point. Frame payloads are
  /// views: a frame that passed through the input queue views its own
  /// `owned` backing (moved along with the event), while a frame delivered
  /// straight from the transport aliases the receive buffer and is valid
  /// only until the coroutine next suspends — the protocol bodies decrypt
  /// or parse every payload before their next co_await.
  struct Event {
    enum class Kind { frame, timeout, wake, closed };
    Kind kind = Kind::wake;
    std::uint32_t from_gdo = 0;
    common::BytesView payload;
    common::Bytes owned;
  };

  /// Root coroutine of a protocol body. Lazily started; its co_returned
  /// Status becomes the session outcome (done on ok, failed otherwise).
  class Main {
   public:
    struct promise_type {
      ProtocolSession* session = nullptr;

      Main get_return_object() noexcept {
        return Main(std::coroutine_handle<promise_type>::from_promise(*this));
      }
      std::suspend_always initial_suspend() noexcept { return {}; }
      std::suspend_always final_suspend() noexcept { return {}; }
      void return_value(common::Status status) noexcept;
      void unhandled_exception() noexcept;
    };

    Main() noexcept = default;
    explicit Main(std::coroutine_handle<promise_type> handle) noexcept
        : handle_(handle) {}
    Main(Main&& other) noexcept
        : handle_(std::exchange(other.handle_, {})) {}
    Main& operator=(Main&& other) noexcept {
      if (this != &other) {
        if (handle_) handle_.destroy();
        handle_ = std::exchange(other.handle_, {});
      }
      return *this;
    }
    Main(const Main&) = delete;
    Main& operator=(const Main&) = delete;
    ~Main() {
      if (handle_) handle_.destroy();
    }

    std::coroutine_handle<promise_type> handle() const noexcept {
      return handle_;
    }
    void reset() noexcept {
      if (handle_) handle_.destroy();
      handle_ = {};
    }

   private:
    std::coroutine_handle<promise_type> handle_;
  };

  /// The protocol body. Implementations suspend only through wait_input()
  /// and flush_sends(); everything else is ordinary synchronous code.
  virtual Main run_protocol() = 0;

  /// Awaits the next input event (frame / timeout / wake / closed).
  /// Completes immediately when input is already queued; otherwise suspends
  /// with wants()==recv and arms the configured receive deadline.
  auto wait_input() {
    struct Awaiter {
      ProtocolSession* session;
      bool await_ready() noexcept { return session->input_ready(); }
      void await_suspend(std::coroutine_handle<> handle) noexcept {
        session->suspend_for_input(handle);
      }
      Event await_resume() noexcept {
        return std::move(session->pending_event_);
      }
    };
    return Awaiter{this};
  }

  /// Hands the queued output frames to the driver and awaits the delivery
  /// report. Completes immediately (no failures) when nothing is queued.
  auto flush_sends() {
    struct Awaiter {
      ProtocolSession* session;
      bool await_ready() const noexcept { return session->outbox_.empty(); }
      void await_suspend(std::coroutine_handle<> handle) noexcept {
        session->suspend_for_sends(handle);
      }
      std::vector<SendFailure> await_resume() noexcept {
        return std::move(session->send_failures_);
      }
    };
    return Awaiter{this};
  }

  /// Queues one frame for the next flush_sends().
  void queue_frame(std::uint32_t to_gdo, wire::WireBuffer payload);
  /// Convenience for unpooled payloads (handshake messages): copies the
  /// bytes into a pooled buffer. Not used on the steady-state record path.
  void queue_frame(std::uint32_t to_gdo, common::Bytes payload);

  /// Pool to serialize outgoing frames into (set_wire_pool or the default).
  wire::BufferPool& wire_pool() const noexcept {
    return wire_pool_ != nullptr ? *wire_pool_ : wire::default_pool();
  }

  /// Drains the transport-reported peer losses accumulated since the last
  /// call (the session-side analogue of the node's hook_dead_ set).
  std::set<std::uint32_t> take_lost_peers();

  /// Time of the most recent driver entry (metrics/debugging only — never
  /// control flow; deadlines are handled by the wait plumbing itself).
  TimePoint now() const noexcept { return now_; }

  std::chrono::milliseconds receive_timeout() const noexcept {
    return receive_timeout_;
  }

  /// Destroys the protocol coroutine frame. Derived destructors call this
  /// first so frame-held locals never outlive the members they reference.
  void destroy_coroutine() noexcept { main_.reset(); }

 private:
  friend struct Main::promise_type;

  void finish(common::Status status) noexcept;
  bool input_ready() noexcept;
  void suspend_for_input(std::coroutine_handle<> handle) noexcept;
  void suspend_for_sends(std::coroutine_handle<> handle) noexcept;
  void deliver_event(Event event);
  void deliver_queued_frame();

  Main main_;
  SessionWants wants_ = SessionWants::idle;
  common::Status status_;
  std::chrono::milliseconds receive_timeout_{std::chrono::milliseconds{0}};
  TimePoint now_{};
  std::optional<TimePoint> wait_deadline_;
  std::coroutine_handle<> resume_;
  Event pending_event_;
  std::deque<InFrame> input_queue_;
  std::vector<OutFrame> outbox_;
  std::vector<SendFailure> send_failures_;
  std::set<std::uint32_t> lost_peers_;
  bool lost_wake_pending_ = false;
  bool closed_ = false;
  wire::BufferPool* wire_pool_ = nullptr;
};

/// Member-side protocol session: handshakes with the leader, then answers
/// phase requests until the study completes. The exact logic MemberNode ran
/// on its service thread, with every mailbox wait a suspension point.
class MemberSession : public ProtocolSession {
 public:
  MemberSession(tee::Platform& platform, std::uint32_t gdo_index,
                std::uint32_t leader_gdo, genome::GenotypeMatrix cases);
  ~MemberSession() override;

  /// Dataset provisioning outcome (EPC failures surface before start()).
  const common::Status& provision_status() const noexcept {
    return provision_status_;
  }

  void set_observability(obs::Observability* obs) noexcept { obs_ = obs; }
  void set_pool(common::ThreadPool* pool) noexcept { pool_ = pool; }

  const GdoEnclave& enclave() const noexcept { return enclave_; }
  double compute_ms() const noexcept { return compute_ms_; }

 protected:
  Main run_protocol() override;

 private:
  common::Task<common::Status> send_reply(MsgType type, MessageRef msg);
  common::Error wait_error(bool timed_out, const char* where) const;

  std::uint32_t gdo_index_;
  std::uint32_t leader_gdo_;
  GdoEnclave enclave_;
  std::unique_ptr<tee::SecureChannel> channel_;
  common::Status provision_status_;
  double compute_ms_ = 0;
  obs::Observability* obs_ = nullptr;
  common::ThreadPool* pool_ = nullptr;
};

/// Leader-side protocol session: establishes channels to every member, then
/// drives the three phases and produces the study result. The exact logic
/// LeaderNode::run_study_impl ran, with gathers and broadcasts suspending
/// instead of blocking; the transport-meter fields of StudyResult are left
/// for the driver (the session has no transport to read them from).
class LeaderSession : public ProtocolSession {
 public:
  LeaderSession(tee::Platform& platform, std::uint32_t gdo_index,
                std::uint32_t num_gdos, genome::GenotypeMatrix cases,
                genome::GenotypeMatrix reference, StudyAnnounce announce);
  ~LeaderSession() override;

  void set_observability(obs::Observability* obs,
                         obs::SpanId study_span = obs::kNoSpan) noexcept {
    obs_ = obs;
    study_span_ = study_span;
    coordinator_.set_observability(obs, study_span);
  }
  /// Thread pool for the LR phase's per-combination evaluation (nullptr =
  /// serial). Call before start().
  void set_pool(common::ThreadPool* pool) noexcept { pool_ = pool; }

  const GdoEnclave& enclave() const noexcept { return enclave_; }
  const Coordinator& coordinator() const noexcept { return coordinator_; }

  /// Study result (valid once wants()==done). network_bytes_total,
  /// leader_bytes_received and network_links are zero/empty: they belong to
  /// the transport, so the driver fills them.
  const StudyResult& result() const noexcept { return result_; }

 protected:
  Main run_protocol() override;

 private:
  /// One arrival during a phase gather: either a decrypted record from a
  /// live member (`got == true`) or the news that every still-pending
  /// member has been declared dead (`got == false`, gather is over).
  struct GatherStep {
    bool got = false;
    std::uint32_t member = 0;
    common::Bytes plaintext;
  };

  common::Task<common::Result<StudyResult>> run_study_impl();
  common::Task<common::Status> establish_channels();
  /// Serializes + envelopes `msg` straight into a pooled record buffer and
  /// seals it in place: the single-recipient send path.
  common::Task<common::Status> send_record(std::uint32_t gdo_index,
                                           MsgType type, MessageRef msg);
  /// Seals an already-staged envelope for one more recipient (per-peer AEAD
  /// pass only; the plaintext was serialized once by stage_envelope).
  common::Task<common::Status> send_staged(std::uint32_t gdo_index,
                                           StagedMessage& staging);
  common::Task<common::Status> broadcast(MsgType type, MessageRef msg);
  common::Task<void> broadcast_abort(common::Error error);
  common::Task<common::Result<GatherStep>> next_record(
      const char* phase, std::set<std::uint32_t>& pending);
  std::set<std::uint32_t> live_members() const;
  void sync_dead_peers();
  void mark_pending_dead(std::set<std::uint32_t>& pending, const char* phase);
  common::Error dead_peers_error(const char* phase) const;

  std::uint32_t gdo_index_;
  std::uint32_t num_gdos_;
  GdoEnclave enclave_;
  Coordinator coordinator_;
  std::vector<std::unique_ptr<tee::SecureChannel>> channels_;  // per GDO
  common::Status provision_status_;
  bool channels_established_ = false;
  /// Fatal error detected inside the phase-2 fetch callback (its signature
  /// cannot return one); checked after the LD phase returns.
  std::optional<common::Error> fetch_error_;
  double fetch_wait_ms_ = 0;  // time spent gathering member responses
  obs::Observability* obs_ = nullptr;
  obs::SpanId study_span_ = obs::kNoSpan;
  common::ThreadPool* pool_ = nullptr;
  StudyResult result_;
};

}  // namespace gendpr::core
