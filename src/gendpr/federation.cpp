#include "gendpr/federation.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "crypto/aead.hpp"
#include "crypto/csprng.hpp"
#include "gendpr/session_driver.hpp"
#include "net/epoll_hub.hpp"
#include "net/event_loop.hpp"
#include "net/network.hpp"
#include "tee/attestation.hpp"

namespace gendpr::core {

using common::Result;

namespace {

/// Resolves the effective transport: GENDPR_TRANSPORT overrides the spec.
FederationSpec::TransportMode transport_mode_of(const FederationSpec& spec) {
  const char* env = std::getenv("GENDPR_TRANSPORT");
  if (env != nullptr) {
    if (std::strcmp(env, "epoll") == 0) {
      return FederationSpec::TransportMode::epoll;
    }
    if (std::strcmp(env, "in_process") == 0) {
      return FederationSpec::TransportMode::in_process;
    }
    common::log_warn("federation", "unknown GENDPR_TRANSPORT value '", env,
                     "'; using the spec's transport");
  }
  return spec.transport;
}

/// Runs the whole federation as sans-IO sessions on one epoll thread: one
/// EpollHub per GDO on loopback TCP (members dial the leader — the star
/// topology the protocol already assumes), one EpollSessionDriver per
/// session, a single EventLoop dispatching all of them. Fills
/// `member_compute_ms` for the distributed-wall-time model.
Result<StudyResult> run_epoll_federation(
    const genome::Cohort& cohort, const FederationSpec& spec,
    std::vector<std::unique_ptr<tee::Platform>>& platforms,
    std::uint32_t leader_gdo,
    const std::vector<std::pair<std::size_t, std::size_t>>& ranges,
    const StudyAnnounce& announce, common::ThreadPool* pool,
    obs::SpanId study_span, std::chrono::milliseconds receive_timeout,
    std::vector<double>& member_compute_ms) {
  net::EventLoop loop;
  if (!loop.valid()) {
    return common::make_error(common::Errc::io_error,
                              "epoll_create1 failed");
  }

  auto leader_hub_result =
      net::EpollHub::create(loop, node_id_of(leader_gdo), 0);
  if (!leader_hub_result.ok()) return leader_hub_result.error();
  std::unique_ptr<net::EpollHub> leader_hub =
      std::move(leader_hub_result).take();

  LeaderSession leader(*platforms[leader_gdo], leader_gdo, spec.num_gdos,
                       cohort.cases.slice_rows(ranges[leader_gdo].first,
                                               ranges[leader_gdo].second),
                       cohort.controls, announce);
  leader.set_receive_timeout(receive_timeout);
  leader.set_observability(spec.obs, study_span);
  leader.set_pool(pool);

  std::vector<std::unique_ptr<net::EpollHub>> member_hubs;
  std::vector<std::unique_ptr<MemberSession>> members;
  for (std::uint32_t g = 0; g < spec.num_gdos; ++g) {
    if (g == leader_gdo) continue;
    auto hub = net::EpollHub::create(loop, node_id_of(g), 0);
    if (!hub.ok()) return hub.error();
    member_hubs.push_back(std::move(hub).take());
    members.push_back(std::make_unique<MemberSession>(
        *platforms[g], g, leader_gdo,
        cohort.cases.slice_rows(ranges[g].first, ranges[g].second)));
    members.back()->set_receive_timeout(receive_timeout);
    members.back()->set_observability(spec.obs);
    members.back()->set_pool(pool);
  }
  // A member that failed to provision (EPC limit) would never handshake and
  // the leader would wait forever - surface the error up front.
  for (const auto& member : members) {
    if (!member->provision_status().ok()) {
      return member->provision_status().error();
    }
  }

  EpollSessionDriver leader_driver(loop, *leader_hub, leader);
  std::vector<std::unique_ptr<EpollSessionDriver>> member_drivers;
  member_drivers.reserve(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    member_drivers.push_back(std::make_unique<EpollSessionDriver>(
        loop, *member_hubs[i], *members[i]));
  }

  const auto all_finished = [&] {
    if (!leader_driver.finished()) return false;
    for (const auto& driver : member_drivers) {
      if (!driver->finished()) return false;
    }
    return true;
  };

  // When the leader fails, surviving members normally learn it from the
  // abort notice; a member whose connection (or handshake) never came up
  // would wait forever with no timeout configured. Give the notices half a
  // second to flush, then force the stragglers' transports closed.
  leader_driver.set_on_finished([&] {
    if (leader.status().ok()) return;
    loop.add_timer_after(std::chrono::milliseconds{500}, [&] {
      for (auto& driver : member_drivers) {
        if (!driver->finished()) driver->close();
      }
    });
  });

  // Members first: their dials buffer the attestation handshakes, which
  // flush as soon as the leader's listener accepts.
  for (std::size_t i = 0; i < member_drivers.size(); ++i) {
    member_hubs[i]->connect_peer(node_id_of(leader_gdo), "127.0.0.1",
                                 leader_hub->port());
    member_drivers[i]->start();
  }
  leader_driver.start();
  loop.run_until(all_finished);

  if (!leader.status().ok()) return leader.status().error();
  // Surface any member-side failure (e.g. tampering detected) even when the
  // leader finished: a correct run requires every node to have succeeded.
  for (const auto& member : members) {
    if (!member->status().ok()) return member->status().error();
  }

  StudyResult study = leader.result();
  // The leader hub terminates both directions of every link in the star, so
  // its meter sees all protocol traffic — same vantage as a TCP leader.
  study.network_bytes_total = leader_hub->meter().total_bytes();
  study.leader_bytes_received =
      leader_hub->meter().bytes_received_by(node_id_of(leader_gdo));
  study.network_links = leader_hub->meter().snapshot();
  for (const auto& member : members) {
    member_compute_ms.push_back(member->compute_ms());
  }
  return study;
}

/// The classic thread-per-node fabric: MemberNode service threads plus the
/// LeaderNode study on the caller's thread, over in-process mailboxes.
Result<StudyResult> run_threaded_federation(
    const genome::Cohort& cohort, const FederationSpec& spec,
    std::vector<std::unique_ptr<tee::Platform>>& platforms,
    std::uint32_t leader_gdo,
    const std::vector<std::pair<std::size_t, std::size_t>>& ranges,
    const StudyAnnounce& announce, common::ThreadPool* pool,
    obs::SpanId study_span, std::chrono::milliseconds receive_timeout,
    std::vector<double>& member_compute_ms) {
  net::Network network;

  LeaderNode leader(network, *platforms[leader_gdo], leader_gdo,
                    spec.num_gdos,
                    cohort.cases.slice_rows(ranges[leader_gdo].first,
                                            ranges[leader_gdo].second),
                    cohort.controls, announce);
  leader.set_receive_timeout(receive_timeout);
  leader.set_observability(spec.obs, study_span);

  std::vector<std::unique_ptr<MemberNode>> members;
  for (std::uint32_t g = 0; g < spec.num_gdos; ++g) {
    if (g == leader_gdo) continue;
    members.push_back(std::make_unique<MemberNode>(
        network, *platforms[g], g, leader_gdo,
        cohort.cases.slice_rows(ranges[g].first, ranges[g].second)));
    members.back()->set_receive_timeout(receive_timeout);
    members.back()->set_observability(spec.obs);
    members.back()->set_pool(pool);
  }
  // A member that failed at construction (EPC limit) would never handshake
  // and the leader would wait forever - surface the error up front.
  for (const auto& member : members) {
    if (!member->status().ok()) return member->status().error();
  }
  for (auto& member : members) member->start();

  auto result = leader.run_study(pool);

  if (!result.ok()) {
    // Unblock members still waiting on their mailboxes before joining.
    for (std::uint32_t g = 0; g < spec.num_gdos; ++g) {
      if (g != leader_gdo) network.detach(node_id_of(g));
    }
  }
  for (auto& member : members) member->join();
  if (!result.ok()) return result;

  // Surface any member-side failure (e.g. tampering detected) even when the
  // leader finished: a correct run requires every node to have succeeded.
  for (const auto& member : members) {
    if (!member->status().ok()) return member->status().error();
  }
  for (const auto& member : members) {
    member_compute_ms.push_back(member->compute_ms());
  }
  return result;
}

}  // namespace

Result<StudyResult> run_federated_study(const genome::Cohort& cohort,
                                        const FederationSpec& spec) {
  if (spec.num_gdos == 0) {
    return common::make_error(common::Errc::invalid_argument,
                              "federation needs at least one GDO");
  }
  obs::ScopedSpan study_span(obs::recorder_of(spec.obs), "study");
  obs::ScopedSpan setup_span(obs::recorder_of(spec.obs), "step.setup",
                             study_span.id());
  common::Rng sim_rng(spec.seed);

  // Deployment-wide attestation root and per-GDO platforms.
  std::array<std::uint8_t, 32> authority_seed{};
  for (auto& b : authority_seed) b = static_cast<std::uint8_t>(sim_rng.next());
  crypto::Csprng authority_rng(authority_seed);
  tee::QuotingAuthority authority =
      tee::QuotingAuthority::with_random_key(authority_rng);

  std::vector<std::unique_ptr<tee::Platform>> platforms;
  platforms.reserve(spec.num_gdos);
  for (std::uint32_t g = 0; g < spec.num_gdos; ++g) {
    std::array<std::uint8_t, 32> platform_seed{};
    for (auto& b : platform_seed) {
      b = static_cast<std::uint8_t>(sim_rng.next());
    }
    platforms.push_back(std::make_unique<tee::Platform>(
        g + 1, authority, crypto::Csprng(platform_seed), spec.epc_limit));
  }

  // Random leader election (§5.2 pre-processing step 1).
  const std::uint32_t leader_gdo =
      static_cast<std::uint32_t>(sim_rng.uniform_int(spec.num_gdos));
  common::log_info("federation", "elected leader gdo ", leader_gdo, " of ",
                   spec.num_gdos);

  // Equal division of case genomes among members (§7).
  const auto ranges =
      genome::equal_partition(cohort.cases.num_individuals(), spec.num_gdos);

  StudyAnnounce announce;
  announce.study_id = spec.seed;
  announce.num_snps = static_cast<std::uint32_t>(cohort.cases.num_snps());
  announce.config = spec.config;
  announce.combinations =
      Coordinator::build_combinations(spec.num_gdos, spec.policy);

  const std::chrono::milliseconds receive_timeout(spec.receive_timeout_ms);

  // AEAD counters are process-wide; a per-run snapshot delta isolates this
  // study's sealing work (federation runs in one process are sequential).
  const crypto::AeadCounters aead_before = crypto::aead_counters();

  // One pool shared by the leader's per-combination LR selection and every
  // member's per-combination basis derivations (parallel_for is safe to
  // call concurrently from distinct caller threads).
  std::unique_ptr<common::ThreadPool> pool;
  if (spec.parallel_combinations && announce.combinations.size() > 1) {
    pool = std::make_unique<common::ThreadPool>();
  }
  setup_span.end();

  std::vector<double> member_compute_ms;
  auto result =
      transport_mode_of(spec) == FederationSpec::TransportMode::epoll
          ? run_epoll_federation(cohort, spec, platforms, leader_gdo, ranges,
                                 announce, pool.get(), study_span.id(),
                                 receive_timeout, member_compute_ms)
          : run_threaded_federation(cohort, spec, platforms, leader_gdo,
                                    ranges, announce, pool.get(),
                                    study_span.id(), receive_timeout,
                                    member_compute_ms);
  if (spec.obs != nullptr && pool != nullptr) {
    spec.obs->metrics.add_counter("pool.tasks_completed",
                                  pool->tasks_completed());
    spec.obs->metrics.set_gauge("pool.task_wall_ms", pool->task_wall_ms());
    spec.obs->metrics.set_gauge("pool.threads",
                                static_cast<double>(pool->size()));
  }
  if (!result.ok()) return result;

  StudyResult study = std::move(result).take();
  double member_compute_sum = 0;
  double member_compute_max = 0;
  for (const double compute_ms : member_compute_ms) {
    member_compute_sum += compute_ms;
    member_compute_max = std::max(member_compute_max, compute_ms);
  }
  study.modelled_distributed_ms =
      study.timings.total_ms - member_compute_sum + member_compute_max;
  std::uint64_t member_peak = 0;
  study.epc_peak_per_gdo.assign(spec.num_gdos, 0);
  study.epc_limit_bytes = spec.epc_limit;
  for (std::uint32_t g = 0; g < spec.num_gdos; ++g) {
    const std::uint64_t peak = platforms[g]->epc().peak();
    study.epc_peak_per_gdo[g] = peak;
    if (g == leader_gdo) {
      study.epc_peak_leader = peak;
    } else {
      member_peak = std::max(member_peak, peak);
    }
  }
  study.epc_peak_members_max = member_peak;
  const crypto::AeadCounters aead_after = crypto::aead_counters();
  study.crypto_backend =
      crypto::aead_backend_name(crypto::default_aead_backend());
  study.crypto_records_sealed =
      aead_after.records_sealed - aead_before.records_sealed;
  study.crypto_bytes_sealed =
      aead_after.bytes_sealed - aead_before.bytes_sealed;
  if (spec.obs != nullptr) {
    spec.obs->metrics.set_label("crypto.backend", study.crypto_backend);
    spec.obs->metrics.set_gauge(
        "crypto.backend_native",
        crypto::default_aead_backend() == crypto::AeadBackend::native ? 1.0
                                                                      : 0.0);
    spec.obs->metrics.add_counter("crypto.records_sealed",
                                  study.crypto_records_sealed);
    spec.obs->metrics.add_counter("crypto.bytes_sealed",
                                  study.crypto_bytes_sealed);
  }
  if (spec.obs != nullptr) {
    // Per-GDO EPC high-water marks and per-link traffic outlive the
    // platforms/fabric via the registry (and via StudyResult for reports).
    for (std::uint32_t g = 0; g < spec.num_gdos; ++g) {
      spec.obs->metrics.max_gauge(
          "epc.gdo" + std::to_string(g) + ".peak_bytes",
          static_cast<double>(study.epc_peak_per_gdo[g]));
    }
    std::uint64_t total_messages = 0;
    for (const auto& link : study.network_links) {
      spec.obs->metrics.add_counter("net.link." + std::to_string(link.from) +
                                        "to" + std::to_string(link.to) +
                                        ".bytes",
                                    link.bytes);
      total_messages += link.messages;
    }
    spec.obs->metrics.add_counter("net.total_bytes",
                                  study.network_bytes_total);
    spec.obs->metrics.add_counter("net.total_messages", total_messages);
  }
  return study;
}

}  // namespace gendpr::core
