#include "gendpr/federation.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "crypto/aead.hpp"
#include "crypto/csprng.hpp"
#include "net/network.hpp"
#include "tee/attestation.hpp"

namespace gendpr::core {

using common::Result;

Result<StudyResult> run_federated_study(const genome::Cohort& cohort,
                                        const FederationSpec& spec) {
  if (spec.num_gdos == 0) {
    return common::make_error(common::Errc::invalid_argument,
                              "federation needs at least one GDO");
  }
  obs::ScopedSpan study_span(obs::recorder_of(spec.obs), "study");
  obs::ScopedSpan setup_span(obs::recorder_of(spec.obs), "step.setup",
                             study_span.id());
  common::Rng sim_rng(spec.seed);

  // Deployment-wide attestation root and per-GDO platforms.
  std::array<std::uint8_t, 32> authority_seed{};
  for (auto& b : authority_seed) b = static_cast<std::uint8_t>(sim_rng.next());
  crypto::Csprng authority_rng(authority_seed);
  tee::QuotingAuthority authority =
      tee::QuotingAuthority::with_random_key(authority_rng);

  std::vector<std::unique_ptr<tee::Platform>> platforms;
  platforms.reserve(spec.num_gdos);
  for (std::uint32_t g = 0; g < spec.num_gdos; ++g) {
    std::array<std::uint8_t, 32> platform_seed{};
    for (auto& b : platform_seed) {
      b = static_cast<std::uint8_t>(sim_rng.next());
    }
    platforms.push_back(std::make_unique<tee::Platform>(
        g + 1, authority, crypto::Csprng(platform_seed), spec.epc_limit));
  }

  // Random leader election (§5.2 pre-processing step 1).
  const std::uint32_t leader_gdo =
      static_cast<std::uint32_t>(sim_rng.uniform_int(spec.num_gdos));
  common::log_info("federation", "elected leader gdo ", leader_gdo, " of ",
                   spec.num_gdos);

  // Equal division of case genomes among members (§7).
  const auto ranges =
      genome::equal_partition(cohort.cases.num_individuals(), spec.num_gdos);

  StudyAnnounce announce;
  announce.study_id = spec.seed;
  announce.num_snps = static_cast<std::uint32_t>(cohort.cases.num_snps());
  announce.config = spec.config;
  announce.combinations =
      Coordinator::build_combinations(spec.num_gdos, spec.policy);

  net::Network network;
  const std::chrono::milliseconds receive_timeout(spec.receive_timeout_ms);

  // AEAD counters are process-wide; a per-run snapshot delta isolates this
  // study's sealing work (federation runs in one process are sequential).
  const crypto::AeadCounters aead_before = crypto::aead_counters();

  LeaderNode leader(network, *platforms[leader_gdo], leader_gdo,
                    spec.num_gdos,
                    cohort.cases.slice_rows(ranges[leader_gdo].first,
                                            ranges[leader_gdo].second),
                    cohort.controls, announce);
  leader.set_receive_timeout(receive_timeout);
  leader.set_observability(spec.obs, study_span.id());

  // One pool shared by the leader's per-combination LR selection and every
  // member's per-combination basis derivations (parallel_for is safe to
  // call concurrently from distinct caller threads).
  std::unique_ptr<common::ThreadPool> pool;
  if (spec.parallel_combinations && announce.combinations.size() > 1) {
    pool = std::make_unique<common::ThreadPool>();
  }

  std::vector<std::unique_ptr<MemberNode>> members;
  for (std::uint32_t g = 0; g < spec.num_gdos; ++g) {
    if (g == leader_gdo) continue;
    members.push_back(std::make_unique<MemberNode>(
        network, *platforms[g], g, leader_gdo,
        cohort.cases.slice_rows(ranges[g].first, ranges[g].second)));
    members.back()->set_receive_timeout(receive_timeout);
    members.back()->set_observability(spec.obs);
    members.back()->set_pool(pool.get());
  }
  // A member that failed at construction (EPC limit) would never handshake
  // and the leader would wait forever - surface the error up front.
  for (const auto& member : members) {
    if (!member->status().ok()) return member->status().error();
  }
  setup_span.end();
  for (auto& member : members) member->start();

  auto result = leader.run_study(pool.get());
  if (spec.obs != nullptr && pool != nullptr) {
    spec.obs->metrics.add_counter("pool.tasks_completed",
                                  pool->tasks_completed());
    spec.obs->metrics.set_gauge("pool.task_wall_ms", pool->task_wall_ms());
    spec.obs->metrics.set_gauge("pool.threads",
                                static_cast<double>(pool->size()));
  }

  if (!result.ok()) {
    // Unblock members still waiting on their mailboxes before joining.
    for (std::uint32_t g = 0; g < spec.num_gdos; ++g) {
      if (g != leader_gdo) network.detach(node_id_of(g));
    }
  }
  for (auto& member : members) member->join();
  if (!result.ok()) return result;

  // Surface any member-side failure (e.g. tampering detected) even when the
  // leader finished: a correct run requires every node to have succeeded.
  for (const auto& member : members) {
    if (!member->status().ok()) return member->status().error();
  }

  StudyResult study = std::move(result).take();
  double member_compute_sum = 0;
  double member_compute_max = 0;
  for (const auto& member : members) {
    member_compute_sum += member->compute_ms();
    member_compute_max = std::max(member_compute_max, member->compute_ms());
  }
  study.modelled_distributed_ms =
      study.timings.total_ms - member_compute_sum + member_compute_max;
  std::uint64_t member_peak = 0;
  study.epc_peak_per_gdo.assign(spec.num_gdos, 0);
  study.epc_limit_bytes = spec.epc_limit;
  for (std::uint32_t g = 0; g < spec.num_gdos; ++g) {
    const std::uint64_t peak = platforms[g]->epc().peak();
    study.epc_peak_per_gdo[g] = peak;
    if (g == leader_gdo) {
      study.epc_peak_leader = peak;
    } else {
      member_peak = std::max(member_peak, peak);
    }
  }
  study.epc_peak_members_max = member_peak;
  const crypto::AeadCounters aead_after = crypto::aead_counters();
  study.crypto_backend =
      crypto::aead_backend_name(crypto::default_aead_backend());
  study.crypto_records_sealed =
      aead_after.records_sealed - aead_before.records_sealed;
  study.crypto_bytes_sealed =
      aead_after.bytes_sealed - aead_before.bytes_sealed;
  if (spec.obs != nullptr) {
    spec.obs->metrics.set_label("crypto.backend", study.crypto_backend);
    spec.obs->metrics.set_gauge(
        "crypto.backend_native",
        crypto::default_aead_backend() == crypto::AeadBackend::native ? 1.0
                                                                      : 0.0);
    spec.obs->metrics.add_counter("crypto.records_sealed",
                                  study.crypto_records_sealed);
    spec.obs->metrics.add_counter("crypto.bytes_sealed",
                                  study.crypto_bytes_sealed);
  }
  if (spec.obs != nullptr) {
    // Per-GDO EPC high-water marks and per-link traffic outlive the
    // platforms/fabric via the registry (and via StudyResult for reports).
    for (std::uint32_t g = 0; g < spec.num_gdos; ++g) {
      spec.obs->metrics.max_gauge(
          "epc.gdo" + std::to_string(g) + ".peak_bytes",
          static_cast<double>(study.epc_peak_per_gdo[g]));
    }
    for (const auto& link : network.meter().snapshot()) {
      spec.obs->metrics.add_counter("net.link." + std::to_string(link.from) +
                                        "to" + std::to_string(link.to) +
                                        ".bytes",
                                    link.bytes);
    }
    spec.obs->metrics.add_counter("net.total_bytes",
                                  network.meter().total_bytes());
    spec.obs->metrics.add_counter("net.total_messages",
                                  network.meter().total_messages());
  }
  return study;
}

}  // namespace gendpr::core
