#include "gendpr/federation.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "crypto/aead.hpp"
#include "crypto/csprng.hpp"
#include "gendpr/session_driver.hpp"
#include "net/epoll_hub.hpp"
#include "net/event_loop.hpp"
#include "net/hub.hpp"
#include "net/network.hpp"
#include "net/uring_hub.hpp"
#include "tee/attestation.hpp"
#include "wire/buffer_pool.hpp"

namespace gendpr::core {

using common::Result;

namespace {

/// Resolves the effective transport: GENDPR_TRANSPORT overrides the spec.
FederationSpec::TransportMode transport_mode_of(const FederationSpec& spec) {
  const char* env = std::getenv("GENDPR_TRANSPORT");
  if (env != nullptr) {
    if (std::strcmp(env, "epoll") == 0) {
      return FederationSpec::TransportMode::epoll;
    }
    if (std::strcmp(env, "uring") == 0) {
      return FederationSpec::TransportMode::uring;
    }
    if (std::strcmp(env, "in_process") == 0) {
      return FederationSpec::TransportMode::in_process;
    }
    common::log_warn("federation", "unknown GENDPR_TRANSPORT value '", env,
                     "'; using the spec's transport");
  }
  return spec.transport;
}

/// Resolves the event-loop count: GENDPR_EVENT_LOOPS overrides the spec.
std::uint32_t event_loops_of(const FederationSpec& spec) {
  std::uint32_t loops = spec.event_loops;
  const char* env = std::getenv("GENDPR_EVENT_LOOPS");
  if (env != nullptr) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1 && parsed <= 64) {
      loops = static_cast<std::uint32_t>(parsed);
    } else {
      common::log_warn("federation", "invalid GENDPR_EVENT_LOOPS value '",
                       env, "'; using the spec's event_loops");
    }
  }
  return loops == 0 ? 1 : loops;
}

/// Stable loop assignment for a GDO: a Fibonacci-hash of the index, so the
/// placement depends only on (gdo, num_loops) — never on thread timing —
/// and every run shards (and therefore behaves) identically.
std::size_t loop_index_of(std::uint32_t gdo, std::size_t num_loops) {
  const std::uint64_t mixed =
      (std::uint64_t{gdo} * 0x9E3779B97F4A7C15ull) >> 32;
  return static_cast<std::size_t>(mixed % num_loops);
}

/// Creates the hub flavor for `transport` (epoll or uring) on `loop`.
Result<std::unique_ptr<net::Hub>> make_hub(FederationSpec::TransportMode mode,
                                           net::EventLoop& loop,
                                           net::NodeId node) {
  if (mode == FederationSpec::TransportMode::uring) {
    auto hub = net::UringHub::create(loop, node, 0);
    if (!hub.ok()) return hub.error();
    return std::unique_ptr<net::Hub>(std::move(hub).take());
  }
  auto hub = net::EpollHub::create(loop, node, 0);
  if (!hub.ok()) return hub.error();
  return std::unique_ptr<net::Hub>(std::move(hub).take());
}

/// Runs the whole federation as sans-IO sessions on event-loop threads: one
/// hub (epoll- or io_uring-backed) per GDO on loopback TCP (members dial
/// the leader — the star topology the protocol already assumes), one
/// EpollSessionDriver per session, sessions sharded across
/// `spec.event_loops` EventLoops by a stable hash of the GDO index. With
/// one loop everything runs on the calling thread (the classic PR 8 mode);
/// with more, each loop gets its own thread and cross-loop work travels
/// only through EventLoop::post. Fills `member_compute_ms` for the
/// distributed-wall-time model.
Result<StudyResult> run_event_loop_federation(
    const genome::Cohort& cohort, const FederationSpec& spec,
    FederationSpec::TransportMode transport,
    std::vector<std::unique_ptr<tee::Platform>>& platforms,
    std::uint32_t leader_gdo,
    const std::vector<std::pair<std::size_t, std::size_t>>& ranges,
    const StudyAnnounce& announce, common::ThreadPool* pool,
    obs::SpanId study_span, std::chrono::milliseconds receive_timeout,
    std::vector<double>& member_compute_ms) {
  if (transport == FederationSpec::TransportMode::uring &&
      !net::UringHub::available()) {
    common::log_warn("federation",
                     "io_uring unavailable on this kernel; falling back to "
                     "the epoll transport");
    transport = FederationSpec::TransportMode::epoll;
  }
  const std::size_t num_loops = std::max<std::size_t>(
      1, std::min<std::size_t>(event_loops_of(spec), spec.num_gdos));

  std::vector<std::unique_ptr<net::EventLoop>> loops;
  loops.reserve(num_loops);
  for (std::size_t i = 0; i < num_loops; ++i) {
    loops.push_back(std::make_unique<net::EventLoop>());
    if (!loops.back()->valid()) {
      return common::make_error(common::Errc::io_error,
                                "epoll_create1/eventfd failed");
    }
  }
  const auto loop_of = [&](std::uint32_t gdo) -> net::EventLoop& {
    return *loops[loop_index_of(gdo, num_loops)];
  };

  // One buffer pool for the whole run: sessions serialize records into it,
  // hubs return queued frame storage to it after the kernel writes. It is
  // thread-safe, so sessions sharded across loops share it freely, and it
  // must outlive every hub and session below.
  wire::BufferPool run_pool;

  // All loop-owned objects (hubs, sessions, drivers) are built and wired on
  // this thread BEFORE any loop thread starts; thread creation publishes
  // them. After that, each object is touched only by its loop's thread.
  auto leader_hub_result =
      make_hub(transport, loop_of(leader_gdo), node_id_of(leader_gdo));
  if (!leader_hub_result.ok()) return leader_hub_result.error();
  std::unique_ptr<net::Hub> leader_hub = std::move(leader_hub_result).take();
  leader_hub->set_buffer_pool(&run_pool);

  LeaderSession leader(*platforms[leader_gdo], leader_gdo, spec.num_gdos,
                       cohort.cases.slice_rows(ranges[leader_gdo].first,
                                               ranges[leader_gdo].second),
                       cohort.controls, announce);
  leader.set_receive_timeout(receive_timeout);
  leader.set_observability(spec.obs, study_span);
  leader.set_pool(pool);
  leader.set_wire_pool(&run_pool);

  std::vector<std::uint32_t> member_gdos;
  std::vector<std::unique_ptr<net::Hub>> member_hubs;
  std::vector<std::unique_ptr<MemberSession>> members;
  for (std::uint32_t g = 0; g < spec.num_gdos; ++g) {
    if (g == leader_gdo) continue;
    auto hub = make_hub(transport, loop_of(g), node_id_of(g));
    if (!hub.ok()) return hub.error();
    member_gdos.push_back(g);
    member_hubs.push_back(std::move(hub).take());
    member_hubs.back()->set_buffer_pool(&run_pool);
    members.push_back(std::make_unique<MemberSession>(
        *platforms[g], g, leader_gdo,
        cohort.cases.slice_rows(ranges[g].first, ranges[g].second)));
    members.back()->set_receive_timeout(receive_timeout);
    members.back()->set_observability(spec.obs);
    members.back()->set_pool(pool);
    members.back()->set_wire_pool(&run_pool);
  }
  // A member that failed to provision (EPC limit) would never handshake and
  // the leader would wait forever - surface the error up front.
  for (const auto& member : members) {
    if (!member->provision_status().ok()) {
      return member->provision_status().error();
    }
  }

  EpollSessionDriver leader_driver(loop_of(leader_gdo), *leader_hub, leader);
  std::vector<std::unique_ptr<EpollSessionDriver>> member_drivers;
  member_drivers.reserve(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    member_drivers.push_back(std::make_unique<EpollSessionDriver>(
        loop_of(member_gdos[i]), *member_hubs[i], *members[i]));
  }

  // Completion accounting that works across loop threads: every driver's
  // on_finished (running on its own loop's thread) decrements `remaining`;
  // the last one flips `all_done` and wakes every loop so the pollers exit.
  std::atomic<std::uint32_t> remaining{
      static_cast<std::uint32_t>(1 + member_drivers.size())};
  std::atomic<bool> all_done{false};
  const auto note_finished = [&] {
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      all_done.store(true, std::memory_order_release);
      for (auto& loop : loops) loop->post([] {});
    }
  };

  // When the leader fails, surviving members normally learn it from the
  // abort notice; a member whose connection (or handshake) never came up
  // would wait forever with no timeout configured. Give the notices half a
  // second to flush, then force the stragglers' transports closed — each on
  // its own loop thread, reached through post().
  leader_driver.set_on_finished([&] {
    const bool leader_failed = !leader.status().ok();
    note_finished();
    if (!leader_failed) return;
    loop_of(leader_gdo).add_timer_after(std::chrono::milliseconds{500}, [&] {
      for (std::size_t i = 0; i < member_drivers.size(); ++i) {
        loop_of(member_gdos[i]).post([driver = member_drivers[i].get()] {
          if (!driver->finished()) driver->close();
        });
      }
    });
  });
  for (auto& driver : member_drivers) driver->set_on_finished(note_finished);

  // Members first: their dials buffer the attestation handshakes, which
  // flush as soon as the leader's listener accepts.
  for (std::size_t i = 0; i < member_drivers.size(); ++i) {
    member_hubs[i]->connect_peer(node_id_of(leader_gdo), "127.0.0.1",
                                 leader_hub->port());
    member_drivers[i]->start();
  }
  leader_driver.start();

  if (num_loops == 1) {
    loops[0]->run_until(
        [&] { return all_done.load(std::memory_order_acquire); });
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_loops);
    for (std::size_t i = 0; i < num_loops; ++i) {
      threads.emplace_back([&all_done, loop = loops[i].get()] {
        // poll_once (not run_until): a loop whose sessions all finished
        // still has nothing to tear down until every loop is done, and the
        // bounded wait means even a lost wakeup cannot hang the join.
        while (!all_done.load(std::memory_order_acquire)) {
          loop->poll_once(std::chrono::milliseconds{100});
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }

  // Loop threads are joined (or the single loop returned): session and hub
  // state is safely readable from this thread again.
  if (spec.obs != nullptr) {
    std::uint64_t pauses = 0;
    std::uint64_t resumes = 0;
    std::uint64_t stalled = leader_driver.stalled_flushes();
    std::vector<std::uint64_t> loop_peaks(num_loops, 0);
    const auto harvest = [&](std::uint32_t gdo, const net::Hub& hub) {
      const net::Hub::BackpressureStats& bp = hub.backpressure();
      pauses += bp.pauses;
      resumes += bp.resumes;
      auto& peak = loop_peaks[loop_index_of(gdo, num_loops)];
      peak = std::max(peak, bp.peak_queued_bytes);
    };
    harvest(leader_gdo, *leader_hub);
    for (std::size_t i = 0; i < member_hubs.size(); ++i) {
      harvest(member_gdos[i], *member_hubs[i]);
      stalled += member_drivers[i]->stalled_flushes();
    }
    spec.obs->metrics.set_label(
        "net.transport",
        transport == FederationSpec::TransportMode::uring ? "uring"
                                                          : "epoll");
    spec.obs->metrics.set_gauge("net.event_loops",
                                static_cast<double>(num_loops));
    spec.obs->metrics.add_counter("net.backpressure.pauses", pauses);
    spec.obs->metrics.add_counter("net.backpressure.resumes", resumes);
    spec.obs->metrics.add_counter("net.backpressure.stalled_flushes",
                                  stalled);
    for (std::size_t i = 0; i < num_loops; ++i) {
      spec.obs->metrics.max_gauge(
          "net.loop" + std::to_string(i) + ".peak_queued_bytes",
          static_cast<double>(loop_peaks[i]));
    }

    // Zero-copy path accounting: pool behavior plus per-hub wire stats.
    // copies_per_frame divides every payload copy the compatibility shims
    // performed by the frames actually queued — 0.0 means the pooled path
    // carried every data frame without an intermediate copy.
    std::uint64_t frames_sent = 0;
    std::uint64_t writev_batches = 0;
    std::uint64_t dial_dropped = 0;
    const auto harvest_wire = [&](const net::Hub& hub) {
      const net::Hub::WireStats& ws = hub.wire_stats();
      frames_sent += ws.frames_sent;
      writev_batches += ws.writev_batches;
      dial_dropped += ws.dial_dropped_frames;
    };
    harvest_wire(*leader_hub);
    for (const auto& hub : member_hubs) harvest_wire(*hub);
    const wire::BufferPool::Stats pool_stats = run_pool.stats();
    spec.obs->metrics.add_counter("net.pool.hits", pool_stats.hits);
    spec.obs->metrics.add_counter("net.pool.misses", pool_stats.misses);
    spec.obs->metrics.max_gauge(
        "net.pool.outstanding",
        static_cast<double>(pool_stats.peak_outstanding));
    spec.obs->metrics.add_counter("wire.writev_batches", writev_batches);
    spec.obs->metrics.add_counter("net.dial.dropped_frames", dial_dropped);
    if (frames_sent > 0) {
      spec.obs->metrics.set_gauge("wire.copies_per_frame",
                                  static_cast<double>(pool_stats.copies) /
                                      static_cast<double>(frames_sent));
    }
  }

  if (!leader.status().ok()) return leader.status().error();
  // Surface any member-side failure (e.g. tampering detected) even when the
  // leader finished: a correct run requires every node to have succeeded.
  for (const auto& member : members) {
    if (!member->status().ok()) return member->status().error();
  }

  StudyResult study = leader.result();
  // The leader hub terminates both directions of every link in the star, so
  // its meter sees all protocol traffic — same vantage as a TCP leader.
  study.network_bytes_total = leader_hub->meter().total_bytes();
  study.leader_bytes_received =
      leader_hub->meter().bytes_received_by(node_id_of(leader_gdo));
  study.network_links = leader_hub->meter().snapshot();
  for (const auto& member : members) {
    member_compute_ms.push_back(member->compute_ms());
  }
  return study;
}

/// The classic thread-per-node fabric: MemberNode service threads plus the
/// LeaderNode study on the caller's thread, over in-process mailboxes.
Result<StudyResult> run_threaded_federation(
    const genome::Cohort& cohort, const FederationSpec& spec,
    std::vector<std::unique_ptr<tee::Platform>>& platforms,
    std::uint32_t leader_gdo,
    const std::vector<std::pair<std::size_t, std::size_t>>& ranges,
    const StudyAnnounce& announce, common::ThreadPool* pool,
    obs::SpanId study_span, std::chrono::milliseconds receive_timeout,
    std::vector<double>& member_compute_ms) {
  net::Network network;

  LeaderNode leader(network, *platforms[leader_gdo], leader_gdo,
                    spec.num_gdos,
                    cohort.cases.slice_rows(ranges[leader_gdo].first,
                                            ranges[leader_gdo].second),
                    cohort.controls, announce);
  leader.set_receive_timeout(receive_timeout);
  leader.set_observability(spec.obs, study_span);

  std::vector<std::unique_ptr<MemberNode>> members;
  for (std::uint32_t g = 0; g < spec.num_gdos; ++g) {
    if (g == leader_gdo) continue;
    members.push_back(std::make_unique<MemberNode>(
        network, *platforms[g], g, leader_gdo,
        cohort.cases.slice_rows(ranges[g].first, ranges[g].second)));
    members.back()->set_receive_timeout(receive_timeout);
    members.back()->set_observability(spec.obs);
    members.back()->set_pool(pool);
  }
  // A member that failed at construction (EPC limit) would never handshake
  // and the leader would wait forever - surface the error up front.
  for (const auto& member : members) {
    if (!member->status().ok()) return member->status().error();
  }
  for (auto& member : members) member->start();

  auto result = leader.run_study(pool);

  if (!result.ok()) {
    // Unblock members still waiting on their mailboxes before joining.
    for (std::uint32_t g = 0; g < spec.num_gdos; ++g) {
      if (g != leader_gdo) network.detach(node_id_of(g));
    }
  }
  for (auto& member : members) member->join();
  if (!result.ok()) return result;

  // Surface any member-side failure (e.g. tampering detected) even when the
  // leader finished: a correct run requires every node to have succeeded.
  for (const auto& member : members) {
    if (!member->status().ok()) return member->status().error();
  }
  for (const auto& member : members) {
    member_compute_ms.push_back(member->compute_ms());
  }
  return result;
}

}  // namespace

Result<StudyResult> run_federated_study(const genome::Cohort& cohort,
                                        const FederationSpec& spec) {
  if (spec.num_gdos == 0) {
    return common::make_error(common::Errc::invalid_argument,
                              "federation needs at least one GDO");
  }
  obs::ScopedSpan study_span(obs::recorder_of(spec.obs), "study");
  obs::ScopedSpan setup_span(obs::recorder_of(spec.obs), "step.setup",
                             study_span.id());
  common::Rng sim_rng(spec.seed);

  // Deployment-wide attestation root and per-GDO platforms.
  std::array<std::uint8_t, 32> authority_seed{};
  for (auto& b : authority_seed) b = static_cast<std::uint8_t>(sim_rng.next());
  crypto::Csprng authority_rng(authority_seed);
  tee::QuotingAuthority authority =
      tee::QuotingAuthority::with_random_key(authority_rng);

  std::vector<std::unique_ptr<tee::Platform>> platforms;
  platforms.reserve(spec.num_gdos);
  for (std::uint32_t g = 0; g < spec.num_gdos; ++g) {
    std::array<std::uint8_t, 32> platform_seed{};
    for (auto& b : platform_seed) {
      b = static_cast<std::uint8_t>(sim_rng.next());
    }
    platforms.push_back(std::make_unique<tee::Platform>(
        g + 1, authority, crypto::Csprng(platform_seed), spec.epc_limit));
  }

  // Random leader election (§5.2 pre-processing step 1).
  const std::uint32_t leader_gdo =
      static_cast<std::uint32_t>(sim_rng.uniform_int(spec.num_gdos));
  common::log_info("federation", "elected leader gdo ", leader_gdo, " of ",
                   spec.num_gdos);

  // Equal division of case genomes among members (§7).
  const auto ranges =
      genome::equal_partition(cohort.cases.num_individuals(), spec.num_gdos);

  StudyAnnounce announce;
  announce.study_id = spec.seed;
  announce.num_snps = static_cast<std::uint32_t>(cohort.cases.num_snps());
  announce.config = spec.config;
  announce.combinations =
      Coordinator::build_combinations(spec.num_gdos, spec.policy);

  const std::chrono::milliseconds receive_timeout(spec.receive_timeout_ms);

  // AEAD counters are process-wide; a per-run snapshot delta isolates this
  // study's sealing work (federation runs in one process are sequential).
  const crypto::AeadCounters aead_before = crypto::aead_counters();

  // One pool shared by the leader's per-combination LR selection and every
  // member's per-combination basis derivations (parallel_for is safe to
  // call concurrently from distinct caller threads).
  std::unique_ptr<common::ThreadPool> pool;
  if (spec.parallel_combinations && announce.combinations.size() > 1) {
    pool = std::make_unique<common::ThreadPool>();
  }
  setup_span.end();

  std::vector<double> member_compute_ms;
  const FederationSpec::TransportMode transport = transport_mode_of(spec);
  auto result =
      transport != FederationSpec::TransportMode::in_process
          ? run_event_loop_federation(cohort, spec, transport, platforms,
                                      leader_gdo, ranges, announce,
                                      pool.get(), study_span.id(),
                                      receive_timeout, member_compute_ms)
          : run_threaded_federation(cohort, spec, platforms, leader_gdo,
                                    ranges, announce, pool.get(),
                                    study_span.id(), receive_timeout,
                                    member_compute_ms);
  if (spec.obs != nullptr && pool != nullptr) {
    spec.obs->metrics.add_counter("pool.tasks_completed",
                                  pool->tasks_completed());
    spec.obs->metrics.set_gauge("pool.task_wall_ms", pool->task_wall_ms());
    spec.obs->metrics.set_gauge("pool.threads",
                                static_cast<double>(pool->size()));
  }
  if (!result.ok()) return result;

  StudyResult study = std::move(result).take();
  double member_compute_sum = 0;
  double member_compute_max = 0;
  for (const double compute_ms : member_compute_ms) {
    member_compute_sum += compute_ms;
    member_compute_max = std::max(member_compute_max, compute_ms);
  }
  study.modelled_distributed_ms =
      study.timings.total_ms - member_compute_sum + member_compute_max;
  std::uint64_t member_peak = 0;
  study.epc_peak_per_gdo.assign(spec.num_gdos, 0);
  study.epc_limit_bytes = spec.epc_limit;
  for (std::uint32_t g = 0; g < spec.num_gdos; ++g) {
    const std::uint64_t peak = platforms[g]->epc().peak();
    study.epc_peak_per_gdo[g] = peak;
    if (g == leader_gdo) {
      study.epc_peak_leader = peak;
    } else {
      member_peak = std::max(member_peak, peak);
    }
  }
  study.epc_peak_members_max = member_peak;
  const crypto::AeadCounters aead_after = crypto::aead_counters();
  study.crypto_backend =
      crypto::aead_backend_name(crypto::default_aead_backend());
  study.crypto_records_sealed =
      aead_after.records_sealed - aead_before.records_sealed;
  study.crypto_bytes_sealed =
      aead_after.bytes_sealed - aead_before.bytes_sealed;
  if (spec.obs != nullptr) {
    spec.obs->metrics.set_label("crypto.backend", study.crypto_backend);
    spec.obs->metrics.set_gauge(
        "crypto.backend_native",
        crypto::default_aead_backend() == crypto::AeadBackend::native ? 1.0
                                                                      : 0.0);
    spec.obs->metrics.add_counter("crypto.records_sealed",
                                  study.crypto_records_sealed);
    spec.obs->metrics.add_counter("crypto.bytes_sealed",
                                  study.crypto_bytes_sealed);
  }
  if (spec.obs != nullptr) {
    // Per-GDO EPC high-water marks and per-link traffic outlive the
    // platforms/fabric via the registry (and via StudyResult for reports).
    for (std::uint32_t g = 0; g < spec.num_gdos; ++g) {
      spec.obs->metrics.max_gauge(
          "epc.gdo" + std::to_string(g) + ".peak_bytes",
          static_cast<double>(study.epc_peak_per_gdo[g]));
    }
    std::uint64_t total_messages = 0;
    for (const auto& link : study.network_links) {
      spec.obs->metrics.add_counter("net.link." + std::to_string(link.from) +
                                        "to" + std::to_string(link.to) +
                                        ".bytes",
                                    link.bytes);
      total_messages += link.messages;
    }
    spec.obs->metrics.add_counter("net.total_bytes",
                                  study.network_bytes_total);
    spec.obs->metrics.add_counter("net.total_messages", total_messages);
  }
  return study;
}

}  // namespace gendpr::core
