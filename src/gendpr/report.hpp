// RunReport: one JSON document per completed study.
//
// Serializes everything the paper's evaluation (Figures 5-6, Tables 3-5)
// asks of a run — per-phase wall times, per-link byte counts, per-enclave
// EPC peaks, dead-GDO events, safe-set sizes — plus the metrics registry and
// phase trace when observability was attached. The CLI writes it via
// `--report <path>`, the runtime benches reuse it (GENDPR_REPORT_DIR), and CI
// validates it with tools/check_report.py, so paper figures and production
// telemetry come from the same code path.
#pragma once

#include <string>

#include "common/error.hpp"
#include "gendpr/node.hpp"
#include "obs/json.hpp"
#include "obs/observability.hpp"

namespace gendpr::core {

/// Identifies the document layout; bump when the schema changes shape.
inline constexpr const char* kRunReportSchema = "gendpr.run_report.v2";

/// Optional context for make_run_report.
struct ReportContext {
  /// Observability bundle of the run; embeds "metrics" and "trace" sections.
  const obs::Observability* obs = nullptr;
  /// Transport label recorded in the document ("inproc", "tcp", ...).
  std::string transport = "inproc";
  /// Study seed / id, when the caller knows it (the CLI passes its --seed).
  std::uint64_t study_id = 0;
};

/// Builds the report document from a finished study.
obs::JsonValue make_run_report(const StudyResult& study,
                               const ReportContext& context = {});

/// Pretty-prints `report` to `path` (overwriting).
common::Status write_run_report(const std::string& path,
                                const obs::JsonValue& report);

/// Exports a traffic meter's per-link counters into a registry under
/// "net.link.<from>to<to>.bytes" (plus net.total_bytes/messages). Used by
/// transports' owners when a run finishes; safe to call from any thread.
void export_traffic(const net::TrafficMeter& meter,
                    obs::MetricsRegistry& metrics);

}  // namespace gendpr::core
