// Study outcome types shared by the sans-IO sessions and the node hosts.
//
// Split out of node.hpp so the protocol sessions (session.hpp) can populate
// a StudyResult without depending on the blocking host layer.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "gendpr/trusted.hpp"
#include "net/network.hpp"

namespace gendpr::core {

/// Network node id of GDO `gdo_index` (0 is reserved).
inline net::NodeId node_id_of(std::uint32_t gdo_index) {
  return gdo_index + 1;
}

/// No deadline: every protocol wait blocks forever (the paper's original
/// semantics — no liveness guarantee). Configure a positive timeout to get
/// bounded waits that abort with Errc::timeout naming the silent peer.
inline constexpr std::chrono::milliseconds kNoDeadline{0};

/// Per-phase CPU/wall time breakdown, matching the stacked categories of the
/// paper's Figures 5-6.
struct PhaseTimings {
  double aggregation_ms = 0;  // "Data Aggregation": transfer + decrypt + merge
  double indexing_ms = 0;     // "Indexing/Sorting/AlleleFreq.": MAF phase math
  double ld_ms = 0;           // "LD analysis"
  double lr_ms = 0;           // "LR-test analysis"
  double total_ms = 0;        // end-to-end including setup
};

struct StudyResult {
  SelectionOutcome outcome;
  PhaseTimings timings;
  /// GDOs declared unresponsive during the run. Empty for a clean study; a
  /// non-empty list means the selection came from the surviving
  /// combinations only (collusion policies with redundancy keep going).
  std::vector<std::uint32_t> dead_gdos;
  /// Wall time modelled for a real multi-host deployment: members compute
  /// concurrently there, so serialized member compute collapses to the
  /// slowest member: total - sum(member compute) + max(member compute).
  /// On a single-core simulation host total_ms serializes everything.
  double modelled_distributed_ms = 0;
  std::uint32_t leader_gdo = 0;
  std::uint32_t num_gdos = 0;
  std::size_t num_combinations = 0;
  /// Combinations with no dead member (== num_combinations on clean runs).
  std::size_t live_combinations = 0;
  /// Sum of |members(c)| over live combinations: the expected number of
  /// per-member LR basis derivations (`lr.combination_matvecs`).
  std::size_t combination_members_total = 0;
  /// Serialized size of the phase-2 result each member receives. With
  /// per-GDO counts this is O(G·m) instead of the old O(C·m) frequency
  /// vectors.
  std::uint64_t phase2_body_bytes = 0;
  std::size_t ld_pairs_fetched = 0;
  std::uint64_t network_bytes_total = 0;
  std::uint64_t leader_bytes_received = 0;
  std::uint64_t epc_peak_leader = 0;
  std::uint64_t epc_peak_members_max = 0;
  /// Per-link traffic snapshot from the leader's transport meter, taken
  /// before teardown. The in-process fabric's meter sees every link; a TCP
  /// hub's meter sees both directions of every link the leader terminates,
  /// which in the star topology is likewise all protocol traffic.
  std::vector<net::TrafficMeter::Link> network_links;
  /// EPC peak per GDO, indexed by GDO. The leader fills its own entry; the
  /// single-host runner fills every entry before tearing platforms down.
  /// Entries for GDOs whose platform was unobservable stay 0.
  std::vector<std::uint64_t> epc_peak_per_gdo;
  /// The per-platform EPC limit the run was configured with (0 = unknown).
  std::uint64_t epc_limit_bytes = 0;
  /// AEAD backend the run dispatched to ("portable" / "native") and the
  /// run's sealing volume (records = AEAD invocations across channels and
  /// sealed blobs, bytes = plaintext protected).
  std::string crypto_backend;
  std::uint64_t crypto_records_sealed = 0;
  std::uint64_t crypto_bytes_sealed = 0;
  /// SIMD kernel backend the bit-plane hot loops dispatched to
  /// ("portable" / "avx2" / "avx512").
  std::string kernel_backend;
  /// Tiling shape of the pipelined phase engine: the configured width
  /// (0 = monolithic) and the resulting phase-1 / phase-3 tile counts.
  std::uint32_t snp_tile_width = 0;
  std::uint32_t maf_tiles = 1;
  std::uint32_t lr_tiles = 1;
  /// Pipeline overlap: leader-side work done while members were still
  /// streaming — MAF tiles assessed mid-gather and the time spent on them,
  /// plus the leader's own LR tile derivations run right after the phase-2
  /// tile broadcast (overlapping the members' derivations).
  std::size_t maf_tiles_assessed_inline = 0;
  double leader_inline_assess_ms = 0;
  double leader_lr_derive_ms = 0;
  /// Intersection-aware sweep bookkeeping (zeros / empty when pruning off).
  PruningStats pruning;
};

}  // namespace gendpr::core
